// Table 7 (Appendix C) — 95th-percentile normalized error, static vs
// LEAF, per target KPI (GBDT).
//
// "Errors in the tail are largely mitigated using LEAF on DVol, PU, DTP,
// and REst ... CDR and GDR prove more difficult to mitigate" — their
// dispersion is 2-4x higher.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"

using namespace leaf;

int main() {
  const Scale scale = Scale::from_env();
  bench::banner("Table 7",
                "95th-percentile |normalized error|: static vs LEAF, Fixed "
                "dataset, GBDT, seed-averaged",
                scale);

  const data::CellularDataset ds = data::generate_fixed_dataset(scale);
  const std::vector<std::string> specs = {"LEAF"};

  auto w = bench::csv("table7_tail_errors.csv");
  w.row({"kpi", "dispersion", "static_p95", "leaf_p95", "reduction_pct"});

  TextTable t({"KPI", "Std/Mean", "Static p95", "LEAF p95", "reduction"});
  for (data::TargetKpi target : data::kAllTargets) {
    const auto outcomes = core::compare_schemes(
        ds, target, models::ModelFamily::kGbdt, scale, specs,
        core::default_seeds());
    const auto& leaf = outcomes.front();
    const double reduction =
        leaf.static_ne_p95 > 0.0
            ? 100.0 * (1.0 - leaf.ne_p95 / leaf.static_ne_p95)
            : 0.0;
    const double dispersion = core::kpi_dispersion(ds, target);
    t.add_row({data::to_string(target), fmt_fixed(dispersion, 2),
               fmt_fixed(leaf.static_ne_p95, 3), fmt_fixed(leaf.ne_p95, 3),
               fmt_pct(reduction)});
    w.row({data::to_string(target), fmt(dispersion), fmt(leaf.static_ne_p95),
           fmt(leaf.ne_p95), fmt(reduction)});
    std::printf("  %s done\n", data::to_string(target).c_str());
  }
  std::printf("%s", t.render().c_str());

  std::printf("\npaper Table 7: DVol 0.29->0.19, PU 0.86->0.27 (large tail "
              "reductions for the low-dispersion KPIs and PU); CDR/GDR only "
              "slightly improved.\nexpected: biggest relative reductions on "
              "DVol/PU/DTP/REst; small or no reduction on CDR/GDR.\n");
  bench::require_ok(w);
  return 0;
}
