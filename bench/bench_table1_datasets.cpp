// Table 1 — "Summary of datasets."
//
// Regenerates the dataset-summary table: collection period, identifiers,
// KPI count and groups, eNodeB counts, and total log counts for the Fixed
// and Evolving datasets.  At LEAF_SCALE=full the synthetic datasets match
// the paper's shape (412 / 898 eNodeBs, 224 KPIs, 1548 days); the log
// counts then land near the paper's 699,381 / 1,084,837.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "data/generator.hpp"

using namespace leaf;

int main() {
  const Scale scale = Scale::from_env();
  bench::banner("Table 1", "Summary of datasets", scale);

  const data::CellularDataset fixed = data::generate_fixed_dataset(scale);
  const data::CellularDataset evolving = data::generate_evolving_dataset(scale);

  std::map<data::KpiGroup, int> group_counts;
  for (const auto& spec : fixed.schema().specs()) ++group_counts[spec.group];

  TextTable t({"Property", "Value"});
  t.add_row({"Collection period", cal::to_string(cal::kStudyStart) + " - " +
                                      cal::to_string(cal::kStudyEnd) + " (" +
                                      std::to_string(cal::study_length()) +
                                      " days)"});
  t.add_row({"Identifiers", "eNodeB ID & day index"});
  t.add_row({"Number of KPIs", std::to_string(fixed.num_kpis())});
  for (const auto& [group, count] : group_counts)
    t.add_row({"  " + data::to_string(group), std::to_string(count) + " KPIs"});
  t.add_row({"Fixed Dataset eNBs",
             std::to_string(fixed.profiles().size()) + " common eNBs"});
  t.add_row({"Evolving Dataset eNBs",
             std::to_string(evolving.profiles().size()) + " eNBs (max)"});
  t.add_row({"Fixed Dataset logs", std::to_string(fixed.total_logs())});
  t.add_row({"Evolving Dataset logs", std::to_string(evolving.total_logs())});
  std::printf("%s", t.render().c_str());

  std::printf("\npaper (full scale): 412 / 898 eNBs, 224 KPIs, "
              "699,381 / 1,084,837 logs\n");

  auto w = bench::csv("table1_datasets.csv");
  w.row({"dataset", "enbs", "days", "kpis", "logs"});
  for (const auto* ds : {&fixed, &evolving}) {
    w.row({ds->name(), std::to_string(ds->profiles().size()),
           std::to_string(ds->num_days()), std::to_string(ds->num_kpis()),
           std::to_string(ds->total_logs())});
  }
  bench::require_ok(w);
  return 0;
}
