// Table 3 — "Changes of average NRMSE and number of retrains, over time,
// for different periodic retraining strategies."
//
// Evolving dataset, GBDT (CatBoost stand-in), 14-day training windows,
// 180-day horizon.  A model retrained every N days is compared with the
// static baseline via ΔNRMSE̅ (Eq. 1).  The paper's findings to check:
//   * for low-dispersion KPIs (DVol, DTP, REst) more frequent retraining
//     is monotonically better;
//   * for bursty KPIs (CDR at 7 days, GDR at mid frequencies) naive
//     retraining can *increase* error;
//   * retrain counts scale as (study days after first forecast) / N
//     (169 / 39 / 13 / 6 / 3 at daily evaluation).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"

using namespace leaf;

int main() {
  const Scale scale = Scale::from_env();
  bench::banner("Table 3",
                "Periodic (naive) retraining vs static, Evolving dataset, "
                "GBDT, seed-averaged",
                scale);

  const data::CellularDataset ds = data::generate_evolving_dataset(scale);
  const std::vector<std::string> specs = {"Naive7", "Naive30", "Naive90",
                                          "Naive180", "Naive365"};

  TextTable t({"Retraining", "DVol", "PU", "DTP", "REst", "CDR", "GDR",
               "#Retrains"});
  t.add_row({"Static", "-", "-", "-", "-", "-", "-", "0"});

  auto w = bench::csv("table3_periodic.csv");
  w.row({"scheme", "kpi", "delta_nrmse_pct", "retrains", "avg_nrmse",
         "static_nrmse"});

  // outcome[kpi][spec]
  std::vector<std::vector<core::SchemeOutcome>> all;
  for (data::TargetKpi target : data::kAllTargets) {
    all.push_back(core::compare_schemes(ds, target, models::ModelFamily::kGbdt,
                                        scale, specs, core::default_seeds()));
    for (const auto& o : all.back()) {
      w.row({o.scheme, data::to_string(target), fmt(o.delta_pct),
             fmt(o.retrains), fmt(o.avg_nrmse), fmt(o.static_nrmse)});
    }
    std::printf("  %s done\n", data::to_string(target).c_str());
  }

  for (std::size_t s = 0; s < specs.size(); ++s) {
    std::vector<std::string> row{specs[s] + " days"};
    for (std::size_t k = 0; k < all.size(); ++k)
      row.push_back(fmt_pct(all[k][s].delta_pct));
    row.push_back(fmt_fixed(all.front()[s].retrains, 0));
    t.add_row(std::move(row));
  }
  std::printf("%s", t.render().c_str());

  std::printf("\npaper Table 3 (Evolving, CatBoost):\n"
              "  7d:   -40.34 -55.36 -27.21 -48.00 +47.79  -0.38  (169)\n"
              "  30d:  -30.66 -43.73 -21.40 -40.12  -0.75  +2.75  (39)\n"
              "  90d:  -16.83 -16.12 -19.07 -27.33  +7.89 +42.24  (13)\n"
              "  180d: -12.22  -0.34 -14.85 -18.82  -4.20 +76.28  (6)\n"
              "  365d:  -2.27  -5.13 -10.65 -11.53  +5.97  +6.07  (3)\n"
              "expected shape: frequency helps DVol/DTP/REst monotonically; "
              "CDR/GDR rows contain positive (worse-than-static) entries.\n");
  bench::require_ok(w);
  return 0;
}
