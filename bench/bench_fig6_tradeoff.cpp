// Figures 6 and 10 — "ΔNRMSE̅ vs #Retrains under different mitigation
// schemes using CatBoost" (Fixed dataset, all six KPIs).
//
// Each scheme is a point in (retrains, ΔNRMSE̅) space; the bottom-left is
// the best trade-off.  Schemes: Naive30, Naive90, Triggered, LEAF with
// 1/3/5 feature groups.  Paper findings to check:
//   * Naive30 always needs the most retrains and never beats LEAF's
//     mitigation effectiveness;
//   * Naive90 retrains least but mitigates least (top-left);
//   * Triggered sits in the middle and is unsafe on bursty KPIs;
//   * LEAF variants occupy the bottom-left; more groups can add
//     0.34-2.83 pp of mitigation (except GDR, where one group is best).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"

using namespace leaf;

int main() {
  const Scale scale = Scale::from_env();
  bench::banner("Figures 6 & 10",
                "ΔNRMSE̅ vs #Retrains per mitigation scheme, Fixed dataset, "
                "GBDT, seed-averaged",
                scale);

  const data::CellularDataset ds = data::generate_fixed_dataset(scale);
  const std::vector<std::string> specs = {"Naive30", "Naive90", "Triggered",
                                          "LEAF", "LEAF3", "LEAF5"};

  auto w = bench::csv("fig6_tradeoff.csv");
  w.row({"kpi", "scheme", "retrains", "delta_nrmse_pct"});

  for (data::TargetKpi target : data::kAllTargets) {
    const auto outcomes =
        core::compare_schemes(ds, target, models::ModelFamily::kGbdt, scale,
                              specs, core::default_seeds());
    std::printf("\n--- %s ---\n", data::to_string(target).c_str());
    TextTable t({"Scheme", "#Retrains", "dNRMSE%"});
    const core::SchemeOutcome* best = nullptr;
    for (const auto& o : outcomes) {
      t.add_row({o.scheme, fmt_fixed(o.retrains, 1), fmt_pct(o.delta_pct)});
      w.row({data::to_string(target), o.scheme, fmt(o.retrains),
             fmt(o.delta_pct)});
      if (best == nullptr || o.delta_pct < best->delta_pct) best = &o;
    }
    std::printf("%s", t.render().c_str());
    std::printf("best mitigation: %s (%.2f%% at %.1f retrains)\n",
                best->scheme.c_str(), best->delta_pct, best->retrains);
  }

  std::printf("\npaper Fig. 6 shape: LEAF points sit at/below the baselines "
              "with fewer retrains than Naive30 (39); Naive90 (13) is "
              "cheap but weak; triggered is unsafe for GDR.\n");
  bench::require_ok(w);
  return 0;
}
