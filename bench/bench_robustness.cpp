// bench_robustness — graceful degradation under telemetry faults.
//
// The paper's deployment survives a six-month PU collection outage; a
// production LEAF must survive the rest of the telemetry fault taxonomy
// too (record dropout, NaN/spike/stuck-at-zero corruption, duplicates,
// late delivery) without mistaking data loss for concept drift.  This
// bench sweeps fault rate x mitigation scheme with the ingest layer ON
// (validator + imputation + health-gated evaluation) and OFF (records
// believed verbatim), and emits the ΔNRMSE̅-vs-fault-rate curves:
//
//   * unguarded triggered/LEAF retraining thrashes — the detector fires on
//     corruption and outage artifacts, retraining on poisoned windows;
//   * guarded runs degrade smoothly with fault rate, keep every NRMSE
//     value finite, and freeze detection inside the declared outage.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "ingest/fault.hpp"
#include "ingest/pipeline.hpp"

using namespace leaf;

namespace {

double finite_mean(const std::vector<double>& xs) {
  double acc = 0.0;
  std::size_t n = 0;
  for (double v : xs)
    if (std::isfinite(v)) { acc += v; ++n; }
  return n > 0 ? acc / static_cast<double>(n)
               : std::numeric_limits<double>::quiet_NaN();
}

int nonfinite_count(const std::vector<double>& xs) {
  return static_cast<int>(std::count_if(
      xs.begin(), xs.end(), [](double v) { return !std::isfinite(v); }));
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  bench::banner("Robustness (ext.)",
                "ΔNRMSE̅ vs telemetry fault rate, guarded (leaf::ingest) vs "
                "unguarded, Fixed dataset, GBDT",
                scale);

  const data::CellularDataset ds = data::generate_fixed_dataset(scale);
  const data::TargetKpi target = data::TargetKpi::kDVol;
  const int target_col = ds.schema().target_column(target);
  const double dispersion = core::kpi_dispersion(ds, target);
  // All arms normalize NRMSE by the clean dataset's target range; a faulted
  // dataset's own range is inflated by surviving spikes, which would make
  // corrupted runs look spuriously better.
  const double clean_norm_range = data::Featurizer(ds, target).norm_range();
  const auto prototype = models::make_model(models::ModelFamily::kGbdt, scale, 7);

  const std::vector<double> rates = {0.0, 0.02, 0.05, 0.10, 0.20};
  const std::vector<std::string> schemes = {"Static", "Triggered", "LEAF"};

  auto w = bench::csv("robustness.csv");
  w.row({"kpi", "scheme", "guarded", "fault_rate", "avg_nrmse",
         "delta_vs_clean_static_pct", "nonfinite_nrmse", "retrains",
         "drift_detections", "drifts_in_outage", "frozen_detector_days",
         "values_imputed", "quarantined_records", "records_synthesized",
         "outage_days_detected"});

  double clean_static_nrmse = 0.0;
  for (double rate : rates) {
    ingest::FaultSpec spec = ingest::FaultSpec::at_rate(rate, 1234);
    if (rate > 0.0) {
      // Declared sensor outage mirroring the paper's PU loss window.
      spec.outage_column = target_col;
      spec.outage_start = cal::pu_loss_start();
      spec.outage_end = cal::pu_loss_end();
    }
    const auto stream = ingest::inject_faults(ds, spec);

    // Guarded arm: validate/impute/health-gate, then evaluate with the
    // detector frozen wherever the target KPI is in OUTAGE.
    const ingest::IngestResult ing = ingest::ingest_stream(ds, stream);
    const auto& health = ing.kpi_health[static_cast<std::size_t>(target_col)];
    // Unguarded arm: believe the records verbatim.
    const data::CellularDataset raw = ingest::rebuild_unvalidated(ds, stream);

    std::printf("\n--- fault rate %.0f%% (imputed %lld, quarantined %lld+%lld, "
                "synthesized %lld, outage days detected %d) ---\n",
                rate * 100.0, static_cast<long long>(ing.report.values_imputed),
                static_cast<long long>(ing.report.quarantined_records),
                static_cast<long long>(ing.report.quarantined_values),
                static_cast<long long>(ing.report.records_synthesized),
                ing.outage_days(target_col));
    TextTable t({"Scheme", "Guard", "NRMSE", "dNRMSE% vs clean", "#Retrain",
                 "#Drift", "drift@outage", "NaN rows"});

    for (const bool guarded : {false, true}) {
      const data::CellularDataset& eval_ds = guarded ? ing.clean : raw;
      const data::Featurizer featurizer(eval_ds, target);
      for (const std::string& name : schemes) {
        core::EvalConfig cfg = core::make_eval_config(scale);
        cfg.norm_range_override = clean_norm_range;
        cfg.guard_nonfinite = guarded;
        if (guarded) {
          cfg.target_health = health;
          cfg.ingest_report = &ing.report;
        }
        const auto scheme = core::make_scheme(name, dispersion);
        const core::EvalResult run =
            core::run_scheme(featurizer, *prototype, *scheme, cfg);

        const double avg = finite_mean(run.nrmse);
        if (rate == 0.0 && !guarded && name == "Static")
          clean_static_nrmse = avg;
        const double delta = clean_static_nrmse > 0.0
                                 ? (avg - clean_static_nrmse) /
                                       clean_static_nrmse * 100.0
                                 : 0.0;
        int drifts_in_outage = 0;
        for (int d : run.drift_days)
          if (rate > 0.0 && d >= spec.outage_start && d <= spec.outage_end)
            ++drifts_in_outage;

        t.add_row({name, guarded ? "ingest" : "none", fmt(avg), fmt_pct(delta),
                   std::to_string(run.retrain_count()),
                   std::to_string(run.drift_days.size()),
                   std::to_string(drifts_in_outage),
                   std::to_string(nonfinite_count(run.nrmse))});
        w.row({data::to_string(target), name, guarded ? "1" : "0", fmt(rate),
               fmt(avg), fmt(delta), fmt(nonfinite_count(run.nrmse)),
               fmt(run.retrain_count()), fmt(run.drift_days.size()),
               fmt(drifts_in_outage), fmt(run.degraded.frozen_detector_days),
               fmt(static_cast<double>(run.degraded.values_imputed)),
               fmt(static_cast<double>(run.degraded.quarantined_records)),
               fmt(static_cast<double>(ing.report.records_synthesized)),
               fmt(ing.outage_days(target_col))});
      }
    }
    std::printf("%s", t.render().c_str());
  }

  std::printf("\nexpected shape: guarded curves rise gently with fault rate "
              "with zero non-finite NRMSE rows and zero drift detections "
              "inside the declared outage; unguarded triggered/LEAF retrain "
              "counts inflate as corruption and the outage masquerade as "
              "drift.\n");
  bench::require_ok(w);
  return 0;
}
