// Tables 5 and 9 — "Effectiveness of different mitigation schemes ...
// using both datasets", including LEAF* (the best multi-group LEAF).
//
// Fixed vs Evolving, GBDT.  Paper findings to check:
//   * triggered retraining improves notably on the Evolving dataset
//     (the detector catches newly deployed eNodeBs quickly);
//   * LEAF / LEAF* stay the most effective schemes on both datasets —
//     effectiveness is robust to infrastructure growth.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"

using namespace leaf;

int main() {
  const Scale scale = Scale::from_env();
  bench::banner("Tables 5 & 9",
                "Mitigation schemes on Fixed vs Evolving datasets, GBDT, "
                "seed-averaged; LEAF* = best multi-group LEAF",
                scale);

  const std::vector<std::string> specs = {"Naive30", "Naive90", "Triggered",
                                          "LEAF", "LEAF3", "LEAF5"};

  auto w = bench::csv("table5_datasets.csv");
  w.row({"dataset", "kpi", "scheme", "delta_nrmse_pct", "retrains"});

  TextTable t({"Dataset", "KPI", "Naive30", "Naive90", "Triggered", "LEAF",
               "LEAF*"});

  for (const bool evolving : {false, true}) {
    const data::CellularDataset ds = evolving
                                         ? data::generate_evolving_dataset(scale)
                                         : data::generate_fixed_dataset(scale);
    for (data::TargetKpi target : data::kAllTargets) {
      const auto outcomes =
          core::compare_schemes(ds, target, models::ModelFamily::kGbdt, scale,
                                specs, core::default_seeds());
      for (const auto& o : outcomes)
        w.row({ds.name(), data::to_string(target), o.scheme,
               fmt(o.delta_pct), fmt(o.retrains)});

      // LEAF* = the better of LEAF3 / LEAF5 (the paper reports the best
      // multi-group configuration per KPI).
      const auto& leaf3 = outcomes[4];
      const auto& leaf5 = outcomes[5];
      const auto& star = leaf3.delta_pct <= leaf5.delta_pct ? leaf3 : leaf5;

      t.add_row({ds.name(), data::to_string(target),
                 fmt_pct(outcomes[0].delta_pct) + " (" +
                     fmt_fixed(outcomes[0].retrains, 0) + ")",
                 fmt_pct(outcomes[1].delta_pct) + " (" +
                     fmt_fixed(outcomes[1].retrains, 0) + ")",
                 fmt_pct(outcomes[2].delta_pct) + " (" +
                     fmt_fixed(outcomes[2].retrains, 0) + ")",
                 fmt_pct(outcomes[3].delta_pct) + " (" +
                     fmt_fixed(outcomes[3].retrains, 0) + ")",
                 star.scheme + ": " + fmt_pct(star.delta_pct) + " (" +
                     fmt_fixed(star.retrains, 0) + ")"});
      std::printf("  %s / %s done\n", ds.name().c_str(),
                  data::to_string(target).c_str());
    }
    t.add_rule();
  }
  std::printf("%s", t.render().c_str());

  std::printf("\npaper Table 5 (CatBoost, Triggered | LEAF | LEAF*):\n"
              "  Fixed DVol:  -31.80(27) -32.67(28) -35.12(34)\n"
              "  Evolv DVol:  -30.76(24) -32.09(37) -32.80(30)\n"
              "  Fixed GDR:  +44.56(17)  -6.24(19)  -6.24(19)\n"
              "  Evolv GDR:  -13.21(15)  -2.06(13) -11.99(17)\n"
              "expected: LEAF/LEAF* effectiveness consistent across both "
              "datasets; triggered improves on Evolving.\n");
  bench::require_ok(w);
  return 0;
}
