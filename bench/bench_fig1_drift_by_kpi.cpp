// Figures 1 and 7 — "Drift of different models for KPIs of interest."
//
// Trains one *static* model per (family, target KPI) on a 90-day window
// ending July 1 2018 (the paper's Fig. 1 setup) and plots the daily NRMSE
// of each model family over the rest of the study on the Evolving
// dataset.  The shapes to look for (§3.2/§3.3):
//   * all families drift together on a given KPI;
//   * DVol: sudden NRMSE rise at the April 2020 lockdown, recovery in
//     late 2020, gradual rise from March 2021 peaking around January 2022;
//   * PU: elevated error through the Jul 2019 - Jan 2020 data-loss window;
//   * CDR/GDR: frequent short-lived spikes (burstiness) and no clear
//     weekly NRMSE pattern, unlike the other KPIs.
#include <cstdio>

#include "bench_common.hpp"
#include "common/ascii_plot.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "models/factory.hpp"

using namespace leaf;

int main() {
  const Scale scale = Scale::from_env();
  bench::banner("Figures 1 & 7",
                "NRMSE drift over time per KPI x model family (static "
                "models, 90-day training window)",
                scale);

  const data::CellularDataset ds = data::generate_evolving_dataset(scale);
  const std::vector<models::ModelFamily> families = {
      models::ModelFamily::kGbdt, models::ModelFamily::kExtraTrees,
      models::ModelFamily::kLstm, models::ModelFamily::kKnn};

  core::EvalConfig cfg = core::make_eval_config(scale);
  cfg.train_window = 90;  // Fig. 1 uses a 90-day window
  cfg.stride = 1;  // daily, so the weekly NRMSE signature is measurable

  for (data::TargetKpi target : data::kAllTargets) {
    const data::Featurizer featurizer(ds, target);
    std::vector<std::pair<std::string, std::vector<double>>> series;
    std::vector<int> days;

    auto w = bench::csv("fig1_" + data::to_string(target) + ".csv");
    std::vector<std::vector<double>> columns;

    for (models::ModelFamily family : families) {
      const auto model = models::make_model(family, scale, 7);
      core::StaticScheme scheme;
      const core::EvalResult run =
          core::run_scheme(featurizer, *model, scheme, cfg);
      if (days.empty()) days = run.days;
      series.emplace_back(models::paper_name(family), run.nrmse);
      columns.push_back(run.nrmse);
      std::printf("%-6s %-14s avg NRMSE %.4f  (days<0.1: %zu/%zu)\n",
                  data::to_string(target).c_str(),
                  models::paper_name(family).c_str(), run.avg_nrmse(),
                  static_cast<std::size_t>(std::count_if(
                      run.nrmse.begin(), run.nrmse.end(),
                      [](double v) { return v < 0.1; })),
                  run.nrmse.size());
    }

    plot::LineChartOptions opts;
    opts.title = "Fig.1 " + data::to_string(target) +
                 ": daily NRMSE per model family (static models)";
    opts.height = 12;
    opts.x_label = "date";
    opts.y_label = "NRMSE";
    if (!days.empty()) opts.x_ticks = bench::year_ticks(days.front(), days.back());
    std::printf("%s\n", plot::line_chart(series, opts).c_str());

    w.row({"date", "GBDT", "ExtraTrees", "LSTM", "KNeighbors"});
    for (std::size_t i = 0; i < days.size(); ++i) {
      std::vector<std::string> row{cal::day_to_string(days[i])};
      for (const auto& col : columns) row.push_back(fmt(col[i]));
      w.row(row);
    }
    bench::require_ok(w);

    // 3-week inset (the paper's box-selected weekly view): report the
    // 7-day autocorrelation of the first family's NRMSE as the weekly
    // signature.
    const double weekly = stats::periodicity_strength(columns.front(), 7);
    std::printf("weekly NRMSE periodicity (GBDT, 7-day DFT power): %.3f%s\n\n",
                weekly,
                (target == data::TargetKpi::kCDR ||
                 target == data::TargetKpi::kGDR)
                    ? "  (paper: no clear weekly pattern for CDR/GDR)"
                    : "  (paper: weekly pattern present)");
  }
  std::printf("Figure 7 (Appendix A) is the same experiment for REst/CDR — "
              "included above.\n");
  return 0;
}
