// Shared plumbing for the per-table / per-figure bench binaries.
//
// Every bench:
//   * honours LEAF_SCALE (small | medium | full; see common/config.hpp);
//   * prints the paper's rows/series to stdout (ASCII table or chart);
//   * additionally dumps the raw series as CSV under $LEAF_BENCH_OUT
//     (default ./bench_out) for external re-plotting.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "common/calendar.hpp"
#include "common/config.hpp"
#include "common/csv.hpp"
#include "obs/metrics.hpp"

namespace leaf::bench {

/// Directory for CSV dumps; created on first use.
inline std::string out_dir() {
  const char* env = std::getenv("LEAF_BENCH_OUT");
  std::string dir = env != nullptr ? env : "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// Opens a CSV file in the output directory.
inline CsvWriter csv(const std::string& name) {
  return CsvWriter(out_dir() + "/" + name);
}

/// Flushes the writer and aborts the bench loudly if any write failed.
/// Every bench calls this when it is done with a writer: a truncated CSV
/// that parses as a shorter experiment is strictly worse than no CSV.
inline void require_ok(CsvWriter& w) {
  if (!w.finish()) {
    std::fprintf(stderr, "FATAL: %s\n", w.error().c_str());
    std::exit(1);
  }
}

/// Standard header every bench prints.
inline void banner(const char* exp_id, const char* what, const Scale& scale) {
  std::printf("================================================================\n");
  std::printf("LEAF reproduction — %s\n", exp_id);
  std::printf("%s\n", what);
  std::printf("scale=%s (LEAF_SCALE=small|medium|full to resize)\n",
              scale.name().c_str());
  std::printf("================================================================\n");
}

/// Best-of-`reps` wall milliseconds of `fn`, timed with the obs monotonic
/// stopwatch.  Every rep is also recorded into the span site
/// `bench.<name>`, so a bench's `"metrics"` JSON section carries its own
/// timing distribution alongside the library's counters.
inline double time_best_ms(const char* name, const std::function<void()>& fn,
                           int reps = 3) {
  obs::SpanSite& site = obs::MetricsRegistry::global().span_site(
      std::string("bench.") + name);
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const obs::Stopwatch sw;
    fn();
    const double ms = sw.ms();
    site.record_ns(static_cast<std::uint64_t>(ms * 1e6));
    best = std::min(best, ms);
  }
  return best;
}

/// The process metrics registry as a JSON object, for embedding as the
/// `"metrics"` section of a BENCH_*.json dump (cache hit rates, retrain
/// counts, span timings).
inline std::string metrics_json() {
  return obs::MetricsRegistry::global().scrape_json();
}

/// Year tick labels for a day-indexed series (for ASCII x-axes).
inline std::vector<std::string> year_ticks(int first_day, int last_day) {
  std::vector<std::string> ticks;
  const int first_year = cal::date_of(first_day).year;
  const int last_year = cal::date_of(last_day).year;
  for (int y = first_year; y <= last_year; ++y)
    ticks.push_back(std::to_string(y));
  return ticks;
}

}  // namespace leaf::bench
