// Figure 5 — "The LEAgrams that decompose NRMSE time-series" (§5).
//
// Builds LEAgrams (date x feature-bin heat maps of signed Normalized
// Error) for (a) the static CatBoost-stand-in and (b) the same model
// chain under LEAF mitigation, over the full test period, decomposed on
// pdcp_dl_datavol_mb.  Checks the paper's qualitative reads:
//   * Mar-Nov 2020 (lockdown): large POSITIVE errors (overestimation) in
//     the high-volume bins — operators would have overbuilt;
//   * after Oct 2021: overestimation again at mid/high bins, plus
//     negative pockets (underestimation -> user dissatisfaction);
//   * the mitigated LEAgram (b) is visibly flatter; the paper quotes a
//     32.68% error reduction with "a major mitigation focus ... at the
//     tail".
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "explain/lea.hpp"
#include "models/factory.hpp"

using namespace leaf;

namespace {

/// Accumulates per-(day, bin) signed NE from run_scheme's prediction sink
/// and finalizes into a LeaGram.
struct LeaGramAccumulator {
  int feature;
  std::vector<double> edges;
  std::map<int, std::vector<std::pair<double, int>>> cells;  // day -> per-bin (sum, n)

  void add(int day, const data::SupervisedSet& test,
           std::span<const double> pred, double norm_range) {
    auto& row = cells[day];
    row.resize(edges.size() + 1, {0.0, 0});
    for (std::size_t i = 0; i < test.size(); ++i) {
      const double fv = test.X(i, static_cast<std::size_t>(feature));
      const std::size_t b = explain::lea_bin_of(fv, edges);
      row[b].first += (pred[i] - test.y[i]) / norm_range;
      row[b].second += 1;
    }
  }

  explain::LeaGram finalize(const std::string& name) const {
    explain::LeaGram g;
    g.feature = feature;
    g.feature_name = name;
    g.edges = edges;
    g.days.reserve(cells.size());
    for (const auto& [day, row] : cells) g.days.push_back(day);
    g.ne = Matrix(g.days.size(), edges.size() + 1,
                  std::numeric_limits<double>::quiet_NaN());
    std::size_t r = 0;
    for (const auto& [day, row] : cells) {
      for (std::size_t b = 0; b < row.size(); ++b)
        if (row[b].second > 0) g.ne(r, b) = row[b].first / row[b].second;
      ++r;
    }
    return g;
  }
};

void dump_csv(const explain::LeaGram& g, const std::string& file) {
  auto w = leaf::bench::csv(file);
  std::vector<std::string> header{"date"};
  for (std::size_t b = 0; b < g.edges.size() + 1; ++b)
    header.push_back("bin" + std::to_string(b));
  w.row(header);
  for (std::size_t r = 0; r < g.days.size(); ++r) {
    std::vector<std::string> row{cal::day_to_string(g.days[r])};
    for (std::size_t b = 0; b < g.ne.cols(); ++b) {
      const double v = g.ne(r, b);
      row.push_back(std::isfinite(v) ? fmt(v) : "");
    }
    w.row(row);
  }
  leaf::bench::require_ok(w);
}

/// Mean NE over finite cells of one calendar window (for the lockdown
/// overestimation check).
double window_mean_ne(const explain::LeaGram& g, int lo_day, int hi_day,
                      std::size_t lo_bin) {
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t r = 0; r < g.days.size(); ++r) {
    if (g.days[r] < lo_day || g.days[r] > hi_day) continue;
    for (std::size_t b = lo_bin; b < g.ne.cols(); ++b) {
      const double v = g.ne(r, b);
      if (!std::isfinite(v)) continue;
      acc += v;
      ++n;
    }
  }
  return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  bench::banner("Figure 5",
                "LEAgram of static vs LEAF-mitigated GBDT on DVol "
                "(signed NE by date x pdcp_dl_datavol_mb bin)",
                scale);

  const data::CellularDataset ds = data::generate_fixed_dataset(scale);
  const data::Featurizer featurizer(ds, data::TargetKpi::kDVol);
  const double norm_range = featurizer.norm_range();
  const int feature = ds.schema().column_of("pdcp_dl_datavol_mb");

  // Shared bin edges from the full test period's feature values.
  const data::SupervisedSet full_test =
      featurizer.window(cal::anchor_2018_07_01() + 1,
                        ds.num_days() - 1 - featurizer.horizon());
  const int bins = 24;
  const std::vector<double> edges = explain::lea_bin_edges(
      full_test.X.col(static_cast<std::size_t>(feature)), bins);

  const auto model = models::make_model(models::ModelFamily::kGbdt, scale, 7);
  const core::EvalConfig cfg = core::make_eval_config(scale);
  const double dispersion = core::kpi_dispersion(ds, data::TargetKpi::kDVol);

  auto run_with_gram = [&](core::MitigationScheme& scheme) {
    LeaGramAccumulator acc{feature, edges, {}};
    const core::EvalResult result = core::run_scheme(
        featurizer, *model, scheme, cfg, {},
        [&](int day, const data::SupervisedSet& test,
            std::span<const double> pred) {
          acc.add(day, test, pred, norm_range);
        });
    return std::make_pair(acc.finalize("pdcp_dl_datavol_mb"), result);
  };

  core::StaticScheme static_scheme;
  const auto [gram_static, run_static] = run_with_gram(static_scheme);
  std::printf("--- (a) static model ---\n%s\n", gram_static.render().c_str());
  dump_csv(gram_static, "fig5a_leagram_static.csv");

  const auto leaf_scheme = core::make_scheme("LEAF", dispersion);
  const auto [gram_leaf, run_leaf] = run_with_gram(*leaf_scheme);
  std::printf("--- (b) LEAF-mitigated (%d retrains) ---\n%s\n",
              run_leaf.retrain_count(), gram_leaf.render().c_str());
  dump_csv(gram_leaf, "fig5b_leagram_leaf.csv");

  // Qualitative checks.
  const std::size_t hi_bin = (edges.size() + 1) / 2;
  const double lockdown_ne = window_mean_ne(
      gram_static, cal::covid_start(), cal::covid_recovery_end(), hi_bin);
  const double late21_ne = window_mean_ne(
      gram_static, cal::day_index(cal::Date{2021, 10, 1}),
      cal::day_index(cal::Date{2022, 3, 28}), hi_bin);
  std::printf("static mean NE, upper bins, Mar-Oct 2020 (lockdown): %+0.4f "
              "(paper: positive = overestimation)\n",
              lockdown_ne);
  std::printf("static mean NE, upper bins, Oct 2021 - Mar 2022:      %+0.4f\n",
              late21_ne);
  std::printf("mean |NE|: static %.4f -> LEAF %.4f  (%.1f%% reduction; "
              "paper quotes 32.68%%)\n",
              gram_static.mean_abs_ne(), gram_leaf.mean_abs_ne(),
              100.0 * (1.0 - gram_leaf.mean_abs_ne() /
                                 gram_static.mean_abs_ne()));
  std::printf("ΔNRMSE̅ of the LEAF run vs static: %+.2f%%\n",
              core::delta_vs_static(run_leaf, run_static));
  return 0;
}
