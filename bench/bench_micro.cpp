// Microbenchmarks (google-benchmark): throughput of the building blocks —
// dataset synthesis, model fit/predict, drift-detector updates, and the
// explainer's LEA pass.  Not a paper artifact; used to budget the
// experiment benches and catch performance regressions.
//
// After the google-benchmark suite, main() runs a LEAF_THREADS scaling
// sweep (threads ∈ {1,2,4,8} × {forest fit, GBDT fit, permutation
// importance, full run_scheme}) and writes the measured wall times and
// speedups to $LEAF_BENCH_OUT/BENCH_parallel.json.
//
// With --kernels the gbench suite and the thread sweep are skipped and a
// leaf::simd micro-suite runs instead: each kernel is timed through its
// scalar reference and its vectorized implementation, the two results are
// asserted bit-identical, and per-kernel ns/op + speedup + a result
// fingerprint go to $LEAF_BENCH_OUT/BENCH_kernels.json.  CI diffs that
// fingerprint between -DLEAF_SIMD=ON and OFF builds.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <numeric>
#include <string_view>
#include <thread>

#include "bench_common.hpp"
#include "common/calendar.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/experiment.hpp"
#include "core/scheme.hpp"
#include "data/generator.hpp"
#include "drift/adwin.hpp"
#include "drift/ddm.hpp"
#include "drift/kswin.hpp"
#include "explain/importance.hpp"
#include "explain/lea.hpp"
#include "models/factory.hpp"
#include "models/forest.hpp"
#include "par/pool.hpp"
#include "simd/kernels.hpp"
#include "simd/simd.hpp"

using namespace leaf;

namespace {

/// Small synthetic regression problem shared by the model benchmarks.
struct Problem {
  Matrix X;
  std::vector<double> y;

  static const Problem& get() {
    static const Problem p = [] {
      Problem out;
      Rng rng(42);
      const std::size_t n = 512, k = 64;
      out.X = Matrix(n, k);
      out.y.resize(n);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < k; ++c) out.X(r, c) = rng.normal();
        out.y[r] = 2.0 * out.X(r, 0) - out.X(r, 3) + 0.1 * rng.normal();
      }
      return out;
    }();
    return p;
  }
};

void BM_DatasetGeneration(benchmark::State& state) {
  Scale scale = Scale::for_level(Scale::Level::kSmall);
  scale.fixed_enbs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto ds = data::generate_fixed_dataset(scale);
    benchmark::DoNotOptimize(ds.total_logs());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          cal::study_length());
}
BENCHMARK(BM_DatasetGeneration)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_ModelFit(benchmark::State& state) {
  const auto& p = Problem::get();
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto family = static_cast<models::ModelFamily>(state.range(0));
  const auto model = models::make_model(family, scale, 1);
  for (auto _ : state) {
    auto m = model->clone_untrained();
    m->fit(p.X, p.y);
    benchmark::DoNotOptimize(m->trained());
  }
  state.SetLabel(models::to_string(family));
}
BENCHMARK(BM_ModelFit)
    ->Arg(static_cast<int>(models::ModelFamily::kGbdt))
    ->Arg(static_cast<int>(models::ModelFamily::kRandomForest))
    ->Arg(static_cast<int>(models::ModelFamily::kExtraTrees))
    ->Arg(static_cast<int>(models::ModelFamily::kKnn))
    ->Arg(static_cast<int>(models::ModelFamily::kRidge))
    ->Unit(benchmark::kMillisecond);

void BM_ModelPredict(benchmark::State& state) {
  const auto& p = Problem::get();
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto family = static_cast<models::ModelFamily>(state.range(0));
  const auto model = models::make_model(family, scale, 1);
  model->fit(p.X, p.y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->predict_one(p.X.row(0)));
  }
  state.SetLabel(models::to_string(family));
}
BENCHMARK(BM_ModelPredict)
    ->Arg(static_cast<int>(models::ModelFamily::kGbdt))
    ->Arg(static_cast<int>(models::ModelFamily::kKnn))
    ->Arg(static_cast<int>(models::ModelFamily::kLstm))
    ->Arg(static_cast<int>(models::ModelFamily::kRidge));

template <typename Detector>
void BM_DetectorUpdate(benchmark::State& state) {
  Detector det;
  Rng rng(7);
  std::vector<double> stream(4096);
  for (auto& v : stream) v = 0.05 + 0.01 * rng.normal();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.update(stream[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorUpdate<drift::Kswin>);
BENCHMARK(BM_DetectorUpdate<drift::Adwin>);
BENCHMARK(BM_DetectorUpdate<drift::Ddm>);
BENCHMARK(BM_DetectorUpdate<drift::HddmA>);
BENCHMARK(BM_DetectorUpdate<drift::PageHinkley>);

void BM_KsTest(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> a(static_cast<std::size_t>(state.range(0)));
  std::vector<double> b(a.size());
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal(0.3, 1.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::ks_p_value(a, b));
  }
}
BENCHMARK(BM_KsTest)->Arg(30)->Arg(100)->Arg(1000);

void BM_LeaCompute(benchmark::State& state) {
  const auto& p = Problem::get();
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto model = models::make_model(models::ModelFamily::kGbdt, scale, 1);
  model->fit(p.X, p.y);
  const std::vector<double> pred = model->predict(p.X);
  const std::vector<double> fv = p.X.col(0);
  const std::vector<double> edges = explain::lea_bin_edges(fv, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        explain::compute_lea(pred, p.y, fv, 0, 1.0, edges));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.y.size()));
}
BENCHMARK(BM_LeaCompute);

void BM_PermutationImportance(benchmark::State& state) {
  const auto& p = Problem::get();
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto model = models::make_model(models::ModelFamily::kGbdt, scale, 1);
  model->fit(p.X, p.y);
  Rng rng(9);
  explain::ImportanceConfig cfg;
  cfg.repeats = 1;
  cfg.max_rows = 256;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        explain::permutation_importance(*model, p.X, p.y, 1.0, rng, cfg));
  }
}
BENCHMARK(BM_PermutationImportance)->Unit(benchmark::kMillisecond);

// --- LEAF_THREADS scaling sweep -------------------------------------------

struct SweepWorkload {
  const char* name;
  std::function<void()> body;
};

void run_thread_sweep(bool smoke) {
  const auto& p = Problem::get();
  const Scale scale = Scale::for_level(Scale::Level::kSmall);

  // A fitted model for the importance workload (fit once, score per rep).
  const auto imp_model =
      models::make_model(models::ModelFamily::kGbdt, scale, 1);
  imp_model->fit(p.X, p.y);

  // Tiny dataset for the end-to-end run_scheme workload.
  Scale eval_scale = scale;
  eval_scale.fixed_enbs = 6;
  eval_scale.num_kpis = 16;
  eval_scale.gbdt_trees = 15;
  eval_scale.eval_stride_days = 4;
  const data::CellularDataset ds =
      data::generate_fixed_dataset(eval_scale, 42);
  const data::Featurizer featurizer(ds, data::TargetKpi::kDVol);

  const SweepWorkload workloads[] = {
      {"forest_fit",
       [&] {
         models::Forest f(models::ForestConfig::random_forest(48, 7), "RF");
         f.fit(p.X, p.y);
         benchmark::DoNotOptimize(f.trained());
       }},
      {"gbdt_fit",
       [&] {
         const auto m =
             models::make_model(models::ModelFamily::kGbdt, scale, 1);
         m->fit(p.X, p.y);
         benchmark::DoNotOptimize(m->trained());
       }},
      {"permutation_importance",
       [&] {
         Rng rng(9);
         explain::ImportanceConfig cfg;
         cfg.repeats = 2;
         cfg.max_rows = 256;
         benchmark::DoNotOptimize(explain::permutation_importance(
             *imp_model, p.X, p.y, 1.0, rng, cfg));
       }},
      {"run_scheme",
       [&] {
         const auto m =
             models::make_model(models::ModelFamily::kGbdt, eval_scale, 1);
         core::TriggeredScheme scheme;
         benchmark::DoNotOptimize(
             core::run_scheme(featurizer, *m, scheme,
                              core::make_eval_config(eval_scale))
                 .retrain_count());
       }},
  };

  // --smoke: one rep at 1 and 2 threads — enough to exercise every
  // workload and produce a parseable BENCH_parallel.json in CI.
  const std::vector<int> sweep_threads =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const int reps = smoke ? 1 : 3;
  std::printf("\nLEAF_THREADS scaling sweep (best-of-%d wall ms)\n", reps);
  std::printf("%-24s", "workload");
  for (int t : sweep_threads) std::printf("  t=%-10d", t);
  std::printf("\n");

  std::ofstream json(bench::out_dir() + "/BENCH_parallel.json");
  json << "{\n  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n  \"workloads\": [\n";
  bool first_wl = true;
  for (const auto& wl : workloads) {
    double serial_ms = 0.0;
    std::printf("%-24s", wl.name);
    if (!first_wl) json << ",\n";
    first_wl = false;
    json << "    {\"name\": \"" << wl.name << "\", \"runs\": [";
    bool first_run = true;
    for (int t : sweep_threads) {
      par::set_threads(t);
      const double ms = bench::time_best_ms(wl.name, wl.body, reps);
      if (t == 1) serial_ms = ms;
      const double speedup = ms > 0.0 ? serial_ms / ms : 0.0;
      std::printf("  %7.2f/%4.2fx", ms, speedup);
      if (!first_run) json << ", ";
      first_run = false;
      json << "{\"threads\": " << t << ", \"ms\": " << ms
           << ", \"speedup\": " << speedup << "}";
    }
    std::printf("\n");
    json << "]}";
  }
  json << "\n  ],\n  \"metrics\": " << bench::metrics_json() << "\n}\n";
  par::set_threads(0);  // restore the LEAF_THREADS / hardware default
  std::printf("wrote %s/BENCH_parallel.json\n", bench::out_dir().c_str());
}

// --- leaf::simd kernel micro-suite (--kernels) ----------------------------

/// FNV-1a over raw bytes; chained across kernels for the suite fingerprint.
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t h = 1469598103934665603ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

volatile double g_kernel_sink = 0.0;

struct KernelRow {
  const char* name;
  std::size_t n;          // elements processed per call
  double scalar_ns_op;
  double vector_ns_op;
  bool bit_identical;
  std::uint64_t fingerprint;  // over the (shared) result bits
};

/// Times one (scalar, vector) kernel pair: `iters` calls per timed rep,
/// best of `reps`, normalized to ns per element.
double time_kernel_ns_op(const char* site, const std::function<void()>& call,
                         std::size_t iters, std::size_t n, int reps) {
  const double ms = bench::time_best_ms(
      site,
      [&] {
        for (std::size_t it = 0; it < iters; ++it) call();
      },
      reps);
  return ms * 1e6 / (static_cast<double>(iters) * static_cast<double>(n));
}

void run_kernel_suite(bool smoke) {
  const int reps = smoke ? 2 : 7;
  // Odd sizes on purpose: every kernel call exercises the tail path.
  const std::size_t n = smoke ? 4101 : 16381;
  const std::size_t iters = smoke ? 40 : 250;

  Rng rng(123);
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.normal();
    b[i] = rng.normal();
  }
  // nrmse inputs: like a/b but with non-finite entries the kernel must
  // mask out identically on both paths.
  std::vector<double> pred = a, truth = b;
  pred[n / 3] = std::numeric_limits<double>::quiet_NaN();
  truth[n / 2] = std::numeric_limits<double>::infinity();
  pred[n - 1] = -std::numeric_limits<double>::infinity();

  // Column-major training block for the distance kernel.
  const std::size_t drows = smoke ? 2051 : 8195;
  const std::size_t dcols = 48;
  std::vector<double> colsm(drows * dcols);
  for (auto& v : colsm) v = rng.normal();
  std::vector<double> z(dcols);
  for (auto& v : z) v = rng.normal();
  std::vector<double> dist_s(drows), dist_v(drows);

  // Histogram inputs: identity gather over n rows, 32 bins.
  const int nbins = 32;
  std::vector<std::uint8_t> codes(n);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.index(nbins));
  std::vector<std::size_t> rows_idx(n);
  std::iota(rows_idx.begin(), rows_idx.end(), std::size_t{0});
  std::vector<double> hw_s(nbins), hwy_s(nbins), hw_v(nbins), hwy_v(nbins);

  std::vector<double> y_s = b, y_v = b;

  std::vector<KernelRow> table;

  const auto bits_eq = [](const void* x, const void* y, std::size_t bytes) {
    return std::memcmp(x, y, bytes) == 0;
  };

  {  // dot (also covers sum/gemv row-dot shape)
    const double ds = simd::scalar::dot(a.data(), b.data(), n);
    const double dv = simd::vector::dot(a.data(), b.data(), n);
    KernelRow row{"dot", n, 0.0, 0.0, bits_eq(&ds, &dv, sizeof ds),
                  fnv1a(&dv, sizeof dv)};
    row.scalar_ns_op = time_kernel_ns_op(
        "kernel.dot.scalar",
        [&] { g_kernel_sink = simd::scalar::dot(a.data(), b.data(), n); },
        iters, n, reps);
    row.vector_ns_op = time_kernel_ns_op(
        "kernel.dot.vector",
        [&] { g_kernel_sink = simd::vector::dot(a.data(), b.data(), n); },
        iters, n, reps);
    table.push_back(row);
  }
  {  // axpy
    simd::scalar::axpy(0.37, a.data(), y_s.data(), n);
    simd::vector::axpy(0.37, a.data(), y_v.data(), n);
    KernelRow row{"axpy", n, 0.0, 0.0,
                  bits_eq(y_s.data(), y_v.data(), n * sizeof(double)),
                  fnv1a(y_v.data(), n * sizeof(double))};
    row.scalar_ns_op = time_kernel_ns_op(
        "kernel.axpy.scalar",
        [&] { simd::scalar::axpy(1e-9, a.data(), y_s.data(), n); }, iters, n,
        reps);
    row.vector_ns_op = time_kernel_ns_op(
        "kernel.axpy.vector",
        [&] { simd::vector::axpy(1e-9, a.data(), y_v.data(), n); }, iters, n,
        reps);
    table.push_back(row);
  }
  {  // nrmse core: finite-masked squared-error reduction
    const simd::ErrorAcc es = simd::scalar::squared_error(pred.data(),
                                                          truth.data(), n);
    const simd::ErrorAcc ev = simd::vector::squared_error(pred.data(),
                                                          truth.data(), n);
    const bool same = bits_eq(&es.sum_sq, &ev.sum_sq, sizeof es.sum_sq) &&
                      es.finite == ev.finite;
    std::uint64_t fp = fnv1a(&ev.sum_sq, sizeof ev.sum_sq);
    fp = fnv1a(&ev.finite, sizeof ev.finite, fp);
    KernelRow row{"nrmse", n, 0.0, 0.0, same, fp};
    row.scalar_ns_op = time_kernel_ns_op(
        "kernel.nrmse.scalar",
        [&] {
          g_kernel_sink =
              simd::scalar::squared_error(pred.data(), truth.data(), n).sum_sq;
        },
        iters, n, reps);
    row.vector_ns_op = time_kernel_ns_op(
        "kernel.nrmse.vector",
        [&] {
          g_kernel_sink =
              simd::vector::squared_error(pred.data(), truth.data(), n).sum_sq;
        },
        iters, n, reps);
    table.push_back(row);
  }
  {  // l2_distance: the KNN block kernel (8 distances in flight)
    simd::scalar::l2_distances_cols(colsm.data(), drows, z.data(), dcols,
                                    dist_s.data());
    simd::vector::l2_distances_cols(colsm.data(), drows, z.data(), dcols,
                                    dist_v.data());
    KernelRow row{"l2_distance", drows * dcols, 0.0, 0.0,
                  bits_eq(dist_s.data(), dist_v.data(),
                          drows * sizeof(double)),
                  fnv1a(dist_v.data(), drows * sizeof(double))};
    const std::size_t diters = smoke ? 8 : 30;
    row.scalar_ns_op = time_kernel_ns_op(
        "kernel.l2.scalar",
        [&] {
          simd::scalar::l2_distances_cols(colsm.data(), drows, z.data(), dcols,
                                          dist_s.data());
        },
        diters, drows * dcols, reps);
    row.vector_ns_op = time_kernel_ns_op(
        "kernel.l2.vector",
        [&] {
          simd::vector::l2_distances_cols(colsm.data(), drows, z.data(), dcols,
                                          dist_v.data());
        },
        diters, drows * dcols, reps);
    table.push_back(row);
  }
  {  // histogram: scatter-bound; the vector entry forwards to scalar, so
     // this row documents parity rather than a speedup.
    const simd::HistBounds hs = simd::scalar::hist_accumulate(
        codes.data(), rows_idx.data(), a.data(), b.data(), n, nbins,
        hw_s.data(), hwy_s.data());
    const simd::HistBounds hv = simd::vector::hist_accumulate(
        codes.data(), rows_idx.data(), a.data(), b.data(), n, nbins,
        hw_v.data(), hwy_v.data());
    const bool same =
        hs.lo_bin == hv.lo_bin && hs.hi_bin == hv.hi_bin &&
        bits_eq(hw_s.data(), hw_v.data(), hw_s.size() * sizeof(double)) &&
        bits_eq(hwy_s.data(), hwy_v.data(), hwy_s.size() * sizeof(double));
    std::uint64_t fp = fnv1a(hw_v.data(), hw_v.size() * sizeof(double));
    fp = fnv1a(hwy_v.data(), hwy_v.size() * sizeof(double), fp);
    KernelRow row{"histogram", n, 0.0, 0.0, same, fp};
    const std::size_t hiters = smoke ? 20 : 120;
    row.scalar_ns_op = time_kernel_ns_op(
        "kernel.hist.scalar",
        [&] {
          simd::scalar::hist_accumulate(codes.data(), rows_idx.data(),
                                        a.data(), b.data(), n, nbins,
                                        hw_s.data(), hwy_s.data());
        },
        hiters, n, reps);
    row.vector_ns_op = time_kernel_ns_op(
        "kernel.hist.vector",
        [&] {
          simd::vector::hist_accumulate(codes.data(), rows_idx.data(),
                                        a.data(), b.data(), n, nbins,
                                        hw_v.data(), hwy_v.data());
        },
        hiters, n, reps);
    table.push_back(row);
  }

  std::printf("leaf::simd kernel suite  (isa=%s, compiled_in=%d, best-of-%d)\n",
              simd::vector::isa(), simd::compiled_in() ? 1 : 0, reps);
  std::printf("%-12s %10s %14s %14s %9s %5s\n", "kernel", "n", "scalar ns/op",
              "vector ns/op", "speedup", "bits");
  bool all_identical = true;
  std::uint64_t suite_fp = 1469598103934665603ULL;
  for (const auto& row : table) {
    const double speedup =
        row.vector_ns_op > 0.0 ? row.scalar_ns_op / row.vector_ns_op : 0.0;
    std::printf("%-12s %10zu %14.3f %14.3f %8.2fx %5s\n", row.name, row.n,
                row.scalar_ns_op, row.vector_ns_op, speedup,
                row.bit_identical ? "ok" : "DIFF");
    all_identical = all_identical && row.bit_identical;
    suite_fp = fnv1a(&row.fingerprint, sizeof row.fingerprint, suite_fp);
  }

  std::ofstream json(bench::out_dir() + "/BENCH_kernels.json");
  json << "{\n  \"isa\": \"" << simd::vector::isa() << "\",\n"
       << "  \"simd_compiled\": " << (simd::compiled_in() ? "true" : "false")
       << ",\n  \"all_bit_identical\": " << (all_identical ? "true" : "false")
       << ",\n  \"fingerprint\": \"" << std::hex << suite_fp << std::dec
       << "\",\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto& row = table[i];
    const double speedup =
        row.vector_ns_op > 0.0 ? row.scalar_ns_op / row.vector_ns_op : 0.0;
    json << "    {\"name\": \"" << row.name << "\", \"n\": " << row.n
         << ", \"scalar_ns_op\": " << row.scalar_ns_op
         << ", \"vector_ns_op\": " << row.vector_ns_op
         << ", \"speedup\": " << speedup << ", \"bit_identical\": "
         << (row.bit_identical ? "true" : "false") << ", \"fingerprint\": \""
         << std::hex << row.fingerprint << std::dec << "\"}"
         << (i + 1 < table.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"metrics\": " << bench::metrics_json() << "\n}\n";
  std::printf("wrote %s/BENCH_kernels.json\n", bench::out_dir().c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: scalar and vector kernel results are not "
                 "bit-identical\n");
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --smoke / --kernels before google-benchmark sees the argv.
  bool smoke = false;
  bool kernels = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      smoke = true;
      continue;
    }
    if (std::string_view(argv[i]) == "--kernels") {
      kernels = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  argv[argc] = nullptr;

  if (kernels) {
    run_kernel_suite(smoke);
    return 0;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_thread_sweep(smoke);
  return 0;
}
