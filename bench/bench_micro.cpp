// Microbenchmarks (google-benchmark): throughput of the building blocks —
// dataset synthesis, model fit/predict, drift-detector updates, and the
// explainer's LEA pass.  Not a paper artifact; used to budget the
// experiment benches and catch performance regressions.
//
// After the google-benchmark suite, main() runs a LEAF_THREADS scaling
// sweep (threads ∈ {1,2,4,8} × {forest fit, GBDT fit, permutation
// importance, full run_scheme}) and writes the measured wall times and
// speedups to $LEAF_BENCH_OUT/BENCH_parallel.json.
#include <benchmark/benchmark.h>

#include <fstream>
#include <functional>
#include <string_view>
#include <thread>

#include "bench_common.hpp"
#include "common/calendar.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/experiment.hpp"
#include "core/scheme.hpp"
#include "data/generator.hpp"
#include "drift/adwin.hpp"
#include "drift/ddm.hpp"
#include "drift/kswin.hpp"
#include "explain/importance.hpp"
#include "explain/lea.hpp"
#include "models/factory.hpp"
#include "models/forest.hpp"
#include "par/pool.hpp"

using namespace leaf;

namespace {

/// Small synthetic regression problem shared by the model benchmarks.
struct Problem {
  Matrix X;
  std::vector<double> y;

  static const Problem& get() {
    static const Problem p = [] {
      Problem out;
      Rng rng(42);
      const std::size_t n = 512, k = 64;
      out.X = Matrix(n, k);
      out.y.resize(n);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < k; ++c) out.X(r, c) = rng.normal();
        out.y[r] = 2.0 * out.X(r, 0) - out.X(r, 3) + 0.1 * rng.normal();
      }
      return out;
    }();
    return p;
  }
};

void BM_DatasetGeneration(benchmark::State& state) {
  Scale scale = Scale::for_level(Scale::Level::kSmall);
  scale.fixed_enbs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto ds = data::generate_fixed_dataset(scale);
    benchmark::DoNotOptimize(ds.total_logs());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          cal::study_length());
}
BENCHMARK(BM_DatasetGeneration)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_ModelFit(benchmark::State& state) {
  const auto& p = Problem::get();
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto family = static_cast<models::ModelFamily>(state.range(0));
  const auto model = models::make_model(family, scale, 1);
  for (auto _ : state) {
    auto m = model->clone_untrained();
    m->fit(p.X, p.y);
    benchmark::DoNotOptimize(m->trained());
  }
  state.SetLabel(models::to_string(family));
}
BENCHMARK(BM_ModelFit)
    ->Arg(static_cast<int>(models::ModelFamily::kGbdt))
    ->Arg(static_cast<int>(models::ModelFamily::kRandomForest))
    ->Arg(static_cast<int>(models::ModelFamily::kExtraTrees))
    ->Arg(static_cast<int>(models::ModelFamily::kKnn))
    ->Arg(static_cast<int>(models::ModelFamily::kRidge))
    ->Unit(benchmark::kMillisecond);

void BM_ModelPredict(benchmark::State& state) {
  const auto& p = Problem::get();
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto family = static_cast<models::ModelFamily>(state.range(0));
  const auto model = models::make_model(family, scale, 1);
  model->fit(p.X, p.y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->predict_one(p.X.row(0)));
  }
  state.SetLabel(models::to_string(family));
}
BENCHMARK(BM_ModelPredict)
    ->Arg(static_cast<int>(models::ModelFamily::kGbdt))
    ->Arg(static_cast<int>(models::ModelFamily::kKnn))
    ->Arg(static_cast<int>(models::ModelFamily::kLstm))
    ->Arg(static_cast<int>(models::ModelFamily::kRidge));

template <typename Detector>
void BM_DetectorUpdate(benchmark::State& state) {
  Detector det;
  Rng rng(7);
  std::vector<double> stream(4096);
  for (auto& v : stream) v = 0.05 + 0.01 * rng.normal();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.update(stream[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorUpdate<drift::Kswin>);
BENCHMARK(BM_DetectorUpdate<drift::Adwin>);
BENCHMARK(BM_DetectorUpdate<drift::Ddm>);
BENCHMARK(BM_DetectorUpdate<drift::HddmA>);
BENCHMARK(BM_DetectorUpdate<drift::PageHinkley>);

void BM_KsTest(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> a(static_cast<std::size_t>(state.range(0)));
  std::vector<double> b(a.size());
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal(0.3, 1.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::ks_p_value(a, b));
  }
}
BENCHMARK(BM_KsTest)->Arg(30)->Arg(100)->Arg(1000);

void BM_LeaCompute(benchmark::State& state) {
  const auto& p = Problem::get();
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto model = models::make_model(models::ModelFamily::kGbdt, scale, 1);
  model->fit(p.X, p.y);
  const std::vector<double> pred = model->predict(p.X);
  const std::vector<double> fv = p.X.col(0);
  const std::vector<double> edges = explain::lea_bin_edges(fv, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        explain::compute_lea(pred, p.y, fv, 0, 1.0, edges));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.y.size()));
}
BENCHMARK(BM_LeaCompute);

void BM_PermutationImportance(benchmark::State& state) {
  const auto& p = Problem::get();
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto model = models::make_model(models::ModelFamily::kGbdt, scale, 1);
  model->fit(p.X, p.y);
  Rng rng(9);
  explain::ImportanceConfig cfg;
  cfg.repeats = 1;
  cfg.max_rows = 256;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        explain::permutation_importance(*model, p.X, p.y, 1.0, rng, cfg));
  }
}
BENCHMARK(BM_PermutationImportance)->Unit(benchmark::kMillisecond);

// --- LEAF_THREADS scaling sweep -------------------------------------------

struct SweepWorkload {
  const char* name;
  std::function<void()> body;
};

void run_thread_sweep(bool smoke) {
  const auto& p = Problem::get();
  const Scale scale = Scale::for_level(Scale::Level::kSmall);

  // A fitted model for the importance workload (fit once, score per rep).
  const auto imp_model =
      models::make_model(models::ModelFamily::kGbdt, scale, 1);
  imp_model->fit(p.X, p.y);

  // Tiny dataset for the end-to-end run_scheme workload.
  Scale eval_scale = scale;
  eval_scale.fixed_enbs = 6;
  eval_scale.num_kpis = 16;
  eval_scale.gbdt_trees = 15;
  eval_scale.eval_stride_days = 4;
  const data::CellularDataset ds =
      data::generate_fixed_dataset(eval_scale, 42);
  const data::Featurizer featurizer(ds, data::TargetKpi::kDVol);

  const SweepWorkload workloads[] = {
      {"forest_fit",
       [&] {
         models::Forest f(models::ForestConfig::random_forest(48, 7), "RF");
         f.fit(p.X, p.y);
         benchmark::DoNotOptimize(f.trained());
       }},
      {"gbdt_fit",
       [&] {
         const auto m =
             models::make_model(models::ModelFamily::kGbdt, scale, 1);
         m->fit(p.X, p.y);
         benchmark::DoNotOptimize(m->trained());
       }},
      {"permutation_importance",
       [&] {
         Rng rng(9);
         explain::ImportanceConfig cfg;
         cfg.repeats = 2;
         cfg.max_rows = 256;
         benchmark::DoNotOptimize(explain::permutation_importance(
             *imp_model, p.X, p.y, 1.0, rng, cfg));
       }},
      {"run_scheme",
       [&] {
         const auto m =
             models::make_model(models::ModelFamily::kGbdt, eval_scale, 1);
         core::TriggeredScheme scheme;
         benchmark::DoNotOptimize(
             core::run_scheme(featurizer, *m, scheme,
                              core::make_eval_config(eval_scale))
                 .retrain_count());
       }},
  };

  // --smoke: one rep at 1 and 2 threads — enough to exercise every
  // workload and produce a parseable BENCH_parallel.json in CI.
  const std::vector<int> sweep_threads =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const int reps = smoke ? 1 : 3;
  std::printf("\nLEAF_THREADS scaling sweep (best-of-%d wall ms)\n", reps);
  std::printf("%-24s", "workload");
  for (int t : sweep_threads) std::printf("  t=%-10d", t);
  std::printf("\n");

  std::ofstream json(bench::out_dir() + "/BENCH_parallel.json");
  json << "{\n  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n  \"workloads\": [\n";
  bool first_wl = true;
  for (const auto& wl : workloads) {
    double serial_ms = 0.0;
    std::printf("%-24s", wl.name);
    if (!first_wl) json << ",\n";
    first_wl = false;
    json << "    {\"name\": \"" << wl.name << "\", \"runs\": [";
    bool first_run = true;
    for (int t : sweep_threads) {
      par::set_threads(t);
      const double ms = bench::time_best_ms(wl.name, wl.body, reps);
      if (t == 1) serial_ms = ms;
      const double speedup = ms > 0.0 ? serial_ms / ms : 0.0;
      std::printf("  %7.2f/%4.2fx", ms, speedup);
      if (!first_run) json << ", ";
      first_run = false;
      json << "{\"threads\": " << t << ", \"ms\": " << ms
           << ", \"speedup\": " << speedup << "}";
    }
    std::printf("\n");
    json << "]}";
  }
  json << "\n  ],\n  \"metrics\": " << bench::metrics_json() << "\n}\n";
  par::set_threads(0);  // restore the LEAF_THREADS / hardware default
  std::printf("wrote %s/BENCH_parallel.json\n", bench::out_dir().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --smoke before google-benchmark sees the argv.
  bool smoke = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      smoke = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  argv[argc] = nullptr;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_thread_sweep(smoke);
  return 0;
}
