// Microbenchmarks (google-benchmark): throughput of the building blocks —
// dataset synthesis, model fit/predict, drift-detector updates, and the
// explainer's LEA pass.  Not a paper artifact; used to budget the
// experiment benches and catch performance regressions.
#include <benchmark/benchmark.h>

#include "common/calendar.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/scheme.hpp"
#include "data/generator.hpp"
#include "drift/adwin.hpp"
#include "drift/ddm.hpp"
#include "drift/kswin.hpp"
#include "explain/importance.hpp"
#include "explain/lea.hpp"
#include "models/factory.hpp"

using namespace leaf;

namespace {

/// Small synthetic regression problem shared by the model benchmarks.
struct Problem {
  Matrix X;
  std::vector<double> y;

  static const Problem& get() {
    static const Problem p = [] {
      Problem out;
      Rng rng(42);
      const std::size_t n = 512, k = 64;
      out.X = Matrix(n, k);
      out.y.resize(n);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < k; ++c) out.X(r, c) = rng.normal();
        out.y[r] = 2.0 * out.X(r, 0) - out.X(r, 3) + 0.1 * rng.normal();
      }
      return out;
    }();
    return p;
  }
};

void BM_DatasetGeneration(benchmark::State& state) {
  Scale scale = Scale::for_level(Scale::Level::kSmall);
  scale.fixed_enbs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto ds = data::generate_fixed_dataset(scale);
    benchmark::DoNotOptimize(ds.total_logs());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          cal::study_length());
}
BENCHMARK(BM_DatasetGeneration)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_ModelFit(benchmark::State& state) {
  const auto& p = Problem::get();
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto family = static_cast<models::ModelFamily>(state.range(0));
  const auto model = models::make_model(family, scale, 1);
  for (auto _ : state) {
    auto m = model->clone_untrained();
    m->fit(p.X, p.y);
    benchmark::DoNotOptimize(m->trained());
  }
  state.SetLabel(models::to_string(family));
}
BENCHMARK(BM_ModelFit)
    ->Arg(static_cast<int>(models::ModelFamily::kGbdt))
    ->Arg(static_cast<int>(models::ModelFamily::kRandomForest))
    ->Arg(static_cast<int>(models::ModelFamily::kExtraTrees))
    ->Arg(static_cast<int>(models::ModelFamily::kKnn))
    ->Arg(static_cast<int>(models::ModelFamily::kRidge))
    ->Unit(benchmark::kMillisecond);

void BM_ModelPredict(benchmark::State& state) {
  const auto& p = Problem::get();
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto family = static_cast<models::ModelFamily>(state.range(0));
  const auto model = models::make_model(family, scale, 1);
  model->fit(p.X, p.y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->predict_one(p.X.row(0)));
  }
  state.SetLabel(models::to_string(family));
}
BENCHMARK(BM_ModelPredict)
    ->Arg(static_cast<int>(models::ModelFamily::kGbdt))
    ->Arg(static_cast<int>(models::ModelFamily::kKnn))
    ->Arg(static_cast<int>(models::ModelFamily::kLstm))
    ->Arg(static_cast<int>(models::ModelFamily::kRidge));

template <typename Detector>
void BM_DetectorUpdate(benchmark::State& state) {
  Detector det;
  Rng rng(7);
  std::vector<double> stream(4096);
  for (auto& v : stream) v = 0.05 + 0.01 * rng.normal();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.update(stream[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorUpdate<drift::Kswin>);
BENCHMARK(BM_DetectorUpdate<drift::Adwin>);
BENCHMARK(BM_DetectorUpdate<drift::Ddm>);
BENCHMARK(BM_DetectorUpdate<drift::HddmA>);
BENCHMARK(BM_DetectorUpdate<drift::PageHinkley>);

void BM_KsTest(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> a(static_cast<std::size_t>(state.range(0)));
  std::vector<double> b(a.size());
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal(0.3, 1.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::ks_p_value(a, b));
  }
}
BENCHMARK(BM_KsTest)->Arg(30)->Arg(100)->Arg(1000);

void BM_LeaCompute(benchmark::State& state) {
  const auto& p = Problem::get();
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto model = models::make_model(models::ModelFamily::kGbdt, scale, 1);
  model->fit(p.X, p.y);
  const std::vector<double> pred = model->predict(p.X);
  const std::vector<double> fv = p.X.col(0);
  const std::vector<double> edges = explain::lea_bin_edges(fv, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        explain::compute_lea(pred, p.y, fv, 0, 1.0, edges));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.y.size()));
}
BENCHMARK(BM_LeaCompute);

void BM_PermutationImportance(benchmark::State& state) {
  const auto& p = Problem::get();
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto model = models::make_model(models::ModelFamily::kGbdt, scale, 1);
  model->fit(p.X, p.y);
  Rng rng(9);
  explain::ImportanceConfig cfg;
  cfg.repeats = 1;
  cfg.max_rows = 256;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        explain::permutation_importance(*model, p.X, p.y, 1.0, rng, cfg));
  }
}
BENCHMARK(BM_PermutationImportance)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
