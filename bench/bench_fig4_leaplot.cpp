// Figures 4 and 8 — the case study's LEAplots (§5, Appendix B), plus the
// "contributing factors" analysis that precedes them.
//
// CatBoost-stand-in on downlink volume, trained statically on 14 days
// before July 1 2018.  The explainer runs on the "Early 2022" drift
// window and should recover the paper's structure:
//   * Group 1's representative is the history of downlink volume itself
//     (pdcp_dl_datavol_mb), with a large correlated group of traffic
//     features — the sanity check;
//   * another group is anchored on coverage (badcoveragemeasurements);
//   * another on the voice/RTP gap features (rtp_gap_ratio_medium);
//   * the LEAplot shows "Early 2022" errors many times the training-set
//     errors in the upper feature range, and very high errors above the
//     range the training set covers at all;
//   * the top-5% error samples concentrate in suburban eNodeBs.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "explain/grouping.hpp"
#include "explain/importance.hpp"
#include "explain/lea.hpp"
#include "models/factory.hpp"

using namespace leaf;

int main() {
  const Scale scale = Scale::from_env();
  bench::banner("Figures 4 & 8",
                "Case study: drift explanation via feature groups + LEAplot "
                "(DVol, GBDT, early-2022 drift)",
                scale);

  const data::CellularDataset ds = data::generate_fixed_dataset(scale);
  const data::Featurizer featurizer(ds, data::TargetKpi::kDVol);
  const double norm_range = featurizer.norm_range();

  // Static model: 14 days before July 1 2018.
  const int anchor = cal::anchor_2018_07_01();
  const data::SupervisedSet train = featurizer.window(anchor - 13, anchor);
  const auto model = models::make_model(models::ModelFamily::kGbdt, scale, 7);
  model->fit(train.X, train.y);

  // Test slices: the full test period and the early-2022 drift window.
  const data::SupervisedSet full_test = featurizer.window(
      anchor + 1, ds.num_days() - 1 - featurizer.horizon());
  const data::SupervisedSet early_2022 = featurizer.window(
      cal::early_2022() - featurizer.horizon(),
      ds.num_days() - 1 - featurizer.horizon());

  // --- contributing factors: importance -> grouping ----------------------
  Rng rng(515);
  const std::vector<double> importance = explain::permutation_importance(
      *model, early_2022.X, early_2022.y, norm_range, rng);
  // Restrict explanations to KPI columns (temporal/area encodings are not
  // operator-meaningful drift factors).
  std::vector<double> kpi_importance = importance;
  for (std::size_t c = static_cast<std::size_t>(featurizer.num_kpi_features());
       c < kpi_importance.size(); ++c)
    kpi_importance[c] = 0.0;
  explain::GroupingConfig gcfg;
  gcfg.max_groups = 3;
  const std::vector<explain::FeatureGroup> groups =
      explain::group_features(early_2022.X, kpi_importance, gcfg);

  std::printf("--- contributing factors (top %zu feature groups) ---\n",
              groups.size());
  TextTable gt({"Group", "Representative", "Importance", "#Members",
                "Member examples"});
  for (std::size_t g = 0; g < groups.size(); ++g) {
    std::string examples;
    for (std::size_t m = 1; m < std::min<std::size_t>(4, groups[g].members.size());
         ++m) {
      if (!examples.empty()) examples += ", ";
      examples +=
          featurizer.feature_names()[static_cast<std::size_t>(groups[g].members[m])];
    }
    gt.add_row({std::to_string(g + 1),
                featurizer.feature_names()[static_cast<std::size_t>(
                    groups[g].representative)],
                fmt_fixed(groups[g].importance, 4),
                std::to_string(groups[g].members.size()), examples});
  }
  std::printf("%s", gt.render().c_str());
  std::printf("paper: group 1 rep = pdcp_dl_datavol_mb (32 members), "
              "group 2 = badcoveragemeasurements, group 3 = "
              "rtp_gap_ratio_medium\n\n");

  // --- LEAplots for the top two groups (Figs. 4 and 8) -------------------
  const int bins = scale.level == Scale::Level::kFull ? 1000 : 50;
  for (std::size_t g = 0; g < std::min<std::size_t>(2, groups.size()); ++g) {
    const int rep = groups[g].representative;
    const std::string rep_name =
        featurizer.feature_names()[static_cast<std::size_t>(rep)];
    const explain::LeaPlot leaplot = explain::build_leaplot(
        *model,
        {{"train", &train}, {"full_test", &full_test}, {"early_2022", &early_2022}},
        rep, rep_name, bins, norm_range);
    std::printf("%s\n", leaplot.render().c_str());

    auto w = bench::csv("fig4_leaplot_group" + std::to_string(g + 1) + ".csv");
    for (const auto& row : leaplot.csv_rows()) w.row(row);
    bench::require_ok(w);

    // Quantify the paper's "10x training error in the 0.6e6-1.3e6 range"
    // claim structurally: mean per-bin error ratio early2022/train over
    // bins where both have samples.
    const auto& tr = leaplot.series[0].second;
    const auto& e22 = leaplot.series[2].second;
    double ratio_acc = 0.0;
    int ratio_n = 0;
    double uncovered_err = 0.0;
    int uncovered_n = 0;
    for (std::size_t b = 0; b < tr.num_bins(); ++b) {
      if (tr.count[b] > 0 && e22.count[b] > 0 && tr.error[b] > 0.0) {
        ratio_acc += e22.error[b] / tr.error[b];
        ++ratio_n;
      }
      if (tr.count[b] == 0 && e22.count[b] > 0) {
        uncovered_err += e22.error[b];
        ++uncovered_n;
      }
    }
    std::printf("group %zu: mean early2022/train per-bin error ratio: %.1fx "
                "(over %d shared bins); mean error in bins the training set "
                "does not cover: %.4f\n\n",
                g + 1, ratio_n > 0 ? ratio_acc / ratio_n : 0.0, ratio_n,
                uncovered_n > 0 ? uncovered_err / uncovered_n : 0.0);
  }

  // --- top-5% error localization (suburban claim) -------------------------
  const std::vector<double> pred = model->predict(early_2022.X);
  std::vector<std::pair<double, int>> err_enb(early_2022.size());
  for (std::size_t i = 0; i < early_2022.size(); ++i)
    err_enb[i] = {std::abs(pred[i] - early_2022.y[i]), early_2022.enb[i]};
  std::sort(err_enb.begin(), err_enb.end(), std::greater<>());
  const std::size_t top = std::max<std::size_t>(1, err_enb.size() / 20);
  std::map<data::AreaType, int> area_counts, fleet_counts;
  for (std::size_t i = 0; i < top; ++i)
    ++area_counts[ds.profiles()[static_cast<std::size_t>(err_enb[i].second)].area];
  for (const auto& p : ds.profiles()) ++fleet_counts[p.area];
  std::printf("--- top-5%% error samples by area (early 2022) ---\n");
  for (const auto& [area, count] : area_counts) {
    std::printf("  %-9s %5.1f%% of top errors  (fleet share %4.1f%%)\n",
                data::to_string(area).c_str(),
                100.0 * count / static_cast<double>(top),
                100.0 * fleet_counts[area] /
                    static_cast<double>(ds.profiles().size()));
  }
  std::printf("paper: \"the top 5%% of error mostly comes from eNodeBs "
              "located at suburban areas\"\n");
  return 0;
}
