// bench_chaos — deterministic chaos harness for the supervision layer.
//
// Drives leaf::serve fleets through seeded fault schedules (leaf::chaos)
// and verifies, at multiple thread counts, the properties CI enforces:
//
//   isolation  permanently faulting 2 of 8 shards quarantines exactly
//              those two while every healthy shard's results and masked
//              supervision stream stay byte-identical to a chaos-free run;
//   rollback   corrupting the newest snapshot generation on disk rolls
//              exactly the damaged shard back to the previous generation
//              (snapshot_fallbacks == 1) with zero healthy-shard
//              divergence after replay;
//   storm      a retrain storm trips the per-shard circuit breaker the
//              same number of times at every thread count;
//   watchdog   an SLO watchdog fed per-step fleet stats trips
//              slo-burn-critical on the quarantine burn, and the event
//              shows up in the merged supervision JSONL;
//   partial    a failed snapshot write leaves no litter and the fleet
//              keeps serving.
//
// Any violation exits non-zero.  Emits BENCH_chaos.{csv,json}; the JSON
// carries the golden event counts the CI chaos job asserts on.
// `--smoke` shrinks the sweep for CI.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chaos/chaos.hpp"
#include "core/evaluation.hpp"
#include "data/generator.hpp"
#include "obs/events.hpp"
#include "obs/slo.hpp"
#include "par/parallel.hpp"
#include "serve/runtime.hpp"

using namespace leaf;

namespace {

std::vector<serve::ShardSpec> make_specs() {
  std::vector<serve::ShardSpec> specs;
  specs.reserve(8);
  for (std::size_t i = 0; i < 8; ++i)
    specs.push_back({data::kAllTargets[i % data::kAllTargets.size()],
                     models::ModelFamily::kRidge,
                     i % 3 == 0 ? "Triggered" : (i % 3 == 1 ? "LEAF" : "Naive30"),
                     0});
  return specs;
}

serve::SupervisorConfig with_chaos(const std::string& spec) {
  serve::SupervisorConfig sup;
  sup.chaos = chaos::ChaosConfig::parse(spec);
  return sup;
}

/// FNV-1a over one shard's result series (nrmse bits + retrain/drift days).
std::size_t fingerprint(const core::EvalResult& r) {
  std::size_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (double v : r.nrmse) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
  for (int d : r.retrain_days) mix(static_cast<std::uint64_t>(d));
  for (int d : r.drift_days) mix(static_cast<std::uint64_t>(d));
  return h;
}

/// Flips one payload bit of the named section inside a LEAFSNAP file on
/// disk (simulated storage rot; layout per io/snapshot.hpp).
bool corrupt_section_on_disk(const std::string& path,
                             const std::string& name) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  in.close();
  const auto rd32 = [&bytes](std::size_t p) {
    return static_cast<std::uint32_t>(bytes[p]) |
           static_cast<std::uint32_t>(bytes[p + 1]) << 8 |
           static_cast<std::uint32_t>(bytes[p + 2]) << 16 |
           static_cast<std::uint32_t>(bytes[p + 3]) << 24;
  };
  std::size_t pos = 8 + 4;  // magic + version
  if (pos + 4 > bytes.size()) return false;
  const std::uint32_t count = rd32(pos);
  pos += 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (pos + 4 > bytes.size()) return false;
    const std::uint32_t name_len = rd32(pos);
    pos += 4;
    if (pos + name_len + 8 + 4 > bytes.size()) return false;
    const std::string section(reinterpret_cast<const char*>(bytes.data() + pos),
                              name_len);
    pos += name_len;
    const std::uint64_t payload_len =
        static_cast<std::uint64_t>(rd32(pos)) |
        static_cast<std::uint64_t>(rd32(pos + 4)) << 32;
    pos += 8 + 4;
    if (pos + payload_len > bytes.size()) return false;
    if (section == name && payload_len > 0) {
      bytes[pos + payload_len / 2] ^= 0x01;
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      return out.good();
    }
    pos += payload_len;
  }
  return false;
}

int fail(const char* what) {
  std::fprintf(stderr, "FATAL: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  Scale scale = Scale::from_env();
  scale.fixed_enbs = std::min(scale.fixed_enbs, 8);
  scale.num_kpis = std::min(scale.num_kpis, 24);
  scale.eval_stride_days = std::max(scale.eval_stride_days, smoke ? 6 : 4);
  bench::banner("chaos", "leaf::chaos supervision & self-healing harness",
                scale);

  const data::CellularDataset ds = data::generate_fixed_dataset(scale, 42);
  const std::vector<int> faulted = {2, 5};
  const std::vector<int> healthy = {0, 1, 3, 4, 6, 7};
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4};

  CsvWriter csv = bench::csv("BENCH_chaos.csv");
  csv.row({"scenario", "threads", "seconds", "quarantined", "faults",
           "breaker_trips", "suppressed_retrains", "snapshot_fallbacks",
           "healthy_divergence"});

  // ---- baseline (no chaos) ------------------------------------------------
  par::set_threads(1);
  serve::FleetRuntime baseline(ds, scale, make_specs());
  const obs::Stopwatch sw_base;
  baseline.run_to_end();
  std::printf("%-10s %8s %10s %12s %8s %10s\n", "scenario", "threads",
              "seconds", "quarantined", "trips", "fallbacks");
  std::printf("%-10s %8d %10.3f %12d %8d %10d\n", "baseline", 1,
              sw_base.seconds(), 0, 0, 0);
  std::vector<std::size_t> base_fp;
  for (const core::EvalResult& r : baseline.results())
    base_fp.push_back(fingerprint(r));

  // ---- isolation: 2 of 8 shards permanently faulted -----------------------
  const std::string isolation_spec = "seed=5,shards=2+5,step-throw=1";
  std::string reference_supervision;
  int isolation_quarantined = 0, isolation_faults = 0;
  for (int threads : thread_counts) {
    par::set_threads(threads);
    serve::FleetRuntime fleet(ds, scale, make_specs(), 2024,
                              with_chaos(isolation_spec));
    const obs::Stopwatch sw;
    fleet.run_to_end();
    const serve::ServeStats st = fleet.stats();

    int divergence = 0;
    const std::vector<core::EvalResult> results = fleet.results();
    for (int s : healthy)
      if (fingerprint(results[s]) != base_fp[s]) ++divergence;
    for (int s : faulted)
      if (st.shards[s].health != serve::ShardHealth::kQuarantined)
        return fail("isolation: targeted shard not quarantined");
    if (st.shards_quarantined != faulted.size())
      return fail("isolation: unexpected quarantine count");
    if (divergence != 0)
      return fail("isolation: healthy shard diverged from chaos-free run");
    const std::string supervision = fleet.supervision_jsonl(false);
    if (threads == thread_counts.front())
      reference_supervision = supervision;
    else if (supervision != reference_supervision)
      return fail("isolation: supervision stream differs across threads");
    isolation_quarantined = static_cast<int>(st.shards_quarantined);
    isolation_faults = st.total_faults;
    std::printf("%-10s %8d %10.3f %12zu %8d %10d\n", "isolation", threads,
                sw.seconds(), st.shards_quarantined, st.total_breaker_trips,
                st.snapshot_fallbacks);
    csv.row({"isolation", std::to_string(threads), fmt(sw.seconds()),
             std::to_string(st.shards_quarantined),
             std::to_string(st.total_faults),
             std::to_string(st.total_breaker_trips),
             std::to_string(st.total_suppressed_retrains),
             std::to_string(st.snapshot_fallbacks), std::to_string(0)});
  }

  // ---- rollback: corrupt newest generation, restore, replay ---------------
  par::set_threads(1);
  const std::string dir = bench::out_dir() + "/chaos_rollback";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  int rollback_fallbacks = 0;
  {
    serve::FleetRuntime victim(ds, scale, make_specs());
    victim.run_steps(2);
    if (victim.snapshot(dir) == 0) return fail("rollback: snapshot failed");
    victim.run_steps(2);
    if (victim.snapshot(dir) == 0) return fail("rollback: snapshot failed");
    if (!corrupt_section_on_disk(dir + "/fleet-000002.leafsnap", "shard6"))
      return fail("rollback: could not corrupt snapshot");

    serve::FleetRuntime revived(ds, scale, make_specs());
    const obs::Stopwatch sw;
    revived.restore(dir);
    rollback_fallbacks = revived.stats().snapshot_fallbacks;
    if (rollback_fallbacks != 1)
      return fail("rollback: expected exactly one shard fallback");
    revived.run_to_end();
    int divergence = 0;
    const std::vector<core::EvalResult> results = revived.results();
    for (std::size_t s = 0; s < results.size(); ++s)
      if (fingerprint(results[s]) != base_fp[s]) ++divergence;
    if (divergence != 0)
      return fail("rollback: replay diverged from uninterrupted run");
    std::printf("%-10s %8d %10.3f %12d %8d %10d\n", "rollback", 1,
                sw.seconds(), 0, 0, rollback_fallbacks);
    csv.row({"rollback", "1", fmt(sw.seconds()), "0", "0", "0", "0",
             std::to_string(rollback_fallbacks), "0"});
  }

  // ---- storm: retrain storm trips the breaker deterministically -----------
  serve::SupervisorConfig storm_sup = with_chaos("shards=1,retrain-storm=1");
  storm_sup.breaker = core::BreakerConfig{
      .max_retrains = 3, .window_days = 30, .cooldown_days = 45};
  int storm_trips = -1, storm_suppressed = -1;
  for (int threads : thread_counts) {
    par::set_threads(threads);
    serve::FleetRuntime fleet(ds, scale, make_specs(), 2024, storm_sup);
    const obs::Stopwatch sw;
    fleet.run_to_end();
    const serve::ServeStats st = fleet.stats();
    if (st.total_breaker_trips < 1)
      return fail("storm: breaker never tripped");
    if (storm_trips < 0) {
      storm_trips = st.total_breaker_trips;
      storm_suppressed = st.total_suppressed_retrains;
    } else if (st.total_breaker_trips != storm_trips ||
               st.total_suppressed_retrains != storm_suppressed) {
      return fail("storm: breaker trajectory differs across threads");
    }
    std::printf("%-10s %8d %10.3f %12zu %8d %10d\n", "storm", threads,
                sw.seconds(), st.shards_quarantined, st.total_breaker_trips,
                st.snapshot_fallbacks);
    csv.row({"storm", std::to_string(threads), fmt(sw.seconds()), "0",
             std::to_string(st.total_faults),
             std::to_string(st.total_breaker_trips),
             std::to_string(st.total_suppressed_retrains), "0", "0"});
  }

  // ---- watchdog: quarantine burn surfaces in the supervision stream -------
  // The isolation fault schedule quarantines 2 of 8 shards; an SLO
  // watchdog fed per-step fleet stats must trip slo-burn-critical
  // (quarantine rate 0.25 over a 0.2 threshold), and its events must
  // merge into the fleet's supervision JSONL via attach_supervision_log.
  int watchdog_criticals = 0;
  {
    par::set_threads(1);
    serve::FleetRuntime fleet(ds, scale, make_specs(), 2024,
                              with_chaos(isolation_spec));
    obs::SloWatchdog dog(obs::SloSpec::parse("window=4,quarantine=0.2"));
    fleet.attach_supervision_log(&dog.events());
    const obs::Stopwatch sw;
    while (fleet.run_steps(1) > 0) {
      obs::SloSample s;
      s.shards = fleet.num_shards();
      s.quarantined = fleet.stats().shards_quarantined;
      s.nrmse = fleet.current_avg_nrmse();
      dog.observe(s);
    }
    if (dog.state() != obs::SloWatchdog::State::kCritical)
      return fail("watchdog: quarantine burn never went critical");
    for (const obs::Event& e : dog.events().events())
      if (e.kind == obs::EventKind::kSloBurnCritical) ++watchdog_criticals;
    if (watchdog_criticals == 0)
      return fail("watchdog: no slo-burn-critical event emitted");
    const std::string merged = fleet.supervision_jsonl(false);
    if (merged.find("slo-burn-critical") == std::string::npos)
      return fail("watchdog: event missing from merged supervision stream");
    std::printf("%-10s %8d %10.3f %12zu %8d %10d\n", "watchdog", 1,
                sw.seconds(), fleet.stats().shards_quarantined,
                watchdog_criticals, 0);
    csv.row({"watchdog", "1", fmt(sw.seconds()),
             std::to_string(fleet.stats().shards_quarantined),
             std::to_string(watchdog_criticals), "0", "0", "0", "0"});
  }

  // ---- partial: failed snapshot write leaves no litter --------------------
  par::set_threads(1);
  {
    const std::string pdir = bench::out_dir() + "/chaos_partial";
    std::filesystem::remove_all(pdir, ec);
    serve::FleetRuntime fleet(ds, scale, make_specs(), 2024,
                              with_chaos("snapshot-partial=1"));
    fleet.run_steps(1);
    if (fleet.snapshot(pdir) != 0)
      return fail("partial: injected write fault did not fire");
    for (const auto& entry : std::filesystem::directory_iterator(pdir, ec)) {
      (void)entry;
      return fail("partial: failed snapshot left litter behind");
    }
    if (fleet.run_steps(1) == 0)
      return fail("partial: fleet stalled after failed snapshot");
    std::printf("%-10s %8d %10s %12d %8d %10d\n", "partial", 1, "-", 0, 0, 0);
    csv.row({"partial", "1", "0", "0", "0", "0", "0", "0", "0"});
  }

  std::ofstream json(bench::out_dir() + "/BENCH_chaos.json");
  json << "{\n"
       << "  \"isolation\": {\"quarantined\": " << isolation_quarantined
       << ", \"faults\": " << isolation_faults
       << ", \"healthy_divergence\": 0, \"supervision_identical\": true},\n"
       << "  \"rollback\": {\"snapshot_fallbacks\": " << rollback_fallbacks
       << ", \"healthy_divergence\": 0},\n"
       << "  \"storm\": {\"breaker_trips\": " << storm_trips
       << ", \"suppressed_retrains\": " << storm_suppressed << "},\n"
       << "  \"watchdog\": {\"criticals\": " << watchdog_criticals
       << ", \"merged_into_supervision\": true},\n"
       << "  \"metrics\": " << bench::metrics_json() << "\n}\n";
  par::set_threads(0);
  bench::require_ok(csv);
  std::printf("\nwrote %s/BENCH_chaos.json\n", bench::out_dir().c_str());
  return 0;
}
