// Tables 2 and 6 — "Characteristics of target KPIs."
//
// For each of the six forecasting targets, on both the Evolving (Table 2)
// and Fixed (Table 6) datasets, reports:
//   * Std/Mean          — dispersion / coefficient of variation;
//   * Periodic          — 7-day periodicity (single-bin DFT power ratio,
//                         the STFT-style check of §3.2);
//   * Bursty            — rolling-median outlier fraction;
//   * Data Lost         — zero-reads inside the PU outage window;
//   * Balanced          — low skewness (no long tail).
// The check-mark pattern should match the paper's tables; the dispersion
// *ordering* (GDR >> CDR ~ PU > REst ~ DVol > DTP, Evolving > Fixed)
// matters more than absolute values.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "data/generator.hpp"
#include "data/temporal.hpp"

using namespace leaf;

namespace {

struct KpiCharacter {
  double dispersion = 0.0;
  double periodicity = 0.0;
  double burstiness = 0.0;
  double skewness = 0.0;
  double loss_zero_fraction = 0.0;
};

KpiCharacter characterize(const data::CellularDataset& ds,
                          data::TargetKpi target) {
  KpiCharacter out;
  const int col = ds.schema().target_column(target);

  const std::vector<double> all = ds.all_values(col);
  out.dispersion = stats::dispersion(all);
  out.skewness = stats::skewness(all);

  // Periodicity: lag-7 autocorrelation of the first-differenced fleet
  // mean (differencing removes growth/shock trends, leaving the weekly
  // cycle — the STFT-style check of §3.2 without the broadband trend
  // power).
  std::vector<double> series = ds.fleet_mean_series(col);
  std::vector<double> diffs;
  diffs.reserve(series.size());
  for (std::size_t i = 1; i < series.size(); ++i)
    if (std::isfinite(series[i]) && std::isfinite(series[i - 1]))
      diffs.push_back(series[i] - series[i - 1]);
  out.periodicity = stats::autocorrelation(diffs, 7);

  // Burstiness is a per-site property (fleet averaging dilutes individual
  // fault episodes): average the rolling-median outlier fraction over a
  // sample of sites.
  const int sample =
      std::min<int>(16, static_cast<int>(ds.profiles().size()));
  double burst_acc = 0.0;
  for (int e = 0; e < sample; ++e) {
    std::vector<double> site = ds.series(e, col);
    std::vector<double> fin;
    fin.reserve(site.size());
    for (double v : site)
      if (std::isfinite(v)) fin.push_back(v);
    burst_acc += stats::burstiness(fin, 15, 2.5);
  }
  out.burstiness = burst_acc / sample;

  // Data loss: fraction of zero reads inside the outage window.
  std::size_t zero = 0, total = 0;
  for (int d = cal::pu_loss_start(); d <= cal::pu_loss_end(); ++d) {
    const int n = ds.enbs_on_day(d);
    for (int i = 0; i < n; ++i) {
      ++total;
      if (ds.log_on_day(d, i)[static_cast<std::size_t>(col)] == 0.0f) ++zero;
    }
  }
  out.loss_zero_fraction =
      total > 0 ? static_cast<double>(zero) / static_cast<double>(total) : 0.0;
  return out;
}

const char* mark(bool b) { return b ? "yes" : "-"; }

void report(const data::CellularDataset& ds, const char* table_id) {
  std::printf("\n--- %s: target-KPI characteristics, %s dataset ---\n",
              table_id, ds.name().c_str());
  TextTable t({"Property", "DVol", "PU", "DTP", "REst", "CDR", "GDR"});

  std::vector<KpiCharacter> chars;
  for (data::TargetKpi k : data::kAllTargets) chars.push_back(characterize(ds, k));

  auto row = [&](const char* name, auto getter) {
    std::vector<std::string> cells{name};
    for (const auto& c : chars) cells.push_back(getter(c));
    t.add_row(std::move(cells));
  };
  row("Std/Mean",
      [](const KpiCharacter& c) { return fmt_fixed(c.dispersion, 2); });
  row("Periodic (7d acf)",
      [](const KpiCharacter& c) { return fmt_fixed(c.periodicity, 2); });
  row("Periodic?",
      [](const KpiCharacter& c) { return std::string(mark(c.periodicity > 0.15)); });
  row("Bursty (site frac)",
      [](const KpiCharacter& c) { return fmt_fixed(c.burstiness, 3); });
  row("Bursty?",
      [](const KpiCharacter& c) { return std::string(mark(c.burstiness > 0.008)); });
  row("Data Lost?", [](const KpiCharacter& c) {
    return std::string(mark(c.loss_zero_fraction > 0.2));
  });
  row("Balanced? (|skew|<3)",
      [](const KpiCharacter& c) { return std::string(mark(std::abs(c.skewness) < 3.0)); });
  std::printf("%s", t.render().c_str());

  auto w = bench::csv(std::string("table2_") + ds.name() + ".csv");
  w.row({"kpi", "dispersion", "periodicity7", "burstiness", "skewness",
         "loss_zero_fraction", "paper_dispersion"});
  for (std::size_t i = 0; i < chars.size(); ++i) {
    const data::TargetKpi k = data::kAllTargets[i];
    w.row({data::to_string(k), fmt(chars[i].dispersion),
           fmt(chars[i].periodicity), fmt(chars[i].burstiness),
           fmt(chars[i].skewness), fmt(chars[i].loss_zero_fraction),
           fmt(data::paper_dispersion(k, ds.evolving()))});
  }
  bench::require_ok(w);
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  bench::banner("Tables 2 & 6", "Characteristics of the six target KPIs",
                scale);

  const data::CellularDataset evolving = data::generate_evolving_dataset(scale);
  report(evolving, "Table 2");
  std::printf("paper Table 2 Std/Mean: DVol 0.81, PU 1.76, DTP 0.59, "
              "REst 0.85, GDR 8.52\n");

  const data::CellularDataset fixed = data::generate_fixed_dataset(scale);
  report(fixed, "Table 6");
  std::printf("paper Table 6 Std/Mean: DVol 0.73, PU 1.34, DTP 0.57, "
              "REst 0.77, CDR 1.35, GDR 2.12\n");
  std::printf("\nexpected qualitative pattern: GDR >> CDR ~ PU > REst ~ DVol "
              "> DTP; Evolving >= Fixed; PU loses data; PU/CDR/GDR bursty; "
              "all but CDR/GDR clearly periodic.\n");
  return 0;
}
