// Appendix B — drift-detector comparison on the NRMSE stream.
//
// The paper: "We also tested ADWIN, DDM, HDDM, EDDM, PageHinkley, but
// KSWIN was the most effective on our NRMSE series" and "instances of
// drift are detected when the data exhibits major anomalies around June
// 2019, December 2019, and April 2021.  The beginning and end of the
// COVID-19 quarantine period are also effectively detected."
//
// This bench runs every detector over the static GBDT DVol/PU NRMSE
// series and reports each detector's detections against the known event
// calendar (software upgrades, COVID start/recovery, PU data loss, the
// 2021 gradual drift onset).
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "data/temporal.hpp"
#include "drift/adwin.hpp"
#include "drift/ddm.hpp"
#include "drift/kswin.hpp"
#include "models/factory.hpp"

using namespace leaf;

namespace {

struct Event {
  int day;
  const char* what;
};

std::vector<Event> known_events() {
  std::vector<Event> e;
  for (int d : data::software_upgrade_days()) e.push_back({d, "software upgrade"});
  e.push_back({cal::covid_start(), "COVID lockdown start"});
  e.push_back({cal::covid_recovery_end(), "COVID recovery end"});
  e.push_back({cal::pu_loss_start(), "PU data-loss start"});
  e.push_back({cal::pu_loss_end(), "PU data-loss end"});
  e.push_back({cal::gradual_drift_start(), "2021 gradual drift onset"});
  return e;
}

/// A detection "matches" an event if it fires within `tol` days after it
/// (detectors necessarily lag the cause).
int matched_events(const std::vector<int>& detection_days, int tol = 75) {
  int matched = 0;
  for (const Event& ev : known_events()) {
    for (int d : detection_days) {
      if (d >= ev.day && d <= ev.day + tol) {
        ++matched;
        break;
      }
    }
  }
  return matched;
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  bench::banner("Appendix B",
                "Drift detectors on the static-model NRMSE stream "
                "(KSWIN vs ADWIN/DDM/EDDM/HDDM-A/PageHinkley)",
                scale);

  const data::CellularDataset ds = data::generate_evolving_dataset(scale);
  const auto model = models::make_model(models::ModelFamily::kGbdt, scale, 7);
  core::EvalConfig cfg = core::make_eval_config(scale);
  cfg.stride = 1;

  for (data::TargetKpi target :
       {data::TargetKpi::kDVol, data::TargetKpi::kPU}) {
    const data::Featurizer featurizer(ds, target);
    core::StaticScheme scheme;
    const core::EvalResult run =
        core::run_scheme(featurizer, *model, scheme, cfg);

    std::printf("\n--- NRMSE stream: static GBDT on %s (%zu points) ---\n",
                data::to_string(target).c_str(), run.nrmse.size());
    std::printf("known events:\n");
    for (const Event& ev : known_events())
      std::printf("  %s  %s\n", cal::day_to_string(ev.day).c_str(), ev.what);

    std::vector<std::unique_ptr<drift::DriftDetector>> detectors;
    drift::KswinConfig kcfg;
    kcfg.window_size = 60;
    kcfg.stat_size = 20;
    detectors.push_back(std::make_unique<drift::Kswin>(kcfg));
    detectors.push_back(std::make_unique<drift::Adwin>());
    detectors.push_back(std::make_unique<drift::Ddm>());
    detectors.push_back(std::make_unique<drift::Eddm>());
    detectors.push_back(std::make_unique<drift::HddmA>());
    drift::PageHinkleyConfig pcfg;
    pcfg.delta = 0.002;
    pcfg.lambda = 0.5;
    detectors.push_back(std::make_unique<drift::PageHinkley>(pcfg));

    TextTable t({"Detector", "#Detections", "events matched (of " +
                                                std::to_string(known_events().size()) +
                                                ")",
                 "first detections"});
    auto w = bench::csv("appb_detectors_" + data::to_string(target) + ".csv");
    w.row({"detector", "detection_date"});

    for (auto& det : detectors) {
      std::vector<int> days;
      for (std::size_t i = 0; i < run.nrmse.size(); ++i)
        if (det->update(run.nrmse[i])) days.push_back(run.days[i]);
      std::string first;
      for (std::size_t i = 0; i < std::min<std::size_t>(3, days.size()); ++i) {
        if (!first.empty()) first += ", ";
        first += cal::day_to_string(days[i]);
      }
      for (int d : days) w.row({det->name(), cal::day_to_string(d)});
      t.add_row({det->name(), std::to_string(days.size()),
                 std::to_string(matched_events(days)), first});
    }
    bench::require_ok(w);
    std::printf("%s", t.render().c_str());
  }
  std::printf("\nexpected: KSWIN detects most known events with a moderate "
              "detection count; the Bernoulli-stream detectors (DDM/EDDM) "
              "are less sensitive on this series, matching the paper's "
              "choice of KSWIN.\n");
  return 0;
}
