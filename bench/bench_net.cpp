// bench_net — loopback RPC front-end harness for the serving fleet.
//
// Drives leaf::net's ServerCore through deterministic loopback schedules
// and verifies, at multiple thread counts, the properties the CI net job
// asserts:
//
//   sweep        clients x batch-size throughput sweep: every request is
//                answered, every response matches a direct
//                fleet.predict_shard of the same rows;
//   admission    golden shed / retry / served counts from a ManualClock
//                schedule (queue overflow answers kRetry immediately,
//                expired deadlines are SHED at dequeue — never dropped);
//   chaos        seeded evil clients (net-truncate / net-garbage fault
//                points) lose exactly their own connections while every
//                well-behaved client's response stream stays byte-
//                identical to a chaos-free run;
//   determinism  one fixed schedule replayed at LEAF_THREADS=1 and 4
//                produces byte-identical response frames and identical
//                masked leaf_net_* telemetry.
//
// Any violation exits non-zero.  Emits BENCH_net.{csv,json}; the JSON
// carries the golden counts the CI net job asserts on.  `--smoke`
// shrinks the sweep for CI.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chaos/chaos.hpp"
#include "common/rng.hpp"
#include "data/generator.hpp"
#include "net/loopback.hpp"
#include "par/parallel.hpp"
#include "serve/runtime.hpp"

using namespace leaf;

namespace {

std::vector<serve::ShardSpec> make_specs(std::size_t n) {
  std::vector<serve::ShardSpec> specs;
  for (std::size_t i = 0; i < n; ++i)
    specs.push_back({data::kAllTargets[i % data::kAllTargets.size()],
                     models::ModelFamily::kRidge,
                     i % 2 == 0 ? "Triggered" : "LEAF", 0});
  return specs;
}

Matrix probe_rows(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (auto& v : m.flat()) v = rng.uniform();
  return m;
}

/// FNV-1a over a batch of encoded response frames.
std::size_t fingerprint(const std::vector<net::Frame>& frames) {
  std::size_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const net::Frame& f : frames) {
    mix(static_cast<std::uint64_t>(f.type));
    mix(f.request_id);
    for (std::uint8_t b : f.payload) mix(b);
  }
  return h;
}

/// The non-wall-clock leaf_net_* scrape lines (the determinism contract).
std::string masked_net_scrape() {
  std::istringstream in(obs::MetricsRegistry::global().scrape());
  std::string line, out;
  while (std::getline(in, line))
    if (line.find("leaf_net_") != std::string::npos &&
        line.find("_seconds") == std::string::npos)
      out += line + "\n";
  return out;
}

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

int fail(const char* what) {
  std::fprintf(stderr, "FATAL: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  Scale scale = Scale::from_env();
  scale.fixed_enbs = std::min(scale.fixed_enbs, 8);
  scale.num_kpis = std::min(scale.num_kpis, 24);
  scale.eval_stride_days = std::max(scale.eval_stride_days, 6);
  bench::banner("net", "leaf::net loopback RPC front-end harness", scale);

  const data::CellularDataset ds = data::generate_fixed_dataset(scale, 42);
  serve::FleetRuntime fleet(ds, scale, make_specs(4));
  fleet.run_steps(1);  // initial fits: every shard serve-ready
  const std::size_t num_shards = fleet.num_shards();

  CsvWriter csv = bench::csv("BENCH_net.csv");
  csv.row({"scenario", "threads", "clients", "batch_rows", "requests",
           "seconds", "served", "shed", "retries", "dropped_conns"});

  // ---- sweep: clients x batch size ---------------------------------------
  const std::vector<int> client_counts =
      smoke ? std::vector<int>{4} : std::vector<int>{1, 4, 16};
  const std::vector<int> batch_sizes =
      smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 8, 32};
  const int sweep_rounds = smoke ? 8 : 32;

  std::printf("%-12s %8s %8s %10s %10s %12s\n", "scenario", "clients",
              "batch", "requests", "seconds", "req/s");
  for (int clients : client_counts) {
    for (int batch : batch_sizes) {
      net::NetConfig cfg;
      cfg.max_batch_rows = std::max(64, batch);
      net::Loopback loop(fleet, cfg);
      std::vector<net::LoopbackConnection*> conns;
      for (int c = 0; c < clients; ++c) conns.push_back(&loop.connect());

      std::uint64_t id = 1;
      std::size_t answered = 0;
      const obs::Stopwatch sw;
      for (int round = 0; round < sweep_rounds; ++round) {
        for (int c = 0; c < clients; ++c) {
          const std::uint32_t shard =
              static_cast<std::uint32_t>((round + c) % num_shards);
          const int cols = fleet.shard_num_features(shard);
          conns[c]->send(net::make_frame(
              batch == 1 ? net::MsgType::kPredict
                         : net::MsgType::kBatchPredict,
              id, net::PredictRequest{shard, 0, probe_rows(batch, cols, id)}));
          ++id;
        }
        // A pump coalesces at most one batch per shard; drain fully so a
        // deep round (many clients on one shard) is all answered.
        do {
          answered += loop.pump();
        } while (loop.core().queued() > 0);
      }
      const double seconds = sw.seconds();
      const std::size_t requests =
          static_cast<std::size_t>(sweep_rounds) * clients;
      if (answered != requests) return fail("sweep: lost responses");
      // Every response decodes and matches a direct model pass.
      for (int c = 0; c < clients; ++c) {
        std::size_t got = 0;
        while (auto f = conns[c]->receive()) {
          if (f->type != net::MsgType::kPredictOk)
            return fail("sweep: non-OK response");
          const auto body = net::decode_body<net::PredictResponse>(*f);
          const std::uint32_t shard = static_cast<std::uint32_t>(
              (got + static_cast<std::size_t>(c)) % num_shards);
          const Matrix rows = probe_rows(
              batch, fleet.shard_num_features(shard), f->request_id);
          std::vector<double> want(rows.rows());
          fleet.predict_shard(shard, rows, want);
          if (body.values != want) return fail("sweep: response mismatch");
          ++got;
        }
        if (got != static_cast<std::size_t>(sweep_rounds))
          return fail("sweep: client short-changed");
      }
      std::printf("%-12s %8d %8d %10zu %10.4f %12.0f\n", "sweep", clients,
                  batch, requests, seconds,
                  seconds > 0 ? requests / seconds : 0.0);
      csv.row({"sweep", "0", std::to_string(clients), std::to_string(batch),
               std::to_string(requests), fmt(seconds), std::to_string(answered),
               "0", "0", "0"});
    }
  }

  // ---- admission: golden shed / retry counts ------------------------------
  std::uint64_t golden_served = 0, golden_shed = 0, golden_retries = 0;
  {
    obs::MetricsRegistry::global().reset_values();
    net::NetConfig cfg;
    cfg.queue_depth = 4;
    cfg.max_batch_rows = 8;
    net::Loopback loop(fleet, cfg);
    net::LoopbackConnection& conn = loop.connect();
    const int cols = fleet.shard_num_features(0);

    // 6 instant requests against depth 4: the last two answer kRetry.
    for (std::uint64_t id = 1; id <= 6; ++id)
      conn.send(net::make_frame(net::MsgType::kPredict, id,
                                net::PredictRequest{0, 0,
                                                    probe_rows(1, cols, id)}));
    loop.pump();
    // 4 requests with a 10 ms budget that expires while queued: all SHED.
    for (std::uint64_t id = 10; id <= 13; ++id)
      conn.send(net::make_frame(net::MsgType::kPredict, id,
                                net::PredictRequest{0, 10,
                                                    probe_rows(1, cols, id)}));
    loop.clock().advance_ms(50);
    loop.pump();

    std::size_t ok = 0, shed = 0, retry = 0;
    while (auto f = conn.receive()) {
      if (f->type == net::MsgType::kPredictOk) ++ok;
      else if (net::decode_body<net::ErrorResponse>(*f).code ==
               net::ErrorCode::kShed) ++shed;
      else ++retry;
    }
    if (ok != 4 || shed != 4 || retry != 2)
      return fail("admission: golden shed/retry/served counts violated");
    if (obs::kCompiledIn &&
        (counter_value("leaf_net_sheds_total") != shed ||
         counter_value("leaf_net_retries_total") != retry))
      return fail("admission: telemetry disagrees with responses");
    golden_served = ok;
    golden_shed = shed;
    golden_retries = retry;
    std::printf("%-12s served=%zu shed=%zu retry=%zu\n", "admission", ok,
                shed, retry);
    csv.row({"admission", "1", "1", "1", "10", "0", std::to_string(ok),
             std::to_string(shed), std::to_string(retry), "0"});
  }

  // ---- chaos: seeded evil clients -----------------------------------------
  // Fault decisions are a pure function of (seed, conn index, request
  // seq), so the dropped-connection count and every survivor's response
  // stream are golden across runs and thread counts.
  std::size_t chaos_dropped = 0;
  std::size_t chaos_survivor_responses = 0;
  {
    const chaos::ChaosConfig chaos_cfg =
        chaos::ChaosConfig::parse("seed=11,net-truncate=0.05,net-garbage=0.05");
    const chaos::Engine engine(chaos_cfg);
    const int evil_clients = 8;
    const int evil_rounds = smoke ? 6 : 8;

    std::size_t reference_fp = 0;
    for (int pass = 0; pass < 2; ++pass) {
      par::set_threads(pass == 0 ? 1 : 4);
      net::Loopback loop(fleet);
      std::vector<net::LoopbackConnection*> conns;
      for (int c = 0; c < evil_clients; ++c) conns.push_back(&loop.connect());

      for (int seq = 0; seq < evil_rounds; ++seq) {
        for (int c = 0; c < evil_clients; ++c) {
          if (!conns[c]->alive()) continue;
          const int cols = fleet.shard_num_features(0);
          const std::uint64_t id =
              static_cast<std::uint64_t>(seq) * evil_clients + c + 1;
          const std::vector<std::uint8_t> bytes = net::encode_frame(
              net::make_frame(net::MsgType::kPredict, id,
                              net::PredictRequest{0, 0,
                                                  probe_rows(1, cols, id)}));
          const auto cid = static_cast<std::uint64_t>(c);
          const auto s = static_cast<std::uint64_t>(seq);
          if (engine.net_truncate(cid, s)) {
            // Disconnect mid-frame: half the bytes, then gone.
            conns[c]->send_bytes(
                std::span<const std::uint8_t>(bytes.data(), bytes.size() / 2));
            conns[c]->close();
          } else if (engine.net_garbage(cid, s)) {
            std::vector<std::uint8_t> bad = bytes;
            bad[net::kHeaderBytes + bad.size() % 7] ^= 0x10;  // CRC catches
            conns[c]->send_bytes(bad);
          } else {
            conns[c]->send_bytes(bytes);
          }
        }
        loop.pump();
      }

      std::size_t dropped = 0, responses = 0;
      std::vector<net::Frame> survivor_frames;
      for (int c = 0; c < evil_clients; ++c) {
        if (!conns[c]->alive()) {
          ++dropped;
          continue;
        }
        while (auto f = conns[c]->receive()) {
          survivor_frames.push_back(std::move(*f));
          ++responses;
        }
      }
      // The harness must have exercised both outcomes, and the fleet must
      // still be serving.
      if (dropped == 0 || dropped == evil_clients)
        return fail("chaos: fault schedule degenerate (tune probabilities)");
      net::LoopbackConnection& fresh = loop.connect();
      fresh.send(net::Frame{net::MsgType::kFleetStatus, 1, {}});
      if (!fresh.receive().has_value())
        return fail("chaos: server dead after evil clients");

      const std::size_t fp = fingerprint(survivor_frames);
      if (pass == 0) {
        reference_fp = fp;
        chaos_dropped = dropped;
        chaos_survivor_responses = responses;
      } else if (fp != reference_fp || dropped != chaos_dropped ||
                 responses != chaos_survivor_responses) {
        return fail("chaos: survivor streams differ across thread counts");
      }
      std::printf("%-12s threads=%d dropped=%zu survivor_responses=%zu\n",
                  "chaos", pass == 0 ? 1 : 4, dropped, responses);
      csv.row({"chaos", pass == 0 ? "1" : "4",
               std::to_string(evil_clients), "1",
               std::to_string(evil_clients * evil_rounds), "0",
               std::to_string(responses), "0", "0",
               std::to_string(dropped)});
    }
  }

  // ---- determinism: fixed schedule at threads 1 vs 4 ----------------------
  bool determinism_ok = true;
  {
    const auto run = [&](int threads) {
      par::set_threads(threads);
      obs::MetricsRegistry::global().reset_values();
      net::Loopback loop(fleet);
      std::vector<net::LoopbackConnection*> conns;
      for (int c = 0; c < 3; ++c) conns.push_back(&loop.connect());
      std::uint64_t id = 1;
      for (int round = 0; round < (smoke ? 6 : 16); ++round) {
        for (int c = 0; c < 3; ++c) {
          const std::uint32_t shard =
              static_cast<std::uint32_t>((round + c) % num_shards);
          const std::size_t rows = 1 + (round + c) % 4;
          const int cols = fleet.shard_num_features(shard);
          conns[c]->send(net::make_frame(
              rows == 1 ? net::MsgType::kPredict : net::MsgType::kBatchPredict,
              id, net::PredictRequest{shard, 0, probe_rows(rows, cols, id)}));
          ++id;
        }
        if (round % 2 == 1) loop.pump();
      }
      while (loop.core().queued() > 0) loop.pump();
      std::vector<net::Frame> all;
      for (auto* c : conns)
        while (auto f = c->receive()) all.push_back(std::move(*f));
      return std::make_pair(fingerprint(all), masked_net_scrape());
    };
    const auto [fp1, scrape1] = run(1);
    const auto [fp4, scrape4] = run(4);
    determinism_ok = fp1 == fp4 && scrape1 == scrape4;
    if (!determinism_ok)
      return fail("determinism: responses or telemetry differ across threads");
    std::printf("%-12s threads 1 vs 4: identical\n", "determinism");
    csv.row({"determinism", "1+4", "3", "0", "0", "0", "0", "0", "0", "0"});
  }

  std::ofstream json(bench::out_dir() + "/BENCH_net.json");
  json << "{\n"
       << "  \"admission\": {\"served\": " << golden_served
       << ", \"shed\": " << golden_shed
       << ", \"retries\": " << golden_retries << "},\n"
       << "  \"chaos\": {\"dropped_conns\": " << chaos_dropped
       << ", \"survivor_responses\": " << chaos_survivor_responses
       << ", \"fleet_survived\": true},\n"
       << "  \"determinism\": {\"identical\": "
       << (determinism_ok ? "true" : "false") << "},\n"
       << "  \"metrics\": " << bench::metrics_json() << "\n}\n";
  par::set_threads(0);
  bench::require_ok(csv);
  std::printf("\nwrote %s/BENCH_net.json\n", bench::out_dir().c_str());
  return 0;
}
