// bench_net — loopback RPC front-end harness for the serving fleet.
//
// Drives leaf::net's ServerCore through deterministic loopback schedules
// and verifies, at multiple thread counts, the properties the CI net job
// asserts:
//
//   sweep        clients x batch-size throughput sweep: every request is
//                answered, every response matches a direct
//                fleet.predict_shard of the same rows;
//   admission    golden shed / retry / served counts from a ManualClock
//                schedule (queue overflow answers kRetry immediately,
//                expired deadlines are SHED at dequeue — never dropped);
//   chaos        seeded evil clients (net-truncate / net-garbage fault
//                points) lose exactly their own connections while every
//                well-behaved client's response stream stays byte-
//                identical to a chaos-free run;
//   determinism  one fixed schedule replayed at LEAF_THREADS=1 and 4
//                produces byte-identical response frames and identical
//                masked leaf_net_* telemetry;
//   trace        the same schedule with a Tracer attached at threads 1
//                and 4 writes TRACE_t1.json / TRACE_t4.json — after
//                masking the wall-clock "ts"/"dur" fields the two span
//                streams must be byte-identical;
//   slo          a seeded chaos deadline storm must drive the SLO
//                watchdog to slo-burn-critical, and a quiet tail must
//                bring it back to slo-recovered.
//
// Any violation exits non-zero.  Emits BENCH_net.{csv,json}; the JSON
// carries the golden counts the CI net job asserts on.  `--smoke`
// shrinks the sweep for CI.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chaos/chaos.hpp"
#include "common/rng.hpp"
#include "data/generator.hpp"
#include "net/loopback.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "par/parallel.hpp"
#include "serve/runtime.hpp"

using namespace leaf;

namespace {

std::vector<serve::ShardSpec> make_specs(std::size_t n) {
  std::vector<serve::ShardSpec> specs;
  for (std::size_t i = 0; i < n; ++i)
    specs.push_back({data::kAllTargets[i % data::kAllTargets.size()],
                     models::ModelFamily::kRidge,
                     i % 2 == 0 ? "Triggered" : "LEAF", 0});
  return specs;
}

Matrix probe_rows(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (auto& v : m.flat()) v = rng.uniform();
  return m;
}

/// FNV-1a over a batch of encoded response frames.
std::size_t fingerprint(const std::vector<net::Frame>& frames) {
  std::size_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const net::Frame& f : frames) {
    mix(static_cast<std::uint64_t>(f.type));
    mix(f.request_id);
    for (std::uint8_t b : f.payload) mix(b);
  }
  return h;
}

/// The non-wall-clock leaf_net_* scrape lines (the determinism contract).
std::string masked_net_scrape() {
  std::istringstream in(obs::MetricsRegistry::global().scrape());
  std::string line, out;
  while (std::getline(in, line))
    if (line.find("leaf_net_") != std::string::npos &&
        line.find("_seconds") == std::string::npos)
      out += line + "\n";
  return out;
}

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

int fail(const char* what) {
  std::fprintf(stderr, "FATAL: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  Scale scale = Scale::from_env();
  scale.fixed_enbs = std::min(scale.fixed_enbs, 8);
  scale.num_kpis = std::min(scale.num_kpis, 24);
  scale.eval_stride_days = std::max(scale.eval_stride_days, 6);
  bench::banner("net", "leaf::net loopback RPC front-end harness", scale);

  const data::CellularDataset ds = data::generate_fixed_dataset(scale, 42);
  serve::FleetRuntime fleet(ds, scale, make_specs(4));
  fleet.run_steps(1);  // initial fits: every shard serve-ready
  const std::size_t num_shards = fleet.num_shards();

  CsvWriter csv = bench::csv("BENCH_net.csv");
  csv.row({"scenario", "threads", "clients", "batch_rows", "requests",
           "seconds", "served", "shed", "retries", "dropped_conns"});

  // ---- sweep: clients x batch size ---------------------------------------
  const std::vector<int> client_counts =
      smoke ? std::vector<int>{4} : std::vector<int>{1, 4, 16};
  const std::vector<int> batch_sizes =
      smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 8, 32};
  const int sweep_rounds = smoke ? 8 : 32;

  std::printf("%-12s %8s %8s %10s %10s %12s\n", "scenario", "clients",
              "batch", "requests", "seconds", "req/s");
  for (int clients : client_counts) {
    for (int batch : batch_sizes) {
      net::NetConfig cfg;
      cfg.max_batch_rows = std::max(64, batch);
      net::Loopback loop(fleet, cfg);
      std::vector<net::LoopbackConnection*> conns;
      for (int c = 0; c < clients; ++c) conns.push_back(&loop.connect());

      std::uint64_t id = 1;
      std::size_t answered = 0;
      const obs::Stopwatch sw;
      for (int round = 0; round < sweep_rounds; ++round) {
        for (int c = 0; c < clients; ++c) {
          const std::uint32_t shard =
              static_cast<std::uint32_t>((round + c) % num_shards);
          const int cols = fleet.shard_num_features(shard);
          conns[c]->send(net::make_frame(
              batch == 1 ? net::MsgType::kPredict
                         : net::MsgType::kBatchPredict,
              id, net::PredictRequest{shard, 0, probe_rows(batch, cols, id)}));
          ++id;
        }
        // A pump coalesces at most one batch per shard; drain fully so a
        // deep round (many clients on one shard) is all answered.
        do {
          answered += loop.pump();
        } while (loop.core().queued() > 0);
      }
      const double seconds = sw.seconds();
      const std::size_t requests =
          static_cast<std::size_t>(sweep_rounds) * clients;
      if (answered != requests) return fail("sweep: lost responses");
      // Every response decodes and matches a direct model pass.
      for (int c = 0; c < clients; ++c) {
        std::size_t got = 0;
        while (auto f = conns[c]->receive()) {
          if (f->type != net::MsgType::kPredictOk)
            return fail("sweep: non-OK response");
          const auto body = net::decode_body<net::PredictResponse>(*f);
          const std::uint32_t shard = static_cast<std::uint32_t>(
              (got + static_cast<std::size_t>(c)) % num_shards);
          const Matrix rows = probe_rows(
              batch, fleet.shard_num_features(shard), f->request_id);
          std::vector<double> want(rows.rows());
          fleet.predict_shard(shard, rows, want);
          if (body.values != want) return fail("sweep: response mismatch");
          ++got;
        }
        if (got != static_cast<std::size_t>(sweep_rounds))
          return fail("sweep: client short-changed");
      }
      std::printf("%-12s %8d %8d %10zu %10.4f %12.0f\n", "sweep", clients,
                  batch, requests, seconds,
                  seconds > 0 ? requests / seconds : 0.0);
      csv.row({"sweep", "0", std::to_string(clients), std::to_string(batch),
               std::to_string(requests), fmt(seconds), std::to_string(answered),
               "0", "0", "0"});
    }
  }

  // ---- admission: golden shed / retry counts ------------------------------
  std::uint64_t golden_served = 0, golden_shed = 0, golden_retries = 0;
  {
    obs::MetricsRegistry::global().reset_values();
    net::NetConfig cfg;
    cfg.queue_depth = 4;
    cfg.max_batch_rows = 8;
    net::Loopback loop(fleet, cfg);
    net::LoopbackConnection& conn = loop.connect();
    const int cols = fleet.shard_num_features(0);

    // 6 instant requests against depth 4: the last two answer kRetry.
    for (std::uint64_t id = 1; id <= 6; ++id)
      conn.send(net::make_frame(net::MsgType::kPredict, id,
                                net::PredictRequest{0, 0,
                                                    probe_rows(1, cols, id)}));
    loop.pump();
    // 4 requests with a 10 ms budget that expires while queued: all SHED.
    for (std::uint64_t id = 10; id <= 13; ++id)
      conn.send(net::make_frame(net::MsgType::kPredict, id,
                                net::PredictRequest{0, 10,
                                                    probe_rows(1, cols, id)}));
    loop.clock().advance_ms(50);
    loop.pump();

    std::size_t ok = 0, shed = 0, retry = 0;
    while (auto f = conn.receive()) {
      if (f->type == net::MsgType::kPredictOk) ++ok;
      else if (net::decode_body<net::ErrorResponse>(*f).code ==
               net::ErrorCode::kShed) ++shed;
      else ++retry;
    }
    if (ok != 4 || shed != 4 || retry != 2)
      return fail("admission: golden shed/retry/served counts violated");
    if (obs::kCompiledIn &&
        (counter_value("leaf_net_sheds_total") != shed ||
         counter_value("leaf_net_retries_total") != retry))
      return fail("admission: telemetry disagrees with responses");
    golden_served = ok;
    golden_shed = shed;
    golden_retries = retry;
    std::printf("%-12s served=%zu shed=%zu retry=%zu\n", "admission", ok,
                shed, retry);
    csv.row({"admission", "1", "1", "1", "10", "0", std::to_string(ok),
             std::to_string(shed), std::to_string(retry), "0"});
  }

  // ---- chaos: seeded evil clients -----------------------------------------
  // Fault decisions are a pure function of (seed, conn index, request
  // seq), so the dropped-connection count and every survivor's response
  // stream are golden across runs and thread counts.
  std::size_t chaos_dropped = 0;
  std::size_t chaos_survivor_responses = 0;
  {
    const chaos::ChaosConfig chaos_cfg =
        chaos::ChaosConfig::parse("seed=11,net-truncate=0.05,net-garbage=0.05");
    const chaos::Engine engine(chaos_cfg);
    const int evil_clients = 8;
    const int evil_rounds = smoke ? 6 : 8;

    std::size_t reference_fp = 0;
    for (int pass = 0; pass < 2; ++pass) {
      par::set_threads(pass == 0 ? 1 : 4);
      net::Loopback loop(fleet);
      std::vector<net::LoopbackConnection*> conns;
      for (int c = 0; c < evil_clients; ++c) conns.push_back(&loop.connect());

      for (int seq = 0; seq < evil_rounds; ++seq) {
        for (int c = 0; c < evil_clients; ++c) {
          if (!conns[c]->alive()) continue;
          const int cols = fleet.shard_num_features(0);
          const std::uint64_t id =
              static_cast<std::uint64_t>(seq) * evil_clients + c + 1;
          const std::vector<std::uint8_t> bytes = net::encode_frame(
              net::make_frame(net::MsgType::kPredict, id,
                              net::PredictRequest{0, 0,
                                                  probe_rows(1, cols, id)}));
          const auto cid = static_cast<std::uint64_t>(c);
          const auto s = static_cast<std::uint64_t>(seq);
          if (engine.net_truncate(cid, s)) {
            // Disconnect mid-frame: half the bytes, then gone.
            conns[c]->send_bytes(
                std::span<const std::uint8_t>(bytes.data(), bytes.size() / 2));
            conns[c]->close();
          } else if (engine.net_garbage(cid, s)) {
            std::vector<std::uint8_t> bad = bytes;
            bad[net::kHeaderBytes + bad.size() % 7] ^= 0x10;  // CRC catches
            conns[c]->send_bytes(bad);
          } else {
            conns[c]->send_bytes(bytes);
          }
        }
        loop.pump();
      }

      std::size_t dropped = 0, responses = 0;
      std::vector<net::Frame> survivor_frames;
      for (int c = 0; c < evil_clients; ++c) {
        if (!conns[c]->alive()) {
          ++dropped;
          continue;
        }
        while (auto f = conns[c]->receive()) {
          survivor_frames.push_back(std::move(*f));
          ++responses;
        }
      }
      // The harness must have exercised both outcomes, and the fleet must
      // still be serving.
      if (dropped == 0 || dropped == evil_clients)
        return fail("chaos: fault schedule degenerate (tune probabilities)");
      net::LoopbackConnection& fresh = loop.connect();
      fresh.send(net::Frame{net::MsgType::kFleetStatus, 1, {}});
      if (!fresh.receive().has_value())
        return fail("chaos: server dead after evil clients");

      const std::size_t fp = fingerprint(survivor_frames);
      if (pass == 0) {
        reference_fp = fp;
        chaos_dropped = dropped;
        chaos_survivor_responses = responses;
      } else if (fp != reference_fp || dropped != chaos_dropped ||
                 responses != chaos_survivor_responses) {
        return fail("chaos: survivor streams differ across thread counts");
      }
      std::printf("%-12s threads=%d dropped=%zu survivor_responses=%zu\n",
                  "chaos", pass == 0 ? 1 : 4, dropped, responses);
      csv.row({"chaos", pass == 0 ? "1" : "4",
               std::to_string(evil_clients), "1",
               std::to_string(evil_clients * evil_rounds), "0",
               std::to_string(responses), "0", "0",
               std::to_string(dropped)});
    }
  }

  // ---- determinism: fixed schedule at threads 1 vs 4 ----------------------
  bool determinism_ok = true;
  {
    const auto run = [&](int threads) {
      par::set_threads(threads);
      obs::MetricsRegistry::global().reset_values();
      net::Loopback loop(fleet);
      std::vector<net::LoopbackConnection*> conns;
      for (int c = 0; c < 3; ++c) conns.push_back(&loop.connect());
      std::uint64_t id = 1;
      for (int round = 0; round < (smoke ? 6 : 16); ++round) {
        for (int c = 0; c < 3; ++c) {
          const std::uint32_t shard =
              static_cast<std::uint32_t>((round + c) % num_shards);
          const std::size_t rows = 1 + (round + c) % 4;
          const int cols = fleet.shard_num_features(shard);
          conns[c]->send(net::make_frame(
              rows == 1 ? net::MsgType::kPredict : net::MsgType::kBatchPredict,
              id, net::PredictRequest{shard, 0, probe_rows(rows, cols, id)}));
          ++id;
        }
        if (round % 2 == 1) loop.pump();
      }
      while (loop.core().queued() > 0) loop.pump();
      std::vector<net::Frame> all;
      for (auto* c : conns)
        while (auto f = c->receive()) all.push_back(std::move(*f));
      return std::make_pair(fingerprint(all), masked_net_scrape());
    };
    const auto [fp1, scrape1] = run(1);
    const auto [fp4, scrape4] = run(4);
    determinism_ok = fp1 == fp4 && scrape1 == scrape4;
    if (!determinism_ok)
      return fail("determinism: responses or telemetry differ across threads");
    std::printf("%-12s threads 1 vs 4: identical\n", "determinism");
    csv.row({"determinism", "1+4", "3", "0", "0", "0", "0", "0", "0", "0"});
  }

  // ---- trace: masked span streams at threads 1 vs 4 -----------------------
  // Trace ids derive from (connection, request id) and spans are written
  // by the single pump thread, so with wall-clock ts/dur masked the two
  // files must match byte for byte.
  std::uint64_t trace_spans = 0;
  {
    const auto traced = [&](int threads, const std::string& path) {
      par::set_threads(threads);
      obs::Tracer tracer(path, /*sample_every=*/1);
      if (!tracer.ok()) return std::make_pair(std::string(), std::uint64_t{0});
      net::Loopback loop(fleet);
      loop.core().set_tracer(&tracer);
      std::vector<net::LoopbackConnection*> conns;
      for (int c = 0; c < 2; ++c) conns.push_back(&loop.connect());
      conns[0]->send(net::Frame{net::MsgType::kFleetStatus, 1, {}});
      std::uint64_t id = 2;
      for (int round = 0; round < (smoke ? 4 : 12); ++round) {
        for (int c = 0; c < 2; ++c) {
          const std::uint32_t shard =
              static_cast<std::uint32_t>((round + c) % num_shards);
          const std::size_t rows = 1 + (round + c) % 3;
          const int cols = fleet.shard_num_features(shard);
          conns[c]->send(net::make_frame(
              rows == 1 ? net::MsgType::kPredict : net::MsgType::kBatchPredict,
              id, net::PredictRequest{shard, 0, probe_rows(rows, cols, id)}));
          ++id;
        }
        do {
          loop.pump();
        } while (loop.core().queued() > 0);
      }
      loop.core().set_tracer(nullptr);
      tracer.close();
      std::ifstream in(path);
      std::stringstream buf;
      buf << in.rdbuf();
      static const std::regex kWallClock(", \"ts\": [0-9]+, \"dur\": [0-9]+");
      return std::make_pair(std::regex_replace(buf.str(), kWallClock, ""),
                            tracer.spans_written());
    };
    const auto [masked1, spans1] =
        traced(1, bench::out_dir() + "/TRACE_t1.json");
    const auto [masked4, spans4] =
        traced(4, bench::out_dir() + "/TRACE_t4.json");
    if (spans1 == 0 || masked1.empty())
      return fail("trace: no spans written (tracer sink unopenable?)");
    if (masked1.substr(0, 1) != "[" ||
        masked1.substr(masked1.size() - 2) != "]\n")
      return fail("trace: output is not a Chrome trace-event array");
    if (masked1 != masked4 || spans1 != spans4)
      return fail("trace: masked span streams differ across thread counts");
    trace_spans = spans1;
    std::printf("%-12s threads 1 vs 4: %llu spans, masked streams identical\n",
                "trace", static_cast<unsigned long long>(trace_spans));
    csv.row({"trace", "1+4", "2", "0", std::to_string(trace_spans), "0", "0",
             "0", "0", "0"});
  }

  // ---- slo: deadline storm trips the watchdog, quiet tail recovers --------
  // Storm membership is a pure function of (seed, conn, round), so the
  // event sequence and final state are golden.
  std::uint64_t slo_criticals = 0, slo_recoveries = 0;
  std::string slo_final_state;
  {
    obs::MetricsRegistry::global().reset_values();
    const chaos::Engine storm(
        chaos::ChaosConfig::parse("seed=7,deadline-storm=0.75"));
    obs::SloWatchdog dog(
        obs::SloSpec::parse("window=4,deadline-miss=0.3,recover=3"));
    net::NetConfig cfg;
    cfg.max_batch_rows = 8;
    net::Loopback loop(fleet, cfg);
    std::vector<net::LoopbackConnection*> conns;
    for (int c = 0; c < 4; ++c) conns.push_back(&loop.connect());
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    std::uint64_t last_responses = 0, last_sheds = 0, last_retries = 0;
    bool burned_critical = false;
    std::uint64_t id = 1;
    const int storm_from = 4, storm_to = 10, total_rounds = 20;
    for (int round = 0; round < total_rounds; ++round) {
      const bool stormy = round >= storm_from && round < storm_to;
      for (int c = 0; c < 4; ++c) {
        const std::uint32_t shard = static_cast<std::uint32_t>(c % num_shards);
        const int cols = fleet.shard_num_features(shard);
        // During the storm most requests carry a 5 ms budget that expires
        // while queued; quiet rounds have no deadline at all.
        const std::uint64_t deadline =
            stormy && storm.deadline_storm(static_cast<std::uint64_t>(c),
                                           static_cast<std::uint64_t>(round))
                ? 5
                : 0;
        conns[c]->send(net::make_frame(
            net::MsgType::kPredict, id,
            net::PredictRequest{shard, deadline, probe_rows(1, cols, id)}));
        ++id;
      }
      if (stormy) loop.clock().advance_ms(50);
      do {
        loop.pump();
      } while (loop.core().queued() > 0);
      obs::SloSample s;
      const std::uint64_t responses =
          reg.counter("leaf_net_responses_total").value();
      const std::uint64_t sheds = reg.counter("leaf_net_sheds_total").value();
      const std::uint64_t retries =
          reg.counter("leaf_net_retries_total").value();
      s.requests = responses - last_responses;
      s.deadline_misses = sheds - last_sheds;
      s.sheds = sheds - last_sheds;
      s.retries = retries - last_retries;
      s.shards = fleet.num_shards();
      s.quarantined = fleet.stats().shards_quarantined;
      last_responses = responses;
      last_sheds = sheds;
      last_retries = retries;
      if (dog.observe(s) == obs::SloWatchdog::State::kCritical)
        burned_critical = true;
    }
    for (const obs::Event& e : dog.events().events()) {
      if (e.kind == obs::EventKind::kSloBurnCritical) ++slo_criticals;
      if (e.kind == obs::EventKind::kSloRecovered) ++slo_recoveries;
    }
    slo_final_state = obs::to_string(dog.state());
    if (!burned_critical)
      return fail("slo: deadline storm never tripped slo-burn-critical");
    if (dog.state() != obs::SloWatchdog::State::kOk || slo_recoveries == 0)
      return fail("slo: watchdog never recovered after the storm passed");
    if (obs::kCompiledIn &&
        reg.gauge("leaf_slo_state").value() != 0.0)
      return fail("slo: leaf_slo_state gauge disagrees with watchdog state");
    std::printf("%-12s criticals=%llu recoveries=%llu final=%s\n", "slo",
                static_cast<unsigned long long>(slo_criticals),
                static_cast<unsigned long long>(slo_recoveries),
                slo_final_state.c_str());
    csv.row({"slo", "1", "4", "1", std::to_string(total_rounds * 4), "0",
             std::to_string(slo_criticals), std::to_string(slo_recoveries),
             "0", "0"});
  }

  // ---- tsdb: telemetry store determinism + meta-drift storm golden --------
  // A quiet stretch then an all-miss deadline storm, sampled into the
  // fleet's telemetry store each tick.  The deadline-miss recording rule
  // must fire (a telemetry-drift supervision event + a raised gauge), and
  // the stored deterministic series must fingerprint identically at
  // LEAF_THREADS=1 and 4.
  std::uint64_t tsdb_drift_events = 0, tsdb_samples = 0;
  int tsdb_drift_state = 0;
  if (obs::kCompiledIn) {
    const auto run = [&](int threads) {
      par::set_threads(threads);
      serve::FleetRuntime storm_fleet(ds, scale, make_specs(2));
      storm_fleet.run_steps(1);
      net::Loopback loop(storm_fleet);
      net::LoopbackConnection& conn = loop.connect();
      const int cols = storm_fleet.shard_num_features(0);
      std::uint64_t id = 1;
      for (int tick = 0; tick < 90; ++tick) {
        const bool stormy = tick >= 45;
        conn.send(net::make_frame(
            net::MsgType::kPredict, id,
            net::PredictRequest{0, stormy ? 5u : 0u, probe_rows(1, cols, id)}));
        ++id;
        if (stormy) loop.clock().advance_ms(50);  // expires while queued
        loop.pump();
        while (conn.receive().has_value()) {
        }
        storm_fleet.sample_telemetry();
      }
      std::uint64_t drift_events = 0;
      for (const obs::Event& e : storm_fleet.supervision_events())
        if (e.kind == obs::EventKind::kTelemetryDrift) ++drift_events;
      return std::make_tuple(storm_fleet.telemetry().fingerprint(),
                             storm_fleet.telemetry().samples_recorded(),
                             drift_events,
                             storm_fleet.telemetry_drift_state());
    };
    const auto [fp1, n1, ev1, state1] = run(1);
    const auto [fp4, n4, ev4, state4] = run(4);
    if (ev1 == 0 || state1 == 0)
      return fail("tsdb: deadline storm never fired the meta-drift rule");
    if (fp1 != fp4 || n1 != n4 || ev1 != ev4 || state1 != state4)
      return fail("tsdb: stored series or drift goldens differ across threads");
    tsdb_drift_events = ev1;
    tsdb_samples = n1;
    tsdb_drift_state = state1;
    std::printf("%-12s threads 1 vs 4: samples=%llu drift_events=%llu "
                "state=%d identical\n",
                "tsdb", static_cast<unsigned long long>(tsdb_samples),
                static_cast<unsigned long long>(tsdb_drift_events),
                tsdb_drift_state);
    csv.row({"tsdb", "1+4", "1", "0", std::to_string(tsdb_samples), "0",
             std::to_string(tsdb_drift_events), "0", "0", "0"});
  } else {
    std::printf("%-12s skipped (-DLEAF_OBS=OFF)\n", "tsdb");
  }

  std::ofstream json(bench::out_dir() + "/BENCH_net.json");
  json << "{\n"
       << "  \"admission\": {\"served\": " << golden_served
       << ", \"shed\": " << golden_shed
       << ", \"retries\": " << golden_retries << "},\n"
       << "  \"chaos\": {\"dropped_conns\": " << chaos_dropped
       << ", \"survivor_responses\": " << chaos_survivor_responses
       << ", \"fleet_survived\": true},\n"
       << "  \"determinism\": {\"identical\": "
       << (determinism_ok ? "true" : "false") << "},\n"
       << "  \"trace\": {\"spans\": " << trace_spans
       << ", \"masked_identical\": true},\n"
       << "  \"slo\": {\"criticals\": " << slo_criticals
       << ", \"recoveries\": " << slo_recoveries << ", \"final_state\": \""
       << slo_final_state << "\"},\n"
       << "  \"tsdb\": {\"samples\": " << tsdb_samples
       << ", \"drift_events\": " << tsdb_drift_events
       << ", \"drift_state\": " << tsdb_drift_state
       << ", \"identical\": true},\n"
       << "  \"metrics\": " << bench::metrics_json() << "\n}\n";
  par::set_threads(0);
  bench::require_ok(csv);
  std::printf("\nwrote %s/BENCH_net.json\n", bench::out_dir().c_str());
  return 0;
}
