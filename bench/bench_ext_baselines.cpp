// Extension — literature baselines beyond the paper's main comparison.
//
// §7 surveys adaptation methods and cites Paired Learners [6] and the
// Accuracy Updated Ensemble (AUE2) [11, 12], noting that "few mitigation
// approaches outperform frequent retraining".  This bench places those
// two methods, plus the trivial Persistence forecaster, into the paper's
// ΔNRMSE̅-vs-retrains frame next to Triggered and LEAF so the claim can
// be inspected directly on the synthetic substrate.
#include <cstdio>

#include "bench_common.hpp"
#include "common/metrics.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "models/persistence.hpp"

using namespace leaf;

int main() {
  const Scale scale = Scale::from_env();
  bench::banner("Extension: literature baselines",
                "Paired Learners / AUE2 / Persistence vs the paper's "
                "schemes, Fixed dataset, GBDT, seed-averaged",
                scale);

  const data::CellularDataset ds = data::generate_fixed_dataset(scale);
  const std::vector<std::string> specs = {"Naive30", "Triggered", "LEAF",
                                          "PairedLearners", "AUE2"};

  auto w = bench::csv("ext_baselines.csv");
  w.row({"kpi", "scheme", "delta_nrmse_pct", "retrains"});

  TextTable t({"KPI", "Naive30", "Triggered", "LEAF", "PairedLearners",
               "AUE2", "Persistence*"});
  for (data::TargetKpi target :
       {data::TargetKpi::kDVol, data::TargetKpi::kPU, data::TargetKpi::kCDR,
        data::TargetKpi::kGDR}) {
    const auto outcomes =
        core::compare_schemes(ds, target, models::ModelFamily::kGbdt, scale,
                              specs, core::default_seeds());

    // Persistence is a *model* baseline, not a scheme: run it statically
    // and report its ΔNRMSE̅ against the static GBDT.
    const data::Featurizer featurizer(ds, target);
    const models::Persistence persistence(
        ds.schema().target_column(target));
    core::StaticScheme static_scheme;
    const core::EvalConfig cfg = core::make_eval_config(scale);
    const core::EvalResult pers_run =
        core::run_scheme(featurizer, persistence, static_scheme, cfg);
    const auto gbdt_static =
        core::run_scheme(featurizer,
                         *models::make_model(models::ModelFamily::kGbdt, scale,
                                             core::default_seeds()[0]),
                         static_scheme, cfg);

    std::vector<std::string> row{data::to_string(target)};
    for (const auto& o : outcomes) {
      row.push_back(fmt_pct(o.delta_pct) + " (" + fmt_fixed(o.retrains, 0) +
                    ")");
      w.row({data::to_string(target), o.scheme, fmt(o.delta_pct),
             fmt(o.retrains)});
    }
    const double pers_delta = core::delta_vs_static(pers_run, gbdt_static);
    row.push_back(fmt_pct(pers_delta));
    w.row({data::to_string(target), "Persistence", fmt(pers_delta), "0"});
    t.add_row(std::move(row));
    std::printf("  %s done\n", data::to_string(target).c_str());
  }
  std::printf("%s", t.render().c_str());
  std::printf("\n(*) Persistence = static scaled-last-value model, reported "
              "vs the static GBDT.\nexpected (paper §7): dedicated "
              "adaptation methods rarely beat frequent retraining; LEAF's "
              "advantage is matching it at far fewer retrains while never "
              "degrading the model.\n");
  bench::require_ok(w);
  return 0;
}
