// Ablation — which of LEAF's components carry its behaviour?
//
// DESIGN.md calls out the design choices this bench isolates.  Variants
// (all single-group, GBDT, Fixed dataset, seed-averaged):
//   * full            — LEAF as shipped;
//   * no-forget       — over-sampling only (stale samples never leave);
//   * uniform-sample  — error-informed forgetting, but the refill is drawn
//                       uniformly instead of E_L-weighted;
//   * no-validate     — skip the candidate-vs-current validation gate
//                       (poisoned retrains get deployed);
//   * no-recency      — no recency decay on the high-dispersion pool draw
//                       (regime switches linger);
//   * triggered       — no LEAF at all: full window replacement (the
//                       degenerate variant of everything off).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/leaf_scheme.hpp"
#include "data/generator.hpp"

using namespace leaf;

namespace {

struct Variant {
  const char* name;
  core::LeafConfig cfg;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  core::LeafConfig base;
  out.push_back({"full", base});

  core::LeafConfig no_forget = base;
  no_forget.forget_strength_low = 0.0;
  no_forget.forget_strength_high = 0.0;
  no_forget.forget_age_prob = 0.0;
  out.push_back({"no-forget", no_forget});

  core::LeafConfig uniform = base;
  uniform.oversample_floor = 1.0;  // floor at max => all weights equal
  out.push_back({"uniform-sample", uniform});

  core::LeafConfig no_validate = base;
  no_validate.validation_tolerance_low = 1e9;
  no_validate.validation_tolerance_high = 1e9;
  out.push_back({"no-validate", no_validate});

  core::LeafConfig no_recency = base;
  no_recency.recency_tau_days = 1e9;
  out.push_back({"no-recency", no_recency});
  return out;
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  bench::banner("Extension: LEAF component ablation",
                "LEAF variants with one mechanism disabled, GBDT, Fixed "
                "dataset, seed-averaged",
                scale);

  const data::CellularDataset ds = data::generate_fixed_dataset(scale);
  auto w = bench::csv("ablation_leaf.csv");
  w.row({"kpi", "variant", "delta_nrmse_pct", "retrains"});

  // One low-dispersion and one high-dispersion target cover both paths.
  for (data::TargetKpi target : {data::TargetKpi::kDVol, data::TargetKpi::kGDR}) {
    const data::Featurizer featurizer(ds, target);
    const double dispersion = core::kpi_dispersion(ds, target);
    const core::EvalConfig base_cfg = core::make_eval_config(scale);

    std::printf("\n--- %s (dispersion %.2f, %s path) ---\n",
                data::to_string(target).c_str(), dispersion,
                dispersion >= 1.0 ? "high" : "low");
    TextTable t({"Variant", "dNRMSE%", "#Retrains"});

    for (const Variant& v : variants()) {
      double delta_acc = 0.0, retrain_acc = 0.0;
      for (const std::uint64_t seed : core::default_seeds()) {
        const auto model =
            models::make_model(models::ModelFamily::kGbdt, scale, seed);
        core::EvalConfig cfg = base_cfg;
        cfg.seed = seed;
        cfg.detector.seed = seed ^ 0x5EED;

        core::StaticScheme static_scheme;
        const auto static_run =
            core::run_scheme(featurizer, *model, static_scheme, cfg);

        core::LeafConfig lc = v.cfg;
        lc.seed = seed ^ 0x99;
        core::LeafScheme scheme(lc, dispersion);
        const auto run = core::run_scheme(featurizer, *model, scheme, cfg);
        delta_acc += core::delta_vs_static(run, static_run);
        retrain_acc += run.retrain_count();
      }
      const double n = static_cast<double>(core::default_seeds().size());
      t.add_row({v.name, fmt_pct(delta_acc / n), fmt_fixed(retrain_acc / n, 1)});
      w.row({data::to_string(target), v.name, fmt(delta_acc / n),
             fmt(retrain_acc / n)});
      std::printf("  %s done\n", v.name);
    }

    // Triggered as the everything-off reference.
    double trig_delta = 0.0, trig_retrains = 0.0;
    for (const std::uint64_t seed : core::default_seeds()) {
      const auto model =
          models::make_model(models::ModelFamily::kGbdt, scale, seed);
      core::EvalConfig cfg = base_cfg;
      cfg.seed = seed;
      cfg.detector.seed = seed ^ 0x5EED;
      core::StaticScheme s0;
      const auto static_run = core::run_scheme(featurizer, *model, s0, cfg);
      core::TriggeredScheme trig;
      const auto run = core::run_scheme(featurizer, *model, trig, cfg);
      trig_delta += core::delta_vs_static(run, static_run);
      trig_retrains += run.retrain_count();
    }
    const double n = static_cast<double>(core::default_seeds().size());
    t.add_row({"(triggered)", fmt_pct(trig_delta / n),
               fmt_fixed(trig_retrains / n, 1)});
    std::printf("%s", t.render().c_str());
  }
  std::printf("\nexpected: disabling validation hurts most on the "
              "high-dispersion KPI (poisoned retrains deploy); disabling "
              "forgetting strands stale data on the low-dispersion KPI; "
              "uniform sampling blurs the informed refill.\n");
  bench::require_ok(w);
  return 0;
}
