// Tables 4 and 8 — "Effectiveness of mitigation schemes ... using Fixed
// Dataset.  We include models from different model families over a
// variety of KPIs."
//
// Four model families (boosting / bagging / recurrent / distance-based) x
// six KPIs x four schemes (Naive30, Naive90, Triggered, LEAF).  Paper
// findings to check:
//   * LEAF is the best or near-best scheme for GBDT and ExtraTrees on
//     every KPI, and its ΔNRMSE̅ is always negative (never hurts);
//   * naive/triggered can *increase* error on CDR/GDR;
//   * LEAF helps LSTM by large margins on bursty KPIs;
//   * KNeighbors is the exception — lazy memorization responds poorly to
//     targeted over-sampling (§6.2).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"

using namespace leaf;

int main() {
  const Scale scale = Scale::from_env();
  bench::banner("Tables 4 & 8",
                "Mitigation schemes across model families, Fixed dataset, "
                "seed-averaged",
                scale);

  const data::CellularDataset ds = data::generate_fixed_dataset(scale);
  const std::vector<std::string> specs = {"Naive30", "Naive90", "Triggered",
                                          "LEAF"};

  auto w = bench::csv("table4_models.csv");
  w.row({"model", "kpi", "scheme", "delta_nrmse_pct", "retrains"});

  TextTable t({"Model", "KPI", "Naive30", "Naive90", "Triggered", "LEAF",
               "best"});

  for (models::ModelFamily family : models::table4_families()) {
    // The LSTM is by far the most expensive family; a single seed keeps
    // the bench affordable (the tree families average over two).
    const std::uint64_t seeds2[] = {11, 22};
    const std::uint64_t seeds1[] = {11};
    const std::span<const std::uint64_t> seeds =
        family == models::ModelFamily::kLstm ? std::span<const std::uint64_t>(seeds1)
                                             : std::span<const std::uint64_t>(seeds2);

    for (data::TargetKpi target : data::kAllTargets) {
      const auto outcomes =
          core::compare_schemes(ds, target, family, scale, specs, seeds);
      std::vector<std::string> row{models::paper_name(family),
                                   data::to_string(target)};
      const core::SchemeOutcome* best = &outcomes.front();
      for (const auto& o : outcomes) {
        row.push_back(fmt_pct(o.delta_pct) + " (" +
                      fmt_fixed(o.retrains, 0) + ")");
        w.row({models::to_string(family), data::to_string(target), o.scheme,
               fmt(o.delta_pct), fmt(o.retrains)});
        if (o.delta_pct < best->delta_pct) best = &o;
      }
      row.push_back(best->scheme);
      t.add_row(std::move(row));
      std::printf("  %s / %s done\n", models::to_string(family).c_str(),
                  data::to_string(target).c_str());
    }
    t.add_rule();
  }
  std::printf("%s", t.render().c_str());

  std::printf(
      "\npaper Table 4 headline rows (CatBoost):\n"
      "  DVol: -29.62(39) -19.83(13) -31.80(27) -32.67(28) -> LEAF best\n"
      "  GDR:  +3.37(39)  -4.20(13) +44.56(17)  -6.24(19) -> LEAF best\n"
      "expected: LEAF best/near-best for boosting+bagging, always negative; "
      "baselines go positive on CDR/GDR; KNN is LEAF's weak spot.\n");
  bench::require_ok(w);
  return 0;
}
