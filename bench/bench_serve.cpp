// bench_serve — throughput of the leaf::serve fleet runtime.
//
// Sweeps fleet size (shards) x thread count, runs each fleet to
// completion on a small dataset, and reports evaluation-step throughput
// (shard-days/sec).  Also asserts the determinism contract: per-shard
// results at every thread count must be byte-identical to the
// single-thread run.  Emits BENCH_serve.json next to the CSV dumps.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "core/evaluation.hpp"
#include "data/generator.hpp"
#include "par/parallel.hpp"
#include "serve/runtime.hpp"

using namespace leaf;

namespace {

std::vector<serve::ShardSpec> make_specs(std::size_t n) {
  std::vector<serve::ShardSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    specs.push_back({data::kAllTargets[i % data::kAllTargets.size()],
                     models::ModelFamily::kGbdt, "Triggered", 0});
  return specs;
}

/// Fingerprint of a fleet's results for cross-thread-count comparison.
std::size_t fingerprint(const std::vector<core::EvalResult>& results) {
  std::size_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const core::EvalResult& r : results) {
    for (double v : r.nrmse) {
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      std::memcpy(&bits, &v, sizeof(bits));
      mix(bits);
    }
    for (int d : r.retrain_days) mix(static_cast<std::uint64_t>(d));
    for (int d : r.drift_days) mix(static_cast<std::uint64_t>(d));
  }
  return h;
}

}  // namespace

int main() {
  Scale scale = Scale::from_env();
  // Shrink the per-shard work so the sweep finishes quickly; the fleet
  // structure, not model size, is what is being measured.
  scale.fixed_enbs = std::min(scale.fixed_enbs, 8);
  scale.num_kpis = std::min(scale.num_kpis, 24);
  scale.gbdt_trees = std::min(scale.gbdt_trees, 15);
  scale.eval_stride_days = std::max(scale.eval_stride_days, 4);
  bench::banner("serve", "leaf::serve fleet throughput & determinism", scale);

  const data::CellularDataset ds = data::generate_fixed_dataset(scale, 42);

  const std::size_t shard_counts[] = {1, 4, 8};
  const int thread_counts[] = {1, 2, 4};

  CsvWriter csv = bench::csv("BENCH_serve.csv");
  csv.row({"shards", "threads", "steps", "shard_days", "seconds",
           "shard_days_per_sec"});

  std::ofstream json(bench::out_dir() + "/BENCH_serve.json");
  json << "{\n  \"sweep\": [\n";
  bool first = true;

  std::printf("%8s %8s %8s %12s %14s\n", "shards", "threads", "steps",
              "seconds", "shard-days/s");
  for (std::size_t n_shards : shard_counts) {
    std::size_t reference_fp = 0;
    for (int threads : thread_counts) {
      par::set_threads(threads);
      serve::FleetRuntime fleet(ds, scale, make_specs(n_shards), 2024);
      const obs::Stopwatch sw;
      const std::uint64_t steps = fleet.run_to_end();
      const double secs = sw.seconds();

      const std::vector<core::EvalResult> results = fleet.results();
      const std::size_t fp = fingerprint(results);
      if (threads == thread_counts[0]) {
        reference_fp = fp;
      } else if (fp != reference_fp) {
        std::fprintf(stderr,
                     "FATAL: fleet results differ between thread counts "
                     "(%zu shards, %d threads)\n",
                     n_shards, threads);
        return 1;
      }

      const double shard_days =
          static_cast<double>(steps * n_shards * scale.eval_stride_days);
      const double rate = secs > 0.0 ? shard_days / secs : 0.0;
      std::printf("%8zu %8d %8llu %12.3f %14.1f\n", n_shards, threads,
                  static_cast<unsigned long long>(steps), secs, rate);
      csv.row({std::to_string(n_shards), std::to_string(threads),
               std::to_string(steps), fmt(shard_days), fmt(secs), fmt(rate)});
      if (!first) json << ",\n";
      first = false;
      json << "    {\"shards\": " << n_shards << ", \"threads\": " << threads
           << ", \"steps\": " << steps << ", \"seconds\": " << secs
           << ", \"shard_days_per_sec\": " << rate << ", \"fingerprint\": \""
           << std::hex << fp << std::dec << "\"}";
    }
  }
  json << "\n  ],\n  \"determinism\": \"identical results at all thread "
          "counts\",\n  \"metrics\": "
       << bench::metrics_json() << "\n}\n";
  par::set_threads(0);
  bench::require_ok(csv);
  std::printf("\nwrote %s/BENCH_serve.json\n", bench::out_dir().c_str());
  return 0;
}
