// Figure 9 (Appendix C) — "NRMSE time-series before (static) and after
// (LEAF) mitigation" for all six target KPIs (GBDT, Fixed dataset).
//
// Shapes to check:
//   * DVol: LEAF's series stays bounded (paper: never above ~0.125)
//     while the static series climbs through 2021;
//   * PU: the static model's data-loss error plateau persists for months,
//     LEAF's recovers within days of detection;
//   * CDR/GDR: LEAF tracks the static series closely (hard-to-mitigate),
//     with bursty residual spikes.
#include <cstdio>

#include "bench_common.hpp"
#include "common/ascii_plot.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "models/factory.hpp"

using namespace leaf;

int main() {
  const Scale scale = Scale::from_env();
  bench::banner("Figure 9",
                "Daily NRMSE before (static) and after (LEAF) mitigation, "
                "per KPI, Fixed dataset, GBDT",
                scale);

  const data::CellularDataset ds = data::generate_fixed_dataset(scale);
  const core::EvalConfig cfg = core::make_eval_config(scale);
  const auto model = models::make_model(models::ModelFamily::kGbdt, scale, 7);

  for (data::TargetKpi target : data::kAllTargets) {
    const data::Featurizer featurizer(ds, target);
    const double dispersion = core::kpi_dispersion(ds, target);

    core::StaticScheme static_scheme;
    const core::EvalResult s = core::run_scheme(featurizer, *model,
                                                static_scheme, cfg);
    const auto leaf_scheme = core::make_scheme("LEAF", dispersion);
    const core::EvalResult l =
        core::run_scheme(featurizer, *model, *leaf_scheme, cfg);

    plot::LineChartOptions opts;
    opts.title = "Fig.9 " + data::to_string(target) +
                 ": NRMSE static vs LEAF (" + std::to_string(l.retrain_count()) +
                 " retrains)";
    opts.height = 10;
    opts.y_label = "NRMSE";
    if (!s.days.empty())
      opts.x_ticks = bench::year_ticks(s.days.front(), s.days.back());
    std::printf("%s", plot::line_chart({{"static", s.nrmse}, {"LEAF", l.nrmse}},
                                       opts)
                          .c_str());
    std::printf("avg NRMSE: static %.4f -> LEAF %.4f (Δ %+.2f%%), max: "
                "static %.4f -> LEAF %.4f\n\n",
                s.avg_nrmse(), l.avg_nrmse(), core::delta_vs_static(l, s),
                *std::max_element(s.nrmse.begin(), s.nrmse.end()),
                *std::max_element(l.nrmse.begin(), l.nrmse.end()));

    auto w = bench::csv("fig9_" + data::to_string(target) + ".csv");
    w.row({"date", "static_nrmse", "leaf_nrmse"});
    for (std::size_t i = 0; i < s.days.size(); ++i)
      w.row({cal::day_to_string(s.days[i]), fmt(s.nrmse[i]),
             i < l.nrmse.size() ? fmt(l.nrmse[i]) : ""});
    bench::require_ok(w);
  }
  return 0;
}
