// Figure 2 — "Effects of training set size and training set period on
// concept drift" (downlink volume, CatBoost stand-in).
//
// (a) Training-set SIZE: static models trained on 7 / 14 / 90 / 365 days
//     of history ending July 1 2018.  The paper's finding: the drift
//     pattern is identical across sizes, one week is slightly worse, and
//     two weeks performs about as well as one year (which motivates the
//     14-day window used everywhere else).
// (b) Training-set PERIOD: static models trained on different 14-day
//     windows across the study.  The paper's finding: more recent
//     training periods do NOT necessarily perform better.
#include <cstdio>

#include "bench_common.hpp"
#include "common/ascii_plot.hpp"
#include "common/stats.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "models/factory.hpp"

using namespace leaf;

int main() {
  const Scale scale = Scale::from_env();
  bench::banner("Figure 2",
                "Training-set size (a) and period (b) effects on drift, "
                "DVol, GBDT",
                scale);

  const data::CellularDataset ds = data::generate_evolving_dataset(scale);
  const data::Featurizer featurizer(ds, data::TargetKpi::kDVol);
  const auto model = models::make_model(models::ModelFamily::kGbdt, scale, 7);

  // ---- (a) training-set size -------------------------------------------
  std::printf("--- Fig. 2a: training-set size (window ends 2018-07-01) ---\n");
  std::vector<std::pair<std::string, std::vector<double>>> size_series;
  std::vector<int> days;
  auto wa = bench::csv("fig2a_train_size.csv");
  std::vector<std::vector<double>> cols_a;
  std::vector<std::string> labels_a;
  for (int window : {7, 14, 90, 365}) {
    core::EvalConfig cfg = core::make_eval_config(scale);
    cfg.train_window = window;
    core::StaticScheme scheme;
    const core::EvalResult run =
        core::run_scheme(featurizer, *model, scheme, cfg);
    if (days.empty()) days = run.days;
    const std::string label = window == 7    ? "1 week"
                              : window == 14 ? "2 weeks"
                              : window == 90 ? "3 months"
                                             : "1 year";
    std::printf("  %-8s avg NRMSE %.4f\n", label.c_str(), run.avg_nrmse());
    size_series.emplace_back(label, run.nrmse);
    cols_a.push_back(run.nrmse);
    labels_a.push_back(label);
  }
  plot::LineChartOptions opts;
  opts.title = "Fig.2a: NRMSE over time by training-set size (static GBDT)";
  opts.height = 12;
  opts.y_label = "NRMSE";
  if (!days.empty()) opts.x_ticks = bench::year_ticks(days.front(), days.back());
  std::printf("%s\n", plot::line_chart(size_series, opts).c_str());
  {
    std::vector<std::string> header{"date"};
    for (const auto& l : labels_a) header.push_back(l);
    wa.row(header);
    for (std::size_t i = 0; i < days.size(); ++i) {
      std::vector<std::string> row{cal::day_to_string(days[i])};
      for (const auto& c : cols_a) row.push_back(fmt(c[i]));
      wa.row(row);
    }
  }
  // The paper's size-consistency check: all pairs of size-series should be
  // strongly correlated.
  double min_corr = 1.0;
  for (std::size_t i = 0; i < cols_a.size(); ++i)
    for (std::size_t j = i + 1; j < cols_a.size(); ++j)
      min_corr = std::min(min_corr, stats::pearson(cols_a[i], cols_a[j]));
  std::printf("minimum pairwise correlation across sizes: %.3f "
              "(paper: all sizes drift alike)\n\n",
              min_corr);

  // ---- (b) training-set period -----------------------------------------
  std::printf("--- Fig. 2b: 14-day training windows from different periods ---\n");
  auto wb = bench::csv("fig2b_train_period.csv");
  wb.row({"window_end", "avg_nrmse_after_window"});
  const int step = 60;
  std::vector<std::pair<std::string, double>> bars;
  for (int anchor = cal::anchor_2018_07_01();
       anchor + 181 < ds.num_days() - 60; anchor += step) {
    core::EvalConfig cfg = core::make_eval_config(scale);
    cfg.anchor_day = anchor;
    core::StaticScheme scheme;
    const core::EvalResult run =
        core::run_scheme(featurizer, *model, scheme, cfg);
    // Average error over the first 120 evaluable days after this window,
    // so windows with different amounts of remaining test data compare
    // fairly.
    const std::size_t horizon_steps =
        std::min<std::size_t>(run.nrmse.size(), 120 / static_cast<std::size_t>(cfg.stride));
    if (horizon_steps == 0) continue;
    const double avg = stats::mean(
        std::span<const double>(run.nrmse.data(), horizon_steps));
    bars.emplace_back(cal::day_to_string(anchor), avg);
    wb.row({cal::day_to_string(anchor), fmt(avg)});
  }
  std::printf("%s", plot::bar_chart(bars, 50,
                                    "Fig.2b: near-term NRMSE by training "
                                    "window end date (static GBDT)")
                        .c_str());
  std::printf("\npaper finding: models trained on more recent periods do not "
              "necessarily perform better (note non-monotone bars,\n"
              "especially windows inside the 2020 lockdown).\n");
  bench::require_ok(wa);
  bench::require_ok(wb);
  return 0;
}
