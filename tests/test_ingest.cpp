// Unit and integration tests for the telemetry ingestion layer (ingest/).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/calendar.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "ingest/fault.hpp"
#include "ingest/health.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/validator.hpp"
#include "models/factory.hpp"
#include "obs/events.hpp"

namespace leaf::ingest {
namespace {

Scale tiny_scale() {
  Scale s = Scale::for_level(Scale::Level::kSmall);
  s.fixed_enbs = 6;
  s.num_kpis = 16;
  s.gbdt_trees = 15;
  s.eval_stride_days = 4;
  return s;
}

const data::CellularDataset& tiny_ds() {
  static const data::CellularDataset d =
      data::generate_fixed_dataset(tiny_scale(), 42);
  return d;
}

/// Bitwise record equality (NaN == NaN for this purpose).
bool same_record(const TelemetryRecord& a, const TelemetryRecord& b) {
  return a.day == b.day && a.enb_index == b.enb_index &&
         a.kpis.size() == b.kpis.size() &&
         std::memcmp(a.kpis.data(), b.kpis.data(),
                     a.kpis.size() * sizeof(float)) == 0;
}

// --- fault injector --------------------------------------------------------

TEST(FaultInjector, SameSeedSameFaults) {
  const FaultSpec spec = FaultSpec::at_rate(0.10, 99);
  const auto a = inject_faults(tiny_ds(), spec);
  const auto b = inject_faults(tiny_ds(), spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_TRUE(same_record(a[i], b[i])) << "record " << i;
}

TEST(FaultInjector, DifferentSeedDifferentFaults) {
  const auto a = inject_faults(tiny_ds(), FaultSpec::at_rate(0.10, 1));
  const auto b = inject_faults(tiny_ds(), FaultSpec::at_rate(0.10, 2));
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = !same_record(a[i], b[i]);
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, ZeroRatesAreIdentity) {
  FaultSpec spec;  // all rates zero
  const auto clean = to_stream(tiny_ds());
  const auto faulted = inject_faults(tiny_ds(), spec);
  ASSERT_EQ(clean.size(), faulted.size());
  for (std::size_t i = 0; i < clean.size(); ++i)
    ASSERT_TRUE(same_record(clean[i], faulted[i])) << "record " << i;
}

TEST(FaultInjector, ModesManifestInTheStream) {
  const auto clean = to_stream(tiny_ds());

  FaultSpec drop;
  drop.enb_drop_rate = 0.2;
  const auto dropped = inject_faults(tiny_ds(), drop);
  EXPECT_LT(dropped.size(), clean.size());
  EXPECT_GT(dropped.size(), clean.size() / 2);

  FaultSpec dup;
  dup.duplicate_rate = 0.2;
  EXPECT_GT(inject_faults(tiny_ds(), dup).size(), clean.size());

  FaultSpec nan;
  nan.nan_rate = 0.1;
  std::size_t nans = 0;
  for (const auto& r : inject_faults(tiny_ds(), nan))
    for (float v : r.kpis) nans += std::isnan(v) ? 1 : 0;
  EXPECT_GT(nans, 0u);

  FaultSpec late;
  late.shuffle_rate = 0.1;
  int inversions = 0, max_day = -1;
  for (const auto& r : inject_faults(tiny_ds(), late)) {
    if (r.day < max_day) ++inversions;
    max_day = std::max(max_day, r.day);
  }
  EXPECT_GT(inversions, 0);
}

// --- health state machine --------------------------------------------------

HealthConfig fsm_cfg() {
  HealthConfig cfg;
  cfg.degraded_below = 0.8;
  cfg.outage_below = 0.35;
  cfg.degrade_days = 2;
  cfg.recover_days = 3;
  return cfg;
}

TEST(HealthTracker, SingleBlipDoesNotTrip) {
  HealthTracker t(fsm_cfg());
  EXPECT_EQ(t.step(1.0), HealthState::kOk);
  EXPECT_EQ(t.step(0.0), HealthState::kOk);  // one bad day < degrade_days
  EXPECT_EQ(t.step(1.0), HealthState::kOk);
}

TEST(HealthTracker, TransitionTable) {
  HealthTracker t(fsm_cfg());
  // OK -> DEGRADED after two moderately-bad days.
  EXPECT_EQ(t.step(0.6), HealthState::kOk);
  EXPECT_EQ(t.step(0.6), HealthState::kDegraded);
  // DEGRADED -> OUTAGE after two very-bad days.
  EXPECT_EQ(t.step(0.1), HealthState::kDegraded);
  EXPECT_EQ(t.step(0.1), HealthState::kOutage);
  // OUTAGE -> RECOVERING as soon as data returns...
  EXPECT_EQ(t.step(0.9), HealthState::kRecovering);
  // ...but OK only after recover_days consecutive good days.
  EXPECT_EQ(t.step(0.9), HealthState::kRecovering);
  EXPECT_EQ(t.step(0.9), HealthState::kOk);
}

TEST(HealthTracker, RelapseFromRecovering) {
  HealthTracker t(fsm_cfg());
  t.step(0.0);
  t.step(0.0);
  ASSERT_EQ(t.state(), HealthState::kOutage);
  EXPECT_EQ(t.step(0.9), HealthState::kRecovering);
  EXPECT_EQ(t.step(0.1), HealthState::kOutage);  // relapse
}

TEST(HealthTracker, OkStraightToOutageOnTotalLoss) {
  HealthTracker t(fsm_cfg());
  EXPECT_EQ(t.step(0.0), HealthState::kOk);
  EXPECT_EQ(t.step(0.0), HealthState::kOutage);  // skips DEGRADED
}

// --- hysteresis edge cases --------------------------------------------------

TEST(HealthTracker, FlappingOneBelowDegradeDaysNeverTrips) {
  // degrade_days - 1 consecutive bad days, then one good day, forever:
  // the bad streak resets each cycle and the tracker must stay OK.
  HealthTracker t(fsm_cfg());  // degrade_days = 2
  for (int cycle = 0; cycle < 20; ++cycle) {
    EXPECT_EQ(t.step(0.6), HealthState::kOk);
    EXPECT_EQ(t.step(1.0), HealthState::kOk);
  }
}

TEST(HealthTracker, ExactlyDegradeDaysTrips) {
  HealthTracker t(fsm_cfg());
  EXPECT_EQ(t.step(0.6), HealthState::kOk);        // day 1 of the streak
  EXPECT_EQ(t.step(0.6), HealthState::kDegraded);  // day 2 == degrade_days
}

TEST(HealthTracker, ModerateDayResetsOutageEscalation) {
  // DEGRADED -> OUTAGE needs degrade_days *consecutive* very-bad days; a
  // moderately-bad day in between resets the very-bad streak (but keeps
  // the tracker DEGRADED, since it is still below degraded_below).
  HealthTracker t(fsm_cfg());
  t.step(0.6);
  t.step(0.6);
  ASSERT_EQ(t.state(), HealthState::kDegraded);
  for (int cycle = 0; cycle < 10; ++cycle) {
    EXPECT_EQ(t.step(0.1), HealthState::kDegraded);  // very bad, streak = 1
    EXPECT_EQ(t.step(0.6), HealthState::kDegraded);  // moderate: streak reset
  }
}

TEST(HealthTracker, RecoveryAtExactlyRecoverDays) {
  HealthTracker t(fsm_cfg());  // recover_days = 3
  t.step(0.6);
  t.step(0.6);
  ASSERT_EQ(t.state(), HealthState::kDegraded);
  EXPECT_EQ(t.step(0.9), HealthState::kDegraded);  // good day 1
  EXPECT_EQ(t.step(0.9), HealthState::kDegraded);  // good day 2
  EXPECT_EQ(t.step(0.9), HealthState::kOk);        // good day 3 == recover_days
}

TEST(HealthTracker, RelapseDuringRecoveryRestartsGoodStreak) {
  HealthTracker t(fsm_cfg());
  t.step(0.0);
  t.step(0.0);
  ASSERT_EQ(t.state(), HealthState::kOutage);
  // Two good days, then a relapse: the good streak must restart from zero
  // after the tracker re-enters RECOVERING.
  EXPECT_EQ(t.step(0.9), HealthState::kRecovering);
  EXPECT_EQ(t.step(0.9), HealthState::kRecovering);
  EXPECT_EQ(t.step(0.1), HealthState::kOutage);  // relapse on one very-bad day
  EXPECT_EQ(t.step(0.9), HealthState::kRecovering);
  EXPECT_EQ(t.step(0.9), HealthState::kRecovering);
  EXPECT_EQ(t.step(0.9), HealthState::kOk);  // full recover_days again
}

TEST(HealthTracker, ModerateDaysHoldRecoveringWithoutRecovery) {
  // A day above outage_below but below degraded_below leaves OUTAGE for
  // RECOVERING, yet never accumulates the good streak needed to reach OK.
  HealthTracker t(fsm_cfg());
  t.step(0.0);
  t.step(0.0);
  ASSERT_EQ(t.state(), HealthState::kOutage);
  for (int day = 0; day < 10; ++day)
    EXPECT_EQ(t.step(0.5), HealthState::kRecovering);
  // One very-bad day drops it straight back to OUTAGE.
  EXPECT_EQ(t.step(0.1), HealthState::kOutage);
}

TEST(HealthTracker, ResetReturnsToPristineOk) {
  HealthTracker t(fsm_cfg());
  t.step(0.0);
  t.step(0.0);
  ASSERT_EQ(t.state(), HealthState::kOutage);
  t.reset();
  EXPECT_EQ(t.state(), HealthState::kOk);
  // Streak counters are cleared too: one bad day must not trip.
  EXPECT_EQ(t.step(0.0), HealthState::kOk);
}

// --- imputation policies ---------------------------------------------------

ValidatorConfig policy_cfg(ImputePolicy p) {
  ValidatorConfig cfg;
  cfg.policy = p;
  cfg.staleness_cap_days = 3;
  cfg.seasonal_period = 7;
  return cfg;
}

TEST(Imputer, CarryForwardWithinStalenessCap) {
  Imputer imp(2, 1, policy_cfg(ImputePolicy::kCarryForward));
  imp.begin_day(0);
  imp.observe(0, 0, 5.0);
  imp.begin_day(2);
  EXPECT_TRUE(imp.carry_fresh(0, 0));
  EXPECT_DOUBLE_EQ(imp.impute(0, 0), 5.0);
  imp.begin_day(4);  // 4 days stale > cap of 3
  EXPECT_FALSE(imp.carry_fresh(0, 0));
}

TEST(Imputer, SeasonalNaiveUsesValueOnePeriodBack) {
  Imputer imp(1, 1, policy_cfg(ImputePolicy::kSeasonalNaive));
  for (int d = 0; d < 7; ++d) {
    imp.begin_day(d);
    imp.observe(0, 0, 10.0 + d);
  }
  imp.begin_day(7);
  EXPECT_DOUBLE_EQ(imp.impute(0, 0), 10.0);  // day 0's value
  imp.begin_day(8);
  // Day 8's slot still holds day 1's value; day 8 - 7 == 1 -> usable.
  EXPECT_DOUBLE_EQ(imp.impute(0, 0), 11.0);
}

TEST(Imputer, GroupMedianUsesDayCrossSection) {
  Imputer imp(4, 1, policy_cfg(ImputePolicy::kGroupMedian));
  imp.begin_day(0);
  imp.observe(0, 0, 1.0);
  imp.observe(1, 0, 2.0);
  imp.observe(2, 0, 9.0);
  EXPECT_DOUBLE_EQ(imp.impute(3, 0), 2.0);
}

TEST(Imputer, GroupMedianFallsBackToCarryWhenDayIsThin) {
  ValidatorConfig cfg = policy_cfg(ImputePolicy::kGroupMedian);
  Imputer imp(4, 1, cfg);
  imp.begin_day(0);
  imp.observe(3, 0, 7.0);
  imp.begin_day(1);
  imp.observe(0, 0, 1.0);  // fewer than 3 reporters today
  EXPECT_DOUBLE_EQ(imp.impute(3, 0), 7.0);
}

// --- pipeline --------------------------------------------------------------

TEST(Pipeline, CleanStreamRoundTrips) {
  const auto& ds = tiny_ds();
  const IngestResult res = ingest_stream(ds, to_stream(ds));
  EXPECT_EQ(res.report.records_in, ds.total_logs());
  EXPECT_EQ(res.report.records_out, ds.total_logs());
  EXPECT_EQ(res.report.duplicates_dropped, 0);
  EXPECT_EQ(res.report.late_records, 0);
  EXPECT_EQ(res.report.quarantined_records, 0);
  EXPECT_EQ(res.report.values_imputed, 0);
  EXPECT_EQ(res.report.records_synthesized, 0);
  EXPECT_EQ(res.report.days_missing, 0);
  ASSERT_EQ(res.clean.num_days(), ds.num_days());
  for (int d = 0; d < ds.num_days(); d += 97) {
    ASSERT_EQ(res.clean.enbs_on_day(d), ds.enbs_on_day(d));
    for (int i = 0; i < ds.enbs_on_day(d); ++i) {
      const auto a = ds.log_on_day(d, i), b = res.clean.log_on_day(d, i);
      for (std::size_t c = 0; c < a.size(); ++c)
        ASSERT_FLOAT_EQ(a[c], b[c]) << "day " << d << " col " << c;
    }
  }
}

TEST(Pipeline, ImputesCarryForwardForAMissingRecord) {
  const auto& ds = tiny_ds();
  auto stream = to_stream(ds);
  // Drop eNodeB 0's record on day 400.
  const int day = 400;
  std::vector<float> prev;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (stream[i].day == day - 1 && stream[i].enb_index == 0)
      prev = stream[i].kpis;
    if (stream[i].day == day && stream[i].enb_index == 0) {
      stream.erase(stream.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  ASSERT_FALSE(prev.empty());
  const IngestResult res = ingest_stream(ds, std::move(stream));
  EXPECT_EQ(res.report.records_synthesized, 1);
  EXPECT_EQ(res.report.values_imputed, ds.num_kpis());
  ASSERT_EQ(res.clean.enbs_on_day(day), ds.enbs_on_day(day));
  ASSERT_EQ(res.clean.enb_on_day(day, 0), 0);
  const auto got = res.clean.log_on_day(day, 0);
  for (std::size_t c = 0; c < got.size(); ++c)
    EXPECT_FLOAT_EQ(got[c], prev[c]) << "col " << c;
}

TEST(Pipeline, QuarantinesImplausibleSpike) {
  const auto& ds = tiny_ds();
  auto stream = to_stream(ds);
  // A 1e8x spike on one column of one mid-study record.
  for (auto& r : stream) {
    if (r.day == 500 && r.enb_index == 1) {
      r.kpis[0] *= 1e8f;
      break;
    }
  }
  const IngestResult res = ingest_stream(ds, std::move(stream));
  EXPECT_GE(res.report.quarantined_values, 1);
  EXPECT_GE(res.report.values_imputed, 1);
  // The spike must not survive into the clean dataset.
  const auto got = res.clean.log_on_day(500, 1);
  const auto orig = ds.log_on_day(500, 1);
  EXPECT_LT(std::abs(got[0]), std::abs(orig[0]) * 1e7f);
}

TEST(Pipeline, DetectsDeclaredOutageWindow) {
  const auto& ds = tiny_ds();
  FaultSpec spec;
  spec.outage_column = 0;
  spec.outage_start = 600;
  spec.outage_end = 800;
  const IngestResult res = ingest_stream(ds, inject_faults(ds, spec));
  const auto& health = res.kpi_health[0];
  // OUTAGE covers the window (allowing the entry hysteresis lag)...
  int in_window = 0;
  for (int d = 605; d <= 800; ++d)
    in_window += health[static_cast<std::size_t>(d)] == HealthState::kOutage;
  EXPECT_GE(in_window, 190);
  // ...and does not leak far past recovery.
  EXPECT_FALSE(any_in_state(health, 0, 595, HealthState::kOutage));
  EXPECT_FALSE(any_in_state(health, 810, ds.num_days() - 1,
                            HealthState::kOutage));
  EXPECT_EQ(res.outage_days(1), 0);  // other columns unaffected
}

TEST(Pipeline, EmitsHealthTransitionAndQuarantineEvents) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  const auto& ds = tiny_ds();
  FaultSpec spec;
  spec.outage_column = 0;
  spec.outage_start = 600;
  spec.outage_end = 800;
  spec.spike_rate = 0.01;
  spec.seed = 7;

  obs::EventLog log;
  IngestConfig cfg;
  cfg.events = &log;
  const IngestResult res = ingest_stream(ds, inject_faults(ds, spec), cfg);
  ASSERT_FALSE(log.empty());

  int transitions = 0, quarantines = 0, into_outage = 0;
  for (const obs::Event& e : log.events()) {
    if (e.kind == obs::EventKind::kHealthTransition) {
      ++transitions;
      EXPECT_GE(e.day, 0);
      EXPECT_NE(e.detail.find("from="), std::string::npos);
      EXPECT_NE(e.detail.find("to="), std::string::npos);
      if (e.detail.find("to=OUTAGE") != std::string::npos) ++into_outage;
    } else if (e.kind == obs::EventKind::kQuarantine) {
      ++quarantines;
      EXPECT_NE(e.detail.find("records="), std::string::npos);
      EXPECT_NE(e.detail.find("values="), std::string::npos);
    }
  }
  // The declared outage must surface as at least one transition into
  // OUTAGE; the spikes as at least one per-day quarantine aggregate.
  EXPECT_GT(transitions, 0);
  EXPECT_GT(into_outage, 0);
  EXPECT_GT(quarantines, 0);

  // The event stream is a pure function of the input: re-ingesting the
  // same faulted stream reproduces it byte-for-byte.
  obs::EventLog log2;
  IngestConfig cfg2;
  cfg2.events = &log2;
  ingest_stream(ds, inject_faults(ds, spec), cfg2);
  EXPECT_EQ(log2.to_jsonl(false), log.to_jsonl(false));
}

// --- end-to-end: run_scheme over a faulted stream --------------------------

TEST(Integration, GuardedRunSchemeDegradesGracefully) {
  const Scale scale = tiny_scale();
  const auto& ds = tiny_ds();
  const data::TargetKpi target = data::TargetKpi::kDVol;
  const int target_col = ds.schema().target_column(target);

  FaultSpec spec = FaultSpec::at_rate(0.05, 7);
  spec.outage_column = target_col;
  spec.outage_start = cal::pu_loss_start();
  spec.outage_end = cal::pu_loss_end();

  const IngestResult ing = ingest_stream(ds, inject_faults(ds, spec));
  EXPECT_GT(ing.report.values_imputed, 0);
  EXPECT_GT(ing.outage_days(target_col), 150);

  const data::Featurizer featurizer(ing.clean, target);
  core::EvalConfig cfg = core::make_eval_config(scale);
  cfg.target_health = ing.kpi_health[static_cast<std::size_t>(target_col)];
  cfg.ingest_report = &ing.report;

  const auto model = models::make_model(models::ModelFamily::kGbdt, scale, 7);
  core::TriggeredScheme scheme;
  const core::EvalResult run =
      core::run_scheme(featurizer, *model, scheme, cfg);

  ASSERT_FALSE(run.nrmse.empty());
  for (double v : run.nrmse) EXPECT_TRUE(std::isfinite(v));
  EXPECT_TRUE(run.degraded.any());
  EXPECT_GT(run.degraded.frozen_detector_days, 0);
  EXPECT_GT(run.degraded.values_imputed, 0);
  // No drift detection inside the declared outage window (entry hysteresis
  // allows the first few days).
  for (int d : run.drift_days)
    EXPECT_FALSE(d >= spec.outage_start + 8 && d <= spec.outage_end)
        << "drift fired at day " << d << " inside the declared outage";
}

TEST(Integration, EmptyAnchorWindowReportsContext) {
  const auto& ds = tiny_ds();
  const data::Featurizer featurizer(ds, data::TargetKpi::kDVol);
  const auto model =
      models::make_model(models::ModelFamily::kGbdt, tiny_scale(), 7);
  core::StaticScheme scheme;
  core::EvalConfig cfg = core::make_eval_config(tiny_scale());
  cfg.anchor_day = ds.num_days() + 500;  // window beyond the data
  try {
    core::run_scheme(featurizer, *model, scheme, cfg);
    FAIL() << "expected run_scheme to throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no supervised pairs"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(cfg.anchor_day)), std::string::npos)
        << msg;
  }
}

}  // namespace
}  // namespace leaf::ingest
