// Tests for leaf::net — wire-format round-trips, malformed-frame
// containment, admission control (batching, retry, deadline shedding),
// loopback end-to-end correctness against the fleet, thread-count
// determinism of responses and telemetry, a seeded fuzz-lite corpus, and
// a real-socket TCP smoke.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chaos/chaos.hpp"
#include "common/rng.hpp"
#include "data/generator.hpp"
#include "net/loopback.hpp"
#include "net/tcp.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "par/parallel.hpp"
#include "serve/runtime.hpp"

namespace leaf::net {
namespace {

/// Restores the default thread count even if a test fails mid-way.
struct ThreadGuard {
  ~ThreadGuard() { par::set_threads(0); }
};

Matrix probe_rows(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (auto& v : m.flat()) v = rng.uniform();
  return m;
}

struct NetFixture : ::testing::Test {
  Scale scale = Scale::for_level(Scale::Level::kSmall);
  data::CellularDataset ds = data::generate_fixed_dataset(scale, 42);

  /// Cheap Ridge shards so fleets are fast to make serve-ready.
  std::vector<serve::ShardSpec> specs(std::size_t n) const {
    const data::TargetKpi kpis[] = {data::TargetKpi::kDVol,
                                    data::TargetKpi::kPU,
                                    data::TargetKpi::kDTP};
    std::vector<serve::ShardSpec> out;
    for (std::size_t i = 0; i < n; ++i)
      out.push_back(
          {kpis[i % 3], models::ModelFamily::kRidge, "Triggered", 0});
    return out;
  }

  /// Fleet stepped once: initial fits done, every shard serve-ready.
  std::unique_ptr<serve::FleetRuntime> ready_fleet(std::size_t n) {
    auto fleet = std::make_unique<serve::FleetRuntime>(ds, scale, specs(n));
    fleet->run_steps(1);
    return fleet;
  }
};

// --- frame codec -----------------------------------------------------------

TEST(NetProtocol, FrameRoundTripsThroughDecoder) {
  const Frame in{MsgType::kBatchPredict, 0xDEADBEEFCAFEBABEULL,
                 {1, 2, 3, 4, 5}};
  const std::vector<std::uint8_t> bytes = encode_frame(in);
  ASSERT_EQ(bytes.size(), kHeaderBytes + in.payload.size());

  FrameDecoder dec;
  dec.feed(bytes);
  const std::optional<Frame> out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, in);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.pending_bytes(), 0u);
}

TEST(NetProtocol, ByteAtATimeFeedYieldsTheSameFrames) {
  const Frame a{MsgType::kPredict, 1, {9, 8, 7}};
  const Frame b{MsgType::kScrapeMetrics, 2, {}};
  std::vector<std::uint8_t> bytes = encode_frame(a);
  const std::vector<std::uint8_t> bb = encode_frame(b);
  bytes.insert(bytes.end(), bb.begin(), bb.end());

  FrameDecoder dec;
  std::vector<Frame> got;
  for (std::uint8_t byte : bytes) {
    dec.feed(std::span<const std::uint8_t>(&byte, 1));
    while (std::optional<Frame> f = dec.next()) got.push_back(std::move(*f));
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], a);
  EXPECT_EQ(got[1], b);
}

TEST(NetProtocol, TwoFramesInOneFeedBothValidated) {
  // The second frame's header must be validated after the first is
  // consumed — a bad magic there is framing damage, not a silent parse.
  std::vector<std::uint8_t> bytes = encode_frame({MsgType::kPredict, 1, {}});
  std::vector<std::uint8_t> evil = encode_frame({MsgType::kPredict, 2, {}});
  evil[0] = 'X';  // corrupt the second frame's magic
  bytes.insert(bytes.end(), evil.begin(), evil.end());

  FrameDecoder dec;
  dec.feed(bytes);
  ASSERT_TRUE(dec.next().has_value());  // first frame is fine
  EXPECT_THROW(dec.next(), ProtocolError);
  EXPECT_TRUE(dec.poisoned());
}

TEST(NetProtocol, TruncatedFrameIsPendingNotAnError) {
  const std::vector<std::uint8_t> bytes =
      encode_frame({MsgType::kPredict, 7, {1, 2, 3}});
  FrameDecoder dec;
  dec.feed(std::span<const std::uint8_t>(bytes.data(), bytes.size() - 1));
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_GT(dec.pending_bytes(), 0u);
  dec.feed(std::span<const std::uint8_t>(bytes.data() + bytes.size() - 1, 1));
  EXPECT_TRUE(dec.next().has_value());
}

TEST(NetProtocol, BadMagicBadVersionCrcFlipUnknownTypeAllTyped) {
  const std::vector<std::uint8_t> good =
      encode_frame({MsgType::kPredict, 7, {1, 2, 3}});

  {  // bad magic: rejected as soon as 4 bytes are in
    std::vector<std::uint8_t> bytes = good;
    bytes[1] ^= 0xFF;
    FrameDecoder dec;
    try {
      dec.feed(bytes);
      dec.next();
      FAIL() << "bad magic accepted";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kMalformed);
      EXPECT_TRUE(e.fatal());
    }
    EXPECT_TRUE(dec.poisoned());
    // A poisoned decoder refuses further input.
    EXPECT_THROW(dec.feed(good), ProtocolError);
  }
  {  // unsupported version
    std::vector<std::uint8_t> bytes = good;
    bytes[4] = 0x77;
    FrameDecoder dec;
    EXPECT_THROW(dec.feed(bytes), ProtocolError);
  }
  {  // payload bit flip: CRC catches it
    std::vector<std::uint8_t> bytes = good;
    bytes[kHeaderBytes + 1] ^= 0x01;
    FrameDecoder dec;
    dec.feed(bytes);
    try {
      dec.next();
      FAIL() << "CRC mismatch accepted";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kMalformed);
    }
  }
  {  // unknown frame type
    std::vector<std::uint8_t> bytes = good;
    bytes[8] = 0x42;
    FrameDecoder dec;
    dec.feed(bytes);
    EXPECT_THROW(dec.next(), ProtocolError);
  }
  {  // oversized payload_len against a small bound
    FrameDecoder dec(/*max_frame_bytes=*/16);
    const Frame big{MsgType::kPredict, 1,
                    std::vector<std::uint8_t>(64, 0xAB)};
    try {
      dec.feed(encode_frame(big));
      FAIL() << "oversized frame accepted";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kOversized);
    }
  }
}

// --- body codecs -----------------------------------------------------------

TEST(NetProtocol, PredictBodiesRoundTrip) {
  PredictRequest req;
  req.shard = 3;
  req.deadline_ms = 250;
  req.rows = probe_rows(4, 6, 99);
  const Frame f = make_frame(MsgType::kBatchPredict, 11, req);
  const PredictRequest back = decode_body<PredictRequest>(f);
  EXPECT_EQ(back.shard, req.shard);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);
  ASSERT_EQ(back.rows.rows(), req.rows.rows());
  ASSERT_EQ(back.rows.cols(), req.rows.cols());
  for (std::size_t r = 0; r < req.rows.rows(); ++r)
    for (std::size_t c = 0; c < req.rows.cols(); ++c)
      EXPECT_EQ(back.rows(r, c), req.rows(r, c));

  PredictResponse resp;
  resp.values = {1.5, -2.25, 1e300, 0.0};
  const auto resp_back = decode_body<PredictResponse>(
      make_frame(MsgType::kPredictOk, 11, resp));
  EXPECT_EQ(resp_back.values, resp.values);
}

TEST(NetProtocol, StatusAndErrorBodiesRoundTrip) {
  StatusResponse status;
  status.fleet_steps = 77;
  status.shards.push_back(
      {"DVol", "Ridge", "LEAF", 1, true, 72, 10, 12, false});
  status.shards.push_back({"PU", "GBDT", "Static", 0, false, 64, 0, 0, true});
  const auto status_back = decode_body<StatusResponse>(
      make_frame(MsgType::kStatusOk, 1, status));
  EXPECT_EQ(status_back.fleet_steps, status.fleet_steps);
  ASSERT_EQ(status_back.shards.size(), 2u);
  EXPECT_EQ(status_back.shards[0], status.shards[0]);
  EXPECT_EQ(status_back.shards[1], status.shards[1]);

  const ErrorResponse err{ErrorCode::kShed, "deadline expired"};
  const auto err_back =
      decode_body<ErrorResponse>(make_frame(MsgType::kError, 2, err));
  EXPECT_EQ(err_back.code, err.code);
  EXPECT_EQ(err_back.message, err.message);
}

TEST(NetProtocol, BodyDamageIsNonFatal) {
  // Trailing bytes after a well-formed body.
  Frame f = make_frame(MsgType::kScrapeMetrics, 5, ScrapeRequest{true});
  f.payload.push_back(0xEE);
  try {
    decode_body<ScrapeRequest>(f);
    FAIL() << "trailing bytes accepted";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kMalformed);
    EXPECT_FALSE(e.fatal());
  }
  // Truncated body: the serializer's bounds check surfaces as kMalformed.
  Frame g = make_frame(MsgType::kBatchPredict, 6,
                       PredictRequest{0, 0, probe_rows(2, 3, 1)});
  g.payload.resize(g.payload.size() / 2);
  try {
    decode_body<PredictRequest>(g);
    FAIL() << "truncated body accepted";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kMalformed);
    EXPECT_FALSE(e.fatal());
  }
  // A bogus matrix dimension is caught before any giant allocation.
  io::Serializer s;
  s.put_u32(0);
  s.put_u32(0);
  s.put_u32(0xFFFFFFFF);  // rows
  s.put_u32(0xFFFFFFFF);  // cols
  Frame h{MsgType::kBatchPredict, 7,
          std::vector<std::uint8_t>(s.bytes().begin(), s.bytes().end())};
  EXPECT_THROW(decode_body<PredictRequest>(h), ProtocolError);
}

TEST(NetProtocol, ParseHostPort) {
  const auto [host, port] = parse_host_port("127.0.0.1:8080");
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  EXPECT_THROW(parse_host_port("nocolon"), std::invalid_argument);
  EXPECT_THROW(parse_host_port(":1234"), std::invalid_argument);
  EXPECT_THROW(parse_host_port("host:"), std::invalid_argument);
  EXPECT_THROW(parse_host_port("host:99999"), std::invalid_argument);
  EXPECT_THROW(parse_host_port("host:12x"), std::invalid_argument);
  EXPECT_THROW(parse_host_port("host:0"), std::invalid_argument);
}

// --- chaos net fault points ------------------------------------------------

TEST(NetChaos, ConfigParsesAndRoundTripsNetFaults) {
  const chaos::ChaosConfig cfg =
      chaos::ChaosConfig::parse("seed=9,net-truncate=0.5,net-garbage=0.25");
  EXPECT_TRUE(cfg.any());
  EXPECT_DOUBLE_EQ(cfg.net_truncate, 0.5);
  EXPECT_DOUBLE_EQ(cfg.net_garbage, 0.25);
  const chaos::ChaosConfig back = chaos::ChaosConfig::parse(cfg.to_string());
  EXPECT_DOUBLE_EQ(back.net_truncate, cfg.net_truncate);
  EXPECT_DOUBLE_EQ(back.net_garbage, cfg.net_garbage);
  EXPECT_EQ(back.seed, cfg.seed);

  // Decisions are pure functions of (seed, conn, seq).
  const chaos::Engine a(cfg), b(cfg);
  int fired = 0;
  for (std::uint64_t conn = 1; conn <= 8; ++conn)
    for (std::uint64_t seq = 0; seq < 16; ++seq) {
      EXPECT_EQ(a.net_truncate(conn, seq), b.net_truncate(conn, seq));
      EXPECT_EQ(a.net_garbage(conn, seq), b.net_garbage(conn, seq));
      fired += a.net_truncate(conn, seq) ? 1 : 0;
    }
  EXPECT_GT(fired, 0);          // p=0.5 over 128 draws
  EXPECT_LT(fired, 128);
}

// --- loopback end-to-end ---------------------------------------------------

TEST_F(NetFixture, LoopbackPredictMatchesDirectPredict) {
  auto fleet = ready_fleet(2);
  Loopback loop(*fleet);
  LoopbackConnection& conn = loop.connect();

  const int cols = fleet->shard_num_features(0);
  const Matrix rows = probe_rows(3, static_cast<std::size_t>(cols), 2024);
  conn.send(make_frame(MsgType::kBatchPredict, 42,
                       PredictRequest{0, 0, rows}));
  EXPECT_EQ(loop.core().queued(), 1u);
  EXPECT_EQ(loop.pump(), 1u);

  const std::optional<Frame> resp = conn.receive();
  ASSERT_TRUE(resp.has_value());
  ASSERT_EQ(resp->type, MsgType::kPredictOk);
  EXPECT_EQ(resp->request_id, 42u);
  const PredictResponse body = decode_body<PredictResponse>(*resp);

  std::vector<double> want(rows.rows());
  fleet->predict_shard(0, rows, want);
  EXPECT_EQ(body.values, want);
}

TEST_F(NetFixture, LoopbackStatusAndScrapeAnsweredInline) {
  auto fleet = ready_fleet(3);
  Loopback loop(*fleet);
  LoopbackConnection& conn = loop.connect();

  conn.send(Frame{MsgType::kFleetStatus, 1, {}});
  const std::optional<Frame> sresp = conn.receive();  // no pump needed
  ASSERT_TRUE(sresp.has_value());
  ASSERT_EQ(sresp->type, MsgType::kStatusOk);
  const StatusResponse status = decode_body<StatusResponse>(*sresp);
  ASSERT_EQ(status.shards.size(), 3u);
  for (const ShardStatus& s : status.shards) {
    EXPECT_TRUE(s.ready);
    EXPECT_GT(s.num_features, 0u);
    EXPECT_EQ(s.model, "Ridge");
  }

  conn.send(make_frame(MsgType::kScrapeMetrics, 2, ScrapeRequest{false}));
  const std::optional<Frame> text = conn.receive();
  ASSERT_TRUE(text.has_value());
  ASSERT_EQ(text->type, MsgType::kScrapeOk);
  EXPECT_NE(decode_body<ScrapeResponse>(*text).body.find("leaf_fleet_"),
            std::string::npos);

  conn.send(make_frame(MsgType::kScrapeMetrics, 3, ScrapeRequest{true}));
  const std::optional<Frame> json = conn.receive();
  ASSERT_TRUE(json.has_value());
  const std::string body = decode_body<ScrapeResponse>(*json).body;
  EXPECT_EQ(body.front(), '{');
  EXPECT_NE(body.find("\"metrics\""), std::string::npos);
}

TEST_F(NetFixture, BatcherCoalescesConcurrentRequestsIntoOnePass) {
  auto fleet = ready_fleet(2);
  Loopback loop(*fleet);
  LoopbackConnection& a = loop.connect();
  LoopbackConnection& b = loop.connect();
  LoopbackConnection& c = loop.connect();

  obs::MetricsRegistry::global().reset_values();
  const int cols = fleet->shard_num_features(0);
  a.send(make_frame(MsgType::kPredict, 1,
                    PredictRequest{0, 0, probe_rows(1, cols, 1)}));
  b.send(make_frame(MsgType::kBatchPredict, 2,
                    PredictRequest{0, 0, probe_rows(2, cols, 2)}));
  c.send(make_frame(MsgType::kPredict, 3,
                    PredictRequest{0, 0, probe_rows(1, cols, 3)}));
  EXPECT_EQ(loop.core().queued(), 3u);

  EXPECT_EQ(loop.pump(), 3u);  // three responses, ONE batch
  if (obs::kCompiledIn) {
    EXPECT_EQ(obs::MetricsRegistry::global()
                  .counter("leaf_net_batches_total")
                  .value(),
              1u);
  }
  ASSERT_TRUE(a.receive().has_value());
  ASSERT_TRUE(b.receive().has_value());
  ASSERT_TRUE(c.receive().has_value());

  // The coalesced result equals one direct pass over the stacked rows.
  LoopbackConnection& d = loop.connect();
  const Matrix rows = probe_rows(2, cols, 2);
  d.send(make_frame(MsgType::kBatchPredict, 9, PredictRequest{0, 0, rows}));
  loop.pump();
  const PredictResponse got = decode_body<PredictResponse>(*d.receive());
  std::vector<double> want(rows.rows());
  fleet->predict_shard(0, rows, want);
  EXPECT_EQ(got.values, want);
}

TEST_F(NetFixture, QueueFullGetsTypedRetry) {
  auto fleet = ready_fleet(1);
  NetConfig cfg;
  cfg.queue_depth = 2;
  Loopback loop(*fleet, cfg);
  LoopbackConnection& conn = loop.connect();

  const int cols = fleet->shard_num_features(0);
  for (std::uint64_t id = 1; id <= 3; ++id)
    conn.send(make_frame(MsgType::kPredict, id,
                         PredictRequest{0, 0, probe_rows(1, cols, id)}));

  // The third was refused immediately with kRetry; the queue holds two.
  EXPECT_EQ(loop.core().queued(), 2u);
  const std::optional<Frame> retry = conn.receive();
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->type, MsgType::kError);
  EXPECT_EQ(retry->request_id, 3u);
  EXPECT_EQ(decode_body<ErrorResponse>(*retry).code, ErrorCode::kRetry);

  EXPECT_EQ(loop.pump(), 2u);
  EXPECT_EQ(conn.receive()->request_id, 1u);
  EXPECT_EQ(conn.receive()->request_id, 2u);
}

TEST_F(NetFixture, ExpiredDeadlineIsShedNeverSilentlyDropped) {
  auto fleet = ready_fleet(1);
  Loopback loop(*fleet);
  LoopbackConnection& conn = loop.connect();

  const int cols = fleet->shard_num_features(0);
  conn.send(make_frame(MsgType::kPredict, 1,
                       PredictRequest{0, /*deadline_ms=*/10,
                                      probe_rows(1, cols, 1)}));
  conn.send(make_frame(MsgType::kPredict, 2,
                       PredictRequest{0, /*deadline_ms=*/0,
                                      probe_rows(1, cols, 2)}));
  loop.clock().advance_ms(50);  // request 1's budget expires in queue
  EXPECT_EQ(loop.pump(), 2u);   // one shed + one served — both answered

  const std::optional<Frame> served = conn.receive();
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(served->type, MsgType::kPredictOk);
  EXPECT_EQ(served->request_id, 2u);
  const std::optional<Frame> shed = conn.receive();
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->type, MsgType::kError);
  EXPECT_EQ(shed->request_id, 1u);
  EXPECT_EQ(decode_body<ErrorResponse>(*shed).code, ErrorCode::kShed);
}

TEST_F(NetFixture, BadRequestsAnsweredTypedAndConnectionSurvives) {
  auto fleet = ready_fleet(2);
  Loopback loop(*fleet);
  LoopbackConnection& conn = loop.connect();
  const int cols = fleet->shard_num_features(0);

  // Shard outside the fleet.
  conn.send(make_frame(MsgType::kPredict, 1,
                       PredictRequest{9, 0, probe_rows(1, cols, 1)}));
  EXPECT_EQ(decode_body<ErrorResponse>(*conn.receive()).code,
            ErrorCode::kBadShard);
  // Wrong feature count.
  conn.send(make_frame(MsgType::kPredict, 2,
                       PredictRequest{0, 0, probe_rows(1, cols + 5, 2)}));
  EXPECT_EQ(decode_body<ErrorResponse>(*conn.receive()).code,
            ErrorCode::kMalformed);
  // Batch beyond max_batch_rows.
  conn.send(make_frame(
      MsgType::kBatchPredict, 3,
      PredictRequest{0, 0,
                     probe_rows(loop.core().config().max_batch_rows + 1,
                                cols, 3)}));
  EXPECT_EQ(decode_body<ErrorResponse>(*conn.receive()).code,
            ErrorCode::kOversized);
  // kPredict with more than one row.
  conn.send(make_frame(MsgType::kPredict, 4,
                       PredictRequest{0, 0, probe_rows(2, cols, 4)}));
  EXPECT_EQ(decode_body<ErrorResponse>(*conn.receive()).code,
            ErrorCode::kMalformed);

  // After all that abuse the connection still serves a valid request.
  EXPECT_TRUE(conn.alive());
  conn.send(make_frame(MsgType::kPredict, 5,
                       PredictRequest{0, 0, probe_rows(1, cols, 5)}));
  loop.pump();
  EXPECT_EQ(conn.receive()->type, MsgType::kPredictOk);
}

TEST_F(NetFixture, FramingDamageKillsOnlyThatConnection) {
  auto fleet = ready_fleet(2);
  Loopback loop(*fleet);
  LoopbackConnection& evil = loop.connect();
  LoopbackConnection& good = loop.connect();
  const int cols = fleet->shard_num_features(0);

  // Queue a request on the evil connection, then wreck its stream.
  evil.send(make_frame(MsgType::kPredict, 1,
                       PredictRequest{0, 0, probe_rows(1, cols, 1)}));
  std::vector<std::uint8_t> garbage = {'B', 'A', 'D', '!', 0, 1, 2, 3};
  evil.send_bytes(garbage);
  EXPECT_FALSE(evil.alive());
  EXPECT_FALSE(loop.core().is_open(evil.id()));
  // Its queued request was discarded with it.
  EXPECT_EQ(loop.core().queued(), 0u);

  // The neighbour connection and the fleet are untouched.
  EXPECT_TRUE(good.alive());
  good.send(make_frame(MsgType::kPredict, 2,
                       PredictRequest{0, 0, probe_rows(1, cols, 2)}));
  EXPECT_EQ(loop.pump(), 1u);
  EXPECT_EQ(good.receive()->type, MsgType::kPredictOk);
  EXPECT_TRUE(fleet->step());  // fleet keeps stepping
}

TEST_F(NetFixture, ResponseTypedFrameOnServerIsFatal) {
  auto fleet = ready_fleet(1);
  Loopback loop(*fleet);
  LoopbackConnection& conn = loop.connect();
  conn.send(make_frame(MsgType::kPredictOk, 1, PredictResponse{{1.0}}));
  EXPECT_FALSE(conn.alive());
}

// --- determinism -----------------------------------------------------------

/// The non-wall-clock net telemetry: every leaf_net_* series except
/// *_seconds* is a pure function of the request schedule.
std::string masked_net_scrape() {
  std::istringstream in(obs::MetricsRegistry::global().scrape());
  std::string line, out;
  while (std::getline(in, line))
    if (line.find("leaf_net_") != std::string::npos &&
        line.find("_seconds") == std::string::npos)
      out += line + "\n";
  return out;
}

TEST_F(NetFixture, ResponsesAndTelemetryIdenticalAtAnyThreadCount) {
  ThreadGuard guard;

  // One fixed request schedule over 3 connections against a 4-shard
  // fleet; returns every connection's full decoded response stream plus
  // the masked scrape.
  const auto run = [&](int threads) {
    par::set_threads(threads);
    auto fleet = ready_fleet(4);
    Loopback loop(*fleet);
    obs::MetricsRegistry::global().reset_values();
    std::vector<LoopbackConnection*> conns;
    for (int i = 0; i < 3; ++i) conns.push_back(&loop.connect());

    std::uint64_t id = 1;
    for (int round = 0; round < 6; ++round) {
      for (int c = 0; c < 3; ++c) {
        const std::uint32_t shard = static_cast<std::uint32_t>((round + c) % 4);
        const std::size_t rows = 1 + (round + c) % 3;
        const std::uint32_t deadline = (round == 4 && c == 1) ? 5 : 0;
        const int cols = fleet->shard_num_features(shard);
        conns[c]->send(make_frame(
            rows == 1 ? MsgType::kPredict : MsgType::kBatchPredict, id,
            PredictRequest{shard, deadline, probe_rows(rows, cols, id)}));
        ++id;
      }
      if (round == 4) loop.clock().advance_ms(50);  // expire the deadline
      if (round % 2 == 1) loop.pump();
    }
    conns[0]->send(Frame{MsgType::kFleetStatus, id++, {}});
    while (loop.core().queued() > 0) loop.pump();

    std::vector<std::vector<Frame>> responses(conns.size());
    for (std::size_t c = 0; c < conns.size(); ++c)
      while (std::optional<Frame> f = conns[c]->receive())
        responses[c].push_back(std::move(*f));
    return std::make_pair(std::move(responses), masked_net_scrape());
  };

  const auto [resp1, scrape1] = run(1);
  const auto [resp4, scrape4] = run(4);

  ASSERT_EQ(resp1.size(), resp4.size());
  for (std::size_t c = 0; c < resp1.size(); ++c) {
    ASSERT_EQ(resp1[c].size(), resp4[c].size()) << "conn " << c;
    for (std::size_t i = 0; i < resp1[c].size(); ++i)
      EXPECT_EQ(resp1[c][i], resp4[c][i])
          << "conn " << c << " response " << i;
  }
  if (obs::kCompiledIn) {
    EXPECT_FALSE(scrape1.empty());
  }
  EXPECT_EQ(scrape1, scrape4);
}

TEST_F(NetFixture, ServingQueriesPreservesCrashEquivalence) {
  // Interleaving net queries with fleet steps, snapshotting, "crashing",
  // and resuming must reach byte-identical results to a run that never
  // served or stopped: predictions are pure reads.
  auto uninterrupted = std::make_unique<serve::FleetRuntime>(
      ds, scale, specs(3));
  uninterrupted->run_to_end();

  auto victim = std::make_unique<serve::FleetRuntime>(ds, scale, specs(3));
  {
    Loopback loop(*victim);
    LoopbackConnection& conn = loop.connect();
    victim->run_steps(1);
    for (int step = 0; step < 2; ++step) {
      const int cols = victim->shard_num_features(0);
      conn.send(make_frame(
          MsgType::kBatchPredict, static_cast<std::uint64_t>(step),
          PredictRequest{0, 0, probe_rows(2, cols, 7 + step)}));
      loop.pump();
      ASSERT_EQ(conn.receive()->type, MsgType::kPredictOk);
      victim->step();
    }
  }
  const std::string dir = ::testing::TempDir() + "leaf_net_crash";
  std::filesystem::create_directories(dir);
  victim->snapshot(dir);
  victim.reset();  // "SIGKILL"

  serve::FleetRuntime revived(ds, scale, specs(3));
  revived.restore(dir);
  revived.run_to_end();

  const auto want = uninterrupted->results();
  const auto got = revived.results();
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].nrmse, got[i].nrmse) << "shard " << i;
    EXPECT_EQ(want[i].retrain_days, got[i].retrain_days) << "shard " << i;
    EXPECT_EQ(want[i].drift_days, got[i].drift_days) << "shard " << i;
  }
  EXPECT_EQ(uninterrupted->events_jsonl(false), revived.events_jsonl(false));
}

// --- fuzz-lite -------------------------------------------------------------

TEST_F(NetFixture, FuzzLiteMutatedFramesNeverKillTheFleet) {
  // The ~130 dropped connections below each log a warning; mute them.
  const obs::LogLevel prev_level = obs::log_level();
  obs::set_log_level(obs::LogLevel::kError);
  auto fleet = ready_fleet(2);
  Loopback loop(*fleet);
  const int cols = fleet->shard_num_features(0);
  const std::vector<std::uint8_t> valid = encode_frame(make_frame(
      MsgType::kBatchPredict, 123, PredictRequest{0, 0,
                                                  probe_rows(2, cols, 5)}));

  Rng rng(0xF0220);
  int dropped = 0, answered = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> bytes = valid;
    switch (rng.index(3)) {
      case 0:  // flip one bit anywhere
        bytes[rng.index(bytes.size())] ^=
            static_cast<std::uint8_t>(1u << rng.index(8));
        break;
      case 1:  // truncate (peer dies mid-frame)
        bytes.resize(rng.index(bytes.size()));
        break;
      default:
        // Scribble on the correlation id (CRC covers only the payload):
        // still a well-formed frame, so the server must answer it.
        bytes[9 + rng.index(8)] =
            static_cast<std::uint8_t>(rng.index(256));
        break;
    }
    LoopbackConnection& conn = loop.connect();
    try {
      conn.send_bytes(bytes);
    } catch (const std::exception&) {
      // send on an already-dropped conn; fine
    }
    loop.pump();
    if (!conn.alive()) {
      ++dropped;
    } else {
      while (conn.receive().has_value()) ++answered;
    }
  }
  // The exact split is seed-dependent; what matters is that both typed
  // outcomes occur and the server survived all 200.
  EXPECT_GT(dropped, 0);
  EXPECT_GT(answered, 0);

  LoopbackConnection& fresh = loop.connect();
  fresh.send(Frame{MsgType::kFleetStatus, 1, {}});
  ASSERT_TRUE(fresh.receive().has_value());
  EXPECT_TRUE(fleet->step());
  obs::set_log_level(prev_level);
}

// --- telemetry queries (leaf::tsdb over LNET) ------------------------------

TEST(NetProtocol, SeriesBodiesRoundTrip) {
  SeriesRequest req;
  req.name = "leaf_fleet_*";
  req.labels_contains = "shard=\"1\"";
  req.start_step = 7;
  req.end_step = 93;
  req.resolution = 1;
  req.max_series = 5;
  const auto req_back =
      decode_body<SeriesRequest>(make_frame(MsgType::kQuerySeries, 9, req));
  EXPECT_EQ(req_back.name, req.name);
  EXPECT_EQ(req_back.labels_contains, req.labels_contains);
  EXPECT_EQ(req_back.start_step, req.start_step);
  EXPECT_EQ(req_back.end_step, req.end_step);
  EXPECT_EQ(req_back.resolution, req.resolution);
  EXPECT_EQ(req_back.max_series, req.max_series);

  SeriesResponse resp;
  resp.last_step = 93;
  resp.truncated = true;
  SeriesPoints pts;
  pts.name = "leaf_fleet_steps";
  pts.labels = "{shard=\"1\"}";
  pts.resolution = 1;
  pts.steps = {10, 20};
  pts.values = {4.5, 14.5};
  pts.min = {0.0, 10.0};
  pts.max = {9.0, 19.0};
  pts.counts = {10, 10};
  resp.series.push_back(pts);
  const auto resp_back = decode_body<SeriesResponse>(
      make_frame(MsgType::kQuerySeriesOk, 9, resp));
  EXPECT_EQ(resp_back.last_step, resp.last_step);
  EXPECT_TRUE(resp_back.truncated);
  ASSERT_EQ(resp_back.series.size(), 1u);
  EXPECT_EQ(resp_back.series[0], pts);
}

TEST(NetProtocol, SeriesRequestBadResolutionIsMalformedNotFatal) {
  // Hand-roll a body whose resolution byte names a tier that does not
  // exist; everything else is valid.
  io::Serializer s;
  s.put_string("leaf_fleet_steps");
  s.put_string("");
  s.put_u64(0);
  s.put_u64(~0ULL);
  s.put_u8(3);  // tiers are 0, 1, 2
  s.put_u32(16);
  Frame f{MsgType::kQuerySeries, 8,
          std::vector<std::uint8_t>(s.bytes().begin(), s.bytes().end())};
  try {
    decode_body<SeriesRequest>(f);
    FAIL() << "bad resolution accepted";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kMalformed);
    EXPECT_FALSE(e.fatal());
  }
}

TEST_F(NetFixture, LoopbackQuerySeriesAnsweredInline) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  auto fleet = ready_fleet(2);
  fleet->run_steps(5);
  Loopback loop(*fleet);
  LoopbackConnection& conn = loop.connect();

  // Exact-name raw query: one point per fleet step sampled so far.
  SeriesRequest req;
  req.name = "leaf_fleet_steps";
  conn.send(make_frame(MsgType::kQuerySeries, 1, req));
  const std::optional<Frame> resp = conn.receive();  // no pump needed
  ASSERT_TRUE(resp.has_value());
  ASSERT_EQ(resp->type, MsgType::kQuerySeriesOk);
  const SeriesResponse body = decode_body<SeriesResponse>(*resp);
  // Samples land at the pre-increment tick: newest step is tick - 1.
  EXPECT_EQ(body.last_step + 1, fleet->sample_tick());
  ASSERT_EQ(body.series.size(), 1u);
  ASSERT_EQ(body.series[0].steps.size(), 6u);
  EXPECT_EQ(body.series[0].values.back(), 6.0);

  // Prefix matcher fans out to the per-shard series too.
  SeriesRequest pre;
  pre.name = "leaf_fleet_*";
  pre.max_series = 32;
  conn.send(make_frame(MsgType::kQuerySeries, 2, pre));
  const SeriesResponse fan = decode_body<SeriesResponse>(*conn.receive());
  EXPECT_GT(fan.series.size(), 1u);
  for (std::size_t i = 1; i < fan.series.size(); ++i)
    EXPECT_LE(std::make_pair(fan.series[i - 1].name,
                             fan.series[i - 1].labels),
              std::make_pair(fan.series[i].name, fan.series[i].labels));
}

TEST_F(NetFixture, QuerySeriesOverCapIsOversizedAndConnectionSurvives) {
  auto fleet = ready_fleet(2);
  Loopback loop(*fleet);
  LoopbackConnection& conn = loop.connect();

  SeriesRequest req;
  req.name = "leaf_*";
  req.max_series = 65;  // server ceiling is 64
  conn.send(make_frame(MsgType::kQuerySeries, 1, req));
  const std::optional<Frame> resp = conn.receive();
  ASSERT_TRUE(resp.has_value());
  ASSERT_EQ(resp->type, MsgType::kError);
  EXPECT_EQ(decode_body<ErrorResponse>(*resp).code, ErrorCode::kOversized);

  // Typed refusal, not a dropped connection.
  EXPECT_TRUE(conn.alive());
  req.max_series = 8;
  conn.send(make_frame(MsgType::kQuerySeries, 2, req));
  EXPECT_EQ(conn.receive()->type, MsgType::kQuerySeriesOk);
}

TEST_F(NetFixture, V1ClientGetsV1QuerySeriesResponse) {
  auto fleet = ready_fleet(2);
  Loopback loop(*fleet);
  LoopbackConnection& conn = loop.connect();

  SeriesRequest req;
  req.name = "leaf_fleet_steps";
  Frame f = make_frame(MsgType::kQuerySeries, 3, req);
  f.version = kProtocolV1;
  conn.send(f);
  const std::optional<Frame> resp = conn.receive();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, MsgType::kQuerySeriesOk);
  EXPECT_EQ(resp->version, kProtocolV1);  // echoed, never upgraded
  EXPECT_EQ(resp->request_id, 3u);
}

TEST_F(NetFixture, FuzzLiteMutatedQuerySeriesFramesNeverKillTheFleet) {
  const obs::LogLevel prev_level = obs::log_level();
  obs::set_log_level(obs::LogLevel::kError);
  auto fleet = ready_fleet(2);
  Loopback loop(*fleet);
  SeriesRequest req;
  req.name = "leaf_*";
  req.max_series = 8;
  const std::vector<std::uint8_t> valid =
      encode_frame(make_frame(MsgType::kQuerySeries, 321, req));

  Rng rng(0xF0221);
  int dropped = 0, answered = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> bytes = valid;
    switch (rng.index(3)) {
      case 0:  // flip one bit anywhere
        bytes[rng.index(bytes.size())] ^=
            static_cast<std::uint8_t>(1u << rng.index(8));
        break;
      case 1:  // truncate (peer dies mid-frame)
        bytes.resize(rng.index(bytes.size()));
        break;
      default:  // scribble on the correlation id; still well-formed
        bytes[9 + rng.index(8)] =
            static_cast<std::uint8_t>(rng.index(256));
        break;
    }
    LoopbackConnection& conn = loop.connect();
    try {
      conn.send_bytes(bytes);
    } catch (const std::exception&) {
    }
    loop.pump();
    if (!conn.alive()) {
      ++dropped;
    } else {
      while (conn.receive().has_value()) ++answered;
    }
  }
  EXPECT_GT(dropped, 0);
  EXPECT_GT(answered, 0);

  LoopbackConnection& fresh = loop.connect();
  fresh.send(make_frame(MsgType::kQuerySeries, 1, req));
  ASSERT_TRUE(fresh.receive().has_value());
  EXPECT_TRUE(fleet->step());
  obs::set_log_level(prev_level);
}

// --- real sockets ----------------------------------------------------------

TEST_F(NetFixture, TcpRoundTripAndMidFrameDisconnectSmoke) {
  auto fleet = ready_fleet(2);
  TcpServer server(*fleet, "127.0.0.1", 0);
  ASSERT_GT(server.port(), 0);

  // The server loop owns the core exclusively; the client below only
  // touches its own socket (TSAN-clean by construction).
  std::atomic<bool> stop{false};
  std::thread loop([&] {
    while (!stop.load(std::memory_order_relaxed)) server.poll_once(5);
  });

  {
    TcpClient client("127.0.0.1", server.port());
    const Frame status =
        call(client, Frame{MsgType::kFleetStatus, 1, {}});
    ASSERT_EQ(status.type, MsgType::kStatusOk);
    EXPECT_EQ(decode_body<StatusResponse>(status).shards.size(), 2u);

    const int cols =
        static_cast<int>(decode_body<StatusResponse>(status)
                             .shards[0].num_features);
    const Matrix rows = probe_rows(2, cols, 77);
    const Frame pred = call(
        client,
        make_frame(MsgType::kBatchPredict, 2, PredictRequest{0, 0, rows}));
    ASSERT_EQ(pred.type, MsgType::kPredictOk);
    std::vector<double> want(rows.rows());
    fleet->predict_shard(0, rows, want);
    EXPECT_EQ(decode_body<PredictResponse>(pred).values, want);

    const Frame scrape = call(
        client, make_frame(MsgType::kScrapeMetrics, 3, ScrapeRequest{true}));
    ASSERT_EQ(scrape.type, MsgType::kScrapeOk);
    EXPECT_EQ(decode_body<ScrapeResponse>(scrape).body.front(), '{');
  }

  // Evil client: half a frame, then gone.  The server must shrug it off.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const std::vector<std::uint8_t> frame =
        encode_frame(Frame{MsgType::kFleetStatus, 9, {}});
    ASSERT_GT(::write(fd, frame.data(), frame.size() / 2), 0);
    ::close(fd);
  }

  // A fresh client is still served after the mid-frame disconnect.
  {
    TcpClient client("127.0.0.1", server.port());
    client.send(Frame{MsgType::kFleetStatus, 10, {}});
    ASSERT_TRUE(client.receive().has_value());
  }

  stop.store(true);
  loop.join();
  EXPECT_GE(server.requests_served(), 4u);
}

}  // namespace
}  // namespace leaf::net
