// Unit tests for the regression model zoo (models/).
#include <gtest/gtest.h>

#include <cmath>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "models/factory.hpp"
#include "models/forest.hpp"
#include "models/gbdt.hpp"
#include "models/knn.hpp"
#include "models/lstm.hpp"
#include "models/ridge.hpp"

namespace leaf::models {
namespace {

/// Noisy linear problem with two informative features and two noise
/// features.
struct LinearProblem {
  Matrix X;
  std::vector<double> y;
  Matrix X_test;
  std::vector<double> y_test;

  explicit LinearProblem(std::size_t n = 400, double noise = 0.1) {
    Rng rng(77);
    auto make = [&](Matrix& x, std::vector<double>& t, std::size_t m) {
      x = Matrix(m, 4);
      t.resize(m);
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t c = 0; c < 4; ++c) x(i, c) = rng.normal();
        t[i] = 3.0 * x(i, 0) - 2.0 * x(i, 1) + noise * rng.normal();
      }
    };
    make(X, y, n);
    make(X_test, y_test, 100);
  }

  double test_rmse(const Regressor& model) const {
    return metrics::rmse(model.predict(X_test), y_test);
  }

  /// RMSE of always predicting the training mean.
  double mean_baseline_rmse() const {
    double m = 0.0;
    for (double v : y) m += v;
    m /= static_cast<double>(y.size());
    const std::vector<double> pred(y_test.size(), m);
    return metrics::rmse(pred, y_test);
  }
};

// ---- generic contract, parameterized over families ----------------------

class ModelContractTest : public ::testing::TestWithParam<ModelFamily> {};

TEST_P(ModelContractTest, BeatsMeanBaselineOnLinearProblem) {
  const LinearProblem p;
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto model = make_model(GetParam(), scale, 1);
  model->fit(p.X, p.y);
  ASSERT_TRUE(model->trained());
  EXPECT_LT(p.test_rmse(*model), 0.6 * p.mean_baseline_rmse())
      << to_string(GetParam());
}

TEST_P(ModelContractTest, DeterministicRefit) {
  const LinearProblem p(200);
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto a = make_model(GetParam(), scale, 5);
  const auto b = make_model(GetParam(), scale, 5);
  a->fit(p.X, p.y);
  b->fit(p.X, p.y);
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(a->predict_one(p.X_test.row(i)),
                     b->predict_one(p.X_test.row(i)));
}

TEST_P(ModelContractTest, CloneUntrainedIsUntrainedAndRefittable) {
  const LinearProblem p(200);
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto model = make_model(GetParam(), scale, 1);
  model->fit(p.X, p.y);
  const auto clone = model->clone_untrained();
  EXPECT_FALSE(clone->trained());
  EXPECT_EQ(clone->name(), model->name());
  clone->fit(p.X, p.y);
  EXPECT_TRUE(clone->trained());
  // Same hyperparameters + same data -> same predictions.
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(clone->predict_one(p.X_test.row(i)),
                     model->predict_one(p.X_test.row(i)));
}

TEST_P(ModelContractTest, BatchPredictMatchesPredictOne) {
  const LinearProblem p(150);
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto model = make_model(GetParam(), scale, 1);
  model->fit(p.X, p.y);
  const auto batch = model->predict(p.X_test);
  for (std::size_t i = 0; i < p.X_test.rows(); ++i)
    EXPECT_DOUBLE_EQ(batch[i], model->predict_one(p.X_test.row(i)));
}

TEST_P(ModelContractTest, SampleWeightsBiasPredictions) {
  // Two clusters with different targets; weighting one cluster to ~0
  // must pull global predictions toward the other.
  Matrix x(100, 1);
  std::vector<double> y(100);
  std::vector<double> w(100);
  for (std::size_t i = 0; i < 100; ++i) {
    const bool high = i % 2 == 1;
    x(i, 0) = high ? 1.0 : 0.0;
    y[i] = high ? 10.0 : 0.0;
    w[i] = high ? 1e-6 : 1.0;
  }
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto weighted = make_model(GetParam(), scale, 1);
  weighted->fit(x, y, w);
  const auto uniform = make_model(GetParam(), scale, 1);
  uniform->fit(x, y);
  // Prediction at the down-weighted cluster should move toward 0 compared
  // to the uniformly fitted model (strictness varies by family, so only
  // require a directional effect).
  const std::vector<double> probe = {1.0};
  EXPECT_LT(weighted->predict_one(probe), uniform->predict_one(probe) + 1e-9)
      << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ModelContractTest,
    ::testing::Values(ModelFamily::kGbdt, ModelFamily::kLightGbdt,
                      ModelFamily::kRandomForest, ModelFamily::kExtraTrees,
                      ModelFamily::kKnn, ModelFamily::kLstm,
                      ModelFamily::kRidge),
    [](const ::testing::TestParamInfo<ModelFamily>& info) {
      return to_string(info.param);
    });

// ---- family-specific behaviour -------------------------------------------

TEST(Gbdt, MoreTreesFitBetter) {
  const LinearProblem p;
  Gbdt small(GbdtConfig::catboost_like(5, 1));
  Gbdt large(GbdtConfig::catboost_like(80, 1));
  small.fit(p.X, p.y);
  large.fit(p.X, p.y);
  EXPECT_LT(p.test_rmse(large), p.test_rmse(small));
}

TEST(Gbdt, TreeCountMatchesConfig) {
  const LinearProblem p(200);
  Gbdt model(GbdtConfig::catboost_like(25, 1));
  model.fit(p.X, p.y);
  EXPECT_EQ(model.tree_count(), 25u);
}

TEST(Gbdt, EmptyFitIsRejected) {
  Gbdt model(GbdtConfig::catboost_like(5, 1));
  Matrix empty(0, 3);
  model.fit(empty, {});
  EXPECT_FALSE(model.trained());
}

TEST(Forest, BootstrapDiffersFromExtraTrees) {
  const LinearProblem p(300);
  Forest rf(ForestConfig::random_forest(20, 3), "RandomForest");
  Forest et(ForestConfig::extra_trees(20, 3), "ExtraTrees");
  rf.fit(p.X, p.y);
  et.fit(p.X, p.y);
  // Both fit, but produce different functions.
  bool differ = false;
  for (std::size_t i = 0; i < 20 && !differ; ++i)
    differ = std::abs(rf.predict_one(p.X_test.row(i)) -
                      et.predict_one(p.X_test.row(i))) > 1e-9;
  EXPECT_TRUE(differ);
}

TEST(Knn, MemorizesTrainingPointsExactly) {
  Matrix x(10, 2);
  std::vector<double> y(10);
  Rng rng(5);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
    y[i] = rng.normal();
  }
  KnnConfig cfg;
  cfg.k = 1;
  Knn knn(cfg);
  knn.fit(x, y);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_NEAR(knn.predict_one(x.row(i)), y[i], 1e-9);
}

TEST(Knn, InverseDistanceWeighting) {
  // Probe twice as close to the first point -> prediction nearer y0.
  Matrix x(2, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 3.0;
  const std::vector<double> y = {0.0, 9.0};
  KnnConfig cfg;
  cfg.k = 2;
  Knn knn(cfg);
  knn.fit(x, y);
  const std::vector<double> probe = {1.0};
  const double pred = knn.predict_one(probe);
  EXPECT_LT(pred, 4.5);
  EXPECT_GT(pred, 0.0);
}

TEST(Ridge, RecoversCoefficientsWithSmallLambda) {
  const LinearProblem p(2000, 0.01);
  RidgeConfig cfg;
  cfg.lambda = 1e-6;
  Ridge model(cfg);
  model.fit(p.X, p.y);
  // beta on standardized features: coefficient * feature std (~1).
  ASSERT_EQ(model.coefficients().size(), 4u);
  EXPECT_NEAR(model.coefficients()[0], 3.0, 0.1);
  EXPECT_NEAR(model.coefficients()[1], -2.0, 0.1);
  EXPECT_NEAR(model.coefficients()[2], 0.0, 0.05);
}

TEST(Ridge, LargerLambdaShrinks) {
  const LinearProblem p(500);
  RidgeConfig weak{.lambda = 1e-6};
  RidgeConfig strong{.lambda = 1e5};
  Ridge a(weak), b(strong);
  a.fit(p.X, p.y);
  b.fit(p.X, p.y);
  EXPECT_LT(std::abs(b.coefficients()[0]), std::abs(a.coefficients()[0]));
}

TEST(CholeskySolve, SolvesSpdSystem) {
  Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  std::vector<double> b = {1.0, 2.0};
  ASSERT_TRUE(cholesky_solve(a, b));
  // Solution of [[4,1],[1,3]] x = [1,2] is [1/11, 7/11].
  EXPECT_NEAR(b[0], 1.0 / 11.0, 1e-12);
  EXPECT_NEAR(b[1], 7.0 / 11.0, 1e-12);
}

TEST(CholeskySolve, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // eigenvalues 3, -1
  std::vector<double> b = {1.0, 1.0};
  EXPECT_FALSE(cholesky_solve(a, b));
}

TEST(Lstm, ConvergesOnLinearProblem) {
  const LinearProblem p(300, 0.05);
  LstmConfig cfg;
  cfg.hidden = 12;
  cfg.epochs = 60;
  cfg.seed = 1;
  Lstm model(cfg);
  model.fit(p.X, p.y);
  // Training MSE in standardized units should be well below 1 (the
  // variance of the standardized target).
  EXPECT_LT(model.final_train_mse(), 0.3);
}

TEST(Lstm, MoreEpochsLowerTrainingLoss) {
  const LinearProblem p(200, 0.05);
  LstmConfig short_cfg;
  short_cfg.epochs = 3;
  short_cfg.seed = 2;
  LstmConfig long_cfg = short_cfg;
  long_cfg.epochs = 40;
  Lstm a(short_cfg), b(long_cfg);
  a.fit(p.X, p.y);
  b.fit(p.X, p.y);
  EXPECT_LT(b.final_train_mse(), a.final_train_mse());
}

TEST(Factory, NamesRoundTrip) {
  for (ModelFamily f :
       {ModelFamily::kGbdt, ModelFamily::kLightGbdt, ModelFamily::kRandomForest,
        ModelFamily::kExtraTrees, ModelFamily::kKnn, ModelFamily::kLstm,
        ModelFamily::kRidge}) {
    ModelFamily parsed;
    ASSERT_TRUE(parse_model_family(to_string(f), parsed));
    EXPECT_EQ(parsed, f);
  }
  ModelFamily dummy;
  EXPECT_FALSE(parse_model_family("SVM", dummy));
}

TEST(Factory, Table4FamiliesCoverFourPaperFamilies) {
  const auto fams = table4_families();
  ASSERT_EQ(fams.size(), 4u);
  EXPECT_EQ(fams[0], ModelFamily::kGbdt);        // boosting
  EXPECT_EQ(fams[1], ModelFamily::kExtraTrees);  // bagging
  EXPECT_EQ(fams[2], ModelFamily::kLstm);        // recurrent
  EXPECT_EQ(fams[3], ModelFamily::kKnn);         // distance-based
}

TEST(Factory, PaperNamesMarkStandIns) {
  EXPECT_EQ(paper_name(ModelFamily::kGbdt), "CatBoost*");
  EXPECT_EQ(paper_name(ModelFamily::kLstm), "LSTM*");
}

}  // namespace
}  // namespace leaf::models
