// Unit tests for the text-output helpers: CSV writer, number formatting,
// TextTable, and the ASCII chart renderers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/ascii_plot.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

namespace leaf {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Csv, WritesRows) {
  const std::string path = ::testing::TempDir() + "/t1.csv";
  {
    CsvWriter w(path);
    ASSERT_TRUE(w.ok());
    w.row({"a", "b"});
    w.row({"1", "2"});
  }
  EXPECT_EQ(slurp(path), "a,b\n1,2\n");
}

TEST(Csv, QuotesFieldsWithCommasAndQuotes) {
  const std::string path = ::testing::TempDir() + "/t2.csv";
  {
    CsvWriter w(path);
    w.row({"x,y", "he said \"hi\""});
  }
  EXPECT_EQ(slurp(path), "\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(Csv, NumericRow) {
  const std::string path = ::testing::TempDir() + "/t3.csv";
  {
    CsvWriter w(path);
    w.numeric_row("s", {1.0, 2.5});
  }
  EXPECT_EQ(slurp(path), "s,1,2.5\n");
}

TEST(Csv, UnwritablePathFailsLoudly) {
  // A path whose parent directory does not exist cannot be opened.
  const std::string path =
      ::testing::TempDir() + "/no-such-dir-xyzzy/out.csv";
  CsvWriter w(path);
  EXPECT_FALSE(w.ok());
  w.row({"a", "b"});  // writes to a dead stream must not crash
  EXPECT_FALSE(w.finish());
  // The error message names the offending path.
  EXPECT_NE(w.error().find(path), std::string::npos) << w.error();
}

TEST(Csv, FinishReportsOkOnHealthyWriter) {
  const std::string path = ::testing::TempDir() + "/t4.csv";
  CsvWriter w(path);
  w.row({"a"});
  EXPECT_TRUE(w.finish());
  EXPECT_EQ(w.path(), path);
  EXPECT_EQ(slurp(path), "a\n");
}

TEST(Fmt, CompactDouble) {
  EXPECT_EQ(fmt(1.0), "1");
  EXPECT_EQ(fmt(0.123456789), "0.123457");
}

TEST(Fmt, FixedDigits) {
  EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_fixed(-0.5, 3), "-0.500");
}

TEST(Fmt, Percent) {
  EXPECT_EQ(fmt_pct(-32.675), "-32.67%");
  EXPECT_EQ(fmt_pct(0.0), "0.00%");
}

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"Name", "Value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"beta", "-2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-2"), std::string::npos);
  // Numeric cells right-align: "-2" should be preceded by spaces.
  EXPECT_NE(out.find("  -2 |"), std::string::npos);
}

TEST(TextTable, RuleProducesSeparator) {
  TextTable t({"A"});
  t.add_row({"x"});
  t.add_rule();
  t.add_row({"y"});
  const std::string out = t.render();
  // Expect at least 4 horizontal rules (top, under header, mid, bottom).
  std::size_t rules = 0, pos = 0;
  while ((pos = out.find("+-", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_GE(rules, 4u);
}

TEST(AsciiPlot, LineChartContainsGlyphAndLegend) {
  const std::vector<double> ys = {0.0, 1.0, 2.0, 3.0, 2.0, 1.0};
  const std::string out = plot::line_chart({{"series-a", ys}});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("series-a"), std::string::npos);
}

TEST(AsciiPlot, LineChartEmptyIsSafe) {
  EXPECT_EQ(plot::line_chart({}), "(empty chart)\n");
}

TEST(AsciiPlot, LineChartAllNaNIsSafe) {
  const std::vector<double> ys(10, std::nan(""));
  EXPECT_EQ(plot::line_chart({{"x", ys}}), "(no finite data)\n");
}

TEST(AsciiPlot, HeatMapSequential) {
  Matrix m(4, 6);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 6; ++c) m(r, c) = static_cast<double>(r + c);
  const std::string out = plot::heat_map(m);
  EXPECT_NE(out.find('@'), std::string::npos);  // max ramp glyph present
  EXPECT_NE(out.find("ramp"), std::string::npos);
}

TEST(AsciiPlot, HeatMapDivergingShowsBothSigns) {
  Matrix m(2, 10);
  for (std::size_t c = 0; c < 10; ++c) {
    m(0, c) = 1.0;
    m(1, c) = -1.0;
  }
  plot::HeatMapOptions opts;
  opts.diverging = true;
  const std::string out = plot::heat_map(m, opts);
  EXPECT_NE(out.find('@'), std::string::npos);  // strong positive
  EXPECT_NE(out.find('#'), std::string::npos);  // strong negative
}

TEST(AsciiPlot, HeatMapEmptySafe) {
  EXPECT_EQ(plot::heat_map(Matrix{}), "(empty heat map)\n");
}

TEST(AsciiPlot, BarChartProportionalLengths) {
  const std::string out = plot::bar_chart({{"big", 10.0}, {"small", 1.0}}, 40);
  // "big" bar should contain many '=', "small" few.
  const auto big_pos = out.find("big");
  const auto small_pos = out.find("small");
  ASSERT_NE(big_pos, std::string::npos);
  ASSERT_NE(small_pos, std::string::npos);
  const auto count_eq = [&](std::size_t from) {
    std::size_t n = 0;
    for (std::size_t i = from; i < out.size() && out[i] != '\n'; ++i)
      if (out[i] == '=') ++n;
    return n;
  };
  EXPECT_GT(count_eq(big_pos), count_eq(small_pos) * 5);
}

}  // namespace
}  // namespace leaf
