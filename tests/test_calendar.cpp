// Unit tests for calendar arithmetic (common/calendar.hpp).
#include "common/calendar.hpp"

#include <gtest/gtest.h>

namespace leaf::cal {
namespace {

TEST(Calendar, StudyStartIsDayZero) {
  EXPECT_EQ(day_index(kStudyStart), 0);
}

TEST(Calendar, StudyEndIndex) {
  // Jan 1 2018 .. Mar 28 2022 inclusive = 1548 days.
  EXPECT_EQ(day_index(kStudyEnd), 1547);
  EXPECT_EQ(study_length(), 1548);
}

TEST(Calendar, RoundTripAllStudyDays) {
  for (int d = 0; d < study_length(); ++d) {
    EXPECT_EQ(day_index(date_of(d)), d);
  }
}

TEST(Calendar, KnownDates) {
  EXPECT_EQ(day_index(Date{2018, 2, 1}), 31);
  EXPECT_EQ(day_index(Date{2019, 1, 1}), 365);
  EXPECT_EQ(day_index(Date{2020, 1, 1}), 730);
  // 2020 is a leap year.
  EXPECT_EQ(day_index(Date{2021, 1, 1}), 1096);
}

TEST(Calendar, LeapDayExists) {
  const Date leap{2020, 2, 29};
  const int idx = day_index(leap);
  EXPECT_EQ(date_of(idx), leap);
  EXPECT_EQ(date_of(idx + 1), (Date{2020, 3, 1}));
}

TEST(Calendar, DayOfWeekStartIsMonday) {
  EXPECT_EQ(day_of_week(0), 0);  // 2018-01-01 was a Monday
  EXPECT_EQ(day_of_week(6), 6);  // Sunday
  EXPECT_EQ(day_of_week(7), 0);  // Monday again
}

TEST(Calendar, DayOfWeekKnownDate) {
  // 2020-03-15 was a Sunday.
  EXPECT_EQ(day_of_week(day_index(Date{2020, 3, 15})), 6);
}

TEST(Calendar, DayOfYear) {
  EXPECT_EQ(day_of_year(0), 0);
  EXPECT_EQ(day_of_year(day_index(Date{2018, 12, 31})), 364);
  EXPECT_EQ(day_of_year(day_index(Date{2020, 12, 31})), 365);  // leap year
}

TEST(Calendar, ToStringFormat) {
  EXPECT_EQ(to_string(Date{2020, 3, 5}), "2020-03-05");
  EXPECT_EQ(day_to_string(0), "2018-01-01");
}

TEST(Calendar, NamedEpochsOrdering) {
  EXPECT_LT(0, anchor_2018_07_01());
  EXPECT_LT(anchor_2018_07_01(), pu_loss_start());
  EXPECT_LT(pu_loss_start(), pu_loss_end());
  EXPECT_LT(pu_loss_end(), covid_start());
  EXPECT_LT(covid_start(), covid_recovery_end());
  EXPECT_LT(covid_recovery_end(), gradual_drift_start());
  EXPECT_LT(gradual_drift_start(), gradual_drift_peak());
  EXPECT_LT(early_2022(), study_length());
}

TEST(Calendar, AnchorIsJulyFirst2018) {
  EXPECT_EQ(date_of(anchor_2018_07_01()), (Date{2018, 7, 1}));
}

TEST(Calendar, CovidStartIsMidMarch2020) {
  const Date d = date_of(covid_start());
  EXPECT_EQ(d.year, 2020);
  EXPECT_EQ(d.month, 3);
}

}  // namespace
}  // namespace leaf::cal
