// Unit tests for the eNodeB fleet model (data/network.hpp) and the KPI
// generator (data/generator.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/calendar.hpp"
#include "common/stats.hpp"
#include "data/generator.hpp"
#include "data/network.hpp"
#include "data/temporal.hpp"

namespace leaf::data {
namespace {

Scale tiny_scale() {
  Scale s = Scale::for_level(Scale::Level::kSmall);
  s.fixed_enbs = 8;
  s.evolving_enbs_max = 16;
  s.num_kpis = 16;
  return s;
}

// --- fleet --------------------------------------------------------------

TEST(Fleet, FixedFleetAllInstalledAtDayZero) {
  const auto fleet = build_fixed_fleet(20, 1);
  ASSERT_EQ(fleet.size(), 20u);
  for (const auto& p : fleet) EXPECT_EQ(p.install_day, 0);
}

TEST(Fleet, IdsAreSequential) {
  const auto fleet = build_fixed_fleet(10, 1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fleet[static_cast<std::size_t>(i)].id, i);
}

TEST(Fleet, DeterministicForSeed) {
  const auto a = build_fixed_fleet(10, 7);
  const auto b = build_fixed_fleet(10, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].area, b[i].area);
    EXPECT_DOUBLE_EQ(a[i].base_volume_mb, b[i].base_volume_mb);
  }
}

TEST(Fleet, EvolvingFleetStaggersInstalls) {
  const auto fleet = build_evolving_fleet(100, 3);
  int at_zero = 0, later = 0;
  for (const auto& p : fleet) {
    EXPECT_GE(p.install_day, 0);
    EXPECT_LT(p.install_day, cal::study_length());
    (p.install_day == 0 ? at_zero : later)++;
  }
  // ~46% initial, rest staggered.
  EXPECT_NEAR(at_zero, 46, 3);
  EXPECT_GT(later, 0);
}

TEST(Fleet, AreaMixRoughlyMetropolitan) {
  const auto fleet = build_fixed_fleet(600, 5);
  std::map<AreaType, int> counts;
  for (const auto& p : fleet) ++counts[p.area];
  EXPECT_NEAR(counts[AreaType::kUrban] / 600.0, 0.35, 0.06);
  EXPECT_NEAR(counts[AreaType::kSuburban] / 600.0, 0.45, 0.06);
  EXPECT_NEAR(counts[AreaType::kRural] / 600.0, 0.20, 0.06);
}

TEST(Fleet, SuburbanHasHighestCovidSensitivity) {
  const auto fleet = build_fixed_fleet(300, 5);
  std::map<AreaType, std::pair<double, int>> acc;
  for (const auto& p : fleet) {
    acc[p.area].first += p.covid_sensitivity;
    acc[p.area].second += 1;
  }
  const double sub = acc[AreaType::kSuburban].first / acc[AreaType::kSuburban].second;
  const double urb = acc[AreaType::kUrban].first / acc[AreaType::kUrban].second;
  const double rur = acc[AreaType::kRural].first / acc[AreaType::kRural].second;
  EXPECT_GT(sub, urb);
  EXPECT_GT(urb, rur);
}

// --- latent state ---------------------------------------------------------

TEST(Generator, LatentStateDeterministicAndRandomAccess) {
  const auto fleet = build_fixed_fleet(2, 1);
  const LatentState a = latent_state(fleet[0], 500, 42);
  const LatentState b = latent_state(fleet[0], 500, 42);
  EXPECT_DOUBLE_EQ(a.dvol_mb, b.dvol_mb);
  EXPECT_DOUBLE_EQ(a.call_drop, b.call_drop);
  // Different day / enb / seed all change the draw.
  EXPECT_NE(latent_state(fleet[0], 501, 42).dvol_mb, a.dvol_mb);
  EXPECT_NE(latent_state(fleet[1], 500, 42).dvol_mb, a.dvol_mb);
  EXPECT_NE(latent_state(fleet[0], 500, 43).dvol_mb, a.dvol_mb);
}

TEST(Generator, LatentValuesArePhysical) {
  const auto fleet = build_fixed_fleet(4, 1);
  for (const auto& p : fleet) {
    for (int day : {0, 400, 800, 1200, 1500}) {
      const LatentState s = latent_state(p, day, 42);
      EXPECT_GT(s.dvol_mb, 0.0);
      EXPECT_GE(s.peak_ues, 0.0);
      EXPECT_GT(s.throughput, 0.0);
      EXPECT_GT(s.rrc_success, 0.0);
      EXPECT_GE(s.call_drop, 0.0);
      EXPECT_LE(s.call_drop, 1.0);
      EXPECT_GE(s.gap_ratio, 0.0);
      EXPECT_LE(s.gap_ratio, 1.0);
      EXPECT_GE(s.mobility, 0.0);
      EXPECT_LE(s.mobility, 1.0);
    }
  }
}

TEST(Generator, CovidDepressesDemand) {
  const auto fleet = build_fixed_fleet(16, 1);
  double before = 0.0, during = 0.0;
  const int pre = cal::day_index(cal::Date{2020, 2, 1});
  const int mid = cal::day_index(cal::Date{2020, 4, 20});
  for (const auto& p : fleet) {
    for (int k = 0; k < 14; ++k) {
      before += latent_state(p, pre + k, 42).dvol_mb;
      during += latent_state(p, mid + k, 42).dvol_mb;
    }
  }
  EXPECT_LT(during, before * 0.95);
}

TEST(Generator, PuLossZeroesAffectedSites) {
  auto fleet = build_fixed_fleet(1, 1);
  fleet[0].pu_loss_affected = true;
  const int in_window = (cal::pu_loss_start() + cal::pu_loss_end()) / 2;
  EXPECT_DOUBLE_EQ(latent_state(fleet[0], in_window, 42).peak_ues, 0.0);
  EXPECT_GT(latent_state(fleet[0], cal::pu_loss_end() + 10, 42).peak_ues, 0.0);
  fleet[0].pu_loss_affected = false;
  EXPECT_GT(latent_state(fleet[0], in_window, 42).peak_ues, 0.0);
}

TEST(Generator, GrowthRaisesDemandYearOverYear) {
  const auto fleet = build_fixed_fleet(16, 1);
  double y2018 = 0.0, y2019 = 0.0;
  for (const auto& p : fleet) {
    for (int k = 0; k < 28; ++k) {
      y2018 += latent_state(p, 30 + k, 42).dvol_mb;
      y2019 += latent_state(p, 395 + k, 42).dvol_mb;
    }
  }
  EXPECT_GT(y2019, y2018 * 1.02);
}

TEST(Generator, ThroughputFallsWithCongestion) {
  auto fleet = build_fixed_fleet(1, 1);
  fleet[0].capacity_mbps = 100.0;
  fleet[0].base_volume_mb = 1e5;
  double tp_low = 0.0, tp_high = 0.0;
  for (int k = 0; k < 40; ++k)
    tp_low += latent_state(fleet[0], 10 + k, 42).throughput;
  fleet[0].base_volume_mb = 1.5e6;  // heavily loaded cell
  for (int k = 0; k < 40; ++k)
    tp_high += latent_state(fleet[0], 10 + k, 42).throughput;
  EXPECT_LT(tp_high, tp_low);
}

// --- full dataset ---------------------------------------------------------

TEST(Generator, FixedDatasetShape) {
  const Scale s = tiny_scale();
  const CellularDataset ds = generate_fixed_dataset(s, 42);
  EXPECT_EQ(ds.num_days(), cal::study_length());
  EXPECT_EQ(ds.num_kpis(), s.num_kpis);
  EXPECT_FALSE(ds.evolving());
  EXPECT_EQ(ds.enbs_on_day(0), s.fixed_enbs);
  EXPECT_EQ(ds.enbs_on_day(ds.num_days() - 1), s.fixed_enbs);
  EXPECT_EQ(ds.total_logs(),
            static_cast<std::int64_t>(s.fixed_enbs) * cal::study_length());
}

TEST(Generator, EvolvingDatasetGrows) {
  const Scale s = tiny_scale();
  const CellularDataset ds = generate_evolving_dataset(s, 42);
  EXPECT_TRUE(ds.evolving());
  EXPECT_LT(ds.enbs_on_day(0), ds.enbs_on_day(ds.num_days() - 1));
  EXPECT_GT(ds.total_logs(),
            static_cast<std::int64_t>(ds.enbs_on_day(0)) * ds.num_days());
}

TEST(Generator, EnbIndicesAscendingPerDay) {
  const CellularDataset ds = generate_evolving_dataset(tiny_scale(), 42);
  for (int d : {0, 500, 1000, 1547}) {
    const auto enbs = ds.enb_indices_on_day(d);
    for (std::size_t i = 1; i < enbs.size(); ++i)
      EXPECT_LT(enbs[i - 1], enbs[i]);
  }
}

TEST(Generator, DatasetDeterministic) {
  const CellularDataset a = generate_fixed_dataset(tiny_scale(), 42);
  const CellularDataset b = generate_fixed_dataset(tiny_scale(), 42);
  for (int d : {0, 777, 1547}) {
    const auto la = a.log_on_day(d, 0);
    const auto lb = b.log_on_day(d, 0);
    for (std::size_t k = 0; k < la.size(); ++k) EXPECT_EQ(la[k], lb[k]);
  }
}

TEST(Generator, DifferentSeedsDifferentData) {
  const CellularDataset a = generate_fixed_dataset(tiny_scale(), 42);
  const CellularDataset b = generate_fixed_dataset(tiny_scale(), 43);
  EXPECT_NE(a.log_on_day(100, 0)[0], b.log_on_day(100, 0)[0]);
}

TEST(Generator, CompanionsCorrelateWithAnchors) {
  const CellularDataset ds = generate_fixed_dataset(tiny_scale(), 42);
  const auto& schema = ds.schema();
  const int dvol_col = schema.target_column(TargetKpi::kDVol);
  const auto dvol_cols = schema.columns_for_anchor(LatentAnchor::kDVol);
  ASSERT_GT(dvol_cols.size(), 1u);
  // Pick a companion (not the target itself) and check |corr| with DVol.
  int companion = -1;
  for (int c : dvol_cols)
    if (c != dvol_col) companion = c;
  ASSERT_GE(companion, 0);
  const auto x = ds.all_values(dvol_col);
  const auto y = ds.all_values(companion);
  EXPECT_GT(std::abs(stats::pearson(x, y)), 0.3);
}

TEST(Generator, NoiseKpisUncorrelatedWithTarget) {
  const CellularDataset ds = generate_fixed_dataset(tiny_scale(), 42);
  const auto noise_cols = ds.schema().columns_for_anchor(LatentAnchor::kNone);
  ASSERT_FALSE(noise_cols.empty());
  const auto x = ds.all_values(ds.schema().target_column(TargetKpi::kDVol));
  const auto y = ds.all_values(noise_cols.front());
  EXPECT_LT(std::abs(stats::pearson(x, y)), 0.25);
}

TEST(Generator, DispersionOrderingMatchesPaper) {
  Scale s = tiny_scale();
  s.fixed_enbs = 24;  // enough sites for stable fleet statistics
  const CellularDataset ds = generate_fixed_dataset(s, 42);
  auto disp = [&](TargetKpi t) {
    return stats::dispersion(ds.all_values(ds.schema().target_column(t)));
  };
  EXPECT_GT(disp(TargetKpi::kGDR), disp(TargetKpi::kCDR));
  EXPECT_GT(disp(TargetKpi::kCDR), disp(TargetKpi::kDTP));
  EXPECT_GT(disp(TargetKpi::kPU), disp(TargetKpi::kDVol));
  EXPECT_GT(disp(TargetKpi::kDVol), disp(TargetKpi::kDTP));
}

TEST(Generator, ValueRangeCoversData) {
  const CellularDataset ds = generate_fixed_dataset(tiny_scale(), 42);
  const int col = ds.schema().target_column(TargetKpi::kDVol);
  const auto [lo, hi] = ds.value_range(col);
  EXPECT_LT(lo, hi);
  const auto all = ds.all_values(col);
  EXPECT_DOUBLE_EQ(lo, stats::min(all));
  EXPECT_DOUBLE_EQ(hi, stats::max(all));
}

TEST(Generator, SeriesReturnsNaNBeforeInstall) {
  const CellularDataset ds = generate_evolving_dataset(tiny_scale(), 42);
  // Find a late-installed site.
  int late = -1;
  for (const auto& p : ds.profiles())
    if (p.install_day > 200) late = p.id;
  ASSERT_GE(late, 0);
  const auto series =
      ds.series(late, ds.schema().target_column(TargetKpi::kDVol));
  const int install = ds.profiles()[static_cast<std::size_t>(late)].install_day;
  EXPECT_TRUE(std::isnan(series[static_cast<std::size_t>(install - 1)]));
  EXPECT_FALSE(std::isnan(series[static_cast<std::size_t>(install)]));
}

TEST(Generator, UpgradeSensitiveKpiJumpsAtUpgrade) {
  // Fleet-mean of an upgrade-sensitive companion shifts across an upgrade
  // day by the per-kpi factor; verify a visible discontinuity relative to
  // day-to-day noise for at least one such KPI.
  Scale s = tiny_scale();
  s.fixed_enbs = 16;
  const CellularDataset ds = generate_fixed_dataset(s, 42);
  int col = -1;
  for (int c = 0; c < ds.num_kpis(); ++c)
    if (ds.schema().spec(c).upgrade_sensitive &&
        ds.schema().spec(c).anchor == LatentAnchor::kNone)
      col = c;
  if (col < 0) GTEST_SKIP() << "no upgrade-sensitive noise KPI at this size";
  const int day = software_upgrade_days()[2];
  const auto series = ds.fleet_mean_series(col);
  double before = 0.0, after = 0.0;
  for (int k = 1; k <= 10; ++k) {
    before += series[static_cast<std::size_t>(day - k)];
    after += series[static_cast<std::size_t>(day + k - 1)];
  }
  EXPECT_GT(std::abs(after / before - 1.0), 0.005);
}

}  // namespace
}  // namespace leaf::data
