// Unit tests for the KPI schema (data/kpi.hpp).
#include "data/kpi.hpp"

#include <gtest/gtest.h>

#include <set>

namespace leaf::data {
namespace {

TEST(KpiSchema, SizeMatchesRequest) {
  EXPECT_EQ(KpiSchema::build(64).size(), 64);
  EXPECT_EQ(KpiSchema::build(224).size(), 224);
  EXPECT_EQ(KpiSchema::build(9).size(), 9);
}

TEST(KpiSchema, TargetsComeFirstInOrder) {
  const KpiSchema s = KpiSchema::build(32);
  for (std::size_t i = 0; i < kAllTargets.size(); ++i) {
    const KpiSpec& spec = s.spec(static_cast<int>(i));
    EXPECT_TRUE(spec.is_target);
    EXPECT_EQ(spec.target, kAllTargets[i]);
    EXPECT_EQ(s.target_column(kAllTargets[i]), static_cast<int>(i));
  }
}

TEST(KpiSchema, NamedCaseStudyAnchorsExist) {
  const KpiSchema s = KpiSchema::build(64);
  EXPECT_GE(s.column_of("pdcp_dl_datavol_mb"), 0);
  EXPECT_GE(s.column_of("badcoveragemeasurements"), 0);
  EXPECT_GE(s.column_of("rtp_gap_ratio_medium"), 0);
  EXPECT_GE(s.column_of("handover_success_cnt"), 0);
  EXPECT_EQ(s.column_of("no_such_kpi"), -1);
}

TEST(KpiSchema, TargetNamesMapToColumns) {
  const KpiSchema s = KpiSchema::build(32);
  for (TargetKpi t : kAllTargets)
    EXPECT_EQ(s.column_of(kpi_name(t)), s.target_column(t));
}

TEST(KpiSchema, UniqueNames) {
  const KpiSchema s = KpiSchema::build(224);
  std::set<std::string> names;
  for (const auto& spec : s.specs()) names.insert(spec.name);
  EXPECT_EQ(static_cast<int>(names.size()), s.size());
}

TEST(KpiSchema, DeterministicForSameSeed) {
  const KpiSchema a = KpiSchema::build(96, 5);
  const KpiSchema b = KpiSchema::build(96, 5);
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.spec(i).name, b.spec(i).name);
    EXPECT_DOUBLE_EQ(a.spec(i).scale, b.spec(i).scale);
    EXPECT_DOUBLE_EQ(a.spec(i).exponent, b.spec(i).exponent);
  }
}

TEST(KpiSchema, DVolGroupIsLargestCompanionGroup) {
  // The case study's volume group has 32 of 224 features — the largest.
  const KpiSchema s = KpiSchema::build(224);
  const auto dvol = s.columns_for_anchor(LatentAnchor::kDVol);
  for (LatentAnchor a :
       {LatentAnchor::kPU, LatentAnchor::kDTP, LatentAnchor::kREst,
        LatentAnchor::kCDR, LatentAnchor::kGDR, LatentAnchor::kCoverage,
        LatentAnchor::kMobility}) {
    EXPECT_GE(dvol.size(), s.columns_for_anchor(a).size());
  }
  // Near the paper's 32 (the target + 31 companions).
  EXPECT_NEAR(static_cast<double>(dvol.size()), 32.0, 6.0);
}

TEST(KpiSchema, AllAnchorsRepresentedAtFullScale) {
  const KpiSchema s = KpiSchema::build(224);
  for (LatentAnchor a :
       {LatentAnchor::kDVol, LatentAnchor::kPU, LatentAnchor::kDTP,
        LatentAnchor::kREst, LatentAnchor::kCDR, LatentAnchor::kGDR,
        LatentAnchor::kCoverage, LatentAnchor::kMobility,
        LatentAnchor::kNone}) {
    EXPECT_GT(s.columns_for_anchor(a).size(), 0u);
  }
}

TEST(KpiSchema, GroupProportionsScaleDown) {
  // At any size, noise KPIs should be a meaningful tail and every target
  // group should keep at least its own target column.
  const KpiSchema s = KpiSchema::build(48);
  EXPECT_GT(s.columns_for_anchor(LatentAnchor::kNone).size(), 4u);
  for (TargetKpi t : kAllTargets) {
    SCOPED_TRACE(to_string(t));
    EXPECT_GE(s.columns_for_anchor(
                   s.spec(s.target_column(t)).anchor).size(), 1u);
  }
}

TEST(KpiSchema, ParseTargetRoundTrip) {
  for (TargetKpi t : kAllTargets) {
    TargetKpi parsed;
    ASSERT_TRUE(parse_target(to_string(t), parsed));
    EXPECT_EQ(parsed, t);
  }
  TargetKpi dummy;
  EXPECT_FALSE(parse_target("XYZ", dummy));
}

TEST(KpiSchema, PaperDispersionOrdering) {
  // GDR >> CDR/PU > REst/DVol > DTP in both tables.
  for (bool evolving : {false, true}) {
    EXPECT_GT(paper_dispersion(TargetKpi::kGDR, evolving),
              paper_dispersion(TargetKpi::kCDR, evolving));
    EXPECT_GT(paper_dispersion(TargetKpi::kPU, evolving),
              paper_dispersion(TargetKpi::kDVol, evolving));
    EXPECT_GT(paper_dispersion(TargetKpi::kDVol, evolving),
              paper_dispersion(TargetKpi::kDTP, evolving));
  }
  // Evolving is more dispersed than Fixed.
  for (TargetKpi t : kAllTargets)
    EXPECT_GE(paper_dispersion(t, true), paper_dispersion(t, false));
}

TEST(KpiSchema, TargetsHaveNoObservationNoise) {
  const KpiSchema s = KpiSchema::build(32);
  for (TargetKpi t : kAllTargets)
    EXPECT_DOUBLE_EQ(s.spec(s.target_column(t)).noise_sigma, 0.0);
}

TEST(KpiSchema, GroupLabelsRoundTrip) {
  EXPECT_EQ(to_string(KpiGroup::kResourceUtilization), "resource_utilization");
  EXPECT_EQ(to_string(KpiGroup::kNetworkPerformance), "network_performance");
  EXPECT_EQ(to_string(KpiGroup::kUserExperience), "user_experience");
}

}  // namespace
}  // namespace leaf::data
