// Unit tests for the regression metrics (common/metrics.hpp).
#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace leaf::metrics {
namespace {

TEST(Metrics, RmseKnownValue) {
  const std::vector<double> p = {1.0, 2.0, 3.0};
  const std::vector<double> t = {1.0, 2.0, 5.0};
  EXPECT_NEAR(rmse(p, t), std::sqrt(4.0 / 3.0), 1e-12);
}

TEST(Metrics, RmsePerfectPrediction) {
  const std::vector<double> p = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(rmse(p, p), 0.0);
}

TEST(Metrics, RmseEmpty) {
  EXPECT_DOUBLE_EQ(rmse({}, {}), 0.0);
}

TEST(Metrics, NrmseNormalizesByRange) {
  const std::vector<double> p = {0.0};
  const std::vector<double> t = {10.0};
  EXPECT_DOUBLE_EQ(nrmse(p, t, 100.0), 0.1);
}

TEST(Metrics, NrmseSkipsNonFinitePairs) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // Corrupt pairs are dropped; the remaining pair gives |0-10|/100 = 0.1.
  const std::vector<double> p = {0.0, nan, 3.0};
  const std::vector<double> t = {10.0, 2.0, inf};
  EXPECT_DOUBLE_EQ(nrmse(p, t, 100.0), 0.1);
}

TEST(Metrics, NrmseAllPairsCorruptIsNan) {
  const std::vector<double> p = {std::numeric_limits<double>::quiet_NaN()};
  const std::vector<double> t = {1.0};
  EXPECT_TRUE(std::isnan(nrmse(p, t, 100.0)));
}

TEST(Metrics, NrmseBadRangeIsNan) {
  const std::vector<double> p = {0.0};
  const std::vector<double> t = {10.0};
  EXPECT_TRUE(std::isnan(nrmse(p, t, 0.0)));
  EXPECT_TRUE(std::isnan(nrmse(p, t, -1.0)));
  EXPECT_TRUE(
      std::isnan(nrmse(p, t, std::numeric_limits<double>::quiet_NaN())));
}

TEST(Metrics, NormalizedErrorBadRangeIsNan) {
  EXPECT_TRUE(std::isnan(normalized_error(1.0, 2.0, 0.0)));
}

TEST(Metrics, NormalizedErrorSign) {
  // Over-prediction -> positive NE (overestimation).
  EXPECT_DOUBLE_EQ(normalized_error(15.0, 10.0, 50.0), 0.1);
  // Under-prediction -> negative NE.
  EXPECT_DOUBLE_EQ(normalized_error(5.0, 10.0, 50.0), -0.1);
}

TEST(Metrics, MaeKnownValue) {
  const std::vector<double> p = {1.0, -1.0};
  const std::vector<double> t = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(mae(p, t), 1.0);
}

TEST(Metrics, MedianAeRobustToOutlier) {
  const std::vector<double> p = {0.0, 0.0, 0.0, 0.0, 100.0};
  const std::vector<double> t = {1.0, 1.0, 1.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(median_ae(p, t), 1.0);
}

TEST(Metrics, MapePercentage) {
  const std::vector<double> p = {110.0, 90.0};
  const std::vector<double> t = {100.0, 100.0};
  EXPECT_NEAR(mape(p, t), 10.0, 1e-12);
}

TEST(Metrics, MapeSkipsZeroTruth) {
  const std::vector<double> p = {5.0, 110.0};
  const std::vector<double> t = {0.0, 100.0};
  EXPECT_NEAR(mape(p, t), 10.0, 1e-12);
}

TEST(Metrics, R2PerfectIsOne) {
  const std::vector<double> t = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r2(t, t), 1.0);
}

TEST(Metrics, R2MeanPredictorIsZero) {
  const std::vector<double> t = {1.0, 2.0, 3.0};
  const std::vector<double> p(3, 2.0);
  EXPECT_NEAR(r2(p, t), 0.0, 1e-12);
}

TEST(Metrics, R2WorseThanMeanIsNegative) {
  const std::vector<double> t = {1.0, 2.0, 3.0};
  const std::vector<double> p = {3.0, 2.0, 1.0};
  EXPECT_LT(r2(p, t), 0.0);
}

TEST(Metrics, ExplainedVariancePerfect) {
  const std::vector<double> t = {1.0, 5.0, 9.0};
  EXPECT_DOUBLE_EQ(explained_variance(t, t), 1.0);
}

TEST(Metrics, ExplainedVarianceConstantOffsetStillOne) {
  // A constant bias doesn't change residual variance.
  const std::vector<double> t = {1.0, 5.0, 9.0};
  const std::vector<double> p = {2.0, 6.0, 10.0};
  EXPECT_NEAR(explained_variance(p, t), 1.0, 1e-12);
  EXPECT_LT(r2(p, t), 1.0);  // ...but it does lower R^2
}

TEST(Metrics, DeltaNrmsePct) {
  const std::vector<double> mitigated = {0.05, 0.05};
  const std::vector<double> baseline = {0.10, 0.10};
  EXPECT_NEAR(delta_nrmse_pct(mitigated, baseline), -50.0, 1e-12);
}

TEST(Metrics, DeltaNrmsePctWorseIsPositive) {
  const std::vector<double> mitigated = {0.2};
  const std::vector<double> baseline = {0.1};
  EXPECT_NEAR(delta_nrmse_pct(mitigated, baseline), 100.0, 1e-12);
}

TEST(Metrics, DeltaNrmsePctZeroBaseline) {
  const std::vector<double> zero = {0.0};
  EXPECT_DOUBLE_EQ(delta_nrmse_pct(zero, zero), 0.0);
}

}  // namespace
}  // namespace leaf::metrics
