// Unit tests for the extension baselines: WeightedEnsemble, Persistence,
// Paired Learners, and AUE2.
#include <gtest/gtest.h>

#include <cmath>

#include "common/calendar.hpp"
#include "core/baselines.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "models/ensemble.hpp"
#include "models/factory.hpp"
#include "models/persistence.hpp"
#include "models/ridge.hpp"

namespace leaf {
namespace {

Scale tiny_scale() {
  Scale s = Scale::for_level(Scale::Level::kSmall);
  s.fixed_enbs = 6;
  s.num_kpis = 16;
  s.gbdt_trees = 15;
  s.eval_stride_days = 4;
  return s;
}

const data::CellularDataset& ds() {
  static const data::CellularDataset d =
      data::generate_fixed_dataset(tiny_scale(), 42);
  return d;
}

// --- WeightedEnsemble -------------------------------------------------------

std::shared_ptr<models::Ridge> constant_model(double value) {
  // A Ridge fit on a constant target predicts that constant everywhere.
  auto m = std::make_shared<models::Ridge>();
  Matrix x(4, 1);
  for (std::size_t i = 0; i < 4; ++i) x(i, 0) = static_cast<double>(i);
  m->fit(x, std::vector<double>(4, value));
  return m;
}

TEST(WeightedEnsemble, WeightedAverageOfMembers) {
  models::WeightedEnsemble ens;
  ens.add_member(constant_model(0.0), 1.0);
  ens.add_member(constant_model(10.0), 3.0);
  const std::vector<double> x = {1.0};
  EXPECT_NEAR(ens.predict_one(x), 7.5, 1e-9);
  EXPECT_EQ(ens.size(), 2u);
}

TEST(WeightedEnsemble, AllZeroWeightsFallBackToMean) {
  models::WeightedEnsemble ens;
  ens.add_member(constant_model(2.0), 0.0);
  ens.add_member(constant_model(4.0), 0.0);
  const std::vector<double> x = {1.0};
  EXPECT_NEAR(ens.predict_one(x), 3.0, 1e-9);
}

TEST(WeightedEnsemble, UntrainedWhenEmpty) {
  models::WeightedEnsemble ens;
  EXPECT_FALSE(ens.trained());
  EXPECT_FALSE(ens.clone_untrained()->trained());
}

// --- Persistence ---------------------------------------------------------------

TEST(Persistence, LearnsGrowthRatio) {
  Matrix x(50, 2);
  std::vector<double> y(50);
  Rng rng(3);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.uniform(10.0, 100.0);  // target history column
    x(i, 1) = rng.normal();              // irrelevant
    y[i] = 1.2 * x(i, 0);
  }
  models::Persistence p(0);
  p.fit(x, y);
  EXPECT_NEAR(p.ratio(), 1.2, 1e-9);
  const std::vector<double> probe = {50.0, 0.0};
  EXPECT_NEAR(p.predict_one(probe), 60.0, 1e-9);
}

TEST(Persistence, ZeroHistoryFallsBackToMean) {
  Matrix x(4, 1);
  x(0, 0) = 1.0;
  x(1, 0) = 2.0;
  x(2, 0) = 0.0;  // lost reading
  x(3, 0) = 1.0;
  const std::vector<double> y = {2.0, 4.0, 6.0, 2.0};
  models::Persistence p(0);
  p.fit(x, y);
  const std::vector<double> lost = {0.0};
  EXPECT_NEAR(p.predict_one(lost), 3.5, 1e-9);  // mean of y
}

TEST(Persistence, IsReasonableForecasterOnSyntheticData) {
  const data::Featurizer f(ds(), data::TargetKpi::kDVol);
  const models::Persistence p(ds().schema().target_column(data::TargetKpi::kDVol));
  core::StaticScheme scheme;
  const auto run = core::run_scheme(f, p, scheme,
                                    core::make_eval_config(tiny_scale()));
  // The scaled-last-value model should achieve non-trivial accuracy:
  // better than NRMSE 0.5 everywhere on a KPI whose history is a feature.
  EXPECT_GT(run.days.size(), 100u);
  EXPECT_LT(run.avg_nrmse(), 0.5);
}

// --- Paired Learners -------------------------------------------------------------

TEST(PairedLearners, ReplacesStableModelUnderDrift) {
  const data::Featurizer f(ds(), data::TargetKpi::kDVol);
  core::PairedLearnersScheme scheme;
  const auto model =
      models::make_model(models::ModelFamily::kRidge, tiny_scale(), 1);
  const auto run = core::run_scheme(f, *model, scheme,
                                    core::make_eval_config(tiny_scale()));
  // Four drifting years must force at least one replacement.
  EXPECT_GT(run.retrain_count(), 0);
}

TEST(PairedLearners, QuietWithoutPrototype) {
  core::PairedLearnersScheme scheme;
  scheme.reset();
  const data::Featurizer f(ds(), data::TargetKpi::kDVol);
  const auto model =
      models::make_model(models::ModelFamily::kRidge, tiny_scale(), 1);
  const data::SupervisedSet train = f.window(170, 183);
  model->fit(train.X, train.y);
  Rng rng(1);
  core::SchemeContext ctx{.featurizer = f,
                          .model = *model,
                          .current_train = train,
                          .eval_day = 900,
                          .nrmse = 0.1,
                          .drift = false,
                          .train_window = 14,
                          .rng = &rng,
                          .prototype = nullptr};
  EXPECT_FALSE(scheme.on_step(ctx).has_value());
}

// --- AUE2 ---------------------------------------------------------------------

TEST(Aue2, BuildsEnsembleEveryChunk) {
  const data::Featurizer f(ds(), data::TargetKpi::kDVol);
  core::Aue2Config cfg;
  cfg.chunk_days = 60;
  core::Aue2Scheme scheme(cfg);
  const auto model =
      models::make_model(models::ModelFamily::kRidge, tiny_scale(), 1);
  const core::EvalConfig ecfg = core::make_eval_config(tiny_scale());
  const auto run = core::run_scheme(f, *model, scheme, ecfg);
  // One replacement per chunk after the first.
  const int span = run.days.back() - run.days.front();
  EXPECT_NEAR(run.retrain_count(), span / cfg.chunk_days, 2);
  EXPECT_LE(scheme.member_count(), 5u);
  EXPECT_GE(scheme.member_count(), 1u);
}

TEST(Aue2, MemberCountCapped) {
  const data::Featurizer f(ds(), data::TargetKpi::kDVol);
  core::Aue2Config cfg;
  cfg.chunk_days = 30;
  cfg.max_members = 3;
  core::Aue2Scheme scheme(cfg);
  const auto model =
      models::make_model(models::ModelFamily::kRidge, tiny_scale(), 1);
  core::run_scheme(f, *model, scheme, core::make_eval_config(tiny_scale()));
  EXPECT_LE(scheme.member_count(), 3u);
}

TEST(Aue2, MitigatesRelativeToStatic) {
  const data::Featurizer f(ds(), data::TargetKpi::kDVol);
  const auto model =
      models::make_model(models::ModelFamily::kRidge, tiny_scale(), 1);
  const core::EvalConfig cfg = core::make_eval_config(tiny_scale());
  core::StaticScheme s0;
  const auto static_run = core::run_scheme(f, *model, s0, cfg);
  core::Aue2Scheme aue;
  const auto aue_run = core::run_scheme(f, *model, aue, cfg);
  EXPECT_LT(core::delta_vs_static(aue_run, static_run), 0.0);
}

TEST(SchemeFactory, BuildsExtensionBaselines) {
  EXPECT_EQ(core::make_scheme("PairedLearners", 1.0)->name(), "PairedLearners");
  EXPECT_EQ(core::make_scheme("AUE2", 1.0)->name(), "AUE2");
}

}  // namespace
}  // namespace leaf
