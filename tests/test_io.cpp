// Unit tests for leaf::io — serialization primitives, the LEAFSNAP
// container, model/detector round trips, and robustness against corrupt
// input (truncation, bad CRCs, wrong versions, unknown factory keys).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>

#include "common/rng.hpp"
#include "drift/adwin.hpp"
#include "drift/ddm.hpp"
#include "drift/kswin.hpp"
#include "io/serializer.hpp"
#include "io/snapshot.hpp"
#include "models/ensemble.hpp"
#include "models/factory.hpp"
#include "models/persistence.hpp"
#include "snapshot_fault_helpers.hpp"

namespace leaf::io {
namespace {

// ---- primitives ----------------------------------------------------------

TEST(Serializer, RoundTripsPrimitives) {
  Serializer out;
  out.put_u8(0xAB);
  out.put_u32(0xDEADBEEF);
  out.put_u64(0x0123456789ABCDEFULL);
  out.put_i32(-42);
  out.put_i64(-1234567890123LL);
  out.put_f64(3.14159);
  out.put_bool(true);
  out.put_string("hello snapshot");
  out.put_doubles(std::vector<double>{1.5, -2.5, 0.0});
  out.put_ints(std::vector<int>{7, -8, 9});

  Deserializer in(out.bytes());
  EXPECT_EQ(in.get_u8(), 0xAB);
  EXPECT_EQ(in.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(in.get_i32(), -42);
  EXPECT_EQ(in.get_i64(), -1234567890123LL);
  EXPECT_DOUBLE_EQ(in.get_f64(), 3.14159);
  EXPECT_TRUE(in.get_bool());
  EXPECT_EQ(in.get_string(), "hello snapshot");
  EXPECT_EQ(in.get_doubles(), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(in.get_ints(), (std::vector<int>{7, -8, 9}));
  EXPECT_TRUE(in.exhausted());
}

TEST(Serializer, DoublesRoundTripBitExactly) {
  const double specials[] = {0.0, -0.0, std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::denorm_min()};
  Serializer out;
  for (double v : specials) out.put_f64(v);
  Deserializer in(out.bytes());
  for (double v : specials) {
    const double got = in.get_f64();
    std::uint64_t want_bits, got_bits;
    std::memcpy(&want_bits, &v, 8);
    std::memcpy(&got_bits, &got, 8);
    EXPECT_EQ(got_bits, want_bits);
  }
}

TEST(Serializer, TruncatedReadThrows) {
  Serializer out;
  out.put_u64(12345);
  Deserializer in(out.bytes().subspan(0, 4));
  EXPECT_THROW(in.get_u64(), SnapshotError);
}

TEST(Serializer, CorruptCountThrowsInsteadOfAllocating) {
  Serializer out;
  out.put_u64(std::numeric_limits<std::uint64_t>::max());  // absurd count
  Deserializer in(out.bytes());
  EXPECT_THROW(in.get_doubles(), SnapshotError);
}

TEST(Serializer, RngRoundTripResumesStream) {
  Rng rng(123);
  for (int i = 0; i < 17; ++i) rng.normal();  // leaves a cached deviate
  Serializer out;
  write(out, rng);
  Rng restored(999);
  Deserializer in(out.bytes());
  read_rng(in, restored);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(restored(), rng());
  EXPECT_DOUBLE_EQ(restored.normal(), rng.normal());
}

// ---- container -----------------------------------------------------------

std::vector<std::uint8_t> small_snapshot() {
  SnapshotWriter w;
  w.section("alpha").put_string("first");
  w.section("beta").put_doubles(std::vector<double>{1.0, 2.0, 3.0});
  return w.encode();
}

TEST(Snapshot, ContainerRoundTrips) {
  const std::vector<std::uint8_t> bytes = small_snapshot();
  const SnapshotReader r(bytes);
  EXPECT_TRUE(r.has("alpha"));
  EXPECT_TRUE(r.has("beta"));
  EXPECT_FALSE(r.has("gamma"));
  Deserializer a = r.section("alpha");
  EXPECT_EQ(a.get_string(), "first");
  Deserializer b = r.section("beta");
  EXPECT_EQ(b.get_doubles(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Snapshot, FileRoundTripIsAtomic) {
  const std::string dir = ::testing::TempDir() + "leaf_io_file";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/t.leafsnap";
  SnapshotWriter w;
  w.section("s").put_u64(77);
  const std::uint64_t bytes = w.write_file(path);
  EXPECT_EQ(std::filesystem::file_size(path), bytes);
  // No temporary litter left next to the file.
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  const SnapshotReader r = SnapshotReader::from_file(path);
  Deserializer in = r.section("s");
  EXPECT_EQ(in.get_u64(), 77u);
}

TEST(Snapshot, TruncatedFileFailsWithClearError) {
  const std::vector<std::uint8_t> bytes = small_snapshot();
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{11}, bytes.size() - 1}) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<long>(keep));
    EXPECT_THROW(SnapshotReader{cut}, SnapshotError) << "keep=" << keep;
  }
}

TEST(Snapshot, BitFlipFailsChecksum) {
  // Flip a payload bit in the last section.
  const auto bytes = leaf::testing::flip_bit(small_snapshot(), -2);
  leaf::testing::expect_snapshot_error([&] { SnapshotReader r(bytes); },
                                       "checksum");
}

TEST(Snapshot, BadMagicRejected) {
  const auto bytes = leaf::testing::with_bad_magic(small_snapshot());
  leaf::testing::expect_snapshot_error([&] { SnapshotReader r(bytes); },
                                       "magic");
  // Lenient mode exists to tolerate per-section damage, never a file that
  // is not a snapshot at all.
  leaf::testing::expect_snapshot_error(
      [&] { SnapshotReader r(bytes, SnapshotReader::ReadMode::kLenient); },
      "magic");
}

TEST(Snapshot, WrongFormatVersionRejected) {
  const auto bytes = leaf::testing::with_format_version(small_snapshot(), 99);
  leaf::testing::expect_snapshot_error([&] { SnapshotReader r(bytes); },
                                       "version");
  leaf::testing::expect_snapshot_error(
      [&] { SnapshotReader r(bytes, SnapshotReader::ReadMode::kLenient); },
      "version");
}

TEST(Snapshot, LenientReaderKeepsIntactSectionsReadable) {
  std::vector<std::uint8_t> bytes = small_snapshot();
  ASSERT_TRUE(leaf::testing::corrupt_section_payload(bytes, "beta"));
  const SnapshotReader r(bytes, SnapshotReader::ReadMode::kLenient);
  EXPECT_TRUE(r.has("alpha"));
  EXPECT_FALSE(r.has("beta"));  // present but corrupt
  EXPECT_EQ(r.corrupt_sections(), std::vector<std::string>{"beta"});
  Deserializer a = r.section("alpha");
  EXPECT_EQ(a.get_string(), "first");
  leaf::testing::expect_snapshot_error([&] { r.section("beta"); }, "checksum");
}

TEST(Snapshot, LenientReaderMarksTruncatedTailCorrupt) {
  const std::vector<std::uint8_t> whole = small_snapshot();
  // Cut into the last section's payload: strict throws, lenient still
  // serves the sections before the cut.
  const auto cut = leaf::testing::truncated(whole, whole.size() - 2);
  leaf::testing::expect_snapshot_error([&] { SnapshotReader r(cut); },
                                       "truncated");
  const SnapshotReader r(cut, SnapshotReader::ReadMode::kLenient);
  EXPECT_TRUE(r.has("alpha"));
  EXPECT_FALSE(r.has("beta"));
}

TEST(Snapshot, WriteFailureLeavesNoTemporary) {
  const std::string dir = ::testing::TempDir() + "leaf_io_write_fault";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/t.leafsnap";
  SnapshotWriter w;
  w.section("s").put_doubles(std::vector<double>(64, 1.25));
  {
    const ScopedWriteFault fault(8);  // fail after 8 bytes of the tmp file
    leaf::testing::expect_snapshot_error([&] { w.write_file(path); },
                                         "injected fault");
    EXPECT_FALSE(ScopedWriteFault::armed()) << "fault should be consumed";
  }
  // Regression: the failed write must not leave `t.leafsnap.tmp` (or any
  // other litter) behind, and must not create the final file either.
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  // The writer is reusable after a failed write.
  const std::uint64_t bytes = w.write_file(path);
  EXPECT_EQ(std::filesystem::file_size(path), bytes);
}

TEST(Snapshot, WriteFailurePreservesPreviousSnapshot) {
  const std::string dir = ::testing::TempDir() + "leaf_io_write_keep";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/t.leafsnap";
  SnapshotWriter first;
  first.section("s").put_u64(1);
  first.write_file(path);
  SnapshotWriter second;
  second.section("s").put_u64(2);
  {
    const ScopedWriteFault fault(4);
    leaf::testing::expect_snapshot_error([&] { second.write_file(path); },
                                         "injected fault");
  }
  // The old generation under the final name is untouched.  (The reader
  // must outlive the Deserializer, which views its buffer.)
  const SnapshotReader reader = SnapshotReader::from_file(path);
  Deserializer in = reader.section("s");
  EXPECT_EQ(in.get_u64(), 1u);
}

// ---- model round trips ---------------------------------------------------

struct Problem {
  Matrix X{120, 6};
  std::vector<double> y;
  Matrix X_test{40, 6};

  Problem() {
    Rng rng(31);
    y.resize(X.rows());
    for (std::size_t r = 0; r < X.rows(); ++r) {
      for (std::size_t c = 0; c < X.cols(); ++c) x_at(X, r, c) = rng.normal();
      y[r] = 2.0 * X(r, 0) - X(r, 1) + 0.1 * rng.normal();
    }
    for (std::size_t r = 0; r < X_test.rows(); ++r)
      for (std::size_t c = 0; c < X_test.cols(); ++c)
        x_at(X_test, r, c) = rng.normal();
  }

  static double& x_at(Matrix& m, std::size_t r, std::size_t c) {
    return m(r, c);
  }
};

class ModelRoundTrip : public ::testing::TestWithParam<models::ModelFamily> {};

TEST_P(ModelRoundTrip, PredictionsBitIdenticalAfterRoundTrip) {
  const Problem p;
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto model = models::make_model(GetParam(), scale, 5);
  model->fit(p.X, p.y);

  Serializer out;
  models::save_regressor(out, *model);
  Deserializer in(out.bytes());
  const auto restored = models::load_regressor(in);
  ASSERT_TRUE(in.exhausted());
  ASSERT_TRUE(restored->trained());
  EXPECT_EQ(restored->name(), model->name());

  for (std::size_t r = 0; r < p.X_test.rows(); ++r) {
    const double a = model->predict_one(p.X_test.row(r));
    const double b = restored->predict_one(p.X_test.row(r));
    EXPECT_EQ(a, b) << "row " << r;  // bit-identical, not approximately
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ModelRoundTrip,
    ::testing::Values(models::ModelFamily::kGbdt,
                      models::ModelFamily::kLightGbdt,
                      models::ModelFamily::kRandomForest,
                      models::ModelFamily::kExtraTrees,
                      models::ModelFamily::kKnn, models::ModelFamily::kLstm,
                      models::ModelFamily::kRidge),
    [](const auto& info) { return models::to_string(info.param); });

TEST(ModelIo, PersistenceRoundTrips) {
  const Problem p;
  models::Persistence model(0);
  model.fit(p.X, p.y);
  Serializer out;
  models::save_regressor(out, model);
  Deserializer in(out.bytes());
  const auto restored = models::load_regressor(in);
  for (std::size_t r = 0; r < p.X_test.rows(); ++r)
    EXPECT_EQ(restored->predict_one(p.X_test.row(r)),
              model.predict_one(p.X_test.row(r)));
}

TEST(ModelIo, EnsembleRoundTripsRecursively) {
  const Problem p;
  models::WeightedEnsemble ensemble;
  for (std::uint64_t seed : {1ULL, 2ULL}) {
    auto member = models::make_model(models::ModelFamily::kRidge,
                                     Scale::for_level(Scale::Level::kSmall),
                                     seed);
    member->fit(p.X, p.y);
    ensemble.add_member(std::move(member), 0.5 + static_cast<double>(seed));
  }
  Serializer out;
  models::save_regressor(out, ensemble);
  Deserializer in(out.bytes());
  const auto restored = models::load_regressor(in);
  for (std::size_t r = 0; r < p.X_test.rows(); ++r)
    EXPECT_EQ(restored->predict_one(p.X_test.row(r)),
              ensemble.predict_one(p.X_test.row(r)));
}

TEST(ModelIo, UnknownFactoryKeyThrows) {
  Serializer out;
  out.put_string("quantum_forest");
  Deserializer in(out.bytes());
  leaf::testing::expect_snapshot_error([&] { models::load_regressor(in); },
                                       "quantum_forest");
}

TEST(ModelIo, CorruptTreePayloadThrowsNoUb) {
  const Problem p;
  const auto model = models::make_model(models::ModelFamily::kGbdt,
                                        Scale::for_level(Scale::Level::kSmall),
                                        5);
  model->fit(p.X, p.y);
  Serializer out;
  models::save_regressor(out, *model);
  // Truncations at every prefix length must throw, never crash or read
  // out of bounds (run under ASan in CI).
  const auto bytes = out.bytes();
  for (std::size_t keep = 0; keep < bytes.size();
       keep += std::max<std::size_t>(1, bytes.size() / 97)) {
    Deserializer in(bytes.subspan(0, keep));
    EXPECT_THROW(models::load_regressor(in), SnapshotError) << "keep=" << keep;
  }
}

// ---- detector round trips ------------------------------------------------

TEST(DetectorIo, KswinRoundTripContinuesIdentically) {
  drift::KswinConfig cfg;
  cfg.window_size = 40;
  cfg.stat_size = 14;
  cfg.alpha = 0.025;
  cfg.seed = 11;
  drift::Kswin a(cfg);
  Rng feed(3);
  for (int i = 0; i < 200; ++i) a.update(feed.normal());

  Serializer out;
  a.save_state(out);
  drift::Kswin b(cfg);
  Deserializer in(out.bytes());
  b.load_state(in);
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(b.window_fill(), a.window_fill());

  // Same stream in, same detections out — including the KS sampling RNG.
  Rng fa = feed, fb = feed;
  for (int i = 0; i < 300; ++i) {
    const double shift = i > 100 ? 2.0 : 0.0;
    EXPECT_EQ(b.update(fb.normal() + shift), a.update(fa.normal() + shift));
    EXPECT_EQ(b.last_p_value(), a.last_p_value());
  }
}

TEST(DetectorIo, KswinConfigMismatchRejected) {
  drift::KswinConfig cfg;
  drift::Kswin a(cfg);
  Serializer out;
  a.save_state(out);
  cfg.alpha *= 2.0;
  drift::Kswin b(cfg);
  Deserializer in(out.bytes());
  EXPECT_THROW(b.load_state(in), SnapshotError);
}

TEST(DetectorIo, AdwinRoundTripContinuesIdentically) {
  drift::Adwin a;
  Rng feed(5);
  for (int i = 0; i < 400; ++i) a.update(feed.normal());

  Serializer out;
  a.save_state(out);
  drift::Adwin b;
  Deserializer in(out.bytes());
  b.load_state(in);
  EXPECT_EQ(b.window_length(), a.window_length());
  EXPECT_EQ(b.window_mean(), a.window_mean());

  Rng fa = feed, fb = feed;
  for (int i = 0; i < 400; ++i) {
    const double shift = i > 150 ? 3.0 : 0.0;
    EXPECT_EQ(b.update(fb.normal() + shift), a.update(fa.normal() + shift));
  }
}

TEST(DetectorIo, DdmRoundTripContinuesIdentically) {
  drift::Ddm a;
  Rng feed(7);
  for (int i = 0; i < 300; ++i) a.update(feed.normal());

  Serializer out;
  a.save_state(out);
  drift::Ddm b;
  Deserializer in(out.bytes());
  b.load_state(in);
  EXPECT_EQ(b.in_warning_zone(), a.in_warning_zone());

  Rng fa = feed, fb = feed;
  for (int i = 0; i < 300; ++i) {
    const double shift = i > 100 ? 4.0 : 0.0;
    EXPECT_EQ(b.update(fb.normal() + shift), a.update(fa.normal() + shift));
  }
}

TEST(DetectorIo, UnimplementedDetectorFailsLoudly) {
  drift::PageHinkley ph;
  Serializer out;
  EXPECT_THROW(ph.save_state(out), SnapshotError);
}

}  // namespace
}  // namespace leaf::io
