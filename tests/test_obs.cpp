// Unit tests for leaf::obs — striped counters, histograms, span sites,
// scrape formats, the event log, and the determinism contract (logical
// telemetry identical at any LEAF_THREADS).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "io/serializer.hpp"
#include "io/snapshot.hpp"
#include "models/factory.hpp"
#include "obs/events.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "par/pool.hpp"

namespace leaf::obs {
namespace {

// --- counters ---------------------------------------------------------------

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  Counter c;
  const int n_threads = 8;
  const std::uint64_t per_thread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(n_threads);
  for (int t = 0; t < n_threads; ++t)
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < per_thread; ++i) c.inc();
    });
  for (auto& w : workers) w.join();
  // Integer addition commutes: the final value is exact regardless of how
  // threads were mapped to stripes.
  EXPECT_EQ(c.value(), n_threads * per_thread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, IncByN) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  Counter c;
  c.inc(5);
  c.inc(7);
  EXPECT_EQ(c.value(), 12u);
}

// --- histograms -------------------------------------------------------------

TEST(ObsHistogram, BucketsAreInclusiveUpperBoundsPlusOverflow) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  Histogram h({0.1, 1.0, 10.0});
  h.observe(0.05);   // bucket 0
  h.observe(0.1);    // bucket 0 (inclusive upper bound)
  h.observe(0.5);    // bucket 1
  h.observe(10.0);   // bucket 2
  h.observe(100.0);  // +Inf overflow bucket
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);  // +Inf
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.sum(), 110.65, 1e-9);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket(0), 0u);
}

// --- span sites -------------------------------------------------------------

std::uint64_t spanned_work(int reps) {
  std::uint64_t acc = 0;
  for (int i = 0; i < reps; ++i) {
    LEAF_SPAN("test_obs.spanned_work");
    acc += static_cast<std::uint64_t>(i);
  }
  return acc;
}

TEST(ObsSpan, CountsEveryTraversal) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  SpanSite& site = MetricsRegistry::global().span_site("test_obs.spanned_work");
  const std::uint64_t before = site.count();
  spanned_work(17);
  EXPECT_EQ(site.count(), before + 17);
}

TEST(ObsSpan, RuntimeDisabledStillCountsButDoesNotTime) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  SpanSite& site = MetricsRegistry::global().span_site("test_obs.disabled");
  site.reset();
  set_enabled(false);
  {
    LEAF_SPAN("test_obs.disabled");
  }
  set_enabled(true);
  // The call count stays deterministic; no clock was read.
  EXPECT_EQ(site.count(), 1u);
  EXPECT_EQ(site.total_seconds(), 0.0);
}

// --- scrape formats ---------------------------------------------------------

TEST(ObsRegistry, HandlesAreIdempotentAndStable) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  MetricsRegistry& reg = MetricsRegistry::global();
  Counter& a = reg.counter("test_obs_idempotent_total");
  Counter& b = reg.counter("test_obs_idempotent_total");
  EXPECT_EQ(&a, &b);
  Counter& la = reg.counter("test_obs_labeled_total", label("k", "v"));
  Counter& lb = reg.counter("test_obs_labeled_total", label("k", "w"));
  EXPECT_NE(&la, &lb);  // distinct label sets are distinct series
}

TEST(ObsRegistry, PrometheusScrapeContainsRegisteredSeries) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("test_obs_scrape_total", label("family", "GBDT")).inc(3);
  reg.gauge("test_obs_scrape_gauge").set(2.5);
  const std::string text = reg.scrape();
  EXPECT_NE(text.find("# TYPE test_obs_scrape_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_scrape_total{family=\"GBDT\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_obs_scrape_gauge gauge"),
            std::string::npos);
  // Scrape output ends with a newline (Prometheus text format).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(ObsRegistry, JsonScrapeMentionsMetricsAndSpans) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("test_obs_json_total").inc();
  const std::string json = reg.scrape_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"test_obs_json_total\""), std::string::npos);
}

TEST(ObsRegistry, JsonScrapeEscapesLabelsAndNames) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  MetricsRegistry& reg = MetricsRegistry::global();
  // label() escapes its value for the Prometheus text form (`"`, `\`,
  // and line-feed); scrape_json() must then JSON-escape whatever ends
  // up in the label body, plus control characters like tab that the
  // text form passes through raw.
  reg.counter("test_obs_escape_total", label("kpi", "D\"Vol")).inc();
  reg.counter("test_obs_escape_total", label("kpi", "a\\b")).inc();
  reg.counter("test_obs_escape_total", label("raw", "line\nbreak\ttab")).inc();
  const std::string json = reg.scrape_json();

  // label() turned D"Vol into D\"Vol; JSON re-escapes both characters.
  EXPECT_NE(json.find("kpi=\\\"D\\\\\\\"Vol\\\""), std::string::npos);
  // The backslash from label() doubles, then doubles again in JSON.
  EXPECT_NE(json.find("a\\\\\\\\b"), std::string::npos);
  // Control characters come out as escape sequences, never raw: the
  // line-feed became a literal backslash-n in the text form, and the
  // raw tab is JSON-escaped by scrape_json().
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_EQ(json.find('\n', json.find("raw=")), std::string::npos);
  // The text form must also hold the sample on a single line.
  const std::string text = reg.scrape();
  const std::size_t raw_at = text.find("raw=");
  ASSERT_NE(raw_at, std::string::npos);
  const std::size_t eol = text.find('\n', raw_at);
  ASSERT_NE(eol, std::string::npos);
  EXPECT_NE(text.find("line\\nbreak", raw_at), std::string::npos);
  EXPECT_LT(text.find("line\\nbreak", raw_at), eol);

  // Non-ASCII KPI names (UTF-8) pass through byte-for-byte: JSON strings
  // are UTF-8, so no \uXXXX mangling of multi-byte sequences.
  reg.counter("test_obs_escape_total", label("kpi", "трафик-日量")).inc();
  const std::string json2 = reg.scrape_json();
  EXPECT_NE(json2.find("трафик-日量"), std::string::npos);

  // The escaped series must still parse as structurally sound JSON:
  // every quote inside a string value is preceded by a backslash.  Walk
  // the document with a tiny state machine and require balanced quotes.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json2.size(); ++i) {
    const char c = json2[i];
    if (in_string) {
      if (c == '\\') ++i;  // skip the escaped character
      else if (c == '"') in_string = false;
      else EXPECT_NE(c, '\n') << "raw newline inside JSON string";
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

// --- Prometheus text-format compliance audit ---------------------------------

// Walks the full scrape and enforces the exposition-format rules a real
// Prometheus server cares about, so a formatting regression in any series
// (including ones registered by other tests in this binary) fails here
// rather than in a dashboard.
TEST(ObsRegistry, PrometheusScrapeCompliesWithTheTextFormat) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("test_obs_audit_total").inc(2);
  reg.gauge("test_obs_audit_gauge").set(1.5);
  Histogram& h = reg.histogram("test_obs_audit_seconds", latency_buckets());
  h.observe(0.0007);
  h.observe(0.3);
  h.observe(99.0);  // overflow: only the +Inf bucket catches it
  reg.latency("test_obs_audit_latency_seconds").observe(0.125);

  const std::string text = reg.scrape();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  // A bucket run is one (histogram name, label set) series; the `le`
  // label itself is stripped so the run's key matches its _count line.
  const auto series_key = [](const std::string& name,
                             const std::string& labels) {
    std::string rest = labels;
    const std::size_t le = rest.find("le=\"");
    if (le != std::string::npos) {
      std::size_t end = rest.find('"', le + 4);
      end = rest.find('"', end + 1);  // closing quote of the value
      end = end == std::string::npos ? rest.size() : end + 1;
      std::size_t begin = le;
      if (begin > 0 && rest[begin - 1] == ',') --begin;       // mid/tail le
      else if (end < rest.size() && rest[end] == ',') ++end;  // leading le
      rest.erase(begin, end - begin);
    }
    return name + "|" + rest;
  };

  std::istringstream lines(text);
  std::string line;
  std::string bucket_key;  // (histogram, labels) run being walked
  std::string bucket_family;
  std::uint64_t prev_cumulative = 0;
  std::uint64_t inf_value = 0;
  bool saw_inf = false;
  std::vector<std::string> audited_histograms;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in scrape";
    if (line[0] == '#') {
      // Only `# TYPE <name> <kind>` comments, with a known kind.
      std::istringstream c(line);
      std::string hash, kw, name, kind;
      c >> hash >> kw >> name >> kind;
      EXPECT_EQ(kw, "TYPE") << line;
      EXPECT_TRUE(kind == "counter" || kind == "gauge" ||
                  kind == "histogram" || kind == "summary")
          << line;
      continue;
    }
    // Sample lines: name{labels} value — name charset, balanced braces,
    // a parseable numeric value.
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string series = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    std::size_t used = 0;
    EXPECT_NO_THROW((void)std::stod(value, &used)) << line;
    EXPECT_EQ(used, value.size()) << line;
    const std::size_t brace = series.find('{');
    const std::string name =
        brace == std::string::npos ? series : series.substr(0, brace);
    for (char ch : name)
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
                  ch == ':')
          << line;
    if (brace != std::string::npos) EXPECT_EQ(series.back(), '}') << line;

    // Histogram bucket discipline: cumulative counts, closing +Inf.
    const std::string labels =
        brace == std::string::npos
            ? ""
            : series.substr(brace + 1, series.size() - brace - 2);
    const bool is_bucket = name.size() > 7 &&
                           name.compare(name.size() - 7, 7, "_bucket") == 0;
    if (is_bucket) {
      EXPECT_NE(labels.find("le=\""), std::string::npos) << line;
      const std::string family = name.substr(0, name.size() - 7);
      const std::string key = series_key(family, labels);
      if (key != bucket_key) {
        bucket_key = key;
        bucket_family = family;
        prev_cumulative = 0;
        saw_inf = false;
      }
      const std::uint64_t v = std::stoull(value);
      EXPECT_GE(v, prev_cumulative) << "non-cumulative bucket: " << line;
      prev_cumulative = v;
      if (labels.find("le=\"+Inf\"") != std::string::npos) {
        saw_inf = true;
        inf_value = v;
      }
    } else if (!bucket_key.empty() && name == bucket_family + "_count" &&
               series_key(bucket_family, labels) == bucket_key) {
      // _count follows the buckets and equals the +Inf bucket.
      EXPECT_TRUE(saw_inf) << "no le=\"+Inf\" bucket for " << bucket_key;
      EXPECT_EQ(std::stoull(value), inf_value) << line;
      audited_histograms.push_back(bucket_family);
      bucket_key.clear();
      bucket_family.clear();
    }
  }
  // The audit actually exercised the histogram path.
  EXPECT_NE(std::find(audited_histograms.begin(), audited_histograms.end(),
                      "test_obs_audit_seconds"),
            audited_histograms.end());
}

// --- event log --------------------------------------------------------------

Event sample_event() {
  return {EventKind::kDrift, 420,  3,
          "D_vol",           "GBDT", "LEAF",
          "detector=KSWIN,p=0.001", 0.25};
}

TEST(ObsEvents, JsonlShapeAndTimingMask) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  EventLog log;
  log.emit(sample_event());
  ASSERT_EQ(log.size(), 1u);
  const std::string with = log.to_jsonl(true);
  const std::string without = log.to_jsonl(false);
  EXPECT_NE(with.find("\"event\": \"drift\""), std::string::npos);
  EXPECT_NE(with.find("\"day\": 420"), std::string::npos);
  EXPECT_NE(with.find("\"shard\": 3"), std::string::npos);
  EXPECT_NE(with.find("\"elapsed_seconds\""), std::string::npos);
  // The masked form drops the only wall-clock key.
  EXPECT_EQ(without.find("\"elapsed_seconds\""), std::string::npos);
  EXPECT_EQ(with.back(), '\n');
}

TEST(ObsEvents, SaveLoadRoundTripsExactly) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  EventLog log;
  log.emit(sample_event());
  Event e2 = sample_event();
  e2.kind = EventKind::kRetrainRejected;
  e2.day = 421;
  e2.detail = "contrast=0.01,groups=2";
  log.emit(e2);

  io::Serializer out;
  log.save(out);
  io::Deserializer in(out.bytes());
  EventLog restored;
  restored.load(in);
  EXPECT_EQ(restored.events(), log.events());
  EXPECT_EQ(restored.to_jsonl(true), log.to_jsonl(true));
}

TEST(ObsEvents, MergeIsStableByDayThenShard) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  EventLog shard0, shard1;
  Event a = sample_event();
  a.shard = 0;
  a.day = 100;
  Event b = sample_event();
  b.shard = 0;
  b.day = 100;
  b.kind = EventKind::kRetrain;  // same day: insertion order must survive
  Event c = sample_event();
  c.shard = 1;
  c.day = 50;
  shard0.emit(a);
  shard0.emit(b);
  shard1.emit(c);
  const std::vector<Event> merged = EventLog::merge({&shard0, &shard1});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].day, 50);
  EXPECT_EQ(merged[1].kind, EventKind::kDrift);
  EXPECT_EQ(merged[2].kind, EventKind::kRetrain);
}

TEST(ObsEvents, WriteJsonlRoundTripsThroughDisk) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  const std::string dir = ::testing::TempDir() + "leaf_obs_jsonl";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/events.jsonl";
  EventLog log;
  log.emit(sample_event());
  const std::uint64_t bytes = log.write_jsonl(path, /*with_timing=*/false);
  EXPECT_GT(bytes, 0u);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), log.to_jsonl(false));
  std::filesystem::remove_all(dir);
}

TEST(ObsEvents, WriteJsonlToUnwritablePathThrowsAndLeavesNoLitter) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  const std::string dir = ::testing::TempDir() + "leaf_obs_jsonl_missing";
  std::filesystem::remove_all(dir);  // the parent directory does not exist
  const std::string path = dir + "/events.jsonl";
  EventLog log;
  log.emit(sample_event());
  EXPECT_THROW(log.write_jsonl(path), io::SnapshotError);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(ObsEvents, WriteJsonlMidLineFaultThrowsAndCleansUpTheTemporary) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  const std::string dir = ::testing::TempDir() + "leaf_obs_jsonl_fault";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/events.jsonl";
  EventLog log;
  log.emit(sample_event());
  log.emit(sample_event());
  {
    // Fault the write mid-line: a partial event log that parses as a
    // shorter run is worse than no file, so the writer must throw and
    // leave neither `path` nor `.tmp` litter behind.
    io::ScopedWriteFault fault(/*after_bytes=*/10);
    EXPECT_THROW(log.write_jsonl(path), io::SnapshotError);
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  // With the fault gone the same call succeeds — the failure was the
  // injected I/O error, not state corruption.
  EXPECT_GT(log.write_jsonl(path), 0u);
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ObsEvents, WriteJsonlRotatedSplitsOnLineBoundariesNewestLast) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  const std::string dir = ::testing::TempDir() + "leaf_obs_rotate";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/events.jsonl";
  EventLog log;
  for (int i = 0; i < 40; ++i) {
    Event e = sample_event();
    e.day = i;  // distinguishable lines, oldest day first
    log.emit(e);
  }
  const std::string full = log.to_jsonl(false);
  const std::uint64_t line_bytes = full.size() / 40;

  // Cap at ~10 lines per chunk: 3 chunks survive, the oldest ~10 drop.
  const std::uint64_t cap = line_bytes * 10 + line_bytes / 2;
  EventLog::write_jsonl_rotated(path, log.events(), /*with_timing=*/false,
                                cap);
  ASSERT_TRUE(std::filesystem::exists(path));
  ASSERT_TRUE(std::filesystem::exists(path + ".1"));
  ASSERT_TRUE(std::filesystem::exists(path + ".2"));
  const std::string tail = slurp(path);
  const std::string mid = slurp(path + ".1");
  const std::string old = slurp(path + ".2");
  // Whole lines only, each chunk within the cap...
  for (const std::string& chunk : {tail, mid, old}) {
    EXPECT_LE(chunk.size(), cap);
    EXPECT_EQ(chunk.back(), '\n');
  }
  // ...chronological concatenation (.2 then .1 then path) is a suffix of
  // the full rendering, and the newest line is in `path`.
  const std::string joined = old + mid + tail;
  ASSERT_LE(joined.size(), full.size());
  EXPECT_EQ(joined, full.substr(full.size() - joined.size()));
  EXPECT_NE(tail.find("\"day\": 39"), std::string::npos);
  EXPECT_LT(joined.size(), full.size());  // oldest lines were dropped

  // A later, smaller write must remove the now-stale rotated chunks.
  EventLog::write_jsonl_rotated(path, {sample_event()},
                                /*with_timing=*/false, 0);
  EXPECT_FALSE(std::filesystem::exists(path + ".1"));
  EXPECT_FALSE(std::filesystem::exists(path + ".2"));
  EXPECT_EQ(slurp(path), EventLog::to_jsonl({sample_event()}, false));
  std::filesystem::remove_all(dir);
}

TEST(ObsEvents, WriteJsonlRotatedOversizedLineStillKept) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  const std::string dir = ::testing::TempDir() + "leaf_obs_rotate_big";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/events.jsonl";
  Event big = sample_event();
  big.detail = std::string(512, 'x');  // one line far beyond the cap
  EventLog::write_jsonl_rotated(path, {big}, /*with_timing=*/false, 64);
  // Capping must never silently drop the newest tail.
  EXPECT_NE(slurp(path).find(big.detail), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(ObsEvents, WriteJsonlRotatedFaultLeavesNoTmpLitter) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  const std::string dir = ::testing::TempDir() + "leaf_obs_rotate_fault";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/events.jsonl";
  std::vector<Event> events;
  for (int i = 0; i < 20; ++i) events.push_back(sample_event());
  const std::string full = EventLog::to_jsonl(events, false);
  {
    io::ScopedWriteFault fault(/*after_bytes=*/10);
    EXPECT_THROW(EventLog::write_jsonl_rotated(path, events, false,
                                               full.size() / 3),
                 io::SnapshotError);
  }
  // The faulted chunk's temporary was cleaned up, and no half-written
  // chunk was renamed into place under any of the rotated names.
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    EXPECT_EQ(entry.path().string().find(".tmp"), std::string::npos)
        << "tmp litter: " << entry.path();
  EXPECT_FALSE(std::filesystem::exists(path));
  // With the fault gone the same rotation succeeds.
  EXPECT_GT(EventLog::write_jsonl_rotated(path, events, false,
                                          full.size() / 3),
            0u);
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

TEST(ObsEvents, EmitIsNoOpWhenRuntimeDisabled) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  EventLog log;
  set_enabled(false);
  log.emit(sample_event());
  set_enabled(true);
  EXPECT_TRUE(log.empty());
}

// --- logger -----------------------------------------------------------------

TEST(ObsLog, ParseLogLevel) {
  LogLevel lv = LogLevel::kInfo;
  EXPECT_TRUE(parse_log_level("error", lv));
  EXPECT_EQ(lv, LogLevel::kError);
  EXPECT_TRUE(parse_log_level("WARN", lv));
  EXPECT_EQ(lv, LogLevel::kWarn);
  EXPECT_TRUE(parse_log_level("Debug", lv));
  EXPECT_EQ(lv, LogLevel::kDebug);
  EXPECT_FALSE(parse_log_level("loud", lv));
  EXPECT_EQ(lv, LogLevel::kDebug);  // untouched on failure
  EXPECT_FALSE(parse_log_level(nullptr, lv));
}

TEST(ObsLog, ThresholdGatesLevels) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  set_log_level(prev);
}

// --- determinism: run_scheme event stream vs LEAF_THREADS -------------------

TEST(ObsDeterminism, RunSchemeEventsIdenticalAcrossThreadCounts) {
  if (!kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  Scale scale = Scale::for_level(Scale::Level::kSmall);
  scale.fixed_enbs = 6;
  scale.num_kpis = 16;
  scale.gbdt_trees = 15;
  scale.eval_stride_days = 4;
  const data::CellularDataset ds = data::generate_fixed_dataset(scale, 42);
  const data::Featurizer featurizer(ds, data::TargetKpi::kDVol);

  const auto run_with_threads = [&](int threads) {
    par::set_threads(threads);
    EventLog log;
    core::EvalConfig cfg = core::make_eval_config(scale);
    cfg.events = &log;
    cfg.obs_shard = 0;
    const auto model =
        models::make_model(models::ModelFamily::kGbdt, scale, 1);
    core::TriggeredScheme scheme;
    core::run_scheme(featurizer, *model, scheme, cfg);
    return log.to_jsonl(/*with_timing=*/false);
  };

  const std::string jsonl_t1 = run_with_threads(1);
  const std::string jsonl_t4 = run_with_threads(4);
  par::set_threads(0);
  // The masked event stream is a pure function of the logical execution.
  EXPECT_FALSE(jsonl_t1.empty());
  EXPECT_EQ(jsonl_t1, jsonl_t4);
}

}  // namespace
}  // namespace leaf::obs
