// Unit tests for the histogram decision tree (models/tree.hpp).
#include "models/tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.hpp"

namespace leaf::models {
namespace {

Matrix step_data(std::size_t n) {
  // x in [0,1); y = 1 for x >= 0.5 else 0.
  Matrix x(n, 1);
  for (std::size_t i = 0; i < n; ++i)
    x(i, 0) = static_cast<double>(i) / static_cast<double>(n);
  return x;
}

std::vector<double> step_targets(const Matrix& x) {
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) y[i] = x(i, 0) >= 0.5 ? 1.0 : 0.0;
  return y;
}

TEST(BinnedData, BinCodesRespectOrdering) {
  Matrix x(100, 1);
  for (std::size_t i = 0; i < 100; ++i) x(i, 0) = static_cast<double>(i);
  const BinnedData bd(x, 16);
  EXPECT_EQ(bd.rows(), 100u);
  EXPECT_EQ(bd.cols(), 1u);
  EXPECT_GE(bd.num_bins(0), 8);
  for (std::size_t i = 1; i < 100; ++i)
    EXPECT_LE(bd.bin(i - 1, 0), bd.bin(i, 0));
}

TEST(BinnedData, ConstantColumnSingleBin) {
  Matrix x(50, 1, 3.0);
  const BinnedData bd(x, 16);
  EXPECT_EQ(bd.num_bins(0), 1);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(bd.bin(i, 0), 0);
}

TEST(BinnedData, ThresholdSeparatesBins) {
  Matrix x(100, 1);
  for (std::size_t i = 0; i < 100; ++i) x(i, 0) = static_cast<double>(i);
  const BinnedData bd(x, 8);
  for (int b = 0; b + 1 < bd.num_bins(0); ++b) {
    const double thr = bd.threshold(0, b);
    for (std::size_t i = 0; i < 100; ++i) {
      if (bd.bin(i, 0) <= b) {
        EXPECT_LE(x(i, 0), thr);
      } else {
        EXPECT_GT(x(i, 0), thr);
      }
    }
  }
}

TEST(DecisionTree, FitsConstantTarget) {
  Matrix x = step_data(64);
  std::vector<double> y(64, 3.5);
  const BinnedData bd(x, 32);
  DecisionTree tree;
  Rng rng(1);
  tree.fit(bd, y, {}, {}, TreeConfig{}, rng);
  ASSERT_TRUE(tree.trained());
  EXPECT_DOUBLE_EQ(tree.predict_one(x.row(10)), 3.5);
  // A constant target admits no useful split.
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(DecisionTree, LearnsStepFunctionExactly) {
  Matrix x = step_data(128);
  const std::vector<double> y = step_targets(x);
  const BinnedData bd(x, 64);
  DecisionTree tree;
  Rng rng(1);
  tree.fit(bd, y, {}, {}, TreeConfig{}, rng);
  for (std::size_t i = 0; i < x.rows(); ++i)
    EXPECT_DOUBLE_EQ(tree.predict_one(x.row(i)), y[i]) << "row " << i;
}

TEST(DecisionTree, RespectsMaxDepth) {
  Rng data_rng(5);
  Matrix x(256, 4);
  std::vector<double> y(256);
  for (std::size_t i = 0; i < 256; ++i) {
    for (std::size_t c = 0; c < 4; ++c) x(i, c) = data_rng.normal();
    y[i] = data_rng.normal();  // pure noise -> tree wants to overfit
  }
  const BinnedData bd(x, 32);
  TreeConfig cfg;
  cfg.max_depth = 3;
  cfg.min_samples_leaf = 1;
  DecisionTree tree;
  Rng rng(1);
  tree.fit(bd, y, {}, {}, cfg, rng);
  EXPECT_LE(tree.depth(), 4);  // root at depth 1
}

TEST(DecisionTree, RespectsMinSamplesLeaf) {
  Matrix x = step_data(64);
  const std::vector<double> y = step_targets(x);
  const BinnedData bd(x, 64);
  TreeConfig cfg;
  cfg.min_samples_leaf = 64;  // can never split
  DecisionTree tree;
  Rng rng(1);
  tree.fit(bd, y, {}, {}, cfg, rng);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(DecisionTree, SampleWeightsShiftLeafValues) {
  Matrix x(4, 1);
  x(0, 0) = x(1, 0) = 0.0;
  x(2, 0) = x(3, 0) = 1.0;
  const std::vector<double> y = {0.0, 10.0, 0.0, 10.0};
  const BinnedData bd(x, 4);
  TreeConfig cfg;
  cfg.max_depth = 0;  // root only: leaf value = weighted mean
  DecisionTree tree;
  Rng rng(1);
  const std::vector<double> w = {3.0, 1.0, 3.0, 1.0};
  tree.fit(bd, y, w, {}, cfg, rng);
  EXPECT_NEAR(tree.predict_one(x.row(0)), 2.5, 1e-12);
}

TEST(DecisionTree, RowSubsetRestrictsTraining) {
  Matrix x = step_data(100);
  std::vector<double> y = step_targets(x);
  // Poison the rows we exclude.
  for (std::size_t i = 50; i < 100; ++i) y[i] = -100.0;
  const BinnedData bd(x, 64);
  std::vector<std::size_t> rows(50);
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  DecisionTree tree;
  Rng rng(1);
  tree.fit(bd, y, {}, rows, TreeConfig{}, rng);
  // Trained only on x < 0.5 where y == 0.
  EXPECT_NEAR(tree.predict_one(x.row(10)), 0.0, 1e-9);
}

TEST(DecisionTree, ExtraTreesModeStillReducesError) {
  Matrix x = step_data(256);
  const std::vector<double> y = step_targets(x);
  const BinnedData bd(x, 64);
  TreeConfig cfg;
  cfg.random_thresholds = true;
  DecisionTree tree;
  Rng rng(3);
  tree.fit(bd, y, {}, {}, cfg, rng);
  double sse = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double d = tree.predict_one(x.row(i)) - y[i];
    sse += d * d;
  }
  // Variance of y is 0.25 per sample; the randomized tree should capture
  // most of it.
  EXPECT_LT(sse / static_cast<double>(x.rows()), 0.05);
}

TEST(DecisionTree, DeterministicGivenSameRng) {
  Matrix x = step_data(128);
  std::vector<double> y = step_targets(x);
  const BinnedData bd(x, 64);
  TreeConfig cfg;
  cfg.features_per_split = 1;
  cfg.random_thresholds = true;
  DecisionTree t1, t2;
  Rng r1(9), r2(9);
  t1.fit(bd, y, {}, {}, cfg, r1);
  t2.fit(bd, y, {}, {}, cfg, r2);
  EXPECT_EQ(t1.node_count(), t2.node_count());
  for (std::size_t i = 0; i < x.rows(); ++i)
    EXPECT_DOUBLE_EQ(t1.predict_one(x.row(i)), t2.predict_one(x.row(i)));
}

TEST(DecisionTree, MultiFeatureInteraction) {
  // y = XOR-ish: needs two levels of splits.
  Rng data_rng(11);
  Matrix x(512, 2);
  std::vector<double> y(512);
  for (std::size_t i = 0; i < 512; ++i) {
    x(i, 0) = data_rng.uniform();
    x(i, 1) = data_rng.uniform();
    y[i] = (x(i, 0) >= 0.5) != (x(i, 1) >= 0.5) ? 1.0 : 0.0;
  }
  const BinnedData bd(x, 64);
  DecisionTree tree;
  Rng rng(1);
  tree.fit(bd, y, {}, {}, TreeConfig{}, rng);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < 512; ++i)
    if (std::abs(tree.predict_one(x.row(i)) - y[i]) < 0.3) ++correct;
  EXPECT_GT(correct, 480u);
}

// --- BinEdgeCache occupancy gate --------------------------------------------

Matrix uniform_column(std::size_t n, Rng& rng, double lo = 0.0,
                      double hi = 1.0) {
  Matrix x(n, 1);
  for (std::size_t i = 0; i < n; ++i) x(i, 0) = rng.uniform(lo, hi);
  return x;
}

TEST(BinEdgeCache, ReusesEdgesWhenDistributionIsStable) {
  Rng rng(101);
  BinEdgeCache cache;
  const Matrix x1 = uniform_column(400, rng);
  const BinnedData first(x1, 16, &cache);
  EXPECT_EQ(cache.rebuilt(), 1u);
  EXPECT_EQ(cache.reused(), 0u);

  // A fresh draw from the same distribution, clamped inside the cached
  // range, keeps occupancy balanced: the cache skips the re-derivation.
  Matrix x2 = uniform_column(400, rng);
  double lo = x1(0, 0), hi = lo;
  for (std::size_t i = 0; i < x1.rows(); ++i) {
    lo = std::min(lo, x1(i, 0));
    hi = std::max(hi, x1(i, 0));
  }
  for (std::size_t i = 0; i < x2.rows(); ++i)
    x2(i, 0) = std::min(std::max(x2(i, 0), lo), hi);
  const BinnedData second(x2, 16, &cache);
  EXPECT_EQ(cache.reused(), 1u);
  EXPECT_EQ(cache.rebuilt(), 1u);
}

TEST(BinEdgeCache, OccupancyShiftWithinRangeForcesRebuild) {
  Rng rng(202);
  BinEdgeCache cache;
  const Matrix x1 = uniform_column(400, rng);
  const BinnedData first(x1, 16, &cache);
  ASSERT_EQ(cache.rebuilt(), 1u);

  // Post-drift: nearly all mass collapses into a narrow band while the
  // overall [lo, hi] range is unchanged, so the range check alone would
  // happily reuse stale edges.  The occupancy gate must notice that the
  // old quantiles are now badly imbalanced and rebuild.
  double lo = x1(0, 0), hi = lo;
  for (std::size_t i = 0; i < x1.rows(); ++i) {
    lo = std::min(lo, x1(i, 0));
    hi = std::max(hi, x1(i, 0));
  }
  Matrix x2(400, 1);
  x2(0, 0) = lo;
  x2(1, 0) = hi;  // pin the range
  for (std::size_t i = 2; i < 400; ++i) x2(i, 0) = rng.uniform(0.48, 0.52);
  const BinnedData second(x2, 16, &cache);
  EXPECT_EQ(cache.reused(), 0u);
  EXPECT_EQ(cache.rebuilt(), 2u);

  // The rebuild re-anchored the imbalance baseline: binning the drifted
  // distribution again now reuses.
  Matrix x3(400, 1);
  x3(0, 0) = lo;
  x3(1, 0) = hi;
  for (std::size_t i = 2; i < 400; ++i) x3(i, 0) = rng.uniform(0.48, 0.52);
  const BinnedData third(x3, 16, &cache);
  EXPECT_EQ(cache.reused(), 1u);
  EXPECT_EQ(cache.rebuilt(), 2u);
}

TEST(BinEdgeCache, UpwardRangeGrowthExtendsInsteadOfRebuilding) {
  // Discrete (tied) values leave spare edge budget after deduplication —
  // the precondition for the extend path when the range later grows.
  BinEdgeCache cache;
  Matrix x1(400, 1);
  for (std::size_t i = 0; i < 400; ++i)
    x1(i, 0) = static_cast<double>(i % 8) / 8.0;
  const BinnedData first(x1, 16, &cache);
  ASSERT_EQ(cache.rebuilt(), 1u);

  // Sliding-window growth: same body, plus a modest new upper tail.
  Rng rng(303);
  Matrix x2(440, 1);
  for (std::size_t i = 0; i < 400; ++i) x2(i, 0) = x1(i, 0);
  for (std::size_t i = 400; i < 440; ++i) x2(i, 0) = rng.uniform(1.0, 1.2);
  const BinnedData second(x2, 16, &cache);
  EXPECT_EQ(cache.extended(), 1u);
  EXPECT_EQ(cache.rebuilt(), 1u);
}

TEST(BinEdgeCache, ClearAndShapeChangeInvalidate) {
  Rng rng(404);
  BinEdgeCache cache;
  const Matrix x = uniform_column(200, rng);
  { const BinnedData b(x, 16, &cache); }
  cache.clear();
  { const BinnedData b(x, 16, &cache); }
  EXPECT_EQ(cache.rebuilt(), 2u);
  EXPECT_EQ(cache.reused(), 0u);

  // Different max_bins resets the cache rather than mixing edge sets.
  { const BinnedData b(x, 8, &cache); }
  EXPECT_EQ(cache.rebuilt(), 3u);
}

}  // namespace
}  // namespace leaf::models
