// Tests for the serving-plane observability layer added on top of
// leaf::net — deterministic distributed tracing (trace/span id
// derivation, the Chrome trace-event sink, end-to-end span topology
// through the loopback server at multiple thread counts), the LNET v1/v2
// dual-version codec, exact latency percentiles, and the SLO burn-rate
// watchdog.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "data/generator.hpp"
#include "net/loopback.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "par/parallel.hpp"
#include "serve/runtime.hpp"

namespace leaf {
namespace {

// --- trace / span id derivation ---------------------------------------------

TEST(TraceId, DerivedIdsAreDeterministicNonZeroAndDistinct) {
  const obs::TraceId a = obs::derive_trace_id(1, 7);
  const obs::TraceId b = obs::derive_trace_id(1, 7);
  EXPECT_EQ(a, b);  // pure function of (conn, request-id)
  EXPECT_FALSE(obs::trace_is_zero(a));
  EXPECT_NE(obs::derive_trace_id(1, 8), a);
  EXPECT_NE(obs::derive_trace_id(2, 7), a);
  EXPECT_EQ(obs::trace_hex(a).size(), 32u);
  EXPECT_EQ(obs::trace_hex(obs::TraceId{}), std::string(32, '0'));
}

TEST(TraceId, SpanIdsDependOnEveryInput) {
  const obs::TraceId t = obs::derive_trace_id(3, 4);
  const std::uint64_t base = obs::derive_span_id(t, "request", 0, 0);
  EXPECT_NE(base, 0u);  // zero is reserved for "no parent"
  EXPECT_EQ(obs::derive_span_id(t, "request", 0, 0), base);
  EXPECT_NE(obs::derive_span_id(t, "respond", 0, 0), base);
  EXPECT_NE(obs::derive_span_id(t, "request", base, 0), base);
  EXPECT_NE(obs::derive_span_id(t, "request", 0, 1), base);
  EXPECT_NE(obs::derive_span_id(obs::derive_trace_id(3, 5), "request", 0, 0),
            base);
}

TEST(TraceId, SamplingIsAPureFunctionOfTheId) {
  const std::string path = ::testing::TempDir() + "leaf_trace_sample.json";
  obs::Tracer tracer(path, 4);
  int kept = 0;
  for (std::uint64_t r = 0; r < 64; ++r) {
    const obs::TraceId id = obs::derive_trace_id(1, r);
    EXPECT_EQ(tracer.sampled(id), obs::trace_hash(id) % 4 == 0);
    if (tracer.sampled(id)) ++kept;
  }
  EXPECT_GT(kept, 0);  // the hash spreads: some kept...
  EXPECT_LT(kept, 64); // ...some dropped
  std::remove(path.c_str());
}

// --- the Chrome trace-event sink --------------------------------------------

TEST(Tracer, WritesALoadableChromeTraceArray) {
  const std::string path = ::testing::TempDir() + "leaf_trace_sink.json";
  {
    obs::Tracer tracer(path);
    ASSERT_TRUE(tracer.ok()) << tracer.error();
    obs::TraceSpan s;
    s.name = "request";
    s.trace = obs::derive_trace_id(1, 1);
    s.span_id = 42;
    s.parent_id = 0;
    s.args = "\"conn\": 1";
    tracer.write(s);
    s.name = "respond";
    s.span_id = 43;
    s.parent_id = 42;
    s.args.clear();
    tracer.write(s);
    tracer.close();
    EXPECT_EQ(tracer.spans_written(), 2u);
    EXPECT_TRUE(tracer.ok()) << tracer.error();
  }
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  // A JSON array with one complete object per span and the catapult keys.
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"name\": \"request\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("\"parent_span_id\": \"" + obs::span_hex(42) + "\""),
            std::string::npos);
  EXPECT_NE(text.find("\"conn\": 1"), std::string::npos);
  ASSERT_GE(text.size(), 2u);
  EXPECT_EQ(text.substr(text.size() - 2), "]\n");
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
  std::remove(path.c_str());
}

TEST(Tracer, EmptyTraceStillClosesToAValidArray) {
  const std::string path = ::testing::TempDir() + "leaf_trace_empty.json";
  obs::Tracer tracer(path);
  tracer.close();
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "[\n]\n");
  std::remove(path.c_str());
}

TEST(Tracer, UnopenableSinkFailsLoudly) {
  obs::Tracer tracer(::testing::TempDir() + "no-such-dir-xyzzy/trace.json");
  EXPECT_FALSE(tracer.ok());
  EXPECT_NE(tracer.error().find("cannot open"), std::string::npos);
  // Writes to a dead sink are ignored, never a crash.
  tracer.write(obs::TraceSpan{});
  EXPECT_EQ(tracer.spans_written(), 0u);
}

// --- LNET v1/v2 dual-version codec ------------------------------------------

TEST(TraceProtocol, V2FrameCarriesTraceContext) {
  net::Frame in{net::MsgType::kPredict, 99, {1, 2, 3}};
  in.trace = obs::derive_trace_id(5, 99);
  in.parent_span = 0xABCDULL;
  const std::vector<std::uint8_t> bytes = net::encode_frame(in);
  ASSERT_EQ(bytes.size(), net::kHeaderBytes + in.payload.size());

  net::FrameDecoder dec;
  dec.feed(bytes);
  const std::optional<net::Frame> out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->version, net::kProtocolVersion);
  EXPECT_EQ(out->trace, in.trace);
  EXPECT_EQ(out->parent_span, in.parent_span);
  EXPECT_EQ(*out, in);
}

TEST(TraceProtocol, V1FrameRoundTripsWithoutTracingBytes) {
  net::Frame in{net::MsgType::kPredict, 7, {9, 8}};
  in.version = net::kProtocolV1;
  const std::vector<std::uint8_t> bytes = net::encode_frame(in);
  ASSERT_EQ(bytes.size(), net::kHeaderBytesV1 + in.payload.size());

  net::FrameDecoder dec;
  dec.feed(bytes);
  const std::optional<net::Frame> out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->version, net::kProtocolV1);
  EXPECT_TRUE(obs::trace_is_zero(out->trace));
  EXPECT_EQ(out->parent_span, 0u);
  EXPECT_EQ(out->payload, in.payload);
}

TEST(TraceProtocol, MixedVersionStreamDecodes) {
  net::Frame v1{net::MsgType::kFleetStatus, 1, {}};
  v1.version = net::kProtocolV1;
  net::Frame v2{net::MsgType::kFleetStatus, 2, {}};
  v2.trace = obs::derive_trace_id(1, 2);
  std::vector<std::uint8_t> bytes = net::encode_frame(v1);
  const std::vector<std::uint8_t> more = net::encode_frame(v2);
  bytes.insert(bytes.end(), more.begin(), more.end());

  net::FrameDecoder dec;
  dec.feed(bytes);
  const auto a = dec.next();
  const auto b = dec.next();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->version, net::kProtocolV1);
  EXPECT_EQ(b->version, net::kProtocolVersion);
  EXPECT_EQ(b->trace, v2.trace);
}

TEST(TraceProtocol, UnknownVersionIsFatalFramingDamage) {
  std::vector<std::uint8_t> bytes =
      net::encode_frame({net::MsgType::kPredict, 1, {}});
  bytes[4] = 3;  // version field, little-endian low byte
  net::FrameDecoder dec;
  try {
    dec.feed(bytes);
    dec.next();
    FAIL() << "unknown version accepted";
  } catch (const net::ProtocolError& e) {
    EXPECT_TRUE(e.fatal());
  }
  EXPECT_TRUE(dec.poisoned());
}

// --- end-to-end tracing through the loopback server -------------------------

Matrix probe_rows(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (auto& v : m.flat()) v = rng.uniform();
  return m;
}

struct TraceNetFixture : ::testing::Test {
  Scale scale = Scale::for_level(Scale::Level::kSmall);
  data::CellularDataset ds = data::generate_fixed_dataset(scale, 42);

  std::unique_ptr<serve::FleetRuntime> ready_fleet(std::size_t n) {
    std::vector<serve::ShardSpec> specs;
    const data::TargetKpi kpis[] = {data::TargetKpi::kDVol,
                                    data::TargetKpi::kPU};
    for (std::size_t i = 0; i < n; ++i)
      specs.push_back(
          {kpis[i % 2], models::ModelFamily::kRidge, "Triggered", 0});
    auto fleet = std::make_unique<serve::FleetRuntime>(ds, scale, specs);
    fleet->run_steps(1);
    return fleet;
  }

  /// Drives a fixed request schedule against a traced loopback server and
  /// returns the trace file's text.
  std::string traced_run(const std::string& path, int threads) {
    par::set_threads(threads);
    auto fleet = ready_fleet(2);
    net::Loopback loop(*fleet);
    obs::Tracer tracer(path, /*sample_every=*/1);
    EXPECT_TRUE(tracer.ok()) << tracer.error();
    loop.core().set_tracer(&tracer);

    net::LoopbackConnection& conn = loop.connect();
    const std::uint32_t cols = [&] {
      conn.send(net::Frame{net::MsgType::kFleetStatus, 1, {}});
      const auto resp = conn.receive();
      return net::decode_body<net::StatusResponse>(*resp)
          .shards[0]
          .num_features;
    }();
    for (std::uint64_t r = 0; r < 4; ++r) {
      net::PredictRequest req;
      req.shard = static_cast<std::uint32_t>(r % 2);
      req.rows = probe_rows(1 + r % 2, cols, 7 + r);
      conn.send(net::make_frame(r % 2 == 0 ? net::MsgType::kPredict
                                           : net::MsgType::kBatchPredict,
                                2 + r, req));
    }
    loop.pump();
    conn.send(net::make_frame(net::MsgType::kScrapeMetrics, 100,
                              net::ScrapeRequest{false}));
    loop.core().set_tracer(nullptr);
    tracer.close();
    par::set_threads(0);

    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }
};

int count_occurrences(const std::string& text, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST_F(TraceNetFixture, SpanTopologyLinksDecodeToRespondPerRequest) {
  const std::string path = ::testing::TempDir() + "leaf_trace_e2e.json";
  const std::string text = traced_run(path, 1);

  // 6 requests: 1 status + 4 predicts + 1 scrape.
  EXPECT_EQ(count_occurrences(text, "\"name\": \"request\""), 6);
  EXPECT_EQ(count_occurrences(text, "\"name\": \"respond\""), 6);
  // Predicts and the scrape decode a body; status does not.
  EXPECT_EQ(count_occurrences(text, "\"name\": \"decode\""), 5);
  EXPECT_EQ(count_occurrences(text, "\"name\": \"admission\""), 4);
  // One batch per shard per pump; each traced request carries its shard's
  // batch + shard-predict spans.
  EXPECT_EQ(count_occurrences(text, "\"name\": \"batch\""), 4);
  EXPECT_EQ(count_occurrences(text, "\"name\": \"shard-predict\""), 4);

  // Every non-root span's parent is a span id that exists in its trace,
  // and every request span parents at the wire parent (zero here).
  const std::regex span_re("\\{[^\\n]*\"trace_id\": \"([0-9a-f]{32})\", "
                           "\"span_id\": \"([0-9a-f]{16})\", "
                           "\"parent_span_id\": \"([0-9a-f]{16})\"");
  std::set<std::string> ids;       // trace:span
  std::vector<std::pair<std::string, std::string>> edges;  // trace, parent
  for (std::sregex_iterator it(text.begin(), text.end(), span_re), end;
       it != end; ++it) {
    ids.insert((*it)[1].str() + ":" + (*it)[2].str());
    if ((*it)[3].str() != std::string(16, '0'))
      edges.emplace_back((*it)[1].str(), (*it)[3].str());
  }
  // 4 predicts x 6 spans + 1 status x 2 + 1 scrape x 3 = 29 spans, every
  // (trace, span id) pair unique.
  EXPECT_EQ(ids.size(), 29u);
  for (const auto& [trace, parent] : edges)
    EXPECT_TRUE(ids.count(trace + ":" + parent))
        << "dangling parent " << parent << " in trace " << trace;
}

TEST_F(TraceNetFixture, TraceFingerprintIdenticalAcrossThreadCounts) {
  const std::string p1 = ::testing::TempDir() + "leaf_trace_t1.json";
  const std::string p4 = ::testing::TempDir() + "leaf_trace_t4.json";
  const std::string t1 = traced_run(p1, 1);
  const std::string t4 = traced_run(p4, 4);
  // Only the Chrome "ts"/"dur" keys carry wall clock; with them stripped
  // the files are byte-identical: same spans, same ids, same order.
  const std::regex wallclock(", \"ts\": [0-9]+, \"dur\": [0-9]+");
  const std::string f1 = std::regex_replace(t1, wallclock, "");
  const std::string f4 = std::regex_replace(t4, wallclock, "");
  EXPECT_FALSE(f1.empty());
  EXPECT_EQ(f1, f4);
  std::remove(p1.c_str());
  std::remove(p4.c_str());
}

TEST_F(TraceNetFixture, V1ClientIsAnsweredInV1AgainstAV2Server) {
  auto fleet = ready_fleet(1);
  net::Loopback loop(*fleet);
  net::LoopbackConnection& conn = loop.connect();

  net::Frame status{net::MsgType::kFleetStatus, 1, {}};
  status.version = net::kProtocolV1;
  conn.send(status);
  const auto sresp = conn.receive();
  ASSERT_TRUE(sresp.has_value());
  EXPECT_EQ(sresp->version, net::kProtocolV1);
  const auto body = net::decode_body<net::StatusResponse>(*sresp);

  net::PredictRequest req;
  req.shard = 0;
  req.rows = probe_rows(1, body.shards[0].num_features, 11);
  net::Frame predict = net::make_frame(net::MsgType::kPredict, 2, req);
  predict.version = net::kProtocolV1;
  conn.send(predict);
  loop.pump();
  const auto presp = conn.receive();
  ASSERT_TRUE(presp.has_value());
  EXPECT_EQ(presp->version, net::kProtocolV1);
  EXPECT_TRUE(obs::trace_is_zero(presp->trace));
  EXPECT_EQ(presp->type, net::MsgType::kPredictOk);

  // The same predict through a v2 client must return the same values —
  // the protocol bump never changes results.
  net::LoopbackConnection& conn2 = loop.connect();
  conn2.send(net::make_frame(net::MsgType::kPredict, 2, req));
  loop.pump();
  const auto presp2 = conn2.receive();
  ASSERT_TRUE(presp2.has_value());
  EXPECT_EQ(presp2->version, net::kProtocolVersion);
  EXPECT_EQ(net::decode_body<net::PredictResponse>(*presp).values,
            net::decode_body<net::PredictResponse>(*presp2).values);
}

TEST_F(TraceNetFixture, ResponsesEchoTheRequestsTraceId) {
  auto fleet = ready_fleet(1);
  net::Loopback loop(*fleet);
  net::LoopbackConnection& conn = loop.connect();

  net::Frame status{net::MsgType::kFleetStatus, 9, {}};
  status.trace = obs::derive_trace_id(77, 9);
  conn.send(status);
  const auto resp = conn.receive();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->trace, status.trace);

  // A request without a trace id gets the derived one back.
  conn.send(net::Frame{net::MsgType::kFleetStatus, 10, {}});
  const auto resp2 = conn.receive();
  ASSERT_TRUE(resp2.has_value());
  EXPECT_EQ(resp2->trace, obs::derive_trace_id(conn.id(), 10));
}

// --- exact latency percentiles ----------------------------------------------

TEST(LatencyHistogram, QuantilesMatchExactSortedQuantilesWithinOnePercent) {
  obs::LatencyHistogram h;
  std::vector<double> samples;
  Rng rng(2024);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over ~6 decades: microseconds to seconds.
    const double s = std::pow(10.0, -6.0 + 6.0 * rng.uniform());
    samples.push_back(s);
    h.observe(s);
  }
  std::sort(samples.begin(), samples.end());
  for (const double p : {0.5, 0.9, 0.99, 0.999}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::min<double>(std::ceil(p * samples.size()), samples.size()) - 1);
    const double exact = samples[rank];
    EXPECT_NEAR(h.quantile(p), exact, exact * 0.01)
        << "p=" << p << " exact=" << exact;
  }
  EXPECT_EQ(h.count(), 20000u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(LatencyHistogram, BucketIndexingCoversTheFullTickRange) {
  // Every representative maps back into its own bucket, including the
  // extremes (1 ns granularity at the bottom, the top octave's last
  // bucket at the top).
  EXPECT_EQ(obs::LatencyHistogram::index_of(0), 0u);
  EXPECT_EQ(obs::LatencyHistogram::index_of(1), 1u);
  const std::size_t top =
      obs::LatencyHistogram::index_of(~std::uint64_t{0});
  EXPECT_LT(top, obs::LatencyHistogram::kBucketCount);
  EXPECT_EQ(obs::LatencyHistogram::index_of(
                obs::LatencyHistogram::representative_ns(top)),
            top);
  obs::LatencyHistogram h;
  h.record_ns(~std::uint64_t{0});  // must not write out of bounds
  EXPECT_EQ(h.count(), 1u);
}

TEST(LatencyHistogram, RegistryExposesQuantileLines) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.latency("test_trace_latency_seconds", obs::label("type", "x"))
      .observe(0.25);
  const std::string text = reg.scrape();
  EXPECT_NE(text.find("# TYPE test_trace_latency_seconds summary"),
            std::string::npos);
  EXPECT_NE(
      text.find("test_trace_latency_seconds{type=\"x\",quantile=\"0.99\"}"),
      std::string::npos);
  EXPECT_NE(text.find("test_trace_latency_seconds_count{type=\"x\"} 1"),
            std::string::npos);
}

// --- SLO burn-rate watchdog --------------------------------------------------

obs::SloSample quiet_sample() {
  obs::SloSample s;
  s.requests = 10;
  s.shards = 4;
  return s;
}

TEST(SloSpec, ParsesRoundTripsAndRejectsGarbage) {
  const obs::SloSpec spec = obs::SloSpec::parse(
      "window=8,deadline-miss=0.3,shed=0.5,warn=0.25,recover=3");
  EXPECT_EQ(spec.window, 8);
  EXPECT_DOUBLE_EQ(spec.deadline_miss, 0.3);
  EXPECT_DOUBLE_EQ(spec.shed, 0.5);
  EXPECT_DOUBLE_EQ(spec.warn_fraction, 0.25);
  EXPECT_EQ(spec.recover_ticks, 3);
  EXPECT_TRUE(spec.any());
  EXPECT_EQ(obs::SloSpec::parse(spec.to_string()).to_string(),
            spec.to_string());

  EXPECT_FALSE(obs::SloSpec::parse("").any());
  EXPECT_THROW(obs::SloSpec::parse("deadline-miss=2"), std::invalid_argument);
  EXPECT_THROW(obs::SloSpec::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW(obs::SloSpec::parse("window=0"), std::invalid_argument);
  EXPECT_THROW(obs::SloSpec::parse("window"), std::invalid_argument);
}

TEST(SloWatchdog, EscalatesImmediatelyAndRecoversWithHysteresis) {
  obs::SloSpec spec = obs::SloSpec::parse(
      "window=4,deadline-miss=0.5,warn=0.5,recover=2");
  obs::SloWatchdog dog(spec);
  EXPECT_EQ(dog.observe(quiet_sample()), obs::SloWatchdog::State::kOk);

  // Burn half the threshold: warning, immediately.
  obs::SloSample warm = quiet_sample();
  warm.deadline_misses = 3;  // window rate 3/20 = 0.15... below warn
  EXPECT_EQ(dog.observe(warm), obs::SloWatchdog::State::kOk);
  obs::SloSample storm = quiet_sample();
  storm.deadline_misses = 10;  // pushes the window rate past 0.25 (warn)
  EXPECT_EQ(dog.observe(storm), obs::SloWatchdog::State::kWarning);
  // Keep storming until the window rate crosses 0.5: critical.
  dog.observe(storm);
  EXPECT_EQ(dog.observe(storm), obs::SloWatchdog::State::kCritical);

  // One clean tick is not a recovery (recover=2)...
  obs::SloSample clean = quiet_sample();
  clean.requests = 100;  // dilutes the window fast
  dog.observe(clean);
  EXPECT_EQ(dog.state(), obs::SloWatchdog::State::kCritical);
  // ...the second consecutive one steps down to the computed level.
  EXPECT_EQ(dog.observe(clean), obs::SloWatchdog::State::kOk);

  // The transition history is in the event log: warning, critical, then
  // recovery (possibly via warning), each with the burning signal named.
  const auto& events = dog.events().events();
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events[0].kind, obs::EventKind::kSloBurnWarning);
  EXPECT_NE(events[0].detail.find("signal=deadline-miss"), std::string::npos);
  EXPECT_EQ(events[1].kind, obs::EventKind::kSloBurnCritical);
  EXPECT_EQ(events.back().kind, obs::EventKind::kSloRecovered);
}

TEST(SloWatchdog, QuarantineAndNrmseSignalsBurn) {
  obs::SloWatchdog dog(
      obs::SloSpec::parse("window=2,quarantine=0.4,nrmse-regression=0.5,"
                          "nrmse-baseline=1.0,recover=1"));
  obs::SloSample s = quiet_sample();
  s.quarantined = 2;  // 2/4 = 0.5 >= 0.4
  EXPECT_EQ(dog.observe(s), obs::SloWatchdog::State::kCritical);
  s.quarantined = 0;
  dog.observe(s);
  EXPECT_EQ(dog.observe(s), obs::SloWatchdog::State::kOk);

  s.nrmse = 1.6;  // 60% over the pinned baseline of 1.0
  EXPECT_EQ(dog.observe(s), obs::SloWatchdog::State::kCritical);
  EXPECT_GT(dog.burn().nrmse_regression, 0.5);
}

TEST(SloWatchdog, StateGaugeTracksTransitions) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::SloWatchdog dog(obs::SloSpec::parse("window=2,shed=0.1,recover=1"));
  obs::SloSample bad = quiet_sample();
  bad.sheds = 5;
  dog.observe(bad);
  EXPECT_EQ(reg.gauge("leaf_slo_state").value(), 2.0);
  dog.observe(quiet_sample());
  dog.observe(quiet_sample());
  EXPECT_EQ(reg.gauge("leaf_slo_state").value(), 0.0);
}

TEST(SloWatchdog, TelemetryDriftSignalEscalatesOnWindowMax) {
  obs::SloWatchdog dog(
      obs::SloSpec::parse("window=4,telemetry-drift=2,recover=1"));
  EXPECT_NE(dog.spec().to_string().find("telemetry-drift=2"),
            std::string::npos);

  obs::SloSample s = quiet_sample();
  s.telemetry_drift = 1;  // half the threshold: warning (warn=0.5 default)
  EXPECT_EQ(dog.observe(s), obs::SloWatchdog::State::kWarning);
  s.telemetry_drift = 2;  // two meta-drift rules fired: critical
  EXPECT_EQ(dog.observe(s), obs::SloWatchdog::State::kCritical);
  if (obs::kCompiledIn) {  // event emission compiles out with the registry
    EXPECT_NE(dog.events().events().back().detail.find(
                  "signal=telemetry-drift"),
              std::string::npos);
  }
  EXPECT_DOUBLE_EQ(dog.burn().telemetry_drift, 2.0);

  // The signal is the window *max*, so one calm tick does not clear it —
  // the storm has to scroll out of the window first.
  s.telemetry_drift = 0;
  dog.observe(s);
  EXPECT_EQ(dog.state(), obs::SloWatchdog::State::kCritical);
  for (int i = 0; i < 4; ++i) dog.observe(s);
  EXPECT_EQ(dog.state(), obs::SloWatchdog::State::kOk);
}

TEST(SloWatchdog, DisabledSpecNeverAlarms) {
  obs::SloWatchdog dog(obs::SloSpec{});
  obs::SloSample s = quiet_sample();
  s.deadline_misses = 10;
  s.sheds = 10;
  s.quarantined = 4;
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(dog.observe(s), obs::SloWatchdog::State::kOk);
  EXPECT_TRUE(dog.events().empty());
}

}  // namespace
}  // namespace leaf
