// Cross-module property tests: invariants that must hold for *any* valid
// input, swept with parameterized gtest.
#include <gtest/gtest.h>

#include <cmath>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "data/temporal.hpp"
#include "explain/lea.hpp"
#include "models/factory.hpp"

namespace leaf {
namespace {

// --- metric identities, swept over random prediction/truth pairs -----------

class MetricPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricPropertyTest, MetricIdentities) {
  Rng rng(GetParam());
  const std::size_t n = 50 + rng.index(200);
  std::vector<double> truth(n), pred(n);
  for (std::size_t i = 0; i < n; ++i) {
    truth[i] = rng.normal(10.0, 4.0);
    pred[i] = truth[i] + rng.normal(0.0, 2.0);
  }

  // RMSE is symmetric and non-negative; zero iff identical.
  EXPECT_DOUBLE_EQ(metrics::rmse(pred, truth), metrics::rmse(truth, pred));
  EXPECT_GE(metrics::rmse(pred, truth), 0.0);
  EXPECT_DOUBLE_EQ(metrics::rmse(truth, truth), 0.0);

  // RMSE >= MAE >= 0 (power-mean inequality).
  EXPECT_GE(metrics::rmse(pred, truth), metrics::mae(pred, truth) - 1e-12);

  // NRMSE scales inversely with the range.
  const double n1 = metrics::nrmse(pred, truth, 10.0);
  const double n2 = metrics::nrmse(pred, truth, 20.0);
  EXPECT_NEAR(n1, 2.0 * n2, 1e-12);

  // R^2 and explained variance agree for unbiased residuals up to the
  // bias term: EV >= R^2 always.
  EXPECT_GE(metrics::explained_variance(pred, truth),
            metrics::r2(pred, truth) - 1e-9);

  // Shifting both series leaves every distance metric unchanged.
  std::vector<double> truth_s(n), pred_s(n);
  for (std::size_t i = 0; i < n; ++i) {
    truth_s[i] = truth[i] + 100.0;
    pred_s[i] = pred[i] + 100.0;
  }
  EXPECT_NEAR(metrics::rmse(pred_s, truth_s), metrics::rmse(pred, truth),
              1e-9);
  EXPECT_NEAR(metrics::mae(pred_s, truth_s), metrics::mae(pred, truth), 1e-9);
}

TEST_P(MetricPropertyTest, StatsIdentities) {
  Rng rng(GetParam() ^ 0xABCD);
  const std::size_t n = 30 + rng.index(300);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.lognormal(0.0, 0.7);

  // Quantiles are monotone in q and bounded by min/max.
  double prev = stats::quantile(xs, 0.0);
  EXPECT_DOUBLE_EQ(prev, stats::min(xs));
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double cur = stats::quantile(xs, q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(prev, stats::max(xs));

  // Pearson is scale/shift invariant and bounded.
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) ys[i] = 3.0 * xs[i] + rng.normal();
  const double r = stats::pearson(xs, ys);
  EXPECT_LE(std::abs(r), 1.0 + 1e-12);
  std::vector<double> ys2(n);
  for (std::size_t i = 0; i < n; ++i) ys2[i] = -5.0 * ys[i] + 7.0;
  EXPECT_NEAR(stats::pearson(xs, ys2), -r, 1e-9);

  // KS statistic of a sample against itself is 0; against anything it is
  // within [0, 1].
  EXPECT_DOUBLE_EQ(stats::ks_statistic(xs, xs), 0.0);
  const double d = stats::ks_statistic(xs, ys);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
  const double p = stats::ks_p_value(xs, ys);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST_P(MetricPropertyTest, LeaDecompositionIsConsistent) {
  Rng rng(GetParam() ^ 0x1234);
  const std::size_t n = 100 + rng.index(300);
  std::vector<double> truth(n), pred(n), fv(n);
  for (std::size_t i = 0; i < n; ++i) {
    truth[i] = rng.normal(5.0, 2.0);
    pred[i] = truth[i] + rng.normal(0.0, 1.0);
    fv[i] = rng.normal();
  }
  const auto edges = explain::lea_bin_edges(fv, 8);
  const auto lea = explain::compute_lea(pred, truth, fv, 0, 1.0, edges);

  // Counts partition the sample.
  std::size_t total = 0;
  for (std::size_t c : lea.count) total += c;
  EXPECT_EQ(total, n);

  // Sample-count-weighted per-bin MSE recomposes to the global MSE.
  double acc = 0.0;
  for (std::size_t b = 0; b < lea.num_bins(); ++b)
    acc += lea.error[b] * lea.error[b] * static_cast<double>(lea.count[b]);
  const double global = metrics::rmse(pred, truth);
  EXPECT_NEAR(std::sqrt(acc / static_cast<double>(n)), global, 1e-9);

  // Every bin error is non-negative and bounded by the max per-sample
  // error.
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    max_err = std::max(max_err, std::abs(pred[i] - truth[i]));
  for (double e : lea.error) {
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, max_err + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// --- temporal-process invariants over the whole study -----------------------

class TemporalSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(TemporalSweepTest, FactorsStayPhysical) {
  const int day = GetParam();
  for (double amp : {0.0, 0.1, 0.3}) {
    const double w = data::weekly_factor(day, amp);
    EXPECT_GT(w, 0.0);
    EXPECT_NEAR(w, 1.0, amp + 1e-9);
    const double s = data::seasonal_factor(day, amp);
    EXPECT_GT(s, 0.0);
    EXPECT_NEAR(s, 1.0, 1.4 * amp + 1e-9);
  }
  for (double depth : {0.0, 0.2, 0.5}) {
    const double c = data::covid_factor(day, depth);
    EXPECT_LE(c, 1.0 + 1e-12);
    EXPECT_GE(c, 1.0 - depth - 1e-12);
  }
  for (double sens : {0.2, 1.0, 1.6}) {
    const double m = data::mobility_level(day, sens);
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
  }
  EXPECT_GE(data::gradual_drift_factor(day, 0.5), 1.0);
  EXPECT_LE(data::gradual_drift_factor(day, 0.5), 1.5 + 1e-12);
  EXPECT_GT(data::growth_factor(day, 0.1), 0.999);
}

INSTANTIATE_TEST_SUITE_P(StudyDays, TemporalSweepTest,
                         ::testing::Values(0, 100, 365, 550, 730, 805, 900,
                                           1096, 1250, 1400, 1547));

// --- model-prediction sanity over feature perturbations --------------------

class PerturbationTest
    : public ::testing::TestWithParam<models::ModelFamily> {};

TEST_P(PerturbationTest, PredictionsAreFiniteOnPerturbedInputs) {
  Rng rng(9);
  Matrix x(150, 6);
  std::vector<double> y(150);
  for (std::size_t i = 0; i < 150; ++i) {
    for (std::size_t c = 0; c < 6; ++c) x(i, c) = rng.normal();
    y[i] = x(i, 0) - x(i, 1) + 0.1 * rng.normal();
  }
  const Scale scale = Scale::for_level(Scale::Level::kSmall);
  const auto model = models::make_model(GetParam(), scale, 1);
  model->fit(x, y);

  // Probe far outside the training distribution: predictions must stay
  // finite (trees clamp, linear extrapolates, LSTM saturates).
  for (double magnitude : {0.0, 1.0, 10.0, 1e3, 1e6}) {
    std::vector<double> probe(6, magnitude);
    const double p = model->predict_one(probe);
    EXPECT_TRUE(std::isfinite(p))
        << models::to_string(GetParam()) << " at " << magnitude;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, PerturbationTest,
    ::testing::Values(models::ModelFamily::kGbdt,
                      models::ModelFamily::kRandomForest,
                      models::ModelFamily::kExtraTrees,
                      models::ModelFamily::kKnn, models::ModelFamily::kLstm,
                      models::ModelFamily::kRidge),
    [](const ::testing::TestParamInfo<models::ModelFamily>& info) {
      return models::to_string(info.param);
    });

}  // namespace
}  // namespace leaf
