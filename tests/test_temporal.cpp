// Unit tests for the temporal drift processes (data/temporal.hpp).
#include "data/temporal.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/calendar.hpp"

namespace leaf::data {
namespace {

TEST(Temporal, SmoothstepEndpoints) {
  EXPECT_DOUBLE_EQ(smoothstep(0.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(smoothstep(1.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(smoothstep(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(smoothstep(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(smoothstep(5.0, 0.0, 1.0), 1.0);
}

TEST(Temporal, WeeklyFactorHasPeriodSeven) {
  for (int d = 0; d < 30; ++d)
    EXPECT_NEAR(weekly_factor(d, 0.2), weekly_factor(d + 7, 0.2), 1e-12);
}

TEST(Temporal, WeeklyFactorAmplitudeBounds) {
  for (int d = 0; d < 7; ++d) {
    const double f = weekly_factor(d, 0.25);
    EXPECT_GT(f, 1.0 - 0.25 * 1.01);
    EXPECT_LT(f, 1.0 + 0.25 * 1.01);
  }
}

TEST(Temporal, WeeklyFactorWeekendLowerThanMidweek) {
  // Business-driven load: Wednesday (dow 2) above Sunday (dow 6).
  const double wed = weekly_factor(2, 0.25);
  const double sun = weekly_factor(6, 0.25);
  EXPECT_GT(wed, sun);
}

TEST(Temporal, WeeklyFactorZeroAmpIsOne) {
  for (int d = 0; d < 7; ++d)
    EXPECT_DOUBLE_EQ(weekly_factor(d, 0.0), 1.0);
}

TEST(Temporal, SeasonalFactorHasAnnualPeriod) {
  EXPECT_NEAR(seasonal_factor(0, 0.1), seasonal_factor(365, 0.1), 0.02);
}

TEST(Temporal, GrowthFactorCompounds) {
  EXPECT_DOUBLE_EQ(growth_factor(0, 0.1), 1.0);
  EXPECT_NEAR(growth_factor(365, 0.1), std::exp(0.1 * 365.0 / 365.25), 1e-9);
  EXPECT_GT(growth_factor(730, 0.1), growth_factor(365, 0.1));
}

TEST(Temporal, CovidFactorOneBeforeLockdown) {
  EXPECT_DOUBLE_EQ(covid_factor(cal::covid_start() - 1, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(covid_factor(0, 0.3), 1.0);
}

TEST(Temporal, CovidFactorReachesFullDepthInPlateau) {
  const int mid_plateau = cal::day_index(cal::Date{2020, 5, 1});
  EXPECT_NEAR(covid_factor(mid_plateau, 0.3), 0.7, 1e-9);
}

TEST(Temporal, CovidFactorRecoversToOne) {
  EXPECT_NEAR(covid_factor(cal::covid_recovery_end(), 0.3), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(covid_factor(cal::covid_recovery_end() + 100, 0.3), 1.0);
}

TEST(Temporal, CovidFactorMonotoneRampDown) {
  const int start = cal::covid_start();
  for (int d = start; d < start + 14; ++d)
    EXPECT_GE(covid_factor(d, 0.3), covid_factor(d + 1, 0.3));
}

TEST(Temporal, MobilityBoundedAndSuppressedDuringLockdown) {
  const int mid = cal::day_index(cal::Date{2020, 4, 15});
  for (double sens : {0.5, 1.0, 1.6}) {
    const double m = mobility_level(mid, sens);
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
    EXPECT_LT(m, 1.0);  // suppressed
  }
  EXPECT_DOUBLE_EQ(mobility_level(0, 1.0), 1.0);
}

TEST(Temporal, GradualDriftRampsToPeak) {
  EXPECT_DOUBLE_EQ(gradual_drift_factor(cal::gradual_drift_start(), 0.4), 1.0);
  EXPECT_NEAR(gradual_drift_factor(cal::gradual_drift_peak(), 0.4), 1.4, 1e-9);
  // Holds after the peak.
  EXPECT_NEAR(gradual_drift_factor(cal::gradual_drift_peak() + 60, 0.4), 1.4,
              1e-9);
  // Strictly increasing in between.
  const int mid = (cal::gradual_drift_start() + cal::gradual_drift_peak()) / 2;
  EXPECT_GT(gradual_drift_factor(mid, 0.4), 1.0);
  EXPECT_LT(gradual_drift_factor(mid, 0.4), 1.4);
}

TEST(Temporal, PuLossWindowBounds) {
  EXPECT_FALSE(in_pu_loss_window(cal::pu_loss_start() - 1));
  EXPECT_TRUE(in_pu_loss_window(cal::pu_loss_start()));
  EXPECT_TRUE(in_pu_loss_window(cal::pu_loss_end()));
  EXPECT_FALSE(in_pu_loss_window(cal::pu_loss_end() + 1));
}

TEST(Temporal, SoftwareUpgradeDaysSortedWithinStudy) {
  const auto& days = software_upgrade_days();
  ASSERT_EQ(days.size(), 4u);
  for (std::size_t i = 1; i < days.size(); ++i)
    EXPECT_LT(days[i - 1], days[i]);
  EXPECT_GT(days.front(), 0);
  EXPECT_LT(days.back(), cal::study_length());
}

TEST(Temporal, UpgradeScaleStepsAtUpgradeDays) {
  const std::uint64_t salt = 12345;
  const auto& days = software_upgrade_days();
  // Before the first upgrade: exactly 1.
  EXPECT_DOUBLE_EQ(upgrade_scale(days.front() - 1, salt), 1.0);
  // Constant between upgrades, changes across them.
  const double after_first = upgrade_scale(days.front(), salt);
  EXPECT_NE(after_first, 1.0);
  EXPECT_DOUBLE_EQ(upgrade_scale(days[1] - 1, salt), after_first);
  EXPECT_NE(upgrade_scale(days[1], salt), after_first);
}

TEST(Temporal, UpgradeScaleBounded) {
  for (std::uint64_t salt = 0; salt < 200; ++salt) {
    const double s = upgrade_scale(cal::study_length() - 1, salt);
    EXPECT_GT(s, std::pow(0.85, 4.0) * 0.999);
    EXPECT_LT(s, std::pow(1.20, 4.0) * 1.001);
  }
}

TEST(Temporal, EpisodeMultiplierDeterministic) {
  for (int day = 0; day < 400; ++day) {
    EXPECT_DOUBLE_EQ(episode_multiplier(1, 3, day, 1, 0.2, 6.0),
                     episode_multiplier(1, 3, day, 1, 0.2, 6.0));
  }
}

TEST(Temporal, EpisodeMultiplierAtLeastOneAndBounded) {
  for (int day = 0; day < 1548; ++day) {
    const double m = episode_multiplier(7, 11, day, 2, 0.25, 15.0, 90, 21, 75);
    EXPECT_GE(m, 1.0);
    EXPECT_LE(m, 15.0);
  }
}

TEST(Temporal, EpisodesAreContiguousRuns) {
  // Episodes should appear as multi-day runs, not isolated spikes: count
  // transitions vs elevated days over many sites.
  int elevated = 0, transitions = 0;
  for (int enb = 0; enb < 30; ++enb) {
    bool prev = false;
    for (int day = 0; day < 1548; ++day) {
      const bool hi =
          episode_multiplier(7, enb, day, 2, 0.25, 15.0, 90, 21, 75) > 1.0;
      elevated += hi;
      transitions += (hi != prev);
      prev = hi;
    }
  }
  ASSERT_GT(elevated, 0);
  // Mean run length = elevated / (transitions/2) should be >= min_days/2.
  const double mean_run = 2.0 * elevated / std::max(1, transitions);
  EXPECT_GT(mean_run, 10.0);
}

TEST(Temporal, EpisodeFrequencyTracksProbability) {
  int elevated_days = 0;
  const int sites = 50, days = 1548;
  for (int enb = 0; enb < sites; ++enb)
    for (int day = 0; day < days; ++day)
      if (episode_multiplier(7, enb, day, 1, 0.2, 6.0) > 1.0) ++elevated_days;
  const double frac = static_cast<double>(elevated_days) / (sites * days);
  // prob 0.2 per 45-day slot, mean duration ~21 days -> ~9% of days.
  EXPECT_GT(frac, 0.03);
  EXPECT_LT(frac, 0.25);
}

TEST(Temporal, EpisodesDifferAcrossStreams) {
  // Stream tags decorrelate the schedules of PU / CDR / GDR episodes.
  int both = 0, either = 0;
  for (int day = 0; day < 1548; ++day) {
    const bool a = episode_multiplier(7, 3, day, 1, 0.2, 6.0) > 1.0;
    const bool b = episode_multiplier(7, 3, day, 3, 0.2, 6.0) > 1.0;
    both += (a && b);
    either += (a || b);
  }
  ASSERT_GT(either, 0);
  EXPECT_LT(static_cast<double>(both) / either, 0.6);
}

}  // namespace
}  // namespace leaf::data
