// leaf::simd — the fixed-lane determinism contract.
//
// The load-bearing property is that vector:: and scalar:: produce
// *bit-identical* results for every kernel, every size (tails included),
// and non-finite inputs: that is what makes -DLEAF_SIMD=ON/OFF builds and
// different ISAs interchangeable.  Golden tests pin the scalar reference
// to the documented 8-lane DAG so neither side can drift.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "simd/kernels.hpp"
#include "simd/simd.hpp"

namespace leaf {
namespace {

std::uint64_t bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

#define EXPECT_BITS_EQ(a, b) EXPECT_EQ(bits(a), bits(b))

std::vector<double> random_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  // Wide magnitude spread so reassociation would actually change bits.
  for (auto& x : v) x = rng.normal() * std::pow(10.0, rng.normal() * 3.0);
  return v;
}

// Sizes that cover the empty case, every tail residue mod 8, the
// histogram lane cutoff boundary, and a large block.
const std::size_t kSizes[] = {0,  1,  2,  3,  4,  5,  6,   7,   8,    9,
                              10, 11, 12, 13, 14, 15, 16,  17,  31,   63,
                              64, 65, 100, 128, 1000};

TEST(SimdKernels, Reduce8IsTheDocumentedTree) {
  // Values where association visibly matters.
  const double lanes[8] = {1e16, 1.0, -1e16, 1.0, 3.0, 1e-8, 7.0, -3.0};
  const double expect = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
                        ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  EXPECT_BITS_EQ(simd::reduce8(lanes), expect);
}

TEST(SimdKernels, SumMatchesExplicitLaneSimulation) {
  Rng rng(7);
  for (const std::size_t n : kSizes) {
    const std::vector<double> a = random_vec(n, rng);
    // Independent simulation of the contract: element i -> lane i % 8
    // within blocks of 8, tail element i -> lane i - nb, then reduce8.
    double lanes[simd::kLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
    const std::size_t nb = n & ~std::size_t{7};
    for (std::size_t i = 0; i < nb; i += 8)
      for (std::size_t j = 0; j < 8; ++j) lanes[j] += a[i + j];
    for (std::size_t i = nb; i < n; ++i) lanes[i - nb] += a[i];
    EXPECT_BITS_EQ(simd::scalar::sum(a.data(), n), simd::reduce8(lanes))
        << "n=" << n;
  }
}

TEST(SimdKernels, VectorMatchesScalarBitForBit) {
  Rng rng(11);
  for (const std::size_t n : kSizes) {
    const std::vector<double> a = random_vec(n, rng);
    const std::vector<double> b = random_vec(n, rng);

    EXPECT_BITS_EQ(simd::vector::sum(a.data(), n),
                   simd::scalar::sum(a.data(), n))
        << "sum n=" << n;
    EXPECT_BITS_EQ(simd::vector::dot(a.data(), b.data(), n),
                   simd::scalar::dot(a.data(), b.data(), n))
        << "dot n=" << n;
    EXPECT_BITS_EQ(simd::vector::l2_distance2(a.data(), b.data(), n),
                   simd::scalar::l2_distance2(a.data(), b.data(), n))
        << "l2 n=" << n;

    std::vector<double> ys = b, yv = b;
    simd::scalar::axpy(0.37, a.data(), ys.data(), n);
    simd::vector::axpy(0.37, a.data(), yv.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(bits(ys[i]), bits(yv[i])) << "axpy n=" << n << " i=" << i;

    const simd::ErrorAcc es = simd::scalar::squared_error(a.data(), b.data(), n);
    const simd::ErrorAcc ev = simd::vector::squared_error(a.data(), b.data(), n);
    EXPECT_BITS_EQ(ev.sum_sq, es.sum_sq) << "squared_error n=" << n;
    EXPECT_EQ(ev.finite, es.finite) << "squared_error n=" << n;
  }
}

TEST(SimdKernels, SquaredErrorMasksNonFinitePairsIdentically) {
  Rng rng(13);
  const std::size_t n = 129;  // odd tail
  std::vector<double> p = random_vec(n, rng), t = random_vec(n, rng);
  p[3] = std::numeric_limits<double>::quiet_NaN();
  t[17] = std::numeric_limits<double>::infinity();
  p[100] = -std::numeric_limits<double>::infinity();
  t[100] = std::numeric_limits<double>::quiet_NaN();
  p[n - 1] = std::numeric_limits<double>::quiet_NaN();

  const simd::ErrorAcc es = simd::scalar::squared_error(p.data(), t.data(), n);
  const simd::ErrorAcc ev = simd::vector::squared_error(p.data(), t.data(), n);
  EXPECT_BITS_EQ(ev.sum_sq, es.sum_sq);
  EXPECT_EQ(ev.finite, es.finite);
  EXPECT_EQ(es.finite, static_cast<std::uint64_t>(n - 4));
  EXPECT_TRUE(std::isfinite(es.sum_sq));

  // The masked pairs contribute exactly nothing: recompute with them
  // removed and the count must agree (sum differs only by lane layout).
  std::uint64_t manual = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (std::isfinite(p[i]) && std::isfinite(t[i])) ++manual;
  EXPECT_EQ(es.finite, manual);
}

TEST(SimdKernels, DistancesColsMatchClassicRowMajorLoop) {
  Rng rng(17);
  for (const std::size_t rows : {std::size_t{0}, std::size_t{1},
                                 std::size_t{7}, std::size_t{8},
                                 std::size_t{13}, std::size_t{200}}) {
    const std::size_t cols = 5;
    std::vector<double> cm(rows * cols);
    for (auto& v : cm) v = rng.normal();
    std::vector<double> z(cols);
    for (auto& v : z) v = rng.normal();

    std::vector<double> out_s(rows), out_v(rows);
    simd::scalar::l2_distances_cols(cm.data(), rows, z.data(), cols,
                                    out_s.data());
    simd::vector::l2_distances_cols(cm.data(), rows, z.data(), cols,
                                    out_v.data());
    for (std::size_t r = 0; r < rows; ++r) {
      // Pre-kernel KNN DAG: sequential over features per distance.
      double d2 = 0.0;
      for (std::size_t c = 0; c < cols; ++c) {
        const double d = cm[c * rows + r] - z[c];
        d2 += d * d;
      }
      ASSERT_EQ(bits(out_s[r]), bits(d2)) << "rows=" << rows << " r=" << r;
      ASSERT_EQ(bits(out_v[r]), bits(d2)) << "rows=" << rows << " r=" << r;
    }
  }
}

TEST(SimdKernels, HistAccumulateMatchesReferenceAcrossCutoff) {
  Rng rng(19);
  const int nb = 11;
  // Straddle kHistLaneCutoff: both the sequential and the lane-private
  // regime, plus the exact boundary on each side.
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{5}, simd::kHistLaneCutoff - 1,
        simd::kHistLaneCutoff, simd::kHistLaneCutoff + 1, std::size_t{500}}) {
    std::vector<std::uint8_t> codes(n > 0 ? 2 * n : 1);
    for (auto& c : codes) c = static_cast<std::uint8_t>(rng.index(nb));
    // Non-identity gather: rows picked from the wider codes array.
    std::vector<std::size_t> rows(n);
    for (auto& r : rows) r = rng.index(codes.size());
    std::vector<double> w(n), wy(n);
    for (std::size_t i = 0; i < n; ++i) {
      w[i] = 0.5 + rng.uniform();
      wy[i] = w[i] * rng.normal();
    }

    std::vector<double> sw_s(nb), swy_s(nb), sw_v(nb), swy_v(nb);
    const simd::HistBounds hs = simd::scalar::hist_accumulate(
        codes.data(), rows.data(), w.data(), wy.data(), n, nb, sw_s.data(),
        swy_s.data());
    const simd::HistBounds hv = simd::vector::hist_accumulate(
        codes.data(), rows.data(), w.data(), wy.data(), n, nb, sw_v.data(),
        swy_v.data());
    EXPECT_EQ(hs.lo_bin, hv.lo_bin) << "n=" << n;
    EXPECT_EQ(hs.hi_bin, hv.hi_bin) << "n=" << n;
    for (int b = 0; b < nb; ++b) {
      ASSERT_EQ(bits(sw_s[static_cast<std::size_t>(b)]),
                bits(sw_v[static_cast<std::size_t>(b)]))
          << "n=" << n << " b=" << b;
      ASSERT_EQ(bits(swy_s[static_cast<std::size_t>(b)]),
                bits(swy_v[static_cast<std::size_t>(b)]))
          << "n=" << n << " b=" << b;
    }

    // Near-equality vs an order-free reference (lane-private accumulation
    // reassociates, so exact equality is only promised vector vs scalar).
    std::vector<double> ref_w(nb, 0.0), ref_wy(nb, 0.0);
    int lo = nb, hi = -1;
    for (std::size_t i = 0; i < n; ++i) {
      const int b = codes[rows[i]];
      ref_w[static_cast<std::size_t>(b)] += w[i];
      ref_wy[static_cast<std::size_t>(b)] += wy[i];
      lo = std::min(lo, b);
      hi = std::max(hi, b);
    }
    if (n > 0) {
      EXPECT_EQ(hs.lo_bin, lo) << "n=" << n;
      EXPECT_EQ(hs.hi_bin, hi) << "n=" << n;
    } else {
      EXPECT_GT(hs.lo_bin, hs.hi_bin);
    }
    for (int b = 0; b < nb; ++b) {
      EXPECT_NEAR(sw_s[static_cast<std::size_t>(b)],
                  ref_w[static_cast<std::size_t>(b)],
                  1e-9 * (1.0 + std::abs(ref_w[static_cast<std::size_t>(b)])))
          << "n=" << n << " b=" << b;
      EXPECT_NEAR(swy_s[static_cast<std::size_t>(b)],
                  ref_wy[static_cast<std::size_t>(b)],
                  1e-9 * (1.0 + std::abs(ref_wy[static_cast<std::size_t>(b)])))
          << "n=" << n << " b=" << b;
    }
  }
}

TEST(SimdDispatch, KillSwitchRoutesToScalarWithIdenticalResults) {
  Rng rng(23);
  const std::vector<double> a = random_vec(777, rng);
  const std::vector<double> b = random_vec(777, rng);

  const bool was_active = simd::vector_active();
  simd::set_vector_active(true);
  const double on_dot = simd::dot(a, b);
  const bool on_says_vector = simd::vector_active();
  simd::set_vector_active(false);
  EXPECT_FALSE(simd::vector_active());
  EXPECT_STREQ(simd::active_isa(), "scalar");
  const double off_dot = simd::dot(a, b);
  simd::set_vector_active(was_active);

  // The whole point: flipping the switch is invisible in results.
  EXPECT_BITS_EQ(on_dot, off_dot);
  if (simd::compiled_in()) EXPECT_TRUE(on_says_vector);
}

TEST(SimdDispatch, CountsKernelCalls) {
  if constexpr (!obs::kCompiledIn) {
    GTEST_SKIP() << "obs compiled out";
  }
  obs::Counter& c = obs::MetricsRegistry::global().counter(
      "leaf_simd_calls_total", obs::label("kernel", "sum"));
  const std::uint64_t before = c.value();
  const std::vector<double> a(17, 1.0);
  EXPECT_DOUBLE_EQ(simd::sum(a), 17.0);
  EXPECT_EQ(c.value(), before + 1);
}

TEST(SimdAlignedBuffer, AlignmentGrowthAndMove) {
  simd::AlignedBuffer buf;
  EXPECT_EQ(buf.capacity(), 0u);
  EXPECT_EQ(buf.grows(), 0u);

  const std::span<double> s = buf.acquire(10);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.data()) % 64, 0u);
  EXPECT_EQ(buf.grows(), 1u);
  EXPECT_GE(buf.capacity(), 10u);

  // Reuse within capacity: no new allocation.
  double* const p = buf.data();
  EXPECT_FALSE(buf.reserve(buf.capacity()));
  (void)buf.acquire(5);
  EXPECT_EQ(buf.data(), p);
  EXPECT_EQ(buf.grows(), 1u);

  // Growth is geometric from the high-water mark.
  const std::size_t old_cap = buf.capacity();
  EXPECT_TRUE(buf.reserve(old_cap + 1));
  EXPECT_GE(buf.capacity(), 2 * old_cap);
  EXPECT_EQ(buf.grows(), 2u);

  // Move transfers ownership and zeroes the source.
  simd::AlignedBuffer other(std::move(buf));
  EXPECT_EQ(other.grows(), 2u);
  EXPECT_GE(other.capacity(), old_cap + 1);
  EXPECT_EQ(buf.capacity(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(buf.data(), nullptr);
}

}  // namespace
}  // namespace leaf
