// Tests for leaf::serve — run_scheme equivalence, thread-count
// determinism, and the crash-equivalence guarantee of snapshot/restore.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "io/serializer.hpp"
#include "obs/metrics.hpp"
#include "par/parallel.hpp"
#include "serve/runtime.hpp"
#include "snapshot_fault_helpers.hpp"

namespace leaf::serve {
namespace {

/// Restores the default thread count even if a test fails mid-way.
struct ThreadGuard {
  ~ThreadGuard() { par::set_threads(0); }
};

struct ServeFixture : ::testing::Test {
  Scale scale = Scale::for_level(Scale::Level::kSmall);
  data::CellularDataset ds = data::generate_fixed_dataset(scale, 42);

  std::vector<ShardSpec> small_fleet() const {
    return {{data::TargetKpi::kDVol, models::ModelFamily::kGbdt, "Triggered", 0},
            {data::TargetKpi::kPU, models::ModelFamily::kRidge, "LEAF", 0},
            {data::TargetKpi::kDTP, models::ModelFamily::kGbdt, "Naive30", 0}};
  }

  std::string temp_dir(const std::string& leaf) const {
    const std::string dir = ::testing::TempDir() + "leaf_serve_" + leaf;
    std::filesystem::create_directories(dir);
    return dir;
  }
};

void expect_identical(const core::EvalResult& a, const core::EvalResult& b) {
  EXPECT_EQ(a.days, b.days);
  ASSERT_EQ(a.nrmse.size(), b.nrmse.size());
  for (std::size_t i = 0; i < a.nrmse.size(); ++i)
    EXPECT_EQ(a.nrmse[i], b.nrmse[i]) << "nrmse[" << i << "]";
  ASSERT_EQ(a.mean_ne.size(), b.mean_ne.size());
  for (std::size_t i = 0; i < a.mean_ne.size(); ++i)
    EXPECT_EQ(a.mean_ne[i], b.mean_ne[i]) << "mean_ne[" << i << "]";
  EXPECT_EQ(a.retrain_days, b.retrain_days);
  EXPECT_EQ(a.drift_days, b.drift_days);
  EXPECT_EQ(a.ne_p95, b.ne_p95);
}

void expect_identical(const std::vector<core::EvalResult>& a,
                      const std::vector<core::EvalResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_identical(a[i], b[i]);
}

// A single-shard fleet must reproduce core::run_scheme bit-for-bit: same
// seed derivations, same per-step semantics.
TEST_F(ServeFixture, SingleShardMatchesRunScheme) {
  const std::uint64_t seed = 11;
  const data::TargetKpi kpi = data::TargetKpi::kDVol;

  const core::EvalConfig cfg = core::make_eval_config(scale, seed);
  const data::Featurizer fz(ds, kpi);
  const auto prototype =
      models::make_model(models::ModelFamily::kGbdt, scale, cfg.seed);
  const auto scheme = core::make_scheme(
      "Triggered", core::kpi_dispersion(ds, kpi), cfg.seed ^ 0x99);
  const core::EvalResult want = core::run_scheme(fz, *prototype, *scheme, cfg);

  FleetRuntime fleet(
      ds, scale, {{kpi, models::ModelFamily::kGbdt, "Triggered", seed}});
  fleet.run_to_end();
  const std::vector<core::EvalResult> got = fleet.results();
  ASSERT_EQ(got.size(), 1u);
  expect_identical(got[0], want);
}

// Same fleet, different thread counts → byte-identical results.
TEST_F(ServeFixture, ResultsIdenticalAtAnyThreadCount) {
  ThreadGuard guard;

  par::set_threads(1);
  FleetRuntime a(ds, scale, small_fleet());
  a.run_to_end();

  par::set_threads(4);
  FleetRuntime b(ds, scale, small_fleet());
  b.run_to_end();

  expect_identical(a.results(), b.results());
}

// The headline property: kill mid-run, restore into a fresh runtime,
// continue — results and retrain timeline byte-identical to a run that
// never stopped.  Exercised at one and four worker threads.
TEST_F(ServeFixture, CrashEquivalence) {
  ThreadGuard guard;
  for (int threads : {1, 4}) {
    par::set_threads(threads);

    FleetRuntime uninterrupted(ds, scale, small_fleet());
    uninterrupted.run_to_end();

    FleetRuntime victim(ds, scale, small_fleet());
    victim.run_steps(3);
    ASSERT_FALSE(victim.done());
    const std::string dir =
        temp_dir("crash_t" + std::to_string(threads));
    victim.snapshot(dir);
    // "Crash": victim is abandoned here; a new process constructs an
    // identically configured runtime and restores.
    FleetRuntime revived(ds, scale, small_fleet());
    revived.restore(dir);
    EXPECT_EQ(revived.steps_run(), 3u);
    revived.run_to_end();

    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(revived.results(), uninterrupted.results());

    const ServeStats sa = uninterrupted.stats();
    const ServeStats sb = revived.stats();
    EXPECT_EQ(sb.total_retrains, sa.total_retrains);
    EXPECT_EQ(sb.total_drift_events, sa.total_drift_events);
    EXPECT_EQ(sb.shards_done, sa.shards_done);
  }
}

// Snapshotting at the very end and restoring must also round-trip.
TEST_F(ServeFixture, SnapshotAtCompletionRoundTrips) {
  FleetRuntime a(ds, scale, small_fleet());
  a.run_to_end();
  const std::string dir = temp_dir("final");
  a.snapshot(dir);

  FleetRuntime b(ds, scale, small_fleet());
  b.restore(dir);
  EXPECT_TRUE(b.done());
  expect_identical(b.results(), a.results());
}

TEST_F(ServeFixture, SnapshotBeforeStartThrows) {
  FleetRuntime fleet(ds, scale, small_fleet());
  EXPECT_THROW(fleet.snapshot(temp_dir("before_start")), io::SnapshotError);
}

TEST_F(ServeFixture, RestoreRejectsMismatchedFleet) {
  FleetRuntime a(ds, scale, small_fleet());
  a.run_steps(2);
  const std::string dir = temp_dir("mismatch");
  a.snapshot(dir);

  // Different shard count.
  FleetRuntime fewer(ds, scale, {small_fleet()[0]});
  leaf::testing::expect_snapshot_error([&] { fewer.restore(dir); },
                                       "shard count mismatch");

  // Different fleet seed → different derived shard seeds.
  FleetRuntime reseeded(ds, scale, small_fleet(), 777);
  leaf::testing::expect_snapshot_error([&] { reseeded.restore(dir); },
                                       "fleet seed mismatch");

  // Different shard configuration.
  std::vector<ShardSpec> swapped = small_fleet();
  swapped[0].scheme = "Static";
  FleetRuntime other(ds, scale, swapped);
  leaf::testing::expect_snapshot_error([&] { other.restore(dir); },
                                       "configuration mismatch");

  // A failed restore must not have corrupted the target runtime: it can
  // still run to completion and match a clean run.
  other.run_to_end();
  FleetRuntime clean(ds, scale, swapped);
  clean.run_to_end();
  expect_identical(other.results(), clean.results());
}

TEST_F(ServeFixture, RestoreRejectsMissingFile) {
  FleetRuntime fleet(ds, scale, small_fleet());
  EXPECT_THROW(fleet.restore(temp_dir("empty_dir")), io::SnapshotError);
}

TEST_F(ServeFixture, StatsTrackProgress) {
  FleetRuntime fleet(ds, scale, small_fleet());
  fleet.run_steps(2);
  const ServeStats stats = fleet.stats();
  ASSERT_EQ(stats.shards.size(), 3u);
  EXPECT_EQ(stats.total_steps, 2u);
  for (const ShardStats& s : stats.shards) {
    EXPECT_EQ(s.steps, 2u);
    EXPECT_FALSE(s.kpi.empty());
    EXPECT_FALSE(s.model.empty());
    EXPECT_FALSE(s.scheme.empty());
  }

  fleet.run_to_end();
  const ServeStats final_stats = fleet.stats();
  EXPECT_EQ(final_stats.shards_done, 3u);
  int evaluated = 0;
  for (const ShardStats& s : final_stats.shards) {
    EXPECT_TRUE(s.done);
    evaluated += s.days_evaluated;
  }
  EXPECT_GT(evaluated, 0);
}

// --- observability ----------------------------------------------------------

// The masked fleet event stream (to_jsonl(false)) and the fleet-state
// scrape section are pure functions of the computation: identical at any
// thread count.
TEST_F(ServeFixture, EventStreamIdenticalAtAnyThreadCount) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  ThreadGuard guard;

  par::set_threads(1);
  FleetRuntime a(ds, scale, small_fleet());
  a.run_to_end();

  par::set_threads(4);
  FleetRuntime b(ds, scale, small_fleet());
  b.run_to_end();

  const std::string ja = a.events_jsonl(/*with_timing=*/false);
  EXPECT_FALSE(ja.empty());
  EXPECT_EQ(ja, b.events_jsonl(/*with_timing=*/false));
  // Fleet-state-derived scrape (without the process-global registry,
  // which carries wall-clock series) is likewise schedule-independent.
  EXPECT_EQ(a.scrape(/*include_process=*/false),
            b.scrape(/*include_process=*/false));
}

// Shard event logs ride in the snapshot: a restored fleet replays to the
// same event stream as one that never stopped, including events from
// before the snapshot point.
TEST_F(ServeFixture, EventStreamSurvivesSnapshotRestore) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  FleetRuntime uninterrupted(ds, scale, small_fleet());
  uninterrupted.run_to_end();

  FleetRuntime victim(ds, scale, small_fleet());
  victim.run_steps(3);
  ASSERT_FALSE(victim.done());
  const std::string dir = temp_dir("events_resume");
  victim.snapshot(dir);

  FleetRuntime revived(ds, scale, small_fleet());
  revived.restore(dir);
  revived.run_to_end();

  EXPECT_EQ(revived.events_jsonl(/*with_timing=*/false),
            uninterrupted.events_jsonl(/*with_timing=*/false));
  EXPECT_EQ(revived.scrape(/*include_process=*/false),
            uninterrupted.scrape(/*include_process=*/false));
}

// Every merged event carries its shard's identity and the merge is
// (day, shard)-ordered.
TEST_F(ServeFixture, MergedEventsCarryShardContext) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  FleetRuntime fleet(ds, scale, small_fleet());
  fleet.run_to_end();
  const std::vector<obs::Event> events = fleet.merged_events();
  ASSERT_FALSE(events.empty());
  int prev_day = -1, prev_shard = -1;
  for (const obs::Event& e : events) {
    EXPECT_GE(e.shard, 0);
    EXPECT_LT(e.shard, 3);
    EXPECT_FALSE(e.kpi.empty());
    EXPECT_FALSE(e.model.empty());
    EXPECT_FALSE(e.scheme.empty());
    EXPECT_TRUE(e.day > prev_day || (e.day == prev_day && e.shard >= prev_shard))
        << "merge order violated at day " << e.day << " shard " << e.shard;
    prev_day = e.day;
    prev_shard = e.shard;
  }
}

// The fleet scrape is valid Prometheus text: every non-comment line is
// `series value`, and the fleet section reports one series set per shard.
TEST_F(ServeFixture, ScrapeShapeIsWellFormed) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  FleetRuntime fleet(ds, scale, small_fleet());
  fleet.run_steps(2);
  const std::string text = fleet.scrape();
  std::size_t shard_series = 0, pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "scrape must end with a newline";
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << "bad line: " << line;
    EXPECT_GT(sp, 0u);
    // The value parses as a double.
    EXPECT_NO_THROW((void)std::stod(line.substr(sp + 1))) << line;
    if (line.rfind("leaf_fleet_shard_steps{", 0) == 0) ++shard_series;
  }
  EXPECT_EQ(shard_series, 3u);
}

// Explicit per-shard seeds are honored verbatim; seed 0 derives from the
// fleet seed, so two fleets with different fleet seeds diverge.
TEST_F(ServeFixture, FleetSeedDrivesDerivedShardSeeds) {
  std::vector<ShardSpec> specs = {
      {data::TargetKpi::kDVol, models::ModelFamily::kRidge, "Triggered", 0}};

  FleetRuntime a(ds, scale, specs, 1);
  a.run_to_end();
  FleetRuntime b(ds, scale, specs, 2);
  b.run_to_end();
  // Seeds differ → detector RNG streams differ.  (NRMSE values may agree
  // early on; the full series should not be identical in lockstep.)
  const auto ra = a.results()[0], rb = b.results()[0];
  EXPECT_EQ(ra.days, rb.days);

  FleetRuntime c(ds, scale, specs, 1);
  c.run_to_end();
  expect_identical(c.results(), a.results());
}

}  // namespace
}  // namespace leaf::serve
