// Tests for the deterministic parallel execution layer (par/) and the
// bit-identical-output contract of every parallel hot path: the same
// numbers must come out at LEAF_THREADS=1 and LEAF_THREADS=4.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/eval_cache.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "explain/importance.hpp"
#include "models/factory.hpp"
#include "models/forest.hpp"
#include "par/parallel.hpp"

namespace leaf {
namespace {

/// Restores the ambient thread count (the LEAF_THREADS default) when a
/// test that overrides it goes out of scope.
struct ThreadGuard {
  ~ThreadGuard() { par::set_threads(0); }
};

// --- pool / parallel primitives -------------------------------------------

TEST(Par, SetThreadsOverridesWidth) {
  ThreadGuard guard;
  par::set_threads(4);
  EXPECT_EQ(par::threads(), 4);
  par::set_threads(1);
  EXPECT_EQ(par::threads(), 1);
}

TEST(Par, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  par::set_threads(4);
  constexpr std::size_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  par::parallel_for(n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(Par, ChunksAreContiguousAndCoverTheRange) {
  ThreadGuard guard;
  par::set_threads(4);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  par::parallel_for_chunks(101, [&](std::size_t begin, std::size_t end) {
    const std::lock_guard<std::mutex> lk(mu);
    ranges.emplace_back(begin, end);
  });
  std::sort(ranges.begin(), ranges.end());
  ASSERT_FALSE(ranges.empty());
  EXPECT_LE(ranges.size(), 4u);
  EXPECT_EQ(ranges.front().first, 0u);
  EXPECT_EQ(ranges.back().second, 101u);
  for (std::size_t i = 1; i < ranges.size(); ++i)
    EXPECT_EQ(ranges[i].first, ranges[i - 1].second);
}

TEST(Par, ParallelMapReturnsResultsInIndexOrder) {
  ThreadGuard guard;
  par::set_threads(4);
  const auto v =
      par::parallel_map(1000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(v.size(), 1000u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], i * i);
}

TEST(Par, ExceptionPropagatesAndPoolSurvives) {
  ThreadGuard guard;
  par::set_threads(4);
  EXPECT_THROW(par::parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must be quiescent and reusable after a throwing job.
  std::atomic<int> count{0};
  par::parallel_for(100, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(Par, NestedRegionsRunInlineWithoutDeadlock) {
  ThreadGuard guard;
  par::set_threads(4);
  std::atomic<int> total{0};
  par::parallel_for(8, [&](std::size_t) {
    par::parallel_for(8, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(Par, ReduceIsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const auto run = [] {
    return par::parallel_reduce(
        10000, 0.0,
        [](std::size_t i) { return std::sin(static_cast<double>(i)) * 1e-3; },
        [](double acc, double v) { return acc + v; });
  };
  par::set_threads(1);
  const double serial = run();
  par::set_threads(4);
  const double parallel = run();
  EXPECT_EQ(serial, parallel);
}

// --- counter-based sub-streams --------------------------------------------

TEST(Substream, DoesNotAdvanceTheParent) {
  Rng a(9), b(9);
  (void)a.substream(3);
  (void)a.substream(12345);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(Substream, IsAPureFunctionOfParentStateAndIndex) {
  const Rng parent(42);
  Rng s1 = parent.substream(7);
  Rng s2 = parent.substream(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(s1(), s2());
}

TEST(Substream, DistinctIndicesGiveIndependentStreams) {
  const Rng parent(42);
  Rng s0 = parent.substream(0);
  Rng s1 = parent.substream(1);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (s0() == s1()) ++same;
  EXPECT_LT(same, 2);
}

// --- golden determinism of the parallel hot paths -------------------------

struct SynthProblem {
  Matrix X{600, 6};
  std::vector<double> y;
  Matrix X_test{200, 6};

  SynthProblem() {
    Rng rng(77);
    y.resize(X.rows());
    const auto fill = [&](Matrix& m) {
      for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = rng.normal();
    };
    fill(X);
    fill(X_test);
    for (std::size_t r = 0; r < X.rows(); ++r)
      y[r] = 2.0 * X(r, 0) - X(r, 1) + 0.1 * rng.normal();
  }
};

TEST(Determinism, ForestFitIsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const SynthProblem p;
  for (const models::ForestConfig cfg :
       {models::ForestConfig::random_forest(24, 5),
        models::ForestConfig::extra_trees(24, 5)}) {
    const auto fit_and_predict = [&] {
      models::Forest f(cfg, "F");
      f.fit(p.X, p.y);
      return f.predict(p.X_test);
    };
    par::set_threads(1);
    const std::vector<double> serial = fit_and_predict();
    par::set_threads(4);
    const std::vector<double> parallel = fit_and_predict();
    EXPECT_EQ(serial, parallel);
  }
}

TEST(Determinism, PredictIntoMatchesPredict) {
  ThreadGuard guard;
  par::set_threads(4);
  const SynthProblem p;
  models::Forest f(models::ForestConfig::random_forest(16, 3), "F");
  f.fit(p.X, p.y);
  const std::vector<double> a = f.predict(p.X_test);
  std::vector<double> b(p.X_test.rows());
  f.predict_into(p.X_test, b);
  EXPECT_EQ(a, b);
}

TEST(Determinism, PermutationImportanceIsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const SynthProblem p;
  par::set_threads(1);
  models::Forest f(models::ForestConfig::random_forest(16, 3), "F");
  f.fit(p.X, p.y);

  const auto score = [&](Rng& rng) {
    return explain::permutation_importance(f, p.X, p.y, 4.0, rng);
  };
  Rng rng1(5), rng2(5);
  const std::vector<double> serial = score(rng1);
  par::set_threads(4);
  const std::vector<double> parallel = score(rng2);
  EXPECT_EQ(serial, parallel);
  // The caller-visible generator must advance identically on both paths.
  EXPECT_EQ(rng1(), rng2());
}

// Full-pipeline golden runs on the shared tiny dataset.

Scale par_scale() {
  Scale s = Scale::for_level(Scale::Level::kSmall);
  s.fixed_enbs = 6;
  s.num_kpis = 16;
  s.gbdt_trees = 15;
  s.eval_stride_days = 4;
  return s;
}

const data::CellularDataset& par_ds() {
  static const data::CellularDataset d =
      data::generate_fixed_dataset(par_scale(), 42);
  return d;
}

void expect_same_run(const core::EvalResult& a, const core::EvalResult& b) {
  EXPECT_EQ(a.days, b.days);
  EXPECT_EQ(a.nrmse, b.nrmse);
  EXPECT_EQ(a.mean_ne, b.mean_ne);
  EXPECT_EQ(a.retrain_days, b.retrain_days);
  EXPECT_EQ(a.drift_days, b.drift_days);
  EXPECT_EQ(a.ne_p95, b.ne_p95);
}

TEST(Determinism, RunSchemeIsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const data::Featurizer f(par_ds(), data::TargetKpi::kDVol);
  const double dispersion =
      core::kpi_dispersion(par_ds(), data::TargetKpi::kDVol);
  const auto run = [&] {
    const auto model =
        models::make_model(models::ModelFamily::kGbdt, par_scale(), 1);
    const auto scheme = core::make_scheme("LEAF", dispersion, 7);
    return core::run_scheme(f, *model, *scheme,
                            core::make_eval_config(par_scale()));
  };
  par::set_threads(1);
  const core::EvalResult serial = run();
  par::set_threads(4);
  const core::EvalResult parallel = run();
  expect_same_run(serial, parallel);
}

TEST(Determinism, EvalCacheIsBitIdenticalToRecomputation) {
  ThreadGuard guard;
  par::set_threads(4);
  const data::Featurizer f(par_ds(), data::TargetKpi::kDVol);
  const auto run = [&](core::EvalCache* cache) {
    const auto model =
        models::make_model(models::ModelFamily::kGbdt, par_scale(), 1);
    core::TriggeredScheme scheme;
    core::EvalConfig cfg = core::make_eval_config(par_scale());
    cfg.cache = cache;
    return core::run_scheme(f, *model, scheme, cfg);
  };
  const core::EvalResult uncached = run(nullptr);
  core::EvalCache cache(f);
  const core::EvalResult cached = run(&cache);
  expect_same_run(uncached, cached);
  EXPECT_GT(cache.misses(), 0u);
  // A second pass through the same run is served from the cache.
  const std::size_t misses_after_first = cache.misses();
  const core::EvalResult again = run(&cache);
  expect_same_run(cached, again);
  EXPECT_EQ(cache.misses(), misses_after_first);
  EXPECT_GT(cache.hits(), 0u);
}

TEST(Determinism, CompareSchemesIsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const std::vector<std::string> specs = {"Static", "Triggered"};
  const std::uint64_t seeds[] = {11};
  const auto grid = [&] {
    return core::compare_schemes(par_ds(), data::TargetKpi::kDVol,
                                 models::ModelFamily::kGbdt, par_scale(),
                                 specs, seeds);
  };
  par::set_threads(1);
  const auto serial = grid();
  par::set_threads(4);
  const auto parallel = grid();
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t s = 0; s < serial.size(); ++s) {
    EXPECT_EQ(serial[s].scheme, parallel[s].scheme);
    EXPECT_EQ(serial[s].avg_nrmse, parallel[s].avg_nrmse);
    EXPECT_EQ(serial[s].delta_pct, parallel[s].delta_pct);
    EXPECT_EQ(serial[s].retrains, parallel[s].retrains);
    EXPECT_EQ(serial[s].ne_p95, parallel[s].ne_p95);
    EXPECT_EQ(serial[s].static_nrmse, parallel[s].static_nrmse);
  }
  // The "Static" arm reuses the baseline run outright, so its ΔNRMSE̅ is
  // exactly zero — by identity, not by luck of averaging.
  EXPECT_EQ(serial[0].delta_pct, 0.0);
  EXPECT_EQ(serial[0].retrains, 0.0);
}

}  // namespace
}  // namespace leaf
