// Unit tests for the mitigation schemes and evaluation engine (core/).
#include <gtest/gtest.h>

#include <cmath>

#include "common/calendar.hpp"
#include "common/metrics.hpp"
#include "core/eval_cache.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "models/factory.hpp"

namespace leaf::core {
namespace {

Scale tiny_scale() {
  Scale s = Scale::for_level(Scale::Level::kSmall);
  s.fixed_enbs = 6;
  s.num_kpis = 16;
  s.gbdt_trees = 15;
  s.eval_stride_days = 4;
  return s;
}

const data::CellularDataset& ds() {
  static const data::CellularDataset d =
      data::generate_fixed_dataset(tiny_scale(), 42);
  return d;
}

const data::Featurizer& featurizer() {
  static const data::Featurizer f(ds(), data::TargetKpi::kDVol);
  return f;
}

EvalConfig tiny_config() {
  EvalConfig cfg = make_eval_config(tiny_scale());
  return cfg;
}

// --- latest_labeled_window ------------------------------------------------

TEST(LatestWindow, FeatureDaysEndAtHorizonBoundary) {
  const int eval_day = 600;
  const auto set = latest_labeled_window(featurizer(), eval_day, 14);
  ASSERT_FALSE(set.empty());
  int max_fd = 0, min_fd = 1 << 30;
  for (int d : set.feature_day) {
    max_fd = std::max(max_fd, d);
    min_fd = std::min(min_fd, d);
  }
  EXPECT_EQ(max_fd, eval_day - 180);
  EXPECT_EQ(min_fd, eval_day - 180 - 13);
  // No label leakage: every target day <= eval day.
  for (int d : set.target_day) EXPECT_LE(d, eval_day);
}

// --- scheme policies --------------------------------------------------------

TEST(StaticScheme, NeverRetrains) {
  StaticScheme scheme;
  const EvalResult r =
      run_scheme(featurizer(),
                 *models::make_model(models::ModelFamily::kRidge, tiny_scale(), 1),
                 scheme, tiny_config());
  EXPECT_EQ(r.retrain_count(), 0);
  EXPECT_EQ(r.scheme, "Static");
}

TEST(PeriodicScheme, RetrainCadenceMatchesPeriod) {
  PeriodicScheme scheme(90);
  const EvalConfig cfg = tiny_config();
  const EvalResult r =
      run_scheme(featurizer(),
                 *models::make_model(models::ModelFamily::kRidge, tiny_scale(), 1),
                 scheme, cfg);
  ASSERT_GT(r.retrain_count(), 0);
  // Evaluation spans ~1186 days; every-90-days -> about 13 retrains.
  const int span = r.days.back() - r.days.front();
  EXPECT_NEAR(r.retrain_count(), span / 90, 2);
  // Gaps between consecutive retrains >= period.
  for (std::size_t i = 1; i < r.retrain_days.size(); ++i)
    EXPECT_GE(r.retrain_days[i] - r.retrain_days[i - 1], 90);
}

TEST(PeriodicScheme, NameEncodesPeriod) {
  EXPECT_EQ(PeriodicScheme(30).name(), "Naive30");
  EXPECT_EQ(PeriodicScheme(365).name(), "Naive365");
}

TEST(TriggeredScheme, RetrainsExactlyOnDriftDays) {
  TriggeredScheme scheme;
  const EvalResult r =
      run_scheme(featurizer(),
                 *models::make_model(models::ModelFamily::kRidge, tiny_scale(), 1),
                 scheme, tiny_config());
  EXPECT_EQ(r.retrain_days, r.drift_days);
}

TEST(LeafScheme, RetrainsOnlyOnDrift) {
  const double disp = kpi_dispersion(ds(), data::TargetKpi::kDVol);
  LeafConfig lc;
  LeafScheme scheme(lc, disp);
  const EvalResult r =
      run_scheme(featurizer(),
                 *models::make_model(models::ModelFamily::kGbdt, tiny_scale(), 1),
                 scheme, tiny_config());
  // Every retrain day is a drift day (LEAF may skip degenerate events but
  // never retrains without a detection).
  for (int d : r.retrain_days)
    EXPECT_TRUE(std::find(r.drift_days.begin(), r.drift_days.end(), d) !=
                r.drift_days.end());
}

TEST(LeafScheme, PreservesTrainingSetSize) {
  // Drive the scheme manually on a fabricated drift step.
  const double disp = 0.5;  // low dispersion path
  LeafConfig lc;
  LeafScheme scheme(lc, disp);
  scheme.reset();

  const auto model =
      models::make_model(models::ModelFamily::kGbdt, tiny_scale(), 1);
  const int anchor = cal::anchor_2018_07_01();
  const data::SupervisedSet train = featurizer().window(anchor - 13, anchor);
  model->fit(train.X, train.y);

  Rng rng(1);
  SchemeContext ctx{.featurizer = featurizer(),
                    .model = *model,
                    .current_train = train,
                    .eval_day = 900,
                    .nrmse = 0.2,
                    .drift = true,
                    .train_window = 14,
                    .rng = &rng};
  const auto new_train = scheme.on_step(ctx);
  ASSERT_TRUE(new_train.has_value());
  EXPECT_EQ(new_train->size(), train.size());
  EXPECT_EQ(new_train->X.cols(), train.X.cols());
}

TEST(LeafScheme, NoDriftNoAction) {
  LeafConfig lc;
  LeafScheme scheme(lc, 0.5);
  scheme.reset();
  const auto model =
      models::make_model(models::ModelFamily::kRidge, tiny_scale(), 1);
  const data::SupervisedSet train = featurizer().window(170, 181);
  model->fit(train.X, train.y);
  Rng rng(1);
  SchemeContext ctx{.featurizer = featurizer(),
                    .model = *model,
                    .current_train = train,
                    .eval_day = 900,
                    .nrmse = 0.2,
                    .drift = false,
                    .train_window = 14,
                    .rng = &rng};
  EXPECT_FALSE(scheme.on_step(ctx).has_value());
}

TEST(LeafScheme, MitigationInjectsFreshSamples) {
  LeafConfig lc;
  LeafScheme scheme(lc, 0.5);  // low dispersion: aggressive refresh
  scheme.reset();
  const auto model =
      models::make_model(models::ModelFamily::kGbdt, tiny_scale(), 1);
  const int anchor = cal::anchor_2018_07_01();
  const data::SupervisedSet train = featurizer().window(anchor - 13, anchor);
  model->fit(train.X, train.y);
  Rng rng(1);
  SchemeContext ctx{.featurizer = featurizer(),
                    .model = *model,
                    .current_train = train,
                    .eval_day = 1100,
                    .nrmse = 0.3,
                    .drift = true,
                    .train_window = 14,
                    .rng = &rng};
  const auto new_train = scheme.on_step(ctx);
  ASSERT_TRUE(new_train.has_value());
  std::size_t fresh = 0;
  for (int td : new_train->target_day)
    if (td > anchor + 180) ++fresh;
  EXPECT_GT(fresh, new_train->size() / 10);
  EXPECT_FALSE(scheme.last_groups().empty());
  EXPECT_GE(scheme.last_contrast(), 0.0);
  EXPECT_LE(scheme.last_contrast(), 1.0);
}

TEST(LeafScheme, NameEncodesGroupCount) {
  LeafConfig one;
  EXPECT_EQ(LeafScheme(one, 1.0).name(), "LEAF");
  LeafConfig three;
  three.num_groups = 3;
  EXPECT_EQ(LeafScheme(three, 1.0).name(), "LEAF(3)");
}

// --- scheme factory -----------------------------------------------------------

TEST(SchemeFactory, BuildsAllSpecs) {
  for (const char* spec :
       {"Static", "Naive7", "Naive30", "Naive365", "Triggered", "LEAF",
        "LEAF3", "LEAF5"}) {
    const auto scheme = make_scheme(spec, 1.0);
    ASSERT_NE(scheme, nullptr) << spec;
  }
  EXPECT_EQ(make_scheme("Naive30", 1.0)->name(), "Naive30");
  EXPECT_EQ(make_scheme("LEAF3", 1.0)->name(), "LEAF(3)");
}

TEST(SchemeFactory, RejectsUnknownSpecs) {
  EXPECT_THROW(make_scheme("Sometimes", 1.0), std::invalid_argument);
  EXPECT_THROW(make_scheme("NaiveX", 1.0), std::invalid_argument);
  EXPECT_THROW(make_scheme("LEAF0", 1.0), std::invalid_argument);
}

// --- evaluation engine ----------------------------------------------------------

TEST(Evaluation, ResultSeriesConsistent) {
  StaticScheme scheme;
  const EvalConfig cfg = tiny_config();
  const EvalResult r =
      run_scheme(featurizer(),
                 *models::make_model(models::ModelFamily::kRidge, tiny_scale(), 1),
                 scheme, cfg);
  ASSERT_FALSE(r.days.empty());
  EXPECT_EQ(r.days.size(), r.nrmse.size());
  EXPECT_EQ(r.days.size(), r.mean_ne.size());
  // Days ascend with the configured stride; first eval at anchor+horizon.
  EXPECT_EQ(r.days.front(), cal::anchor_2018_07_01() + cfg.horizon);
  for (std::size_t i = 1; i < r.days.size(); ++i)
    EXPECT_EQ(r.days[i] - r.days[i - 1], cfg.stride);
  for (double v : r.nrmse) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
  EXPECT_GT(r.ne_p95, 0.0);
}

TEST(Evaluation, NrmseMatchesManualComputation) {
  StaticScheme scheme;
  const EvalConfig cfg = tiny_config();
  const auto proto =
      models::make_model(models::ModelFamily::kRidge, tiny_scale(), 1);
  const EvalResult r = run_scheme(featurizer(), *proto, scheme, cfg);

  // Recreate the initial model and check one day by hand.
  const int anchor = cal::anchor_2018_07_01();
  const data::SupervisedSet train =
      featurizer().window(anchor - cfg.train_window + 1, anchor);
  const auto model = proto->clone_untrained();
  model->fit(train.X, train.y);
  const data::SupervisedSet test = featurizer().at_target_day(r.days[5]);
  const double manual = metrics::nrmse(model->predict(test.X), test.y,
                                       featurizer().norm_range());
  EXPECT_NEAR(r.nrmse[5], manual, 1e-12);
}

TEST(Evaluation, ObserverSeesEveryStep) {
  StaticScheme scheme;
  std::size_t calls = 0;
  const EvalResult r = run_scheme(
      featurizer(),
      *models::make_model(models::ModelFamily::kRidge, tiny_scale(), 1), scheme,
      tiny_config(),
      [&](int, double, bool, bool retrained) {
        ++calls;
        EXPECT_FALSE(retrained);
      });
  EXPECT_EQ(calls, r.days.size());
}

TEST(Evaluation, PredictionSinkReceivesTestSlices) {
  StaticScheme scheme;
  std::size_t total_preds = 0;
  const EvalResult r = run_scheme(
      featurizer(),
      *models::make_model(models::ModelFamily::kRidge, tiny_scale(), 1), scheme,
      tiny_config(), {},
      [&](int day, const data::SupervisedSet& test,
          std::span<const double> pred) {
        EXPECT_EQ(test.size(), pred.size());
        for (int td : test.target_day) EXPECT_EQ(td, day);
        total_preds += pred.size();
      });
  EXPECT_GE(total_preds, r.days.size());
}

TEST(Evaluation, DeterministicForSeed) {
  TriggeredScheme s1, s2;
  const auto model =
      models::make_model(models::ModelFamily::kGbdt, tiny_scale(), 3);
  const EvalResult a = run_scheme(featurizer(), *model, s1, tiny_config());
  const EvalResult b = run_scheme(featurizer(), *model, s2, tiny_config());
  EXPECT_EQ(a.retrain_days, b.retrain_days);
  EXPECT_EQ(a.nrmse, b.nrmse);
}

TEST(Evaluation, DeltaVsStaticSelfIsZero) {
  StaticScheme scheme;
  const EvalResult r =
      run_scheme(featurizer(),
                 *models::make_model(models::ModelFamily::kRidge, tiny_scale(), 1),
                 scheme, tiny_config());
  EXPECT_DOUBLE_EQ(delta_vs_static(r, r), 0.0);
}

TEST(Experiment, KpiDispersionMatchesStats) {
  const double d = kpi_dispersion(ds(), data::TargetKpi::kGDR);
  EXPECT_GT(d, 1.0);  // GDR is the most dispersed target
  EXPECT_GT(d, kpi_dispersion(ds(), data::TargetKpi::kDTP));
}

TEST(Experiment, MakeEvalConfigUsesScaleStride) {
  Scale s = tiny_scale();
  s.eval_stride_days = 3;
  const EvalConfig cfg = make_eval_config(s, 7);
  EXPECT_EQ(cfg.stride, 3);
  EXPECT_EQ(cfg.train_window, 14);
  EXPECT_EQ(cfg.horizon, 180);
  EXPECT_EQ(cfg.seed, 7u);
}

TEST(Experiment, CompareSchemesAveragesOverSeeds) {
  const std::vector<std::string> specs = {"Static", "Naive180"};
  const std::uint64_t seeds[] = {1, 2};
  const auto outcomes =
      compare_schemes(ds(), data::TargetKpi::kDVol, models::ModelFamily::kRidge,
                      tiny_scale(), specs, seeds);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].scheme, "Static");
  // Static vs static: delta 0 and 0 retrains.
  EXPECT_NEAR(outcomes[0].delta_pct, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(outcomes[0].retrains, 0.0);
  // Periodic scheme retrained.
  EXPECT_GT(outcomes[1].retrains, 0.0);
  EXPECT_GT(outcomes[0].static_nrmse, 0.0);
}

// --- EvalCache byte-bounded memoization -------------------------------------

bool same_set(const data::SupervisedSet& a, const data::SupervisedSet& b) {
  if (a.size() != b.size() || a.X.rows() != b.X.rows() ||
      a.X.cols() != b.X.cols())
    return false;
  for (std::size_t r = 0; r < a.X.rows(); ++r)
    for (std::size_t c = 0; c < a.X.cols(); ++c)
      if (a.X(r, c) != b.X(r, c)) return false;
  return a.y == b.y && a.feature_day == b.feature_day &&
         a.target_day == b.target_day && a.enb == b.enb;
}

TEST(EvalCache, MemoizedSlicesMatchFeaturizer) {
  EvalCache cache(featurizer());
  const int day = 600;
  const data::SupervisedSet& got = cache.at_target_day(day);
  EXPECT_TRUE(same_set(got, featurizer().at_target_day(day)));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  // Second request hits and returns the same object.
  const data::SupervisedSet& again = cache.at_target_day(day);
  EXPECT_EQ(&again, &got);
  EXPECT_EQ(cache.hits(), 1u);

  const data::SupervisedSet& win = cache.window(400, 413);
  EXPECT_TRUE(same_set(win, featurizer().window(400, 413)));
  EXPECT_EQ(&cache.window(400, 413), &win);
}

TEST(EvalCache, ByteBudgetBoundsMemoryNotCorrectness) {
  // A budget big enough for roughly one slice: everything past it must be
  // served pass-through (computed, correct, but not memoized).
  const data::SupervisedSet probe = featurizer().at_target_day(600);
  const std::size_t one_slice =
      probe.X.rows() * probe.X.cols() * sizeof(double) +
      probe.size() * (sizeof(double) + 3 * sizeof(int));
  EvalCache cache(featurizer(), one_slice + one_slice / 2);

  for (int day = 600; day < 640; day += 4) {
    const data::SupervisedSet& got = cache.at_target_day(day);
    EXPECT_TRUE(same_set(got, featurizer().at_target_day(day)))
        << "day " << day;
  }
  // The byte ledger never exceeds the budget even though we requested far
  // more data than fits.
  EXPECT_LE(cache.bytes(), one_slice + one_slice / 2);
  EXPECT_GT(cache.bytes(), 0u);

  // Overflow slices were not memoized: re-requesting the last day misses
  // again, while the first (memoized) day still hits.
  const std::size_t misses_before = cache.misses();
  cache.at_target_day(636);
  EXPECT_EQ(cache.misses(), misses_before + 1);
  const std::size_t hits_before = cache.hits();
  cache.at_target_day(600);
  EXPECT_EQ(cache.hits(), hits_before + 1);
}

TEST(EvalCache, ZeroBudgetStillServesCorrectSlices) {
  EvalCache cache(featurizer(), 0);
  for (int day = 600; day < 616; day += 4) {
    EXPECT_TRUE(same_set(cache.at_target_day(day),
                         featurizer().at_target_day(day)));
  }
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.hits(), 0u);  // nothing memoized, nothing to hit
}

}  // namespace
}  // namespace leaf::core
