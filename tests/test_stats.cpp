// Unit tests for the statistics kit (common/stats.hpp).
#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace leaf::stats {
namespace {

TEST(Stats, MeanBasic) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, MeanEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceKnownValue) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample variance with n-1 denominator = 32/7.
  EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
}

TEST(Stats, VarianceConstantIsZero) {
  const std::vector<double> v(10, 3.14);
  EXPECT_DOUBLE_EQ(variance(v), 0.0);
}

TEST(Stats, DispersionStdOverMean) {
  const std::vector<double> v = {1.0, 3.0};
  EXPECT_NEAR(dispersion(v), std::sqrt(2.0) / 2.0, 1e-12);
}

TEST(Stats, DispersionZeroMean) {
  const std::vector<double> v = {-1.0, 1.0};
  EXPECT_DOUBLE_EQ(dispersion(v), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> v = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min(v), -1.0);
  EXPECT_DOUBLE_EQ(max(v), 7.0);
}

TEST(Stats, QuantileMedianOdd) {
  const std::vector<double> v = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(Stats, QuantileExtremes) {
  const std::vector<double> v = {4.0, 2.0, 9.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
}

TEST(Stats, QuantileEdgesCount) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  const auto edges = quantile_edges(v, 4);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_LT(edges[0], edges[1]);
  EXPECT_LT(edges[1], edges[2]);
}

TEST(Stats, SkewnessSymmetricNearZero) {
  std::vector<double> v;
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) v.push_back(rng.normal());
  EXPECT_NEAR(skewness(v), 0.0, 0.05);
}

TEST(Stats, SkewnessLognormalPositive) {
  std::vector<double> v;
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) v.push_back(rng.lognormal(0.0, 1.0));
  EXPECT_GT(skewness(v), 2.0);
}

TEST(Stats, KurtosisNormalNearZero) {
  std::vector<double> v;
  Rng rng(2);
  for (int i = 0; i < 50000; ++i) v.push_back(rng.normal());
  EXPECT_NEAR(kurtosis(v), 0.0, 0.1);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectAntiCorrelation) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Stats, PearsonIndependentNearZero) {
  Rng rng(3);
  std::vector<double> x(10000), y(10000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.05);
}

TEST(Stats, PearsonConstantSideIsZero) {
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Stats, RanksWithTies) {
  const std::vector<double> v = {10.0, 20.0, 20.0, 30.0};
  const auto r = ranks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, SpearmanMonotoneNonlinear) {
  std::vector<double> x, y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.1 * i));  // monotone but nonlinear
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Stats, AutocorrelationPeriodicSignal) {
  std::vector<double> v;
  for (int i = 0; i < 700; ++i) v.push_back(std::sin(2.0 * M_PI * i / 7.0));
  EXPECT_NEAR(autocorrelation(v, 7), 1.0, 0.02);
  EXPECT_LT(autocorrelation(v, 3), 0.0);
}

TEST(Stats, AutocorrelationLagTooLarge) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(autocorrelation(v, 5), 0.0);
}

TEST(Stats, PeriodicityStrengthPureSinusoid) {
  std::vector<double> v;
  for (int i = 0; i < 770; ++i) v.push_back(std::sin(2.0 * M_PI * i / 7.0));
  EXPECT_GT(periodicity_strength(v, 7), 0.8);
}

TEST(Stats, PeriodicityStrengthWhiteNoiseLow) {
  Rng rng(5);
  std::vector<double> v(1000);
  for (auto& x : v) x = rng.normal();
  EXPECT_LT(periodicity_strength(v, 7), 0.05);
}

TEST(Stats, BurstinessFlatSeriesZero) {
  const std::vector<double> v(200, 1.0);
  EXPECT_DOUBLE_EQ(burstiness(v), 0.0);
}

TEST(Stats, BurstinessSpikySeriesPositive) {
  Rng rng(6);
  std::vector<double> v(500);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = 1.0 + 0.01 * rng.normal() + (i % 50 == 0 ? 5.0 : 0.0);
  EXPECT_GT(burstiness(v), 0.01);
}

TEST(Stats, KsStatisticIdenticalSamplesZero) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ks_statistic(a, a), 0.0);
}

TEST(Stats, KsStatisticDisjointIsOne) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {10.0, 11.0, 12.0};
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 1.0);
}

TEST(Stats, KsPValueSameDistributionHigh) {
  Rng rng(7);
  std::vector<double> a(200), b(200);
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  EXPECT_GT(ks_p_value(a, b), 0.05);
}

TEST(Stats, KsPValueShiftedDistributionLow) {
  Rng rng(7);
  std::vector<double> a(200), b(200);
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal(2.0, 1.0);
  EXPECT_LT(ks_p_value(a, b), 1e-6);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const auto [a, b] = linear_fit(x, y);
  EXPECT_NEAR(a, 3.0, 1e-9);
  EXPECT_NEAR(b, 2.0, 1e-9);
}

TEST(Stats, LinearFitConstantXZeroSlope) {
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  const auto [a, b] = linear_fit(x, y);
  EXPECT_DOUBLE_EQ(b, 0.0);
  EXPECT_DOUBLE_EQ(a, 2.0);
}

TEST(RunningStats, MatchesBatchComputation) {
  Rng rng(8);
  std::vector<double> v(1000);
  for (auto& x : v) x = rng.normal(5.0, 2.0);
  RunningStats rs;
  for (double x : v) rs.push(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(v), 1e-9);
}

TEST(RunningStats, PopReversesPush) {
  RunningStats rs;
  rs.push(1.0);
  rs.push(2.0);
  rs.push(3.0);
  rs.pop(2.0);
  EXPECT_EQ(rs.count(), 2u);
  EXPECT_NEAR(rs.mean(), 2.0, 1e-12);
  EXPECT_NEAR(rs.variance(), 2.0, 1e-12);  // var of {1,3}
}

TEST(RunningStats, ResetClearsState) {
  RunningStats rs;
  rs.push(10.0);
  rs.reset();
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

// Property sweep: KS p-value should fall monotonically (on average) as
// the distribution shift grows.
class KsShiftTest : public ::testing::TestWithParam<double> {};

TEST_P(KsShiftTest, LargerShiftLowerPValue) {
  const double shift = GetParam();
  Rng rng(9);
  std::vector<double> a(150), b(150);
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal(shift, 1.0);
  const double p = ks_p_value(a, b);
  if (shift >= 1.0) {
    EXPECT_LT(p, 0.001) << "shift=" << shift;
  } else if (shift == 0.0) {
    EXPECT_GT(p, 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, KsShiftTest,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace leaf::stats
