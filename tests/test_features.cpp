// Unit tests for featurization (data/features.hpp).
#include "data/features.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/calendar.hpp"
#include "common/rng.hpp"
#include "data/generator.hpp"

namespace leaf::data {
namespace {

Scale tiny_scale() {
  Scale s = Scale::for_level(Scale::Level::kSmall);
  s.fixed_enbs = 6;
  s.evolving_enbs_max = 10;
  s.num_kpis = 12;
  return s;
}

const CellularDataset& fixed_ds() {
  static const CellularDataset ds = generate_fixed_dataset(tiny_scale(), 42);
  return ds;
}

TEST(Featurizer, FeatureCountAndNames) {
  const Featurizer f(fixed_ds(), TargetKpi::kDVol);
  EXPECT_EQ(f.num_features(), fixed_ds().num_kpis() + 8);
  EXPECT_EQ(static_cast<int>(f.feature_names().size()), f.num_features());
  EXPECT_EQ(f.num_kpi_features(), fixed_ds().num_kpis());
  EXPECT_EQ(f.feature_names().front(), "pdcp_dl_datavol_mb");
  EXPECT_EQ(f.feature_names().back(), "area_rural");
}

TEST(Featurizer, WindowProducesOnePairPerEnbPerDay) {
  const Featurizer f(fixed_ds(), TargetKpi::kDVol);
  const SupervisedSet set = f.window(100, 104);
  EXPECT_EQ(set.size(), 5u * 6u);  // 5 days x 6 eNBs
  EXPECT_EQ(set.X.rows(), set.size());
  EXPECT_EQ(set.X.cols(), static_cast<std::size_t>(f.num_features()));
}

TEST(Featurizer, TargetIsHorizonAhead) {
  const Featurizer f(fixed_ds(), TargetKpi::kDVol, 180);
  const SupervisedSet set = f.window(50, 52);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(set.target_day[i], set.feature_day[i] + 180);
  }
}

TEST(Featurizer, TargetValueMatchesDataset) {
  const Featurizer f(fixed_ds(), TargetKpi::kCDR, 180);
  const SupervisedSet set = f.window(60, 60);
  const int col = fixed_ds().schema().target_column(TargetKpi::kCDR);
  for (std::size_t i = 0; i < set.size(); ++i) {
    const int day = set.target_day[i];
    // Locate the row of this eNB in the target day's logs.
    const auto enbs = fixed_ds().enb_indices_on_day(day);
    const auto it = std::find(enbs.begin(), enbs.end(), set.enb[i]);
    ASSERT_NE(it, enbs.end());
    const double expected = static_cast<double>(fixed_ds().log_on_day(
        day, static_cast<int>(it - enbs.begin()))[static_cast<std::size_t>(col)]);
    EXPECT_DOUBLE_EQ(set.y[i], expected);
  }
}

TEST(Featurizer, FeatureRowCopiesKpiLog) {
  const Featurizer f(fixed_ds(), TargetKpi::kDVol);
  const SupervisedSet set = f.window(70, 70);
  const auto log0 = fixed_ds().log_on_day(70, 0);
  for (int c = 0; c < fixed_ds().num_kpis(); ++c)
    EXPECT_DOUBLE_EQ(set.X(0, static_cast<std::size_t>(c)),
                     static_cast<double>(log0[static_cast<std::size_t>(c)]));
}

TEST(Featurizer, TemporalEncodingsAreUnitCircle) {
  const Featurizer f(fixed_ds(), TargetKpi::kDVol);
  const SupervisedSet set = f.window(70, 76);
  const std::size_t nk = static_cast<std::size_t>(f.num_kpi_features());
  for (std::size_t i = 0; i < set.size(); ++i) {
    const double dow_sin = set.X(i, nk);
    const double dow_cos = set.X(i, nk + 1);
    EXPECT_NEAR(dow_sin * dow_sin + dow_cos * dow_cos, 1.0, 1e-9);
    const double doy_sin = set.X(i, nk + 2);
    const double doy_cos = set.X(i, nk + 3);
    EXPECT_NEAR(doy_sin * doy_sin + doy_cos * doy_cos, 1.0, 1e-9);
  }
}

TEST(Featurizer, AreaOneHotSumsToOne) {
  const Featurizer f(fixed_ds(), TargetKpi::kDVol);
  const SupervisedSet set = f.window(70, 70);
  const std::size_t base = static_cast<std::size_t>(f.num_features()) - 3;
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_DOUBLE_EQ(
        set.X(i, base) + set.X(i, base + 1) + set.X(i, base + 2), 1.0);
  }
}

TEST(Featurizer, WindowClampsAtHorizonBoundary) {
  const Featurizer f(fixed_ds(), TargetKpi::kDVol, 180);
  const int last_valid = fixed_ds().num_days() - 1 - 180;
  const SupervisedSet set = f.window(last_valid - 1, last_valid + 100);
  for (std::size_t i = 0; i < set.size(); ++i)
    EXPECT_LE(set.target_day[i], fixed_ds().num_days() - 1);
  EXPECT_EQ(set.size(), 2u * 6u);  // only 2 valid feature days remain
}

TEST(Featurizer, AtTargetDayMatchesWindowPairs) {
  const Featurizer f(fixed_ds(), TargetKpi::kDVol, 180);
  const SupervisedSet a = f.at_target_day(400);
  const SupervisedSet b = f.window(220, 220);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.target_day[i], 400);
    EXPECT_DOUBLE_EQ(a.y[i], b.y[i]);
  }
}

TEST(Featurizer, AtTargetDayOutOfRangeEmpty) {
  const Featurizer f(fixed_ds(), TargetKpi::kDVol, 180);
  EXPECT_TRUE(f.at_target_day(100).empty());   // before first horizon
  EXPECT_TRUE(f.at_target_day(99999).empty()); // past the study
}

TEST(Featurizer, EvolvingDatasetOnlyPairsEnbsPresentOnBothDays) {
  const CellularDataset ds = generate_evolving_dataset(tiny_scale(), 42);
  const Featurizer f(ds, TargetKpi::kDVol, 180);
  // Near the start, fewer eNBs exist; pairs require presence at d and
  // d+180.
  const SupervisedSet set = f.window(10, 10);
  EXPECT_EQ(static_cast<int>(set.size()), ds.enbs_on_day(10));
  for (std::size_t i = 0; i < set.size(); ++i) {
    const auto enbs_t = ds.enb_indices_on_day(set.target_day[i]);
    EXPECT_TRUE(std::find(enbs_t.begin(), enbs_t.end(), set.enb[i]) !=
                enbs_t.end());
  }
}

TEST(Featurizer, NormRangePositiveAndMatchesDataset) {
  const Featurizer f(fixed_ds(), TargetKpi::kGDR);
  const auto [lo, hi] =
      fixed_ds().value_range(fixed_ds().schema().target_column(TargetKpi::kGDR));
  EXPECT_DOUBLE_EQ(f.norm_range(), hi - lo);
  EXPECT_GT(f.norm_range(), 0.0);
}

TEST(SupervisedSet, SubsetSelectsRows) {
  const Featurizer f(fixed_ds(), TargetKpi::kDVol);
  const SupervisedSet set = f.window(100, 101);
  const std::vector<std::size_t> rows = {0, 3, 3};
  const SupervisedSet sub = set.subset(rows);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.y[0], set.y[0]);
  EXPECT_DOUBLE_EQ(sub.y[1], set.y[3]);
  EXPECT_DOUBLE_EQ(sub.y[2], set.y[3]);
  EXPECT_EQ(sub.enb[1], set.enb[3]);
}

TEST(SupervisedSet, AppendConcatenates) {
  const Featurizer f(fixed_ds(), TargetKpi::kDVol);
  SupervisedSet a = f.window(100, 100);
  const SupervisedSet b = f.window(101, 101);
  const std::size_t na = a.size();
  a.append(b);
  EXPECT_EQ(a.size(), na + b.size());
  EXPECT_DOUBLE_EQ(a.y[na], b.y[0]);
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  Matrix x(100, 2);
  Rng rng(1);
  for (std::size_t r = 0; r < 100; ++r) {
    x(r, 0) = rng.normal(5.0, 3.0);
    x(r, 1) = rng.normal(-2.0, 0.5);
  }
  Standardizer s;
  s.fit(x);
  const Matrix z = s.transform(x);
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::size_t r = 0; r < 100; ++r) mean += z(r, c);
    mean /= 100.0;
    for (std::size_t r = 0; r < 100; ++r)
      var += (z(r, c) - mean) * (z(r, c) - mean);
    var /= 100.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
}

TEST(Standardizer, ConstantColumnMapsToZero) {
  Matrix x(10, 1, 7.0);
  Standardizer s;
  s.fit(x);
  const Matrix z = s.transform(x);
  for (std::size_t r = 0; r < 10; ++r) EXPECT_DOUBLE_EQ(z(r, 0), 0.0);
}

TEST(Standardizer, TransformRowMatchesTransform) {
  Matrix x(20, 3);
  Rng rng(2);
  for (auto& v : x.flat()) v = rng.normal();
  Standardizer s;
  s.fit(x);
  const Matrix z = s.transform(x);
  std::vector<double> row(3);
  s.transform_row(x.row(5), row);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(row[c], z(5, c));
}

}  // namespace
}  // namespace leaf::data
