// Integration tests: the full LEAF pipeline on small synthetic datasets.
//
// These check the end-to-end *claims* rather than units: drift exists and
// is detected near the known events, LEAF mitigates it, and the explainer
// recovers the planted feature structure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/calendar.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "explain/grouping.hpp"
#include "explain/importance.hpp"
#include "models/factory.hpp"

namespace leaf {
namespace {

Scale itest_scale() {
  Scale s = Scale::for_level(Scale::Level::kSmall);
  s.fixed_enbs = 12;
  s.num_kpis = 24;
  s.gbdt_trees = 25;
  s.eval_stride_days = 3;
  return s;
}

const data::CellularDataset& ds() {
  static const data::CellularDataset d =
      data::generate_fixed_dataset(itest_scale(), 42);
  return d;
}

TEST(Integration, StaticModelDrifts) {
  // The paper's core premise: a model trained mid-2018 degrades over the
  // years.  Compare first-year vs last-year NRMSE of the static model.
  const data::Featurizer f(ds(), data::TargetKpi::kDVol);
  core::StaticScheme scheme;
  const auto model = models::make_model(models::ModelFamily::kGbdt,
                                        itest_scale(), 1);
  const core::EvalResult r =
      core::run_scheme(f, *model, scheme, core::make_eval_config(itest_scale()));
  ASSERT_GT(r.days.size(), 100u);
  const std::size_t q = r.nrmse.size() / 4;
  const double early = stats::mean(
      std::span<const double>(r.nrmse.data(), q));
  const double late = stats::mean(
      std::span<const double>(r.nrmse.data() + 3 * q, q));
  EXPECT_GT(late, early * 1.3) << "static model should degrade over time";
}

TEST(Integration, DriftDetectedDuringCovidEra) {
  const data::Featurizer f(ds(), data::TargetKpi::kDVol);
  core::StaticScheme scheme;
  const auto model = models::make_model(models::ModelFamily::kGbdt,
                                        itest_scale(), 1);
  const core::EvalResult r =
      core::run_scheme(f, *model, scheme, core::make_eval_config(itest_scale()));
  ASSERT_FALSE(r.drift_days.empty());
  // The paper reports that "the beginning and end of the COVID-19
  // quarantine period are also effectively detected": require at least
  // one detection inside the lockdown-to-recovery era.  (The exact onset
  // date can be absorbed by a window reset from an earlier endogenous
  // event — e.g. the Dec 2019 software upgrade — so the check covers the
  // whole era rather than a fixed lag.)
  const int covid = cal::covid_start();
  const int era_end = cal::covid_recovery_end() + 60;
  const bool in_era =
      std::any_of(r.drift_days.begin(), r.drift_days.end(),
                  [&](int d) { return d >= covid && d <= era_end; });
  EXPECT_TRUE(in_era);
}

TEST(Integration, LeafMitigatesLowDispersionKpis) {
  // ΔNRMSE̅ of LEAF vs static must be clearly negative for DVol (the
  // paper's headline result), averaged over seeds for stability.
  const std::vector<std::string> specs = {"LEAF"};
  const std::uint64_t seeds[] = {11, 22};
  const auto outcomes = core::compare_schemes(
      ds(), data::TargetKpi::kDVol, models::ModelFamily::kGbdt, itest_scale(),
      specs, seeds);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_LT(outcomes[0].delta_pct, -5.0);
  EXPECT_GT(outcomes[0].retrains, 0.0);
}

TEST(Integration, LeafNeverCatastrophicallyWorse) {
  // Across all six targets, LEAF's seed-averaged ΔNRMSE̅ stays far from
  // the blow-ups triggered retraining can produce (paper: +44.6% GDR).
  const std::vector<std::string> specs = {"LEAF"};
  const std::uint64_t seeds[] = {11};
  for (data::TargetKpi t : data::kAllTargets) {
    const auto outcomes = core::compare_schemes(
        ds(), t, models::ModelFamily::kGbdt, itest_scale(), specs, seeds);
    // "Catastrophic" = the +44% class of blow-up the paper reports for
    // triggered retraining on GDR; a small single-seed regression at this
    // tiny test scale is tolerated.
    EXPECT_LT(outcomes[0].delta_pct, 20.0) << data::to_string(t);
  }
}

TEST(Integration, ExplainerRecoversVolumeGroupForDVolDrift) {
  // Train static, explain errors on the last 120 days: group 1's
  // representative should be anchored to the volume latent (the paper's
  // sanity check: "the most representative feature of the 1st group is
  // pdcp_dl_datavol_mb, the history of downlink volume itself").
  const data::Featurizer f(ds(), data::TargetKpi::kDVol);
  const int anchor = cal::anchor_2018_07_01();
  const data::SupervisedSet train = f.window(anchor - 13, anchor);
  const auto model = models::make_model(models::ModelFamily::kGbdt,
                                        itest_scale(), 1);
  model->fit(train.X, train.y);

  const int last_fd = ds().num_days() - 1 - f.horizon();
  const data::SupervisedSet recent = f.window(last_fd - 120, last_fd);
  Rng rng(5);
  const auto importance = explain::permutation_importance(
      *model, recent.X, recent.y, f.norm_range(), rng);
  explain::GroupingConfig gcfg;
  gcfg.max_groups = 3;
  const auto groups = explain::group_features(recent.X, importance, gcfg);
  ASSERT_FALSE(groups.empty());

  // The representative of group 1 must be a KPI column anchored on DVol
  // (either the volume history itself or a tightly coupled traffic
  // companion).
  const int rep = groups[0].representative;
  ASSERT_LT(rep, ds().num_kpis());
  EXPECT_EQ(static_cast<int>(ds().schema().spec(rep).anchor),
            static_cast<int>(data::LatentAnchor::kDVol))
      << "representative was " << f.feature_names()[static_cast<std::size_t>(rep)];
}

TEST(Integration, PuDataLossVisibleInErrorStream) {
  const data::Featurizer f(ds(), data::TargetKpi::kPU);
  core::StaticScheme scheme;
  const auto model = models::make_model(models::ModelFamily::kGbdt,
                                        itest_scale(), 1);
  const core::EvalResult r =
      core::run_scheme(f, *model, scheme, core::make_eval_config(itest_scale()));
  // Mean NRMSE inside the loss window well above the pre-loss level.
  double in_loss = 0.0, before = 0.0;
  int n_in = 0, n_before = 0;
  for (std::size_t i = 0; i < r.days.size(); ++i) {
    if (r.days[i] >= cal::pu_loss_start() + 14 &&
        r.days[i] <= cal::pu_loss_end()) {
      in_loss += r.nrmse[i];
      ++n_in;
    } else if (r.days[i] < cal::pu_loss_start()) {
      before += r.nrmse[i];
      ++n_before;
    }
  }
  ASSERT_GT(n_in, 0);
  ASSERT_GT(n_before, 0);
  // The PU normalizer includes extreme burst maxima, which dilutes the
  // relative size of the outage error — require a clear (1.4x) elevation
  // rather than a specific multiple.
  EXPECT_GT(in_loss / n_in, 1.4 * before / n_before);
}

TEST(Integration, EvolvingDatasetRunsEndToEnd) {
  Scale s = itest_scale();
  s.evolving_enbs_max = 20;
  const data::CellularDataset evolving = data::generate_evolving_dataset(s, 42);
  const data::Featurizer f(evolving, data::TargetKpi::kREst);
  const auto scheme =
      core::make_scheme("LEAF", core::kpi_dispersion(evolving, data::TargetKpi::kREst));
  const auto model = models::make_model(models::ModelFamily::kGbdt, s, 1);
  const core::EvalResult r =
      core::run_scheme(f, *model, *scheme, core::make_eval_config(s));
  EXPECT_GT(r.days.size(), 100u);
  for (double v : r.nrmse) EXPECT_TRUE(std::isfinite(v));
}

TEST(Integration, OverestimationDuringLockdown) {
  // Fig. 5a's key read: during the lockdown the static model's mean
  // signed NE is positive (overestimation — people moved to broadband).
  const data::Featurizer f(ds(), data::TargetKpi::kDVol);
  core::StaticScheme scheme;
  const auto model = models::make_model(models::ModelFamily::kGbdt,
                                        itest_scale(), 1);
  const core::EvalResult r =
      core::run_scheme(f, *model, scheme, core::make_eval_config(itest_scale()));
  double ne = 0.0;
  int n = 0;
  for (std::size_t i = 0; i < r.days.size(); ++i) {
    if (r.days[i] >= cal::covid_start() + 21 &&
        r.days[i] <= cal::day_index(cal::Date{2020, 9, 1})) {
      ne += r.mean_ne[i];
      ++n;
    }
  }
  ASSERT_GT(n, 0);
  EXPECT_GT(ne / n, 0.0);
}

}  // namespace
}  // namespace leaf
