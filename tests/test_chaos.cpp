// Tests for leaf::chaos and the leaf::serve supervision layer it
// exercises: config parsing, decision determinism, shard fault isolation
// (the healthy subset of a faulted fleet is byte-identical to an
// unfaulted run), bounded-retry recovery, quarantine, the retrain
// circuit breaker, snapshot generation retention, and last-known-good
// per-shard rollback.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "core/breaker.hpp"
#include "data/generator.hpp"
#include "obs/metrics.hpp"
#include "par/parallel.hpp"
#include "serve/runtime.hpp"
#include "snapshot_fault_helpers.hpp"

namespace leaf {
namespace {

// ---- ChaosConfig parsing -------------------------------------------------

TEST(ChaosConfig, ParsesFullSpec) {
  const chaos::ChaosConfig cfg = chaos::ChaosConfig::parse(
      "seed=7,shards=0+2+5,step-throw=0.25,step-throw-before=12,"
      "retrain-storm=1,slow=0.5,slow-ms=3,snapshot-corrupt=0.1,"
      "snapshot-partial=0.2");
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_EQ(cfg.shards, (std::vector<int>{0, 2, 5}));
  EXPECT_DOUBLE_EQ(cfg.step_throw, 0.25);
  EXPECT_EQ(cfg.step_throw_before, 12u);
  EXPECT_DOUBLE_EQ(cfg.retrain_storm, 1.0);
  EXPECT_DOUBLE_EQ(cfg.slow, 0.5);
  EXPECT_EQ(cfg.slow_ms, 3);
  EXPECT_DOUBLE_EQ(cfg.snapshot_corrupt, 0.1);
  EXPECT_DOUBLE_EQ(cfg.snapshot_partial, 0.2);
  EXPECT_TRUE(cfg.any());
  // The canonical string round-trips.
  const chaos::ChaosConfig again =
      chaos::ChaosConfig::parse(cfg.to_string());
  EXPECT_EQ(again.to_string(), cfg.to_string());
}

TEST(ChaosConfig, EmptySpecDisablesEverything) {
  const chaos::ChaosConfig cfg = chaos::ChaosConfig::parse("");
  EXPECT_FALSE(cfg.any());
  EXPECT_TRUE(cfg.shards.empty());
}

TEST(ChaosConfig, RejectsMalformedSpecs) {
  EXPECT_THROW(chaos::ChaosConfig::parse("step-throw=1.5"),
               std::invalid_argument);
  EXPECT_THROW(chaos::ChaosConfig::parse("step-throw=-0.1"),
               std::invalid_argument);
  EXPECT_THROW(chaos::ChaosConfig::parse("step-throw=abc"),
               std::invalid_argument);
  EXPECT_THROW(chaos::ChaosConfig::parse("warp-core-breach=1"),
               std::invalid_argument);
  EXPECT_THROW(chaos::ChaosConfig::parse("step-throw"),
               std::invalid_argument);
  EXPECT_THROW(chaos::ChaosConfig::parse("shards="), std::invalid_argument);
}

TEST(ChaosConfig, ReadsEnvironment) {
  ::setenv("LEAF_CHAOS", "seed=3,step-throw=0.5", 1);
  const chaos::ChaosConfig cfg = chaos::ChaosConfig::from_env();
  ::unsetenv("LEAF_CHAOS");
  EXPECT_EQ(cfg.seed, 3u);
  EXPECT_DOUBLE_EQ(cfg.step_throw, 0.5);
  EXPECT_FALSE(chaos::ChaosConfig::from_env().any());
}

// ---- Engine determinism --------------------------------------------------

TEST(ChaosEngine, DecisionsArePureFunctionsOfCoordinates) {
  const chaos::ChaosConfig cfg =
      chaos::ChaosConfig::parse("seed=11,step-throw=0.3,retrain-storm=0.2");
  const chaos::Engine a(cfg), b(cfg);
  int fired = 0;
  for (int shard = 0; shard < 4; ++shard) {
    for (std::uint64_t step = 0; step < 200; ++step) {
      EXPECT_EQ(a.throw_step(shard, step), b.throw_step(shard, step));
      EXPECT_EQ(a.retrain_storm(shard, step), b.retrain_storm(shard, step));
      if (a.throw_step(shard, step)) ++fired;
    }
  }
  // ~0.3 * 800 decisions; loose bounds, deterministic in practice.
  EXPECT_GT(fired, 100);
  EXPECT_LT(fired, 400);
  // A different seed gives a different schedule.
  chaos::ChaosConfig reseeded = cfg;
  reseeded.seed = 12;
  const chaos::Engine c(reseeded);
  int diverged = 0;
  for (std::uint64_t step = 0; step < 200; ++step)
    if (a.throw_step(0, step) != c.throw_step(0, step)) ++diverged;
  EXPECT_GT(diverged, 0);
}

TEST(ChaosEngine, TargetSetRestrictsFaults) {
  const chaos::ChaosConfig cfg =
      chaos::ChaosConfig::parse("shards=1+3,step-throw=1");
  const chaos::Engine e(cfg);
  EXPECT_FALSE(e.targets(0));
  EXPECT_TRUE(e.targets(1));
  EXPECT_FALSE(e.targets(2));
  EXPECT_TRUE(e.targets(3));
  for (std::uint64_t step = 0; step < 20; ++step) {
    EXPECT_TRUE(e.throw_step(1, step));
    EXPECT_FALSE(e.throw_step(0, step));
  }
  // corrupt_target only ever picks in-range configured targets.
  for (std::uint64_t gen = 1; gen < 20; ++gen) {
    const int t = e.corrupt_target(8, gen);
    EXPECT_TRUE(t == 1 || t == 3) << "gen " << gen;
  }
}

TEST(ChaosEngine, StepThrowBeforeBoundsTheFaultWindow) {
  const chaos::ChaosConfig cfg =
      chaos::ChaosConfig::parse("step-throw=1,step-throw-before=5");
  const chaos::Engine e(cfg);
  for (std::uint64_t step = 0; step < 5; ++step)
    EXPECT_TRUE(e.throw_step(0, step));
  for (std::uint64_t step = 5; step < 50; ++step)
    EXPECT_FALSE(e.throw_step(0, step));
}

// ---- RetrainBreaker FSM --------------------------------------------------

TEST(RetrainBreaker, TripsOpenAndRecloses) {
  core::RetrainBreaker b(core::BreakerConfig{
      .max_retrains = 2, .window_days = 10, .cooldown_days = 20});
  using State = core::RetrainBreaker::State;
  EXPECT_TRUE(b.allow(100));
  EXPECT_TRUE(b.allow(101));
  EXPECT_EQ(b.state(), State::kClosed);
  EXPECT_FALSE(b.allow(102));  // third request inside the window: trips
  EXPECT_EQ(b.state(), State::kOpen);
  EXPECT_EQ(b.trips(), 1);
  EXPECT_EQ(b.open_until(), 122);
  EXPECT_FALSE(b.allow(110));  // still cooling down
  EXPECT_EQ(b.suppressed(), 2);  // the tripping request + the one above
  EXPECT_TRUE(b.allow(122));  // probe after cooldown
  EXPECT_EQ(b.state(), State::kClosed);
}

TEST(RetrainBreaker, HalfOpenRetripsUnderSustainedStorm) {
  core::RetrainBreaker b(core::BreakerConfig{
      .max_retrains = 1, .window_days = 10, .cooldown_days = 5});
  using State = core::RetrainBreaker::State;
  EXPECT_TRUE(b.allow(0));
  EXPECT_FALSE(b.allow(1));
  EXPECT_EQ(b.state(), State::kOpen);
  EXPECT_TRUE(b.allow(6));   // probe allowed
  EXPECT_FALSE(b.allow(7));  // storm persists: re-trips
  EXPECT_EQ(b.state(), State::kOpen);
  EXPECT_EQ(b.trips(), 2);
}

TEST(RetrainBreaker, DisabledBreakerAlwaysAllows) {
  core::RetrainBreaker b(core::BreakerConfig{});  // max_retrains = 0
  for (int day = 0; day < 50; ++day) EXPECT_TRUE(b.allow(day));
  EXPECT_EQ(b.trips(), 0);
}

TEST(RetrainBreaker, StateRoundTripsAndValidates) {
  const core::BreakerConfig cfg{
      .max_retrains = 2, .window_days = 10, .cooldown_days = 20};
  core::RetrainBreaker b(cfg);
  b.allow(5);
  b.allow(6);
  b.allow(7);  // tripped
  io::Serializer out;
  b.save_state(out);
  core::RetrainBreaker restored(cfg);
  io::Deserializer in(out.bytes());
  restored.load_state(in);
  EXPECT_EQ(restored.state(), b.state());
  EXPECT_EQ(restored.trips(), b.trips());
  EXPECT_EQ(restored.open_until(), b.open_until());
  // A breaker snapshot only restores into the same configuration.
  core::RetrainBreaker other(core::BreakerConfig{
      .max_retrains = 3, .window_days = 10, .cooldown_days = 20});
  io::Deserializer in2(out.bytes());
  leaf::testing::expect_snapshot_error([&] { other.load_state(in2); },
                                       "breaker config mismatch");
}

// ---- fleet supervision ---------------------------------------------------

struct ChaosFixture : ::testing::Test {
  Scale scale = Scale::for_level(Scale::Level::kSmall);
  data::CellularDataset ds = data::generate_fixed_dataset(scale, 42);

  /// Restores the default thread count even if a test fails mid-way.
  struct ThreadGuard {
    ~ThreadGuard() { par::set_threads(0); }
  };

  /// Eight shards across three KPIs (mostly Ridge: cheap to fit).
  static std::vector<serve::ShardSpec> fleet8() {
    using data::TargetKpi;
    using models::ModelFamily;
    return {{TargetKpi::kDVol, ModelFamily::kRidge, "Triggered", 0},
            {TargetKpi::kPU, ModelFamily::kRidge, "LEAF", 0},
            {TargetKpi::kDTP, ModelFamily::kRidge, "Naive30", 0},
            {TargetKpi::kDVol, ModelFamily::kGbdt, "Static", 0},
            {TargetKpi::kPU, ModelFamily::kRidge, "Triggered", 0},
            {TargetKpi::kDTP, ModelFamily::kRidge, "Static", 0},
            {TargetKpi::kDVol, ModelFamily::kRidge, "Naive30", 0},
            {TargetKpi::kPU, ModelFamily::kRidge, "Static", 0}};
  }

  static serve::SupervisorConfig with_chaos(const std::string& spec) {
    serve::SupervisorConfig sup;
    sup.chaos = chaos::ChaosConfig::parse(spec);
    return sup;
  }

  std::string temp_dir(const std::string& leaf) const {
    const std::string dir = ::testing::TempDir() + "leaf_chaos_" + leaf;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
  }

  static void expect_identical(const core::EvalResult& a,
                               const core::EvalResult& b) {
    EXPECT_EQ(a.days, b.days);
    EXPECT_EQ(a.nrmse, b.nrmse);
    EXPECT_EQ(a.mean_ne, b.mean_ne);
    EXPECT_EQ(a.retrain_days, b.retrain_days);
    EXPECT_EQ(a.drift_days, b.drift_days);
    EXPECT_EQ(a.ne_p95, b.ne_p95);
  }

  /// Masked JSONL of the drift events of the given shards only.
  static std::string events_of(const serve::FleetRuntime& fleet,
                               const std::vector<int>& shards) {
    std::vector<obs::Event> kept;
    for (const obs::Event& e : fleet.merged_events())
      for (int s : shards)
        if (e.shard == s) kept.push_back(e);
    return obs::EventLog::to_jsonl(kept, /*with_timing=*/false);
  }
};

// The isolation invariant: permanently fault 2 of 8 shards; at 1 and 4
// worker threads the fleet (a) completes, (b) quarantines exactly those
// two shards, and (c) leaves every healthy shard's EvalResult and masked
// event stream byte-identical both across thread counts and to a fleet
// that never saw any chaos.
TEST_F(ChaosFixture, FaultedShardsAreIsolatedAtAnyThreadCount) {
  ThreadGuard guard;
  const std::string spec = "seed=5,shards=2+5,step-throw=1";
  const std::vector<int> faulted = {2, 5};
  const std::vector<int> healthy = {0, 1, 3, 4, 6, 7};

  par::set_threads(1);
  serve::FleetRuntime clean(ds, scale, fleet8());
  clean.run_to_end();

  serve::FleetRuntime a(ds, scale, fleet8(), 2024, with_chaos(spec));
  a.run_to_end();

  par::set_threads(4);
  serve::FleetRuntime b(ds, scale, fleet8(), 2024, with_chaos(spec));
  b.run_to_end();

  for (serve::FleetRuntime* fleet : {&a, &b}) {
    EXPECT_TRUE(fleet->done());
    const serve::ServeStats st = fleet->stats();
    EXPECT_EQ(st.shards_quarantined, 2u);
    for (int s : faulted) {
      EXPECT_EQ(st.shards[s].health, serve::ShardHealth::kQuarantined);
      EXPECT_GT(st.shards[s].faults, 0);
      EXPECT_FALSE(st.shards[s].last_error.empty());
      EXPECT_EQ(st.shards[s].days_evaluated, 0);  // faulted from step one
    }
    for (int s : healthy)
      EXPECT_EQ(st.shards[s].health, serve::ShardHealth::kHealthy);
  }

  // (c): healthy shards — byte-identical across thread counts and to the
  // chaos-free run.
  const auto ra = a.results(), rb = b.results(), rc = clean.results();
  for (int s : healthy) {
    SCOPED_TRACE("shard " + std::to_string(s));
    expect_identical(ra[s], rb[s]);
    expect_identical(ra[s], rc[s]);
  }
  if (obs::kCompiledIn) {
    EXPECT_FALSE(events_of(a, healthy).empty());
    EXPECT_EQ(events_of(a, healthy), events_of(b, healthy));
    EXPECT_EQ(events_of(a, healthy), events_of(clean, healthy));
    // The full supervision stream is itself deterministic across threads.
    EXPECT_EQ(a.supervision_jsonl(false), b.supervision_jsonl(false));
    EXPECT_NE(a.supervision_jsonl(false).find("shard_quarantined"),
              std::string::npos);
  }
}

// A transient fault (chaos stops injecting after fleet step 2) is retried
// with backoff and the shard recovers: FAULTED → HEALTHY, and because a
// pre-step throw never touches shard state, its final result is identical
// to a run that never faulted.
TEST_F(ChaosFixture, TransientFaultRecoversWithBackoff) {
  serve::FleetRuntime clean(ds, scale, fleet8());
  clean.run_to_end();

  serve::FleetRuntime fleet(
      ds, scale, fleet8(), 2024,
      with_chaos("shards=0,step-throw=1,step-throw-before=2"));
  fleet.run_to_end();

  const serve::ServeStats st = fleet.stats();
  EXPECT_EQ(st.shards[0].health, serve::ShardHealth::kHealthy);
  // One fault at fleet step 0; step 1 is spent in backoff (so the fault
  // window has closed by the retry at step 2, which succeeds).
  EXPECT_EQ(st.shards[0].faults, 1);
  EXPECT_EQ(st.shards[0].consecutive_failures, 0);
  EXPECT_EQ(st.shards_quarantined, 0u);
  EXPECT_TRUE(fleet.done());
  for (std::size_t s = 0; s < 8; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    expect_identical(fleet.results()[s], clean.results()[s]);
  }
  if (obs::kCompiledIn) {
    const std::string sup = fleet.supervision_jsonl(false);
    EXPECT_NE(sup.find("shard_faulted"), std::string::npos);
    EXPECT_NE(sup.find("shard_recovered"), std::string::npos);
    EXPECT_EQ(sup.find("shard_quarantined"), std::string::npos);
  }
}

// Exponential backoff in fleet steps: with base 1 and faults at every
// attempt, attempts land at steps 0, 2, 5, 10 (backoff 2^(k-1) plus one),
// after which the retry budget (max_retries = 3) is spent and the shard
// quarantines.
TEST_F(ChaosFixture, RetryBudgetEscalatesToQuarantine) {
  serve::SupervisorConfig sup =
      with_chaos("shards=3,step-throw=1");
  sup.recovery.max_retries = 3;
  sup.recovery.backoff_base_steps = 1;
  serve::FleetRuntime fleet(ds, scale, fleet8(), 2024, sup);
  fleet.run_to_end();

  const serve::ServeStats st = fleet.stats();
  EXPECT_EQ(st.shards[3].health, serve::ShardHealth::kQuarantined);
  EXPECT_EQ(st.shards[3].faults, 1 + sup.recovery.max_retries);
  EXPECT_EQ(st.total_faults, 4);
  EXPECT_TRUE(fleet.done());  // quarantine never blocks fleet completion
}

// Retrain-storm chaos drives the circuit breaker: requests beyond the
// window trip it OPEN (suppressed retrains, frozen model), the cooldown
// half-opens it, and the whole trajectory is thread-count deterministic.
TEST_F(ChaosFixture, RetrainStormTripsBreakerDeterministically) {
  ThreadGuard guard;
  serve::SupervisorConfig sup = with_chaos("shards=1,retrain-storm=1");
  sup.breaker =
      core::BreakerConfig{.max_retrains = 3, .window_days = 30,
                          .cooldown_days = 45};

  par::set_threads(1);
  serve::FleetRuntime a(ds, scale, fleet8(), 2024, sup);
  a.run_to_end();
  par::set_threads(4);
  serve::FleetRuntime b(ds, scale, fleet8(), 2024, sup);
  b.run_to_end();

  const serve::ServeStats st = a.stats();
  EXPECT_GE(st.shards[1].breaker_trips, 1);
  EXPECT_GT(st.shards[1].suppressed_retrains, 0);
  EXPECT_GT(st.total_suppressed_retrains, 0);
  // Shards the storm does not target keep a closed, untouched breaker.
  EXPECT_EQ(st.shards[0].breaker_trips, 0);
  EXPECT_EQ(st.shards[0].breaker_state, "closed");

  const serve::ServeStats st_b = b.stats();
  EXPECT_EQ(st_b.shards[1].breaker_trips, st.shards[1].breaker_trips);
  EXPECT_EQ(st_b.shards[1].suppressed_retrains,
            st.shards[1].suppressed_retrains);
  EXPECT_EQ(st_b.shards[1].retrains, st.shards[1].retrains);
  if (obs::kCompiledIn) {
    EXPECT_EQ(a.supervision_jsonl(false), b.supervision_jsonl(false));
    EXPECT_NE(a.supervision_jsonl(false).find("breaker_open"),
              std::string::npos);
  }
  EXPECT_EQ(a.scrape(false), b.scrape(false));
}

// Suppressed retrains change the trajectory only of the stormed shard;
// every other shard matches the chaos-free run (breaker decisions are
// shard-local).
TEST_F(ChaosFixture, BreakerIsShardLocal) {
  serve::FleetRuntime clean(ds, scale, fleet8());
  clean.run_to_end();
  serve::SupervisorConfig sup = with_chaos("shards=4,retrain-storm=1");
  sup.breaker = core::BreakerConfig{.max_retrains = 2, .window_days = 20,
                                    .cooldown_days = 30};
  serve::FleetRuntime stormed(ds, scale, fleet8(), 2024, sup);
  stormed.run_to_end();
  for (int s : {0, 1, 2, 3, 5, 6, 7}) {
    SCOPED_TRACE("shard " + std::to_string(s));
    expect_identical(stormed.results()[s], clean.results()[s]);
  }
}

// ---- snapshot generations, retention, rollback ---------------------------

TEST_F(ChaosFixture, SnapshotRetentionPrunesOldGenerations) {
  serve::SupervisorConfig sup;
  sup.snapshot_keep = 2;
  serve::FleetRuntime fleet(ds, scale, fleet8(), 2024, sup);
  const std::string dir = temp_dir("retention");
  for (int i = 0; i < 4; ++i) {
    fleet.run_steps(1);
    EXPECT_GT(fleet.snapshot(dir), 0u);
  }
  EXPECT_EQ(serve::FleetRuntime::snapshot_generations(dir),
            (std::vector<std::uint64_t>{3, 4}));
  // The newest retained generation restores cleanly.
  serve::FleetRuntime revived(ds, scale, fleet8(), 2024, sup);
  revived.restore(dir);
  EXPECT_EQ(revived.steps_run(), 4u);
  EXPECT_EQ(revived.stats().snapshot_fallbacks, 0);
}

// Corrupting one shard's section in the newest generation rolls exactly
// that shard back to the previous generation; the others restore from the
// newest, and the divergence-free replay brings the fleet to the same
// final results as an uninterrupted run.
TEST_F(ChaosFixture, CorruptNewestGenerationFallsBackPerShard) {
  serve::FleetRuntime uninterrupted(ds, scale, fleet8());
  uninterrupted.run_to_end();

  serve::FleetRuntime victim(ds, scale, fleet8());
  victim.run_steps(2);
  const std::string dir = temp_dir("rollback");
  ASSERT_GT(victim.snapshot(dir), 0u);  // gen 1
  victim.run_steps(2);
  ASSERT_GT(victim.snapshot(dir), 0u);  // gen 2

  // Rot on disk: flip a bit in shard 6's section of the newest generation.
  const std::string newest = dir + "/fleet-000002.leafsnap";
  std::vector<std::uint8_t> bytes = leaf::testing::read_raw(newest);
  ASSERT_TRUE(leaf::testing::corrupt_section_payload(bytes, "shard6"));
  leaf::testing::write_raw(newest, bytes);

  serve::FleetRuntime revived(ds, scale, fleet8());
  revived.restore(dir);
  EXPECT_EQ(revived.steps_run(), 4u);  // anchored at the newest generation
  EXPECT_EQ(revived.stats().snapshot_fallbacks, 1);
  if (obs::kCompiledIn) {
    const std::string sup = revived.supervision_jsonl(false);
    EXPECT_NE(sup.find("snapshot_fallback"), std::string::npos);
    EXPECT_NE(sup.find("\"shard\": 6"), std::string::npos);
  }
  revived.run_to_end();
  for (std::size_t s = 0; s < 8; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    expect_identical(revived.results()[s], uninterrupted.results()[s]);
  }
}

// When a shard's section is damaged in *every* retained generation, the
// restore fails with a SnapshotError naming the shard — and leaves the
// target runtime unharmed.
TEST_F(ChaosFixture, ShardUnreadableEverywhereFailsRestore) {
  serve::FleetRuntime victim(ds, scale, fleet8());
  victim.run_steps(1);
  const std::string dir = temp_dir("dead_shard");
  ASSERT_GT(victim.snapshot(dir), 0u);
  victim.run_steps(1);
  ASSERT_GT(victim.snapshot(dir), 0u);
  for (const char* name : {"fleet-000001.leafsnap", "fleet-000002.leafsnap"}) {
    const std::string path = dir + "/" + name;
    std::vector<std::uint8_t> bytes = leaf::testing::read_raw(path);
    ASSERT_TRUE(leaf::testing::corrupt_section_payload(bytes, "shard0"));
    leaf::testing::write_raw(path, bytes);
  }
  serve::FleetRuntime revived(ds, scale, fleet8());
  leaf::testing::expect_snapshot_error([&] { revived.restore(dir); },
                                       "shard(s) 0");
  // The failed restore did not corrupt the runtime.
  revived.run_steps(1);
  EXPECT_EQ(revived.steps_run(), 1u);
}

// An entirely unreadable newest generation (version from the future) is
// skipped wholesale and the previous generation serves the whole fleet.
TEST_F(ChaosFixture, UnreadableNewestGenerationIsSkipped) {
  serve::FleetRuntime victim(ds, scale, fleet8());
  victim.run_steps(2);
  const std::string dir = temp_dir("bad_version");
  ASSERT_GT(victim.snapshot(dir), 0u);
  victim.run_steps(1);
  ASSERT_GT(victim.snapshot(dir), 0u);
  const std::string newest = dir + "/fleet-000002.leafsnap";
  leaf::testing::write_raw(
      newest,
      leaf::testing::with_format_version(leaf::testing::read_raw(newest), 99));

  serve::FleetRuntime revived(ds, scale, fleet8());
  revived.restore(dir);
  EXPECT_EQ(revived.steps_run(), 2u);  // anchored at gen 1
  // Every shard came from the same (anchor) generation: no per-shard
  // fallback events, just an older anchor.
  EXPECT_EQ(revived.stats().snapshot_fallbacks, 0);
}

// A fleet whose snapshot write fails midway (chaos snapshot-partial)
// keeps serving: snapshot() reports failure by returning 0 and leaves no
// litter (neither the generation file nor a .tmp).
TEST_F(ChaosFixture, PartialSnapshotWriteDoesNotStopTheFleet) {
  serve::FleetRuntime fleet(ds, scale, fleet8(), 2024,
                            with_chaos("snapshot-partial=1"));
  const std::string dir = temp_dir("partial");
  fleet.run_steps(1);
  EXPECT_EQ(fleet.snapshot(dir), 0u);  // injected partial write
  EXPECT_TRUE(serve::FleetRuntime::snapshot_generations(dir).empty());
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    FAIL() << "litter left behind: " << entry.path();
  // The fleet is still live.
  EXPECT_GT(fleet.run_steps(1), 0u);
}

// Chaos self-corruption: with snapshot-corrupt=1 every written generation
// carries one damaged shard section, and a restore must lean on fallback
// — proving the two fault points compose end-to-end.
TEST_F(ChaosFixture, ChaosCorruptedSnapshotsRestoreViaFallback) {
  serve::SupervisorConfig sup = with_chaos("seed=9,snapshot-corrupt=1");
  serve::FleetRuntime victim(ds, scale, fleet8(), 2024, sup);
  const std::string dir = temp_dir("self_corrupt");
  victim.run_steps(1);
  ASSERT_GT(victim.snapshot(dir), 0u);  // gen 1: one shard section damaged
  victim.run_steps(1);
  ASSERT_GT(victim.snapshot(dir), 0u);  // gen 2: one shard section damaged

  serve::FleetRuntime revived(ds, scale, fleet8(), 2024, sup);
  const chaos::Engine probe(sup.chaos);
  const int hit_newest = probe.corrupt_target(8, 2);
  const int hit_older = probe.corrupt_target(8, 1);
  if (hit_newest == hit_older) {
    // Same shard damaged in both retained generations: restore must fail.
    leaf::testing::expect_snapshot_error([&] { revived.restore(dir); },
                                         "unreadable in every retained");
  } else {
    revived.restore(dir);
    EXPECT_EQ(revived.steps_run(), 2u);
    EXPECT_EQ(revived.stats().snapshot_fallbacks, 1);
  }
}

}  // namespace
}  // namespace leaf
