// Shared snapshot fault-injection helpers for the io / serve / chaos
// tests: corrupt a LEAFSNAP container in well-defined ways and assert
// that an action fails with a SnapshotError whose message actually names
// the problem (tests on the error *text* keep the messages operator-
// debuggable, not just typed).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "io/snapshot.hpp"

namespace leaf::testing {

/// Runs `action`, expecting io::SnapshotError whose what() contains
/// `needle`.  Anything else — no throw, wrong type, wrong message — fails
/// the test with a readable diagnostic.
template <typename Action>
void expect_snapshot_error(Action&& action, const std::string& needle) {
  try {
    action();
    FAIL() << "expected SnapshotError containing '" << needle
           << "', but nothing was thrown";
  } catch (const io::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "SnapshotError thrown, but its message '" << e.what()
        << "' does not contain '" << needle << "'";
  } catch (const std::exception& e) {
    FAIL() << "expected SnapshotError containing '" << needle
           << "', got a different exception: " << e.what();
  }
}

/// Flips one bit of `bytes` (offsets from the end when negative).
inline std::vector<std::uint8_t> flip_bit(std::vector<std::uint8_t> bytes,
                                          std::ptrdiff_t offset,
                                          std::uint8_t mask = 0x01) {
  const std::size_t i = offset >= 0
                            ? static_cast<std::size_t>(offset)
                            : bytes.size() + static_cast<std::size_t>(offset);
  bytes.at(i) ^= mask;
  return bytes;
}

/// Container with its magic destroyed: nothing in it can be trusted, so
/// even lenient readers must reject it outright.
inline std::vector<std::uint8_t> with_bad_magic(
    std::vector<std::uint8_t> bytes) {
  bytes.at(0) = 'X';
  return bytes;
}

/// Container claiming format version `v` (the version word follows the
/// 8-byte magic).
inline std::vector<std::uint8_t> with_format_version(
    std::vector<std::uint8_t> bytes, std::uint8_t v) {
  bytes.at(8) = v;
  bytes.at(9) = 0;
  bytes.at(10) = 0;
  bytes.at(11) = 0;
  return bytes;
}

/// The first `keep` bytes of `bytes` (a truncated container).
inline std::vector<std::uint8_t> truncated(
    const std::vector<std::uint8_t>& bytes, std::size_t keep) {
  return {bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(keep)};
}

/// Overwrites `path` with raw bytes (bypassing SnapshotWriter's tmp +
/// rename discipline, the way on-disk rot would).
inline void write_raw(const std::string& path,
                      const std::vector<std::uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f) << "cannot open " << path;
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good()) << "short write to " << path;
}

inline std::vector<std::uint8_t> read_raw(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f) << "cannot open " << path;
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

/// Flips one payload bit of the named section inside an encoded LEAFSNAP
/// container, leaving the layout intact so exactly that section's CRC
/// fails.  Returns false (and leaves `bytes` alone) when the section is
/// missing or empty.
inline bool corrupt_section_payload(std::vector<std::uint8_t>& bytes,
                                    const std::string& name) {
  const auto rd32 = [&bytes](std::size_t p) {
    return static_cast<std::uint32_t>(bytes[p]) |
           static_cast<std::uint32_t>(bytes[p + 1]) << 8 |
           static_cast<std::uint32_t>(bytes[p + 2]) << 16 |
           static_cast<std::uint32_t>(bytes[p + 3]) << 24;
  };
  std::size_t pos = sizeof(io::kMagic) + 4;  // magic + version
  if (pos + 4 > bytes.size()) return false;
  const std::uint32_t count = rd32(pos);
  pos += 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (pos + 4 > bytes.size()) return false;
    const std::uint32_t name_len = rd32(pos);
    pos += 4;
    if (pos + name_len + 8 + 4 > bytes.size()) return false;
    const std::string section_name(
        reinterpret_cast<const char*>(bytes.data() + pos), name_len);
    pos += name_len;
    const std::uint64_t payload_len =
        static_cast<std::uint64_t>(rd32(pos)) |
        static_cast<std::uint64_t>(rd32(pos + 4)) << 32;
    pos += 8 + 4;  // payload_len + crc
    if (pos + payload_len > bytes.size()) return false;
    if (section_name == name && payload_len > 0) {
      bytes[pos + payload_len / 2] ^= 0x01;
      return true;
    }
    pos += payload_len;
  }
  return false;
}

}  // namespace leaf::testing
