// Unit tests for the dense matrix (common/matrix.hpp).
#include "common/matrix.hpp"

#include <gtest/gtest.h>

namespace leaf {
namespace {

TEST(Matrix, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
}

TEST(Matrix, ElementAccess) {
  Matrix m(2, 2);
  m(0, 1) = 7.0;
  m(1, 0) = -3.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 0), -3.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, RowSpanIsContiguousView) {
  Matrix m(2, 3);
  m(1, 0) = 1.0;
  m(1, 1) = 2.0;
  m(1, 2) = 3.0;
  const auto row = m.row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0], 1.0);
  EXPECT_DOUBLE_EQ(row[2], 3.0);
  // Mutating through the span mutates the matrix.
  m.row(1)[0] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 9.0);
}

TEST(Matrix, ColCopies) {
  Matrix m(3, 2);
  for (std::size_t r = 0; r < 3; ++r) m(r, 1) = static_cast<double>(r);
  const auto col = m.col(1);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_DOUBLE_EQ(col[2], 2.0);
}

TEST(Matrix, AppendRowToEmptyFixesCols) {
  Matrix m;
  const std::vector<double> row = {1.0, 2.0};
  m.append_row(row);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 2u);
  m.append_row(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, GatherRows) {
  Matrix m(4, 1);
  for (std::size_t r = 0; r < 4; ++r) m(r, 0) = static_cast<double>(r);
  const std::vector<std::size_t> idx = {3, 1, 1};
  const Matrix g = m.gather_rows(idx);
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_DOUBLE_EQ(g(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(g(2, 0), 1.0);
}

TEST(Matrix, Transposed) {
  Matrix m(2, 3);
  m(0, 2) = 5.0;
  m(1, 0) = -2.0;
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(0, 1), -2.0);
}

TEST(Matrix, MultiplyKnownProduct) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 3.0;
  a(1, 1) = 4.0;
  Matrix b(2, 1);
  b(0, 0) = 5.0;
  b(1, 0) = 6.0;
  const Matrix c = a.multiply(b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c(0, 0), 17.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 39.0);
}

TEST(Matrix, MultiplyIdentity) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  Matrix b(2, 2);
  b(0, 0) = 7.0;
  b(0, 1) = 8.0;
  b(1, 0) = 9.0;
  b(1, 1) = 10.0;
  const Matrix c = a.multiply(b);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t col = 0; col < 2; ++col)
      EXPECT_DOUBLE_EQ(c(r, col), b(r, col));
}

TEST(Matrix, EmptyMatrix) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(Matrix, ColViewMatchesColCopy) {
  Matrix m(3, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(1, 0) = 3.0;
  m(1, 1) = 4.0;
  m(2, 0) = 5.0;
  m(2, 1) = 6.0;
  for (std::size_t c = 0; c < m.cols(); ++c) {
    const std::vector<double> copy = m.col(c);
    const std::span<const double> view = m.col_view(c);
    ASSERT_EQ(view.size(), copy.size());
    for (std::size_t r = 0; r < view.size(); ++r)
      EXPECT_DOUBLE_EQ(view[r], copy[r]);
  }
}

TEST(Matrix, ColMajorIsTheTranspose) {
  Matrix m(2, 3);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = 10.0 * double(r) + double(c);
  const std::span<const double> cm = m.col_major();
  ASSERT_EQ(cm.size(), 6u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(cm[c * m.rows() + r], m(r, c));
}

TEST(Matrix, ColViewInvalidatedByMutation) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 0) = 2.0;
  EXPECT_DOUBLE_EQ(m.col_view(0)[1], 2.0);
  // Element write through the non-const accessor.
  m(1, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m.col_view(0)[1], 7.0);
  // Write through the mutable row span.
  m.row(1)[0] = 8.0;
  EXPECT_DOUBLE_EQ(m.col_view(0)[1], 8.0);
  // Write through flat().
  m.flat()[2] = 9.0;
  EXPECT_DOUBLE_EQ(m.col_view(0)[1], 9.0);
}

TEST(Matrix, ColViewInvalidatedByAppendRow) {
  Matrix m(1, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  EXPECT_EQ(m.col_view(1).size(), 1u);
  const double row[] = {3.0, 4.0};
  m.append_row(row);
  const std::span<const double> v = m.col_view(1);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  EXPECT_DOUBLE_EQ(v[1], 4.0);
}

}  // namespace
}  // namespace leaf
