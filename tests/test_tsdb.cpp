// Tests for leaf::tsdb — ring-buffer retention and wraparound,
// downsampling goldens, query matching, snapshot round-trips (v4 and the
// v3 fallback), meta-drift detection on telemetry streams, and the
// fleet-level determinism contract: stored series are bit-identical at
// any LEAF_THREADS and across SIGKILL + --resume.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chaos/chaos.hpp"
#include "common/matrix.hpp"
#include "data/generator.hpp"
#include "io/serializer.hpp"
#include "net/loopback.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "par/parallel.hpp"
#include "serve/runtime.hpp"
#include "tsdb/meta_drift.hpp"
#include "tsdb/store.hpp"

namespace leaf::tsdb {
namespace {

/// Restores the default thread count even if a test fails mid-way.
struct ThreadGuard {
  ~ThreadGuard() { par::set_threads(0); }
};

// --- store: recording, retention, downsampling -----------------------------

TEST(TsdbStore, DownsamplingGoldens) {
  Store store;
  for (std::uint64_t s = 0; s < 100; ++s)
    store.record("m", "", s, static_cast<double>(s));
  EXPECT_EQ(store.num_series(), 1u);
  EXPECT_EQ(store.samples_recorded(), 100u);
  EXPECT_EQ(store.last_step(), 99u);

  const auto raw = store.query({"m", "", 0, ~0ULL, Resolution::kRaw, 16});
  ASSERT_EQ(raw.series.size(), 1u);
  ASSERT_EQ(raw.series[0].steps.size(), 100u);
  EXPECT_EQ(raw.series[0].steps.front(), 0u);
  EXPECT_EQ(raw.series[0].values[37], 37.0);
  EXPECT_TRUE(raw.series[0].min.empty());  // raw tier: samples only

  const auto ten =
      store.query({"m", "", 0, ~0ULL, Resolution::kTenStep, 16});
  ASSERT_EQ(ten.series.size(), 1u);
  const SeriesData& t = ten.series[0];
  ASSERT_EQ(t.steps.size(), 10u);  // buckets 0,10,...,90
  for (std::size_t b = 0; b < 10; ++b) {
    const double start = static_cast<double>(b * 10);
    EXPECT_EQ(t.steps[b], b * 10) << "bucket " << b;
    EXPECT_EQ(t.min[b], start);
    EXPECT_EQ(t.max[b], start + 9.0);
    EXPECT_EQ(t.counts[b], 10u);
    EXPECT_EQ(t.values[b], start + 4.5);  // bucket mean
  }

  const auto hundred =
      store.query({"m", "", 0, ~0ULL, Resolution::kHundredStep, 16});
  ASSERT_EQ(hundred.series.size(), 1u);
  ASSERT_EQ(hundred.series[0].steps.size(), 1u);
  EXPECT_EQ(hundred.series[0].min[0], 0.0);
  EXPECT_EQ(hundred.series[0].max[0], 99.0);
  EXPECT_EQ(hundred.series[0].counts[0], 100u);
  EXPECT_EQ(hundred.series[0].values[0], 49.5);
}

TEST(TsdbStore, RingBuffersWrapAroundKeepingTheNewest) {
  StoreConfig cfg;
  cfg.raw_capacity = 8;
  cfg.agg10_capacity = 2;
  cfg.agg100_capacity = 1;
  Store store(cfg);
  for (std::uint64_t s = 0; s < 40; ++s)
    store.record("m", "", s, static_cast<double>(s));

  const auto raw = store.query({"m", "", 0, ~0ULL, Resolution::kRaw, 16});
  ASSERT_EQ(raw.series[0].steps.size(), 8u);  // newest 8 survive
  EXPECT_EQ(raw.series[0].steps.front(), 32u);
  EXPECT_EQ(raw.series[0].steps.back(), 39u);

  const auto ten =
      store.query({"m", "", 0, ~0ULL, Resolution::kTenStep, 16});
  ASSERT_EQ(ten.series[0].steps.size(), 2u);  // buckets 20 and 30
  EXPECT_EQ(ten.series[0].steps[0], 20u);
  EXPECT_EQ(ten.series[0].steps[1], 30u);

  const auto hundred =
      store.query({"m", "", 0, ~0ULL, Resolution::kHundredStep, 16});
  ASSERT_EQ(hundred.series[0].steps.size(), 1u);
  EXPECT_EQ(hundred.series[0].counts[0], 40u);  // still-open bucket 0
}

TEST(TsdbStore, QueryMatchersAndTruncation) {
  Store store;
  store.record("leaf_a", "{shard=\"0\"}", 1, 1.0);
  store.record("leaf_a", "{shard=\"1\"}", 1, 2.0);
  store.record("leaf_b", "", 1, 3.0);
  store.record("other", "", 1, 4.0);

  // Exact name.
  EXPECT_EQ(store.query({"leaf_b", "", 0, ~0ULL, Resolution::kRaw, 16})
                .series.size(),
            1u);
  // Trailing-'*' prefix, lexicographic (name, labels) order.
  const auto pre = store.query({"leaf_*", "", 0, ~0ULL, Resolution::kRaw, 16});
  ASSERT_EQ(pre.series.size(), 3u);
  EXPECT_EQ(pre.series[0].labels, "{shard=\"0\"}");
  EXPECT_EQ(pre.series[1].labels, "{shard=\"1\"}");
  EXPECT_EQ(pre.series[2].name, "leaf_b");
  EXPECT_FALSE(pre.truncated);
  // Label substring filter.
  const auto lab = store.query(
      {"leaf_*", "shard=\"1\"", 0, ~0ULL, Resolution::kRaw, 16});
  ASSERT_EQ(lab.series.size(), 1u);
  EXPECT_EQ(lab.series[0].values[0], 2.0);
  // max_series truncation is flagged, never silent.
  const auto cut = store.query({"leaf_*", "", 0, ~0ULL, Resolution::kRaw, 2});
  EXPECT_EQ(cut.series.size(), 2u);
  EXPECT_TRUE(cut.truncated);
  // Step range is inclusive on both ends.
  store.record("leaf_b", "", 5, 6.0);
  const auto range =
      store.query({"leaf_b", "", 1, 5, Resolution::kRaw, 16});
  EXPECT_EQ(range.series[0].steps.size(), 2u);
  const auto tail = store.query({"leaf_b", "", 2, 4, Resolution::kRaw, 16});
  EXPECT_TRUE(tail.series.empty() || tail.series[0].steps.empty());
}

TEST(TsdbStore, RefusesBadSamplesAndCountsThem) {
  StoreConfig cfg;
  cfg.max_series = 1;
  Store store(cfg);
  store.record("a", "", 1, 1.0);
  store.record("a", "", 2, std::numeric_limits<double>::quiet_NaN());
  store.record("a", "", 0, 9.0);  // out-of-order step
  store.record("b", "", 3, 1.0);  // series cap hit
  EXPECT_EQ(store.num_series(), 1u);
  EXPECT_EQ(store.samples_recorded(), 1u);
  EXPECT_EQ(store.samples_dropped(), 3u);
  const auto q = store.query({"a", "", 0, ~0ULL, Resolution::kRaw, 16});
  ASSERT_EQ(q.series[0].steps.size(), 1u);
  EXPECT_EQ(q.series[0].values[0], 1.0);
}

TEST(TsdbStore, FingerprintCoversOnlyDeterministicNonSecondsSeries) {
  Store a, b;
  a.record("leaf_x", "", 1, 1.0);
  b.record("leaf_x", "", 1, 1.0);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  // Volatile and wall-clock series never perturb the fingerprint...
  b.record("leaf_rate", "", 2, 123.0, /*deterministic=*/false);
  b.record("leaf_rpc_seconds_sum", "", 2, 0.5);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // ...a deterministic sample does.
  b.record("leaf_x", "", 3, 2.0);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(TsdbStore, SaveLoadRoundTripsExactly) {
  Store store;
  for (std::uint64_t s = 0; s < 25; ++s) {
    store.record("leaf_x", "{shard=\"0\"}", s, static_cast<double>(s) * 0.5);
    store.record("leaf_rate", "", s, static_cast<double>(s % 3),
                 /*deterministic=*/false);
  }
  io::Serializer out;
  store.save(out);

  Store back;
  io::Deserializer in(out.bytes());
  back.load(in);
  EXPECT_EQ(back.num_series(), store.num_series());
  EXPECT_EQ(back.last_step(), store.last_step());
  EXPECT_EQ(back.samples_recorded(), store.samples_recorded());
  EXPECT_EQ(back.fingerprint(), store.fingerprint());
  // The volatile flag survives: still excluded after a round-trip.
  Store no_rate;
  for (std::uint64_t s = 0; s < 25; ++s)
    no_rate.record("leaf_x", "{shard=\"0\"}", s,
                   static_cast<double>(s) * 0.5);
  EXPECT_EQ(back.fingerprint(), no_rate.fingerprint());
  // And the restored store keeps recording in sequence.
  back.record("leaf_x", "{shard=\"0\"}", 25, 12.5);
  EXPECT_EQ(back.last_step(), 25u);
}

// --- meta-drift watchdog ---------------------------------------------------

TEST(TsdbMetaDrift, ConstantStreamNeverFires) {
  MetaDrift md;
  for (std::uint64_t t = 0; t < 200; ++t)
    EXPECT_FALSE(md.observe("flat", -1, t, 0.0));
  EXPECT_EQ(md.firings(), 0u);
  EXPECT_EQ(md.state(200), 0);
  EXPECT_TRUE(md.events().empty());
}

TEST(TsdbMetaDrift, DistributionShiftFiresHoldsThenDecays) {
  MetaDrift md;
  std::uint64_t t = 0;
  for (; t < 60; ++t) md.observe("miss_rate", -1, t, 0.0);
  std::uint64_t fired_at = 0;
  for (; t < 120; ++t)
    if (md.observe("miss_rate", -1, t, 5.0) && fired_at == 0) fired_at = t;
  ASSERT_GT(md.firings(), 0u);
  ASSERT_GT(fired_at, 0u);

  // The firing raised state() and emitted a telemetry-drift event naming
  // the rule and tick.
  EXPECT_EQ(md.state(fired_at), 1);
  if (obs::kCompiledIn) {  // event emission compiles out with the registry
    ASSERT_FALSE(md.events().empty());
    const obs::Event& e = md.events().events().front();
    EXPECT_EQ(e.kind, obs::EventKind::kTelemetryDrift);
    EXPECT_NE(e.detail.find("rule=miss_rate"), std::string::npos);
    EXPECT_NE(e.detail.find("tick="), std::string::npos);
  }

  // After hold_ticks quiet ticks the rule stops contributing.
  const std::uint64_t last_tick = t - 1;
  EXPECT_EQ(md.state(last_tick + md.config().hold_ticks + 1), 0);
}

TEST(TsdbMetaDrift, SaveLoadContinuesTheExactTrajectory) {
  const auto feed = [](MetaDrift& md, std::uint64_t from, std::uint64_t to) {
    for (std::uint64_t t = from; t < to; ++t)
      md.observe("r", -1, t, t < 60 ? 0.0 : 4.0);
  };
  MetaDrift uninterrupted;
  feed(uninterrupted, 0, 120);

  MetaDrift victim;
  feed(victim, 0, 45);
  io::Serializer out;
  victim.save(out);
  MetaDrift revived;
  io::Deserializer in(out.bytes());
  revived.load(in);
  feed(revived, 45, 120);

  EXPECT_EQ(revived.firings(), uninterrupted.firings());
  EXPECT_EQ(revived.events().events(), uninterrupted.events().events());
  EXPECT_EQ(revived.state(120), uninterrupted.state(120));
}

// --- fleet integration -----------------------------------------------------

struct TsdbFleetFixture : ::testing::Test {
  Scale scale = Scale::for_level(Scale::Level::kSmall);
  data::CellularDataset ds = data::generate_fixed_dataset(scale, 42);

  std::vector<serve::ShardSpec> specs(std::size_t n) const {
    const data::TargetKpi kpis[] = {data::TargetKpi::kDVol,
                                    data::TargetKpi::kPU,
                                    data::TargetKpi::kDTP};
    std::vector<serve::ShardSpec> out;
    for (std::size_t i = 0; i < n; ++i)
      out.push_back(
          {kpis[i % 3], models::ModelFamily::kRidge, "Triggered", 0});
    return out;
  }
};

TEST_F(TsdbFleetFixture, StepEpilogueSamplesFleetSeries) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  serve::FleetRuntime fleet(ds, scale, specs(2));
  fleet.run_steps(5);
  EXPECT_EQ(fleet.sample_tick(), 5u);

  const Store& store = fleet.telemetry();
  EXPECT_GT(store.num_series(), 0u);
  const auto steps = store.query(
      {"leaf_fleet_steps", "", 0, ~0ULL, Resolution::kRaw, 4});
  ASSERT_EQ(steps.series.size(), 1u);
  ASSERT_EQ(steps.series[0].values.size(), 5u);
  EXPECT_EQ(steps.series[0].values.front(), 1.0);
  EXPECT_EQ(steps.series[0].values.back(), 5.0);
  // Per-shard series carry shard labels.
  const auto health = store.query(
      {"leaf_fleet_shard_health", "shard=\"1\"", 0, ~0ULL,
       Resolution::kRaw, 4});
  ASSERT_EQ(health.series.size(), 1u);
  // The meta-drift gauge is exported (and quiet on a healthy run).
  EXPECT_EQ(obs::MetricsRegistry::global()
                .gauge("leaf_telemetry_drift_state")
                .value(),
            0.0);
}

TEST_F(TsdbFleetFixture, StoredSeriesByteIdenticalAtAnyThreadCount) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  ThreadGuard guard;
  const auto run = [&](int threads) {
    par::set_threads(threads);
    serve::FleetRuntime fleet(ds, scale, specs(3));
    fleet.run_steps(12);
    return fleet.telemetry().fingerprint();
  };
  const std::uint64_t fp1 = run(1);
  const std::uint64_t fp4 = run(4);
  EXPECT_NE(fp1, 0u);
  EXPECT_EQ(fp1, fp4);
}

TEST_F(TsdbFleetFixture, SnapshotResumeContinuesTheSeriesByteIdentically) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  serve::FleetRuntime uninterrupted(ds, scale, specs(2));
  uninterrupted.run_to_end();

  const std::string dir = ::testing::TempDir() + "leaf_tsdb_resume";
  std::filesystem::create_directories(dir);
  auto victim = std::make_unique<serve::FleetRuntime>(ds, scale, specs(2));
  victim->run_steps(6);
  victim->snapshot(dir);
  victim.reset();  // "SIGKILL"

  serve::FleetRuntime revived(ds, scale, specs(2));
  revived.restore(dir);
  EXPECT_EQ(revived.sample_tick(), 6u);
  EXPECT_GT(revived.telemetry().num_series(), 0u);
  revived.run_to_end();

  EXPECT_EQ(revived.telemetry().fingerprint(),
            uninterrupted.telemetry().fingerprint());
  EXPECT_EQ(revived.sample_tick(), uninterrupted.sample_tick());
  std::filesystem::remove_all(dir);
}

/// Strips the "tsdb" section from a LEAFSNAP container on disk and
/// stamps it format version 3 — a faithful replica of a pre-tsdb file.
void downgrade_snapshot_to_v3(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 16u);
  const auto rd_u32 = [&](std::size_t at) {
    std::uint32_t v;
    std::memcpy(&v, bytes.data() + at, 4);
    return v;
  };
  bytes[8] = 3;  // version u32 (little-endian) follows the 8-byte magic
  std::uint32_t count = rd_u32(12);
  std::size_t pos = 16;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t sec_start = pos;
    const std::uint32_t name_len = rd_u32(pos);
    pos += 4;
    const std::string name(reinterpret_cast<const char*>(bytes.data() + pos),
                           name_len);
    pos += name_len;
    std::uint64_t payload_len;
    std::memcpy(&payload_len, bytes.data() + pos, 8);
    pos += 8 + 4 + payload_len;  // payload_len + crc + payload
    if (name == "tsdb") {
      bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(sec_start),
                  bytes.begin() + static_cast<std::ptrdiff_t>(pos));
      --count;
      std::memcpy(bytes.data() + 12, &count, 4);
      break;
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST_F(TsdbFleetFixture, V3SnapshotWithoutTsdbSectionStillRestores) {
  const std::string dir = ::testing::TempDir() + "leaf_tsdb_v3";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  serve::FleetRuntime fleet(ds, scale, specs(2));
  fleet.run_steps(4);
  fleet.snapshot(dir);
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    downgrade_snapshot_to_v3(entry.path().string());

  serve::FleetRuntime revived(ds, scale, specs(2));
  revived.restore(dir);  // must not throw: v3 is still readable
  EXPECT_EQ(revived.steps_run(), 4u);
  // No telemetry section: the store starts empty, ticks resume at the
  // step counter, and the fleet keeps stepping.
  EXPECT_EQ(revived.telemetry().num_series(), 0u);
  EXPECT_EQ(revived.sample_tick(), 4u);
  EXPECT_TRUE(revived.step());
  if (obs::kCompiledIn) {
    EXPECT_GT(revived.telemetry().num_series(), 0u);
  }
  std::filesystem::remove_all(dir);
}

TEST_F(TsdbFleetFixture, TsdbGapChaosSkipsSamplesDeterministically) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  serve::SupervisorConfig gapped;
  gapped.chaos = chaos::ChaosConfig::parse("seed=5,tsdb-gap=0.5");
  const auto run = [&]() {
    serve::FleetRuntime fleet(ds, scale, specs(2), 2024, gapped);
    fleet.run_steps(10);
    return std::make_pair(fleet.telemetry().fingerprint(),
                          fleet.telemetry().samples_recorded());
  };
  const auto [fp_a, n_a] = run();
  const auto [fp_b, n_b] = run();
  EXPECT_EQ(fp_a, fp_b);  // the gap schedule is seeded, not random
  EXPECT_EQ(n_a, n_b);

  serve::FleetRuntime full(ds, scale, specs(2));
  full.run_steps(10);
  EXPECT_LT(n_a, full.telemetry().samples_recorded());
  EXPECT_EQ(full.sample_tick(), 10u);  // ticks advance through gaps
}

TEST_F(TsdbFleetFixture, DeadlineStormRaisesTelemetryDrift) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with -DLEAF_OBS=OFF";
  // A deterministic serving-plane incident: quiet ticks, then a storm of
  // deadline-expired requests.  The deadline-miss-rate recording rule's
  // detector must fire, emit a telemetry-drift supervision event, and
  // raise the gauge the SloWatchdog escalates on.
  serve::FleetRuntime fleet(ds, scale, specs(1));
  fleet.run_steps(1);
  net::Loopback loop(fleet);
  net::LoopbackConnection& conn = loop.connect();
  const int cols = fleet.shard_num_features(0);
  Matrix row(1, static_cast<std::size_t>(cols));
  std::uint64_t id = 1;

  const auto tick = [&](bool storm) {
    for (auto& v : row.flat()) v = 0.25;
    net::PredictRequest req{0, storm ? 10u : 0u, row};
    conn.send(net::make_frame(net::MsgType::kPredict, id++, req));
    if (storm) loop.clock().advance_ms(50);  // expires in queue
    loop.pump();
    while (conn.receive().has_value()) {
    }
    fleet.sample_telemetry();
  };
  for (int i = 0; i < 40; ++i) tick(false);  // healthy baseline
  EXPECT_EQ(fleet.telemetry_drift_state(), 0);
  for (int i = 0; i < 40; ++i) tick(true);  // 100% deadline misses

  EXPECT_GT(fleet.telemetry_drift_state(), 0);
  EXPECT_GT(obs::MetricsRegistry::global()
                .gauge("leaf_telemetry_drift_state")
                .value(),
            0.0);
  bool saw_event = false;
  for (const obs::Event& e : fleet.supervision_events())
    if (e.kind == obs::EventKind::kTelemetryDrift &&
        e.detail.find("rule=deadline_miss_rate") != std::string::npos)
      saw_event = true;
  EXPECT_TRUE(saw_event);
}

}  // namespace
}  // namespace leaf::tsdb
