// Unit tests for the drift detectors (drift/).
#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "common/rng.hpp"
#include "drift/adwin.hpp"
#include "drift/ddm.hpp"
#include "drift/detector.hpp"
#include "drift/kswin.hpp"

namespace leaf::drift {
namespace {

/// Stationary stream followed by a level shift at `shift_at`.
std::vector<double> shifted_stream(std::size_t n, std::size_t shift_at,
                                   double shift, std::uint64_t seed = 3,
                                   double sigma = 0.01) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = 0.05 + (i >= shift_at ? shift : 0.0) + sigma * rng.normal();
  return out;
}

std::vector<std::unique_ptr<DriftDetector>> all_detectors() {
  std::vector<std::unique_ptr<DriftDetector>> out;
  KswinConfig k;
  k.window_size = 60;
  k.stat_size = 20;
  k.alpha = 0.001;  // low false-alarm config for the generic sweeps
  out.push_back(std::make_unique<Kswin>(k));
  out.push_back(std::make_unique<Adwin>());
  out.push_back(std::make_unique<Ddm>());
  out.push_back(std::make_unique<Eddm>());
  out.push_back(std::make_unique<HddmA>());
  PageHinkleyConfig p;
  p.delta = 0.002;
  p.lambda = 0.8;
  out.push_back(std::make_unique<PageHinkley>(p));
  return out;
}

// --- generic detector contract -------------------------------------------

TEST(Detectors, CloneFreshProducesSameBehaviour) {
  const auto stream = shifted_stream(400, 200, 0.3);
  for (auto& det : all_detectors()) {
    auto clone = det->clone_fresh();
    const auto a = detect_all(*det, stream);
    const auto b = detect_all(*clone, stream);
    EXPECT_EQ(a, b) << det->name();
  }
}

TEST(Detectors, ResetRestoresInitialState) {
  const auto stream = shifted_stream(400, 200, 0.3);
  for (auto& det : all_detectors()) {
    const auto first = detect_all(*det, stream);
    det->reset();
    const auto second = detect_all(*det, stream);
    EXPECT_EQ(first, second) << det->name();
  }
}

// --- KSWIN ----------------------------------------------------------------

TEST(Kswin, DetectsLevelShift) {
  KswinConfig cfg;
  cfg.window_size = 60;
  cfg.stat_size = 20;
  Kswin det(cfg);
  const auto stream = shifted_stream(400, 250, 0.3);
  const auto hits = detect_all(det, stream);
  ASSERT_FALSE(hits.empty());
  // First detection shortly after the shift.
  EXPECT_GE(hits.front(), 250u);
  EXPECT_LE(hits.front(), 290u);
}

TEST(Kswin, QuietOnStationaryStream) {
  KswinConfig cfg;
  cfg.window_size = 100;
  cfg.stat_size = 30;
  cfg.alpha = 0.001;
  Kswin det(cfg);
  const auto stream = shifted_stream(1000, 100000, 0.0);
  const auto hits = detect_all(det, stream);
  EXPECT_LE(hits.size(), 2u);  // rare false alarms tolerated at alpha=1e-3
}

TEST(Kswin, WindowFillsBeforeTesting) {
  Kswin det;
  EXPECT_DOUBLE_EQ(det.last_p_value(), 1.0);
  for (int i = 0; i < 50; ++i) det.update(0.1);
  EXPECT_DOUBLE_EQ(det.last_p_value(), 1.0);  // window (100) not full yet
  EXPECT_EQ(det.window_fill(), 50u);
}

TEST(Kswin, WindowTruncatesAfterDetection) {
  KswinConfig cfg;
  cfg.window_size = 60;
  cfg.stat_size = 20;
  Kswin det(cfg);
  const auto stream = shifted_stream(300, 150, 0.5);
  bool detected = false;
  for (double v : stream) {
    if (det.update(v)) {
      detected = true;
      EXPECT_EQ(det.window_fill(), 20u);  // keeps only the recent slice
      break;
    }
  }
  EXPECT_TRUE(detected);
}

TEST(Kswin, IgnoresNonFiniteValues) {
  KswinConfig cfg;
  cfg.window_size = 60;
  cfg.stat_size = 20;
  Kswin corrupted(cfg);
  Kswin clean(cfg);
  const auto stream = shifted_stream(400, 250, 0.3);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> hits_corrupted, hits_clean;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    // NaN/Inf interleaved must neither fire nor enter the window.
    EXPECT_FALSE(corrupted.update(nan));
    EXPECT_FALSE(corrupted.update(inf));
    if (corrupted.update(stream[i])) hits_corrupted.push_back(i);
    if (clean.update(stream[i])) hits_clean.push_back(i);
  }
  EXPECT_EQ(hits_corrupted, hits_clean);
  EXPECT_EQ(corrupted.window_fill(), clean.window_fill());
}

TEST(Kswin, DetectsDistributionChangeWithoutMeanShift) {
  // Variance change, equal means — KS catches what a mean test misses.
  Rng rng(5);
  std::vector<double> stream;
  for (int i = 0; i < 200; ++i) stream.push_back(0.5 + 0.01 * rng.normal());
  for (int i = 0; i < 200; ++i) stream.push_back(0.5 + 0.15 * rng.normal());
  KswinConfig cfg;
  cfg.window_size = 60;
  cfg.stat_size = 20;
  Kswin det(cfg);
  const auto hits = detect_all(det, stream);
  ASSERT_FALSE(hits.empty());
  EXPECT_GE(hits.front(), 200u);
}

// --- ADWIN ------------------------------------------------------------------

TEST(Adwin, DetectsLevelShiftAndShrinksWindow) {
  Adwin det;
  const auto stream = shifted_stream(600, 300, 0.3);
  std::size_t first_hit = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (det.update(stream[i]) && first_hit == 0) first_hit = i;
  }
  ASSERT_GT(first_hit, 0u);
  EXPECT_GE(first_hit, 300u);
  EXPECT_LE(first_hit, 360u);
  // After processing everything, the window should not span the old
  // concept: its mean reflects the post-shift level.
  EXPECT_NEAR(det.window_mean(), 0.35, 0.03);
}

TEST(Adwin, WindowGrowsOnStationaryStream) {
  Adwin det;
  const auto stream = shifted_stream(500, 100000, 0.0);
  for (double v : stream) det.update(v);
  EXPECT_GT(det.window_length(), 400u);
}

TEST(Adwin, TracksMeanAccurately) {
  Adwin det;
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) det.update(2.0 + 0.1 * rng.normal());
  EXPECT_NEAR(det.window_mean(), 2.0, 0.02);
}

// --- DDM / EDDM -------------------------------------------------------------

TEST(Ddm, DetectsSustainedErrorIncrease) {
  Ddm det;
  const auto stream = shifted_stream(800, 400, 0.4, 3, 0.02);
  const auto hits = detect_all(det, stream);
  ASSERT_FALSE(hits.empty());
  EXPECT_GE(hits.front(), 400u);
}

TEST(Ddm, QuietOnStationary) {
  Ddm det;
  const auto stream = shifted_stream(1000, 100000, 0.0);
  EXPECT_LE(detect_all(det, stream).size(), 1u);
}

TEST(EwmaBinarizer, FlagsSpikes) {
  EwmaBinarizer bin(0.05, 2.0);
  Rng rng(4);
  int flags = 0;
  for (int i = 0; i < 200; ++i) flags += bin.push(1.0 + 0.01 * rng.normal());
  EXPECT_LE(flags, 12);  // ~2-sigma exceedances only
  EXPECT_TRUE(bin.push(2.0));  // clear spike
}

TEST(EwmaBinarizer, AdaptsToNewLevel) {
  EwmaBinarizer bin(0.1, 2.0);
  for (int i = 0; i < 100; ++i) bin.push(1.0);
  // After a step, the first samples flag...
  EXPECT_TRUE(bin.push(2.0) || bin.push(2.0));
  // ...but after adaptation the new level is normal.
  for (int i = 0; i < 100; ++i) bin.push(2.0 + 0.001 * i * 0.0);
  EXPECT_FALSE(bin.push(2.0));
}

// --- HDDM-A -----------------------------------------------------------------

TEST(HddmA, DetectsMeanIncrease) {
  HddmA det;
  const auto stream = shifted_stream(800, 400, 0.3);
  const auto hits = detect_all(det, stream);
  ASSERT_FALSE(hits.empty());
  EXPECT_GE(hits.front(), 400u);
  EXPECT_LE(hits.front(), 460u);
}

TEST(HddmA, QuietOnStationary) {
  HddmA det;
  const auto stream = shifted_stream(1500, 100000, 0.0);
  EXPECT_LE(detect_all(det, stream).size(), 1u);
}

// --- Page–Hinkley -------------------------------------------------------------

TEST(PageHinkley, DetectsUpwardShift) {
  PageHinkleyConfig cfg;
  cfg.delta = 0.002;
  cfg.lambda = 1.0;
  PageHinkley det(cfg);
  const auto stream = shifted_stream(800, 400, 0.2);
  const auto hits = detect_all(det, stream);
  ASSERT_FALSE(hits.empty());
  EXPECT_GE(hits.front(), 400u);
}

TEST(PageHinkley, LambdaControlsSensitivity) {
  const auto stream = shifted_stream(800, 400, 0.1);
  PageHinkleyConfig sensitive;
  sensitive.delta = 0.002;
  sensitive.lambda = 0.2;
  PageHinkleyConfig sluggish = sensitive;
  sluggish.lambda = 20.0;
  PageHinkley a(sensitive), b(sluggish);
  EXPECT_GE(detect_all(a, stream).size(), detect_all(b, stream).size());
}

// --- parameterized shift sweep: every detector must catch big shifts and
// --- stay quiet without one.

struct SweepCase {
  double shift;
  bool must_detect;
};

class DetectorSweepTest
    : public ::testing::TestWithParam<std::tuple<int, SweepCase>> {};

TEST_P(DetectorSweepTest, DetectionMatchesShiftMagnitude) {
  const auto [det_idx, c] = GetParam();
  auto dets = all_detectors();
  auto& det = *dets[static_cast<std::size_t>(det_idx)];
  const auto stream = shifted_stream(900, 450, c.shift, 11);
  const auto hits = detect_all(det, stream);
  if (det.name() == "EDDM" && c.must_detect) {
    // EDDM watches the *spacing* of binarized errors; a one-off level
    // shift produces only a transient error burst, which EDDM legitimately
    // may not flag.  Covered by its own dedicated tests.
    return;
  }
  if (c.must_detect) {
    EXPECT_FALSE(hits.empty()) << det.name() << " shift=" << c.shift;
    if (!hits.empty()) {
      EXPECT_GE(hits.front(), 430u) << det.name();
    }
  } else {
    EXPECT_LE(hits.size(), 2u) << det.name();
  }
}

std::string sweep_case_name(
    const ::testing::TestParamInfo<std::tuple<int, SweepCase>>& info) {
  static const char* kNames[] = {"KSWIN", "ADWIN",  "DDM",
                                 "EDDM",  "HDDM_A", "PageHinkley"};
  const auto [idx, c] = info.param;
  return std::string(kNames[idx]) + "_shift" +
         std::to_string(static_cast<int>(c.shift * 10));
}

INSTANTIATE_TEST_SUITE_P(
    AllDetectorsAndShifts, DetectorSweepTest,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(SweepCase{0.0, false},
                                         SweepCase{0.5, true},
                                         SweepCase{1.0, true})),
    sweep_case_name);

}  // namespace
}  // namespace leaf::drift
