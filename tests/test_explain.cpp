// Unit tests for the explainer (explain/): permutation importance,
// correlation grouping, and LEA / LEAplot / LEAgram.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "explain/grouping.hpp"
#include "explain/importance.hpp"
#include "explain/lea.hpp"
#include "models/gbdt.hpp"
#include "models/ridge.hpp"

namespace leaf::explain {
namespace {

/// y = 5*x0 + noise; x1 strongly correlated with x0; x2 independent noise.
struct CorrelatedProblem {
  Matrix X;
  std::vector<double> y;

  explicit CorrelatedProblem(std::size_t n = 600) {
    Rng rng(21);
    X = Matrix(n, 3);
    y.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double base = rng.normal();
      X(i, 0) = base;
      X(i, 1) = base + 0.1 * rng.normal();  // corr ~ 0.995 with x0
      X(i, 2) = rng.normal();               // noise
      y[i] = 5.0 * base + 0.2 * rng.normal();
    }
  }
};

TEST(Importance, InformativeFeatureRanksAboveNoise) {
  const CorrelatedProblem p;
  models::Ridge model;
  model.fit(p.X, p.y);
  Rng rng(1);
  const auto scores = permutation_importance(model, p.X, p.y, 1.0, rng);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_GT(scores[0], scores[2]);
  EXPECT_GT(scores[0], 0.1);
  EXPECT_NEAR(scores[2], 0.0, 0.05);
}

TEST(Importance, RankingSortsDescending) {
  const std::vector<double> scores = {0.1, 0.9, -0.2, 0.5};
  const auto order = importance_ranking(scores);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 0, 2}));
}

TEST(Importance, RowSubsamplingStillFindsSignal) {
  const CorrelatedProblem p(2000);
  models::Ridge model;
  model.fit(p.X, p.y);
  Rng rng(1);
  ImportanceConfig cfg;
  cfg.max_rows = 100;  // force subsampling
  const auto scores = permutation_importance(model, p.X, p.y, 1.0, rng, cfg);
  EXPECT_GT(scores[0], scores[2]);
}

TEST(Importance, EmptyInputSafe) {
  models::Ridge model;
  Matrix empty(0, 2);
  Rng rng(1);
  const auto scores = permutation_importance(model, empty, {}, 1.0, rng);
  EXPECT_EQ(scores, (std::vector<double>{0.0, 0.0}));
}

TEST(Grouping, CorrelatedFeaturesShareAGroup) {
  const CorrelatedProblem p;
  const std::vector<double> importance = {1.0, 0.8, 0.5};
  const auto groups = group_features(p.X, importance);
  ASSERT_GE(groups.size(), 2u);
  // Group 1: x0 (rep) absorbs x1; group 2: x2 alone.
  EXPECT_EQ(groups[0].representative, 0);
  EXPECT_EQ(groups[0].members.size(), 2u);
  EXPECT_EQ(groups[1].representative, 2);
  EXPECT_EQ(groups[1].members.size(), 1u);
}

TEST(Grouping, RepresentativeHasHighestImportance) {
  const CorrelatedProblem p;
  // x1 more important than x0: x1 becomes the representative.
  const std::vector<double> importance = {0.5, 1.0, 0.2};
  const auto groups = group_features(p.X, importance);
  ASSERT_FALSE(groups.empty());
  EXPECT_EQ(groups[0].representative, 1);
}

TEST(Grouping, MaxGroupsHonored) {
  const CorrelatedProblem p;
  const std::vector<double> importance = {1.0, 0.8, 0.5};
  GroupingConfig cfg;
  cfg.max_groups = 1;
  const auto groups = group_features(p.X, importance, cfg);
  EXPECT_EQ(groups.size(), 1u);
}

TEST(Grouping, ZeroImportanceFeaturesNeverFoundAGroup) {
  const CorrelatedProblem p;
  const std::vector<double> importance = {1.0, 0.8, 0.0};
  const auto groups = group_features(p.X, importance);
  // x2 has no importance: only the correlated pair forms a group.
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].representative, 0);
}

TEST(Grouping, GroupsOrderedByImportance) {
  const CorrelatedProblem p;
  const std::vector<double> importance = {0.3, 0.2, 0.9};
  const auto groups = group_features(p.X, importance);
  ASSERT_GE(groups.size(), 2u);
  EXPECT_EQ(groups[0].representative, 2);
  EXPECT_GE(groups[0].importance, groups[1].importance);
}

TEST(Grouping, ThresholdControlsAbsorption) {
  const CorrelatedProblem p;
  const std::vector<double> importance = {1.0, 0.8, 0.5};
  GroupingConfig strict;
  strict.corr_threshold = 0.9999;  // nothing correlates this hard
  const auto groups = group_features(p.X, importance, strict);
  EXPECT_EQ(groups.size(), 3u);  // every feature its own group
}

// --- LEA -------------------------------------------------------------------

TEST(Lea, BinEdgesAreSortedUnique) {
  Rng rng(2);
  std::vector<double> v(500);
  for (auto& x : v) x = rng.normal();
  const auto edges = lea_bin_edges(v, 10);
  ASSERT_EQ(edges.size(), 9u);
  for (std::size_t i = 1; i < edges.size(); ++i)
    EXPECT_LT(edges[i - 1], edges[i]);
}

TEST(Lea, BinEdgesDedupeOnTies) {
  const std::vector<double> v(100, 1.0);
  const auto edges = lea_bin_edges(v, 10);
  EXPECT_LE(edges.size(), 1u);
}

TEST(Lea, BinOfPlacesValues) {
  const std::vector<double> edges = {1.0, 2.0, 3.0};
  EXPECT_EQ(lea_bin_of(0.5, edges), 0u);
  EXPECT_EQ(lea_bin_of(1.0, edges), 0u);  // an edge belongs to its left bin
  EXPECT_EQ(lea_bin_of(1.5, edges), 1u);
  EXPECT_EQ(lea_bin_of(2.5, edges), 2u);
  EXPECT_EQ(lea_bin_of(99.0, edges), 3u);
}

TEST(Lea, PerBinErrorsComputedCorrectly) {
  // Two bins: feature < 0 perfectly predicted, feature >= 0 off by 2.
  const std::vector<double> fv = {-1.0, -0.5, 0.5, 1.0};
  const std::vector<double> truth = {1.0, 1.0, 1.0, 1.0};
  const std::vector<double> pred = {1.0, 1.0, 3.0, 3.0};
  const std::vector<double> edges = {0.0};
  const LeaResult lea = compute_lea(pred, truth, fv, 0, 4.0, edges);
  ASSERT_EQ(lea.num_bins(), 2u);
  EXPECT_EQ(lea.count[0], 2u);
  EXPECT_EQ(lea.count[1], 2u);
  EXPECT_DOUBLE_EQ(lea.error[0], 0.0);
  EXPECT_DOUBLE_EQ(lea.error[1], 0.5);  // RMSE 2 / range 4
}

TEST(Lea, EmptyBinsHaveZeroErrorAndCount) {
  const std::vector<double> fv = {10.0};
  const std::vector<double> truth = {0.0};
  const std::vector<double> pred = {1.0};
  const std::vector<double> edges = {0.0, 5.0};
  const LeaResult lea = compute_lea(pred, truth, fv, 0, 1.0, edges);
  EXPECT_EQ(lea.count[0], 0u);
  EXPECT_EQ(lea.count[1], 0u);
  EXPECT_EQ(lea.count[2], 1u);
  EXPECT_DOUBLE_EQ(lea.error[0], 0.0);
  EXPECT_DOUBLE_EQ(lea.error[2], 1.0);
}

TEST(Lea, BinCenters) {
  LeaResult lea;
  lea.edges = {0.0, 10.0};
  lea.error = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(lea.bin_center(0), 0.0);
  EXPECT_DOUBLE_EQ(lea.bin_center(1), 5.0);
  EXPECT_DOUBLE_EQ(lea.bin_center(2), 10.0);
}

TEST(LeaPlot, SharedAxisAcrossSubsets) {
  const CorrelatedProblem p;
  models::Gbdt model(models::GbdtConfig::catboost_like(20, 1));
  model.fit(p.X, p.y);

  data::SupervisedSet a, b;
  a.X = p.X;
  a.y = p.y;
  a.feature_day.assign(p.y.size(), 0);
  a.target_day.assign(p.y.size(), 180);
  a.enb.assign(p.y.size(), 0);
  b = a;

  const LeaPlot plot = build_leaplot(model, {{"s1", &a}, {"s2", &b}}, 0,
                                     "x0", 8, 1.0);
  ASSERT_EQ(plot.series.size(), 2u);
  EXPECT_EQ(plot.series[0].second.edges, plot.series[1].second.edges);
  // Identical subsets -> identical decompositions.
  EXPECT_EQ(plot.series[0].second.error, plot.series[1].second.error);
  // Render and CSV don't crash and carry the feature name.
  EXPECT_NE(plot.render().find("x0"), std::string::npos);
  EXPECT_GT(plot.csv_rows().size(), 1u);
}

TEST(LeaGram, CellsTrackSignedError) {
  // Hand-built set: day 200 overestimated, day 201 underestimated.
  data::SupervisedSet set;
  set.X = Matrix(4, 1);
  set.X(0, 0) = 0.0;
  set.X(1, 0) = 1.0;
  set.X(2, 0) = 0.0;
  set.X(3, 0) = 1.0;
  set.y = {1.0, 1.0, 1.0, 1.0};
  set.feature_day = {20, 20, 21, 21};
  set.target_day = {200, 200, 201, 201};
  set.enb = {0, 1, 0, 1};

  // A "model" that always predicts 2 for day-200 rows: easiest is Ridge fit
  // to constants; instead use Gbdt trained to predict feature+1.5... keep
  // it simple: train ridge on X -> 2*X, then evaluate.
  models::RidgeConfig rcfg;
  rcfg.lambda = 1e-9;  // effectively OLS so predictions are exact
  models::Ridge model(rcfg);
  Matrix tx(2, 1);
  tx(0, 0) = 0.0;
  tx(1, 0) = 1.0;
  model.fit(tx.gather_rows(std::vector<std::size_t>{0, 1, 0, 1}),
            std::vector<double>{0.0, 2.0, 0.0, 2.0});

  const LeaGram gram = build_leagram(model, set, 0, "x0", 2, 1.0);
  ASSERT_EQ(gram.days.size(), 2u);
  EXPECT_EQ(gram.days[0], 200);
  EXPECT_EQ(gram.days[1], 201);
  // Bin of x=0: prediction 0, truth 1 -> NE = -1 (underestimation).
  EXPECT_NEAR(gram.ne(0, 0), -1.0, 1e-6);
  // Bin of x=1: prediction 2, truth 1 -> NE = +1 (overestimation).
  EXPECT_NEAR(gram.ne(0, gram.ne.cols() - 1), 1.0, 1e-6);
  EXPECT_NEAR(gram.mean_abs_ne(), 1.0, 1e-6);
  EXPECT_FALSE(gram.render().empty());
}

}  // namespace
}  // namespace leaf::explain
