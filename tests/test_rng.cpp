// Unit tests for the deterministic PRNG (common/rng.hpp).
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace leaf {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, IndexInBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.index(17), 17u);
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng(5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.index(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, IntegerInclusiveBounds) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.integer(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo |= v == -2;
    hit_hi |= v == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum2 += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(23);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(3);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, LognormalMedian) {
  Rng rng(29);
  std::vector<double> vals(20001);
  for (auto& v : vals) v = rng.lognormal(1.0, 0.5);
  std::nth_element(vals.begin(), vals.begin() + 10000, vals.end());
  EXPECT_NEAR(vals[10000], std::exp(1.0), 0.1);
}

TEST(Rng, HeavyTailHasHeavierTailsThanNormal) {
  Rng rng(31);
  int extreme_t = 0, extreme_n = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (std::abs(rng.heavy_tail(2.0)) > 4.0) ++extreme_t;
    if (std::abs(rng.normal()) > 4.0) ++extreme_n;
  }
  EXPECT_GT(extreme_t, extreme_n * 5);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(37);
  const std::vector<double> w = {0.0, 1.0, 3.0};
  std::array<int, 3> counts{};
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.2);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(37);
  const std::vector<double> w = {0.0, 0.0, 0.0, 0.0};
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.weighted_index(w));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, SampleWithoutReplacementUniqueAndBounded) {
  Rng rng(43);
  const auto s = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (std::size_t i : s) EXPECT_LT(i, 50u);
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(43);
  const auto s = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, WeightedSampleWithReplacementRespectsWeights) {
  Rng rng(47);
  const std::vector<double> w = {1.0, 0.0, 9.0};
  const auto s = rng.weighted_sample_with_replacement(w, 10000);
  EXPECT_EQ(s.size(), 10000u);
  std::array<int, 3> counts{};
  for (std::size_t i : s) ++counts[i];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 10000.0, 0.9, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(1);
  Rng child = a.fork(42);
  Rng a2(1);
  Rng child2 = a2.fork(42);
  // Same tag + same parent state -> same child stream.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child(), child2());
  // Different tags -> different streams.
  Rng b(1);
  Rng other = b.fork(43);
  int same = 0;
  Rng c(1);
  Rng ref = c.fork(42);
  for (int i = 0; i < 50; ++i)
    if (ref() == other()) ++same;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace leaf
