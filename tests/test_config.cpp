// Unit tests for the scale configuration (common/config.hpp).
#include "common/config.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace leaf {
namespace {

TEST(Scale, LevelsAreMonotone) {
  const Scale s = Scale::for_level(Scale::Level::kSmall);
  const Scale m = Scale::for_level(Scale::Level::kMedium);
  const Scale f = Scale::for_level(Scale::Level::kFull);
  EXPECT_LT(s.fixed_enbs, m.fixed_enbs);
  EXPECT_LT(m.fixed_enbs, f.fixed_enbs);
  EXPECT_LT(s.evolving_enbs_max, m.evolving_enbs_max);
  EXPECT_LT(m.evolving_enbs_max, f.evolving_enbs_max);
  EXPECT_LE(s.num_kpis, m.num_kpis);
  EXPECT_LE(m.num_kpis, f.num_kpis);
  EXPECT_LE(s.gbdt_trees, m.gbdt_trees);
  EXPECT_LE(m.gbdt_trees, f.gbdt_trees);
}

TEST(Scale, FullMatchesPaperShape) {
  const Scale f = Scale::for_level(Scale::Level::kFull);
  EXPECT_EQ(f.fixed_enbs, 412);
  EXPECT_EQ(f.evolving_enbs_max, 898);
  EXPECT_EQ(f.num_kpis, 224);
  EXPECT_EQ(f.eval_stride_days, 1);
}

TEST(Scale, Names) {
  EXPECT_EQ(Scale::for_level(Scale::Level::kSmall).name(), "small");
  EXPECT_EQ(Scale::for_level(Scale::Level::kMedium).name(), "medium");
  EXPECT_EQ(Scale::for_level(Scale::Level::kFull).name(), "full");
}

TEST(Scale, FromEnvDefaultsToSmall) {
  ::unsetenv("LEAF_SCALE");
  EXPECT_EQ(Scale::from_env().name(), "small");
}

TEST(Scale, FromEnvReadsVariable) {
  ::setenv("LEAF_SCALE", "medium", 1);
  EXPECT_EQ(Scale::from_env().name(), "medium");
  ::setenv("LEAF_SCALE", "full", 1);
  EXPECT_EQ(Scale::from_env().name(), "full");
  ::unsetenv("LEAF_SCALE");
}

TEST(Scale, FromEnvUnknownFallsBackToSmall) {
  ::setenv("LEAF_SCALE", "gigantic", 1);
  EXPECT_EQ(Scale::from_env().name(), "small");
  ::unsetenv("LEAF_SCALE");
}

TEST(Scale, EveryLevelHasPositiveKnobs) {
  for (auto level : {Scale::Level::kSmall, Scale::Level::kMedium,
                     Scale::Level::kFull}) {
    const Scale s = Scale::for_level(level);
    EXPECT_GT(s.fixed_enbs, 0);
    EXPECT_GT(s.evolving_enbs_max, s.fixed_enbs);
    EXPECT_GE(s.num_kpis, 9);  // KpiSchema::build minimum
    EXPECT_GT(s.gbdt_trees, 0);
    EXPECT_GT(s.forest_trees, 0);
    EXPECT_GT(s.lstm_epochs, 0);
    EXPECT_GT(s.lstm_hidden, 0);
    EXPECT_GT(s.eval_stride_days, 0);
  }
}

}  // namespace
}  // namespace leaf
