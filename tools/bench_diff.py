#!/usr/bin/env python3
"""Compare two BENCH_*.json files and flag wall-clock regressions.

Every bench binary embeds the observability registry dump under the
"metrics" key; the span sites inside it (`metrics.spans`) carry the
per-section wall-clock totals (`total_seconds`).  This tool compares
the sites shared by a baseline and a candidate run and exits non-zero
when any shared section regressed by more than the threshold
(default 10%).

Sections below the noise floor (default 1 ms of baseline wall-clock)
are reported but never fail the run: micro-sections jitter far more
than 10% between otherwise identical runs.

Latency-summary quantiles (p50/p99/p999 of every `summary`-type entry
in `metrics.metrics`, e.g. leaf_rpc_latency_seconds) are also diffed.
Tail quantiles on shared runners are pure jitter territory, so this
section is strictly advisory: deltas are printed, marked when they
exceed the threshold, and never affect the exit code.

Usage:
    tools/bench_diff.py BASELINE.json CANDIDATE.json \
        [--threshold 0.10] [--min-seconds 0.001]

Intended as an advisory CI step: run the bench twice (or against a
stored baseline artifact) and let the job surface the delta without
blocking merges on shared-runner noise.
"""

import argparse
import json
import sys


def load_spans(path):
    """Return {site: total_seconds} for one BENCH_*.json file."""
    with open(path) as f:
        doc = json.load(f)
    metrics = doc.get("metrics", {})
    spans = metrics.get("spans", [])
    out = {}
    for span in spans:
        site = span.get("site")
        if site is None:
            continue
        out[site] = float(span.get("total_seconds", 0.0))
    return out


QUANTILES = ("0.5", "0.99", "0.999")


def load_quantiles(path):
    """Return {(name, labels, q): seconds} for every summary entry."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for entry in doc.get("metrics", {}).get("metrics", []):
        if entry.get("type") != "summary":
            continue
        if not entry.get("count"):
            continue  # never observed: quantiles are all zero
        name = entry.get("name", "")
        labels = entry.get("labels", "")
        for q, v in entry.get("quantiles", {}).items():
            if q in QUANTILES:
                out[(name, labels, q)] = float(v)
    return out


def diff_quantiles(baseline_path, candidate_path, threshold):
    """Advisory p50/p99/p999 comparison; never affects the exit code."""
    base = load_quantiles(baseline_path)
    cand = load_quantiles(candidate_path)
    shared = sorted(set(base) & set(cand))
    if not shared:
        return
    print(f"\nlatency quantiles (advisory)")
    print(f"{'series':<44} {'q':>5} {'baseline':>12} {'candidate':>12} "
          f"{'delta':>9}")
    for key in shared:
        name, labels, q = key
        b, c = base[key], cand[key]
        series = f"{name}{{{labels}}}" if labels else name
        if b <= 0.0:
            delta = "n/a"
        else:
            frac = (c - b) / b
            flag = " !" if abs(frac) > threshold else ""
            delta = f"{frac:+8.1%}{flag}"
        print(f"{series:<44} {q:>5} {b:>12.3e} {c:>12.3e} {delta:>9}")


def main():
    parser = argparse.ArgumentParser(
        description="flag wall-clock regressions between two BENCH_*.json runs"
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="fractional regression that fails the diff (default 0.10)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.001,
        help="ignore sections whose baseline wall-clock is below this "
        "(default 0.001 s — micro-sections are all jitter)",
    )
    args = parser.parse_args()

    try:
        base = load_spans(args.baseline)
        cand = load_spans(args.candidate)
    except (OSError, ValueError) as e:
        print(f"bench_diff: cannot load inputs: {e}", file=sys.stderr)
        return 2

    shared = sorted(set(base) & set(cand))
    if not shared:
        print("bench_diff: no shared span sites between the two files",
              file=sys.stderr)
        return 2

    regressions = []
    print(f"{'section':<32} {'baseline':>12} {'candidate':>12} {'delta':>9}")
    for site in shared:
        b, c = base[site], cand[site]
        if b <= 0.0:
            delta = "n/a"
        else:
            frac = (c - b) / b
            delta = f"{frac:+8.1%}"
            if frac > args.threshold and b >= args.min_seconds:
                regressions.append((site, b, c, frac))
        print(f"{site:<32} {b:>12.6f} {c:>12.6f} {delta:>9}")

    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    if only_base:
        print(f"\nonly in baseline:  {', '.join(only_base)}")
    if only_cand:
        print(f"only in candidate: {', '.join(only_cand)}")

    try:
        diff_quantiles(args.baseline, args.candidate, args.threshold)
    except (OSError, ValueError) as e:
        print(f"bench_diff: quantile diff skipped: {e}", file=sys.stderr)

    if regressions:
        print(f"\nFAIL: {len(regressions)} section(s) regressed more than "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for site, b, c, frac in regressions:
            print(f"  {site}: {b:.6f}s -> {c:.6f}s ({frac:+.1%})",
                  file=sys.stderr)
        return 1

    print(f"\nOK: no shared section regressed more than {args.threshold:.0%} "
          f"(noise floor {args.min_seconds}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
