// Quickstart: the whole LEAF pipeline in ~80 lines.
//
// Generates the synthetic Fixed dataset, trains a gradient-boosting model
// to forecast downlink volume 180 days ahead, walks forward through four
// years of data while KSWIN watches the NRMSE stream, and compares a
// never-retrained Static model against LEAF's explain-and-resample
// mitigation.
//
// Run:   ./quickstart            (LEAF_SCALE=small|medium|full to resize)
#include <cstdio>

#include "common/calendar.hpp"
#include "common/config.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "models/factory.hpp"

using namespace leaf;

int main() {
  const Scale scale = Scale::from_env();
  std::printf("LEAF quickstart (scale=%s)\n", scale.name().c_str());

  // 1. Data: synthetic stand-in for the paper's Fixed dataset (412
  //    eNodeBs x 4.3 years x 224 KPIs at full scale).
  const data::CellularDataset ds = data::generate_fixed_dataset(scale);
  std::printf("dataset: %s, %d eNodeBs, %d days, %d KPIs, %lld logs\n",
              ds.name().c_str(), static_cast<int>(ds.profiles().size()),
              ds.num_days(), ds.num_kpis(),
              static_cast<long long>(ds.total_logs()));

  // 2. Task: forecast downlink volume 180 days ahead from today's full
  //    KPI log (one model for every eNodeB).
  const data::Featurizer featurizer(ds, data::TargetKpi::kDVol);
  const core::EvalConfig cfg = core::make_eval_config(scale);

  // 3. Model: the CatBoost stand-in (gradient-boosted trees).
  const auto model =
      models::make_model(models::ModelFamily::kGbdt, scale, /*seed=*/1);

  // 4. Baseline: train once on the 14 days before July 1, 2018 and never
  //    retrain.
  core::StaticScheme static_scheme;
  const core::EvalResult static_run =
      core::run_scheme(featurizer, *model, static_scheme, cfg);
  std::printf("\nStatic model:   avg NRMSE %.4f over %zu days, "
              "drift flagged %d times\n",
              static_run.avg_nrmse(), static_run.days.size(),
              static_cast<int>(static_run.drift_days.size()));
  for (int d : static_run.drift_days)
    std::printf("  drift detected at %s\n", cal::day_to_string(d).c_str());

  // 5. LEAF: on each detection, explain the drift (permutation importance
  //    -> correlated feature groups -> local error approximation) and
  //    rebuild the training set by informed forgetting + over-sampling.
  const double dispersion = core::kpi_dispersion(ds, data::TargetKpi::kDVol);
  const auto leaf_scheme = core::make_scheme("LEAF", dispersion);
  const core::EvalResult leaf_run =
      core::run_scheme(featurizer, *model, *leaf_scheme, cfg);

  std::printf("\nLEAF:           avg NRMSE %.4f, %d retrains\n",
              leaf_run.avg_nrmse(), leaf_run.retrain_count());
  std::printf("ΔNRMSE̅ vs static: %+.2f%%  (negative = mitigated)\n",
              core::delta_vs_static(leaf_run, static_run));
  std::printf("95th-pct |NE|:  static %.3f -> LEAF %.3f\n", static_run.ne_p95,
              leaf_run.ne_p95);
  return 0;
}
