// Compares every mitigation scheme on one target KPI, printing the
// ΔNRMSE̅-vs-retrains trade-off the paper's Figure 6 visualizes.
//
// Usage: ./scheme_comparison [KPI] [model]
//   KPI   in {DVol, PU, DTP, REst, CDR, GDR}   (default DVol)
//   model in {GBDT, LightGBDT, RandomForest, ExtraTrees, KNeighbors,
//             LSTM, Ridge}                      (default GBDT)
#include <cstdio>
#include <string>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "models/factory.hpp"

using namespace leaf;

int main(int argc, char** argv) {
  const std::string kpi_name = argc > 1 ? argv[1] : "DVol";
  const std::string model_name = argc > 2 ? argv[2] : "GBDT";

  data::TargetKpi target;
  if (!data::parse_target(kpi_name, target)) {
    std::fprintf(stderr, "unknown KPI '%s'\n", kpi_name.c_str());
    return 1;
  }
  models::ModelFamily family;
  if (!models::parse_model_family(model_name, family)) {
    std::fprintf(stderr, "unknown model '%s'\n", model_name.c_str());
    return 1;
  }

  const Scale scale = Scale::from_env();
  std::printf("scheme comparison: %s, %s, scale=%s\n", kpi_name.c_str(),
              model_name.c_str(), scale.name().c_str());

  const data::CellularDataset ds = data::generate_fixed_dataset(scale);
  const data::Featurizer featurizer(ds, target);
  const core::EvalConfig cfg = core::make_eval_config(scale);
  const auto model = models::make_model(family, scale, 1);
  const double dispersion = core::kpi_dispersion(ds, target);
  std::printf("target dispersion (Std/Mean): %.2f -> %s mitigation\n\n",
              dispersion, dispersion >= 1.0 ? "aggressive" : "conservative");

  core::StaticScheme static_scheme;
  const core::EvalResult static_run =
      core::run_scheme(featurizer, *model, static_scheme, cfg);

  TextTable table({"Scheme", "avg NRMSE", "dNRMSE vs static", "#Retrains",
                   "p95 |NE|"});
  table.add_row({"Static", fmt_fixed(static_run.avg_nrmse(), 4), "-", "0",
                 fmt_fixed(static_run.ne_p95, 3)});
  for (const std::string spec :
       {"Naive30", "Naive90", "Triggered", "LEAF", "LEAF3", "LEAF5"}) {
    const auto scheme = core::make_scheme(spec, dispersion);
    const core::EvalResult run =
        core::run_scheme(featurizer, *model, *scheme, cfg);
    table.add_row({spec, fmt_fixed(run.avg_nrmse(), 4),
                   fmt_pct(core::delta_vs_static(run, static_run)),
                   std::to_string(run.retrain_count()),
                   fmt_fixed(run.ne_p95, 3)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
