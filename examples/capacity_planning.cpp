// Capacity-planning case study (the paper's §5 walk-through).
//
// An operator runs a 180-day-ahead downlink-volume forecaster to plan
// infrastructure augmentation.  This example plays the full story:
//   1. deploy a model trained on two weeks of mid-2018 data;
//   2. watch its NRMSE stream with KSWIN until drift fires in early 2022;
//   3. explain the drift: which correlated feature groups are
//      responsible, where in feature space the error lives (LEAplot),
//      and how over/under-estimation evolved over time (LEAgram);
//   4. localize the worst-hit eNodeBs by area;
//   5. apply LEAF's informed mitigation and compare before/after.
#include <algorithm>
#include <cstdio>
#include <map>

#include "common/calendar.hpp"
#include "common/config.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "explain/grouping.hpp"
#include "explain/importance.hpp"
#include "explain/lea.hpp"
#include "models/factory.hpp"

using namespace leaf;

int main() {
  const Scale scale = Scale::from_env();
  std::printf("LEAF capacity-planning case study (scale=%s)\n\n",
              scale.name().c_str());

  const data::CellularDataset ds = data::generate_fixed_dataset(scale);
  const data::Featurizer featurizer(ds, data::TargetKpi::kDVol);
  const double norm_range = featurizer.norm_range();

  // --- 1. deploy -----------------------------------------------------------
  const int anchor = cal::anchor_2018_07_01();
  const data::SupervisedSet train = featurizer.window(anchor - 13, anchor);
  const auto model = models::make_model(models::ModelFamily::kGbdt, scale, 7);
  model->fit(train.X, train.y);
  std::printf("deployed GBDT forecaster: trained on %zu samples "
              "(2018-06-18 .. 2018-07-01), horizon 180 days\n\n",
              train.size());

  // --- 2. monitor: where does the detector fire? ---------------------------
  core::StaticScheme static_scheme;
  const core::EvalConfig cfg = core::make_eval_config(scale);
  const core::EvalResult static_run =
      core::run_scheme(featurizer, *model, static_scheme, cfg);
  std::printf("KSWIN detections on the static model's NRMSE stream:\n");
  for (int d : static_run.drift_days)
    std::printf("  %s\n", cal::day_to_string(d).c_str());

  // --- 3. explain the early-2022 drift --------------------------------------
  const data::SupervisedSet early_2022 = featurizer.window(
      cal::early_2022() - featurizer.horizon(),
      ds.num_days() - 1 - featurizer.horizon());
  Rng rng(515);
  const std::vector<double> importance = explain::permutation_importance(
      *model, early_2022.X, early_2022.y, norm_range, rng);
  // Restrict explanations to KPI columns (temporal/area encodings are not
  // operator-meaningful drift factors).
  std::vector<double> kpi_importance = importance;
  for (std::size_t c = static_cast<std::size_t>(featurizer.num_kpi_features());
       c < kpi_importance.size(); ++c)
    kpi_importance[c] = 0.0;
  explain::GroupingConfig gcfg;
  gcfg.max_groups = 3;
  const auto groups = explain::group_features(early_2022.X, kpi_importance, gcfg);

  std::printf("\ncontributing feature groups for the early-2022 drift:\n");
  for (std::size_t g = 0; g < groups.size(); ++g) {
    std::printf("  group %zu: representative '%s' (importance %.4f, %zu "
                "correlated features)\n",
                g + 1,
                featurizer.feature_names()[static_cast<std::size_t>(
                    groups[g].representative)].c_str(),
                groups[g].importance, groups[g].members.size());
  }

  if (!groups.empty()) {
    const int rep = groups[0].representative;
    const std::string rep_name =
        featurizer.feature_names()[static_cast<std::size_t>(rep)];
    const data::SupervisedSet full_test = featurizer.window(
        anchor + 1, ds.num_days() - 1 - featurizer.horizon());
    const explain::LeaPlot leaplot = explain::build_leaplot(
        *model,
        {{"train", &train}, {"full_test", &full_test}, {"early_2022", &early_2022}},
        rep, rep_name, 40, norm_range);
    std::printf("\n%s\n", leaplot.render().c_str());

    const explain::LeaGram leagram =
        explain::build_leagram(*model, full_test, rep, rep_name, 20, norm_range);
    std::printf("%s\n", leagram.render().c_str());
    std::printf("reading the LEAgram: '@' cells after March 2020 are "
                "overestimation (operators would over-build); '#' cells are "
                "underestimation (users would suffer).\n\n");
  }

  // --- 4. localize the worst eNodeBs ----------------------------------------
  const std::vector<double> pred = model->predict(early_2022.X);
  std::vector<std::pair<double, int>> err(early_2022.size());
  for (std::size_t i = 0; i < early_2022.size(); ++i)
    err[i] = {std::abs(pred[i] - early_2022.y[i]), early_2022.enb[i]};
  std::sort(err.begin(), err.end(), std::greater<>());
  std::map<data::AreaType, int> tally;
  const std::size_t top = std::max<std::size_t>(1, err.size() / 20);
  for (std::size_t i = 0; i < top; ++i)
    ++tally[ds.profiles()[static_cast<std::size_t>(err[i].second)].area];
  std::printf("top-5%% error samples by area:");
  for (const auto& [area, n] : tally)
    std::printf("  %s=%d", data::to_string(area).c_str(), n);
  std::printf("\n(the paper traces these to suburban commuter sites whose "
              "mobility changed)\n\n");

  // --- 5. mitigate ---------------------------------------------------------
  const double dispersion = core::kpi_dispersion(ds, data::TargetKpi::kDVol);
  const auto leaf = core::make_scheme("LEAF3", dispersion);
  const core::EvalResult leaf_run =
      core::run_scheme(featurizer, *model, *leaf, cfg);
  std::printf("LEAF(3 groups) mitigation: ΔNRMSE̅ %+.2f%% vs static with %d "
              "retrains; p95 |NE| %.3f -> %.3f\n",
              core::delta_vs_static(leaf_run, static_run),
              leaf_run.retrain_count(), static_run.ne_p95, leaf_run.ne_p95);
  return 0;
}
