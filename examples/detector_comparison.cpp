// Compares the drift detectors on (a) controlled synthetic streams with a
// known change point and (b) the NRMSE stream of a real forecasting model
// on the synthetic cellular data — the experiment behind the paper's
// footnote 2 ("We also tested ADWIN, DDM, HDDM, EDDM, PageHinkley, but
// KSWIN was the most effective on our NRMSE series").
#include <cstdio>
#include <memory>
#include <vector>

#include "common/calendar.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "drift/adwin.hpp"
#include "drift/ddm.hpp"
#include "drift/kswin.hpp"
#include "models/factory.hpp"

using namespace leaf;

namespace {

std::vector<std::unique_ptr<drift::DriftDetector>> make_detectors() {
  std::vector<std::unique_ptr<drift::DriftDetector>> out;
  drift::KswinConfig k;
  k.window_size = 60;
  k.stat_size = 20;
  out.push_back(std::make_unique<drift::Kswin>(k));
  out.push_back(std::make_unique<drift::Adwin>());
  out.push_back(std::make_unique<drift::Ddm>());
  out.push_back(std::make_unique<drift::Eddm>());
  out.push_back(std::make_unique<drift::HddmA>());
  drift::PageHinkleyConfig p;
  p.delta = 0.002;
  p.lambda = 0.5;
  out.push_back(std::make_unique<drift::PageHinkley>(p));
  return out;
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  std::printf("drift-detector comparison (scale=%s)\n\n", scale.name().c_str());

  // --- (a) controlled change points ----------------------------------------
  std::printf("--- synthetic streams: level shift of S at t=500 (800 pts) ---\n");
  TextTable ta({"Detector", "S=0 (false alarms)", "S=0.1 (lag)", "S=0.5 (lag)"});
  for (std::size_t di = 0; di < 6; ++di) {
    std::vector<std::string> row;
    row.push_back(make_detectors()[di]->name());
    for (double shift : {0.0, 0.1, 0.5}) {
      auto det = std::move(make_detectors()[di]);
      Rng rng(17);
      int first = -1, alarms = 0;
      for (int t = 0; t < 800; ++t) {
        const double v = 0.05 + (t >= 500 ? shift : 0.0) + 0.01 * rng.normal();
        if (det->update(v)) {
          ++alarms;
          if (t >= 500 && first < 0) first = t - 500;
        }
      }
      if (shift == 0.0) {
        row.push_back(std::to_string(alarms));
      } else {
        row.push_back(first >= 0 ? std::to_string(first) : "missed");
      }
    }
    ta.add_row(std::move(row));
  }
  std::printf("%s\n", ta.render().c_str());

  // --- (b) a real NRMSE stream ---------------------------------------------
  std::printf("--- NRMSE stream of a static GBDT forecasting DVol ---\n");
  const data::CellularDataset ds = data::generate_fixed_dataset(scale);
  const data::Featurizer featurizer(ds, data::TargetKpi::kDVol);
  const auto model = models::make_model(models::ModelFamily::kGbdt, scale, 7);
  core::StaticScheme scheme;
  const core::EvalResult run = core::run_scheme(
      featurizer, *model, scheme, core::make_eval_config(scale));

  TextTable tb({"Detector", "#Detections", "detection dates"});
  for (auto& det : make_detectors()) {
    std::vector<int> days;
    for (std::size_t i = 0; i < run.nrmse.size(); ++i)
      if (det->update(run.nrmse[i])) days.push_back(run.days[i]);
    std::string dates;
    for (std::size_t i = 0; i < std::min<std::size_t>(5, days.size()); ++i) {
      if (!dates.empty()) dates += ", ";
      dates += cal::day_to_string(days[i]);
    }
    if (days.size() > 5) dates += ", ...";
    tb.add_row({det->name(), std::to_string(days.size()), dates});
  }
  std::printf("%s", tb.render().c_str());
  std::printf("\nknown events: COVID lockdown %s, recovery %s, 2021 drift "
              "onset %s, upgrades 2019-06-10 / 2019-12-05 / 2021-04-20 / "
              "2021-11-10\n",
              cal::day_to_string(cal::covid_start()).c_str(),
              cal::day_to_string(cal::covid_recovery_end()).c_str(),
              cal::day_to_string(cal::gradual_drift_start()).c_str());
  return 0;
}
