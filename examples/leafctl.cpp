// leafctl — command-line driver for the LEAF library.
//
// Classic mode runs one (dataset, KPI, model, scheme) evaluation and
// prints the summary plus, optionally, the full NRMSE time-series as CSV.
// Useful for scripting sweeps beyond the canned benches.
//
//   leafctl [--dataset fixed|evolving] [--kpi DVol|PU|DTP|REst|CDR|GDR]
//           [--model GBDT|LightGBDT|RandomForest|ExtraTrees|KNeighbors|
//                    LSTM|Ridge]
//           [--scheme Static|Naive<N>|Triggered|LEAF|LEAF<k>|
//                     PairedLearners|AUE2]
//           [--seed N] [--stride N] [--train-window N] [--horizon N]
//           [--csv out.csv] [--threads N] [--snapshot-dir DIR] [--list]
//
// Serve mode drives a sharded fleet (leaf::serve) with periodic
// snapshots and crash recovery:
//
//   leafctl serve [--dataset fixed|evolving] [--kpis DVol,PU,...|all]
//                 [--model MODEL] [--scheme SCHEME] [--shards N]
//                 [--seed N] [--threads N]
//                 [--snapshot-every K] [--snapshot-dir DIR] [--resume]
//                 [--snapshot-keep K] [--max-shard-retries N]
//                 [--breaker-max-retrains N] [--breaker-window DAYS]
//                 [--breaker-cooldown DAYS] [--chaos SPEC]
//
// `--resume` with an empty or missing snapshot directory starts fresh
// with a warning; genuinely malformed on-disk state exits with code 2.
// `--chaos` (or the LEAF_CHAOS environment variable) enables the seeded
// fault-injection schedule of leaf::chaos; see chaos/chaos.hpp for the
// spec grammar.
//
// Unknown flags are rejected with usage() and exit code 2 in both modes.
// The LEAF_SCALE environment variable controls dataset size as usual.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "common/calendar.hpp"
#include "common/csv.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "models/factory.hpp"
#include "obs/events.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "par/parallel.hpp"
#include "serve/runtime.hpp"

using namespace leaf;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dataset fixed|evolving] [--kpi KPI] "
               "[--model MODEL] [--scheme SCHEME] [--seed N] [--stride N] "
               "[--train-window N] [--horizon N] [--csv FILE] [--threads N] "
               "[--snapshot-dir DIR] [--metrics-out FILE] [--events-out FILE] "
               "[--list]\n"
               "       %s serve [--dataset fixed|evolving] [--kpis A,B|all] "
               "[--model MODEL] [--scheme SCHEME] [--shards N] [--seed N] "
               "[--threads N] [--snapshot-every K] [--snapshot-dir DIR] "
               "[--resume] [--snapshot-keep K] [--max-shard-retries N] "
               "[--breaker-max-retrains N] [--breaker-window DAYS] "
               "[--breaker-cooldown DAYS] [--chaos SPEC] "
               "[--metrics-out FILE] [--events-out FILE] "
               "[--summary-every N]\n"
               "flags: --metrics-out writes a Prometheus text scrape "
               "(.json suffix: JSON); --events-out writes the drift-event "
               "JSONL; LEAF_LOG_LEVEL=error|warn|info|debug controls stderr "
               "verbosity\n",
               argv0, argv0);
}

/// Writes `content` to `path`; false (with an error log) on failure.
bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    LEAF_LOG_ERROR("cannot write '%s'", path.c_str());
    return false;
  }
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  if (!ok) LEAF_LOG_ERROR("short write to '%s'", path.c_str());
  return ok;
}

bool wants_json(const std::string& path) {
  return path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
}

void list_options() {
  std::printf("datasets: fixed evolving\nKPIs:     ");
  for (data::TargetKpi t : data::kAllTargets)
    std::printf("%s ", data::to_string(t).c_str());
  std::printf("\nmodels:   GBDT LightGBDT RandomForest ExtraTrees "
              "KNeighbors LSTM Ridge\n");
  std::printf("schemes:  Static Naive<N> Triggered LEAF LEAF<k> "
              "PairedLearners AUE2\n");
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int run_serve(int argc, char** argv) {
  std::string dataset = "fixed";
  std::string kpis = "DVol";
  std::string model_name = "GBDT";
  std::string scheme_spec = "LEAF";
  std::string snapshot_dir;
  std::string metrics_out;
  std::string events_out;
  std::uint64_t seed = 2024;
  int shards = 0;  // 0 = one per KPI
  int threads = -1;
  int snapshot_every = 0;
  int summary_every = 20;
  bool resume = false;
  serve::SupervisorConfig supervisor;
  std::string chaos_spec;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dataset") {
      dataset = next();
    } else if (arg == "--kpis") {
      kpis = next();
    } else if (arg == "--model") {
      model_name = next();
    } else if (arg == "--scheme") {
      scheme_spec = next();
    } else if (arg == "--shards") {
      shards = std::atoi(next());
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = std::atoi(next());
    } else if (arg == "--snapshot-every") {
      snapshot_every = std::atoi(next());
    } else if (arg == "--snapshot-dir") {
      snapshot_dir = next();
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--snapshot-keep") {
      supervisor.snapshot_keep = std::atoi(next());
    } else if (arg == "--max-shard-retries") {
      supervisor.recovery.max_retries = std::atoi(next());
    } else if (arg == "--breaker-max-retrains") {
      supervisor.breaker.max_retrains = std::atoi(next());
    } else if (arg == "--breaker-window") {
      supervisor.breaker.window_days = std::atoi(next());
    } else if (arg == "--breaker-cooldown") {
      supervisor.breaker.cooldown_days = std::atoi(next());
    } else if (arg == "--chaos") {
      chaos_spec = next();
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--events-out") {
      events_out = next();
    } else if (arg == "--summary-every") {
      summary_every = std::atoi(next());
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (threads >= 0) par::set_threads(threads);
  if ((snapshot_every > 0 || resume) && snapshot_dir.empty()) {
    std::fprintf(stderr,
                 "--snapshot-every / --resume require --snapshot-dir\n");
    return 2;
  }

  models::ModelFamily family;
  if (!models::parse_model_family(model_name, family)) {
    std::fprintf(stderr, "unknown model '%s' (--list to enumerate)\n",
                 model_name.c_str());
    return 2;
  }
  if (dataset != "fixed" && dataset != "evolving") {
    std::fprintf(stderr, "unknown dataset '%s'\n", dataset.c_str());
    return 2;
  }

  std::vector<data::TargetKpi> targets;
  if (kpis == "all") {
    targets.assign(data::kAllTargets.begin(), data::kAllTargets.end());
  } else {
    for (const std::string& name : split_csv(kpis)) {
      data::TargetKpi t;
      if (!data::parse_target(name, t)) {
        std::fprintf(stderr, "unknown KPI '%s' (--list to enumerate)\n",
                     name.c_str());
        return 2;
      }
      targets.push_back(t);
    }
  }
  if (targets.empty()) {
    std::fprintf(stderr, "no KPIs given\n");
    return 2;
  }

  // --chaos takes precedence over the LEAF_CHAOS environment variable.
  try {
    supervisor.chaos = chaos_spec.empty() ? chaos::ChaosConfig::from_env()
                                          : chaos::ChaosConfig::parse(chaos_spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (supervisor.snapshot_keep < 1 || supervisor.recovery.max_retries < 0 ||
      supervisor.breaker.max_retrains < 0) {
    std::fprintf(stderr,
                 "--snapshot-keep must be >= 1, --max-shard-retries and "
                 "--breaker-max-retrains >= 0\n");
    return 2;
  }

  const Scale scale = Scale::from_env();
  const data::CellularDataset ds = dataset == "fixed"
                                       ? data::generate_fixed_dataset(scale)
                                       : data::generate_evolving_dataset(scale);

  // Shard list: cycle through the KPI list until `shards` shards exist
  // (default: one per KPI).  Seeds are left at 0 so the runtime derives
  // them from the fleet seed via Rng::substream.
  const std::size_t n_shards =
      shards > 0 ? static_cast<std::size_t>(shards) : targets.size();
  std::vector<serve::ShardSpec> specs;
  specs.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i)
    specs.push_back({targets[i % targets.size()], family, scheme_spec, 0});

  serve::FleetRuntime fleet(ds, scale, std::move(specs), seed, supervisor);
  std::printf("leafctl serve: %zu shard(s), %s / %s / %s (scale=%s, "
              "seed=%llu)\n",
              fleet.num_shards(), dataset.c_str(), model_name.c_str(),
              scheme_spec.c_str(), scale.name().c_str(),
              static_cast<unsigned long long>(seed));
  if (supervisor.chaos.any())
    LEAF_LOG_WARN("chaos enabled: %s", supervisor.chaos.to_string().c_str());

  if (resume) {
    if (!serve::FleetRuntime::has_snapshot(snapshot_dir)) {
      // An empty (or not yet created) snapshot directory is the normal
      // first boot of a service configured to resume — start fresh.
      LEAF_LOG_WARN("no snapshot in %s; starting fresh",
                    snapshot_dir.c_str());
    } else {
      try {
        fleet.restore(snapshot_dir);
      } catch (const io::SnapshotError& e) {
        // There IS on-disk state but it cannot be trusted (wrong fleet,
        // unreadable everywhere): refuse to guess, distinct exit code.
        LEAF_LOG_ERROR("resume from %s failed: %s", snapshot_dir.c_str(),
                       e.what());
        return 2;
      }
      LEAF_LOG_INFO("resumed from %s at step %llu", snapshot_dir.c_str(),
                    static_cast<unsigned long long>(fleet.steps_run()));
      if (fleet.stats().snapshot_fallbacks > 0)
        LEAF_LOG_WARN("%d shard(s) restored from an older generation",
                      fleet.stats().snapshot_fallbacks);
    }
  }

  while (fleet.step()) {
    if (snapshot_every > 0 && fleet.steps_run() % snapshot_every == 0)
      fleet.snapshot(snapshot_dir);  // logs at INFO internally
    if (summary_every > 0 && fleet.steps_run() % summary_every == 0) {
      const serve::ServeStats s = fleet.stats();
      LEAF_LOG_INFO(
          "serve: step %llu, shards %zu/%zu done, %d drift events, "
          "%d retrains",
          static_cast<unsigned long long>(s.total_steps), s.shards_done,
          s.shards.size(), s.total_drift_events, s.total_retrains);
    }
  }
  if (!snapshot_dir.empty()) fleet.snapshot(snapshot_dir);

  const serve::ServeStats stats = fleet.stats();
  const std::vector<core::EvalResult> results = fleet.results();
  std::printf("\nfleet complete: %llu steps\n",
              static_cast<unsigned long long>(stats.total_steps));
  std::printf("%-6s %-12s %-10s %8s %8s %8s %8s  %s\n", "kpi", "model",
              "scheme", "days", "nrmse", "drifts", "retrains", "health");
  for (std::size_t i = 0; i < stats.shards.size(); ++i) {
    const serve::ShardStats& s = stats.shards[i];
    std::printf("%-6s %-12s %-10s %8d %8.4f %8d %8d  %s\n", s.kpi.c_str(),
                s.model.c_str(), s.scheme.c_str(), s.days_evaluated,
                results[i].avg_nrmse(), s.drift_events, s.retrains,
                serve::to_string(s.health));
  }
  if (stats.total_faults > 0 || stats.total_breaker_trips > 0)
    std::printf("supervision: %d fault(s), %zu quarantined, %d breaker "
                "trip(s), %d suppressed retrain(s)\n",
                stats.total_faults, stats.shards_quarantined,
                stats.total_breaker_trips, stats.total_suppressed_retrains);
  if (!snapshot_dir.empty())
    LEAF_LOG_INFO("final snapshot in %s", snapshot_dir.c_str());
  if (!metrics_out.empty()) {
    const std::string scrape = wants_json(metrics_out)
                                   ? obs::MetricsRegistry::global().scrape_json()
                                   : fleet.scrape();
    if (!write_text_file(metrics_out, scrape)) return 1;
    LEAF_LOG_INFO("metrics written to %s", metrics_out.c_str());
  }
  if (!events_out.empty()) {
    if (!write_text_file(events_out, fleet.events_jsonl())) return 1;
    LEAF_LOG_INFO("%zu drift events written to %s",
                  fleet.merged_events().size(), events_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "serve") == 0)
    return run_serve(argc, argv);

  std::string dataset = "fixed";
  std::string kpi = "DVol";
  std::string model_name = "GBDT";
  std::string scheme_spec = "LEAF";
  std::string csv_path;
  std::string snapshot_dir;
  std::string metrics_out;
  std::string events_out;
  std::uint64_t seed = 2024;
  int stride = -1, train_window = -1, horizon = -1, threads = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dataset") {
      dataset = next();
    } else if (arg == "--kpi") {
      kpi = next();
    } else if (arg == "--model") {
      model_name = next();
    } else if (arg == "--scheme") {
      scheme_spec = next();
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--stride") {
      stride = std::atoi(next());
    } else if (arg == "--train-window") {
      train_window = std::atoi(next());
    } else if (arg == "--horizon") {
      horizon = std::atoi(next());
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--threads") {
      threads = std::atoi(next());
    } else if (arg == "--snapshot-dir") {
      snapshot_dir = next();
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--events-out") {
      events_out = next();
    } else if (arg == "--list") {
      list_options();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (threads >= 0) par::set_threads(threads);

  data::TargetKpi target;
  if (!data::parse_target(kpi, target)) {
    std::fprintf(stderr, "unknown KPI '%s' (--list to enumerate)\n",
                 kpi.c_str());
    return 2;
  }
  models::ModelFamily family;
  if (!models::parse_model_family(model_name, family)) {
    std::fprintf(stderr, "unknown model '%s' (--list to enumerate)\n",
                 model_name.c_str());
    return 2;
  }
  if (dataset != "fixed" && dataset != "evolving") {
    std::fprintf(stderr, "unknown dataset '%s'\n", dataset.c_str());
    return 2;
  }

  const Scale scale = Scale::from_env();
  std::printf("leafctl: %s / %s / %s / %s (scale=%s, seed=%llu)\n",
              dataset.c_str(), kpi.c_str(), model_name.c_str(),
              scheme_spec.c_str(), scale.name().c_str(),
              static_cast<unsigned long long>(seed));

  const data::CellularDataset ds = dataset == "fixed"
                                       ? data::generate_fixed_dataset(scale)
                                       : data::generate_evolving_dataset(scale);
  core::EvalConfig cfg = core::make_eval_config(scale, seed);
  if (stride > 0) cfg.stride = stride;
  if (train_window > 0) cfg.train_window = train_window;
  if (horizon > 0) cfg.horizon = horizon;

  const data::Featurizer featurizer(ds, target, cfg.horizon);
  const auto model = models::make_model(family, scale, seed);
  const double dispersion = core::kpi_dispersion(ds, target);

  core::StaticScheme static_scheme;
  const core::EvalResult static_run =
      core::run_scheme(featurizer, *model, static_scheme, cfg);

  // Drift events are recorded for the mitigated run only (the static
  // baseline never drifts or retrains by construction).
  obs::EventLog event_log;
  core::EvalResult run = static_run;
  if (scheme_spec != "Static") {
    std::unique_ptr<core::MitigationScheme> scheme;
    try {
      scheme = core::make_scheme(scheme_spec, dispersion, seed ^ 0x99);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    cfg.events = &event_log;
    run = core::run_scheme(featurizer, *model, *scheme, cfg);
    cfg.events = nullptr;
  }

  std::printf("\nevaluated %zu days (%s .. %s)\n", run.days.size(),
              cal::day_to_string(run.days.front()).c_str(),
              cal::day_to_string(run.days.back()).c_str());
  std::printf("avg NRMSE:   %.4f  (static %.4f)\n", run.avg_nrmse(),
              static_run.avg_nrmse());
  std::printf("ΔNRMSE̅:      %+.2f%% vs static\n",
              core::delta_vs_static(run, static_run));
  std::printf("retrains:    %d (drift detections: %zu)\n",
              run.retrain_count(), run.drift_days.size());
  std::printf("p95 |NE|:    %.4f  (static %.4f)\n", run.ne_p95,
              static_run.ne_p95);
  std::printf("dispersion:  %.2f (%s mitigation path)\n", dispersion,
              dispersion >= 1.0 ? "high" : "low");

  if (!snapshot_dir.empty()) {
    // A single-shard fleet snapshot of this (KPI, model, scheme) pipeline
    // at its end state, resumable with `leafctl serve --resume`.  Uses the
    // scale's standard evaluation config, as serve mode does.
    serve::FleetRuntime fleet(ds, scale,
                              {{target, family, scheme_spec, seed}}, seed);
    fleet.run_to_end();
    const std::uint64_t bytes = fleet.snapshot(snapshot_dir);
    std::printf("snapshot:    %s (%llu bytes)\n", snapshot_dir.c_str(),
                static_cast<unsigned long long>(bytes));
  }

  if (!csv_path.empty()) {
    CsvWriter w(csv_path);
    if (!w.ok()) {
      std::fprintf(stderr, "cannot write '%s'\n", csv_path.c_str());
      return 1;
    }
    w.row({"date", "nrmse", "static_nrmse", "mean_ne", "drift", "retrain"});
    for (std::size_t i = 0; i < run.days.size(); ++i) {
      const int d = run.days[i];
      const bool drift = std::find(run.drift_days.begin(),
                                   run.drift_days.end(),
                                   d) != run.drift_days.end();
      const bool retrain = std::find(run.retrain_days.begin(),
                                     run.retrain_days.end(),
                                     d) != run.retrain_days.end();
      w.row({cal::day_to_string(d), fmt(run.nrmse[i]),
             i < static_run.nrmse.size() ? fmt(static_run.nrmse[i]) : "",
             fmt(run.mean_ne[i]), drift ? "1" : "0", retrain ? "1" : "0"});
    }
    std::printf("series written to %s\n", csv_path.c_str());
  }
  if (!metrics_out.empty()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    const std::string scrape =
        wants_json(metrics_out) ? reg.scrape_json() : reg.scrape();
    if (!write_text_file(metrics_out, scrape)) return 1;
    LEAF_LOG_INFO("metrics written to %s", metrics_out.c_str());
  }
  if (!events_out.empty()) {
    if (!write_text_file(events_out, event_log.to_jsonl())) return 1;
    LEAF_LOG_INFO("%zu drift events written to %s", event_log.size(),
                  events_out.c_str());
  }
  return 0;
}
