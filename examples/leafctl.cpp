// leafctl — command-line driver for the LEAF library.
//
// Classic mode runs one (dataset, KPI, model, scheme) evaluation and
// prints the summary plus, optionally, the full NRMSE time-series as CSV.
// Useful for scripting sweeps beyond the canned benches.
//
//   leafctl [--dataset fixed|evolving] [--kpi DVol|PU|DTP|REst|CDR|GDR]
//           [--model GBDT|LightGBDT|RandomForest|ExtraTrees|KNeighbors|
//                    LSTM|Ridge]
//           [--scheme Static|Naive<N>|Triggered|LEAF|LEAF<k>|
//                     PairedLearners|AUE2]
//           [--seed N] [--stride N] [--train-window N] [--horizon N]
//           [--csv out.csv] [--threads N] [--snapshot-dir DIR] [--list]
//
// Serve mode drives a sharded fleet (leaf::serve) with periodic
// snapshots and crash recovery:
//
//   leafctl serve [--dataset fixed|evolving] [--kpis DVol,PU,...|all]
//                 [--model MODEL] [--scheme SCHEME] [--shards N]
//                 [--seed N] [--threads N]
//                 [--snapshot-every K] [--snapshot-dir DIR] [--resume]
//                 [--snapshot-keep K] [--max-shard-retries N]
//                 [--breaker-max-retrains N] [--breaker-window DAYS]
//                 [--breaker-cooldown DAYS] [--chaos SPEC]
//                 [--listen HOST:PORT] [--serve-requests N]
//                 [--net-queue-depth N] [--net-max-batch N]
//                 [--net-deadline-ms N] [--trace-out FILE]
//                 [--trace-sample-every N] [--slo SPEC]
//
// `--listen` additionally runs the leaf::net RPC front end on the same
// thread as the fleet: the socket event loop is polled between fleet
// steps, and once the fleet completes the process keeps serving queries
// against the finished models (forever, or until `--serve-requests N`
// responses have been sent — the CI smoke's termination condition).
//
// `--trace-out FILE` (requires --listen) records every sampled RPC's
// span tree — request → decode / admission / batch / shard-predict /
// respond — as a Chrome trace-event JSON file (load it in
// chrome://tracing or Perfetto).  `--trace-sample-every N` keeps every
// N-th trace id (deterministic: the decision is a pure function of the
// id, never of wall clock).  `--slo SPEC` arms the burn-rate watchdog
// (obs/slo.hpp spec grammar, e.g. "window=8,deadline-miss=0.3"): each
// fleet step / poll cycle feeds it one sample of serving-plane counter
// deltas, and state transitions emit slo-burn-warning / slo-burn-critical
// / slo-recovered supervision events and trip the leaf_slo_state gauge.
//
// Query mode is the matching client:
//
//   leafctl query --connect HOST:PORT [--status] [--metrics [--json]]
//                 [--slo]
//                 [--series NAME [--labels SUBSTR] [--from N] [--to N]
//                  [--resolution raw|10|100] [--max-series N]]
//                 [--predict --shard N [--rows K] [--deadline-ms N]
//                  [--seed N]]
//
// `--metrics` prints the server's scrape verbatim: Prometheus text by
// default, the full JSON registry dump with `--json`.  `--slo` prints
// the SLO slice only — the leaf_slo_state gauge and the latency summary
// quantile lines (leaf_rpc_latency_seconds and friends).  `--series`
// range-queries the server's embedded telemetry store (leaf::tsdb) —
// NAME is exact or a trailing-'*' prefix, steps are logical fleet-step
// indices, and `--resolution 10|100` returns the downsampled
// mean/min/max/count tiers instead of raw points.
//
// Top mode is a live fleet view — a periodic poll of status + scrape +
// telemetry series over one connection:
//
//   leafctl top --connect HOST:PORT [--interval-ms N] [--iterations N]
//
// Each refresh prints fleet progress, per-shard health, throughput and
// shed/deadline-miss deltas, the p99 RPC latency quantiles, the SLO and
// telemetry-drift gauges, and sparkline trends of the recording-rule
// series.  `--iterations N` stops after N refreshes (the CI smoke runs
// one); the default polls until killed.
//
// `--events-out FILE` (classic and serve modes) writes the drift-event
// JSONL; `--events-max-mb N` caps it with size-based rotation (newest
// tail in FILE, older chunks in FILE.1 / FILE.2, oldest lines dropped).
//
// `--resume` with an empty or missing snapshot directory starts fresh
// with a warning; genuinely malformed on-disk state exits with code 2.
// `--chaos` (or the LEAF_CHAOS environment variable) enables the seeded
// fault-injection schedule of leaf::chaos; see chaos/chaos.hpp for the
// spec grammar.
//
// Unknown flags are rejected with usage() and exit code 2 in all modes.
// The LEAF_SCALE environment variable controls dataset size as usual.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chaos/chaos.hpp"
#include "common/calendar.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "models/factory.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/tcp.hpp"
#include "obs/events.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "par/parallel.hpp"
#include "serve/runtime.hpp"

using namespace leaf;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dataset fixed|evolving] [--kpi KPI] "
               "[--model MODEL] [--scheme SCHEME] [--seed N] [--stride N] "
               "[--train-window N] [--horizon N] [--csv FILE] [--threads N] "
               "[--snapshot-dir DIR] [--metrics-out FILE] [--events-out FILE] "
               "[--events-max-mb N] [--list]\n"
               "       %s serve [--dataset fixed|evolving] [--kpis A,B|all] "
               "[--model MODEL] [--scheme SCHEME] [--shards N] [--seed N] "
               "[--threads N] [--snapshot-every K] [--snapshot-dir DIR] "
               "[--resume] [--snapshot-keep K] [--max-shard-retries N] "
               "[--breaker-max-retrains N] [--breaker-window DAYS] "
               "[--breaker-cooldown DAYS] [--chaos SPEC] "
               "[--metrics-out FILE] [--events-out FILE] "
               "[--events-max-mb N] "
               "[--summary-every N] [--listen HOST:PORT] "
               "[--serve-requests N] [--net-queue-depth N] "
               "[--net-max-batch N] [--net-deadline-ms N] "
               "[--trace-out FILE] [--trace-sample-every N] [--slo SPEC]\n"
               "       %s query --connect HOST:PORT [--status] "
               "[--metrics [--json]] [--slo] [--series NAME "
               "[--labels SUBSTR] [--from N] [--to N] "
               "[--resolution raw|10|100] [--max-series N]] "
               "[--predict --shard N "
               "[--rows K] [--deadline-ms N] [--seed N]]\n"
               "       %s top --connect HOST:PORT [--interval-ms N] "
               "[--iterations N]\n"
               "flags: --metrics-out writes a Prometheus text scrape "
               "(.json suffix: JSON); --events-out writes the drift-event "
               "JSONL (--events-max-mb N rotates it across FILE FILE.1 "
               "FILE.2); --listen serves the leaf::net RPC protocol; "
               "--trace-out records Chrome trace-event spans for sampled "
               "RPCs (--trace-sample-every N keeps every N-th trace); "
               "--slo SPEC arms the burn-rate watchdog (serve) / prints "
               "the SLO scrape slice (query); query --series queries the "
               "embedded telemetry store; query --metrics --json "
               "dumps the full JSON registry; top polls a live fleet "
               "view every --interval-ms; "
               "LEAF_LOG_LEVEL=error|warn|info|debug controls stderr "
               "verbosity\n",
               argv0, argv0, argv0, argv0);
}

/// Writes `content` to `path`; false (with an error log) on failure.
bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    LEAF_LOG_ERROR("cannot write '%s'", path.c_str());
    return false;
  }
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  if (!ok) LEAF_LOG_ERROR("short write to '%s'", path.c_str());
  return ok;
}

bool wants_json(const std::string& path) {
  return path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
}

/// Writes the drift-event JSONL, size-capped when `max_mb` > 0 (rotation
/// across path / path.1 / path.2).  False (with an error log) on failure.
bool write_events(const std::string& path,
                  const std::vector<obs::Event>& events,
                  std::uint64_t max_mb) {
  try {
    obs::EventLog::write_jsonl_rotated(path, events, /*with_timing=*/true,
                                       max_mb * 1024 * 1024);
  } catch (const io::SnapshotError& e) {
    LEAF_LOG_ERROR("cannot write '%s': %s", path.c_str(), e.what());
    return false;
  }
  LEAF_LOG_INFO("%zu event(s) written to %s", events.size(), path.c_str());
  return true;
}

void list_options() {
  std::printf("datasets: fixed evolving\nKPIs:     ");
  for (data::TargetKpi t : data::kAllTargets)
    std::printf("%s ", data::to_string(t).c_str());
  std::printf("\nmodels:   GBDT LightGBDT RandomForest ExtraTrees "
              "KNeighbors LSTM Ridge\n");
  std::printf("schemes:  Static Naive<N> Triggered LEAF LEAF<k> "
              "PairedLearners AUE2\n");
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// --- shared flag parsing ---------------------------------------------------
//
// One option table serves every mode: a FlagSpec binds a flag name to the
// variable it fills, so the per-mode "parse loop" is just the table.
// Value-taking flags with a missing value and unknown flags keep the
// historical strict behavior: usage() and exit code 2.

enum class FlagKind { kString, kInt, kU64, kU32, kBool };

struct FlagSpec {
  const char* name;
  FlagKind kind;
  void* target;
};

/// Tries argv[i] against the table; consumes the flag's value (advancing
/// i) on a match.  Exits 2 when a value-taking flag ends the argv.
bool parse_flag(const std::vector<FlagSpec>& flags, int argc, char** argv,
                int& i) {
  const std::string arg = argv[i];
  for (const FlagSpec& f : flags) {
    if (arg != f.name) continue;
    if (f.kind == FlagKind::kBool) {
      *static_cast<bool*>(f.target) = true;
      return true;
    }
    if (i + 1 >= argc) {
      usage(argv[0]);
      std::exit(2);
    }
    const char* value = argv[++i];
    switch (f.kind) {
      case FlagKind::kString:
        *static_cast<std::string*>(f.target) = value;
        break;
      case FlagKind::kInt:
        *static_cast<int*>(f.target) = std::atoi(value);
        break;
      case FlagKind::kU64:
        *static_cast<std::uint64_t*>(f.target) =
            std::strtoull(value, nullptr, 10);
        break;
      case FlagKind::kU32:
        *static_cast<std::uint32_t*>(f.target) = static_cast<std::uint32_t>(
            std::strtoul(value, nullptr, 10));
        break;
      case FlagKind::kBool:
        break;  // handled above
    }
    return true;
  }
  return false;
}

/// Runs the table over argv[start..].  Returns -1 when parsing completed
/// and the caller should proceed; otherwise the exit code to return
/// (--help => 0, unknown flag => 2).  `special` lets a mode intercept
/// flags with immediate behavior (--list): it returns an exit code, or
/// -1 to fall through to the table.
int parse_args(int argc, char** argv, int start,
               const std::vector<FlagSpec>& flags,
               const std::function<int(const std::string&)>& special = {}) {
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    }
    if (special) {
      const int rc = special(arg);
      if (rc >= 0) return rc;
    }
    if (parse_flag(flags, argc, argv, i)) continue;
    std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
    usage(argv[0]);
    return 2;
  }
  return -1;
}

/// Options both evaluation modes share, with their table rows.
struct CommonOpts {
  std::string dataset = "fixed";
  std::string model = "GBDT";
  std::string scheme = "LEAF";
  std::string snapshot_dir;
  std::string metrics_out;
  std::string events_out;
  std::uint64_t events_max_mb = 0;  ///< 0 = uncapped
  std::uint64_t seed = 2024;
  int threads = -1;
};

std::vector<FlagSpec> common_flag_table(CommonOpts& o) {
  return {
      {"--dataset", FlagKind::kString, &o.dataset},
      {"--model", FlagKind::kString, &o.model},
      {"--scheme", FlagKind::kString, &o.scheme},
      {"--seed", FlagKind::kU64, &o.seed},
      {"--threads", FlagKind::kInt, &o.threads},
      {"--snapshot-dir", FlagKind::kString, &o.snapshot_dir},
      {"--metrics-out", FlagKind::kString, &o.metrics_out},
      {"--events-out", FlagKind::kString, &o.events_out},
      {"--events-max-mb", FlagKind::kU64, &o.events_max_mb},
  };
}

/// Shared post-parse validation: thread override, model family, dataset
/// name.  Returns -1 to proceed, else the exit code.
int validate_common(const CommonOpts& o, models::ModelFamily& family) {
  if (o.threads >= 0) par::set_threads(o.threads);
  if (!models::parse_model_family(o.model, family)) {
    std::fprintf(stderr, "unknown model '%s' (--list to enumerate)\n",
                 o.model.c_str());
    return 2;
  }
  if (o.dataset != "fixed" && o.dataset != "evolving") {
    std::fprintf(stderr, "unknown dataset '%s'\n", o.dataset.c_str());
    return 2;
  }
  return -1;
}

/// Writes the scrape selected by the path's suffix (net::scrape_output
/// is the one shared selection used by both CLI modes and the RPC scrape
/// path).  Returns false on write failure.
bool write_metrics(const std::string& path, const serve::FleetRuntime* fleet) {
  if (!write_text_file(path, net::scrape_output(fleet, wants_json(path))))
    return false;
  LEAF_LOG_INFO("metrics written to %s", path.c_str());
  return true;
}

// --- serve mode ------------------------------------------------------------

int run_serve(int argc, char** argv) {
  CommonOpts common;
  std::string kpis = "DVol";
  std::string chaos_spec;
  std::string listen_addr;
  std::string trace_out;
  std::string slo_spec;
  std::uint64_t trace_sample_every = 1;
  int shards = 0;  // 0 = one per KPI
  int snapshot_every = 0;
  int summary_every = 20;
  int serve_requests = 0;  // 0 = serve until killed
  bool resume = false;
  serve::SupervisorConfig supervisor;
  net::NetConfig net_cfg;
  std::uint32_t net_deadline_ms = 0;

  std::vector<FlagSpec> flags = common_flag_table(common);
  const std::vector<FlagSpec> serve_flags = {
      {"--kpis", FlagKind::kString, &kpis},
      {"--shards", FlagKind::kInt, &shards},
      {"--snapshot-every", FlagKind::kInt, &snapshot_every},
      {"--resume", FlagKind::kBool, &resume},
      {"--snapshot-keep", FlagKind::kInt, &supervisor.snapshot_keep},
      {"--max-shard-retries", FlagKind::kInt,
       &supervisor.recovery.max_retries},
      {"--breaker-max-retrains", FlagKind::kInt,
       &supervisor.breaker.max_retrains},
      {"--breaker-window", FlagKind::kInt, &supervisor.breaker.window_days},
      {"--breaker-cooldown", FlagKind::kInt,
       &supervisor.breaker.cooldown_days},
      {"--chaos", FlagKind::kString, &chaos_spec},
      {"--summary-every", FlagKind::kInt, &summary_every},
      {"--listen", FlagKind::kString, &listen_addr},
      {"--serve-requests", FlagKind::kInt, &serve_requests},
      {"--net-queue-depth", FlagKind::kInt, &net_cfg.queue_depth},
      {"--net-max-batch", FlagKind::kInt, &net_cfg.max_batch_rows},
      {"--net-deadline-ms", FlagKind::kU32, &net_deadline_ms},
      {"--trace-out", FlagKind::kString, &trace_out},
      {"--trace-sample-every", FlagKind::kU64, &trace_sample_every},
      {"--slo", FlagKind::kString, &slo_spec},
  };
  flags.insert(flags.end(), serve_flags.begin(), serve_flags.end());

  const int parse_rc = parse_args(argc, argv, 2, flags);
  if (parse_rc >= 0) return parse_rc;

  models::ModelFamily family;
  const int common_rc = validate_common(common, family);
  if (common_rc >= 0) return common_rc;

  if ((snapshot_every > 0 || resume) && common.snapshot_dir.empty()) {
    std::fprintf(stderr,
                 "--snapshot-every / --resume require --snapshot-dir\n");
    return 2;
  }

  std::vector<data::TargetKpi> targets;
  if (kpis == "all") {
    targets.assign(data::kAllTargets.begin(), data::kAllTargets.end());
  } else {
    for (const std::string& name : split_csv(kpis)) {
      data::TargetKpi t;
      if (!data::parse_target(name, t)) {
        std::fprintf(stderr, "unknown KPI '%s' (--list to enumerate)\n",
                     name.c_str());
        return 2;
      }
      targets.push_back(t);
    }
  }
  if (targets.empty()) {
    std::fprintf(stderr, "no KPIs given\n");
    return 2;
  }

  // --chaos takes precedence over the LEAF_CHAOS environment variable.
  try {
    supervisor.chaos = chaos_spec.empty()
                           ? chaos::ChaosConfig::from_env()
                           : chaos::ChaosConfig::parse(chaos_spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (supervisor.snapshot_keep < 1 || supervisor.recovery.max_retries < 0 ||
      supervisor.breaker.max_retrains < 0) {
    std::fprintf(stderr,
                 "--snapshot-keep must be >= 1, --max-shard-retries and "
                 "--breaker-max-retrains >= 0\n");
    return 2;
  }
  obs::SloSpec slo;
  try {
    slo = obs::SloSpec::parse(slo_spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (!trace_out.empty() && listen_addr.empty()) {
    std::fprintf(stderr, "--trace-out requires --listen (it traces RPCs)\n");
    return 2;
  }
  if (trace_sample_every == 0) {
    std::fprintf(stderr, "--trace-sample-every must be >= 1\n");
    return 2;
  }
  net_cfg.default_deadline_ms = net_deadline_ms;

  const Scale scale = Scale::from_env();
  const data::CellularDataset ds =
      common.dataset == "fixed" ? data::generate_fixed_dataset(scale)
                                : data::generate_evolving_dataset(scale);

  // Shard list: cycle through the KPI list until `shards` shards exist
  // (default: one per KPI).  Seeds are left at 0 so the runtime derives
  // them from the fleet seed via Rng::substream.
  const std::size_t n_shards =
      shards > 0 ? static_cast<std::size_t>(shards) : targets.size();
  std::vector<serve::ShardSpec> specs;
  specs.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i)
    specs.push_back({targets[i % targets.size()], family, common.scheme, 0});

  serve::FleetRuntime fleet(ds, scale, std::move(specs), common.seed,
                            supervisor);
  std::printf("leafctl serve: %zu shard(s), %s / %s / %s (scale=%s, "
              "seed=%llu)\n",
              fleet.num_shards(), common.dataset.c_str(),
              common.model.c_str(), common.scheme.c_str(),
              scale.name().c_str(),
              static_cast<unsigned long long>(common.seed));
  if (supervisor.chaos.any())
    LEAF_LOG_WARN("chaos enabled: %s", supervisor.chaos.to_string().c_str());

  if (resume) {
    if (!serve::FleetRuntime::has_snapshot(common.snapshot_dir)) {
      // An empty (or not yet created) snapshot directory is the normal
      // first boot of a service configured to resume — start fresh.
      LEAF_LOG_WARN("no snapshot in %s; starting fresh",
                    common.snapshot_dir.c_str());
    } else {
      try {
        fleet.restore(common.snapshot_dir);
      } catch (const io::SnapshotError& e) {
        // There IS on-disk state but it cannot be trusted (wrong fleet,
        // unreadable everywhere): refuse to guess, distinct exit code.
        LEAF_LOG_ERROR("resume from %s failed: %s",
                       common.snapshot_dir.c_str(), e.what());
        return 2;
      }
      LEAF_LOG_INFO("resumed from %s at step %llu",
                    common.snapshot_dir.c_str(),
                    static_cast<unsigned long long>(fleet.steps_run()));
      if (fleet.stats().snapshot_fallbacks > 0)
        LEAF_LOG_WARN("%d shard(s) restored from an older generation",
                      fleet.stats().snapshot_fallbacks);
    }
  }

  std::unique_ptr<net::TcpServer> server;
  if (!listen_addr.empty()) {
    try {
      const auto [host, port] = net::parse_host_port(listen_addr);
      server = std::make_unique<net::TcpServer>(fleet, host, port, net_cfg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    // Port on stdout so scripts against an ephemeral bind can find it.
    std::printf("leafctl serve: listening on %s (port %u)\n",
                listen_addr.c_str(), server->port());
    std::fflush(stdout);
  }
  const auto served_enough = [&]() {
    return server != nullptr && serve_requests > 0 &&
           server->requests_served() >=
               static_cast<std::uint64_t>(serve_requests);
  };

  std::unique_ptr<obs::Tracer> tracer;
  if (!trace_out.empty()) {
    tracer = std::make_unique<obs::Tracer>(trace_out, trace_sample_every);
    if (!tracer->ok()) {
      std::fprintf(stderr, "cannot open trace sink: %s\n",
                   tracer->error().c_str());
      return 2;
    }
    server->core().set_tracer(tracer.get());
    LEAF_LOG_INFO("tracing to %s (sample-every=%llu)", trace_out.c_str(),
                  static_cast<unsigned long long>(trace_sample_every));
  }

  // The SLO watchdog ticks once per loop iteration (a logical tick, never
  // a wall-clock timer) on deltas of the serving-plane counters, so its
  // state trajectory is a pure function of the request/fleet schedule.
  std::unique_ptr<obs::SloWatchdog> watchdog;
  if (slo.any()) {
    watchdog = std::make_unique<obs::SloWatchdog>(slo);
    fleet.attach_supervision_log(&watchdog->events());
    LEAF_LOG_INFO("slo watchdog armed: %s", slo.to_string().c_str());
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  std::uint64_t last_responses = 0, last_sheds = 0, last_retries = 0;
  const auto watchdog_tick = [&]() {
    if (watchdog == nullptr) return;
    const std::uint64_t responses =
        reg.counter("leaf_net_responses_total").value();
    const std::uint64_t sheds = reg.counter("leaf_net_sheds_total").value();
    const std::uint64_t retries =
        reg.counter("leaf_net_retries_total").value();
    obs::SloSample s;
    s.requests = responses - last_responses;
    s.deadline_misses = sheds - last_sheds;
    s.sheds = sheds - last_sheds;
    s.retries = retries - last_retries;
    s.shards = fleet.num_shards();
    s.quarantined = fleet.stats().shards_quarantined;
    s.telemetry_drift =
        static_cast<std::uint64_t>(fleet.telemetry_drift_state());
    s.nrmse = fleet.current_avg_nrmse();
    last_responses = responses;
    last_sheds = sheds;
    last_retries = retries;
    watchdog->observe(s);
  };

  // The fleet and the RPC front end share this one thread: queries are
  // answered between steps, so predictions never race shard mutation and
  // crash-equivalence is preserved.
  while (!served_enough() && fleet.step()) {
    if (snapshot_every > 0 && fleet.steps_run() % snapshot_every == 0)
      fleet.snapshot(common.snapshot_dir);  // logs at INFO internally
    if (summary_every > 0 && fleet.steps_run() % summary_every == 0) {
      const serve::ServeStats s = fleet.stats();
      LEAF_LOG_INFO(
          "serve: step %llu, shards %zu/%zu done, %d drift events, "
          "%d retrains",
          static_cast<unsigned long long>(s.total_steps), s.shards_done,
          s.shards.size(), s.total_drift_events, s.total_retrains);
    }
    if (server != nullptr) server->poll_once(0);
    watchdog_tick();
  }
  if (!common.snapshot_dir.empty()) fleet.snapshot(common.snapshot_dir);

  // Fleet finished (or the request budget ended stepping early): keep
  // serving the frozen models until the budget is spent — or forever
  // when no budget was set (a real server runs until killed).
  while (server != nullptr && !served_enough()) {
    server->poll_once(50);
    // The fleet is frozen but the serving plane is not: keep sampling
    // telemetry each idle tick so the net-plane series (and the
    // meta-drift detectors watching them) track the query traffic.
    fleet.sample_telemetry();
    watchdog_tick();
  }
  if (server != nullptr)
    std::printf("leafctl serve: answered %llu request(s)\n",
                static_cast<unsigned long long>(server->requests_served()));
  if (tracer != nullptr) {
    tracer->close();
    if (!tracer->ok()) {
      std::fprintf(stderr, "trace sink failed: %s\n", tracer->error().c_str());
      return 1;
    }
    std::printf("leafctl serve: %llu trace span(s) written to %s\n",
                static_cast<unsigned long long>(tracer->spans_written()),
                tracer->path().c_str());
  }
  if (watchdog != nullptr)
    LEAF_LOG_INFO("slo watchdog final state: %s",
                  obs::to_string(watchdog->state()));

  const serve::ServeStats stats = fleet.stats();
  const std::vector<core::EvalResult> results = fleet.results();
  std::printf("\nfleet complete: %llu steps\n",
              static_cast<unsigned long long>(stats.total_steps));
  std::printf("%-6s %-12s %-10s %8s %8s %8s %8s  %s\n", "kpi", "model",
              "scheme", "days", "nrmse", "drifts", "retrains", "health");
  for (std::size_t i = 0; i < stats.shards.size(); ++i) {
    const serve::ShardStats& s = stats.shards[i];
    std::printf("%-6s %-12s %-10s %8d %8.4f %8d %8d  %s\n", s.kpi.c_str(),
                s.model.c_str(), s.scheme.c_str(), s.days_evaluated,
                results[i].avg_nrmse(), s.drift_events, s.retrains,
                serve::to_string(s.health));
  }
  if (stats.total_faults > 0 || stats.total_breaker_trips > 0)
    std::printf("supervision: %d fault(s), %zu quarantined, %d breaker "
                "trip(s), %d suppressed retrain(s)\n",
                stats.total_faults, stats.shards_quarantined,
                stats.total_breaker_trips, stats.total_suppressed_retrains);
  if (!common.snapshot_dir.empty())
    LEAF_LOG_INFO("final snapshot in %s", common.snapshot_dir.c_str());
  if (!common.metrics_out.empty() && !write_metrics(common.metrics_out, &fleet))
    return 1;
  if (!common.events_out.empty() &&
      !write_events(common.events_out, fleet.merged_events(),
                    common.events_max_mb))
    return 1;
  return 0;
}

// --- query mode ------------------------------------------------------------

int run_query(int argc, char** argv) {
  std::string connect_addr;
  bool do_status = false;
  bool do_metrics = false;
  bool do_slo = false;
  bool json = false;
  bool do_predict = false;
  int shard = 0;
  int rows = 1;
  std::uint32_t deadline_ms = 0;
  std::uint64_t seed = 2024;
  std::string series_name;
  std::string series_labels;
  std::string resolution = "raw";
  std::uint64_t from_step = 0;
  std::uint64_t to_step = ~0ULL;
  std::uint32_t max_series = 16;

  const std::vector<FlagSpec> flags = {
      {"--connect", FlagKind::kString, &connect_addr},
      {"--status", FlagKind::kBool, &do_status},
      {"--metrics", FlagKind::kBool, &do_metrics},
      {"--slo", FlagKind::kBool, &do_slo},
      {"--json", FlagKind::kBool, &json},
      {"--predict", FlagKind::kBool, &do_predict},
      {"--shard", FlagKind::kInt, &shard},
      {"--rows", FlagKind::kInt, &rows},
      {"--deadline-ms", FlagKind::kU32, &deadline_ms},
      {"--seed", FlagKind::kU64, &seed},
      {"--series", FlagKind::kString, &series_name},
      {"--labels", FlagKind::kString, &series_labels},
      {"--resolution", FlagKind::kString, &resolution},
      {"--from", FlagKind::kU64, &from_step},
      {"--to", FlagKind::kU64, &to_step},
      {"--max-series", FlagKind::kU32, &max_series},
  };
  const int parse_rc = parse_args(argc, argv, 2, flags);
  if (parse_rc >= 0) return parse_rc;

  if (connect_addr.empty()) {
    std::fprintf(stderr, "query requires --connect HOST:PORT\n");
    return 2;
  }
  const bool do_series = !series_name.empty();
  if (!do_status && !do_metrics && !do_slo && !do_predict && !do_series)
    do_status = true;
  if (shard < 0 || rows < 1) {
    std::fprintf(stderr, "--shard must be >= 0, --rows >= 1\n");
    return 2;
  }
  std::uint8_t resolution_code = 0;
  if (resolution == "raw" || resolution == "0") {
    resolution_code = 0;
  } else if (resolution == "10") {
    resolution_code = 1;
  } else if (resolution == "100") {
    resolution_code = 2;
  } else {
    std::fprintf(stderr, "--resolution must be raw, 10, or 100\n");
    return 2;
  }

  try {
    const auto [host, port] = net::parse_host_port(connect_addr);
    net::TcpClient client(host, port);
    std::uint64_t request_id = 1;

    // Status first in every case: predict needs the shard's feature
    // count to build a valid request.
    const net::Frame status_resp = net::call(
        client, net::Frame{net::MsgType::kFleetStatus, request_id++, {}});
    if (status_resp.type == net::MsgType::kError) {
      const auto err = net::decode_body<net::ErrorResponse>(status_resp);
      std::fprintf(stderr, "server error (%s): %s\n",
                   net::to_string(err.code), err.message.c_str());
      return 1;
    }
    const auto status = net::decode_body<net::StatusResponse>(status_resp);

    if (do_status) {
      std::printf("fleet: %llu steps, %zu shard(s)\n",
                  static_cast<unsigned long long>(status.fleet_steps),
                  status.shards.size());
      std::printf("%-5s %-6s %-12s %-10s %8s %6s %8s %6s\n", "shard", "kpi",
                  "model", "scheme", "features", "ready", "days", "done");
      for (std::size_t i = 0; i < status.shards.size(); ++i) {
        const net::ShardStatus& s = status.shards[i];
        std::printf("%-5zu %-6s %-12s %-10s %8u %6s %8d %6s\n", i,
                    s.kpi.c_str(), s.model.c_str(), s.scheme.c_str(),
                    s.num_features, s.ready ? "yes" : "no", s.days_evaluated,
                    s.done ? "yes" : "no");
      }
    }

    if (do_metrics) {
      const net::Frame resp = net::call(
          client,
          net::make_frame(net::MsgType::kScrapeMetrics, request_id++,
                          net::ScrapeRequest{json}));
      if (resp.type == net::MsgType::kError) {
        const auto err = net::decode_body<net::ErrorResponse>(resp);
        std::fprintf(stderr, "server error (%s): %s\n",
                     net::to_string(err.code), err.message.c_str());
        return 1;
      }
      std::fputs(net::decode_body<net::ScrapeResponse>(resp).body.c_str(),
                 stdout);
    }

    if (do_slo) {
      // The SLO slice of the text scrape: the leaf_slo_state gauge plus
      // every latency-summary quantile line.
      const net::Frame resp = net::call(
          client, net::make_frame(net::MsgType::kScrapeMetrics, request_id++,
                                  net::ScrapeRequest{false}));
      if (resp.type == net::MsgType::kError) {
        const auto err = net::decode_body<net::ErrorResponse>(resp);
        std::fprintf(stderr, "server error (%s): %s\n",
                     net::to_string(err.code), err.message.c_str());
        return 1;
      }
      const std::string body =
          net::decode_body<net::ScrapeResponse>(resp).body;
      std::size_t start = 0;
      while (start < body.size()) {
        const std::size_t nl = body.find('\n', start);
        const std::size_t end = nl == std::string::npos ? body.size() : nl;
        const std::string line = body.substr(start, end - start);
        if (line.compare(0, 9, "leaf_slo_") == 0 ||
            (!line.empty() && line[0] != '#' &&
             line.find("quantile=") != std::string::npos))
          std::printf("%s\n", line.c_str());
        start = end + 1;
      }
    }

    if (do_series) {
      net::SeriesRequest req;
      req.name = series_name;
      req.labels_contains = series_labels;
      req.start_step = from_step;
      req.end_step = to_step;
      req.resolution = resolution_code;
      req.max_series = max_series;
      const net::Frame resp = net::call(
          client,
          net::make_frame(net::MsgType::kQuerySeries, request_id++, req));
      if (resp.type == net::MsgType::kError) {
        const auto err = net::decode_body<net::ErrorResponse>(resp);
        std::fprintf(stderr, "server error (%s): %s\n",
                     net::to_string(err.code), err.message.c_str());
        return 1;
      }
      const auto body = net::decode_body<net::SeriesResponse>(resp);
      std::printf("%zu series (store at step %llu)%s\n", body.series.size(),
                  static_cast<unsigned long long>(body.last_step),
                  body.truncated ? ", truncated" : "");
      for (const net::SeriesPoints& sp : body.series) {
        std::printf("%s{%s} %s: %zu point(s)\n", sp.name.c_str(),
                    sp.labels.c_str(),
                    sp.resolution == 0   ? "raw"
                    : sp.resolution == 1 ? "10-step"
                                         : "100-step",
                    sp.steps.size());
        for (std::size_t i = 0; i < sp.steps.size(); ++i) {
          if (sp.resolution == 0)
            std::printf("  %8llu  %.6g\n",
                        static_cast<unsigned long long>(sp.steps[i]),
                        sp.values[i]);
          else
            std::printf("  %8llu  mean=%.6g min=%.6g max=%.6g count=%llu\n",
                        static_cast<unsigned long long>(sp.steps[i]),
                        sp.values[i], sp.min[i], sp.max[i],
                        static_cast<unsigned long long>(sp.counts[i]));
        }
      }
    }

    if (do_predict) {
      if (static_cast<std::size_t>(shard) >= status.shards.size()) {
        std::fprintf(stderr, "shard %d outside the fleet of %zu\n", shard,
                     status.shards.size());
        return 1;
      }
      const std::uint32_t cols = status.shards[shard].num_features;
      net::PredictRequest req;
      req.shard = static_cast<std::uint32_t>(shard);
      req.deadline_ms = deadline_ms;
      req.rows = Matrix(static_cast<std::size_t>(rows), cols);
      // Deterministic probe rows: same --seed, same request bytes.
      Rng rng(seed);
      for (auto& v : req.rows.flat()) v = rng.uniform();
      const net::MsgType type = rows == 1 ? net::MsgType::kPredict
                                          : net::MsgType::kBatchPredict;
      const net::Frame resp =
          net::call(client, net::make_frame(type, request_id++, req));
      if (resp.type == net::MsgType::kError) {
        const auto err = net::decode_body<net::ErrorResponse>(resp);
        std::fprintf(stderr, "server error (%s): %s\n",
                     net::to_string(err.code), err.message.c_str());
        return 1;
      }
      const auto pred = net::decode_body<net::PredictResponse>(resp);
      std::printf("shard %d predictions (%zu row(s), seed %llu):\n", shard,
                  pred.values.size(), static_cast<unsigned long long>(seed));
      for (double v : pred.values) std::printf("  %.6f\n", v);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}

// --- top mode --------------------------------------------------------------

/// First sample of `name` in a Prometheus text scrape (the line must
/// start with the exact series name followed by '{' or ' ').  NaN when
/// the series is absent.
double scrape_value(const std::string& body, const std::string& name) {
  std::size_t start = 0;
  while (start < body.size()) {
    const std::size_t nl = body.find('\n', start);
    const std::size_t end = nl == std::string::npos ? body.size() : nl;
    if (end - start > name.size() &&
        body.compare(start, name.size(), name) == 0 &&
        (body[start + name.size()] == ' ' ||
         body[start + name.size()] == '{')) {
      const std::size_t sp = body.rfind(' ', end);
      if (sp != std::string::npos && sp > start)
        return std::strtod(body.c_str() + sp + 1, nullptr);
    }
    start = end + 1;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

/// Renders a value window as an 8-level block sparkline, scaled to the
/// window's own min..max (a flat nonzero window renders mid-level).
std::string sparkline(const std::vector<double>& values) {
  static const char* const kLevels[] = {"▁", "▂", "▃", "▄",
                                        "▅", "▆", "▇", "█"};
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : values)
    if (std::isfinite(v)) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  std::string out;
  for (double v : values) {
    if (!std::isfinite(v)) {
      out += "·";
      continue;
    }
    int idx = 0;
    if (hi > lo)
      idx = static_cast<int>((v - lo) / (hi - lo) * 7.0 + 0.5);
    else if (v != 0.0)
      idx = 3;
    out += kLevels[std::clamp(idx, 0, 7)];
  }
  return out;
}

/// `leafctl top`: a periodic status + scrape + telemetry-series poll of a
/// running server, rendered as a compact live fleet view.
int run_top(int argc, char** argv) {
  std::string connect_addr;
  int interval_ms = 1000;
  int iterations = 0;  // 0 = poll until killed

  const std::vector<FlagSpec> flags = {
      {"--connect", FlagKind::kString, &connect_addr},
      {"--interval-ms", FlagKind::kInt, &interval_ms},
      {"--iterations", FlagKind::kInt, &iterations},
  };
  const int parse_rc = parse_args(argc, argv, 2, flags);
  if (parse_rc >= 0) return parse_rc;

  if (connect_addr.empty()) {
    std::fprintf(stderr, "top requires --connect HOST:PORT\n");
    return 2;
  }
  if (interval_ms < 1) {
    std::fprintf(stderr, "--interval-ms must be >= 1\n");
    return 2;
  }

  try {
    const auto [host, port] = net::parse_host_port(connect_addr);
    net::TcpClient client(host, port);
    std::uint64_t request_id = 1;
    double prev_responses = std::numeric_limits<double>::quiet_NaN();
    double prev_sheds = 0.0, prev_retries = 0.0;

    for (int iter = 0; iterations == 0 || iter < iterations; ++iter) {
      if (iter > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));

      const net::Frame status_resp = net::call(
          client, net::Frame{net::MsgType::kFleetStatus, request_id++, {}});
      if (status_resp.type == net::MsgType::kError) {
        const auto err = net::decode_body<net::ErrorResponse>(status_resp);
        std::fprintf(stderr, "server error (%s): %s\n",
                     net::to_string(err.code), err.message.c_str());
        return 1;
      }
      const auto status = net::decode_body<net::StatusResponse>(status_resp);

      const net::Frame scrape_resp = net::call(
          client, net::make_frame(net::MsgType::kScrapeMetrics, request_id++,
                                  net::ScrapeRequest{false}));
      if (scrape_resp.type == net::MsgType::kError) {
        const auto err = net::decode_body<net::ErrorResponse>(scrape_resp);
        std::fprintf(stderr, "server error (%s): %s\n",
                     net::to_string(err.code), err.message.c_str());
        return 1;
      }
      const std::string scrape =
          net::decode_body<net::ScrapeResponse>(scrape_resp).body;

      net::SeriesRequest sreq;
      sreq.name = "leaf_rule_*";
      sreq.max_series = 8;
      const net::Frame series_resp = net::call(
          client,
          net::make_frame(net::MsgType::kQuerySeries, request_id++, sreq));
      net::SeriesResponse series;  // tolerate servers without a tsdb
      if (series_resp.type == net::MsgType::kQuerySeriesOk)
        series = net::decode_body<net::SeriesResponse>(series_resp);

      const double responses = scrape_value(scrape, "leaf_net_responses_total");
      const double sheds = scrape_value(scrape, "leaf_net_sheds_total");
      const double retries = scrape_value(scrape, "leaf_net_retries_total");
      const double slo_state = scrape_value(scrape, "leaf_slo_state");
      const double drift_state =
          scrape_value(scrape, "leaf_telemetry_drift_state");

      std::size_t ready = 0, done = 0;
      for (const net::ShardStatus& s : status.shards) {
        ready += s.ready ? 1 : 0;
        done += s.done ? 1 : 0;
      }

      if (iterations != 1)
        std::printf("\x1b[2J\x1b[H");  // clear + home between refreshes
      std::string refresh = std::to_string(iter + 1);
      if (iterations > 0) refresh += "/" + std::to_string(iterations);
      std::printf("leaf top — %s  refresh %s  interval %dms\n",
                  connect_addr.c_str(), refresh.c_str(), interval_ms);
      std::printf("fleet: step %llu, %zu shard(s) (%zu ready, %zu done)",
                  static_cast<unsigned long long>(status.fleet_steps),
                  status.shards.size(), ready, done);
      if (std::isfinite(slo_state))
        std::printf("  slo=%s",
                    obs::to_string(static_cast<obs::SloWatchdog::State>(
                        static_cast<int>(slo_state))));
      if (std::isfinite(drift_state))
        std::printf("  telemetry-drift=%d", static_cast<int>(drift_state));
      std::printf("\n");

      if (std::isfinite(responses)) {
        std::printf("net:   %.0f response(s)", responses);
        if (std::isfinite(prev_responses)) {
          const double dt = static_cast<double>(interval_ms) / 1000.0;
          std::printf("  qps %.1f  shed/s %.1f  retry/s %.1f",
                      (responses - prev_responses) / dt,
                      (sheds - prev_sheds) / dt,
                      (retries - prev_retries) / dt);
        }
        std::printf("\n");
        prev_responses = responses;
        prev_sheds = sheds;
        prev_retries = retries;
      }
      // Every p99 latency quantile line, verbatim (one per RPC type).
      std::size_t start = 0;
      while (start < scrape.size()) {
        const std::size_t nl = scrape.find('\n', start);
        const std::size_t end = nl == std::string::npos ? scrape.size() : nl;
        const std::string line = scrape.substr(start, end - start);
        if (line.compare(0, 25, "leaf_rpc_latency_seconds{") == 0 &&
            line.find("quantile=\"0.99\"") != std::string::npos)
          std::printf("p99:   %s\n", line.c_str());
        start = end + 1;
      }

      std::printf("%-5s %-6s %-12s %-10s %-11s %6s %8s %6s\n", "shard",
                  "kpi", "model", "scheme", "health", "ready", "days",
                  "done");
      for (std::size_t i = 0; i < status.shards.size(); ++i) {
        const net::ShardStatus& s = status.shards[i];
        std::printf("%-5zu %-6s %-12s %-10s %-11s %6s %8d %6s\n", i,
                    s.kpi.c_str(), s.model.c_str(), s.scheme.c_str(),
                    serve::to_string(
                        static_cast<serve::ShardHealth>(s.health)),
                    s.ready ? "yes" : "no", s.days_evaluated,
                    s.done ? "yes" : "no");
      }

      if (!series.series.empty()) {
        std::printf("telemetry (raw tail, store at step %llu):\n",
                    static_cast<unsigned long long>(series.last_step));
        for (const net::SeriesPoints& sp : series.series) {
          std::vector<double> tail = sp.values;
          if (tail.size() > 32)
            tail.erase(tail.begin(),
                       tail.end() - static_cast<std::ptrdiff_t>(32));
          std::printf("  %-32s %s  last=%.6g\n", sp.name.c_str(),
                      sparkline(tail).c_str(),
                      tail.empty() ? 0.0 : tail.back());
        }
      }
      std::fflush(stdout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "serve") == 0)
    return run_serve(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "query") == 0)
    return run_query(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "top") == 0)
    return run_top(argc, argv);

  CommonOpts common;
  std::string kpi = "DVol";
  std::string csv_path;
  int stride = -1, train_window = -1, horizon = -1;

  std::vector<FlagSpec> flags = common_flag_table(common);
  const std::vector<FlagSpec> classic_flags = {
      {"--kpi", FlagKind::kString, &kpi},
      {"--stride", FlagKind::kInt, &stride},
      {"--train-window", FlagKind::kInt, &train_window},
      {"--horizon", FlagKind::kInt, &horizon},
      {"--csv", FlagKind::kString, &csv_path},
  };
  flags.insert(flags.end(), classic_flags.begin(), classic_flags.end());

  const int parse_rc =
      parse_args(argc, argv, 1, flags, [](const std::string& arg) -> int {
        if (arg == "--list") {
          list_options();
          return 0;
        }
        return -1;
      });
  if (parse_rc >= 0) return parse_rc;

  models::ModelFamily family;
  const int common_rc = validate_common(common, family);
  if (common_rc >= 0) return common_rc;

  data::TargetKpi target;
  if (!data::parse_target(kpi, target)) {
    std::fprintf(stderr, "unknown KPI '%s' (--list to enumerate)\n",
                 kpi.c_str());
    return 2;
  }

  const Scale scale = Scale::from_env();
  std::printf("leafctl: %s / %s / %s / %s (scale=%s, seed=%llu)\n",
              common.dataset.c_str(), kpi.c_str(), common.model.c_str(),
              common.scheme.c_str(), scale.name().c_str(),
              static_cast<unsigned long long>(common.seed));

  const data::CellularDataset ds =
      common.dataset == "fixed" ? data::generate_fixed_dataset(scale)
                                : data::generate_evolving_dataset(scale);
  core::EvalConfig cfg = core::make_eval_config(scale, common.seed);
  if (stride > 0) cfg.stride = stride;
  if (train_window > 0) cfg.train_window = train_window;
  if (horizon > 0) cfg.horizon = horizon;

  const data::Featurizer featurizer(ds, target, cfg.horizon);
  const auto model = models::make_model(family, scale, common.seed);
  const double dispersion = core::kpi_dispersion(ds, target);

  core::StaticScheme static_scheme;
  const core::EvalResult static_run =
      core::run_scheme(featurizer, *model, static_scheme, cfg);

  // Drift events are recorded for the mitigated run only (the static
  // baseline never drifts or retrains by construction).
  obs::EventLog event_log;
  core::EvalResult run = static_run;
  if (common.scheme != "Static") {
    std::unique_ptr<core::MitigationScheme> scheme;
    try {
      scheme = core::make_scheme(common.scheme, dispersion, common.seed ^ 0x99);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    cfg.events = &event_log;
    run = core::run_scheme(featurizer, *model, *scheme, cfg);
    cfg.events = nullptr;
  }

  std::printf("\nevaluated %zu days (%s .. %s)\n", run.days.size(),
              cal::day_to_string(run.days.front()).c_str(),
              cal::day_to_string(run.days.back()).c_str());
  std::printf("avg NRMSE:   %.4f  (static %.4f)\n", run.avg_nrmse(),
              static_run.avg_nrmse());
  std::printf("ΔNRMSE̅:      %+.2f%% vs static\n",
              core::delta_vs_static(run, static_run));
  std::printf("retrains:    %d (drift detections: %zu)\n",
              run.retrain_count(), run.drift_days.size());
  std::printf("p95 |NE|:    %.4f  (static %.4f)\n", run.ne_p95,
              static_run.ne_p95);
  std::printf("dispersion:  %.2f (%s mitigation path)\n", dispersion,
              dispersion >= 1.0 ? "high" : "low");

  if (!common.snapshot_dir.empty()) {
    // A single-shard fleet snapshot of this (KPI, model, scheme) pipeline
    // at its end state, resumable with `leafctl serve --resume`.  Uses the
    // scale's standard evaluation config, as serve mode does.
    serve::FleetRuntime fleet(
        ds, scale, {{target, family, common.scheme, common.seed}},
        common.seed);
    fleet.run_to_end();
    const std::uint64_t bytes = fleet.snapshot(common.snapshot_dir);
    std::printf("snapshot:    %s (%llu bytes)\n", common.snapshot_dir.c_str(),
                static_cast<unsigned long long>(bytes));
  }

  if (!csv_path.empty()) {
    CsvWriter w(csv_path);
    if (!w.ok()) {
      std::fprintf(stderr, "cannot write '%s'\n", csv_path.c_str());
      return 1;
    }
    w.row({"date", "nrmse", "static_nrmse", "mean_ne", "drift", "retrain"});
    for (std::size_t i = 0; i < run.days.size(); ++i) {
      const int d = run.days[i];
      const bool drift = std::find(run.drift_days.begin(),
                                   run.drift_days.end(),
                                   d) != run.drift_days.end();
      const bool retrain = std::find(run.retrain_days.begin(),
                                     run.retrain_days.end(),
                                     d) != run.retrain_days.end();
      w.row({cal::day_to_string(d), fmt(run.nrmse[i]),
             i < static_run.nrmse.size() ? fmt(static_run.nrmse[i]) : "",
             fmt(run.mean_ne[i]), drift ? "1" : "0", retrain ? "1" : "0"});
    }
    std::printf("series written to %s\n", csv_path.c_str());
  }
  if (!common.metrics_out.empty() &&
      !write_metrics(common.metrics_out, nullptr))
    return 1;
  if (!common.events_out.empty() &&
      !write_events(common.events_out, event_log.events(),
                    common.events_max_mb))
    return 1;
  return 0;
}
