// leafctl — command-line driver for the LEAF library.
//
// Runs one (dataset, KPI, model, scheme) evaluation and prints the
// summary plus, optionally, the full NRMSE time-series as CSV.  Useful
// for scripting sweeps beyond the canned benches.
//
// Usage:
//   leafctl [--dataset fixed|evolving] [--kpi DVol|PU|DTP|REst|CDR|GDR]
//           [--model GBDT|LightGBDT|RandomForest|ExtraTrees|KNeighbors|
//                    LSTM|Ridge]
//           [--scheme Static|Naive<N>|Triggered|LEAF|LEAF<k>|
//                     PairedLearners|AUE2]
//           [--seed N] [--stride N] [--train-window N] [--horizon N]
//           [--csv out.csv] [--list]
//
// The LEAF_SCALE environment variable controls dataset size as usual.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/calendar.hpp"
#include "common/csv.hpp"
#include "core/experiment.hpp"
#include "data/generator.hpp"
#include "models/factory.hpp"

using namespace leaf;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dataset fixed|evolving] [--kpi KPI] "
               "[--model MODEL] [--scheme SCHEME] [--seed N] [--stride N] "
               "[--train-window N] [--horizon N] [--csv FILE] [--list]\n",
               argv0);
}

void list_options() {
  std::printf("datasets: fixed evolving\nKPIs:     ");
  for (data::TargetKpi t : data::kAllTargets)
    std::printf("%s ", data::to_string(t).c_str());
  std::printf("\nmodels:   GBDT LightGBDT RandomForest ExtraTrees "
              "KNeighbors LSTM Ridge\n");
  std::printf("schemes:  Static Naive<N> Triggered LEAF LEAF<k> "
              "PairedLearners AUE2\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = "fixed";
  std::string kpi = "DVol";
  std::string model_name = "GBDT";
  std::string scheme_spec = "LEAF";
  std::string csv_path;
  std::uint64_t seed = 2024;
  int stride = -1, train_window = -1, horizon = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dataset") {
      dataset = next();
    } else if (arg == "--kpi") {
      kpi = next();
    } else if (arg == "--model") {
      model_name = next();
    } else if (arg == "--scheme") {
      scheme_spec = next();
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--stride") {
      stride = std::atoi(next());
    } else if (arg == "--train-window") {
      train_window = std::atoi(next());
    } else if (arg == "--horizon") {
      horizon = std::atoi(next());
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--list") {
      list_options();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  data::TargetKpi target;
  if (!data::parse_target(kpi, target)) {
    std::fprintf(stderr, "unknown KPI '%s' (--list to enumerate)\n",
                 kpi.c_str());
    return 2;
  }
  models::ModelFamily family;
  if (!models::parse_model_family(model_name, family)) {
    std::fprintf(stderr, "unknown model '%s' (--list to enumerate)\n",
                 model_name.c_str());
    return 2;
  }
  if (dataset != "fixed" && dataset != "evolving") {
    std::fprintf(stderr, "unknown dataset '%s'\n", dataset.c_str());
    return 2;
  }

  const Scale scale = Scale::from_env();
  std::printf("leafctl: %s / %s / %s / %s (scale=%s, seed=%llu)\n",
              dataset.c_str(), kpi.c_str(), model_name.c_str(),
              scheme_spec.c_str(), scale.name().c_str(),
              static_cast<unsigned long long>(seed));

  const data::CellularDataset ds = dataset == "fixed"
                                       ? data::generate_fixed_dataset(scale)
                                       : data::generate_evolving_dataset(scale);
  core::EvalConfig cfg = core::make_eval_config(scale, seed);
  if (stride > 0) cfg.stride = stride;
  if (train_window > 0) cfg.train_window = train_window;
  if (horizon > 0) cfg.horizon = horizon;

  const data::Featurizer featurizer(ds, target, cfg.horizon);
  const auto model = models::make_model(family, scale, seed);
  const double dispersion = core::kpi_dispersion(ds, target);

  core::StaticScheme static_scheme;
  const core::EvalResult static_run =
      core::run_scheme(featurizer, *model, static_scheme, cfg);

  core::EvalResult run = static_run;
  if (scheme_spec != "Static") {
    std::unique_ptr<core::MitigationScheme> scheme;
    try {
      scheme = core::make_scheme(scheme_spec, dispersion, seed ^ 0x99);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    run = core::run_scheme(featurizer, *model, *scheme, cfg);
  }

  std::printf("\nevaluated %zu days (%s .. %s)\n", run.days.size(),
              cal::day_to_string(run.days.front()).c_str(),
              cal::day_to_string(run.days.back()).c_str());
  std::printf("avg NRMSE:   %.4f  (static %.4f)\n", run.avg_nrmse(),
              static_run.avg_nrmse());
  std::printf("ΔNRMSE̅:      %+.2f%% vs static\n",
              core::delta_vs_static(run, static_run));
  std::printf("retrains:    %d (drift detections: %zu)\n",
              run.retrain_count(), run.drift_days.size());
  std::printf("p95 |NE|:    %.4f  (static %.4f)\n", run.ne_p95,
              static_run.ne_p95);
  std::printf("dispersion:  %.2f (%s mitigation path)\n", dispersion,
              dispersion >= 1.0 ? "high" : "low");

  if (!csv_path.empty()) {
    CsvWriter w(csv_path);
    if (!w.ok()) {
      std::fprintf(stderr, "cannot write '%s'\n", csv_path.c_str());
      return 1;
    }
    w.row({"date", "nrmse", "static_nrmse", "mean_ne", "drift", "retrain"});
    for (std::size_t i = 0; i < run.days.size(); ++i) {
      const int d = run.days[i];
      const bool drift = std::find(run.drift_days.begin(),
                                   run.drift_days.end(),
                                   d) != run.drift_days.end();
      const bool retrain = std::find(run.retrain_days.begin(),
                                     run.retrain_days.end(),
                                     d) != run.retrain_days.end();
      w.row({cal::day_to_string(d), fmt(run.nrmse[i]),
             i < static_run.nrmse.size() ? fmt(static_run.nrmse[i]) : "",
             fmt(run.mean_ne[i]), drift ? "1" : "0", retrain ? "1" : "0"});
    }
    std::printf("series written to %s\n", csv_path.c_str());
  }
  return 0;
}
