#include "net/protocol.hpp"

#include <algorithm>
#include <cstring>

namespace leaf::net {

namespace {

/// Hard ceiling on rows/cols in one predict body, independent of the
/// frame-size bound, so a corrupted count cannot drive a giant
/// allocation before the element bounds check catches it.
constexpr std::uint32_t kMaxMatrixDim = 1u << 20;

std::uint32_t read_u32(std::span<const std::uint8_t> b, std::size_t pos) {
  return static_cast<std::uint32_t>(b[pos]) |
         static_cast<std::uint32_t>(b[pos + 1]) << 8 |
         static_cast<std::uint32_t>(b[pos + 2]) << 16 |
         static_cast<std::uint32_t>(b[pos + 3]) << 24;
}

std::uint64_t read_u64(std::span<const std::uint8_t> b, std::size_t pos) {
  return static_cast<std::uint64_t>(read_u32(b, pos)) |
         static_cast<std::uint64_t>(read_u32(b, pos + 4)) << 32;
}

}  // namespace

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kPredict: return "predict";
    case MsgType::kBatchPredict: return "batch_predict";
    case MsgType::kScrapeMetrics: return "scrape_metrics";
    case MsgType::kFleetStatus: return "fleet_status";
    case MsgType::kQuerySeries: return "query_series";
    case MsgType::kPredictOk: return "predict_ok";
    case MsgType::kScrapeOk: return "scrape_ok";
    case MsgType::kStatusOk: return "status_ok";
    case MsgType::kError: return "error";
    case MsgType::kQuerySeriesOk: return "query_series_ok";
  }
  return "?";
}

bool is_request(MsgType t) {
  return static_cast<std::uint8_t>(t) < 16;
}

const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kMalformed: return "malformed";
    case ErrorCode::kOversized: return "oversized";
    case ErrorCode::kBadShard: return "bad_shard";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kShed: return "shed";
    case ErrorCode::kRetry: return "retry";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  if (frame.version != kProtocolVersion && frame.version != kProtocolV1)
    throw ProtocolError(ErrorCode::kMalformed,
                        "cannot encode protocol version " +
                            std::to_string(frame.version));
  io::Serializer s;
  for (char c : kMagic) s.put_u8(static_cast<std::uint8_t>(c));
  s.put_u32(frame.version);
  s.put_u8(static_cast<std::uint8_t>(frame.type));
  s.put_u64(frame.request_id);
  if (frame.version >= 2) {
    for (std::uint8_t b : frame.trace) s.put_u8(b);
    s.put_u64(frame.parent_span);
  }
  s.put_u32(static_cast<std::uint32_t>(frame.payload.size()));
  s.put_u32(io::crc32(frame.payload));
  std::vector<std::uint8_t> out(s.bytes().begin(), s.bytes().end());
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (poisoned_)
    throw ProtocolError(ErrorCode::kMalformed,
                        "decoder poisoned by an earlier framing error");
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  validate_header();  // fail fast: bad magic/version before the payload lands
}

void FrameDecoder::validate_header() {
  const std::span<const std::uint8_t> b(buf_.data() + pos_,
                                        buf_.size() - pos_);
  if (b.size() >= 4 &&
      std::memcmp(b.data(), kMagic, sizeof(kMagic)) != 0) {
    poisoned_ = true;
    throw ProtocolError(ErrorCode::kMalformed, "bad frame magic");
  }
  if (b.size() < 8) return;
  const std::uint32_t version = read_u32(b, 4);
  if (version != kProtocolVersion && version != kProtocolV1) {
    poisoned_ = true;
    throw ProtocolError(ErrorCode::kMalformed,
                        "unsupported protocol version " +
                            std::to_string(version));
  }
  // The header layout (size, payload_len offset) depends on the version
  // just read — a v1 frame must be bounds-checked at v1 offsets.
  const std::size_t header =
      version == kProtocolV1 ? kHeaderBytesV1 : kHeaderBytes;
  if (b.size() >= header) {
    const std::uint32_t payload_len = read_u32(b, header - 8);
    if (payload_len > max_frame_bytes_) {
      poisoned_ = true;
      throw ProtocolError(ErrorCode::kOversized,
                          "frame payload of " + std::to_string(payload_len) +
                              " bytes exceeds the " +
                              std::to_string(max_frame_bytes_) +
                              "-byte frame bound");
    }
  }
}

void FrameDecoder::compact() {
  // Reclaim consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

std::optional<Frame> FrameDecoder::next() {
  if (poisoned_)
    throw ProtocolError(ErrorCode::kMalformed,
                        "decoder poisoned by an earlier framing error");
  // feed() validated the header at the buffer head, but after a frame is
  // consumed the *next* frame's header starts at pos_ — re-validate.
  validate_header();
  const std::span<const std::uint8_t> b(buf_.data() + pos_,
                                        buf_.size() - pos_);
  if (b.size() < 8) return std::nullopt;
  const std::uint32_t version = read_u32(b, 4);
  const std::size_t header =
      version == kProtocolV1 ? kHeaderBytesV1 : kHeaderBytes;
  if (b.size() < header) return std::nullopt;
  const std::uint8_t type = b[8];
  const std::uint64_t request_id = read_u64(b, 9);
  obs::TraceId trace{};
  std::uint64_t parent_span = 0;
  if (version >= 2) {
    std::memcpy(trace.data(), b.data() + 17, trace.size());
    parent_span = read_u64(b, 33);
  }
  const std::uint32_t payload_len = read_u32(b, header - 8);
  const std::uint32_t want_crc = read_u32(b, header - 4);
  if (b.size() < header + payload_len) return std::nullopt;

  const bool known_type =
      type <= static_cast<std::uint8_t>(MsgType::kQuerySeries) ||
      (type >= static_cast<std::uint8_t>(MsgType::kPredictOk) &&
       type <= static_cast<std::uint8_t>(MsgType::kQuerySeriesOk));
  if (!known_type) {
    poisoned_ = true;
    throw ProtocolError(ErrorCode::kMalformed,
                        "unknown frame type " + std::to_string(type));
  }
  const std::span<const std::uint8_t> payload = b.subspan(header, payload_len);
  if (io::crc32(payload) != want_crc) {
    poisoned_ = true;
    throw ProtocolError(ErrorCode::kMalformed, "frame CRC mismatch");
  }
  Frame frame{static_cast<MsgType>(type), request_id,
              std::vector<std::uint8_t>(payload.begin(), payload.end()),
              version, trace, parent_span};
  pos_ += header + payload_len;
  compact();
  return frame;
}

// --- message bodies --------------------------------------------------------

void PredictRequest::encode(io::Serializer& out) const {
  out.put_u32(shard);
  out.put_u32(deadline_ms);
  out.put_u32(static_cast<std::uint32_t>(rows.rows()));
  out.put_u32(static_cast<std::uint32_t>(rows.cols()));
  for (std::size_t r = 0; r < rows.rows(); ++r)
    for (double v : rows.row(r)) out.put_f64(v);
}

PredictRequest PredictRequest::decode(io::Deserializer& in) {
  PredictRequest req;
  req.shard = in.get_u32();
  req.deadline_ms = in.get_u32();
  const std::uint32_t n_rows = in.get_u32();
  const std::uint32_t n_cols = in.get_u32();
  if (n_rows > kMaxMatrixDim || n_cols > kMaxMatrixDim)
    throw io::SnapshotError("predict matrix dimensions out of range");
  if (in.remaining() < static_cast<std::size_t>(n_rows) * n_cols * 8)
    throw io::SnapshotError("predict matrix truncated");
  req.rows = Matrix(n_rows, n_cols);
  for (std::uint32_t r = 0; r < n_rows; ++r)
    for (std::uint32_t c = 0; c < n_cols; ++c) req.rows(r, c) = in.get_f64();
  return req;
}

void PredictResponse::encode(io::Serializer& out) const {
  out.put_doubles(values);
}

PredictResponse PredictResponse::decode(io::Deserializer& in) {
  PredictResponse resp;
  resp.values = in.get_doubles();
  return resp;
}

void ScrapeRequest::encode(io::Serializer& out) const { out.put_bool(json); }

ScrapeRequest ScrapeRequest::decode(io::Deserializer& in) {
  ScrapeRequest req;
  req.json = in.get_bool();
  return req;
}

void ScrapeResponse::encode(io::Serializer& out) const {
  out.put_string(body);
}

ScrapeResponse ScrapeResponse::decode(io::Deserializer& in) {
  ScrapeResponse resp;
  resp.body = in.get_string();
  return resp;
}

void StatusResponse::encode(io::Serializer& out) const {
  out.put_u64(fleet_steps);
  out.put_u32(static_cast<std::uint32_t>(shards.size()));
  for (const ShardStatus& s : shards) {
    out.put_string(s.kpi);
    out.put_string(s.model);
    out.put_string(s.scheme);
    out.put_u8(s.health);
    out.put_bool(s.ready);
    out.put_u32(s.num_features);
    out.put_i32(s.days_evaluated);
    out.put_i32(s.next_day);
    out.put_bool(s.done);
  }
}

StatusResponse StatusResponse::decode(io::Deserializer& in) {
  StatusResponse resp;
  resp.fleet_steps = in.get_u64();
  const std::uint32_t n = in.get_u32();
  if (n > kMaxMatrixDim)
    throw io::SnapshotError("status shard count out of range");
  resp.shards.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ShardStatus s;
    s.kpi = in.get_string();
    s.model = in.get_string();
    s.scheme = in.get_string();
    s.health = in.get_u8();
    s.ready = in.get_bool();
    s.num_features = in.get_u32();
    s.days_evaluated = in.get_i32();
    s.next_day = in.get_i32();
    s.done = in.get_bool();
    resp.shards.push_back(std::move(s));
  }
  return resp;
}

void SeriesRequest::encode(io::Serializer& out) const {
  out.put_string(name);
  out.put_string(labels_contains);
  out.put_u64(start_step);
  out.put_u64(end_step);
  out.put_u8(resolution);
  out.put_u32(max_series);
}

SeriesRequest SeriesRequest::decode(io::Deserializer& in) {
  SeriesRequest req;
  req.name = in.get_string();
  req.labels_contains = in.get_string();
  req.start_step = in.get_u64();
  req.end_step = in.get_u64();
  req.resolution = in.get_u8();
  if (req.resolution > 2)
    throw io::SnapshotError("unknown series resolution " +
                            std::to_string(req.resolution));
  req.max_series = in.get_u32();
  return req;
}

namespace {

void put_u64s(io::Serializer& out, const std::vector<std::uint64_t>& v) {
  out.put_u64(v.size());
  for (std::uint64_t x : v) out.put_u64(x);
}

std::vector<std::uint64_t> get_u64s(io::Deserializer& in) {
  const std::uint64_t n = in.get_count(8);
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(in.get_u64());
  return v;
}

}  // namespace

void SeriesPoints::encode(io::Serializer& out) const {
  out.put_string(name);
  out.put_string(labels);
  out.put_u8(resolution);
  put_u64s(out, steps);
  out.put_doubles(values);
  out.put_doubles(min);
  out.put_doubles(max);
  put_u64s(out, counts);
}

SeriesPoints SeriesPoints::decode(io::Deserializer& in) {
  SeriesPoints s;
  s.name = in.get_string();
  s.labels = in.get_string();
  s.resolution = in.get_u8();
  if (s.resolution > 2)
    throw io::SnapshotError("unknown series resolution " +
                            std::to_string(s.resolution));
  s.steps = get_u64s(in);
  s.values = in.get_doubles();
  s.min = in.get_doubles();
  s.max = in.get_doubles();
  s.counts = get_u64s(in);
  if (s.values.size() != s.steps.size())
    throw io::SnapshotError("series step/value count mismatch");
  const std::size_t agg = s.resolution == 0 ? 0 : s.steps.size();
  if (s.min.size() != agg || s.max.size() != agg || s.counts.size() != agg)
    throw io::SnapshotError("series aggregate vector count mismatch");
  return s;
}

void SeriesResponse::encode(io::Serializer& out) const {
  out.put_u64(last_step);
  out.put_bool(truncated);
  out.put_u32(static_cast<std::uint32_t>(series.size()));
  for (const SeriesPoints& s : series) s.encode(out);
}

SeriesResponse SeriesResponse::decode(io::Deserializer& in) {
  SeriesResponse resp;
  resp.last_step = in.get_u64();
  resp.truncated = in.get_bool();
  const std::uint32_t n = in.get_u32();
  if (n > kMaxMatrixDim)
    throw io::SnapshotError("series count out of range");
  resp.series.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    resp.series.push_back(SeriesPoints::decode(in));
  return resp;
}

void ErrorResponse::encode(io::Serializer& out) const {
  out.put_u8(static_cast<std::uint8_t>(code));
  out.put_string(message);
}

ErrorResponse ErrorResponse::decode(io::Deserializer& in) {
  ErrorResponse resp;
  const std::uint8_t code = in.get_u8();
  if (code > static_cast<std::uint8_t>(ErrorCode::kInternal))
    throw io::SnapshotError("unknown error code " + std::to_string(code));
  resp.code = static_cast<ErrorCode>(code);
  resp.message = in.get_string();
  return resp;
}

}  // namespace leaf::net
