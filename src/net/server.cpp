#include "net/server.hpp"

#include <algorithm>
#include <utility>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "par/parallel.hpp"

namespace leaf::net {

namespace {

obs::Counter& counter(const char* name, const std::string& labels = "") {
  return obs::MetricsRegistry::global().counter(name, labels);
}

/// Batch-size distribution.  Unlike the repo's `*_seconds` histograms this
/// one records *logical* data: batch composition is a pure function of the
/// request schedule under the loopback transport, so it rides the
/// determinism checks instead of being masked by them.
obs::Histogram& batch_rows_histogram() {
  static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
      "leaf_net_batch_rows", {1, 2, 4, 8, 16, 32, 64, 128});
  return h;
}

}  // namespace

std::uint64_t WallClock::now_ms() const {
  return static_cast<std::uint64_t>(obs::monotonic_seconds() * 1e3);
}

ServerCore::ServerCore(serve::FleetRuntime& fleet, NetConfig cfg,
                       const Clock* clock)
    : fleet_(&fleet),
      cfg_(cfg),
      clock_(clock != nullptr ? clock : &wall_clock_),
      shard_queues_(fleet.num_shards()),
      shard_scratch_(fleet.num_shards()) {
  if (cfg_.queue_depth < 1)
    throw std::invalid_argument("net: queue_depth must be >= 1");
  if (cfg_.max_batch_rows < 1)
    throw std::invalid_argument("net: max_batch_rows must be >= 1");
}

void ServerCore::open(ConnId conn) {
  conns_.emplace(conn, Conn(cfg_.max_frame_bytes));
  counter("leaf_net_connections_total").inc();
}

void ServerCore::close(ConnId conn) {
  if (conns_.erase(conn) == 0) return;
  counter("leaf_net_disconnects_total").inc();
  // The peer is gone: answering its queued requests would write to a dead
  // socket, so discard them.
  for (auto& queue : shard_queues_) {
    const auto is_dead = [conn](const Pending& p) { return p.conn == conn; };
    queue.erase(std::remove_if(queue.begin(), queue.end(), is_dead),
                queue.end());
  }
}

std::size_t ServerCore::queued() const {
  std::size_t n = 0;
  for (const auto& queue : shard_queues_) n += queue.size();
  return n;
}

void ServerCore::respond(ConnId conn, const Frame& frame,
                         ResponseSink& sink) {
  ++requests_served_;
  counter("leaf_net_responses_total", obs::label("type", to_string(frame.type)))
      .inc();
  std::vector<std::uint8_t> bytes = encode_frame(frame);
  counter("leaf_net_bytes_tx_total").inc(bytes.size());
  sink.send(conn, std::move(bytes));
}

void ServerCore::respond_error(ConnId conn, std::uint64_t request_id,
                               ErrorCode code, const std::string& message,
                               ResponseSink& sink) {
  counter("leaf_net_errors_total", obs::label("code", to_string(code))).inc();
  respond(conn, make_frame(MsgType::kError, request_id,
                           ErrorResponse{code, message}),
          sink);
}

void ServerCore::ingest(ConnId conn, std::span<const std::uint8_t> bytes,
                        ResponseSink& sink) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;  // already dropped
  counter("leaf_net_bytes_rx_total").inc(bytes.size());
  try {
    it->second.decoder.feed(bytes);
    while (true) {
      std::optional<Frame> frame = it->second.decoder.next();
      if (!frame.has_value()) break;
      handle_frame(conn, *frame, sink);
    }
  } catch (const ProtocolError& e) {
    // Framing damage: the byte stream cannot be resynchronized.  Tell the
    // peer what happened (best-effort) and kill exactly this connection —
    // the fleet and every other connection keep serving.
    counter("leaf_net_malformed_frames_total").inc();
    respond_error(conn, 0, e.code(), e.what(), sink);
    close(conn);
    sink.drop(conn, e.what());
    LEAF_LOG_WARN("net: dropping connection %llu: %s",
                  static_cast<unsigned long long>(conn), e.what());
  }
}

void ServerCore::handle_frame(ConnId conn, const Frame& frame,
                              ResponseSink& sink) {
  counter("leaf_net_requests_total", obs::label("type", to_string(frame.type)))
      .inc();
  if (!is_request(frame.type))
    throw ProtocolError(ErrorCode::kMalformed,
                        std::string("response-typed frame '") +
                            to_string(frame.type) +
                            "' on a server connection");
  try {
    switch (frame.type) {
      case MsgType::kPredict:
      case MsgType::kBatchPredict:
        admit_predict(conn, frame, sink);
        return;
      case MsgType::kScrapeMetrics: {
        const ScrapeRequest req = decode_body<ScrapeRequest>(frame);
        respond(conn,
                make_frame(MsgType::kScrapeOk, frame.request_id,
                           ScrapeResponse{scrape_output(fleet_, req.json)}),
                sink);
        return;
      }
      case MsgType::kFleetStatus:
        if (!frame.payload.empty())
          throw ProtocolError(ErrorCode::kMalformed,
                              "fleet_status carries no body",
                              /*fatal=*/false);
        respond(conn, make_frame(MsgType::kStatusOk, frame.request_id,
                                 status()),
                sink);
        return;
      default:
        return;  // unreachable: is_request filtered the rest
    }
  } catch (const ProtocolError& e) {
    if (e.fatal()) throw;
    // Per-message problem (bad body, trailing bytes): answer it and keep
    // the connection — the stream itself is still framed correctly.
    counter("leaf_net_malformed_frames_total").inc();
    respond_error(conn, frame.request_id, e.code(), e.what(), sink);
  }
}

void ServerCore::admit_predict(ConnId conn, const Frame& frame,
                               ResponseSink& sink) {
  PredictRequest req = decode_body<PredictRequest>(frame);
  if (frame.type == MsgType::kPredict && req.rows.rows() != 1)
    throw ProtocolError(ErrorCode::kMalformed,
                        "predict carries exactly one row (use batch_predict)",
                        /*fatal=*/false);
  if (req.shard >= fleet_->num_shards()) {
    respond_error(conn, frame.request_id, ErrorCode::kBadShard,
                  "shard " + std::to_string(req.shard) +
                      " outside the fleet of " +
                      std::to_string(fleet_->num_shards()),
                  sink);
    return;
  }
  if (req.rows.rows() == 0 ||
      req.rows.rows() > static_cast<std::size_t>(cfg_.max_batch_rows)) {
    respond_error(conn, frame.request_id, ErrorCode::kOversized,
                  "batch of " + std::to_string(req.rows.rows()) +
                      " rows outside [1, " +
                      std::to_string(cfg_.max_batch_rows) + "]",
                  sink);
    return;
  }
  if (!fleet_->shard_ready(req.shard)) {
    respond_error(conn, frame.request_id, ErrorCode::kUnavailable,
                  "shard " + std::to_string(req.shard) +
                      " cannot serve predictions",
                  sink);
    return;
  }
  const int want_cols = fleet_->shard_num_features(req.shard);
  if (static_cast<int>(req.rows.cols()) != want_cols) {
    respond_error(conn, frame.request_id, ErrorCode::kMalformed,
                  "shard " + std::to_string(req.shard) + " expects " +
                      std::to_string(want_cols) + " features, got " +
                      std::to_string(req.rows.cols()),
                  sink);
    return;
  }
  std::deque<Pending>& queue = shard_queues_[req.shard];
  if (queue.size() >= static_cast<std::size_t>(cfg_.queue_depth)) {
    counter("leaf_net_retries_total").inc();
    respond_error(conn, frame.request_id, ErrorCode::kRetry,
                  "shard " + std::to_string(req.shard) + " queue full (depth " +
                      std::to_string(cfg_.queue_depth) + ")",
                  sink);
    return;
  }
  Pending p;
  p.conn = conn;
  p.request_id = frame.request_id;
  p.rows = std::move(req.rows);
  p.arrival_ms = clock_->now_ms();
  p.deadline_ms =
      req.deadline_ms != 0 ? req.deadline_ms : cfg_.default_deadline_ms;
  p.seq = next_seq_++;
  queue.push_back(std::move(p));
  obs::MetricsRegistry::global()
      .gauge("leaf_net_queue_depth")
      .set(static_cast<double>(queued()));
}

std::size_t ServerCore::pump(ResponseSink& sink) {
  // Phase 1 (serial): shed expired requests and freeze this pump's batch
  // composition per shard.  Clock reads and queue pops happen only here,
  // so batching is a pure function of (schedule, clock) — deterministic
  // under the loopback transport at any LEAF_THREADS.
  struct Batch {
    std::vector<Pending> requests;
    Matrix rows;  ///< requests' rows stacked: one predict pass
    std::vector<std::vector<std::uint8_t>> responses;  ///< one per request
    std::string error;  ///< non-empty: batch-wide predict failure
  };
  const std::uint64_t now = clock_->now_ms();
  std::vector<Batch> batches(shard_queues_.size());
  std::vector<std::pair<ConnId, Frame>> sheds;
  for (std::size_t shard = 0; shard < shard_queues_.size(); ++shard) {
    std::deque<Pending>& queue = shard_queues_[shard];
    Batch& batch = batches[shard];
    std::size_t rows = 0;
    while (!queue.empty()) {
      Pending& head = queue.front();
      if (head.deadline_ms != 0 && now > head.arrival_ms + head.deadline_ms) {
        counter("leaf_net_sheds_total").inc();
        sheds.emplace_back(
            head.conn,
            make_frame(MsgType::kError, head.request_id,
                       ErrorResponse{ErrorCode::kShed,
                                     "deadline of " +
                                         std::to_string(head.deadline_ms) +
                                         "ms expired in queue"}));
        queue.pop_front();
        continue;
      }
      if (rows > 0 && rows + head.rows.rows() >
                          static_cast<std::size_t>(cfg_.max_batch_rows))
        break;  // the next pump's batch
      rows += head.rows.rows();
      batch.requests.push_back(std::move(head));
      queue.pop_front();
    }
    if (batch.requests.empty()) continue;
    const std::size_t cols = batch.requests.front().rows.cols();
    batch.rows = Matrix(rows, cols);
    std::size_t r = 0;
    for (const Pending& p : batch.requests)
      for (std::size_t i = 0; i < p.rows.rows(); ++i, ++r)
        std::copy_n(p.rows.row(i).data(), cols, batch.rows.row(r).data());
  }

  // Phase 2 (parallel over shards): ONE predict_into pass per shard over
  // its reusable aligned arena, then encode the per-request response
  // frames.  Only shard-private state is touched here; every metric
  // increment stays in the serial phases.
  par::parallel_for(batches.size(), [&](std::size_t shard) {
    Batch& batch = batches[shard];
    if (batch.requests.empty()) return;
    try {
      const std::span<double> out =
          shard_scratch_[shard].acquire(batch.rows.rows());
      fleet_->predict_shard(shard, batch.rows, out);
      batch.responses.reserve(batch.requests.size());
      std::size_t offset = 0;
      for (const Pending& p : batch.requests) {
        PredictResponse resp;
        resp.values.assign(
            out.begin() + static_cast<std::ptrdiff_t>(offset),
            out.begin() + static_cast<std::ptrdiff_t>(offset + p.rows.rows()));
        offset += p.rows.rows();
        batch.responses.push_back(
            encode_frame(make_frame(MsgType::kPredictOk, p.request_id, resp)));
      }
    } catch (const std::exception& e) {
      batch.error = e.what();
    }
  });

  // Phase 3 (serial): emit in deterministic (shard, arrival) order, then
  // the sheds (already in shard-scan order).
  std::size_t answered = 0;
  for (std::size_t shard = 0; shard < batches.size(); ++shard) {
    Batch& batch = batches[shard];
    if (batch.requests.empty()) continue;
    counter("leaf_net_batches_total").inc();
    batch_rows_histogram().observe(static_cast<double>(batch.rows.rows()));
    for (std::size_t i = 0; i < batch.requests.size(); ++i) {
      const Pending& p = batch.requests[i];
      if (!batch.error.empty()) {
        respond_error(p.conn, p.request_id, ErrorCode::kInternal,
                      "shard predict failed: " + batch.error, sink);
      } else {
        ++requests_served_;
        counter("leaf_net_responses_total",
                obs::label("type", to_string(MsgType::kPredictOk)))
            .inc();
        counter("leaf_net_bytes_tx_total").inc(batch.responses[i].size());
        sink.send(p.conn, std::move(batch.responses[i]));
      }
      ++answered;
    }
  }
  for (auto& [conn, frame] : sheds) {
    respond(conn, frame, sink);
    ++answered;
  }
  obs::MetricsRegistry::global()
      .gauge("leaf_net_queue_depth")
      .set(static_cast<double>(queued()));
  return answered;
}

StatusResponse ServerCore::status() const {
  const serve::ServeStats stats = fleet_->stats();
  StatusResponse resp;
  resp.fleet_steps = stats.total_steps;
  resp.shards.reserve(stats.shards.size());
  for (std::size_t i = 0; i < stats.shards.size(); ++i) {
    const serve::ShardStats& s = stats.shards[i];
    ShardStatus out;
    out.kpi = s.kpi;
    out.model = s.model;
    out.scheme = s.scheme;
    out.health = static_cast<std::uint8_t>(s.health);
    out.ready = fleet_->shard_ready(i);
    out.num_features =
        static_cast<std::uint32_t>(fleet_->shard_num_features(i));
    out.days_evaluated = s.days_evaluated;
    out.next_day = s.next_day;
    out.done = s.done;
    resp.shards.push_back(std::move(out));
  }
  return resp;
}

std::string scrape_output(const serve::FleetRuntime* fleet, bool json) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  if (json) return reg.scrape_json();
  return fleet != nullptr ? fleet->scrape() : reg.scrape();
}

}  // namespace leaf::net
