#include "net/server.hpp"

#include <algorithm>
#include <utility>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "par/parallel.hpp"

namespace leaf::net {

namespace {

obs::Counter& counter(const char* name, const std::string& labels = "") {
  return obs::MetricsRegistry::global().counter(name, labels);
}

/// Batch-size distribution.  Unlike the repo's `*_seconds` histograms this
/// one records *logical* data: batch composition is a pure function of the
/// request schedule under the loopback transport, so it rides the
/// determinism checks instead of being masked by them.
obs::Histogram& batch_rows_histogram() {
  static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
      "leaf_net_batch_rows", {1, 2, 4, 8, 16, 32, 64, 128});
  return h;
}

/// Exact-percentile RPC latency, one series per request type.  The name
/// carries `_seconds`, so the whole family is wall-clock-masked.
obs::LatencyHistogram& rpc_latency(MsgType type) {
  return obs::MetricsRegistry::global().latency(
      "leaf_rpc_latency_seconds", obs::label("type", to_string(type)));
}

}  // namespace

std::uint64_t WallClock::now_ms() const {
  return static_cast<std::uint64_t>(obs::monotonic_seconds() * 1e3);
}

ServerCore::ServerCore(serve::FleetRuntime& fleet, NetConfig cfg,
                       const Clock* clock)
    : fleet_(&fleet),
      cfg_(cfg),
      clock_(clock != nullptr ? clock : &wall_clock_),
      shard_queues_(fleet.num_shards()),
      shard_scratch_(fleet.num_shards()) {
  if (cfg_.queue_depth < 1)
    throw std::invalid_argument("net: queue_depth must be >= 1");
  if (cfg_.max_batch_rows < 1)
    throw std::invalid_argument("net: max_batch_rows must be >= 1");
}

void ServerCore::open(ConnId conn) {
  conns_.emplace(conn, Conn(cfg_.max_frame_bytes));
  counter("leaf_net_connections_total").inc();
}

void ServerCore::close(ConnId conn) {
  if (conns_.erase(conn) == 0) return;
  counter("leaf_net_disconnects_total").inc();
  // The peer is gone: answering its queued requests would write to a dead
  // socket, so discard them.
  for (auto& queue : shard_queues_) {
    const auto is_dead = [conn](const Pending& p) { return p.conn == conn; };
    queue.erase(std::remove_if(queue.begin(), queue.end(), is_dead),
                queue.end());
  }
}

std::size_t ServerCore::queued() const {
  std::size_t n = 0;
  for (const auto& queue : shard_queues_) n += queue.size();
  return n;
}

void ServerCore::respond(ConnId conn, const Frame& frame,
                         ResponseSink& sink) {
  ++requests_served_;
  counter("leaf_net_responses_total", obs::label("type", to_string(frame.type)))
      .inc();
  std::vector<std::uint8_t> bytes = encode_frame(frame);
  counter("leaf_net_bytes_tx_total").inc(bytes.size());
  sink.send(conn, std::move(bytes));
}

void ServerCore::respond_error(ConnId conn, std::uint64_t request_id,
                               ErrorCode code, const std::string& message,
                               ResponseSink& sink, std::uint32_t version,
                               const obs::TraceId* trace) {
  counter("leaf_net_errors_total", obs::label("code", to_string(code))).inc();
  Frame frame =
      make_frame(MsgType::kError, request_id, ErrorResponse{code, message});
  frame.version = version;
  if (trace != nullptr) frame.trace = *trace;
  respond(conn, frame, sink);
}

void ServerCore::init_pending(Pending& p, ConnId conn, const Frame& frame) {
  p.conn = conn;
  p.request_id = frame.request_id;
  p.type = frame.type;
  p.version = frame.version;
  p.trace = obs::trace_is_zero(frame.trace)
                ? obs::derive_trace_id(conn, frame.request_id)
                : frame.trace;
  p.parent_span = frame.parent_span;
  p.traced = tracer_ != nullptr && tracer_->ok() && tracer_->sampled(p.trace);
  p.arrival_s = obs::monotonic_seconds();
  if (p.traced) {
    const std::size_t root = p.spans.begin("request");
    p.spans.annotate(root, "\"conn\": " + std::to_string(conn) +
                               ", \"request_id\": " +
                               std::to_string(frame.request_id) +
                               ", \"type\": \"" + to_string(frame.type) +
                               "\"");
  }
}

void ServerCore::finish_error(Pending& p, ErrorCode code,
                              const std::string& message,
                              ResponseSink& sink) {
  std::size_t respond_span = 0;
  if (p.traced) respond_span = p.spans.begin("respond");
  respond_error(p.conn, p.request_id, code, message, sink, p.version,
                &p.trace);
  if (p.traced) {
    p.spans.end(respond_span);
    p.spans.end(0);  // the root "request" span
    flush_trace(p);
  }
  rpc_latency(p.type).observe(obs::monotonic_seconds() - p.arrival_s);
}

void ServerCore::flush_trace(Pending& p) {
  if (!p.traced || tracer_ == nullptr) return;
  std::vector<obs::TraceSpan>& spans = p.spans.mutable_spans();
  if (spans.empty()) return;
  // Span 0 is the "request" root; children hang off it, except
  // "shard-predict", which nests under its batch span.  Ids are pure
  // functions of (trace, name, parent, index) — identical at any
  // LEAF_THREADS because this runs only in serial phases, in
  // deterministic response order.
  spans[0].trace = p.trace;
  spans[0].parent_id = p.parent_span;
  spans[0].span_id =
      obs::derive_span_id(p.trace, spans[0].name.c_str(), p.parent_span, 0);
  std::uint64_t batch_span_id = 0;
  for (std::size_t i = 1; i < spans.size(); ++i) {
    obs::TraceSpan& s = spans[i];
    s.trace = p.trace;
    const std::uint64_t parent =
        (s.name == "shard-predict" && batch_span_id != 0) ? batch_span_id
                                                          : spans[0].span_id;
    s.parent_id = parent;
    s.span_id = obs::derive_span_id(p.trace, s.name.c_str(), parent, i);
    if (s.name == "batch") batch_span_id = s.span_id;
  }
  for (const obs::TraceSpan& s : spans) tracer_->write(s);
  p.spans.clear();
}

void ServerCore::ingest(ConnId conn, std::span<const std::uint8_t> bytes,
                        ResponseSink& sink) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;  // already dropped
  counter("leaf_net_bytes_rx_total").inc(bytes.size());
  try {
    it->second.decoder.feed(bytes);
    while (true) {
      std::optional<Frame> frame = it->second.decoder.next();
      if (!frame.has_value()) break;
      handle_frame(conn, *frame, sink);
    }
  } catch (const ProtocolError& e) {
    // Framing damage: the byte stream cannot be resynchronized.  Tell the
    // peer what happened (best-effort) and kill exactly this connection —
    // the fleet and every other connection keep serving.
    counter("leaf_net_malformed_frames_total").inc();
    respond_error(conn, 0, e.code(), e.what(), sink);
    close(conn);
    sink.drop(conn, e.what());
    LEAF_LOG_WARN("net: dropping connection %llu: %s",
                  static_cast<unsigned long long>(conn), e.what());
  }
}

void ServerCore::handle_frame(ConnId conn, const Frame& frame,
                              ResponseSink& sink) {
  counter("leaf_net_requests_total", obs::label("type", to_string(frame.type)))
      .inc();
  if (!is_request(frame.type))
    throw ProtocolError(ErrorCode::kMalformed,
                        std::string("response-typed frame '") +
                            to_string(frame.type) +
                            "' on a server connection");
  try {
    switch (frame.type) {
      case MsgType::kPredict:
      case MsgType::kBatchPredict:
        admit_predict(conn, frame, sink);
        return;
      case MsgType::kScrapeMetrics: {
        Pending p;
        init_pending(p, conn, frame);
        std::size_t decode_span = 0;
        if (p.traced) decode_span = p.spans.begin("decode");
        const ScrapeRequest req = decode_body<ScrapeRequest>(frame);
        if (p.traced) p.spans.end(decode_span);
        Frame resp =
            make_frame(MsgType::kScrapeOk, frame.request_id,
                       ScrapeResponse{scrape_output(fleet_, req.json)});
        resp.version = p.version;
        resp.trace = p.trace;
        std::size_t respond_span = 0;
        if (p.traced) respond_span = p.spans.begin("respond");
        respond(conn, resp, sink);
        if (p.traced) {
          p.spans.end(respond_span);
          p.spans.end(0);
          flush_trace(p);
        }
        rpc_latency(p.type).observe(obs::monotonic_seconds() - p.arrival_s);
        return;
      }
      case MsgType::kFleetStatus: {
        if (!frame.payload.empty())
          throw ProtocolError(ErrorCode::kMalformed,
                              "fleet_status carries no body",
                              /*fatal=*/false);
        Pending p;
        init_pending(p, conn, frame);
        Frame resp =
            make_frame(MsgType::kStatusOk, frame.request_id, status());
        resp.version = p.version;
        resp.trace = p.trace;
        std::size_t respond_span = 0;
        if (p.traced) respond_span = p.spans.begin("respond");
        respond(conn, resp, sink);
        if (p.traced) {
          p.spans.end(respond_span);
          p.spans.end(0);
          flush_trace(p);
        }
        rpc_latency(p.type).observe(obs::monotonic_seconds() - p.arrival_s);
        return;
      }
      case MsgType::kQuerySeries: {
        Pending p;
        init_pending(p, conn, frame);
        std::size_t decode_span = 0;
        if (p.traced) decode_span = p.spans.begin("decode");
        const SeriesRequest req = decode_body<SeriesRequest>(frame);
        if (p.traced) p.spans.end(decode_span);
        if (req.max_series > cfg_.max_query_series)
          throw ProtocolError(
              ErrorCode::kOversized,
              "query_series asks for " + std::to_string(req.max_series) +
                  " series; the server caps responses at " +
                  std::to_string(cfg_.max_query_series),
              /*fatal=*/false);
        tsdb::Store::Query q;
        q.name = req.name;
        q.labels_contains = req.labels_contains;
        q.start_step = req.start_step;
        q.end_step = req.end_step;
        q.resolution = static_cast<tsdb::Resolution>(req.resolution);
        q.max_series = req.max_series;
        const tsdb::Store& store =
            static_cast<const serve::FleetRuntime&>(*fleet_).telemetry();
        tsdb::Store::QueryResult result = store.query(q);
        SeriesResponse body;
        body.last_step = store.last_step();
        body.truncated = result.truncated;
        body.series.reserve(result.series.size());
        for (tsdb::SeriesData& sd : result.series) {
          SeriesPoints pts;
          pts.name = std::move(sd.name);
          pts.labels = std::move(sd.labels);
          pts.resolution = static_cast<std::uint8_t>(sd.resolution);
          pts.steps = std::move(sd.steps);
          pts.values = std::move(sd.values);
          pts.min = std::move(sd.min);
          pts.max = std::move(sd.max);
          pts.counts = std::move(sd.counts);
          body.series.push_back(std::move(pts));
        }
        Frame resp =
            make_frame(MsgType::kQuerySeriesOk, frame.request_id, body);
        resp.version = p.version;
        resp.trace = p.trace;
        std::size_t respond_span = 0;
        if (p.traced) respond_span = p.spans.begin("respond");
        respond(conn, resp, sink);
        if (p.traced) {
          p.spans.end(respond_span);
          p.spans.end(0);
          flush_trace(p);
        }
        rpc_latency(p.type).observe(obs::monotonic_seconds() - p.arrival_s);
        return;
      }
      default:
        return;  // unreachable: is_request filtered the rest
    }
  } catch (const ProtocolError& e) {
    if (e.fatal()) throw;
    // Per-message problem (bad body, trailing bytes): answer it and keep
    // the connection — the stream itself is still framed correctly.
    counter("leaf_net_malformed_frames_total").inc();
    respond_error(conn, frame.request_id, e.code(), e.what(), sink,
                  frame.version, &frame.trace);
  }
}

void ServerCore::admit_predict(ConnId conn, const Frame& frame,
                               ResponseSink& sink) {
  Pending p;
  init_pending(p, conn, frame);
  std::size_t decode_span = 0;
  if (p.traced) decode_span = p.spans.begin("decode");
  PredictRequest req = decode_body<PredictRequest>(frame);
  if (p.traced) p.spans.end(decode_span);
  if (frame.type == MsgType::kPredict && req.rows.rows() != 1)
    throw ProtocolError(ErrorCode::kMalformed,
                        "predict carries exactly one row (use batch_predict)",
                        /*fatal=*/false);
  std::size_t admission_span = 0;
  if (p.traced) {
    admission_span = p.spans.begin("admission");
    p.spans.annotate(admission_span,
                     "\"shard\": " + std::to_string(req.shard) +
                         ", \"rows\": " + std::to_string(req.rows.rows()));
  }
  const auto reject = [&](ErrorCode code, const std::string& message) {
    if (p.traced) p.spans.end(admission_span);
    finish_error(p, code, message, sink);
  };
  if (req.shard >= fleet_->num_shards()) {
    reject(ErrorCode::kBadShard, "shard " + std::to_string(req.shard) +
                                     " outside the fleet of " +
                                     std::to_string(fleet_->num_shards()));
    return;
  }
  if (req.rows.rows() == 0 ||
      req.rows.rows() > static_cast<std::size_t>(cfg_.max_batch_rows)) {
    reject(ErrorCode::kOversized, "batch of " +
                                      std::to_string(req.rows.rows()) +
                                      " rows outside [1, " +
                                      std::to_string(cfg_.max_batch_rows) +
                                      "]");
    return;
  }
  if (!fleet_->shard_ready(req.shard)) {
    reject(ErrorCode::kUnavailable, "shard " + std::to_string(req.shard) +
                                        " cannot serve predictions");
    return;
  }
  const int want_cols = fleet_->shard_num_features(req.shard);
  if (static_cast<int>(req.rows.cols()) != want_cols) {
    reject(ErrorCode::kMalformed,
           "shard " + std::to_string(req.shard) + " expects " +
               std::to_string(want_cols) + " features, got " +
               std::to_string(req.rows.cols()));
    return;
  }
  std::deque<Pending>& queue = shard_queues_[req.shard];
  if (queue.size() >= static_cast<std::size_t>(cfg_.queue_depth)) {
    counter("leaf_net_retries_total").inc();
    reject(ErrorCode::kRetry,
           "shard " + std::to_string(req.shard) + " queue full (depth " +
               std::to_string(cfg_.queue_depth) + ")");
    return;
  }
  if (p.traced) p.spans.end(admission_span);
  p.rows = std::move(req.rows);
  p.arrival_ms = clock_->now_ms();
  p.deadline_ms =
      req.deadline_ms != 0 ? req.deadline_ms : cfg_.default_deadline_ms;
  p.seq = next_seq_++;
  queue.push_back(std::move(p));
  obs::MetricsRegistry::global()
      .gauge("leaf_net_queue_depth")
      .set(static_cast<double>(queued()));
}

std::size_t ServerCore::pump(ResponseSink& sink) {
  // Phase 1 (serial): shed expired requests and freeze this pump's batch
  // composition per shard.  Clock reads and queue pops happen only here,
  // so batching is a pure function of (schedule, clock) — deterministic
  // under the loopback transport at any LEAF_THREADS.
  struct Batch {
    std::vector<Pending> requests;
    Matrix rows;  ///< requests' rows stacked: one predict pass
    std::vector<std::vector<std::uint8_t>> responses;  ///< one per request
    std::string error;  ///< non-empty: batch-wide predict failure
    obs::SpanCollector spans;  ///< shard-private batch/shard-predict spans
  };
  const std::uint64_t now = clock_->now_ms();
  std::vector<Batch> batches(shard_queues_.size());
  std::vector<Pending> sheds;
  for (std::size_t shard = 0; shard < shard_queues_.size(); ++shard) {
    std::deque<Pending>& queue = shard_queues_[shard];
    Batch& batch = batches[shard];
    std::size_t rows = 0;
    while (!queue.empty()) {
      Pending& head = queue.front();
      if (head.deadline_ms != 0 && now > head.arrival_ms + head.deadline_ms) {
        counter("leaf_net_sheds_total").inc();
        sheds.push_back(std::move(head));
        queue.pop_front();
        continue;
      }
      if (rows > 0 && rows + head.rows.rows() >
                          static_cast<std::size_t>(cfg_.max_batch_rows))
        break;  // the next pump's batch
      rows += head.rows.rows();
      batch.requests.push_back(std::move(head));
      queue.pop_front();
    }
    if (batch.requests.empty()) continue;
    const std::size_t cols = batch.requests.front().rows.cols();
    batch.rows = Matrix(rows, cols);
    std::size_t r = 0;
    for (const Pending& p : batch.requests)
      for (std::size_t i = 0; i < p.rows.rows(); ++i, ++r)
        std::copy_n(p.rows.row(i).data(), cols, batch.rows.row(r).data());
  }

  // Phase 2 (parallel over shards): ONE predict_into pass per shard over
  // its reusable aligned arena, then encode the per-request response
  // frames.  Only shard-private state is touched here; every metric
  // increment stays in the serial phases.
  par::parallel_for(batches.size(), [&](std::size_t shard) {
    Batch& batch = batches[shard];
    if (batch.requests.empty()) return;
    // Batch + shard-predict spans live in the shard-private collector;
    // ids are assigned and the spans flushed later, in serial phase 3.
    const bool traced =
        std::any_of(batch.requests.begin(), batch.requests.end(),
                    [](const Pending& p) { return p.traced; });
    std::size_t batch_span = 0;
    if (traced) {
      batch_span = batch.spans.begin("batch", static_cast<int>(shard) + 1);
      batch.spans.annotate(
          batch_span, "\"shard\": " + std::to_string(shard) + ", \"rows\": " +
                          std::to_string(batch.rows.rows()) +
                          ", \"requests\": " +
                          std::to_string(batch.requests.size()));
    }
    try {
      const std::span<double> out =
          shard_scratch_[shard].acquire(batch.rows.rows());
      fleet_->predict_shard(shard, batch.rows, out,
                            traced ? &batch.spans : nullptr);
      batch.responses.reserve(batch.requests.size());
      std::size_t offset = 0;
      for (const Pending& p : batch.requests) {
        PredictResponse resp;
        resp.values.assign(
            out.begin() + static_cast<std::ptrdiff_t>(offset),
            out.begin() + static_cast<std::ptrdiff_t>(offset + p.rows.rows()));
        offset += p.rows.rows();
        Frame frame = make_frame(MsgType::kPredictOk, p.request_id, resp);
        frame.version = p.version;
        frame.trace = p.trace;
        batch.responses.push_back(encode_frame(frame));
      }
    } catch (const std::exception& e) {
      batch.error = e.what();
    }
    if (traced) batch.spans.end(batch_span);
  });

  // Phase 3 (serial): emit in deterministic (shard, arrival) order, then
  // the sheds (already in shard-scan order).
  std::size_t answered = 0;
  for (std::size_t shard = 0; shard < batches.size(); ++shard) {
    Batch& batch = batches[shard];
    if (batch.requests.empty()) continue;
    counter("leaf_net_batches_total").inc();
    batch_rows_histogram().observe(static_cast<double>(batch.rows.rows()));
    for (std::size_t i = 0; i < batch.requests.size(); ++i) {
      Pending& p = batch.requests[i];
      if (p.traced)  // graft the shard's batch spans into this request
        for (const obs::TraceSpan& s : batch.spans.spans())
          p.spans.mutable_spans().push_back(s);
      if (!batch.error.empty()) {
        finish_error(p, ErrorCode::kInternal,
                     "shard predict failed: " + batch.error, sink);
      } else {
        std::size_t respond_span = 0;
        if (p.traced) respond_span = p.spans.begin("respond");
        ++requests_served_;
        counter("leaf_net_responses_total",
                obs::label("type", to_string(MsgType::kPredictOk)))
            .inc();
        counter("leaf_net_bytes_tx_total").inc(batch.responses[i].size());
        sink.send(p.conn, std::move(batch.responses[i]));
        if (p.traced) {
          p.spans.end(respond_span);
          p.spans.end(0);
          flush_trace(p);
        }
        rpc_latency(p.type).observe(obs::monotonic_seconds() - p.arrival_s);
      }
      ++answered;
    }
  }
  for (Pending& p : sheds) {
    finish_error(p, ErrorCode::kShed,
                 "deadline of " + std::to_string(p.deadline_ms) +
                     "ms expired in queue",
                 sink);
    ++answered;
  }
  obs::MetricsRegistry::global()
      .gauge("leaf_net_queue_depth")
      .set(static_cast<double>(queued()));
  return answered;
}

StatusResponse ServerCore::status() const {
  const serve::ServeStats stats = fleet_->stats();
  StatusResponse resp;
  resp.fleet_steps = stats.total_steps;
  resp.shards.reserve(stats.shards.size());
  for (std::size_t i = 0; i < stats.shards.size(); ++i) {
    const serve::ShardStats& s = stats.shards[i];
    ShardStatus out;
    out.kpi = s.kpi;
    out.model = s.model;
    out.scheme = s.scheme;
    out.health = static_cast<std::uint8_t>(s.health);
    out.ready = fleet_->shard_ready(i);
    out.num_features =
        static_cast<std::uint32_t>(fleet_->shard_num_features(i));
    out.days_evaluated = s.days_evaluated;
    out.next_day = s.next_day;
    out.done = s.done;
    resp.shards.push_back(std::move(out));
  }
  return resp;
}

std::string scrape_output(const serve::FleetRuntime* fleet, bool json) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  if (json) return reg.scrape_json();
  return fleet != nullptr ? fleet->scrape() : reg.scrape();
}

}  // namespace leaf::net
