// POSIX TCP front end for the ServerCore, and the matching blocking
// client.
//
// `TcpServer` owns the listening socket and every accepted connection.
// It is single-threaded by design: the owner calls poll_once() from ONE
// thread (leafctl interleaves it with fleet.step() on the main thread),
// which runs one poll(2) cycle — accept new connections, read available
// bytes into each connection's frame decoder via core().ingest, pump the
// shard queues, and flush pending writes.  Sockets are non-blocking
// throughout; a peer that disappears mid-frame or writes garbage loses
// its connection (typed error first, best-effort) while the listener,
// the other connections, and the fleet keep running.
//
// `TcpClient` is the deliberately simple other half: blocking connect,
// blocking send, blocking receive of one frame at a time — all a CLI
// client or CI smoke test needs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"

namespace leaf::net {

/// Splits "host:port" (port 1..65535); throws std::invalid_argument on
/// anything else.
std::pair<std::string, std::uint16_t> parse_host_port(const std::string& s);

class TcpServer : public ResponseSink {
 public:
  /// Binds and listens on host:port (port 0 = ephemeral; see port()).
  /// Throws std::runtime_error on bind/listen failure.
  TcpServer(serve::FleetRuntime& fleet, const std::string& host,
            std::uint16_t port, NetConfig cfg = {});
  ~TcpServer() override;

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The actually bound port (resolves an ephemeral bind).
  std::uint16_t port() const { return port_; }

  /// One event-loop cycle: waits up to timeout_ms for socket activity,
  /// then accepts / reads / dispatches / pumps / writes.  Returns the
  /// number of requests answered this cycle.
  std::size_t poll_once(int timeout_ms);

  std::uint64_t requests_served() const { return core_.requests_served(); }
  std::size_t open_connections() const { return conns_.size(); }
  ServerCore& core() { return core_; }

  // ResponseSink: the core hands encoded responses back for buffering.
  void send(ConnId conn, std::vector<std::uint8_t> bytes) override;
  void drop(ConnId conn, const std::string& reason) override;

 private:
  struct TcpConn {
    int fd = -1;
    std::vector<std::uint8_t> out;  ///< bytes queued for the socket
    bool closing = false;           ///< close once `out` drains
  };

  void accept_ready();
  void read_ready(ConnId id);
  void write_ready(ConnId id);
  void destroy(ConnId id);

  ServerCore core_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::map<ConnId, TcpConn> conns_;
  ConnId next_id_ = 1;
};

class TcpClient : public ClientTransport {
 public:
  /// Blocking connect; throws std::runtime_error on failure.
  TcpClient(const std::string& host, std::uint16_t port);
  ~TcpClient() override;

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  void send(const Frame& frame) override;
  /// Blocks until one complete frame arrives; nullopt when the server
  /// closed the connection with no partial frame pending.
  std::optional<Frame> receive() override;
  bool alive() const override { return fd_ >= 0; }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace leaf::net
