#include "net/loopback.hpp"

namespace leaf::net {

void LoopbackConnection::send(const Frame& frame) {
  send_bytes(encode_frame(frame));
}

void LoopbackConnection::send_bytes(std::span<const std::uint8_t> bytes) {
  if (dropped_)
    throw std::runtime_error("net: loopback connection is dropped (" +
                             drop_reason_ + ")");
  harness_->core_.ingest(id_, bytes, *harness_);
}

std::optional<Frame> LoopbackConnection::receive() {
  if (responses_.empty()) return std::nullopt;
  Frame frame = std::move(responses_.front());
  responses_.pop_front();
  return frame;
}

void LoopbackConnection::close() {
  harness_->core_.close(id_);
  mark_dropped("closed by client");
}

void LoopbackConnection::deliver(std::span<const std::uint8_t> bytes) {
  // Route server output through a real client-side decoder so both
  // directions of the wire format are exercised on every exchange.
  rx_.feed(bytes);
  while (std::optional<Frame> frame = rx_.next())
    responses_.push_back(std::move(*frame));
}

void LoopbackConnection::mark_dropped(const std::string& reason) {
  dropped_ = true;
  drop_reason_ = reason;
}

Loopback::Loopback(serve::FleetRuntime& fleet, NetConfig cfg)
    : core_(fleet, cfg, &clock_) {}

LoopbackConnection& Loopback::connect() {
  const ConnId id = next_id_++;
  auto conn = std::unique_ptr<LoopbackConnection>(
      new LoopbackConnection(this, id));
  LoopbackConnection& ref = *conn;
  conns_.emplace(id, std::move(conn));
  core_.open(id);
  return ref;
}

void Loopback::send(ConnId conn, std::vector<std::uint8_t> bytes) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  it->second->deliver(bytes);
}

void Loopback::drop(ConnId conn, const std::string& reason) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  it->second->mark_dropped(reason);
}

}  // namespace leaf::net
