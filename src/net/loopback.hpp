// In-process loopback transport: the same ServerCore, framing, admission
// control, and batching as the TCP front end, driven without sockets.
//
// A `Loopback` harness owns a ServerCore bound to a fleet and a
// ManualClock.  Tests and bench_net open any number of
// `LoopbackConnection`s, write requests (which pass through the real
// encode -> FrameDecoder -> dispatch path), advance the clock
// explicitly, and pump() the server — so batch composition, deadline
// sheds, and queue-full retries are a pure function of the request
// schedule, bit-identical at any LEAF_THREADS.  Responses come back as
// encoded bytes and are re-decoded through a client-side FrameDecoder,
// exercising both directions of the wire format.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"

namespace leaf::net {

class Loopback;

/// One client connection to a Loopback harness.  Owned by the harness;
/// valid until the harness dies.
class LoopbackConnection : public ClientTransport {
 public:
  void send(const Frame& frame) override;
  /// Raw bytes, bypassing the frame encoder — for malformed-input and
  /// truncation tests.
  void send_bytes(std::span<const std::uint8_t> bytes);

  /// Pops the next queued response (already CRC-verified through the
  /// client-side decoder); nullopt when none is queued yet.
  std::optional<Frame> receive() override;

  bool alive() const override { return !dropped_; }
  /// Why the server dropped this connection (empty while alive).
  const std::string& drop_reason() const { return drop_reason_; }
  ConnId id() const { return id_; }
  std::size_t queued_responses() const { return responses_.size(); }

  /// Client-initiated close (discards this side's queued requests).
  void close();

 private:
  friend class Loopback;
  LoopbackConnection(Loopback* harness, ConnId id)
      : harness_(harness), id_(id) {}

  void deliver(std::span<const std::uint8_t> bytes);  // server -> client
  void mark_dropped(const std::string& reason);

  Loopback* harness_;
  ConnId id_;
  FrameDecoder rx_;
  std::deque<Frame> responses_;
  bool dropped_ = false;
  std::string drop_reason_;
};

class Loopback : public ResponseSink {
 public:
  explicit Loopback(serve::FleetRuntime& fleet, NetConfig cfg = {});

  /// Opens a new connection.  The reference stays valid for the
  /// harness's lifetime (connections are heap-held), including after a
  /// server-side drop — the object just reports !alive().
  LoopbackConnection& connect();

  /// Drains the server's shard queues once (shed + batch + predict +
  /// respond); returns the number of requests answered.
  std::size_t pump() { return core_.pump(*this); }

  ServerCore& core() { return core_; }
  ManualClock& clock() { return clock_; }

  // ResponseSink (server -> client delivery).
  void send(ConnId conn, std::vector<std::uint8_t> bytes) override;
  void drop(ConnId conn, const std::string& reason) override;

 private:
  friend class LoopbackConnection;

  ManualClock clock_;
  ServerCore core_;
  std::map<ConnId, std::unique_ptr<LoopbackConnection>> conns_;
  ConnId next_id_ = 1;
};

}  // namespace leaf::net
