// leaf::net — length-prefixed binary wire protocol for the serving fleet.
//
// Frames are the unit of transport.  On the wire (all integers
// little-endian, encoded with the bounds-checked leaf::io serializer):
//
//   magic        4 bytes   "LNET"
//   version      u32       kProtocolVersion (2; version 1 still decoded)
//   type         u8        MsgType
//   request_id   u64       client-chosen correlation id, echoed in responses
//   trace_id     16 bytes  v2 only: distributed-trace id (zero = none)
//   parent_span  u64       v2 only: caller's span id (zero = trace root)
//   payload_len  u32       payload byte count (bounded by the decoder)
//   crc          u32       CRC-32 of the payload bytes (io::crc32)
//   payload      bytes     one encoded message body (below)
//
// Version compatibility: v2 (current) inserts the 24 tracing bytes
// between request_id and payload_len; every field up to and including
// request_id sits at the same offset in both versions, and the decoder
// accepts both — a v1 client talks to a v2 server unchanged, and the
// server echoes each response in the request's version so an old client
// never sees bytes it cannot parse.  Any other version poisons the
// stream (it cannot be resynchronized).
//
// Like the LEAFSNAP container, every frame is independently checksummed
// and every decode parses into temporaries with explicit bounds checks:
// a truncated, bit-flipped, or oversized frame raises a typed
// `ProtocolError` identifying what was wrong — never UB, never a partial
// message handed to the application.  The decoder is incremental (feed
// bytes as they arrive off a socket; frames pop out when complete), so
// the same code path serves the poll-based TCP server and the
// deterministic in-process loopback transport.
//
// Message bodies are encoded with io::Serializer and decoded with
// io::Deserializer; a body that fails structural validation (count
// mismatch, trailing bytes, unknown enum value) is a malformed frame.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "io/serializer.hpp"
#include "obs/trace.hpp"

namespace leaf::net {

inline constexpr char kMagic[4] = {'L', 'N', 'E', 'T'};
/// Current protocol version.  v2 added the per-frame trace id + parent
/// span id; v1 frames (no tracing bytes) are still decoded and answered.
inline constexpr std::uint32_t kProtocolVersion = 2;
inline constexpr std::uint32_t kProtocolV1 = 1;
/// v2 frame header size: magic + version + type + request_id + trace_id +
/// parent_span + payload_len + crc.
inline constexpr std::size_t kHeaderBytes = 4 + 4 + 1 + 8 + 16 + 8 + 4 + 4;
/// v1 frame header size (no tracing fields).
inline constexpr std::size_t kHeaderBytesV1 = 4 + 4 + 1 + 8 + 4 + 4;
/// Default per-frame payload ceiling (NetConfig can lower it).
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

/// Frame/message types.  Requests are < 16, responses >= 16, so a peer
/// can reject a response-typed frame arriving on a server connection.
enum class MsgType : std::uint8_t {
  kPredict = 0,        ///< one feature row -> one forecast
  kBatchPredict = 1,   ///< n feature rows -> n forecasts, one model pass
  kScrapeMetrics = 2,  ///< Prometheus text or JSON scrape
  kFleetStatus = 3,    ///< per-shard serving status
  kQuerySeries = 4,    ///< telemetry store range query (leaf::tsdb)
  kPredictOk = 16,
  kScrapeOk = 17,
  kStatusOk = 18,
  kError = 19,  ///< typed failure (ErrorResponse payload)
  kQuerySeriesOk = 20,
};

const char* to_string(MsgType t);
bool is_request(MsgType t);

/// Typed failure codes carried by kError responses.  SHED and RETRY are
/// explicit admission-control outcomes — a loaded server *answers* that
/// it dropped the request, it never silently drops it.
enum class ErrorCode : std::uint8_t {
  kMalformed = 0,    ///< frame or body failed structural validation
  kOversized = 1,    ///< frame or batch exceeds the configured bound
  kBadShard = 2,     ///< shard index outside the fleet
  kUnavailable = 3,  ///< shard exists but cannot serve (quarantined/unfit)
  kShed = 4,         ///< deadline expired before service; do not retry
  kRetry = 5,        ///< admission queue full; retry after backoff
  kInternal = 6,     ///< server-side exception (message has what())
};

const char* to_string(ErrorCode c);

/// Raised by the frame decoder (and body codecs) on malformed input.
/// `code()` is the typed cause; `fatal()` distinguishes damage that
/// desynchronizes the byte stream (bad magic, CRC mismatch: the
/// connection must die) from per-message problems the connection can
/// survive (an oversized but well-framed request).
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ErrorCode code, const std::string& what, bool fatal = true)
      : std::runtime_error("net: " + what), code_(code), fatal_(fatal) {}

  ErrorCode code() const { return code_; }
  bool fatal() const { return fatal_; }

 private:
  ErrorCode code_;
  bool fatal_;
};

/// One decoded frame: type + correlation id + verified payload bytes,
/// plus the v2 tracing context.  The tracing fields default to "absent"
/// so `Frame{type, id, payload}` aggregate initializers keep working;
/// `version` controls which layout encode_frame emits (servers echo the
/// request's version so v1 clients get v1 responses).
struct Frame {
  MsgType type = MsgType::kPredict;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
  std::uint32_t version = kProtocolVersion;
  obs::TraceId trace{};           ///< v2: all-zero = no trace attached
  std::uint64_t parent_span = 0;  ///< v2: 0 = root of the trace

  bool operator==(const Frame&) const = default;
};

/// Encodes a frame (header + CRC + payload) ready for the wire.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Incremental frame decoder: feed() bytes in any chunking (byte-at-a-time
/// included); next() yields complete, CRC-verified frames in order.
/// Malformed input throws ProtocolError from feed() or next(); after a
/// fatal error the decoder refuses further input (the stream cannot be
/// resynchronized).
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(std::span<const std::uint8_t> bytes);
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed as a complete frame (a non-empty
  /// value on connection close means the peer died mid-frame).
  std::size_t pending_bytes() const { return buf_.size() - pos_; }
  bool poisoned() const { return poisoned_; }

 private:
  void validate_header();
  void compact();

  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
};

// --- message bodies --------------------------------------------------------

/// kPredict / kBatchPredict body.  `deadline_ms` is a relative service
/// budget: the request must *start* being served within that many
/// milliseconds of arrival or be SHED (0 = no deadline).  kPredict
/// carries exactly one row; kBatchPredict any row count the server's
/// admission config allows.
struct PredictRequest {
  std::uint32_t shard = 0;
  std::uint32_t deadline_ms = 0;
  Matrix rows;  ///< rows x num_features

  void encode(io::Serializer& out) const;
  static PredictRequest decode(io::Deserializer& in);
};

/// kPredictOk body: one forecast per request row, in row order.
struct PredictResponse {
  std::vector<double> values;

  void encode(io::Serializer& out) const;
  static PredictResponse decode(io::Deserializer& in);
};

/// kScrapeMetrics body.
struct ScrapeRequest {
  bool json = false;

  void encode(io::Serializer& out) const;
  static ScrapeRequest decode(io::Deserializer& in);
};

/// kScrapeOk body.
struct ScrapeResponse {
  std::string body;

  void encode(io::Serializer& out) const;
  static ScrapeResponse decode(io::Deserializer& in);
};

/// kStatusOk body: the serving surface a client needs to build valid
/// predict requests (feature counts, readiness) plus progress context.
struct ShardStatus {
  std::string kpi;
  std::string model;
  std::string scheme;
  std::uint8_t health = 0;  ///< serve::ShardHealth numeric value
  bool ready = false;       ///< accepts predict requests right now
  std::uint32_t num_features = 0;
  std::int32_t days_evaluated = 0;
  std::int32_t next_day = 0;
  bool done = false;

  bool operator==(const ShardStatus&) const = default;
};

struct StatusResponse {
  std::uint64_t fleet_steps = 0;
  std::vector<ShardStatus> shards;

  void encode(io::Serializer& out) const;
  static StatusResponse decode(io::Deserializer& in);
};

/// kQuerySeries body: a telemetry-store range query.  `name` is an exact
/// series name or a trailing-'*' prefix matcher; `labels_contains` is a
/// substring filter on the canonical label string ("" = all).  Steps are
/// logical (fleet-step / sample-tick indices), `end_step` inclusive.
/// `resolution` is a tsdb::Resolution value (0 raw, 1 ten-step, 2
/// hundred-step); anything else is a malformed body.  `max_series` caps
/// the response; the server enforces its own ceiling on top (kOversized).
struct SeriesRequest {
  std::string name;
  std::string labels_contains;
  std::uint64_t start_step = 0;
  std::uint64_t end_step = ~0ULL;
  std::uint8_t resolution = 0;
  std::uint32_t max_series = 16;

  void encode(io::Serializer& out) const;
  static SeriesRequest decode(io::Deserializer& in);
};

/// One series of a kQuerySeriesOk response.  At resolution 0 only
/// `steps`/`values` are populated; at the downsampled tiers `values`
/// holds bucket means and `min`/`max`/`counts` the rest of each bucket
/// (all five vectors then share a length).
struct SeriesPoints {
  std::string name;
  std::string labels;
  std::uint8_t resolution = 0;
  std::vector<std::uint64_t> steps;
  std::vector<double> values;
  std::vector<double> min;
  std::vector<double> max;
  std::vector<std::uint64_t> counts;

  bool operator==(const SeriesPoints&) const = default;

  void encode(io::Serializer& out) const;
  static SeriesPoints decode(io::Deserializer& in);
};

/// kQuerySeriesOk body.
struct SeriesResponse {
  std::uint64_t last_step = 0;  ///< newest sample step in the store
  bool truncated = false;       ///< more series matched than returned
  std::vector<SeriesPoints> series;

  void encode(io::Serializer& out) const;
  static SeriesResponse decode(io::Deserializer& in);
};

/// kError body.
struct ErrorResponse {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  void encode(io::Serializer& out) const;
  static ErrorResponse decode(io::Deserializer& in);
};

/// Convenience: encodes `body` into a frame of the given type.
template <typename Body>
Frame make_frame(MsgType type, std::uint64_t request_id, const Body& body) {
  io::Serializer s;
  body.encode(s);
  return Frame{type, request_id,
               std::vector<std::uint8_t>(s.bytes().begin(), s.bytes().end())};
}

/// Decodes a frame payload as `Body`, converting serializer bounds errors
/// and trailing bytes into non-fatal kMalformed ProtocolErrors.
template <typename Body>
Body decode_body(const Frame& frame) {
  io::Deserializer in(frame.payload);
  try {
    Body body = Body::decode(in);
    if (!in.exhausted())
      throw ProtocolError(ErrorCode::kMalformed,
                          "trailing bytes after message body",
                          /*fatal=*/false);
    return body;
  } catch (const io::SnapshotError& e) {
    throw ProtocolError(ErrorCode::kMalformed,
                        std::string("bad message body: ") + e.what(),
                        /*fatal=*/false);
  }
}

}  // namespace leaf::net
