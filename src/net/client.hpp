// Client-side transport abstraction shared by the deterministic loopback
// harness (net/loopback.hpp) and the blocking TCP client (net/tcp.hpp).
//
// `leafctl query`, the protocol tests, and bench_net all speak to a
// server through this one interface, so the request/response client code
// is written once and runs unchanged over sockets or in-process.
#pragma once

#include <optional>
#include <stdexcept>

#include "net/protocol.hpp"

namespace leaf::net {

class ClientTransport {
 public:
  virtual ~ClientTransport() = default;

  /// Sends one request frame.  Throws std::runtime_error when the
  /// connection is dead.
  virtual void send(const Frame& frame) = 0;

  /// Next response frame, in arrival order.  The loopback returns
  /// nullopt when no response is queued (pump the harness); the TCP
  /// client blocks and returns nullopt only when the server closed the
  /// connection.  Throws ProtocolError on response-stream damage.
  virtual std::optional<Frame> receive() = 0;

  virtual bool alive() const = 0;
};

/// Sends `frame` and waits for its response (matching request_id).  Only
/// meaningful for transports whose receive() blocks (TCP); responses to
/// other request ids arriving in between are an error here, since this
/// helper is for strictly sequential request/response clients.
Frame call(ClientTransport& transport, const Frame& frame);

}  // namespace leaf::net
