// leaf::net — transport-agnostic RPC server core for the serving fleet.
//
// A `ServerCore` sits between a byte transport (the poll-based TCP front
// end in net/tcp.hpp, or the deterministic in-process loopback in
// net/loopback.hpp) and a `serve::FleetRuntime`.  The transport owns the
// bytes; the core owns framing, admission control, batching, and
// dispatch:
//
//   ingest(conn, bytes)   feeds a connection's bytes through its frame
//                         decoder.  Malformed frames (bad magic, CRC
//                         mismatch, oversized, garbage bodies) produce a
//                         typed kError response and — for stream-
//                         desynchronizing damage — kill exactly that
//                         connection.  The fleet and every other
//                         connection keep serving.  Scrape and status
//                         requests are answered inline (cheap, read-
//                         only); predict requests pass admission control
//                         and join their shard's bounded queue.
//
//   pump()                drains the per-shard queues: expired requests
//                         are SHED (typed response, never a silent
//                         drop), the survivors are coalesced — up to
//                         max_batch_rows rows — into ONE matrix and ONE
//                         predict_into pass over the shard's reusable
//                         SIMD scratch arena, then sliced back into one
//                         response per request.  Shards batch
//                         independently and in parallel on leaf::par;
//                         responses are emitted in deterministic
//                         (shard, arrival) order.
//
// Admission control: a predict request is rejected *immediately* with
// kRetry when its shard queue is at queue_depth, with kOversized when a
// single batch exceeds max_batch_rows rows, and SHED at dequeue time
// when its deadline budget expired while queued.  Deadlines are measured
// against an injectable millisecond clock: the TCP server uses the
// monotonic wall clock, while tests and bench_net use a ManualClock so
// shed behavior is a pure function of the request schedule.
//
// The core is single-driver: ingest() and pump() must be called from one
// thread (the transport's event loop).  Everything downstream is
// deterministic, so a loopback schedule produces byte-identical
// responses and identical non-wall-clock `leaf_net_*` telemetry at any
// LEAF_THREADS setting.
//
// Tracing: with set_tracer() attached, every sampled request carries a
// span tree — request → decode / admission / batch / shard-predict /
// respond — into the tracer's Chrome trace-event file.  Trace ids come
// off the wire (LNET v2) or are derived from (connection, request id);
// span ids are assigned, and spans flushed, only from the serial phases
// in deterministic response order, so span topology and counts are a
// pure function of the request schedule.  Only the Chrome "ts"/"dur"
// keys read the wall clock.  Responses echo the request's protocol
// version (a v1 client gets v1 bytes back) and its trace id.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "serve/runtime.hpp"
#include "simd/simd.hpp"

namespace leaf::net {

/// Admission-control and framing bounds.
struct NetConfig {
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Max queued predict requests per shard; beyond it new requests get an
  /// immediate kRetry.
  int queue_depth = 128;
  /// Max rows coalesced into one predict_into pass; a single request with
  /// more rows than this is rejected as kOversized.
  int max_batch_rows = 64;
  /// Deadline applied to requests that carry none (0 = no deadline).
  std::uint32_t default_deadline_ms = 0;
  /// Ceiling on a query_series request's max_series; a request asking for
  /// more is rejected as kOversized.
  std::uint32_t max_query_series = 64;
};

/// Millisecond clock the admission layer reads.  Injectable so loopback
/// tests control time explicitly (determinism) while the TCP front end
/// uses the monotonic wall clock.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::uint64_t now_ms() const = 0;
};

/// Monotonic wall clock (obs::monotonic_seconds).
class WallClock : public Clock {
 public:
  std::uint64_t now_ms() const override;
};

/// Manually advanced clock for deterministic deadline tests.
class ManualClock : public Clock {
 public:
  std::uint64_t now_ms() const override { return now_; }
  void advance_ms(std::uint64_t ms) { now_ += ms; }

 private:
  std::uint64_t now_ = 0;
};

using ConnId = std::uint64_t;

/// Where the core writes responses.  `send` hands encoded frame bytes
/// back to the transport; `drop` orders the transport to close the
/// connection (protocol violation).  The core never calls either from a
/// worker thread.
class ResponseSink {
 public:
  virtual ~ResponseSink() = default;
  virtual void send(ConnId conn, std::vector<std::uint8_t> bytes) = 0;
  virtual void drop(ConnId conn, const std::string& reason) = 0;
};

class ServerCore {
 public:
  /// The fleet must outlive the core.  `clock` may be null (wall clock).
  ServerCore(serve::FleetRuntime& fleet, NetConfig cfg = {},
             const Clock* clock = nullptr);

  const NetConfig& config() const { return cfg_; }

  /// Registers / forgets a connection.  close() discards its queued
  /// requests (the peer is gone; answering would write to a dead socket).
  void open(ConnId conn);
  void close(ConnId conn);
  bool is_open(ConnId conn) const { return conns_.count(conn) != 0; }

  /// Feeds connection bytes.  May emit immediate responses (errors,
  /// scrape, status) through `sink`, including sink.drop for fatal
  /// framing damage.  Unknown connections are ignored (already dropped).
  void ingest(ConnId conn, std::span<const std::uint8_t> bytes,
              ResponseSink& sink);

  /// Drains every shard queue (shed + batch + predict + respond).
  /// Returns the number of requests answered this pump.
  std::size_t pump(ResponseSink& sink);

  /// Total requests answered (any response type) since construction —
  /// the `--serve-requests N` termination condition.
  std::uint64_t requests_served() const { return requests_served_; }
  /// Queued predict requests not yet pumped.
  std::size_t queued() const;

  /// Builds the kStatusOk body for the current fleet state.
  StatusResponse status() const;

  /// Attaches (or detaches, with nullptr) the distributed-tracing sink.
  /// The tracer must outlive the core; it is only written from the
  /// serial ingest/pump phases.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

 private:
  struct Pending {
    ConnId conn = 0;
    std::uint64_t request_id = 0;
    Matrix rows;
    std::uint64_t arrival_ms = 0;
    std::uint32_t deadline_ms = 0;  ///< 0 = none
    std::uint64_t seq = 0;          ///< global arrival order
    MsgType type = MsgType::kPredict;
    std::uint32_t version = kProtocolVersion;  ///< response echoes this
    obs::TraceId trace{};           ///< wire trace id or derived
    std::uint64_t parent_span = 0;  ///< caller's span id off the wire
    bool traced = false;            ///< tracer attached AND id sampled
    double arrival_s = 0.0;         ///< for the latency percentile series
    obs::SpanCollector spans;       ///< request/decode/admission/respond
  };
  struct Conn {
    FrameDecoder decoder;
    explicit Conn(std::size_t max_frame_bytes) : decoder(max_frame_bytes) {}
  };

  void handle_frame(ConnId conn, const Frame& frame, ResponseSink& sink);
  void admit_predict(ConnId conn, const Frame& frame, ResponseSink& sink);
  void respond(ConnId conn, const Frame& frame, ResponseSink& sink);
  void respond_error(ConnId conn, std::uint64_t request_id, ErrorCode code,
                     const std::string& message, ResponseSink& sink,
                     std::uint32_t version = kProtocolVersion,
                     const obs::TraceId* trace = nullptr);
  /// Fills a Pending's trace/version context from the request frame and —
  /// when the request is sampled — opens its root "request" span.
  void init_pending(Pending& p, ConnId conn, const Frame& frame);
  /// Answers a Pending with a typed error, closing and flushing its span
  /// tree and recording the per-type latency percentile.
  void finish_error(Pending& p, ErrorCode code, const std::string& message,
                    ResponseSink& sink);
  /// Assigns deterministic span ids to a sampled Pending's collected
  /// spans and writes them to the tracer.  Serial phases only.
  void flush_trace(Pending& p);

  serve::FleetRuntime* fleet_;
  NetConfig cfg_;
  const Clock* clock_;
  WallClock wall_clock_;
  std::map<ConnId, Conn> conns_;
  std::vector<std::deque<Pending>> shard_queues_;  ///< one per shard
  std::vector<simd::AlignedBuffer> shard_scratch_; ///< predict output arenas
  std::uint64_t next_seq_ = 0;
  std::uint64_t requests_served_ = 0;
  obs::Tracer* tracer_ = nullptr;
};

/// Scrape-output selection shared by leafctl (both modes) and the RPC
/// scrape path: JSON always comes from the process registry; text comes
/// from the fleet's deterministic `leaf_fleet_*` scrape when a fleet is
/// at hand, else from the registry alone.
std::string scrape_output(const serve::FleetRuntime* fleet, bool json);

}  // namespace leaf::net
