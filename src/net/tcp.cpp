#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/log.hpp"

namespace leaf::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string errno_string() { return std::strerror(errno); }

}  // namespace

std::pair<std::string, std::uint16_t> parse_host_port(const std::string& s) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size())
    throw std::invalid_argument("net: expected HOST:PORT, got '" + s + "'");
  const std::string host = s.substr(0, colon);
  const std::string port_str = s.substr(colon + 1);
  long port = 0;
  for (char c : port_str) {
    if (c < '0' || c > '9')
      throw std::invalid_argument("net: bad port in '" + s + "'");
    port = port * 10 + (c - '0');
    if (port > 65535)
      throw std::invalid_argument("net: port out of range in '" + s + "'");
  }
  if (port < 1)
    throw std::invalid_argument("net: port out of range in '" + s + "'");
  return {host, static_cast<std::uint16_t>(port)};
}

// --- server ----------------------------------------------------------------

TcpServer::TcpServer(serve::FleetRuntime& fleet, const std::string& host,
                     std::uint16_t port, NetConfig cfg)
    : core_(fleet, cfg, /*clock=*/nullptr) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("net: socket() failed: " + errno_string());
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("net: bad listen address '" + host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string err = errno_string();
    ::close(listen_fd_);
    throw std::runtime_error("net: bind " + host + ":" +
                             std::to_string(port) + " failed: " + err);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string err = errno_string();
    ::close(listen_fd_);
    throw std::runtime_error("net: listen failed: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);
}

TcpServer::~TcpServer() {
  for (auto& [id, conn] : conns_)
    if (conn.fd >= 0) ::close(conn.fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpServer::send(ConnId conn, std::vector<std::uint8_t> bytes) {
  auto it = conns_.find(conn);
  if (it == conns_.end() || it->second.closing) return;
  it->second.out.insert(it->second.out.end(), bytes.begin(), bytes.end());
}

void TcpServer::drop(ConnId conn, const std::string& reason) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  (void)reason;  // already logged by the core
  // Flush what we can (the typed error response), then close.
  it->second.closing = true;
}

void TcpServer::accept_ready() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: nothing to accept
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const ConnId id = next_id_++;
    conns_[id].fd = fd;
    core_.open(id);
  }
}

void TcpServer::read_ready(ConnId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  std::uint8_t buf[64 * 1024];
  while (true) {
    const ssize_t n = ::read(it->second.fd, buf, sizeof(buf));
    if (n > 0) {
      core_.ingest(id, std::span<const std::uint8_t>(buf,
                                                     static_cast<std::size_t>(n)),
                   *this);
      it = conns_.find(id);
      if (it == conns_.end() || it->second.closing) return;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // EOF or hard error: the peer is gone (possibly mid-frame — the
    // decoder's pending bytes just vanish with the connection).
    core_.close(id);
    destroy(id);
    return;
  }
}

void TcpServer::write_ready(ConnId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  TcpConn& conn = it->second;
  while (!conn.out.empty()) {
    const ssize_t n = ::write(conn.fd, conn.out.data(), conn.out.size());
    if (n > 0) {
      conn.out.erase(conn.out.begin(), conn.out.begin() + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    core_.close(id);
    destroy(id);
    return;
  }
  if (conn.closing) destroy(id);
}

void TcpServer::destroy(ConnId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  if (it->second.fd >= 0) ::close(it->second.fd);
  conns_.erase(it);
}

std::size_t TcpServer::poll_once(int timeout_ms) {
  std::vector<pollfd> fds;
  std::vector<ConnId> ids;  // ids[i] corresponds to fds[i + 1]
  fds.push_back({listen_fd_, POLLIN, 0});
  for (const auto& [id, conn] : conns_) {
    short events = 0;
    if (!conn.closing) events |= POLLIN;
    if (!conn.out.empty() || conn.closing) events |= POLLOUT;
    fds.push_back({conn.fd, events, 0});
    ids.push_back(id);
  }
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0) {
    if (errno != EINTR)
      LEAF_LOG_WARN("net: poll failed: %s", errno_string().c_str());
    return 0;
  }
  if (fds[0].revents & POLLIN) accept_ready();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const short re = fds[i + 1].revents;
    const ConnId id = ids[i];
    if (re & (POLLERR | POLLHUP | POLLNVAL)) {
      // Give reads a chance to drain a final burst first; a dead socket
      // fails the read and tears down below.
      if (!(re & POLLIN)) {
        core_.close(id);
        destroy(id);
        continue;
      }
    }
    if (re & POLLIN) read_ready(id);
    if (re & POLLOUT) write_ready(id);
  }
  const std::size_t answered = core_.pump(*this);
  // pump() buffered fresh responses; push them out without waiting for
  // the next poll cycle.
  for (auto it = conns_.begin(); it != conns_.end();) {
    const ConnId id = it->first;
    ++it;  // write_ready may erase
    write_ready(id);
  }
  return answered;
}

// --- client ----------------------------------------------------------------

TcpClient::TcpClient(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw std::runtime_error("net: socket() failed: " + errno_string());
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("net: bad address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string err = errno_string();
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("net: connect " + host + ":" +
                             std::to_string(port) + " failed: " + err);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpClient::~TcpClient() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpClient::send(const Frame& frame) {
  if (fd_ < 0) throw std::runtime_error("net: client connection is closed");
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("net: send failed: " + errno_string());
    }
    off += static_cast<std::size_t>(n);
  }
}

std::optional<Frame> TcpClient::receive() {
  while (fd_ >= 0) {
    if (std::optional<Frame> frame = decoder_.next()) return frame;
    std::uint8_t buf[64 * 1024];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      decoder_.feed(
          std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    ::close(fd_);
    fd_ = -1;
    if (n == 0 && decoder_.pending_bytes() == 0) return std::nullopt;
    throw std::runtime_error(
        n == 0 ? "net: server closed the connection mid-frame"
               : "net: receive failed: " + errno_string());
  }
  return std::nullopt;
}

// --- shared client helper --------------------------------------------------

Frame call(ClientTransport& transport, const Frame& frame) {
  transport.send(frame);
  std::optional<Frame> resp = transport.receive();
  if (!resp.has_value())
    throw std::runtime_error(
        "net: no response (connection closed or nothing queued — loopback "
        "callers must pump the harness first)");
  if (resp->request_id != frame.request_id)
    throw std::runtime_error("net: response correlation id mismatch");
  return *resp;
}

}  // namespace leaf::net
