// leaf::simd — dispatched entry points for the fixed-lane kernels.
//
// Call sites use these span-based wrappers, never scalar::/vector::
// directly.  Dispatch picks the vector path when the build compiled it in
// (-DLEAF_SIMD=ON, the default) AND the runtime kill-switch allows it
// (LEAF_SIMD=0/off in the environment forces scalar).  Because both paths
// execute the identical operation DAG (see kernels.hpp), dispatch is
// invisible in results — flipping LEAF_SIMD changes only which
// instructions run, which is what makes the ON/OFF fingerprint check in
// CI meaningful.
//
// Each wrapper bumps a `leaf_simd_calls_total{kernel="..."}` counter in
// the global obs registry; the call counts are pure functions of the
// logical execution (no kernel is called a thread-count-dependent number
// of times), so they participate in the LEAF_THREADS determinism checks.
#pragma once

#include <cstddef>
#include <new>
#include <span>
#include <utility>

#include "simd/kernels.hpp"

namespace leaf::simd {

/// True when the vector kernels were compiled in (-DLEAF_SIMD=ON).
bool compiled_in();

/// True when dispatch currently routes to vector::.  Starts as
/// compiled_in() unless the LEAF_SIMD environment variable says
/// "0"/"off"/"false".
bool vector_active();

/// Runtime override (tests, benches).  Enabling has no effect in a
/// -DLEAF_SIMD=OFF build, where vector:: is scalar:: anyway.
void set_vector_active(bool on);

/// ISA dispatch resolves to right now: "avx2", "sse2", "neon", "lanes",
/// or "scalar".
const char* active_isa();

double sum(std::span<const double> a);
double dot(std::span<const double> a, std::span<const double> b);
void axpy(double alpha, std::span<const double> x, std::span<double> y);
double l2_distance2(std::span<const double> a, std::span<const double> b);
ErrorAcc squared_error(std::span<const double> pred,
                       std::span<const double> truth);
/// out[r] = squared L2 distance from row r of the column-major matrix
/// `cols` (rows x z.size()) to the query z.  out.size() must be >= rows.
void l2_distances_cols(std::span<const double> cols, std::size_t rows,
                       std::span<const double> z, std::span<double> out);
HistBounds hist_accumulate(const std::uint8_t* codes, const std::size_t* rows,
                           const double* w, const double* wy, std::size_t n,
                           int num_bins, double* sum_w, double* sum_wy);

/// Grow-only 64-byte-aligned scratch arena for per-step predict buffers
/// and kernel workspaces.  acquire(n) hands back an n-double span without
/// touching the allocator unless n exceeds the high-water capacity —
/// repeated serving steps reuse one allocation instead of churning
/// std::vector.  Contents are unspecified after acquire.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  ~AlignedBuffer() { release(); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        capacity_(std::exchange(other.capacity_, 0)),
        grows_(std::exchange(other.grows_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      capacity_ = std::exchange(other.capacity_, 0);
      grows_ = std::exchange(other.grows_, 0);
    }
    return *this;
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  /// Ensures capacity for n doubles; returns true when that required a
  /// (re)allocation.  Geometric growth keeps the grow count logarithmic.
  bool reserve(std::size_t n) {
    if (n <= capacity_) return false;
    std::size_t cap = capacity_ ? capacity_ : 64;
    while (cap < n) cap *= 2;
    release();
    data_ = static_cast<double*>(
        ::operator new(cap * sizeof(double), std::align_val_t{64}));
    capacity_ = cap;
    ++grows_;
    return true;
  }

  /// reserve(n) and hand back the first n doubles (uninitialized).
  std::span<double> acquire(std::size_t n) {
    reserve(n);
    return {data_, n};
  }

  double* data() { return data_; }
  std::size_t capacity() const { return capacity_; }
  /// Allocations performed over this buffer's lifetime.
  std::uint64_t grows() const { return grows_; }

 private:
  void release() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{64});
      data_ = nullptr;
    }
  }

  double* data_ = nullptr;
  std::size_t capacity_ = 0;
  std::uint64_t grows_ = 0;
};

}  // namespace leaf::simd
