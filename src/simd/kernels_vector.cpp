// Vectorized kernels.  Each ISA supplies a tiny Ops struct (load / store /
// add / sub / mul / compare / mask); the kernel bodies are shared templates
// that hold the 8 virtual lanes in kLanes / Ops::width registers and end
// with the same reduce8 tree as the scalar reference.  Because the bodies
// are shared, an ISA cannot accidentally change the operation DAG — it can
// only change which instructions execute it.
//
// Compiled with -ffp-contract=off: GCC never contracts intrinsics, but
// clang may fuse add(mul(..)) builtins into FMAs, which would change the
// DAG relative to the scalar reference.
//
// In a -DLEAF_SIMD=OFF build (LEAF_SIMD_ENABLED == 0) every vector::
// symbol forwards to its scalar:: twin, so call sites and the dispatch
// layer are build-independent.
#include "simd/kernels.hpp"

#include <cmath>
#include <limits>

#if LEAF_SIMD_ENABLED
#if defined(__AVX2__) || defined(__SSE2__) || defined(__x86_64__) || \
    defined(_M_X64)
#include <immintrin.h>
#define LEAF_SIMD_X86 1
#elif defined(__ARM_NEON) || defined(__aarch64__)
#include <arm_neon.h>
#define LEAF_SIMD_NEON 1
#endif
#endif  // LEAF_SIMD_ENABLED

namespace leaf::simd::vector {

#if LEAF_SIMD_ENABLED && (defined(LEAF_SIMD_X86) || defined(LEAF_SIMD_NEON))

namespace {

#if defined(LEAF_SIMD_X86) && defined(__AVX2__)

constexpr const char* kIsa = "avx2";

// Lanes 0..3 and 4..7 live in two 4-wide registers.
struct Ops {
  using V = __m256d;
  static constexpr std::size_t width = 4;
  static V zero() { return _mm256_setzero_pd(); }
  static V load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, V v) { _mm256_storeu_pd(p, v); }
  static V set1(double x) { return _mm256_set1_pd(x); }
  static V add(V a, V b) { return _mm256_add_pd(a, b); }
  static V sub(V a, V b) { return _mm256_sub_pd(a, b); }
  static V mul(V a, V b) { return _mm256_mul_pd(a, b); }
  static V abs(V v) { return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v); }
  static V cmplt(V a, V b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static V and_(V a, V b) { return _mm256_and_pd(a, b); }
};

#elif defined(LEAF_SIMD_X86)

constexpr const char* kIsa = "sse2";

// Lane pairs {0,1} {2,3} {4,5} {6,7} live in four 2-wide registers.
struct Ops {
  using V = __m128d;
  static constexpr std::size_t width = 2;
  static V zero() { return _mm_setzero_pd(); }
  static V load(const double* p) { return _mm_loadu_pd(p); }
  static void store(double* p, V v) { _mm_storeu_pd(p, v); }
  static V set1(double x) { return _mm_set1_pd(x); }
  static V add(V a, V b) { return _mm_add_pd(a, b); }
  static V sub(V a, V b) { return _mm_sub_pd(a, b); }
  static V mul(V a, V b) { return _mm_mul_pd(a, b); }
  static V abs(V v) { return _mm_andnot_pd(_mm_set1_pd(-0.0), v); }
  static V cmplt(V a, V b) { return _mm_cmplt_pd(a, b); }
  static V and_(V a, V b) { return _mm_and_pd(a, b); }
};

#else  // LEAF_SIMD_NEON

constexpr const char* kIsa = "neon";

struct Ops {
  using V = float64x2_t;
  static constexpr std::size_t width = 2;
  static V zero() { return vdupq_n_f64(0.0); }
  static V load(const double* p) { return vld1q_f64(p); }
  static void store(double* p, V v) { vst1q_f64(p, v); }
  static V set1(double x) { return vdupq_n_f64(x); }
  static V add(V a, V b) { return vaddq_f64(a, b); }
  static V sub(V a, V b) { return vsubq_f64(a, b); }
  static V mul(V a, V b) { return vmulq_f64(a, b); }
  static V abs(V v) { return vabsq_f64(v); }
  static V cmplt(V a, V b) {
    return vreinterpretq_f64_u64(vcltq_f64(a, b));
  }
  static V and_(V a, V b) {
    return vreinterpretq_f64_u64(
        vandq_u64(vreinterpretq_u64_f64(a), vreinterpretq_u64_f64(b)));
  }
};

#endif

constexpr std::size_t kW = Ops::width;
constexpr std::size_t kRegs = kLanes / kW;
static_assert(kLanes % kW == 0);

using V = Ops::V;

}  // namespace

const char* isa() { return kIsa; }

double sum(const double* a, std::size_t n) {
  V acc[kRegs];
  for (std::size_t r = 0; r < kRegs; ++r) acc[r] = Ops::zero();
  const std::size_t nb = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < nb; i += kLanes) {
    for (std::size_t r = 0; r < kRegs; ++r) {
      acc[r] = Ops::add(acc[r], Ops::load(a + i + r * kW));
    }
  }
  alignas(64) double lanes[kLanes];
  for (std::size_t r = 0; r < kRegs; ++r) Ops::store(lanes + r * kW, acc[r]);
  for (std::size_t i = nb; i < n; ++i) lanes[i - nb] += a[i];
  return reduce8(lanes);
}

double dot(const double* a, const double* b, std::size_t n) {
  V acc[kRegs];
  for (std::size_t r = 0; r < kRegs; ++r) acc[r] = Ops::zero();
  const std::size_t nb = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < nb; i += kLanes) {
    for (std::size_t r = 0; r < kRegs; ++r) {
      acc[r] = Ops::add(
          acc[r], Ops::mul(Ops::load(a + i + r * kW), Ops::load(b + i + r * kW)));
    }
  }
  alignas(64) double lanes[kLanes];
  for (std::size_t r = 0; r < kRegs; ++r) Ops::store(lanes + r * kW, acc[r]);
  for (std::size_t i = nb; i < n; ++i) lanes[i - nb] += a[i] * b[i];
  return reduce8(lanes);
}

void axpy(double alpha, const double* x, double* y, std::size_t n) {
  // Elementwise: each y[i] sees exactly y[i] + alpha * x[i], so any
  // register width preserves bit-identity with the scalar loop.
  const V va = Ops::set1(alpha);
  const std::size_t nw = n & ~(kW - 1);
  for (std::size_t i = 0; i < nw; i += kW) {
    Ops::store(y + i, Ops::add(Ops::load(y + i), Ops::mul(va, Ops::load(x + i))));
  }
  for (std::size_t i = nw; i < n; ++i) y[i] += alpha * x[i];
}

double l2_distance2(const double* a, const double* b, std::size_t n) {
  V acc[kRegs];
  for (std::size_t r = 0; r < kRegs; ++r) acc[r] = Ops::zero();
  const std::size_t nb = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < nb; i += kLanes) {
    for (std::size_t r = 0; r < kRegs; ++r) {
      const V d = Ops::sub(Ops::load(a + i + r * kW), Ops::load(b + i + r * kW));
      acc[r] = Ops::add(acc[r], Ops::mul(d, d));
    }
  }
  alignas(64) double lanes[kLanes];
  for (std::size_t r = 0; r < kRegs; ++r) Ops::store(lanes + r * kW, acc[r]);
  for (std::size_t i = nb; i < n; ++i) {
    const double d = a[i] - b[i];
    lanes[i - nb] += d * d;
  }
  return reduce8(lanes);
}

ErrorAcc squared_error(const double* pred, const double* truth,
                       std::size_t n) {
  // finite(x) <=> |x| < inf under an ordered-quiet compare (NaN -> false).
  // Masking d to +0.0 and adding matches the scalar reference, which also
  // adds a literal 0.0 for non-finite pairs.
  V sq[kRegs], cnt[kRegs];
  for (std::size_t r = 0; r < kRegs; ++r) sq[r] = cnt[r] = Ops::zero();
  const V inf = Ops::set1(std::numeric_limits<double>::infinity());
  const V one = Ops::set1(1.0);
  const std::size_t nb = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < nb; i += kLanes) {
    for (std::size_t r = 0; r < kRegs; ++r) {
      const V p = Ops::load(pred + i + r * kW);
      const V t = Ops::load(truth + i + r * kW);
      const V m = Ops::and_(Ops::cmplt(Ops::abs(p), inf),
                            Ops::cmplt(Ops::abs(t), inf));
      const V d = Ops::and_(Ops::sub(p, t), m);
      sq[r] = Ops::add(sq[r], Ops::mul(d, d));
      cnt[r] = Ops::add(cnt[r], Ops::and_(one, m));
    }
  }
  alignas(64) double sq_lanes[kLanes], cnt_lanes[kLanes];
  for (std::size_t r = 0; r < kRegs; ++r) {
    Ops::store(sq_lanes + r * kW, sq[r]);
    Ops::store(cnt_lanes + r * kW, cnt[r]);
  }
  for (std::size_t i = nb; i < n; ++i) {
    const bool fin = std::isfinite(pred[i]) && std::isfinite(truth[i]);
    const double d = fin ? pred[i] - truth[i] : 0.0;
    sq_lanes[i - nb] += d * d;
    cnt_lanes[i - nb] += fin ? 1.0 : 0.0;
  }
  ErrorAcc out;
  out.sum_sq = reduce8(sq_lanes);
  out.finite = static_cast<std::uint64_t>(reduce8(cnt_lanes));
  return out;
}

void l2_distances_cols(const double* cols, std::size_t rows, const double* z,
                       std::size_t ncols, double* out) {
  // Vectorized across *rows* (8 query distances in flight), sequential
  // over columns — the per-distance DAG is the classic row-major loop.
  const std::size_t rb = rows & ~(kLanes - 1);
  for (std::size_t r0 = 0; r0 < rb; r0 += kLanes) {
    V acc[kRegs];
    for (std::size_t r = 0; r < kRegs; ++r) acc[r] = Ops::zero();
    for (std::size_t c = 0; c < ncols; ++c) {
      const double* colp = cols + c * rows + r0;
      const V vz = Ops::set1(z[c]);
      for (std::size_t r = 0; r < kRegs; ++r) {
        const V d = Ops::sub(Ops::load(colp + r * kW), vz);
        acc[r] = Ops::add(acc[r], Ops::mul(d, d));
      }
    }
    for (std::size_t r = 0; r < kRegs; ++r) Ops::store(out + r0 + r * kW, acc[r]);
  }
  for (std::size_t r = rb; r < rows; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < ncols; ++c) {
      const double d = cols[c * rows + r] - z[c];
      acc += d * d;
    }
    out[r] = acc;
  }
}

HistBounds hist_accumulate(const std::uint8_t* codes, const std::size_t* rows,
                           const double* w, const double* wy, std::size_t n,
                           int num_bins, double* sum_w, double* sum_wy) {
  // The histogram is a gather/scatter kernel: the scatter into
  // lane-private bins has no contiguous-load shape worth intrinsics, so
  // the vector path runs the scalar implementation (which already uses
  // the 8-lane layout for cache-friendly merging).
  return scalar::hist_accumulate(codes, rows, w, wy, n, num_bins, sum_w,
                                 sum_wy);
}

#else  // !LEAF_SIMD_ENABLED or no recognized ISA: forward to the reference.

const char* isa() {
#if LEAF_SIMD_ENABLED
  return "lanes";
#else
  return "scalar";
#endif
}

double sum(const double* a, std::size_t n) { return scalar::sum(a, n); }
double dot(const double* a, const double* b, std::size_t n) {
  return scalar::dot(a, b, n);
}
void axpy(double alpha, const double* x, double* y, std::size_t n) {
  scalar::axpy(alpha, x, y, n);
}
double l2_distance2(const double* a, const double* b, std::size_t n) {
  return scalar::l2_distance2(a, b, n);
}
ErrorAcc squared_error(const double* pred, const double* truth,
                       std::size_t n) {
  return scalar::squared_error(pred, truth, n);
}
void l2_distances_cols(const double* cols, std::size_t rows, const double* z,
                       std::size_t ncols, double* out) {
  scalar::l2_distances_cols(cols, rows, z, ncols, out);
}
HistBounds hist_accumulate(const std::uint8_t* codes, const std::size_t* rows,
                           const double* w, const double* wy, std::size_t n,
                           int num_bins, double* sum_w, double* sum_wy) {
  return scalar::hist_accumulate(codes, rows, w, wy, n, num_bins, sum_w,
                                 sum_wy);
}

#endif

}  // namespace leaf::simd::vector
