#include "simd/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"

namespace leaf::simd {

namespace {

bool env_allows_vector() {
  const char* v = std::getenv("LEAF_SIMD");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0);
}

std::atomic<bool>& active_flag() {
  static std::atomic<bool> active{LEAF_SIMD_ENABLED != 0 &&
                                  env_allows_vector()};
  return active;
}

obs::Counter& kernel_counter(const char* kernel) {
  return obs::MetricsRegistry::global().counter("leaf_simd_calls_total",
                                                obs::label("kernel", kernel));
}

}  // namespace

bool compiled_in() { return LEAF_SIMD_ENABLED != 0; }

bool vector_active() {
  return active_flag().load(std::memory_order_relaxed);
}

void set_vector_active(bool on) {
  active_flag().store(on && compiled_in(), std::memory_order_relaxed);
}

const char* active_isa() {
  return vector_active() ? vector::isa() : "scalar";
}

double sum(std::span<const double> a) {
  static obs::Counter& calls = kernel_counter("sum");
  calls.inc();
  return vector_active() ? vector::sum(a.data(), a.size())
                         : scalar::sum(a.data(), a.size());
}

double dot(std::span<const double> a, std::span<const double> b) {
  static obs::Counter& calls = kernel_counter("dot");
  calls.inc();
  return vector_active() ? vector::dot(a.data(), b.data(), a.size())
                         : scalar::dot(a.data(), b.data(), a.size());
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  static obs::Counter& calls = kernel_counter("axpy");
  calls.inc();
  if (vector_active()) {
    vector::axpy(alpha, x.data(), y.data(), x.size());
  } else {
    scalar::axpy(alpha, x.data(), y.data(), x.size());
  }
}

double l2_distance2(std::span<const double> a, std::span<const double> b) {
  static obs::Counter& calls = kernel_counter("l2_distance2");
  calls.inc();
  return vector_active() ? vector::l2_distance2(a.data(), b.data(), a.size())
                         : scalar::l2_distance2(a.data(), b.data(), a.size());
}

ErrorAcc squared_error(std::span<const double> pred,
                       std::span<const double> truth) {
  static obs::Counter& calls = kernel_counter("squared_error");
  calls.inc();
  return vector_active()
             ? vector::squared_error(pred.data(), truth.data(), pred.size())
             : scalar::squared_error(pred.data(), truth.data(), pred.size());
}

void l2_distances_cols(std::span<const double> cols, std::size_t rows,
                       std::span<const double> z, std::span<double> out) {
  static obs::Counter& calls = kernel_counter("l2_distances_cols");
  calls.inc();
  if (vector_active()) {
    vector::l2_distances_cols(cols.data(), rows, z.data(), z.size(),
                              out.data());
  } else {
    scalar::l2_distances_cols(cols.data(), rows, z.data(), z.size(),
                              out.data());
  }
}

HistBounds hist_accumulate(const std::uint8_t* codes, const std::size_t* rows,
                           const double* w, const double* wy, std::size_t n,
                           int num_bins, double* sum_w, double* sum_wy) {
  static obs::Counter& calls = kernel_counter("hist_accumulate");
  calls.inc();
  return vector_active()
             ? vector::hist_accumulate(codes, rows, w, wy, n, num_bins, sum_w,
                                       sum_wy)
             : scalar::hist_accumulate(codes, rows, w, wy, n, num_bins, sum_w,
                                       sum_wy);
}

}  // namespace leaf::simd
