// leaf::simd kernel contracts — the fixed 8-lane virtual-vector layer.
//
// Every kernel here exists twice: a vectorized implementation
// (kernels_vector.cpp — SSE2 / AVX2 / NEON intrinsics, compiled only with
// -DLEAF_SIMD=ON) and a scalar reference (kernels_scalar.cpp, compiled
// with auto-vectorization disabled so benchmarks compare honest scalar
// code).  Both implement the *identical* floating-point operation DAG:
//
//   * A reduction kernel accumulates into 8 virtual lanes — element i
//     belongs to lane i % 8 — and collapses them with one fixed tree:
//         ((L0+L1)+(L2+L3)) + ((L4+L5)+(L6+L7))           (reduce8)
//     SSE2/NEON hold the lanes as four 2-wide registers {L0,L1}..{L6,L7},
//     AVX2 as two 4-wide registers {L0..L3},{L4..L7}; in every case the
//     per-lane accumulation order (ascending i) and the reduction tree
//     are the same, so the result is bit-identical across ISAs, across
//     -DLEAF_SIMD=ON/OFF builds, and at any LEAF_THREADS.
//   * An elementwise kernel (axpy, per-row distances) has no cross-lane
//     reduction at all; per-element operation order is the natural one.
//
// Because IEEE-754 ops are deterministic given an operation DAG, "same
// DAG" is the whole determinism story — which is why both TUs are built
// with -ffp-contract=off (an FMA would change the DAG on exactly one
// side) and why kernels live out-of-line instead of in headers.
//
// Adding a kernel: declare it in both namespaces below, write the scalar
// reference first (it *defines* the contract), mirror its lane/tail/tree
// structure with intrinsics, add it to the bench_micro --kernels suite
// and the bit-identity property test in tests/test_simd.cpp.
#pragma once

#include <cstddef>
#include <cstdint>

namespace leaf::simd {

/// Virtual vector width.  Fixed at 8 regardless of the physical ISA so
/// results never depend on which instruction set executed the kernel.
inline constexpr std::size_t kLanes = 8;

/// Fixed lane-reduction tree shared by every reduction kernel and both
/// implementations.  Do not "simplify": the exact association order is
/// the cross-ISA determinism contract.
inline double reduce8(const double lanes[kLanes]) {
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

/// Result of the finite-pair squared-error reduction (metrics::nrmse):
/// sum of (pred-truth)^2 over pairs where both sides are finite, and the
/// number of such pairs.
struct ErrorAcc {
  double sum_sq = 0.0;
  std::uint64_t finite = 0;
};

/// Lowest / highest bin index touched by a histogram accumulation
/// (lo > hi means no rows).  Min/max are order-independent, so these are
/// trivially deterministic.
struct HistBounds {
  int lo_bin = 0;
  int hi_bin = -1;
};

/// Below this many rows a histogram accumulates sequentially into a
/// single lane instead of 8 lane-private histograms: zeroing 8 copies of
/// the accumulator would dwarf the row work.  The cutoff is part of the
/// kernel contract — both implementations switch at the same size, so it
/// can never cause divergence.
inline constexpr std::size_t kHistLaneCutoff = 64;

namespace scalar {

double sum(const double* a, std::size_t n);
double dot(const double* a, const double* b, std::size_t n);
/// y[i] += alpha * x[i] (elementwise; bit-identical to the classic loop).
void axpy(double alpha, const double* x, double* y, std::size_t n);
double l2_distance2(const double* a, const double* b, std::size_t n);
ErrorAcc squared_error(const double* pred, const double* truth,
                       std::size_t n);
/// Squared L2 distances of a query `z` (ncols entries) to `rows` points
/// stored column-major (`cols[c * rows + r]`): out[r] = sum_c (x_rc-z_c)^2.
/// Per-distance accumulation is sequential over c, so each out[r] is
/// bit-identical to the classic row-major loop.
void l2_distances_cols(const double* cols, std::size_t rows, const double* z,
                       std::size_t ncols, double* out);
/// Weighted histogram build for one feature of a tree node: for each of
/// the n node rows, bin b = codes[rows[i]] accumulates w[i] into sum_w[b]
/// and wy[i] into sum_wy[b] (SoA accumulators, zeroed here).  Large nodes
/// use 8 lane-private histograms merged per-bin with reduce8; nodes below
/// kHistLaneCutoff accumulate sequentially.  Returns the touched bin
/// range.
HistBounds hist_accumulate(const std::uint8_t* codes, const std::size_t* rows,
                           const double* w, const double* wy, std::size_t n,
                           int num_bins, double* sum_w, double* sum_wy);

}  // namespace scalar

namespace vector {

/// Physical ISA the vector path was compiled for: "avx2", "sse2", "neon",
/// or "lanes" (no intrinsics available; generic 8-lane code).  In a
/// -DLEAF_SIMD=OFF build these symbols forward to scalar:: and the isa is
/// "scalar".
const char* isa();

double sum(const double* a, std::size_t n);
double dot(const double* a, const double* b, std::size_t n);
void axpy(double alpha, const double* x, double* y, std::size_t n);
double l2_distance2(const double* a, const double* b, std::size_t n);
ErrorAcc squared_error(const double* pred, const double* truth,
                       std::size_t n);
void l2_distances_cols(const double* cols, std::size_t rows, const double* z,
                       std::size_t ncols, double* out);
HistBounds hist_accumulate(const std::uint8_t* codes, const std::size_t* rows,
                           const double* w, const double* wy, std::size_t n,
                           int num_bins, double* sum_w, double* sum_wy);

}  // namespace vector

}  // namespace leaf::simd
