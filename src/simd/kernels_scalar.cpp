// Scalar reference kernels.  These *define* the fixed-lane contract: the
// vector implementations in kernels_vector.cpp must reproduce exactly the
// operation DAG written here.  This TU is compiled with auto-vectorization
// disabled (-fno-tree-vectorize -fno-tree-slp-vectorize) so that the
// scalar side of bench_micro --kernels is honest scalar code, and with
// -ffp-contract=off so the compiler cannot fuse a*b+c into an FMA that
// the intrinsics side does not perform.
#include "simd/kernels.hpp"

#include <cmath>
#include <vector>

namespace leaf::simd::scalar {

namespace {

// Zero-initialized lane accumulator block.
struct Lanes {
  double v[kLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
};

}  // namespace

double sum(const double* a, std::size_t n) {
  Lanes acc;
  const std::size_t nb = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < nb; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) acc.v[j] += a[i + j];
  }
  for (std::size_t i = nb; i < n; ++i) acc.v[i - nb] += a[i];
  return reduce8(acc.v);
}

double dot(const double* a, const double* b, std::size_t n) {
  Lanes acc;
  const std::size_t nb = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < nb; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) acc.v[j] += a[i + j] * b[i + j];
  }
  for (std::size_t i = nb; i < n; ++i) acc.v[i - nb] += a[i] * b[i];
  return reduce8(acc.v);
}

void axpy(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double l2_distance2(const double* a, const double* b, std::size_t n) {
  Lanes acc;
  const std::size_t nb = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < nb; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) {
      const double d = a[i + j] - b[i + j];
      acc.v[j] += d * d;
    }
  }
  for (std::size_t i = nb; i < n; ++i) {
    const double d = a[i] - b[i];
    acc.v[i - nb] += d * d;
  }
  return reduce8(acc.v);
}

ErrorAcc squared_error(const double* pred, const double* truth,
                       std::size_t n) {
  // Non-finite pairs contribute a masked +0.0 to their lane instead of
  // branching, mirroring how the SIMD path works (blend, not branch).
  // Adding +0.0 is a bitwise no-op here because a lane accumulator only
  // ever holds values >= +0.0.
  Lanes sq;
  Lanes cnt;
  const std::size_t nb = n & ~(kLanes - 1);
  auto lane_add = [&](std::size_t lane, double p, double t) {
    const bool fin = std::isfinite(p) && std::isfinite(t);
    const double d = fin ? p - t : 0.0;
    sq.v[lane] += d * d;
    cnt.v[lane] += fin ? 1.0 : 0.0;
  };
  for (std::size_t i = 0; i < nb; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) lane_add(j, pred[i + j], truth[i + j]);
  }
  for (std::size_t i = nb; i < n; ++i) lane_add(i - nb, pred[i], truth[i]);
  ErrorAcc out;
  out.sum_sq = reduce8(sq.v);
  // Lane counts are small integers, so the double sum is exact.
  out.finite = static_cast<std::uint64_t>(reduce8(cnt.v));
  return out;
}

void l2_distances_cols(const double* cols, std::size_t rows, const double* z,
                       std::size_t ncols, double* out) {
  // Each out[r] accumulates sequentially over c — the same DAG as the
  // classic row-major loop, so this kernel is bit-compatible with the
  // code it replaced.  The blocked shape (8 row-accumulators advancing
  // one column at a time) is what the SIMD path executes in registers.
  const std::size_t rb = rows & ~(kLanes - 1);
  for (std::size_t r = 0; r < rb; r += kLanes) {
    Lanes acc;
    for (std::size_t c = 0; c < ncols; ++c) {
      const double* colp = cols + c * rows + r;
      for (std::size_t j = 0; j < kLanes; ++j) {
        const double d = colp[j] - z[c];
        acc.v[j] += d * d;
      }
    }
    for (std::size_t j = 0; j < kLanes; ++j) out[r + j] = acc.v[j];
  }
  for (std::size_t r = rb; r < rows; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < ncols; ++c) {
      const double d = cols[c * rows + r] - z[c];
      acc += d * d;
    }
    out[r] = acc;
  }
}

HistBounds hist_accumulate(const std::uint8_t* codes, const std::size_t* rows,
                           const double* w, const double* wy, std::size_t n,
                           int num_bins, double* sum_w, double* sum_wy) {
  const std::size_t nbins = static_cast<std::size_t>(num_bins);
  for (std::size_t b = 0; b < nbins; ++b) sum_w[b] = sum_wy[b] = 0.0;
  HistBounds bounds{num_bins, -1};
  if (n == 0) return bounds;

  auto touch = [&](int b) {
    if (b < bounds.lo_bin) bounds.lo_bin = b;
    if (b > bounds.hi_bin) bounds.hi_bin = b;
  };

  if (n < kHistLaneCutoff) {
    // Small nodes: one sequential accumulator; lane-private copies would
    // cost more to zero than the rows cost to add.
    for (std::size_t i = 0; i < n; ++i) {
      const int b = codes[rows[i]];
      sum_w[b] += w[i];
      sum_wy[b] += wy[i];
      touch(b);
    }
    return bounds;
  }

  // Lane-private sub-histograms, [bin][lane] layout so the per-bin merge
  // reads 8 contiguous doubles.  Row i accumulates into lane i % 8.
  thread_local std::vector<double> scratch;
  scratch.assign(2 * nbins * kLanes, 0.0);
  double* hw = scratch.data();
  double* hwy = hw + nbins * kLanes;

  const std::size_t nb = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < nb; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) {
      const std::size_t b = codes[rows[i + j]];
      hw[b * kLanes + j] += w[i + j];
      hwy[b * kLanes + j] += wy[i + j];
      touch(static_cast<int>(b));
    }
  }
  for (std::size_t i = nb; i < n; ++i) {
    const std::size_t b = codes[rows[i]];
    hw[b * kLanes + (i - nb)] += w[i];
    hwy[b * kLanes + (i - nb)] += wy[i];
    touch(static_cast<int>(b));
  }
  for (int b = bounds.lo_bin; b <= bounds.hi_bin; ++b) {
    sum_w[b] = reduce8(hw + static_cast<std::size_t>(b) * kLanes);
    sum_wy[b] = reduce8(hwy + static_cast<std::size_t>(b) * kLanes);
  }
  return bounds;
}

}  // namespace leaf::simd::scalar
