// Binary serialization primitives for snapshots (leaf::io).
//
// A `Serializer` appends fixed-width little-endian values to a byte
// buffer; a `Deserializer` reads them back with bounds checking and
// throws `SnapshotError` on any truncation or inconsistency instead of
// reading past the end.  Doubles travel as raw IEEE-754 bit patterns
// (std::bit_cast), so NaN payloads, infinities, and signed zeros all
// round-trip bit-exactly — a requirement for the crash-equivalence
// guarantee of leaf::serve.
//
// Note the naming: `models::Persistence` is the scaled-last-value
// *baseline forecaster* from the paper, not a storage layer.  Everything
// about saving and restoring state lives here under `leaf::io`.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "data/features.hpp"

namespace leaf::io {

/// Raised on any malformed snapshot input: truncation, checksum or magic
/// mismatch, unsupported format version, unknown factory key, or a value
/// that fails a structural validity check.  Callers can rely on *no*
/// object mutation having happened when a load entry point throws.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error("snapshot: " + what) {}
};

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a byte range.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

class Serializer {
 public:
  std::span<const std::uint8_t> bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f64(double v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_string(const std::string& s);
  void put_doubles(std::span<const double> v);
  void put_ints(std::span<const int> v);
  void put_raw(std::span<const std::uint8_t> bytes);

 private:
  std::vector<std::uint8_t> buf_;
};

class Deserializer {
 public:
  explicit Deserializer(std::span<const std::uint8_t> bytes) : buf_(bytes) {}

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64();
  bool get_bool();
  std::string get_string();
  std::vector<double> get_doubles();
  std::vector<int> get_ints();

  /// Reads a count written by a put_* container method and validates that
  /// at least `elem_bytes * count` bytes remain, so corrupted counts fail
  /// with a clear error instead of a giant allocation.
  std::uint64_t get_count(std::size_t elem_bytes);

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

// --- composite helpers ----------------------------------------------------

void write(Serializer& out, const Matrix& m);
Matrix read_matrix(Deserializer& in);

void write(Serializer& out, const data::SupervisedSet& s);
data::SupervisedSet read_supervised_set(Deserializer& in);

void write(Serializer& out, const Rng& rng);
void read_rng(Deserializer& in, Rng& rng);

void write(Serializer& out, const data::Standardizer& s);
void read_standardizer(Deserializer& in, data::Standardizer& s);

}  // namespace leaf::io
