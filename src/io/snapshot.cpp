#include "io/snapshot.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

namespace leaf::io {

namespace {

// ScopedWriteFault state: byte budget for the next write_file call.
// SIZE_MAX = disarmed.  Single-threaded by contract (see header).
std::size_t g_write_fault_after = std::numeric_limits<std::size_t>::max();

}  // namespace

ScopedWriteFault::ScopedWriteFault(std::size_t after_bytes) {
  g_write_fault_after = after_bytes;
}

ScopedWriteFault::~ScopedWriteFault() {
  g_write_fault_after = std::numeric_limits<std::size_t>::max();
}

bool ScopedWriteFault::armed() {
  return g_write_fault_after != std::numeric_limits<std::size_t>::max();
}

Serializer& SnapshotWriter::section(const std::string& name) {
  for (const auto& [existing, _] : sections_) {
    if (existing == name)
      throw SnapshotError("duplicate section name '" + name + "'");
  }
  sections_.emplace_back(name, Serializer{});
  return sections_.back().second;
}

std::vector<std::uint8_t> SnapshotWriter::encode() const {
  Serializer head;
  head.put_raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic), sizeof(kMagic)));
  head.put_u32(kFormatVersion);
  head.put_u32(static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [name, body] : sections_) {
    head.put_u32(static_cast<std::uint32_t>(name.size()));
    head.put_raw(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(name.data()), name.size()));
    head.put_u64(body.size());
    head.put_u32(crc32(body.bytes()));
    head.put_raw(body.bytes());
  }
  const auto bytes = head.bytes();
  return {bytes.begin(), bytes.end()};
}

std::uint64_t SnapshotWriter::write_file(const std::string& path) const {
  return write_bytes(path, encode());
}

std::uint64_t SnapshotWriter::write_bytes(const std::string& path,
                                          std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  // Remove the temporary on every failure path: a failed snapshot must
  // not leave litter behind (and must leave any previous snapshot under
  // `path` untouched).
  const auto fail = [&tmp](const std::string& what) -> SnapshotError {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return SnapshotError(what);
  };
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw fail("cannot open '" + tmp + "' for writing");
    std::size_t budget = bytes.size();
    if (g_write_fault_after < budget) {
      budget = g_write_fault_after;
      g_write_fault_after = std::numeric_limits<std::size_t>::max();
      f.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(budget));
      f.flush();
      throw fail("write to '" + tmp + "' failed (injected fault after " +
                 std::to_string(budget) + " bytes)");
    }
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    f.flush();
    if (!f) throw fail("write to '" + tmp + "' failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) throw fail("cannot rename snapshot into '" + path + "'");
  return bytes.size();
}

SnapshotReader::SnapshotReader(std::vector<std::uint8_t> bytes, ReadMode mode)
    : bytes_(std::move(bytes)) {
  const bool lenient = mode == ReadMode::kLenient;
  Deserializer in(bytes_);
  if (in.remaining() < sizeof(kMagic))
    throw SnapshotError("file too short to hold a snapshot header");
  std::uint8_t magic[sizeof(kMagic)];
  for (auto& b : magic) b = in.get_u8();
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw SnapshotError("bad magic: not a LEAF snapshot file");
  const std::uint32_t version = in.get_u32();
  if (version < kMinReadVersion || version > kFormatVersion)
    throw SnapshotError("unsupported format version " +
                        std::to_string(version) + " (this build reads " +
                        std::to_string(kMinReadVersion) + ".." +
                        std::to_string(kFormatVersion) + ")");
  version_ = version;
  const std::uint32_t count = in.get_u32();
  sections_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (lenient && in.remaining() < 4) break;  // truncated tail
    const std::uint32_t name_len = in.get_u32();
    if (name_len > in.remaining()) {
      if (lenient) break;
      throw SnapshotError("truncated section name");
    }
    Section s;
    s.name.assign(
        reinterpret_cast<const char*>(bytes_.data() +
                                      (bytes_.size() - in.remaining())),
        name_len);
    for (std::uint32_t k = 0; k < name_len; ++k) in.get_u8();
    if (lenient && in.remaining() < 8 + 4) {
      // Header truncated mid-section: record the section as corrupt so
      // callers know it existed but is unusable.
      s.valid = false;
      corrupt_.push_back(s.name);
      sections_.push_back(std::move(s));
      break;
    }
    const std::uint64_t payload_len = in.get_u64();
    const std::uint32_t crc = in.get_u32();
    if (payload_len > in.remaining()) {
      if (lenient) {
        s.valid = false;
        corrupt_.push_back(s.name);
        sections_.push_back(std::move(s));
        break;
      }
      throw SnapshotError("truncated payload for section '" + s.name + "'");
    }
    s.offset = bytes_.size() - in.remaining();
    s.length = static_cast<std::size_t>(payload_len);
    const std::span<const std::uint8_t> payload(bytes_.data() + s.offset,
                                                s.length);
    if (crc32(payload) != crc) {
      if (!lenient)
        throw SnapshotError("checksum mismatch in section '" + s.name + "'");
      s.valid = false;
      corrupt_.push_back(s.name);
    }
    for (std::uint64_t k = 0; k < payload_len; ++k) in.get_u8();
    sections_.push_back(std::move(s));
  }
}

SnapshotReader SnapshotReader::from_file(const std::string& path,
                                         ReadMode mode) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw SnapshotError("cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  if (!f.eof() && f.fail())
    throw SnapshotError("read of '" + path + "' failed");
  return SnapshotReader(std::move(bytes), mode);
}

const SnapshotReader::Section* SnapshotReader::find(
    const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

bool SnapshotReader::has(const std::string& name) const {
  const Section* s = find(name);
  return s != nullptr && s->valid;
}

Deserializer SnapshotReader::section(const std::string& name) const {
  const Section* s = find(name);
  if (s == nullptr)
    throw SnapshotError("missing section '" + name + "'");
  if (!s->valid)
    throw SnapshotError("checksum mismatch in section '" + name + "'");
  return Deserializer(
      std::span<const std::uint8_t>(bytes_.data() + s->offset, s->length));
}

std::uint64_t SnapshotReader::section_bytes(const std::string& name) const {
  const Section* s = find(name);
  if (s == nullptr || !s->valid)
    throw SnapshotError("missing section '" + name + "'");
  return s->length;
}

}  // namespace leaf::io
