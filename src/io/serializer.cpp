#include "io/serializer.hpp"

#include <array>
#include <bit>

namespace leaf::io {

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t b : bytes) crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void Serializer::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Serializer::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Serializer::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void Serializer::put_string(const std::string& s) {
  put_u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Serializer::put_doubles(std::span<const double> v) {
  put_u64(v.size());
  for (double x : v) put_f64(x);
}

void Serializer::put_ints(std::span<const int> v) {
  put_u64(v.size());
  for (int x : v) put_i32(x);
}

void Serializer::put_raw(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void Deserializer::need(std::size_t n) const {
  if (remaining() < n)
    throw SnapshotError("truncated input: need " + std::to_string(n) +
                        " bytes, " + std::to_string(remaining()) + " left");
}

std::uint8_t Deserializer::get_u8() {
  need(1);
  return buf_[pos_++];
}

std::uint32_t Deserializer::get_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Deserializer::get_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
  return v;
}

double Deserializer::get_f64() { return std::bit_cast<double>(get_u64()); }

bool Deserializer::get_bool() {
  const std::uint8_t v = get_u8();
  if (v > 1) throw SnapshotError("corrupt bool value " + std::to_string(v));
  return v != 0;
}

std::uint64_t Deserializer::get_count(std::size_t elem_bytes) {
  const std::uint64_t n = get_u64();
  if (elem_bytes > 0 && n > remaining() / elem_bytes)
    throw SnapshotError("corrupt container count " + std::to_string(n) +
                        " exceeds remaining payload");
  return n;
}

std::string Deserializer::get_string() {
  const std::uint64_t n = get_count(1);
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

std::vector<double> Deserializer::get_doubles() {
  const std::uint64_t n = get_count(8);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = get_f64();
  return v;
}

std::vector<int> Deserializer::get_ints() {
  const std::uint64_t n = get_count(4);
  std::vector<int> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = get_i32();
  return v;
}

void write(Serializer& out, const Matrix& m) {
  out.put_u64(m.rows());
  out.put_u64(m.cols());
  for (double v : m.flat()) out.put_f64(v);
}

Matrix read_matrix(Deserializer& in) {
  const std::uint64_t rows = in.get_u64();
  const std::uint64_t cols = in.get_u64();
  if (cols > 0 && rows > in.remaining() / 8 / cols)
    throw SnapshotError("corrupt matrix dimensions " + std::to_string(rows) +
                        "x" + std::to_string(cols));
  Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  for (double& v : m.flat()) v = in.get_f64();
  return m;
}

void write(Serializer& out, const data::SupervisedSet& s) {
  write(out, s.X);
  out.put_doubles(s.y);
  out.put_ints(s.feature_day);
  out.put_ints(s.target_day);
  out.put_ints(s.enb);
}

data::SupervisedSet read_supervised_set(Deserializer& in) {
  data::SupervisedSet s;
  s.X = read_matrix(in);
  s.y = in.get_doubles();
  s.feature_day = in.get_ints();
  s.target_day = in.get_ints();
  s.enb = in.get_ints();
  if (s.y.size() != s.X.rows() || s.feature_day.size() != s.y.size() ||
      s.target_day.size() != s.y.size() || s.enb.size() != s.y.size())
    throw SnapshotError("supervised set with inconsistent row counts");
  return s;
}

void write(Serializer& out, const Rng& rng) {
  const Rng::State st = rng.capture();
  for (std::uint64_t w : st.words) out.put_u64(w);
  out.put_f64(st.cached_normal);
  out.put_bool(st.has_cached_normal);
}

void read_rng(Deserializer& in, Rng& rng) {
  Rng::State st;
  for (auto& w : st.words) w = in.get_u64();
  st.cached_normal = in.get_f64();
  st.has_cached_normal = in.get_bool();
  rng.restore(st);
}

void write(Serializer& out, const data::Standardizer& s) {
  out.put_doubles(s.mean());
  out.put_doubles(s.stddev());
}

void read_standardizer(Deserializer& in, data::Standardizer& s) {
  std::vector<double> mean = in.get_doubles();
  std::vector<double> std = in.get_doubles();
  if (mean.size() != std.size())
    throw SnapshotError("standardizer with mismatched moment vectors");
  s.restore(std::move(mean), std::move(std));
}

}  // namespace leaf::io
