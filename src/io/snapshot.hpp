// Versioned, checksummed snapshot container (leaf::io).
//
// On-disk layout (all integers little-endian):
//
//   magic    8 bytes   "LEAFSNAP"
//   version  u32       format version (kFormatVersion)
//   count    u32       number of sections
//   then per section:
//     name_len u32, name bytes
//     payload_len u64
//     crc      u32     CRC-32 of the payload bytes
//     payload  bytes
//
// Every section is independently checksummed, so a flipped bit anywhere
// is pinned to the section it corrupted.  In the default strict mode a
// `SnapshotReader` validates the magic, the version, the structural
// bounds, and every CRC up front: a reader that constructs successfully
// hands out only verified payloads, and any failure throws
// `SnapshotError` before the caller has mutated anything (no partial
// restore).  Lenient mode (ReadMode::kLenient) keeps that guarantee per
// section instead of per file: damaged sections are marked corrupt and
// refuse to hand out payloads, while intact sections stay readable —
// the mechanism behind leaf::serve's last-known-good per-shard rollback
// across snapshot generations.  Bad magic or an unsupported version
// still throws in either mode; nothing in such a file can be trusted.
//
// Files are written to a temporary sibling and atomically renamed into
// place, so a crash mid-snapshot never leaves a half-written file under
// the final name, and the temporary is removed on every error path, so
// a failed write never accumulates `.tmp` litter either.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "io/serializer.hpp"

namespace leaf::io {

inline constexpr char kMagic[8] = {'L', 'E', 'A', 'F', 'S', 'N', 'A', 'P'};
// v2: serve shard sections carry the shard's obs::EventLog (crash-
// equivalent drift-event telemetry across snapshot/restore).
// v3: serve shard sections carry supervision state (health FSM, fault
// counters, retrain circuit breaker, supervision event log).
// v4: fleet snapshots carry a "tsdb" section (telemetry store + meta-
// drift detector state).  v3 files still restore — the reader accepts
// [kMinReadVersion, kFormatVersion] and consumers treat the missing
// section as an empty store.
inline constexpr std::uint32_t kFormatVersion = 4;
/// Oldest format version this build still reads.
inline constexpr std::uint32_t kMinReadVersion = 3;

/// Test/chaos seam: while alive, the next SnapshotWriter::write_file
/// call fails after writing `after_bytes` bytes of the temporary file,
/// exercising the error path (which must clean up the temporary).  One
/// fault per scope arming; not thread-safe — arm only around
/// single-threaded snapshot writes.
class ScopedWriteFault {
 public:
  explicit ScopedWriteFault(std::size_t after_bytes);
  ~ScopedWriteFault();
  ScopedWriteFault(const ScopedWriteFault&) = delete;
  ScopedWriteFault& operator=(const ScopedWriteFault&) = delete;

  /// True while an armed fault has not fired yet.
  static bool armed();
};

class SnapshotWriter {
 public:
  /// Starts a new section and returns the serializer to fill it with.
  /// Section names must be unique within one snapshot.
  Serializer& section(const std::string& name);

  /// The whole container as bytes.
  std::vector<std::uint8_t> encode() const;

  /// Writes the container to `path` (tmp file + rename).  Returns the
  /// byte count written.  Throws SnapshotError on any I/O failure; the
  /// temporary file is removed on every error path.
  std::uint64_t write_file(const std::string& path) const;

  /// Writes pre-encoded container bytes to `path` with the same
  /// tmp+rename+cleanup discipline (used by chaos snapshot corruption,
  /// which mutates encoded bytes before they hit disk).
  static std::uint64_t write_bytes(const std::string& path,
                                   std::span<const std::uint8_t> bytes);

 private:
  std::vector<std::pair<std::string, Serializer>> sections_;
};

class SnapshotReader {
 public:
  enum class ReadMode {
    kStrict,   ///< any damage anywhere throws (default)
    kLenient,  ///< damaged sections are marked corrupt; intact ones readable
  };

  /// Parses a container.  Strict mode throws SnapshotError on bad magic,
  /// unsupported version, truncation, or any CRC mismatch.  Lenient mode
  /// throws only on bad magic / version and demotes per-section damage
  /// (CRC mismatch, truncated tail) to corrupt-section markers.
  explicit SnapshotReader(std::vector<std::uint8_t> bytes,
                          ReadMode mode = ReadMode::kStrict);

  /// Reads and validates a container file.
  static SnapshotReader from_file(const std::string& path,
                                  ReadMode mode = ReadMode::kStrict);

  /// Format version of the parsed file (kMinReadVersion..kFormatVersion).
  std::uint32_t version() const { return version_; }

  /// True when `name` is present *and* intact.
  bool has(const std::string& name) const;
  /// Deserializer over a verified section payload; throws if absent or
  /// corrupt.
  Deserializer section(const std::string& name) const;
  std::uint64_t section_bytes(const std::string& name) const;
  std::uint64_t total_bytes() const { return bytes_.size(); }

  /// Names of sections whose payloads failed validation (lenient mode;
  /// always empty for a strict reader, which would have thrown).
  const std::vector<std::string>& corrupt_sections() const {
    return corrupt_;
  }

 private:
  struct Section {
    std::string name;
    std::size_t offset = 0;
    std::size_t length = 0;
    bool valid = true;
  };
  const Section* find(const std::string& name) const;

  std::vector<std::uint8_t> bytes_;
  std::vector<Section> sections_;
  std::vector<std::string> corrupt_;
  std::uint32_t version_ = kFormatVersion;
};

}  // namespace leaf::io
