// Versioned, checksummed snapshot container (leaf::io).
//
// On-disk layout (all integers little-endian):
//
//   magic    8 bytes   "LEAFSNAP"
//   version  u32       format version (kFormatVersion)
//   count    u32       number of sections
//   then per section:
//     name_len u32, name bytes
//     payload_len u64
//     crc      u32     CRC-32 of the payload bytes
//     payload  bytes
//
// Every section is independently checksummed, so a flipped bit anywhere
// is pinned to the section it corrupted.  `SnapshotReader` validates the
// magic, the version, the structural bounds, and every CRC up front: a
// reader that constructs successfully hands out only verified payloads,
// and any failure throws `SnapshotError` before the caller has mutated
// anything (no partial restore).
//
// Files are written to a temporary sibling and atomically renamed into
// place, so a crash mid-snapshot never leaves a half-written file under
// the final name.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "io/serializer.hpp"

namespace leaf::io {

inline constexpr char kMagic[8] = {'L', 'E', 'A', 'F', 'S', 'N', 'A', 'P'};
// v2: serve shard sections carry the shard's obs::EventLog (crash-
// equivalent drift-event telemetry across snapshot/restore).
inline constexpr std::uint32_t kFormatVersion = 2;

class SnapshotWriter {
 public:
  /// Starts a new section and returns the serializer to fill it with.
  /// Section names must be unique within one snapshot.
  Serializer& section(const std::string& name);

  /// The whole container as bytes.
  std::vector<std::uint8_t> encode() const;

  /// Writes the container to `path` (tmp file + rename).  Returns the
  /// byte count written.  Throws SnapshotError on any I/O failure.
  std::uint64_t write_file(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, Serializer>> sections_;
};

class SnapshotReader {
 public:
  /// Parses and fully validates a container.  Throws SnapshotError on bad
  /// magic, unsupported version, truncation, or any CRC mismatch.
  explicit SnapshotReader(std::vector<std::uint8_t> bytes);

  /// Reads and validates a container file.
  static SnapshotReader from_file(const std::string& path);

  bool has(const std::string& name) const;
  /// Deserializer over a verified section payload; throws if absent.
  Deserializer section(const std::string& name) const;
  std::uint64_t section_bytes(const std::string& name) const;
  std::uint64_t total_bytes() const { return bytes_.size(); }

 private:
  struct Section {
    std::string name;
    std::size_t offset = 0;
    std::size_t length = 0;
  };
  const Section* find(const std::string& name) const;

  std::vector<std::uint8_t> bytes_;
  std::vector<Section> sections_;
};

}  // namespace leaf::io
