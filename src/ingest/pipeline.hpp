// Fault-tolerant telemetry ingestion pipeline.
//
// Sits between `leaf::data` (which models what the network *did*) and
// `leaf::core` (which evaluates forecasting schemes on what the collector
// *delivered*).  The pipeline consumes a possibly late / duplicated /
// corrupted / gappy record stream and produces:
//
//   1. a clean day-major `CellularDataset` — records re-sequenced by the
//      day they describe, duplicates dropped, implausible values
//      quarantined and imputed, short gaps filled, long gaps left honest;
//   2. per-KPI and per-eNodeB `HealthSeries` from the state machine in
//      health.hpp — the signal `core::run_scheme` uses to freeze drift
//      detection during declared outages;
//   3. an `IngestReport` of every intervention, which the evaluation layer
//      surfaces as `DegradedStats` so no repair is silent.
//
// Plausibility bounds are learned from the leading `bounds_fit_days` of
// the stream itself (robust quantiles + headroom; see validator.hpp), so
// ingest needs no access to ground-truth clean data.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "ingest/fault.hpp"
#include "ingest/health.hpp"
#include "ingest/validator.hpp"

namespace leaf::obs {
class EventLog;
}

namespace leaf::ingest {

struct IngestConfig {
  ValidatorConfig validator;
  HealthConfig health;
  /// Leading slice of the stream used to fit per-KPI plausibility bounds.
  int bounds_fit_days = 180;
  /// Optional structured event sink (leaf::obs): health-FSM transitions
  /// and per-day quarantine aggregates are recorded here.  Single-writer;
  /// may be null.
  obs::EventLog* events = nullptr;
};

/// Counts of every intervention the pipeline made.
struct IngestReport {
  std::int64_t records_in = 0;
  std::int64_t records_out = 0;
  std::int64_t late_records = 0;        ///< delivered after a later day
  std::int64_t duplicates_dropped = 0;
  std::int64_t quarantined_values = 0;  ///< implausible values in kept records
  std::int64_t quarantined_records = 0; ///< records rejected wholesale
  std::int64_t values_imputed = 0;
  std::int64_t records_synthesized = 0; ///< wholly-missing records filled
  int days_missing = 0;                 ///< days with zero arrivals
};

struct IngestResult {
  data::CellularDataset clean;
  IngestReport report;
  /// Per-KPI-column fleet health, one series per column, day-indexed.
  std::vector<HealthSeries> kpi_health;
  /// Per-eNodeB health across its columns, one series per profile.
  std::vector<HealthSeries> enb_health;

  /// Days a column spent in OUTAGE.
  int outage_days(int column) const;
};

/// Runs the pipeline.  `like` supplies the schema, fleet, day count, and
/// name — its KPI *values* are never read, so any stream (clean, faulted,
/// or real) can be ingested against the same fleet description.
IngestResult ingest_stream(const data::CellularDataset& like,
                           std::vector<TelemetryRecord> stream,
                           const IngestConfig& cfg = {});

}  // namespace leaf::ingest
