// Record validation, quarantine, and imputation for telemetry ingest.
//
// The validator owns per-KPI plausibility bounds (learned from a reference
// slice of the stream with robust quantiles plus headroom) and decides,
// value by value, whether a delivered KPI is usable.  Implausible values —
// NaN/Inf, negative counters, wrap-around spikes — are *quarantined* and
// replaced through a configurable imputation policy; records with too many
// quarantined columns are rejected wholesale and treated as missing.
//
// Three imputation policies cover the spectrum real pipelines use:
//   * carry-forward   — repeat the eNodeB's last good value, but only while
//                       it is fresher than `staleness_cap_days` (a stale
//                       carry is worse than an honest gap);
//   * seasonal-naive  — the eNodeB's good value one `seasonal_period` ago
//                       (weekly periodicity is the strongest KPI signal);
//   * group-median    — median of the same KPI across the eNodeBs that did
//                       report today (fleet-level cross-section).
// Each policy falls back down the chain (policy → carry-forward → fleet
// running median) so a partially-corrupt record can always be completed;
// wholly-missing records are only synthesized while carry-forward is
// fresh.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/kpi.hpp"

namespace leaf::ingest {

enum class ImputePolicy : std::uint8_t {
  kCarryForward,
  kSeasonalNaive,
  kGroupMedian,
};

std::string to_string(ImputePolicy p);

struct ValidatorConfig {
  /// Robust quantiles of the reference slice that anchor the bounds.
  double bound_quantile_lo = 0.001;
  double bound_quantile_hi = 0.999;
  /// Headroom multiplier applied above the high anchor (KPIs grow over the
  /// study; bounds must not quarantine organic growth).
  double bound_headroom = 8.0;
  /// Records with more than this fraction of quarantined columns are
  /// rejected wholesale.
  double record_reject_fraction = 0.5;

  ImputePolicy policy = ImputePolicy::kCarryForward;
  /// Carry-forward refuses values older than this many days.
  int staleness_cap_days = 7;
  /// Period for the seasonal-naive policy (weekly).
  int seasonal_period = 7;
};

/// Per-column [lo, hi] plausibility bounds.
struct KpiBounds {
  std::vector<double> lo;
  std::vector<double> hi;

  bool fitted() const { return !lo.empty(); }
  /// Finite and inside [lo, hi] for the column.
  bool plausible(int column, double v) const;
};

/// Learns bounds from per-column samples (one vector per KPI column) using
/// the config's robust quantiles + headroom.  Non-finite samples are
/// ignored; columns with no finite samples accept any finite value.
KpiBounds fit_bounds(const std::vector<std::vector<double>>& column_samples,
                     const ValidatorConfig& cfg);

/// Stateful imputer: tracks each (eNodeB, column) last-good value and age,
/// the per-column fleet running median, and the per-day cross-section, and
/// produces replacement values per the configured policy.  Days must be
/// fed in order.
class Imputer {
 public:
  Imputer(int num_enbs, int num_kpis, const ValidatorConfig& cfg);

  /// Starts a new day; `day` must increase between calls.
  void begin_day(int day);
  /// Registers a validated good value (also feeds the cross-section).
  void observe(int enb, int column, double v);
  /// Replacement value for a quarantined / missing (enb, column), or NaN
  /// when no policy (and no fallback) can produce one.
  double impute(int enb, int column) const;
  /// True while carry-forward for (enb, column) is within the staleness
  /// cap — the gate for synthesizing wholly-missing records.
  bool carry_fresh(int enb, int column) const;

 private:
  double carry_forward(int enb, int column) const;
  double seasonal(int enb, int column) const;
  double group_median(int column) const;

  std::size_t cell(int enb, int column) const {
    return static_cast<std::size_t>(enb) * static_cast<std::size_t>(num_kpis_) +
           static_cast<std::size_t>(column);
  }

  ValidatorConfig cfg_;
  int num_enbs_;
  int num_kpis_;
  int day_ = -1;

  // Flat (enb * num_kpis + column) state.
  std::vector<float> last_val_;  ///< last good value
  std::vector<int> last_day_;    ///< day of the last good value (-1 = none)
  // Ring of one seasonal period per cell: slot (cell * period + day % period).
  std::vector<float> ring_val_;
  std::vector<int> ring_day_;
  std::vector<std::vector<double>> today_;  ///< per-column day cross-section
  std::vector<float> fleet_median_;  ///< per-column frugal median estimate
  std::vector<bool> fleet_median_seen_;
};

}  // namespace leaf::ingest
