// Per-KPI / per-eNodeB telemetry health state machine.
//
// Mirrors the paper's PU outage semantics (Table 2's "Data Lost" KPI,
// Jul 2019 – Jan 2020): when a KPI stops arriving, the *forecasting* layer
// must know that the gap is a collection failure, not a concept change —
// otherwise the drift detector reads the outage as drift and triggers
// retrains on fabricated data.  Each tracked entity (a KPI column across
// the fleet, or one eNodeB across its columns) runs this four-state
// machine over its daily valid-data fraction:
//
//            frac < degraded_below              frac < outage_below
//      OK ──────────────────────▶ DEGRADED ──────────────────────▶ OUTAGE
//       ▲                            │ ▲                             │
//       │ recover_days good days     │ └──────── relapse ────────────┤
//       │                            ▼                               ▼
//      RECOVERING ◀──────────────────┴──────── frac recovers ── RECOVERING
//
// Entry into DEGRADED/OUTAGE requires `degrade_days` consecutive bad days
// and exit requires `recover_days` consecutive good days (hysteresis), so
// single-day blips neither trip nor clear a state.
#pragma once

#include <string>
#include <vector>

namespace leaf::ingest {

enum class HealthState : std::uint8_t {
  kOk,
  kDegraded,
  kOutage,
  kRecovering,
};

std::string to_string(HealthState s);

struct HealthConfig {
  /// Valid-data fraction below which a day counts as degraded.
  double degraded_below = 0.8;
  /// Valid-data fraction below which a day counts as an outage.
  double outage_below = 0.35;
  /// Consecutive bad days required to enter DEGRADED / OUTAGE.
  int degrade_days = 2;
  /// Consecutive good days required to leave RECOVERING (and DEGRADED).
  int recover_days = 3;
};

class HealthTracker {
 public:
  explicit HealthTracker(HealthConfig cfg = {});

  /// Feeds one day's valid-data fraction in [0, 1]; returns the state
  /// *after* the transition.
  HealthState step(double valid_fraction);
  HealthState state() const { return state_; }
  void reset();

 private:
  HealthConfig cfg_;
  HealthState state_ = HealthState::kOk;
  int bad_streak_ = 0;      ///< consecutive days below degraded_below
  int verybad_streak_ = 0;  ///< consecutive days below outage_below
  int good_streak_ = 0;     ///< consecutive days at/above degraded_below
};

/// Day-indexed health series (one state per study day).
using HealthSeries = std::vector<HealthState>;

/// True when any day of `series` in [first, last] is in the given state.
bool any_in_state(const HealthSeries& series, int first, int last,
                  HealthState state);

}  // namespace leaf::ingest
