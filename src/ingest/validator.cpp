#include "ingest/validator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stats.hpp"

namespace leaf::ingest {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

std::string to_string(ImputePolicy p) {
  switch (p) {
    case ImputePolicy::kCarryForward: return "carry-forward";
    case ImputePolicy::kSeasonalNaive: return "seasonal-naive";
    case ImputePolicy::kGroupMedian: return "group-median";
  }
  return "?";
}

bool KpiBounds::plausible(int column, double v) const {
  if (!std::isfinite(v)) return false;
  if (!fitted()) return true;
  const std::size_t c = static_cast<std::size_t>(column);
  return v >= lo[c] && v <= hi[c];
}

KpiBounds fit_bounds(const std::vector<std::vector<double>>& column_samples,
                     const ValidatorConfig& cfg) {
  KpiBounds b;
  b.lo.reserve(column_samples.size());
  b.hi.reserve(column_samples.size());
  std::vector<double> finite;
  for (const auto& samples : column_samples) {
    finite.clear();
    finite.reserve(samples.size());
    for (double v : samples)
      if (std::isfinite(v)) finite.push_back(v);
    if (finite.empty()) {
      // No usable reference: accept any finite value.
      b.lo.push_back(-std::numeric_limits<double>::max());
      b.hi.push_back(std::numeric_limits<double>::max());
      continue;
    }
    const double qlo = stats::quantile(finite, cfg.bound_quantile_lo);
    const double qhi = stats::quantile(finite, cfg.bound_quantile_hi);
    const double span = std::max(qhi - qlo, std::abs(qhi) * 0.1 + 1e-9);
    // KPIs are non-negative counters/ratios in this schema, but the bounds
    // only assume what the reference shows: a little slack below the low
    // anchor, `bound_headroom` spans above the high one (organic growth
    // must stay in-bounds; a 50x wrap spike must not).
    b.lo.push_back(qlo - 0.5 * span);
    b.hi.push_back(qhi + cfg.bound_headroom * span);
  }
  return b;
}

Imputer::Imputer(int num_enbs, int num_kpis, const ValidatorConfig& cfg)
    : cfg_(cfg), num_enbs_(num_enbs), num_kpis_(num_kpis) {
  const std::size_t cells =
      static_cast<std::size_t>(num_enbs) * static_cast<std::size_t>(num_kpis);
  last_val_.assign(cells, 0.0f);
  last_day_.assign(cells, -1);
  const std::size_t period = static_cast<std::size_t>(
      std::max(1, cfg_.seasonal_period));
  ring_val_.assign(cells * period, 0.0f);
  ring_day_.assign(cells * period, -1);
  today_.assign(static_cast<std::size_t>(num_kpis), {});
  fleet_median_.assign(static_cast<std::size_t>(num_kpis), 0.0f);
  fleet_median_seen_.assign(static_cast<std::size_t>(num_kpis), false);
}

void Imputer::begin_day(int day) {
  day_ = day;
  for (auto& col : today_) col.clear();
}

void Imputer::observe(int enb, int column, double v) {
  const std::size_t c = cell(enb, column);
  last_val_[c] = static_cast<float>(v);
  last_day_[c] = day_;
  const int period = std::max(1, cfg_.seasonal_period);
  const std::size_t slot = c * static_cast<std::size_t>(period) +
                           static_cast<std::size_t>(day_ % period);
  ring_val_[slot] = static_cast<float>(v);
  ring_day_[slot] = day_;
  today_[static_cast<std::size_t>(column)].push_back(v);

  // Frugal streaming median: cheap per-column fleet level for the final
  // imputation fallback.
  const std::size_t col = static_cast<std::size_t>(column);
  if (!fleet_median_seen_[col]) {
    fleet_median_[col] = static_cast<float>(v);
    fleet_median_seen_[col] = true;
  } else {
    const double med = fleet_median_[col];
    const double step = 0.05 * (std::abs(med) + std::abs(v)) / 2.0 + 1e-12;
    fleet_median_[col] =
        static_cast<float>(v > med ? med + step : (v < med ? med - step : med));
  }
}

bool Imputer::carry_fresh(int enb, int column) const {
  const std::size_t c = cell(enb, column);
  return last_day_[c] >= 0 && day_ - last_day_[c] <= cfg_.staleness_cap_days;
}

double Imputer::carry_forward(int enb, int column) const {
  return carry_fresh(enb, column)
             ? static_cast<double>(last_val_[cell(enb, column)])
             : kNaN;
}

double Imputer::seasonal(int enb, int column) const {
  const int period = std::max(1, cfg_.seasonal_period);
  const int want = day_ - period;
  if (want < 0) return kNaN;
  // The slot for `day_` still holds the value observed one period ago
  // (this cell was not observed today, or it would not need imputing).
  const std::size_t slot = cell(enb, column) * static_cast<std::size_t>(period) +
                           static_cast<std::size_t>(day_ % period);
  return ring_day_[slot] == want ? static_cast<double>(ring_val_[slot]) : kNaN;
}

double Imputer::group_median(int column) const {
  const auto& xs = today_[static_cast<std::size_t>(column)];
  if (xs.size() < 3) return kNaN;
  return stats::quantile(xs, 0.5);
}

double Imputer::impute(int enb, int column) const {
  double v = kNaN;
  switch (cfg_.policy) {
    case ImputePolicy::kCarryForward: v = carry_forward(enb, column); break;
    case ImputePolicy::kSeasonalNaive: v = seasonal(enb, column); break;
    case ImputePolicy::kGroupMedian: v = group_median(column); break;
  }
  // Fallback chain: fresh carry → day cross-section → fleet median.
  if (!std::isfinite(v)) v = carry_forward(enb, column);
  if (!std::isfinite(v)) v = group_median(column);
  if (!std::isfinite(v) && fleet_median_seen_[static_cast<std::size_t>(column)])
    v = static_cast<double>(fleet_median_[static_cast<std::size_t>(column)]);
  return v;
}

}  // namespace leaf::ingest
