#include "ingest/health.hpp"

#include <algorithm>

namespace leaf::ingest {

std::string to_string(HealthState s) {
  switch (s) {
    case HealthState::kOk: return "OK";
    case HealthState::kDegraded: return "DEGRADED";
    case HealthState::kOutage: return "OUTAGE";
    case HealthState::kRecovering: return "RECOVERING";
  }
  return "?";
}

HealthTracker::HealthTracker(HealthConfig cfg) : cfg_(cfg) {}

void HealthTracker::reset() {
  state_ = HealthState::kOk;
  bad_streak_ = verybad_streak_ = good_streak_ = 0;
}

HealthState HealthTracker::step(double valid_fraction) {
  const bool bad = valid_fraction < cfg_.degraded_below;
  const bool verybad = valid_fraction < cfg_.outage_below;
  bad_streak_ = bad ? bad_streak_ + 1 : 0;
  verybad_streak_ = verybad ? verybad_streak_ + 1 : 0;
  good_streak_ = bad ? 0 : good_streak_ + 1;

  switch (state_) {
    case HealthState::kOk:
      if (verybad_streak_ >= cfg_.degrade_days) state_ = HealthState::kOutage;
      else if (bad_streak_ >= cfg_.degrade_days) state_ = HealthState::kDegraded;
      break;
    case HealthState::kDegraded:
      if (verybad_streak_ >= cfg_.degrade_days) state_ = HealthState::kOutage;
      else if (good_streak_ >= cfg_.recover_days) state_ = HealthState::kOk;
      break;
    case HealthState::kOutage:
      // Any day that is no longer in outage territory starts recovery;
      // hysteresis happens in RECOVERING (relapse on one very-bad day).
      if (!verybad) state_ = HealthState::kRecovering;
      break;
    case HealthState::kRecovering:
      if (verybad) state_ = HealthState::kOutage;
      else if (good_streak_ >= cfg_.recover_days) state_ = HealthState::kOk;
      break;
  }
  return state_;
}

bool any_in_state(const HealthSeries& series, int first, int last,
                  HealthState state) {
  const int lo = std::max(first, 0);
  const int hi = std::min<int>(last, static_cast<int>(series.size()) - 1);
  for (int d = lo; d <= hi; ++d)
    if (series[static_cast<std::size_t>(d)] == state) return true;
  return false;
}

}  // namespace leaf::ingest
