#include "ingest/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/events.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace leaf::ingest {

int IngestResult::outage_days(int column) const {
  const auto& series = kpi_health[static_cast<std::size_t>(column)];
  return static_cast<int>(
      std::count(series.begin(), series.end(), HealthState::kOutage));
}

IngestResult ingest_stream(const data::CellularDataset& like,
                           std::vector<TelemetryRecord> stream,
                           const IngestConfig& cfg) {
  LEAF_SPAN("ingest.stream");
  const int num_days = like.num_days();
  const int num_kpis = like.num_kpis();
  const int num_enbs = static_cast<int>(like.profiles().size());
  const std::size_t k = static_cast<std::size_t>(num_kpis);

  IngestResult res{
      data::CellularDataset(like.schema(), like.profiles(), num_days,
                            like.evolving(), like.name() + "-ingested"),
      {}, {}, {}};
  IngestReport& rep = res.report;
  rep.records_in = static_cast<std::int64_t>(stream.size());

  // --- re-sequencing: count late arrivals, re-slot by claimed day ----------
  int max_day_seen = -1;
  for (const TelemetryRecord& r : stream) {
    if (r.day < max_day_seen) ++rep.late_records;
    max_day_seen = std::max(max_day_seen, r.day);
  }
  // Records claiming a day outside the study can never be slotted.
  const auto bad_day = [num_days](const TelemetryRecord& r) {
    return r.day < 0 || r.day >= num_days;
  };
  rep.quarantined_records += static_cast<std::int64_t>(
      std::count_if(stream.begin(), stream.end(), bad_day));
  stream.erase(std::remove_if(stream.begin(), stream.end(), bad_day),
               stream.end());
  std::stable_sort(stream.begin(), stream.end(),
                   [](const TelemetryRecord& a, const TelemetryRecord& b) {
                     return a.day < b.day ||
                            (a.day == b.day && a.enb_index < b.enb_index);
                   });

  // --- plausibility bounds from the leading slice --------------------------
  std::vector<std::vector<double>> reference(k);
  for (const TelemetryRecord& r : stream) {
    if (r.day >= cfg.bounds_fit_days) break;
    for (std::size_t c = 0; c < k && c < r.kpis.size(); ++c)
      reference[c].push_back(static_cast<double>(r.kpis[c]));
  }
  const KpiBounds bounds = fit_bounds(reference, cfg.validator);

  // --- day-by-day validate / impute / track health --------------------------
  Imputer imputer(num_enbs, num_kpis, cfg.validator);
  std::vector<HealthTracker> kpi_tracker(k, HealthTracker(cfg.health));
  std::vector<HealthTracker> enb_tracker(static_cast<std::size_t>(num_enbs),
                                         HealthTracker(cfg.health));
  res.kpi_health.assign(k, HealthSeries(static_cast<std::size_t>(num_days),
                                        HealthState::kOk));
  res.enb_health.assign(static_cast<std::size_t>(num_enbs),
                        HealthSeries(static_cast<std::size_t>(num_days),
                                     HealthState::kOk));
  std::vector<int> last_report_day(static_cast<std::size_t>(num_enbs), -1);

  struct DayRecord {
    const TelemetryRecord* rec = nullptr;  ///< accepted delivery, or null
    std::vector<bool> good;                ///< per-column plausibility
    int good_count = 0;
  };
  std::vector<DayRecord> slots(static_cast<std::size_t>(num_enbs));
  std::vector<int> valid_per_col(k, 0);
  std::vector<double> row(k, 0.0);

  // Health-FSM transitions and per-day quarantine totals feed the
  // structured event log; OUTAGE entries additionally warn on stderr.
  const auto on_transition = [&cfg](int day, const std::string& entity,
                                    HealthState from, HealthState to) {
    if (from == to) return;
    if (cfg.events != nullptr) {
      cfg.events->emit({obs::EventKind::kHealthTransition, day, -1, "", "", "",
                        "entity=" + entity + ",from=" + to_string(from) +
                            ",to=" + to_string(to)});
    }
    if (to == HealthState::kOutage) {
      LEAF_LOG_WARN("ingest: %s entered OUTAGE on day %d", entity.c_str(),
                    day);
    }
  };

  std::size_t pos = 0;
  for (int d = 0; d < num_days; ++d) {
    const std::int64_t q_records_before = rep.quarantined_records;
    const std::int64_t q_values_before = rep.quarantined_values;
    imputer.begin_day(d);
    for (auto& s : slots) s.rec = nullptr;
    std::fill(valid_per_col.begin(), valid_per_col.end(), 0);

    // Pass 1: accept the first delivery per eNodeB, validate values, and
    // feed every plausible value to the imputer (so group-median and the
    // seasonal ring see the full day's cross-section before any imputation).
    bool any_arrival = false;
    while (pos < stream.size() && stream[pos].day == d) {
      const TelemetryRecord& r = stream[pos++];
      if (r.enb_index < 0 || r.enb_index >= num_enbs ||
          r.kpis.size() != k) {
        ++rep.quarantined_records;
        continue;
      }
      any_arrival = true;
      DayRecord& slot = slots[static_cast<std::size_t>(r.enb_index)];
      if (slot.rec != nullptr) {
        ++rep.duplicates_dropped;
        continue;
      }
      slot.rec = &r;
      slot.good.assign(k, false);
      slot.good_count = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double v = static_cast<double>(r.kpis[c]);
        if (bounds.plausible(static_cast<int>(c), v)) {
          slot.good[c] = true;
          ++slot.good_count;
        }
      }
      // Too corrupt to trust any of it: reject wholesale.
      if (static_cast<double>(k - static_cast<std::size_t>(slot.good_count)) >
          cfg.validator.record_reject_fraction * static_cast<double>(k)) {
        slot.rec = nullptr;
        ++rep.quarantined_records;
        continue;
      }
      rep.quarantined_values +=
          static_cast<std::int64_t>(k) - slot.good_count;
      for (std::size_t c = 0; c < k; ++c) {
        if (slot.good[c]) {
          imputer.observe(r.enb_index, static_cast<int>(c),
                          static_cast<double>(r.kpis[c]));
          ++valid_per_col[c];
        }
      }
      last_report_day[static_cast<std::size_t>(r.enb_index)] = d;
    }
    if (!any_arrival) ++rep.days_missing;

    // Pass 2: emit the day — repair partial records, synthesize short gaps.
    std::vector<int> out_enbs;
    std::vector<float> out_values;
    int expected = 0;
    for (int e = 0; e < num_enbs; ++e) {
      const bool installed =
          like.profiles()[static_cast<std::size_t>(e)].install_day <= d;
      if (!installed) {
        res.enb_health[static_cast<std::size_t>(e)][static_cast<std::size_t>(d)] =
            enb_tracker[static_cast<std::size_t>(e)].state();
        continue;
      }
      ++expected;
      DayRecord& slot = slots[static_cast<std::size_t>(e)];
      bool emit = false;
      if (slot.rec != nullptr) {
        emit = true;
        for (std::size_t c = 0; c < k; ++c) {
          if (slot.good[c]) {
            row[c] = static_cast<double>(slot.rec->kpis[c]);
          } else {
            const double v = imputer.impute(e, static_cast<int>(c));
            if (!std::isfinite(v)) { emit = false; break; }
            row[c] = v;
            ++rep.values_imputed;
          }
        }
        if (!emit) ++rep.quarantined_records;  // unrepairable record
      } else if (last_report_day[static_cast<std::size_t>(e)] >= 0 &&
                 d - last_report_day[static_cast<std::size_t>(e)] <=
                     cfg.validator.staleness_cap_days) {
        // Wholly missing but recently seen: synthesize one record.  Long
        // gaps stay honest — the eNodeB simply drops out of the day.
        emit = true;
        for (std::size_t c = 0; c < k; ++c) {
          const double v = imputer.impute(e, static_cast<int>(c));
          if (!std::isfinite(v)) { emit = false; break; }
          row[c] = v;
        }
        if (emit) {
          rep.values_imputed += static_cast<std::int64_t>(k);
          ++rep.records_synthesized;
        }
      }
      if (emit) {
        out_enbs.push_back(e);
        for (std::size_t c = 0; c < k; ++c)
          out_values.push_back(static_cast<float>(row[c]));
        ++rep.records_out;
      }
      const double enb_frac =
          slot.rec != nullptr
              ? static_cast<double>(slot.good_count) / static_cast<double>(k)
              : 0.0;
      const HealthState enb_prev = enb_tracker[static_cast<std::size_t>(e)].state();
      const HealthState enb_now =
          enb_tracker[static_cast<std::size_t>(e)].step(enb_frac);
      res.enb_health[static_cast<std::size_t>(e)][static_cast<std::size_t>(d)] =
          enb_now;
      on_transition(d, "enb:" + std::to_string(e), enb_prev, enb_now);
    }
    res.clean.append_day(std::move(out_enbs), std::move(out_values));

    for (std::size_t c = 0; c < k; ++c) {
      const double frac =
          expected > 0 ? static_cast<double>(valid_per_col[c]) /
                             static_cast<double>(expected)
                       : 0.0;
      const HealthState kpi_prev = kpi_tracker[c].state();
      const HealthState kpi_now = kpi_tracker[c].step(frac);
      res.kpi_health[c][static_cast<std::size_t>(d)] = kpi_now;
      on_transition(d, "kpi:" + std::to_string(c), kpi_prev, kpi_now);
    }

    const std::int64_t q_records = rep.quarantined_records - q_records_before;
    const std::int64_t q_values = rep.quarantined_values - q_values_before;
    if (cfg.events != nullptr && (q_records > 0 || q_values > 0)) {
      cfg.events->emit({obs::EventKind::kQuarantine, d, -1, "", "", "",
                        "records=" + std::to_string(q_records) +
                            ",values=" + std::to_string(q_values)});
    }
  }

  // Registry counters mirror the report so a scrape sees ingest activity
  // without threading IngestReport through; one bulk add per call.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  const auto bulk = [&reg](const char* name, std::int64_t v) {
    if (v > 0) reg.counter(name).inc(static_cast<std::uint64_t>(v));
  };
  bulk("leaf_ingest_records_in_total", rep.records_in);
  bulk("leaf_ingest_records_out_total", rep.records_out);
  bulk("leaf_ingest_late_records_total", rep.late_records);
  bulk("leaf_ingest_duplicates_dropped_total", rep.duplicates_dropped);
  bulk("leaf_ingest_quarantined_values_total", rep.quarantined_values);
  bulk("leaf_ingest_quarantined_records_total", rep.quarantined_records);
  bulk("leaf_ingest_values_imputed_total", rep.values_imputed);
  bulk("leaf_ingest_records_synthesized_total", rep.records_synthesized);
  bulk("leaf_ingest_days_missing_total", rep.days_missing);
  if (rep.quarantined_records > 0 || rep.quarantined_values > 0) {
    LEAF_LOG_WARN(
        "ingest: quarantined %lld records and %lld values out of %lld "
        "(%lld imputed, %lld synthesized)",
        static_cast<long long>(rep.quarantined_records),
        static_cast<long long>(rep.quarantined_values),
        static_cast<long long>(rep.records_in),
        static_cast<long long>(rep.values_imputed),
        static_cast<long long>(rep.records_synthesized));
  }
  return res;
}

}  // namespace leaf::ingest
