#include "ingest/fault.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.hpp"

namespace leaf::ingest {

namespace {

/// Deterministic per-(day, enb) seed, independent of processing order.
std::uint64_t fault_seed(std::uint64_t seed, int day, int enb, int stream) {
  std::uint64_t s = seed;
  s ^= 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(day + 1);
  splitmix64(s);
  s ^= 0xBF58476D1CE4E5B9ULL * static_cast<std::uint64_t>(enb + 2);
  splitmix64(s);
  s ^= static_cast<std::uint64_t>(stream);
  return splitmix64(s);
}

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

/// Corrupts a deterministic subset of columns with `value_fn`.
template <typename Fn>
void corrupt_columns(std::vector<float>& kpis, Rng& rng, double fraction,
                     Fn&& value_fn) {
  const std::size_t k = kpis.size();
  std::size_t touched = 0;
  for (std::size_t c = 0; c < k; ++c) {
    if (rng.bernoulli(fraction)) {
      kpis[c] = value_fn(kpis[c]);
      ++touched;
    }
  }
  if (touched == 0 && k > 0) {  // corrupt at least one column
    const std::size_t c = rng.index(k);
    kpis[c] = value_fn(kpis[c]);
  }
}

}  // namespace

FaultSpec FaultSpec::at_rate(double rate, std::uint64_t seed) {
  FaultSpec spec;
  spec.enb_drop_rate = rate;
  spec.nan_rate = rate;
  spec.spike_rate = rate / 2.0;
  spec.stuck_zero_rate = rate / 2.0;
  spec.duplicate_rate = rate / 2.0;
  spec.shuffle_rate = rate / 2.0;
  spec.day_drop_rate = rate / 4.0;
  spec.seed = seed;
  return spec;
}

std::vector<TelemetryRecord> to_stream(const data::CellularDataset& ds) {
  std::vector<TelemetryRecord> out;
  out.reserve(static_cast<std::size_t>(ds.total_logs()));
  const std::size_t k = static_cast<std::size_t>(ds.num_kpis());
  for (int d = 0; d < ds.num_days(); ++d) {
    const int n = ds.enbs_on_day(d);
    for (int i = 0; i < n; ++i) {
      const auto kpis = ds.log_on_day(d, i);
      out.push_back(TelemetryRecord{
          d, ds.enb_on_day(d, i), std::vector<float>(kpis.begin(), kpis.begin() + static_cast<std::ptrdiff_t>(k))});
    }
  }
  return out;
}

std::vector<TelemetryRecord> inject_faults(const data::CellularDataset& ds,
                                           const FaultSpec& spec) {
  // `order` pairs each surviving record with a delivery key; late arrivals
  // and displaced duplicates get keys ahead of their in-order position.
  struct Keyed {
    double key = 0.0;
    TelemetryRecord rec;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(static_cast<std::size_t>(ds.total_logs()));

  const std::size_t k = static_cast<std::size_t>(ds.num_kpis());
  double position = 0.0;
  for (int d = 0; d < ds.num_days(); ++d) {
    {
      Rng day_rng(fault_seed(spec.seed, d, /*enb=*/-1, /*stream=*/0));
      if (day_rng.bernoulli(spec.day_drop_rate)) continue;  // whole day lost
    }
    const int n = ds.enbs_on_day(d);
    for (int i = 0; i < n; ++i) {
      const int enb = ds.enb_on_day(d, i);
      Rng rng(fault_seed(spec.seed, d, enb, /*stream=*/1));
      position += 1.0;
      if (rng.bernoulli(spec.enb_drop_rate)) continue;  // record lost

      const auto src = ds.log_on_day(d, i);
      TelemetryRecord rec{d, enb,
                          std::vector<float>(src.begin(),
                                             src.begin() + static_cast<std::ptrdiff_t>(k))};

      // Stuck-at-zero: decided per (enb, block) so runs are contiguous.
      if (spec.stuck_zero_rate > 0.0 && spec.stuck_run_days > 0) {
        const int block = d / spec.stuck_run_days;
        Rng block_rng(fault_seed(spec.seed, block, enb, /*stream=*/2));
        if (block_rng.bernoulli(spec.stuck_zero_rate)) {
          corrupt_columns(rec.kpis, block_rng, spec.corrupt_cols_fraction,
                          [](float) { return 0.0f; });
        }
      }
      if (rng.bernoulli(spec.nan_rate)) {
        corrupt_columns(rec.kpis, rng, spec.corrupt_cols_fraction,
                        [](float) { return kNaN; });
      }
      if (rng.bernoulli(spec.spike_rate)) {
        const float mag = static_cast<float>(spec.spike_magnitude);
        corrupt_columns(rec.kpis, rng, spec.corrupt_cols_fraction,
                        [mag](float v) { return v * mag; });
      }
      if (spec.outage_column >= 0 && d >= spec.outage_start &&
          d <= spec.outage_end &&
          spec.outage_column < static_cast<int>(rec.kpis.size())) {
        rec.kpis[static_cast<std::size_t>(spec.outage_column)] = kNaN;
      }

      // Delivery key: in-order position, displaced forward for late
      // arrivals.  Per-day average eNodeB count keeps displacement units in
      // "records", so shuffle_horizon_days days of lateness is realistic.
      double key = position;
      if (rng.bernoulli(spec.shuffle_rate)) {
        const double per_day = static_cast<double>(std::max(1, n));
        key += rng.uniform(1.0, spec.shuffle_horizon_days * per_day);
      }
      const bool duplicate = rng.bernoulli(spec.duplicate_rate);
      if (duplicate) {
        Keyed copy{key + rng.uniform(0.5, 3.0 * std::max(1, n)), rec};
        keyed.push_back(std::move(copy));
      }
      keyed.push_back(Keyed{key, std::move(rec)});
    }
  }

  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) { return a.key < b.key; });
  std::vector<TelemetryRecord> out;
  out.reserve(keyed.size());
  for (auto& kr : keyed) out.push_back(std::move(kr.rec));
  return out;
}

data::CellularDataset rebuild_unvalidated(const data::CellularDataset& like,
                                          std::vector<TelemetryRecord> stream) {
  // Re-slot by claimed day, keep the first delivery of each (day, enb).
  std::stable_sort(stream.begin(), stream.end(),
                   [](const TelemetryRecord& a, const TelemetryRecord& b) {
                     return a.day < b.day ||
                            (a.day == b.day && a.enb_index < b.enb_index);
                   });
  data::CellularDataset out(like.schema(), like.profiles(), like.num_days(),
                            like.evolving(), like.name() + "-unvalidated");
  const std::size_t k = static_cast<std::size_t>(like.num_kpis());
  std::size_t pos = 0;
  for (int d = 0; d < like.num_days(); ++d) {
    std::vector<int> enbs;
    std::vector<float> values;
    int last_enb = -1;
    while (pos < stream.size() && stream[pos].day == d) {
      const TelemetryRecord& r = stream[pos++];
      if (r.enb_index == last_enb) continue;  // duplicate delivery
      last_enb = r.enb_index;
      enbs.push_back(r.enb_index);
      values.insert(values.end(), r.kpis.begin(),
                    r.kpis.begin() + static_cast<std::ptrdiff_t>(k));
    }
    out.append_day(std::move(enbs), std::move(values));
  }
  return out;
}

}  // namespace leaf::ingest
