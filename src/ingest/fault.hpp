// Seeded telemetry fault injector.
//
// Production KPI collection is never as clean as the study datasets: the
// paper itself lives through a six-month PU data-loss window (Jul 2019 –
// Jan 2020), and operational telemetry additionally exhibits per-site
// export failures, counter wrap/overflow spikes, stuck-at-zero counters
// after eNodeB reboots, duplicated deliveries, and late (out-of-order)
// arrivals.  `inject_faults` turns a clean `CellularDataset` into the
// *record stream* such a collection pipeline would deliver, perturbed by
// each of those failure modes at configurable rates.
//
// Every fault decision is keyed on (seed, day, enb) through SplitMix64, so
// the same `FaultSpec` always produces bit-identical streams regardless of
// evaluation order — the property the robustness bench and the ingest
// tests rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace leaf::ingest {

/// One raw telemetry record: a single eNodeB's KPI vector for one day, as
/// delivered (possibly late, duplicated, or corrupted) by the collector.
struct TelemetryRecord {
  int day = 0;        ///< study day the record describes
  int enb_index = 0;  ///< profile index into dataset().profiles()
  std::vector<float> kpis;
};

/// Rates and shapes of the injected failure modes.  All rates are
/// probabilities in [0, 1]; 0 disables the mode.
struct FaultSpec {
  /// Whole-day collection loss: every record of an affected day vanishes.
  double day_drop_rate = 0.0;
  /// Per-record loss (one eNodeB's export fails for one day).
  double enb_drop_rate = 0.0;
  /// Per-record NaN corruption: a random subset of KPI columns becomes NaN.
  double nan_rate = 0.0;
  /// Per-record spike corruption: a random subset of columns is multiplied
  /// by `spike_magnitude` (counter wrap / unit bug).
  double spike_rate = 0.0;
  /// Stuck-at-zero runs: decided per (enb, block of `stuck_run_days`), so
  /// affected counters read zero for a contiguous run of days.
  double stuck_zero_rate = 0.0;
  /// Per-record duplicated delivery (the copy also arrives displaced).
  double duplicate_rate = 0.0;
  /// Per-record late delivery: the record is displaced up to
  /// `shuffle_horizon_days` positions forward in the stream.
  double shuffle_rate = 0.0;

  /// Fraction of KPI columns a NaN / spike corruption touches.
  double corrupt_cols_fraction = 0.25;
  double spike_magnitude = 50.0;
  int stuck_run_days = 10;
  int shuffle_horizon_days = 5;

  /// Declared sensor outage mirroring the paper's PU loss window: column
  /// `outage_column` reads NaN for every eNodeB on days in
  /// [outage_start, outage_end].  -1 disables.
  int outage_column = -1;
  int outage_start = -1;
  int outage_end = -1;

  std::uint64_t seed = 1234;

  /// Convenience preset used by the robustness sweep: record dropout and
  /// NaN corruption at `rate`, spikes/stuck/duplicates/late delivery at
  /// half of it.
  static FaultSpec at_rate(double rate, std::uint64_t seed = 1234);
};

/// Flattens a dataset into its (clean, in-order) record stream.
std::vector<TelemetryRecord> to_stream(const data::CellularDataset& ds);

/// Applies `spec` to the dataset's record stream.  Deterministic in
/// `spec.seed`; the clean dataset is not modified.
std::vector<TelemetryRecord> inject_faults(const data::CellularDataset& ds,
                                           const FaultSpec& spec);

/// Rebuilds a day-major dataset from a record stream *without any
/// validation* — the behaviour of a pipeline with no ingest layer (late
/// records re-slotted by claimed day, duplicates kept first, corrupt
/// values passed through).  The "unguarded" arm of the robustness bench.
data::CellularDataset rebuild_unvalidated(const data::CellularDataset& like,
                                          std::vector<TelemetryRecord> stream);

}  // namespace leaf::ingest
