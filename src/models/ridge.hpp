// Ridge (L2-regularized linear) regression.
//
// Not one of the paper's four families, but included as the cheap linear
// baseline every forecasting study wants for sanity checks, and used by
// the test suite as a fast Regressor implementation.  Solved in closed
// form via Cholesky on the (standardized) normal equations with weights.
#pragma once

#include <memory>

#include "data/features.hpp"
#include "models/regressor.hpp"

namespace leaf::models {

struct RidgeConfig {
  double lambda = 1.0;  ///< L2 strength (applied on standardized features)
};

class Ridge final : public Regressor {
 public:
  explicit Ridge(RidgeConfig cfg = {});

  void fit(const Matrix& X, std::span<const double> y,
           std::span<const double> w = {}) override;
  double predict_one(std::span<const double> x) const override;
  std::unique_ptr<Regressor> clone_untrained() const override;
  std::string name() const override { return "Ridge"; }
  bool trained() const override { return trained_; }

  std::span<const double> coefficients() const { return beta_; }
  double intercept() const { return intercept_; }

  std::string serial_key() const override { return "ridge"; }
  void save(io::Serializer& out) const override;
  static std::unique_ptr<Ridge> load(io::Deserializer& in);

 private:
  RidgeConfig cfg_;
  bool trained_ = false;
  data::Standardizer scaler_;
  std::vector<double> beta_;  // on standardized features
  double intercept_ = 0.0;
};

/// Solves A x = b for symmetric positive-definite A (in-place Cholesky).
/// Returns false when A is not positive definite.  Exposed for tests.
bool cholesky_solve(Matrix& a, std::vector<double>& b);

}  // namespace leaf::models
