#include "models/tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace leaf::models {

BinnedData::BinnedData(const Matrix& X, int max_bins)
    : rows_(X.rows()), cols_(X.cols()) {
  assert(max_bins >= 2 && max_bins <= 256);
  codes_.resize(rows_ * cols_);
  bin_count_.resize(cols_);
  edges_.resize(cols_);

  std::vector<double> col(rows_);
  for (std::size_t c = 0; c < cols_; ++c) {
    for (std::size_t r = 0; r < rows_; ++r) col[r] = X(r, c);
    // Candidate edges from quantiles; deduplicate to handle ties / constant
    // columns.
    std::vector<double> sorted = col;
    std::sort(sorted.begin(), sorted.end());
    std::vector<double>& edges = edges_[c];
    for (int b = 1; b < max_bins; ++b) {
      const double q = static_cast<double>(b) / max_bins;
      const double e =
          sorted[static_cast<std::size_t>(q * static_cast<double>(rows_ - 1))];
      if (edges.empty() || e > edges.back()) edges.push_back(e);
    }
    // An edge at (or above) the column maximum separates nothing: drop it
    // so constant columns yield a single bin and no empty top bins exist.
    while (!edges.empty() && edges.back() >= sorted.back()) edges.pop_back();
    bin_count_[c] = static_cast<int>(edges.size()) + 1;
    // Assign codes: bin = count of edges strictly below value.
    for (std::size_t r = 0; r < rows_; ++r) {
      const auto it = std::lower_bound(edges.begin(), edges.end(), col[r]);
      codes_[c * rows_ + r] = static_cast<std::uint8_t>(it - edges.begin());
    }
  }
}

double BinnedData::threshold(std::size_t col, int b) const {
  // Values with code <= b are <= edges_[col][b] (when it exists); splitting
  // at that edge reproduces the binned partition exactly for training rows.
  const auto& edges = edges_[col];
  assert(b >= 0 && b < static_cast<int>(edges.size()));
  return edges[static_cast<std::size_t>(b)];
}

namespace {

struct BinAcc {
  double sum_w = 0.0;
  double sum_wy = 0.0;
};

}  // namespace

void DecisionTree::fit(const BinnedData& bd, std::span<const double> y,
                       std::span<const double> w,
                       std::span<const std::size_t> rows,
                       const TreeConfig& cfg, Rng& rng) {
  nodes_.clear();
  assert(bd.rows() == y.size());
  assert(w.empty() || w.size() == y.size());

  std::vector<std::size_t> work;
  if (rows.empty()) {
    work.resize(bd.rows());
    std::iota(work.begin(), work.end(), std::size_t{0});
  } else {
    work.assign(rows.begin(), rows.end());
  }
  if (work.empty()) {
    nodes_.push_back(Node{.value = 0.0});
    return;
  }

  const auto weight_of = [&](std::size_t r) {
    return w.empty() ? 1.0 : w[r];
  };

  struct Pending {
    std::int32_t node;
    std::size_t begin, end;  // range in `work`
    int depth;
  };

  nodes_.push_back(Node{});
  std::vector<Pending> stack{{0, 0, work.size(), 0}};

  const std::size_t n_features = bd.cols();
  std::vector<int> feature_pool(n_features);
  std::iota(feature_pool.begin(), feature_pool.end(), 0);
  std::vector<BinAcc> acc;

  while (!stack.empty()) {
    const Pending p = stack.back();
    stack.pop_back();
    Node& node = nodes_[static_cast<std::size_t>(p.node)];

    double sum_w = 0.0, sum_wy = 0.0;
    for (std::size_t i = p.begin; i < p.end; ++i) {
      const std::size_t r = work[i];
      sum_w += weight_of(r);
      sum_wy += weight_of(r) * y[r];
    }
    node.value = sum_w > 0.0 ? sum_wy / sum_w : 0.0;

    const std::size_t n_node = p.end - p.begin;
    if (p.depth >= cfg.max_depth ||
        n_node < 2 * static_cast<std::size_t>(cfg.min_samples_leaf) ||
        sum_w <= 0.0) {
      continue;  // leaf
    }

    // Candidate features for this split.
    int n_candidates = cfg.features_per_split > 0
                           ? std::min<int>(cfg.features_per_split,
                                           static_cast<int>(n_features))
                           : static_cast<int>(n_features);
    if (n_candidates < static_cast<int>(n_features)) {
      // Partial Fisher–Yates over the shared pool.
      for (int i = 0; i < n_candidates; ++i) {
        const std::size_t j =
            static_cast<std::size_t>(i) + rng.index(n_features - static_cast<std::size_t>(i));
        std::swap(feature_pool[static_cast<std::size_t>(i)], feature_pool[j]);
      }
    }

    double best_gain = cfg.min_gain;
    int best_feature = -1;
    int best_bin = -1;
    const double parent_score = sum_wy * sum_wy / sum_w;

    for (int fc = 0; fc < n_candidates; ++fc) {
      const std::size_t f = static_cast<std::size_t>(feature_pool[static_cast<std::size_t>(fc)]);
      const int nb = bd.num_bins(f);
      if (nb < 2) continue;
      acc.assign(static_cast<std::size_t>(nb), BinAcc{});
      int lo_bin = nb, hi_bin = -1;
      for (std::size_t i = p.begin; i < p.end; ++i) {
        const std::size_t r = work[i];
        const int b = bd.bin(r, f);
        acc[static_cast<std::size_t>(b)].sum_w += weight_of(r);
        acc[static_cast<std::size_t>(b)].sum_wy += weight_of(r) * y[r];
        lo_bin = std::min(lo_bin, b);
        hi_bin = std::max(hi_bin, b);
      }
      if (lo_bin >= hi_bin) continue;  // constant within node

      if (cfg.random_thresholds) {
        // Extra-Trees: a single uniformly random cut in [lo_bin, hi_bin).
        const int b = lo_bin + static_cast<int>(rng.index(
                                   static_cast<std::size_t>(hi_bin - lo_bin)));
        double lw = 0.0, lwy = 0.0;
        for (int bb = lo_bin; bb <= b; ++bb) {
          lw += acc[static_cast<std::size_t>(bb)].sum_w;
          lwy += acc[static_cast<std::size_t>(bb)].sum_wy;
        }
        const double rw = sum_w - lw, rwy = sum_wy - lwy;
        if (lw <= 0.0 || rw <= 0.0) continue;
        const double gain =
            lwy * lwy / lw + rwy * rwy / rw - parent_score;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          best_bin = b;
        }
      } else {
        // Exhaustive scan over cut positions.
        double lw = 0.0, lwy = 0.0;
        for (int b = lo_bin; b < hi_bin; ++b) {
          lw += acc[static_cast<std::size_t>(b)].sum_w;
          lwy += acc[static_cast<std::size_t>(b)].sum_wy;
          const double rw = sum_w - lw, rwy = sum_wy - lwy;
          if (lw <= 0.0 || rw <= 0.0) continue;
          const double gain = lwy * lwy / lw + rwy * rwy / rw - parent_score;
          if (gain > best_gain) {
            best_gain = gain;
            best_feature = static_cast<int>(f);
            best_bin = b;
          }
        }
      }
    }

    if (best_feature < 0) continue;  // no useful split -> leaf

    // Partition `work[p.begin, p.end)` by the chosen split.
    const std::size_t f = static_cast<std::size_t>(best_feature);
    auto mid_it = std::stable_partition(
        work.begin() + static_cast<std::ptrdiff_t>(p.begin),
        work.begin() + static_cast<std::ptrdiff_t>(p.end),
        [&](std::size_t r) { return bd.bin(r, f) <= best_bin; });
    const std::size_t mid =
        static_cast<std::size_t>(mid_it - work.begin());
    if (mid == p.begin || mid == p.end) continue;  // degenerate
    if (mid - p.begin < static_cast<std::size_t>(cfg.min_samples_leaf) ||
        p.end - mid < static_cast<std::size_t>(cfg.min_samples_leaf)) {
      continue;
    }

    const std::int32_t left = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(Node{});
    const std::int32_t right = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(Node{});
    // `node` reference may be invalidated by push_back; re-index.
    Node& nd = nodes_[static_cast<std::size_t>(p.node)];
    nd.feature = best_feature;
    nd.threshold = bd.threshold(f, best_bin);
    nd.left = left;
    nd.right = right;
    stack.push_back({left, p.begin, mid, p.depth + 1});
    stack.push_back({right, mid, p.end, p.depth + 1});
  }
}

double DecisionTree::predict_one(std::span<const double> x) const {
  assert(trained());
  std::size_t i = 0;
  for (;;) {
    const Node& n = nodes_[i];
    if (n.feature < 0) return n.value;
    const double v = x[static_cast<std::size_t>(n.feature)];
    i = static_cast<std::size_t>(v <= n.threshold ? n.left : n.right);
  }
}

int DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the explicit node structure.
  std::vector<std::pair<std::size_t, int>> stack{{0, 1}};
  int best = 0;
  while (!stack.empty()) {
    auto [i, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const Node& n = nodes_[i];
    if (n.feature >= 0) {
      stack.push_back({static_cast<std::size_t>(n.left), d + 1});
      stack.push_back({static_cast<std::size_t>(n.right), d + 1});
    }
  }
  return best;
}

}  // namespace leaf::models
