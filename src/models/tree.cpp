#include "models/tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "obs/metrics.hpp"
#include "par/parallel.hpp"
#include "simd/simd.hpp"

namespace leaf::models {

namespace {
// Bin-edge cache outcome counters (retrain-scoped cache, see BinEdgeCache).
obs::Counter& binedge_ctr(const char* outcome) {
  return obs::MetricsRegistry::global().counter(
      "leaf_cache_binedge_total", obs::label("outcome", outcome));
}
}  // namespace

BinnedData::BinnedData(const Matrix& X, int max_bins, BinEdgeCache* cache)
    : rows_(X.rows()), cols_(X.cols()) {
  assert(max_bins >= 2 && max_bins <= 256);
  codes_.resize(rows_ * cols_);
  bin_count_.resize(cols_);
  edges_.resize(cols_);

  if (cache != nullptr &&
      (cache->max_bins_ != max_bins || cache->cols_.size() != cols_)) {
    cache->cols_.assign(cols_, {});
    cache->max_bins_ = max_bins;
  }

  std::vector<std::size_t> occupancy;
  for (std::size_t c = 0; c < cols_; ++c) {
    // Contiguous column from the lazily built column-major mirror — one
    // O(rows*cols) transpose for the whole binning instead of a strided
    // gather per column.  BinnedData is built from sequential code (tree
    // fits), which is where the lazy rebuild is allowed to happen.
    const std::span<const double> col = X.col_view(c);
    double lo = col[0], hi = col[0];
    for (double v : col) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }

    std::vector<double>& edges = edges_[c];
    BinEdgeCache::ColState* st =
        cache != nullptr ? &cache->cols_[c] : nullptr;

    // Assigns codes (bin = count of edges strictly below value) for the
    // current `edges` and returns the occupancy imbalance: the largest
    // bin's share of rows over the ideal uniform share (>= 1).
    const auto assign_codes = [&]() -> double {
      const std::size_t nb = edges.size() + 1;
      occupancy.assign(nb, 0);
      for (std::size_t r = 0; r < rows_; ++r) {
        const auto it = std::lower_bound(edges.begin(), edges.end(), col[r]);
        const auto code = static_cast<std::uint8_t>(it - edges.begin());
        codes_[c * rows_ + r] = code;
        ++occupancy[code];
      }
      const std::size_t worst =
          *std::max_element(occupancy.begin(), occupancy.end());
      return static_cast<double>(worst * nb) / static_cast<double>(rows_);
    };
    // Cached edges (reused or extended) are only kept if their occupancy
    // on the new column stays within 2x of their build-time balance;
    // beyond that the distribution has shifted under them and stale
    // quantiles would starve the split search of resolution.
    const auto still_balanced = [&] {
      return assign_codes() <= 2.0 * st->imbalance;
    };

    bool built = false;
    if (st != nullptr && st->valid && lo >= st->lo && hi <= st->hi) {
      // Previous edges still cover the column's range: reuse, skipping
      // the per-column sort entirely.
      edges = st->edges;
      if (still_balanced()) {
        ++cache->reused_;
        static obs::Counter& ctr = binedge_ctr("reused");
        ctr.inc();
        built = true;
      }
    } else if (st != nullptr && st->valid && lo >= st->lo && hi > st->hi &&
               static_cast<int>(st->edges.size()) < max_bins - 1) {
      // Range grew upward (the common case for sliding training windows):
      // keep the old edges and extend with quantiles of the new tail,
      // spending the remaining edge budget proportionally to its mass.
      std::vector<double> tail;
      for (double v : col) {
        if (v > st->hi) tail.push_back(v);
      }
      if (!tail.empty()) {
        std::sort(tail.begin(), tail.end());
        const std::size_t budget =
            static_cast<std::size_t>(max_bins - 1) - st->edges.size();
        const std::size_t want = std::max<std::size_t>(
            1, static_cast<std::size_t>(max_bins) * tail.size() / rows_);
        const std::size_t extra = std::min(budget, want);
        edges = st->edges;
        for (std::size_t b = 1; b <= extra; ++b) {
          const double q =
              static_cast<double>(b) / static_cast<double>(extra + 1);
          const double e = tail[static_cast<std::size_t>(
              q * static_cast<double>(tail.size() - 1))];
          if (edges.empty() || e > edges.back()) edges.push_back(e);
        }
        while (!edges.empty() && edges.back() >= hi) edges.pop_back();
        if (still_balanced()) {
          st->edges = edges;
          st->hi = hi;
          ++cache->extended_;
          static obs::Counter& ctr = binedge_ctr("extended");
          ctr.inc();
          built = true;
        }
      }
    }
    if (!built) {
      // Fresh derivation: candidate edges from quantiles; deduplicate to
      // handle ties / constant columns.
      std::vector<double> sorted(col.begin(), col.end());
      std::sort(sorted.begin(), sorted.end());
      edges.clear();
      for (int b = 1; b < max_bins; ++b) {
        const double q = static_cast<double>(b) / max_bins;
        const double e = sorted[static_cast<std::size_t>(
            q * static_cast<double>(rows_ - 1))];
        if (edges.empty() || e > edges.back()) edges.push_back(e);
      }
      // An edge at (or above) the column maximum separates nothing: drop
      // it so constant columns yield a single bin and no empty top bins
      // exist.
      while (!edges.empty() && edges.back() >= sorted.back()) edges.pop_back();
      const double imbalance = assign_codes();
      if (st != nullptr) {
        st->edges = edges;
        st->lo = lo;
        st->hi = hi;
        st->imbalance = imbalance;  // staleness is judged against this
        st->valid = true;
        ++cache->rebuilt_;
        static obs::Counter& ctr = binedge_ctr("rebuilt");
        ctr.inc();
      }
    }
    bin_count_[c] = static_cast<int>(edges.size()) + 1;
  }
}

double BinnedData::threshold(std::size_t col, int b) const {
  // Values with code <= b are <= edges_[col][b] (when it exists); splitting
  // at that edge reproduces the binned partition exactly for training rows.
  const auto& edges = edges_[col];
  assert(b >= 0 && b < static_cast<int>(edges.size()));
  return edges[static_cast<std::size_t>(b)];
}

namespace {

/// Below this many node rows the per-feature split scan stays serial: the
/// chunk dispatch would cost more than the histogram work it distributes.
/// The cutoff only gates *whether* the pool is used, never the result.
constexpr std::size_t kParallelNodeRows = 2048;

/// SoA histogram accumulators for one candidate feature, sized on demand
/// and filled by simd::hist_accumulate.
struct HistScratch {
  std::vector<double> sum_w;
  std::vector<double> sum_wy;
};

}  // namespace

void DecisionTree::fit(const BinnedData& bd, std::span<const double> y,
                       std::span<const double> w,
                       std::span<const std::size_t> rows,
                       const TreeConfig& cfg, Rng& rng) {
  nodes_.clear();
  assert(bd.rows() == y.size());
  assert(w.empty() || w.size() == y.size());

  std::vector<std::size_t> work;
  if (rows.empty()) {
    work.resize(bd.rows());
    std::iota(work.begin(), work.end(), std::size_t{0});
  } else {
    work.assign(rows.begin(), rows.end());
  }
  if (work.empty()) {
    nodes_.push_back(Node{.value = 0.0});
    return;
  }

  const auto weight_of = [&](std::size_t r) {
    return w.empty() ? 1.0 : w[r];
  };

  struct Pending {
    std::int32_t node;
    std::size_t begin, end;  // range in `work`
    int depth;
  };

  nodes_.push_back(Node{});
  std::vector<Pending> stack{{0, 0, work.size(), 0}};

  const std::size_t n_features = bd.cols();
  std::vector<int> feature_pool(n_features);
  std::iota(feature_pool.begin(), feature_pool.end(), 0);
  HistScratch acc;

  // Per-node SoA gather: node_w[i] / node_wy[i] are the weight and
  // weight*target of the i-th row of the current node range.  Gathered
  // once per node and shared (read-only) by every candidate feature's
  // histogram build, instead of recomputing weight_of(r) * y[r] per
  // feature as the old loop did.
  std::vector<double> node_w, node_wy;

  // Best cut of one candidate feature within one node; gain <= min_gain
  // means no usable cut.  Pure function of the node range and the
  // pre-drawn random bits, so candidates can be scanned in any order / on
  // any thread with identical results.
  struct FeatureSplit {
    double gain;
    int bin;
  };
  const auto scan_feature = [&](std::size_t f, std::uint64_t rand_bits,
                                std::size_t begin, std::size_t end,
                                double sum_w, double sum_wy,
                                double parent_score,
                                HistScratch& bins) -> FeatureSplit {
    FeatureSplit best{cfg.min_gain, -1};
    const int nb = bd.num_bins(f);
    if (nb < 2) return best;
    const std::size_t n = end - begin;
    bins.sum_w.resize(static_cast<std::size_t>(nb));
    bins.sum_wy.resize(static_cast<std::size_t>(nb));
    const simd::HistBounds hb = simd::hist_accumulate(
        bd.codes_col(f), work.data() + begin, node_w.data(), node_wy.data(),
        n, nb, bins.sum_w.data(), bins.sum_wy.data());
    const int lo_bin = hb.lo_bin, hi_bin = hb.hi_bin;
    if (lo_bin >= hi_bin) return best;  // constant within node

    if (cfg.random_thresholds) {
      // Extra-Trees: a single uniformly random cut in [lo_bin, hi_bin),
      // taken from the candidate's pre-drawn bits.
      const int b = lo_bin + static_cast<int>(
                                 rand_bits %
                                 static_cast<std::uint64_t>(hi_bin - lo_bin));
      double lw = 0.0, lwy = 0.0;
      for (int bb = lo_bin; bb <= b; ++bb) {
        lw += bins.sum_w[static_cast<std::size_t>(bb)];
        lwy += bins.sum_wy[static_cast<std::size_t>(bb)];
      }
      const double rw = sum_w - lw, rwy = sum_wy - lwy;
      if (lw <= 0.0 || rw <= 0.0) return best;
      const double gain = lwy * lwy / lw + rwy * rwy / rw - parent_score;
      if (gain > best.gain) best = {gain, b};
    } else {
      // Exhaustive scan over cut positions.
      double lw = 0.0, lwy = 0.0;
      for (int b = lo_bin; b < hi_bin; ++b) {
        lw += bins.sum_w[static_cast<std::size_t>(b)];
        lwy += bins.sum_wy[static_cast<std::size_t>(b)];
        const double rw = sum_w - lw, rwy = sum_wy - lwy;
        if (lw <= 0.0 || rw <= 0.0) continue;
        const double gain = lwy * lwy / lw + rwy * rwy / rw - parent_score;
        if (gain > best.gain) best = {gain, b};
      }
    }
    return best;
  };

  std::vector<std::uint64_t> rand_bits;
  std::vector<FeatureSplit> cands;

  while (!stack.empty()) {
    const Pending p = stack.back();
    stack.pop_back();
    Node& node = nodes_[static_cast<std::size_t>(p.node)];

    const std::size_t n_node = p.end - p.begin;
    node_w.resize(n_node);
    node_wy.resize(n_node);
    for (std::size_t i = 0; i < n_node; ++i) {
      const std::size_t r = work[p.begin + i];
      node_w[i] = weight_of(r);
      node_wy[i] = node_w[i] * y[r];
    }
    // Node totals stay a sequential reduction on purpose: they feed leaf
    // values and split gains directly, and reassociating this sum (e.g.
    // through the lane-tree simd::sum) measurably perturbs grown trees.
    double sum_w = 0.0, sum_wy = 0.0;
    for (std::size_t i = 0; i < n_node; ++i) {
      sum_w += node_w[i];
      sum_wy += node_wy[i];
    }
    node.value = sum_w > 0.0 ? sum_wy / sum_w : 0.0;
    if (p.depth >= cfg.max_depth ||
        n_node < 2 * static_cast<std::size_t>(cfg.min_samples_leaf) ||
        sum_w <= 0.0) {
      continue;  // leaf
    }

    // Candidate features for this split.
    int n_candidates = cfg.features_per_split > 0
                           ? std::min<int>(cfg.features_per_split,
                                           static_cast<int>(n_features))
                           : static_cast<int>(n_features);
    if (n_candidates < static_cast<int>(n_features)) {
      // Partial Fisher–Yates over the shared pool.
      for (int i = 0; i < n_candidates; ++i) {
        const std::size_t j =
            static_cast<std::size_t>(i) + rng.index(n_features - static_cast<std::size_t>(i));
        std::swap(feature_pool[static_cast<std::size_t>(i)], feature_pool[j]);
      }
    }
    const std::size_t nc = static_cast<std::size_t>(n_candidates);
    const double parent_score = sum_wy * sum_wy / sum_w;

    // Extra-Trees cut randomness is pre-drawn per candidate, in candidate
    // order, so the scan below touches no shared generator state.
    if (cfg.random_thresholds) {
      rand_bits.resize(nc);
      for (auto& rb : rand_bits) rb = rng();
    }

    // Histogram + cut search per candidate feature: the per-tree hot loop.
    // Parallel for big nodes (the top of the tree dominates fit time),
    // serial below the cutoff where chunk overhead would exceed the work;
    // both paths produce identical FeatureSplit values.
    cands.assign(nc, FeatureSplit{cfg.min_gain, -1});
    if (n_node >= kParallelNodeRows && nc >= 2) {
      par::parallel_for_chunks(nc, [&](std::size_t cb, std::size_t ce) {
        HistScratch bins;  // per-chunk scratch
        for (std::size_t fc = cb; fc < ce; ++fc) {
          cands[fc] = scan_feature(
              static_cast<std::size_t>(feature_pool[fc]),
              cfg.random_thresholds ? rand_bits[fc] : 0, p.begin, p.end,
              sum_w, sum_wy, parent_score, bins);
        }
      });
    } else {
      for (std::size_t fc = 0; fc < nc; ++fc) {
        cands[fc] = scan_feature(static_cast<std::size_t>(feature_pool[fc]),
                                 cfg.random_thresholds ? rand_bits[fc] : 0,
                                 p.begin, p.end, sum_w, sum_wy, parent_score,
                                 acc);
      }
    }

    // Ordered reduction in candidate order (strictly-greater keeps the
    // earliest maximum, matching the historical serial scan).
    double best_gain = cfg.min_gain;
    int best_feature = -1;
    int best_bin = -1;
    for (std::size_t fc = 0; fc < nc; ++fc) {
      if (cands[fc].gain > best_gain) {
        best_gain = cands[fc].gain;
        best_feature = feature_pool[fc];
        best_bin = cands[fc].bin;
      }
    }

    if (best_feature < 0) continue;  // no useful split -> leaf

    // Partition `work[p.begin, p.end)` by the chosen split.
    const std::size_t f = static_cast<std::size_t>(best_feature);
    auto mid_it = std::stable_partition(
        work.begin() + static_cast<std::ptrdiff_t>(p.begin),
        work.begin() + static_cast<std::ptrdiff_t>(p.end),
        [&](std::size_t r) { return bd.bin(r, f) <= best_bin; });
    const std::size_t mid =
        static_cast<std::size_t>(mid_it - work.begin());
    if (mid == p.begin || mid == p.end) continue;  // degenerate
    if (mid - p.begin < static_cast<std::size_t>(cfg.min_samples_leaf) ||
        p.end - mid < static_cast<std::size_t>(cfg.min_samples_leaf)) {
      continue;
    }

    const std::int32_t left = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(Node{});
    const std::int32_t right = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(Node{});
    // `node` reference may be invalidated by push_back; re-index.
    Node& nd = nodes_[static_cast<std::size_t>(p.node)];
    nd.feature = best_feature;
    nd.threshold = bd.threshold(f, best_bin);
    nd.left = left;
    nd.right = right;
    stack.push_back({left, p.begin, mid, p.depth + 1});
    stack.push_back({right, mid, p.end, p.depth + 1});
  }
}

double DecisionTree::predict_one(std::span<const double> x) const {
  assert(trained());
  std::size_t i = 0;
  for (;;) {
    const Node& n = nodes_[i];
    if (n.feature < 0) return n.value;
    const double v = x[static_cast<std::size_t>(n.feature)];
    i = static_cast<std::size_t>(v <= n.threshold ? n.left : n.right);
  }
}

int DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the explicit node structure.
  std::vector<std::pair<std::size_t, int>> stack{{0, 1}};
  int best = 0;
  while (!stack.empty()) {
    auto [i, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const Node& n = nodes_[i];
    if (n.feature >= 0) {
      stack.push_back({static_cast<std::size_t>(n.left), d + 1});
      stack.push_back({static_cast<std::size_t>(n.right), d + 1});
    }
  }
  return best;
}

void save_tree_config(io::Serializer& out, const TreeConfig& cfg) {
  out.put_i32(cfg.max_depth);
  out.put_i32(cfg.min_samples_leaf);
  out.put_f64(cfg.min_gain);
  out.put_i32(cfg.features_per_split);
  out.put_bool(cfg.random_thresholds);
}

TreeConfig load_tree_config(io::Deserializer& in) {
  TreeConfig cfg;
  cfg.max_depth = in.get_i32();
  cfg.min_samples_leaf = in.get_i32();
  cfg.min_gain = in.get_f64();
  cfg.features_per_split = in.get_i32();
  cfg.random_thresholds = in.get_bool();
  return cfg;
}

void DecisionTree::save(io::Serializer& out) const {
  out.put_u64(nodes_.size());
  for (const Node& n : nodes_) {
    out.put_i32(n.feature);
    out.put_f64(n.threshold);
    out.put_i32(n.left);
    out.put_i32(n.right);
    out.put_f64(n.value);
  }
}

DecisionTree DecisionTree::load(io::Deserializer& in) {
  const std::size_t count = in.get_count(4 + 8 + 4 + 4 + 8);
  DecisionTree t;
  t.nodes_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    Node& n = t.nodes_[i];
    n.feature = in.get_i32();
    n.threshold = in.get_f64();
    n.left = in.get_i32();
    n.right = in.get_i32();
    n.value = in.get_f64();
    if (n.feature >= 0) {
      const auto limit = static_cast<std::int32_t>(count);
      if (n.left < 0 || n.left >= limit || n.right < 0 || n.right >= limit)
        throw io::SnapshotError("decision tree child index out of range");
    }
  }
  return t;
}

void BinEdgeCache::save(io::Serializer& out) const {
  out.put_i32(max_bins_);
  out.put_u64(reused_);
  out.put_u64(extended_);
  out.put_u64(rebuilt_);
  out.put_u64(cols_.size());
  for (const ColState& st : cols_) {
    out.put_doubles(st.edges);
    out.put_f64(st.lo);
    out.put_f64(st.hi);
    out.put_f64(st.imbalance);
    out.put_bool(st.valid);
  }
}

void BinEdgeCache::load(io::Deserializer& in) {
  max_bins_ = in.get_i32();
  reused_ = in.get_u64();
  extended_ = in.get_u64();
  rebuilt_ = in.get_u64();
  const std::size_t count = in.get_count(8 + 8 + 8 + 8 + 1);
  cols_.assign(count, ColState{});
  for (ColState& st : cols_) {
    st.edges = in.get_doubles();
    st.lo = in.get_f64();
    st.hi = in.get_f64();
    st.imbalance = in.get_f64();
    st.valid = in.get_bool();
  }
}

}  // namespace leaf::models
