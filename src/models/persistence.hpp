// Persistence (scaled last-value) forecaster.
//
// Naming note: "persistence" here is the forecasting-literature term for
// the carry-the-last-value-forward baseline — it has nothing to do with
// saving state to disk.  Model/detector/scheme *persistence* in the
// storage sense lives in `leaf::io` (src/io/snapshot.hpp); this class is
// just another Regressor.
//
// The trivial baseline every forecasting study should be measured against:
// predict the target 180 days ahead as the target's *current* value times
// a single fitted growth ratio.  fit() estimates that ratio as the
// weighted mean of y / x_target over the training pairs; predict() reads
// the target's history column and scales it.  Any learned model that
// cannot beat this is not learning anything beyond the trend.
#pragma once

#include <memory>

#include "models/regressor.hpp"

namespace leaf::models {

class Persistence final : public Regressor {
 public:
  /// `target_column` is the feature column holding the target KPI's own
  /// history (column 0..5 for the six targets; see data::Featurizer).
  explicit Persistence(int target_column);

  void fit(const Matrix& X, std::span<const double> y,
           std::span<const double> w = {}) override;
  double predict_one(std::span<const double> x) const override;
  std::unique_ptr<Regressor> clone_untrained() const override;
  std::string name() const override { return "Persistence"; }
  bool trained() const override { return trained_; }

  double ratio() const { return ratio_; }

  std::string serial_key() const override { return "persistence"; }
  void save(io::Serializer& out) const override;
  static std::unique_ptr<Persistence> load(io::Deserializer& in);

 private:
  int target_column_;
  bool trained_ = false;
  double ratio_ = 1.0;
  double fallback_ = 0.0;  ///< mean target, used when history is ~0
};

}  // namespace leaf::models
