// LSTM regressor — the paper's recurrent family (§3.1).
//
// A single-layer LSTM with a dense head, trained with truncated BPTT and
// Adam on squared loss.  Because LEAF feeds all models the same tabular
// feature rows (the full KPI log of the feature day), the LSTM consumes
// each row as a *pseudo-sequence*: the standardized feature vector is
// chunked into fixed-size timesteps and scanned recurrently.  This keeps
// the Regressor interface uniform while preserving what matters for the
// reproduction — a gradient-trained recurrent model family whose response
// to drift mitigation differs from the tree ensembles (Table 4's LSTM
// rows).  The substitution is documented in DESIGN.md.
//
// Everything (weights, Adam moments, shuffling) is deterministic in the
// configured seed.
#pragma once

#include <memory>

#include "data/features.hpp"
#include "models/regressor.hpp"

namespace leaf::models {

struct LstmConfig {
  int hidden = 16;       ///< hidden state width
  int chunk = 16;        ///< features per pseudo-timestep
  int epochs = 30;
  int batch = 32;
  double learning_rate = 0.01;
  double grad_clip = 5.0;  ///< global-norm clip
  std::uint64_t seed = 1;
};

class Lstm final : public Regressor {
 public:
  explicit Lstm(LstmConfig cfg = {});

  void fit(const Matrix& X, std::span<const double> y,
           std::span<const double> w = {}) override;
  double predict_one(std::span<const double> x) const override;
  std::unique_ptr<Regressor> clone_untrained() const override;
  std::string name() const override { return "LSTM"; }
  bool trained() const override { return trained_; }

  /// Mean squared training error (standardized target units) of the final
  /// epoch; exposed for convergence tests.
  double final_train_mse() const { return final_mse_; }

  std::string serial_key() const override { return "lstm"; }
  void save(io::Serializer& out) const override;
  static std::unique_ptr<Lstm> load(io::Deserializer& in);

 private:
  struct Workspace;
  /// Forward pass; fills the workspace when provided (training) and
  /// returns the standardized prediction.
  double forward(std::span<const double> z, Workspace* ws) const;

  LstmConfig cfg_;
  bool trained_ = false;
  int timesteps_ = 0;

  data::Standardizer scaler_;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  double final_mse_ = 0.0;

  // Parameters, gate order [i, f, g, o] stacked along the first axis.
  Matrix wx_;  // 4H x chunk
  Matrix wh_;  // 4H x H
  std::vector<double> b_;   // 4H
  std::vector<double> wo_;  // H
  double bo_ = 0.0;
};

}  // namespace leaf::models
