#include "models/gbdt.hpp"

#include <cassert>
#include <cmath>
#include <numeric>

#include "obs/metrics.hpp"
#include "par/parallel.hpp"

namespace leaf::models {

GbdtConfig GbdtConfig::catboost_like(int num_trees, std::uint64_t seed) {
  GbdtConfig c;
  c.num_trees = num_trees;
  c.learning_rate = 0.1;
  c.row_subsample = 0.85;
  c.tree.max_depth = 6;
  c.tree.min_samples_leaf = 3;
  c.tree.features_per_split = -1;
  c.seed = seed;
  return c;
}

GbdtConfig GbdtConfig::lightgbm_like(int num_trees, std::uint64_t seed) {
  GbdtConfig c;
  c.num_trees = num_trees;
  c.learning_rate = 0.08;
  c.row_subsample = 0.7;
  c.tree.max_depth = 8;
  c.tree.min_samples_leaf = 5;
  // LightGBM-style column sampling: consider a subset per split.
  c.tree.features_per_split = 0;  // resolved to sqrt at fit time
  c.seed = seed;
  return c;
}

Gbdt::Gbdt(GbdtConfig cfg, std::string display_name)
    : cfg_(cfg), name_(std::move(display_name)) {}

void Gbdt::fit(const Matrix& X, std::span<const double> y,
               std::span<const double> w) {
  LEAF_SPAN("fit.GBDT");
  static obs::Counter& fits_ctr = obs::MetricsRegistry::global().counter(
      "leaf_model_fits_total", obs::label("family", "GBDT"));
  fits_ctr.inc();
  trained_ = false;
  trees_.clear();
  if (!check_fit_args(X, y, w)) return;

  Rng rng(cfg_.seed);
  const std::size_t n = X.rows();

  TreeConfig tree_cfg = cfg_.tree;
  if (tree_cfg.features_per_split == 0) {
    tree_cfg.features_per_split = std::max<int>(
        1, static_cast<int>(std::sqrt(static_cast<double>(X.cols())) * 2.0));
  }

  const BinnedData bd(X, 64,
                      caches_ != nullptr ? &caches_->bin_edges : nullptr);

  // F0: weighted mean.
  double sw = 0.0, swy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double wi = w.empty() ? 1.0 : w[i];
    sw += wi;
    swy += wi * y[i];
  }
  base_ = sw > 0.0 ? swy / sw : 0.0;

  std::vector<double> pred(n, base_);
  std::vector<double> residual(n);
  const std::size_t subsample =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   cfg_.row_subsample * static_cast<double>(n)));

  trees_.reserve(static_cast<std::size_t>(cfg_.num_trees));
  for (int t = 0; t < cfg_.num_trees; ++t) {
    for (std::size_t i = 0; i < n; ++i) residual[i] = y[i] - pred[i];

    std::vector<std::size_t> rows =
        subsample < n ? rng.sample_without_replacement(n, subsample)
                      : std::vector<std::size_t>{};

    DecisionTree tree;
    tree.fit(bd, residual, w, rows, tree_cfg, rng);
    if (!tree.trained()) break;

    // Per-row prediction refresh: rows are independent and land in
    // per-row slots, so this is thread-count-invariant.
    par::parallel_for(n, [&](std::size_t i) {
      pred[i] += cfg_.learning_rate * tree.predict_one(X.row(i));
    });
    trees_.push_back(std::move(tree));
  }
  trained_ = true;
}

double Gbdt::predict_one(std::span<const double> x) const {
  assert(trained_);
  double out = base_;
  for (const auto& tree : trees_) out += cfg_.learning_rate * tree.predict_one(x);
  return out;
}

std::unique_ptr<Regressor> Gbdt::clone_untrained() const {
  return std::make_unique<Gbdt>(cfg_, name_);
}

void Gbdt::save(io::Serializer& out) const {
  out.put_string(name_);
  out.put_i32(cfg_.num_trees);
  out.put_f64(cfg_.learning_rate);
  out.put_f64(cfg_.row_subsample);
  save_tree_config(out, cfg_.tree);
  out.put_u64(cfg_.seed);
  out.put_bool(trained_);
  out.put_f64(base_);
  out.put_u64(trees_.size());
  for (const auto& tree : trees_) tree.save(out);
}

std::unique_ptr<Gbdt> Gbdt::load(io::Deserializer& in) {
  const std::string display_name = in.get_string();
  GbdtConfig cfg;
  cfg.num_trees = in.get_i32();
  cfg.learning_rate = in.get_f64();
  cfg.row_subsample = in.get_f64();
  cfg.tree = load_tree_config(in);
  cfg.seed = in.get_u64();
  auto model = std::make_unique<Gbdt>(cfg, display_name);
  model->trained_ = in.get_bool();
  model->base_ = in.get_f64();
  const std::size_t count = in.get_count(8);  // >= node-count word per tree
  model->trees_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    model->trees_.push_back(DecisionTree::load(in));
  return model;
}

}  // namespace leaf::models
