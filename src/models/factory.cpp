#include "models/factory.hpp"

#include "models/ensemble.hpp"
#include "models/forest.hpp"
#include "models/gbdt.hpp"
#include "models/knn.hpp"
#include "models/lstm.hpp"
#include "models/persistence.hpp"
#include "models/ridge.hpp"

namespace leaf::models {

std::string to_string(ModelFamily f) {
  switch (f) {
    case ModelFamily::kGbdt: return "GBDT";
    case ModelFamily::kLightGbdt: return "LightGBDT";
    case ModelFamily::kRandomForest: return "RandomForest";
    case ModelFamily::kExtraTrees: return "ExtraTrees";
    case ModelFamily::kKnn: return "KNeighbors";
    case ModelFamily::kLstm: return "LSTM";
    case ModelFamily::kRidge: return "Ridge";
  }
  return "?";
}

std::string paper_name(ModelFamily f) {
  switch (f) {
    case ModelFamily::kGbdt: return "CatBoost*";
    case ModelFamily::kLightGbdt: return "LightGBM*";
    case ModelFamily::kRandomForest: return "RandomForest*";
    case ModelFamily::kExtraTrees: return "ExtraTrees*";
    case ModelFamily::kKnn: return "KNeighbors*";
    case ModelFamily::kLstm: return "LSTM*";
    case ModelFamily::kRidge: return "Ridge";
  }
  return "?";
}

bool parse_model_family(const std::string& name, ModelFamily& out) {
  for (ModelFamily f :
       {ModelFamily::kGbdt, ModelFamily::kLightGbdt, ModelFamily::kRandomForest,
        ModelFamily::kExtraTrees, ModelFamily::kKnn, ModelFamily::kLstm,
        ModelFamily::kRidge}) {
    if (to_string(f) == name) {
      out = f;
      return true;
    }
  }
  return false;
}

std::vector<ModelFamily> table4_families() {
  return {ModelFamily::kGbdt, ModelFamily::kExtraTrees, ModelFamily::kLstm,
          ModelFamily::kKnn};
}

std::unique_ptr<Regressor> make_model(ModelFamily f, const Scale& scale,
                                      std::uint64_t seed) {
  switch (f) {
    case ModelFamily::kGbdt:
      return std::make_unique<Gbdt>(
          GbdtConfig::catboost_like(scale.gbdt_trees, seed), "GBDT");
    case ModelFamily::kLightGbdt:
      return std::make_unique<Gbdt>(
          GbdtConfig::lightgbm_like(scale.gbdt_trees, seed), "LightGBDT");
    case ModelFamily::kRandomForest:
      return std::make_unique<Forest>(
          ForestConfig::random_forest(scale.forest_trees, seed),
          "RandomForest");
    case ModelFamily::kExtraTrees:
      return std::make_unique<Forest>(
          ForestConfig::extra_trees(scale.forest_trees, seed), "ExtraTrees");
    case ModelFamily::kKnn:
      return std::make_unique<Knn>();
    case ModelFamily::kLstm: {
      LstmConfig cfg;
      cfg.hidden = scale.lstm_hidden;
      cfg.epochs = scale.lstm_epochs;
      cfg.seed = seed;
      return std::make_unique<Lstm>(cfg);
    }
    case ModelFamily::kRidge:
      return std::make_unique<Ridge>();
  }
  return nullptr;
}

void save_regressor(io::Serializer& out, const Regressor& model) {
  out.put_string(model.serial_key());  // throws for unsupported families
  model.save(out);
}

std::unique_ptr<Regressor> load_regressor(io::Deserializer& in) {
  const std::string key = in.get_string();
  if (key == "gbdt") return Gbdt::load(in);
  if (key == "forest") return Forest::load(in);
  if (key == "knn") return Knn::load(in);
  if (key == "lstm") return Lstm::load(in);
  if (key == "ridge") return Ridge::load(in);
  if (key == "persistence") return Persistence::load(in);
  if (key == "ensemble") return WeightedEnsemble::load(in);
  throw io::SnapshotError("unknown model factory key '" + key + "'");
}

}  // namespace leaf::models
