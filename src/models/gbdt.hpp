// Gradient-boosted decision trees — the stand-in for the paper's boosting
// family (CatBoost, LightGBM, LightGBMXT, XGBoost; §3.1).
//
// Squared-loss boosting on histogram trees with shrinkage, row
// subsampling, and per-split feature subsampling.  Two stock
// configurations mirror the two boosting libraries the paper leans on:
// `GbdtConfig::catboost_like()` (symmetric-ish shallow trees, moderate
// shrinkage) and `GbdtConfig::lightgbm_like()` (deeper trees, stronger
// feature subsampling).
#pragma once

#include <memory>

#include "models/regressor.hpp"
#include "models/tree.hpp"

namespace leaf::models {

struct GbdtConfig {
  int num_trees = 100;
  double learning_rate = 0.1;
  double row_subsample = 0.8;  ///< fraction of rows per boosting round
  TreeConfig tree;
  std::uint64_t seed = 1;

  static GbdtConfig catboost_like(int num_trees, std::uint64_t seed);
  static GbdtConfig lightgbm_like(int num_trees, std::uint64_t seed);
};

class Gbdt final : public Regressor {
 public:
  explicit Gbdt(GbdtConfig cfg, std::string display_name = "GBDT");

  void fit(const Matrix& X, std::span<const double> y,
           std::span<const double> w = {}) override;
  double predict_one(std::span<const double> x) const override;
  std::unique_ptr<Regressor> clone_untrained() const override;
  std::string name() const override { return name_; }
  bool trained() const override { return trained_; }
  void attach_caches(FitCaches* caches) override { caches_ = caches; }

  const GbdtConfig& config() const { return cfg_; }
  std::size_t tree_count() const { return trees_.size(); }

  std::string serial_key() const override { return "gbdt"; }
  void save(io::Serializer& out) const override;
  static std::unique_ptr<Gbdt> load(io::Deserializer& in);

 private:
  GbdtConfig cfg_;
  std::string name_;
  bool trained_ = false;
  double base_ = 0.0;
  FitCaches* caches_ = nullptr;
  std::vector<DecisionTree> trees_;
};

}  // namespace leaf::models
