#include "models/regressor.hpp"

#include <cassert>

namespace leaf::models {

std::vector<double> Regressor::predict(const Matrix& X) const {
  std::vector<double> out;
  out.reserve(X.rows());
  for (std::size_t r = 0; r < X.rows(); ++r) out.push_back(predict_one(X.row(r)));
  return out;
}

bool check_fit_args(const Matrix& X, std::span<const double> y,
                    std::span<const double> w) {
  assert(X.rows() == y.size());
  assert(w.empty() || w.size() == y.size());
  if (X.rows() != y.size()) return false;
  if (!w.empty() && w.size() != y.size()) return false;
  return X.rows() > 0;
}

}  // namespace leaf::models
