#include "models/regressor.hpp"

#include <cassert>

#include "obs/metrics.hpp"
#include "par/parallel.hpp"

namespace leaf::models {

void Regressor::predict_into(const Matrix& X, std::span<double> out) const {
  assert(out.size() == X.rows());
  LEAF_SPAN("predict.batch");
  static obs::Counter& rows_ctr =
      obs::MetricsRegistry::global().counter("leaf_predict_rows_total");
  rows_ctr.inc(X.rows());
  // Per-row parallelism (KNN's distance scans dominate here); per-row
  // outputs land in per-row slots, so thread count cannot affect results.
  // Tiny batches stay serial — dispatch would outweigh the work.
  if (X.rows() < 32) {
    for (std::size_t r = 0; r < X.rows(); ++r) out[r] = predict_one(X.row(r));
    return;
  }
  par::parallel_for(X.rows(),
                    [&](std::size_t r) { out[r] = predict_one(X.row(r)); });
}

std::vector<double> Regressor::predict(const Matrix& X) const {
  std::vector<double> out(X.rows());
  predict_into(X, out);
  return out;
}

std::string Regressor::serial_key() const {
  throw io::SnapshotError("model '" + name() + "' does not support snapshots");
}

void Regressor::save(io::Serializer& out) const {
  (void)out;
  throw io::SnapshotError("model '" + name() + "' does not support snapshots");
}

bool check_fit_args(const Matrix& X, std::span<const double> y,
                    std::span<const double> w) {
  assert(X.rows() == y.size());
  assert(w.empty() || w.size() == y.size());
  if (X.rows() != y.size()) return false;
  if (!w.empty() && w.size() != y.size()) return false;
  return X.rows() > 0;
}

}  // namespace leaf::models
