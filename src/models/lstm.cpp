#include "models/lstm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "simd/simd.hpp"

namespace leaf::models {

namespace {
inline double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

/// Per-sample forward activations retained for BPTT.
struct Lstm::Workspace {
  // Indexed [t][...]; gate vectors are length H each.
  std::vector<std::vector<double>> x;       // chunk inputs
  std::vector<std::vector<double>> i, f, g, o;
  std::vector<std::vector<double>> c, h, tanh_c;
};

Lstm::Lstm(LstmConfig cfg) : cfg_(cfg) {}

double Lstm::forward(std::span<const double> z, Workspace* ws) const {
  const int H = cfg_.hidden;
  const int S = cfg_.chunk;
  std::vector<double> h(static_cast<std::size_t>(H), 0.0);
  std::vector<double> c(static_cast<std::size_t>(H), 0.0);
  std::vector<double> gates(static_cast<std::size_t>(4 * H));

  if (ws != nullptr) {
    const std::size_t T = static_cast<std::size_t>(timesteps_);
    ws->x.assign(T, {});
    ws->i.assign(T, {});
    ws->f.assign(T, {});
    ws->g.assign(T, {});
    ws->o.assign(T, {});
    ws->c.assign(T, {});
    ws->h.assign(T, {});
    ws->tanh_c.assign(T, {});
  }

  std::vector<double> xt(static_cast<std::size_t>(S));
  for (int t = 0; t < timesteps_; ++t) {
    // Chunk t of the feature vector, zero-padded at the tail.
    for (int s = 0; s < S; ++s) {
      const std::size_t idx = static_cast<std::size_t>(t * S + s);
      xt[static_cast<std::size_t>(s)] = idx < z.size() ? z[idx] : 0.0;
    }
    // Pre-activations: Wx x_t + Wh h + b, one dot kernel per weight row.
    for (int r = 0; r < 4 * H; ++r) {
      gates[static_cast<std::size_t>(r)] =
          b_[static_cast<std::size_t>(r)] +
          simd::dot(wx_.row(static_cast<std::size_t>(r)), xt) +
          simd::dot(wh_.row(static_cast<std::size_t>(r)), h);
    }
    std::vector<double> gi(static_cast<std::size_t>(H)), gf(static_cast<std::size_t>(H)),
        gg(static_cast<std::size_t>(H)), go(static_cast<std::size_t>(H)),
        tc(static_cast<std::size_t>(H));
    for (int k = 0; k < H; ++k) {
      gi[static_cast<std::size_t>(k)] = sigmoid(gates[static_cast<std::size_t>(k)]);
      gf[static_cast<std::size_t>(k)] = sigmoid(gates[static_cast<std::size_t>(H + k)]);
      gg[static_cast<std::size_t>(k)] = std::tanh(gates[static_cast<std::size_t>(2 * H + k)]);
      go[static_cast<std::size_t>(k)] = sigmoid(gates[static_cast<std::size_t>(3 * H + k)]);
      c[static_cast<std::size_t>(k)] = gf[static_cast<std::size_t>(k)] * c[static_cast<std::size_t>(k)] +
                                       gi[static_cast<std::size_t>(k)] * gg[static_cast<std::size_t>(k)];
      tc[static_cast<std::size_t>(k)] = std::tanh(c[static_cast<std::size_t>(k)]);
      h[static_cast<std::size_t>(k)] = go[static_cast<std::size_t>(k)] * tc[static_cast<std::size_t>(k)];
    }
    if (ws != nullptr) {
      const std::size_t ti = static_cast<std::size_t>(t);
      ws->x[ti] = xt;
      ws->i[ti] = std::move(gi);
      ws->f[ti] = std::move(gf);
      ws->g[ti] = std::move(gg);
      ws->o[ti] = std::move(go);
      ws->c[ti] = c;
      ws->h[ti] = h;
      ws->tanh_c[ti] = std::move(tc);
    }
  }

  return bo_ + simd::dot(wo_, h);
}

void Lstm::fit(const Matrix& X, std::span<const double> y,
               std::span<const double> w) {
  LEAF_SPAN("fit.LSTM");
  static obs::Counter& fits_ctr = obs::MetricsRegistry::global().counter(
      "leaf_model_fits_total", obs::label("family", "LSTM"));
  fits_ctr.inc();
  trained_ = false;
  if (!check_fit_args(X, y, w)) return;
  const int H = cfg_.hidden;
  const int S = cfg_.chunk;
  const std::size_t n = X.rows();
  timesteps_ = static_cast<int>((X.cols() + static_cast<std::size_t>(S) - 1) /
                                static_cast<std::size_t>(S));

  scaler_.fit(X);
  const Matrix Z = scaler_.transform(X);
  y_mean_ = stats::mean(y);
  y_std_ = stats::stddev(y);
  if (y_std_ < 1e-12) y_std_ = 1.0;
  std::vector<double> yz(n);
  for (std::size_t i = 0; i < n; ++i) yz[i] = (y[i] - y_mean_) / y_std_;

  // --- init -------------------------------------------------------------
  Rng rng(cfg_.seed);
  const double xs = 1.0 / std::sqrt(static_cast<double>(S));
  const double hs = 1.0 / std::sqrt(static_cast<double>(H));
  wx_ = Matrix(static_cast<std::size_t>(4 * H), static_cast<std::size_t>(S));
  wh_ = Matrix(static_cast<std::size_t>(4 * H), static_cast<std::size_t>(H));
  for (double& v : wx_.flat()) v = rng.normal(0.0, xs);
  for (double& v : wh_.flat()) v = rng.normal(0.0, hs);
  b_.assign(static_cast<std::size_t>(4 * H), 0.0);
  for (int k = 0; k < H; ++k) b_[static_cast<std::size_t>(H + k)] = 1.0;  // forget-gate bias
  wo_.assign(static_cast<std::size_t>(H), 0.0);
  for (double& v : wo_) v = rng.normal(0.0, hs);
  bo_ = 0.0;

  // --- Adam state ---------------------------------------------------------
  const std::size_t n_wx = wx_.flat().size();
  const std::size_t n_wh = wh_.flat().size();
  const std::size_t n_b = b_.size();
  const std::size_t n_wo = wo_.size();
  const std::size_t n_params = n_wx + n_wh + n_b + n_wo + 1;
  std::vector<double> m(n_params, 0.0), v2(n_params, 0.0), grad(n_params, 0.0);
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  std::int64_t step = 0;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  Workspace ws;
  std::vector<double> dh(static_cast<std::size_t>(H));
  std::vector<double> dc(static_cast<std::size_t>(H));
  std::vector<double> dz(static_cast<std::size_t>(4 * H));

  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    double epoch_weight = 0.0;

    for (std::size_t start = 0; start < n; start += static_cast<std::size_t>(cfg_.batch)) {
      const std::size_t end = std::min(n, start + static_cast<std::size_t>(cfg_.batch));
      std::fill(grad.begin(), grad.end(), 0.0);
      double batch_w = 0.0;

      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t r = order[bi];
        const double wi = w.empty() ? 1.0 : w[r];
        if (wi <= 0.0) continue;
        batch_w += wi;

        const double pred = forward(Z.row(r), &ws);
        const double err = pred - yz[r];
        epoch_loss += wi * err * err;
        epoch_weight += wi;

        // Output layer gradients.
        const double dy = 2.0 * wi * err;
        double* g_wx = grad.data();
        double* g_wh = g_wx + n_wx;
        double* g_b = g_wh + n_wh;
        double* g_wo = g_b + n_b;
        double* g_bo = g_wo + n_wo;
        const auto& hT = ws.h[static_cast<std::size_t>(timesteps_ - 1)];
        for (int k = 0; k < H; ++k) {
          g_wo[k] += dy * hT[static_cast<std::size_t>(k)];
          dh[static_cast<std::size_t>(k)] = dy * wo_[static_cast<std::size_t>(k)];
        }
        *g_bo += dy;
        std::fill(dc.begin(), dc.end(), 0.0);

        // BPTT.
        for (int t = timesteps_ - 1; t >= 0; --t) {
          const std::size_t ti = static_cast<std::size_t>(t);
          const auto& gi = ws.i[ti];
          const auto& gf = ws.f[ti];
          const auto& gg = ws.g[ti];
          const auto& go = ws.o[ti];
          const auto& tc = ws.tanh_c[ti];
          for (int k = 0; k < H; ++k) {
            const std::size_t ki = static_cast<std::size_t>(k);
            const double dct =
                dc[ki] + dh[ki] * go[ki] * (1.0 - tc[ki] * tc[ki]);
            const double c_prev =
                t > 0 ? ws.c[ti - 1][ki] : 0.0;
            const double d_i = dct * gg[ki];
            const double d_f = dct * c_prev;
            const double d_g = dct * gi[ki];
            const double d_o = dh[ki] * tc[ki];
            dz[ki] = d_i * gi[ki] * (1.0 - gi[ki]);
            dz[static_cast<std::size_t>(H) + ki] = d_f * gf[ki] * (1.0 - gf[ki]);
            dz[static_cast<std::size_t>(2 * H) + ki] = d_g * (1.0 - gg[ki] * gg[ki]);
            dz[static_cast<std::size_t>(3 * H) + ki] = d_o * go[ki] * (1.0 - go[ki]);
            dc[ki] = dct * gf[ki];
          }
          // Accumulate parameter gradients and propagate dh.
          const auto& xt = ws.x[ti];
          const auto* h_prev = t > 0 ? &ws.h[ti - 1] : nullptr;
          std::fill(dh.begin(), dh.end(), 0.0);
          for (int rr = 0; rr < 4 * H; ++rr) {
            const std::size_t ri = static_cast<std::size_t>(rr);
            const double dzr = dz[ri];
            if (dzr == 0.0) continue;
            simd::axpy(dzr, xt,
                       {g_wx + ri * static_cast<std::size_t>(S),
                        static_cast<std::size_t>(S)});
            if (h_prev != nullptr) {
              simd::axpy(dzr, *h_prev,
                         {g_wh + ri * static_cast<std::size_t>(H),
                          static_cast<std::size_t>(H)});
            }
            simd::axpy(dzr, wh_.row(ri), dh);
            g_b[ri] += dzr;
          }
        }
      }

      if (batch_w <= 0.0) continue;
      for (double& g : grad) g /= batch_w;

      // Global-norm clip.
      const double norm = std::sqrt(simd::dot(grad, grad));
      const double clip_scale =
          norm > cfg_.grad_clip ? cfg_.grad_clip / norm : 1.0;

      // Adam.
      ++step;
      const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(step));
      const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(step));
      auto param_at = [&](std::size_t i) -> double* {
        if (i < n_wx) return &wx_.flat()[i];
        i -= n_wx;
        if (i < n_wh) return &wh_.flat()[i];
        i -= n_wh;
        if (i < n_b) return &b_[i];
        i -= n_b;
        if (i < n_wo) return &wo_[i];
        return &bo_;
      };
      for (std::size_t i = 0; i < n_params; ++i) {
        const double g = grad[i] * clip_scale;
        m[i] = kBeta1 * m[i] + (1.0 - kBeta1) * g;
        v2[i] = kBeta2 * v2[i] + (1.0 - kBeta2) * g * g;
        const double mhat = m[i] / bc1;
        const double vhat = v2[i] / bc2;
        *param_at(i) -= cfg_.learning_rate * mhat / (std::sqrt(vhat) + kEps);
      }
    }
    final_mse_ = epoch_weight > 0.0 ? epoch_loss / epoch_weight : 0.0;
  }
  trained_ = true;
}

double Lstm::predict_one(std::span<const double> x) const {
  assert(trained_);
  std::vector<double> z(x.size());
  scaler_.transform_row(x, z);
  return forward(z, nullptr) * y_std_ + y_mean_;
}

std::unique_ptr<Regressor> Lstm::clone_untrained() const {
  return std::make_unique<Lstm>(cfg_);
}

void Lstm::save(io::Serializer& out) const {
  out.put_i32(cfg_.hidden);
  out.put_i32(cfg_.chunk);
  out.put_i32(cfg_.epochs);
  out.put_i32(cfg_.batch);
  out.put_f64(cfg_.learning_rate);
  out.put_f64(cfg_.grad_clip);
  out.put_u64(cfg_.seed);
  out.put_bool(trained_);
  out.put_i32(timesteps_);
  io::write(out, scaler_);
  out.put_f64(y_mean_);
  out.put_f64(y_std_);
  out.put_f64(final_mse_);
  io::write(out, wx_);
  io::write(out, wh_);
  out.put_doubles(b_);
  out.put_doubles(wo_);
  out.put_f64(bo_);
}

std::unique_ptr<Lstm> Lstm::load(io::Deserializer& in) {
  LstmConfig cfg;
  cfg.hidden = in.get_i32();
  cfg.chunk = in.get_i32();
  cfg.epochs = in.get_i32();
  cfg.batch = in.get_i32();
  cfg.learning_rate = in.get_f64();
  cfg.grad_clip = in.get_f64();
  cfg.seed = in.get_u64();
  auto model = std::make_unique<Lstm>(cfg);
  model->trained_ = in.get_bool();
  model->timesteps_ = in.get_i32();
  io::read_standardizer(in, model->scaler_);
  model->y_mean_ = in.get_f64();
  model->y_std_ = in.get_f64();
  model->final_mse_ = in.get_f64();
  model->wx_ = io::read_matrix(in);
  model->wh_ = io::read_matrix(in);
  model->b_ = in.get_doubles();
  model->wo_ = in.get_doubles();
  model->bo_ = in.get_f64();
  const auto h = static_cast<std::size_t>(cfg.hidden);
  if (model->trained_ &&
      (model->wx_.rows() != 4 * h || model->wh_.rows() != 4 * h ||
       model->wh_.cols() != h || model->b_.size() != 4 * h ||
       model->wo_.size() != h))
    throw io::SnapshotError("lstm parameter shapes inconsistent with config");
  return model;
}

}  // namespace leaf::models
