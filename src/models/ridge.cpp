#include "models/ridge.hpp"

#include <cassert>
#include <cmath>

#include "obs/metrics.hpp"
#include "simd/simd.hpp"

namespace leaf::models {

bool cholesky_solve(Matrix& a, std::vector<double>& b) {
  const std::size_t n = a.rows();
  assert(a.cols() == n && b.size() == n);
  // Decompose A = L L^T in the lower triangle.  The k-loops run over
  // row prefixes (contiguous in the row-major storage), so they are dot
  // kernels; the back substitution walks a column and stays scalar.
  for (std::size_t j = 0; j < n; ++j) {
    const auto rowj = a.row(j);
    const double d = a(j, j) - simd::dot(rowj.first(j), rowj.first(j));
    if (d <= 0.0) return false;
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      const auto rowi = a.row(i);
      const double s = a(i, j) - simd::dot(rowi.first(j), rowj.first(j));
      a(i, j) = s / ljj;
    }
  }
  // Forward substitution L z = b.
  for (std::size_t i = 0; i < n; ++i) {
    const double s =
        b[i] - simd::dot(a.row(i).first(i), std::span<const double>(b).first(i));
    b[i] = s / a(i, i);
  }
  // Back substitution L^T x = z.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= a(k, ii) * b[k];
    b[ii] = s / a(ii, ii);
  }
  return true;
}

Ridge::Ridge(RidgeConfig cfg) : cfg_(cfg) {}

void Ridge::fit(const Matrix& X, std::span<const double> y,
                std::span<const double> w) {
  LEAF_SPAN("fit.Ridge");
  static obs::Counter& fits_ctr = obs::MetricsRegistry::global().counter(
      "leaf_model_fits_total", obs::label("family", "Ridge"));
  fits_ctr.inc();
  trained_ = false;
  if (!check_fit_args(X, y, w)) return;
  scaler_.fit(X);
  const Matrix Z = scaler_.transform(X);
  const std::size_t n = Z.rows(), k = Z.cols();

  // Weighted normal equations on standardized features; the intercept is
  // handled by centering y.
  double sw = 0.0, swy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double wi = w.empty() ? 1.0 : w[i];
    sw += wi;
    swy += wi * y[i];
  }
  const double ybar = sw > 0.0 ? swy / sw : 0.0;

  // Rank-1 accumulation per training row: b += (wi*yc) * z_i and, for the
  // upper triangle, a.row(p)[p..] += (wi*z_ip) * z_i[p..] — both axpy
  // kernels over contiguous row tails.
  Matrix a(k, k, 0.0);
  std::vector<double> b(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double wi = w.empty() ? 1.0 : w[i];
    const auto row = Z.row(i);
    const double yc = y[i] - ybar;
    simd::axpy(wi * yc, row, b);
    for (std::size_t p = 0; p < k; ++p) {
      simd::axpy(wi * row[p], row.subspan(p), a.row(p).subspan(p));
    }
  }
  for (std::size_t p = 0; p < k; ++p) {
    a(p, p) += cfg_.lambda;
    for (std::size_t q = p + 1; q < k; ++q) a(q, p) = a(p, q);
  }

  if (!cholesky_solve(a, b)) {
    // Extremely ill-conditioned (shouldn't happen with lambda > 0): fall
    // back to predicting the mean.
    beta_.assign(k, 0.0);
  } else {
    beta_ = std::move(b);
  }
  intercept_ = ybar;
  trained_ = true;
}

double Ridge::predict_one(std::span<const double> x) const {
  assert(trained_);
  std::vector<double> z(x.size());
  scaler_.transform_row(x, z);
  return intercept_ + simd::dot(beta_, z);
}

std::unique_ptr<Regressor> Ridge::clone_untrained() const {
  return std::make_unique<Ridge>(cfg_);
}

void Ridge::save(io::Serializer& out) const {
  out.put_f64(cfg_.lambda);
  out.put_bool(trained_);
  io::write(out, scaler_);
  out.put_doubles(beta_);
  out.put_f64(intercept_);
}

std::unique_ptr<Ridge> Ridge::load(io::Deserializer& in) {
  RidgeConfig cfg;
  cfg.lambda = in.get_f64();
  auto model = std::make_unique<Ridge>(cfg);
  model->trained_ = in.get_bool();
  io::read_standardizer(in, model->scaler_);
  model->beta_ = in.get_doubles();
  model->intercept_ = in.get_f64();
  return model;
}

}  // namespace leaf::models
