// Model factory: maps the paper's model families (§3.1) to the
// from-scratch implementations in this library, with sizes taken from the
// active Scale so every bench builds comparable models.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "models/regressor.hpp"

namespace leaf::models {

/// The families studied in the paper plus the Ridge sanity baseline.
enum class ModelFamily {
  kGbdt,         ///< CatBoost stand-in (boosting; the paper's default model)
  kLightGbdt,    ///< LightGBM-style boosting variant
  kRandomForest, ///< bagging
  kExtraTrees,   ///< bagging (randomized thresholds)
  kKnn,          ///< distance-based
  kLstm,         ///< recurrent
  kRidge,        ///< linear baseline (not in the paper)
};

std::string to_string(ModelFamily f);
/// Paper-facing label, e.g. kGbdt -> "CatBoost*" (the '*' marks stand-ins).
std::string paper_name(ModelFamily f);
bool parse_model_family(const std::string& name, ModelFamily& out);

/// The four families Table 4 compares.
std::vector<ModelFamily> table4_families();

/// Builds an untrained model of the given family sized for `scale`.
std::unique_ptr<Regressor> make_model(ModelFamily f, const Scale& scale,
                                      std::uint64_t seed);

/// Writes `model.serial_key()` followed by `model.save(...)`, so the blob
/// is self-describing and load_regressor can dispatch on the key.
void save_regressor(io::Serializer& out, const Regressor& model);

/// Reconstructs the model written by save_regressor.  Throws
/// io::SnapshotError on an unknown key or malformed payload.
std::unique_ptr<Regressor> load_regressor(io::Deserializer& in);

}  // namespace leaf::models
