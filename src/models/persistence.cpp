#include "models/persistence.hpp"

#include <cassert>
#include <cmath>

namespace leaf::models {

Persistence::Persistence(int target_column) : target_column_(target_column) {
  assert(target_column_ >= 0);
}

void Persistence::fit(const Matrix& X, std::span<const double> y,
                      std::span<const double> w) {
  trained_ = false;
  if (!check_fit_args(X, y, w)) return;
  assert(static_cast<std::size_t>(target_column_) < X.cols());

  double num = 0.0, den = 0.0, y_sum = 0.0, w_sum = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double wi = w.empty() ? 1.0 : w[i];
    const double x = X(i, static_cast<std::size_t>(target_column_));
    y_sum += wi * y[i];
    w_sum += wi;
    if (std::abs(x) < 1e-12) continue;  // lost / zero readings
    num += wi * y[i];
    den += wi * x;
  }
  ratio_ = den != 0.0 ? num / den : 1.0;
  fallback_ = w_sum > 0.0 ? y_sum / w_sum : 0.0;
  trained_ = true;
}

double Persistence::predict_one(std::span<const double> x) const {
  assert(trained_);
  const double current = x[static_cast<std::size_t>(target_column_)];
  if (std::abs(current) < 1e-12) return fallback_;
  return ratio_ * current;
}

std::unique_ptr<Regressor> Persistence::clone_untrained() const {
  return std::make_unique<Persistence>(target_column_);
}

void Persistence::save(io::Serializer& out) const {
  out.put_i32(target_column_);
  out.put_bool(trained_);
  out.put_f64(ratio_);
  out.put_f64(fallback_);
}

std::unique_ptr<Persistence> Persistence::load(io::Deserializer& in) {
  auto model = std::make_unique<Persistence>(in.get_i32());
  model->trained_ = in.get_bool();
  model->ratio_ = in.get_f64();
  model->fallback_ = in.get_f64();
  return model;
}

}  // namespace leaf::models
