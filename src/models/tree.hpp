// Histogram-based regression tree — the weak learner shared by the GBDT
// (CatBoost / LightGBM stand-ins) and the bagging ensembles (Random
// Forest, Extra Trees).
//
// Features are pre-quantized into at most `max_bins` quantile bins
// (`BinnedData`), so finding the best split of a node costs
// O(rows + bins) per candidate feature.  Binning is computed once per
// training set and shared by every tree of an ensemble.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace leaf::models {

/// Quantile-binned view of a feature matrix.
class BinnedData {
 public:
  /// Bins each column of X into <= max_bins quantile bins.  max_bins must
  /// be <= 256 (bins are stored as uint8).
  BinnedData(const Matrix& X, int max_bins);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  int num_bins(std::size_t col) const { return bin_count_[col]; }

  std::uint8_t bin(std::size_t row, std::size_t col) const {
    return codes_[col * rows_ + row];  // column-major for split scans
  }

  /// Raw-value threshold separating bins <= b from bins > b of a column
  /// (midpoint between adjacent bin representative edges).
  double threshold(std::size_t col, int b) const;

 private:
  std::size_t rows_, cols_;
  std::vector<std::uint8_t> codes_;       // column-major
  std::vector<int> bin_count_;            // per column
  std::vector<std::vector<double>> edges_;  // per column, ascending
};

struct TreeConfig {
  int max_depth = 6;
  int min_samples_leaf = 3;
  double min_gain = 1e-12;
  /// Features considered per split; -1 means all.
  int features_per_split = -1;
  /// Extra-Trees mode: one random split bin per candidate feature instead
  /// of scanning every bin.
  bool random_thresholds = false;
};

/// A fitted regression tree.  Prediction traverses raw-value thresholds,
/// so it works on any feature vector, not just binned training rows.
class DecisionTree {
 public:
  /// Fits to (binned) rows given targets and optional weights.  `rows`
  /// selects the training subset (bootstrap / subsample); empty means all
  /// rows.  The tree stores *raw* thresholds taken from `bd`.
  void fit(const BinnedData& bd, std::span<const double> y,
           std::span<const double> w, std::span<const std::size_t> rows,
           const TreeConfig& cfg, Rng& rng);

  double predict_one(std::span<const double> x) const;

  bool trained() const { return !nodes_.empty(); }
  std::size_t node_count() const { return nodes_.size(); }
  int depth() const;

 private:
  struct Node {
    int feature = -1;  // -1 == leaf
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;
  };
  std::vector<Node> nodes_;
};

}  // namespace leaf::models
