// Histogram-based regression tree — the weak learner shared by the GBDT
// (CatBoost / LightGBM stand-ins) and the bagging ensembles (Random
// Forest, Extra Trees).
//
// Features are pre-quantized into at most `max_bins` quantile bins
// (`BinnedData`), so finding the best split of a node costs
// O(rows + bins) per candidate feature.  Binning is computed once per
// training set and shared by every tree of an ensemble.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "io/serializer.hpp"

namespace leaf::models {

/// Retrain-scoped cache of per-column bin edges (see core::run_scheme).
///
/// Successive retrains in the walk-forward loop bin training windows that
/// overlap heavily, yet BinnedData used to re-derive quantile edges from a
/// full per-column sort every time.  With a cache attached, a column whose
/// value range is still covered by the previously derived edges reuses
/// them outright (skipping the O(n log n) sort); a column whose range grew
/// keeps the old edges and *extends* them with quantiles of only the
/// out-of-range values.  Columns whose range shrank, or whose extension
/// would exceed the bin budget, fall back to a fresh derivation.
///
/// Range coverage alone is not enough: after a drift event the column's
/// *distribution* can shift far inside an unchanged range, and quantile
/// edges derived pre-drift then concentrate the post-drift mass into a few
/// bins — retrained trees split badly exactly when retraining matters
/// most.  Reused edges are therefore accepted only if the bin occupancy
/// they produce on the new column stays within a constant factor of the
/// occupancy balance they had when freshly derived (measured on the codes,
/// which have to be computed either way); concentrated mass fails the
/// check and forces a fresh derivation.
///
/// Reuse is deterministic — the cache state is a pure function of the
/// sequence of matrices binned through it — but not bit-identical to
/// uncached edges; it is a retrain-speed/bin-optimality trade, which is
/// why it's opt-in per training loop rather than global.
class BinEdgeCache {
 public:
  void clear() { cols_.clear(); }
  std::size_t reused() const { return reused_; }
  std::size_t extended() const { return extended_; }
  std::size_t rebuilt() const { return rebuilt_; }

  /// Snapshot support (leaf::io): the cache state influences which bin
  /// edges retrained models see, so crash-equivalent restarts must carry
  /// it across the snapshot boundary.
  void save(io::Serializer& out) const;
  void load(io::Deserializer& in);

 private:
  friend class BinnedData;
  struct ColState {
    std::vector<double> edges;
    double lo = 0.0, hi = 0.0;  ///< value range the edges were derived for
    /// max bin share / ideal share at the last fresh derivation (>= 1;
    /// exact quantile edges over tied data are legitimately imbalanced, so
    /// staleness is judged relative to this, not to perfection).
    double imbalance = 1.0;
    bool valid = false;
  };
  std::vector<ColState> cols_;
  int max_bins_ = 0;
  std::size_t reused_ = 0, extended_ = 0, rebuilt_ = 0;
};

/// Quantile-binned view of a feature matrix.
class BinnedData {
 public:
  /// Bins each column of X into <= max_bins quantile bins.  max_bins must
  /// be <= 256 (bins are stored as uint8).  An optional BinEdgeCache
  /// carries edges across successive binnings (one cache per sequential
  /// training loop; not thread-safe).
  explicit BinnedData(const Matrix& X, int max_bins,
                      BinEdgeCache* cache = nullptr);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  int num_bins(std::size_t col) const { return bin_count_[col]; }

  std::uint8_t bin(std::size_t row, std::size_t col) const {
    return codes_[col * rows_ + row];  // column-major for split scans
  }

  /// Contiguous codes of one feature column (rows() entries) — the gather
  /// source for simd::hist_accumulate.
  const std::uint8_t* codes_col(std::size_t col) const {
    return codes_.data() + col * rows_;
  }

  /// Raw-value threshold separating bins <= b from bins > b of a column
  /// (midpoint between adjacent bin representative edges).
  double threshold(std::size_t col, int b) const;

 private:
  std::size_t rows_, cols_;
  std::vector<std::uint8_t> codes_;       // column-major
  std::vector<int> bin_count_;            // per column
  std::vector<std::vector<double>> edges_;  // per column, ascending
};

struct TreeConfig {
  int max_depth = 6;
  int min_samples_leaf = 3;
  double min_gain = 1e-12;
  /// Features considered per split; -1 means all.
  int features_per_split = -1;
  /// Extra-Trees mode: one random split bin per candidate feature instead
  /// of scanning every bin.
  bool random_thresholds = false;
};

/// TreeConfig snapshot helpers (leaf::io).
void save_tree_config(io::Serializer& out, const TreeConfig& cfg);
TreeConfig load_tree_config(io::Deserializer& in);

/// A fitted regression tree.  Prediction traverses raw-value thresholds,
/// so it works on any feature vector, not just binned training rows.
class DecisionTree {
 public:
  /// Fits to (binned) rows given targets and optional weights.  `rows`
  /// selects the training subset (bootstrap / subsample); empty means all
  /// rows.  The tree stores *raw* thresholds taken from `bd`.
  void fit(const BinnedData& bd, std::span<const double> y,
           std::span<const double> w, std::span<const std::size_t> rows,
           const TreeConfig& cfg, Rng& rng);

  double predict_one(std::span<const double> x) const;

  bool trained() const { return !nodes_.empty(); }
  std::size_t node_count() const { return nodes_.size(); }
  int depth() const;

  /// Snapshot support (leaf::io).  `load` validates child indices against
  /// the node count, so corrupt-but-CRC-valid payloads fail loudly instead
  /// of producing out-of-bounds traversals.
  void save(io::Serializer& out) const;
  static DecisionTree load(io::Deserializer& in);

 private:
  struct Node {
    int feature = -1;  // -1 == leaf
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;
  };
  std::vector<Node> nodes_;
};

}  // namespace leaf::models
