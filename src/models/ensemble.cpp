#include "models/ensemble.hpp"

#include <cassert>

#include "models/factory.hpp"

namespace leaf::models {

void WeightedEnsemble::add_member(std::shared_ptr<const Regressor> member,
                                  double weight) {
  assert(member != nullptr && member->trained());
  assert(weight >= 0.0);
  members_.push_back(std::move(member));
  weights_.push_back(weight);
}

double WeightedEnsemble::predict_one(std::span<const double> x) const {
  assert(trained());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    num += weights_[i] * members_[i]->predict_one(x);
    den += weights_[i];
  }
  if (den <= 0.0) {
    // All-zero weights degrade to a plain average.
    for (const auto& m : members_) num += m->predict_one(x);
    return num / static_cast<double>(members_.size());
  }
  return num / den;
}

std::unique_ptr<Regressor> WeightedEnsemble::clone_untrained() const {
  return std::make_unique<WeightedEnsemble>();
}

void WeightedEnsemble::save(io::Serializer& out) const {
  out.put_u64(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    out.put_f64(weights_[i]);
    save_regressor(out, *members_[i]);
  }
}

std::unique_ptr<WeightedEnsemble> WeightedEnsemble::load(io::Deserializer& in) {
  const std::size_t count = in.get_count(8 + 8);  // weight + key length word
  auto ensemble = std::make_unique<WeightedEnsemble>();
  for (std::size_t i = 0; i < count; ++i) {
    const double weight = in.get_f64();
    ensemble->add_member(load_regressor(in), weight);
  }
  return ensemble;
}

}  // namespace leaf::models
