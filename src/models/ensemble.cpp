#include "models/ensemble.hpp"

#include <cassert>

namespace leaf::models {

void WeightedEnsemble::add_member(std::shared_ptr<const Regressor> member,
                                  double weight) {
  assert(member != nullptr && member->trained());
  assert(weight >= 0.0);
  members_.push_back(std::move(member));
  weights_.push_back(weight);
}

double WeightedEnsemble::predict_one(std::span<const double> x) const {
  assert(trained());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    num += weights_[i] * members_[i]->predict_one(x);
    den += weights_[i];
  }
  if (den <= 0.0) {
    // All-zero weights degrade to a plain average.
    for (const auto& m : members_) num += m->predict_one(x);
    return num / static_cast<double>(members_.size());
  }
  return num / den;
}

std::unique_ptr<Regressor> WeightedEnsemble::clone_untrained() const {
  return std::make_unique<WeightedEnsemble>();
}

}  // namespace leaf::models
