#include "models/knn.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.hpp"
#include "simd/simd.hpp"

namespace leaf::models {

Knn::Knn(KnnConfig cfg) : cfg_(cfg) {}

void Knn::fit(const Matrix& X, std::span<const double> y,
              std::span<const double> w) {
  LEAF_SPAN("fit.KNN");
  static obs::Counter& fits_ctr = obs::MetricsRegistry::global().counter(
      "leaf_model_fits_total", obs::label("family", "KNN"));
  fits_ctr.inc();
  trained_ = false;
  if (!check_fit_args(X, y, w)) return;
  scaler_.fit(X);
  train_ = scaler_.transform(X);
  y_.assign(y.begin(), y.end());
  if (w.empty()) {
    w_.assign(y.size(), 1.0);
  } else {
    w_.assign(w.begin(), w.end());
  }
  // Materialize the column-major mirror now, while we are in sequential
  // code: predict_one reads it from parallel per-row prediction, where a
  // lazy rebuild would race.
  train_.col_major();
  trained_ = true;
}

double Knn::predict_one(std::span<const double> x) const {
  assert(trained_);
  // Per-query scratch is thread_local: predict_one runs on the leaf::par
  // pool (one query per row), and per-call vector churn dominated small
  // queries.
  thread_local std::vector<double> z;
  thread_local std::vector<double> dist2;
  thread_local std::vector<std::pair<double, std::size_t>> d;
  z.resize(x.size());
  scaler_.transform_row(x, z);

  const std::size_t n = train_.rows();
  const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(cfg_.k), n);

  // All query->train distances in one kernel over the column-major mirror
  // (built at fit/load), instead of a strided pass per training row.
  dist2.resize(n);
  simd::l2_distances_cols(train_.col_major(), n, z, dist2);

  // Partial selection of the k smallest distances.
  d.resize(n);
  for (std::size_t r = 0; r < n; ++r) d[r] = {dist2[r], r};
  std::nth_element(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   d.end());

  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const auto [dist2, r] = d[i];
    const double dist = std::max(cfg_.min_distance, std::sqrt(dist2));
    const double weight = w_[r] / dist;
    num += weight * y_[r];
    den += weight;
  }
  return den > 0.0 ? num / den : 0.0;
}

std::unique_ptr<Regressor> Knn::clone_untrained() const {
  return std::make_unique<Knn>(cfg_);
}

void Knn::save(io::Serializer& out) const {
  out.put_i32(cfg_.k);
  out.put_f64(cfg_.min_distance);
  out.put_bool(trained_);
  io::write(out, scaler_);
  io::write(out, train_);
  out.put_doubles(y_);
  out.put_doubles(w_);
}

std::unique_ptr<Knn> Knn::load(io::Deserializer& in) {
  KnnConfig cfg;
  cfg.k = in.get_i32();
  cfg.min_distance = in.get_f64();
  auto model = std::make_unique<Knn>(cfg);
  model->trained_ = in.get_bool();
  io::read_standardizer(in, model->scaler_);
  model->train_ = io::read_matrix(in);
  model->y_ = in.get_doubles();
  model->w_ = in.get_doubles();
  if (model->y_.size() != model->train_.rows() ||
      model->w_.size() != model->train_.rows())
    throw io::SnapshotError("knn training arrays have inconsistent sizes");
  model->train_.col_major();  // predict reads the mirror from pool threads
  return model;
}

}  // namespace leaf::models
