// Bagging ensembles — the paper's second model family (§3.1):
// Random Forest (bootstrap rows + per-split feature subsets) and
// Extra Trees (no bootstrap, random split thresholds; Geurts et al. 2006).
#pragma once

#include <memory>

#include "models/regressor.hpp"
#include "models/tree.hpp"

namespace leaf::models {

struct ForestConfig {
  int num_trees = 100;
  /// Features considered per split; 0 resolves to ceil(sqrt(F)) * 2.
  int features_per_split = 0;
  int max_depth = 14;
  int min_samples_leaf = 2;
  /// true => Random Forest bootstrap; false => Extra-Trees full sample.
  bool bootstrap = true;
  /// true => random thresholds (Extra Trees).
  bool random_thresholds = false;
  std::uint64_t seed = 1;

  static ForestConfig random_forest(int num_trees, std::uint64_t seed);
  static ForestConfig extra_trees(int num_trees, std::uint64_t seed);
};

class Forest final : public Regressor {
 public:
  explicit Forest(ForestConfig cfg, std::string display_name);

  void fit(const Matrix& X, std::span<const double> y,
           std::span<const double> w = {}) override;
  double predict_one(std::span<const double> x) const override;
  std::unique_ptr<Regressor> clone_untrained() const override;
  std::string name() const override { return name_; }
  bool trained() const override { return trained_; }
  void attach_caches(FitCaches* caches) override { caches_ = caches; }

  std::size_t tree_count() const { return trees_.size(); }

  std::string serial_key() const override { return "forest"; }
  void save(io::Serializer& out) const override;
  static std::unique_ptr<Forest> load(io::Deserializer& in);

 private:
  ForestConfig cfg_;
  std::string name_;
  bool trained_ = false;
  FitCaches* caches_ = nullptr;
  std::vector<DecisionTree> trees_;
};

}  // namespace leaf::models
