#include "models/forest.hpp"

#include <cassert>
#include <cmath>

#include "obs/metrics.hpp"
#include "par/parallel.hpp"

namespace leaf::models {

ForestConfig ForestConfig::random_forest(int num_trees, std::uint64_t seed) {
  ForestConfig c;
  c.num_trees = num_trees;
  c.bootstrap = true;
  c.random_thresholds = false;
  c.seed = seed;
  return c;
}

ForestConfig ForestConfig::extra_trees(int num_trees, std::uint64_t seed) {
  ForestConfig c;
  c.num_trees = num_trees;
  c.bootstrap = false;
  c.random_thresholds = true;
  c.seed = seed;
  return c;
}

Forest::Forest(ForestConfig cfg, std::string display_name)
    : cfg_(cfg), name_(std::move(display_name)) {}

void Forest::fit(const Matrix& X, std::span<const double> y,
                 std::span<const double> w) {
  LEAF_SPAN("fit.Forest");
  static obs::Counter& fits_ctr = obs::MetricsRegistry::global().counter(
      "leaf_model_fits_total", obs::label("family", "Forest"));
  fits_ctr.inc();
  trained_ = false;
  trees_.clear();
  if (!check_fit_args(X, y, w)) return;

  const Rng root(cfg_.seed);
  const std::size_t n = X.rows();
  // One binning shared by every tree; the retrain-scoped edge cache (when
  // attached) carries edges across successive refits.
  const BinnedData bd(X, 64,
                      caches_ != nullptr ? &caches_->bin_edges : nullptr);

  TreeConfig tree_cfg;
  tree_cfg.max_depth = cfg_.max_depth;
  tree_cfg.min_samples_leaf = cfg_.min_samples_leaf;
  tree_cfg.random_thresholds = cfg_.random_thresholds;
  tree_cfg.features_per_split =
      cfg_.features_per_split > 0
          ? cfg_.features_per_split
          : std::max<int>(1, static_cast<int>(
                                 std::ceil(std::sqrt(static_cast<double>(X.cols()))) * 2.0));

  // Per-tree fits are independent: tree t draws everything (bootstrap and
  // split randomness) from the counter-based sub-stream root.substream(t),
  // so the ensemble is bit-identical at any LEAF_THREADS setting.
  const std::size_t n_trees = static_cast<std::size_t>(cfg_.num_trees);
  std::vector<DecisionTree> fitted(n_trees);
  par::parallel_for_chunks(n_trees, [&](std::size_t begin, std::size_t end) {
    // One bootstrap buffer per chunk, cleared between trees, so chunk
    // boundaries cannot leak into the output.
    std::vector<std::size_t> rows;
    for (std::size_t t = begin; t < end; ++t) {
      Rng tree_rng = root.substream(t);
      rows.clear();
      if (cfg_.bootstrap) {
        rows.reserve(n);
        for (std::size_t i = 0; i < n; ++i) rows.push_back(tree_rng.index(n));
      }
      fitted[t].fit(bd, y, w, rows, tree_cfg, tree_rng);
    }
  });
  trees_.reserve(n_trees);
  for (auto& tree : fitted) {
    if (tree.trained()) trees_.push_back(std::move(tree));
  }
  trained_ = !trees_.empty();
}

double Forest::predict_one(std::span<const double> x) const {
  assert(trained_);
  double acc = 0.0;
  for (const auto& tree : trees_) acc += tree.predict_one(x);
  return acc / static_cast<double>(trees_.size());
}

std::unique_ptr<Regressor> Forest::clone_untrained() const {
  return std::make_unique<Forest>(cfg_, name_);
}

void Forest::save(io::Serializer& out) const {
  out.put_string(name_);
  out.put_i32(cfg_.num_trees);
  out.put_i32(cfg_.features_per_split);
  out.put_i32(cfg_.max_depth);
  out.put_i32(cfg_.min_samples_leaf);
  out.put_bool(cfg_.bootstrap);
  out.put_bool(cfg_.random_thresholds);
  out.put_u64(cfg_.seed);
  out.put_bool(trained_);
  out.put_u64(trees_.size());
  for (const auto& tree : trees_) tree.save(out);
}

std::unique_ptr<Forest> Forest::load(io::Deserializer& in) {
  const std::string display_name = in.get_string();
  ForestConfig cfg;
  cfg.num_trees = in.get_i32();
  cfg.features_per_split = in.get_i32();
  cfg.max_depth = in.get_i32();
  cfg.min_samples_leaf = in.get_i32();
  cfg.bootstrap = in.get_bool();
  cfg.random_thresholds = in.get_bool();
  cfg.seed = in.get_u64();
  auto model = std::make_unique<Forest>(cfg, display_name);
  model->trained_ = in.get_bool();
  const std::size_t count = in.get_count(8);  // >= node-count word per tree
  model->trees_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    model->trees_.push_back(DecisionTree::load(in));
  return model;
}

}  // namespace leaf::models
