// Black-box regressor interface.
//
// LEAF is model-agnostic: it "does not require the use of any specific
// model nor internal access to the employed model" (§4.1) — it only fits
// models, asks for predictions, and inspects errors.  Every model family
// in the paper's study (boosting, bagging, distance-based, recurrent)
// implements this interface; sample weights are accepted everywhere so
// the mitigator's over-sampling can alternatively be expressed as
// re-weighting.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "models/tree.hpp"

namespace leaf::models {

/// Retrain-scoped caches a training loop may install on a model before
/// fit() and keep alive across successive refits of fresh clones (see
/// core::run_scheme).  Models that cannot use a given cache ignore it.
struct FitCaches {
  BinEdgeCache bin_edges;  ///< used by the histogram models (GBDT, forests)
};

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fits on rows of X with targets y.  `w` may be empty (uniform) or hold
  /// one non-negative weight per row.  Refitting discards previous state.
  virtual void fit(const Matrix& X, std::span<const double> y,
                   std::span<const double> w = {}) = 0;

  /// Predicts a single feature vector.  Only valid after fit().
  virtual double predict_one(std::span<const double> x) const = 0;

  /// Batch prediction into a caller-provided buffer (out.size() must equal
  /// X.rows()) — the allocation-free path the evaluation and importance
  /// loops hammer.  The default parallelizes rows over leaf::par, which is
  /// safe because every predict_one in this repository is const and
  /// touches no shared mutable state; an override that cannot guarantee
  /// that must run serially.
  virtual void predict_into(const Matrix& X, std::span<double> out) const;

  /// Batch prediction; allocates and delegates to predict_into.
  std::vector<double> predict(const Matrix& X) const;

  /// Installs retrain-scoped caches (may be null to detach).  The pointee
  /// must outlive every subsequent fit().  Default: ignored.  Cloning via
  /// clone_untrained never carries the attachment — the owning loop
  /// re-attaches after each clone.
  virtual void attach_caches(FitCaches* caches) { (void)caches; }

  /// Fresh untrained copy with identical hyperparameters (used for every
  /// retrain so schemes never warm-start accidentally).
  virtual std::unique_ptr<Regressor> clone_untrained() const = 0;

  /// Display name, e.g. "GBDT" or "KNeighbors".
  virtual std::string name() const = 0;

  virtual bool trained() const = 0;

  /// Stable factory key identifying the concrete family in snapshots
  /// ("gbdt", "forest", ...).  Families that have not implemented
  /// persistence keep the throwing default — snapshotting them fails
  /// loudly instead of silently dropping state.
  virtual std::string serial_key() const;

  /// Serializes the full fitted state (hyperparameters included) so that
  /// io::load_regressor(serial_key(), ...) reconstructs a model with
  /// bit-identical predictions.  Default: throws io::SnapshotError.
  virtual void save(io::Serializer& out) const;
};

/// Validates fit() inputs; asserts in debug builds, returns false on
/// violation in release builds so models can bail out uniformly.
bool check_fit_args(const Matrix& X, std::span<const double> y,
                    std::span<const double> w);

}  // namespace leaf::models
