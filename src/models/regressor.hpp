// Black-box regressor interface.
//
// LEAF is model-agnostic: it "does not require the use of any specific
// model nor internal access to the employed model" (§4.1) — it only fits
// models, asks for predictions, and inspects errors.  Every model family
// in the paper's study (boosting, bagging, distance-based, recurrent)
// implements this interface; sample weights are accepted everywhere so
// the mitigator's over-sampling can alternatively be expressed as
// re-weighting.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/matrix.hpp"

namespace leaf::models {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fits on rows of X with targets y.  `w` may be empty (uniform) or hold
  /// one non-negative weight per row.  Refitting discards previous state.
  virtual void fit(const Matrix& X, std::span<const double> y,
                   std::span<const double> w = {}) = 0;

  /// Predicts a single feature vector.  Only valid after fit().
  virtual double predict_one(std::span<const double> x) const = 0;

  /// Batch prediction; default implementation loops predict_one.
  virtual std::vector<double> predict(const Matrix& X) const;

  /// Fresh untrained copy with identical hyperparameters (used for every
  /// retrain so schemes never warm-start accidentally).
  virtual std::unique_ptr<Regressor> clone_untrained() const = 0;

  /// Display name, e.g. "GBDT" or "KNeighbors".
  virtual std::string name() const = 0;

  virtual bool trained() const = 0;
};

/// Validates fit() inputs; asserts in debug builds, returns false on
/// violation in release builds so models can bail out uniformly.
bool check_fit_args(const Matrix& X, std::span<const double> y,
                    std::span<const double> w);

}  // namespace leaf::models
