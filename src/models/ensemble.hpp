// Weighted model ensemble.
//
// Used by the Accuracy-Updated-Ensemble (AUE2) mitigation baseline
// (Brzeziński & Stefanowski 2011/2013, the paper's reference [11, 12]):
// sub-models trained on consecutive data chunks vote with weights derived
// from their accuracy on the newest chunk.  Members are shared so the
// ensemble can be cheaply rebuilt every chunk without re-fitting old
// members.
#pragma once

#include <memory>
#include <vector>

#include "models/regressor.hpp"

namespace leaf::models {

class WeightedEnsemble final : public Regressor {
 public:
  WeightedEnsemble() = default;

  /// Adds a trained member; weights are normalized at prediction time.
  void add_member(std::shared_ptr<const Regressor> member, double weight);

  std::size_t size() const { return members_.size(); }
  double weight(std::size_t i) const { return weights_[i]; }

  /// fit() is unsupported — members are trained individually by the
  /// owning scheme.  Calling it leaves the ensemble unchanged.
  void fit(const Matrix&, std::span<const double>,
           std::span<const double> = {}) override {}
  double predict_one(std::span<const double> x) const override;
  std::unique_ptr<Regressor> clone_untrained() const override;
  std::string name() const override { return "WeightedEnsemble"; }
  bool trained() const override { return !members_.empty(); }

  /// Members are saved recursively through the factory registry, so every
  /// member must itself support snapshots.
  std::string serial_key() const override { return "ensemble"; }
  void save(io::Serializer& out) const override;
  static std::unique_ptr<WeightedEnsemble> load(io::Deserializer& in);

 private:
  std::vector<std::shared_ptr<const Regressor>> members_;
  std::vector<double> weights_;
};

}  // namespace leaf::models
