// K-nearest-neighbours regressor — the paper's distance-based family
// (§3.1).  A lazy learner that memorizes the standardized training set and
// predicts an inverse-distance-weighted mean of the k nearest targets;
// §6.2 explains why exactly this memorization makes KNN respond poorly to
// LEAF's targeted over-sampling, which this implementation reproduces.
#pragma once

#include <memory>

#include "data/features.hpp"
#include "models/regressor.hpp"

namespace leaf::models {

struct KnnConfig {
  int k = 5;
  /// Shrinks distances toward 0 get capped by this epsilon so exact
  /// matches don't produce infinite weights.
  double min_distance = 1e-9;
};

class Knn final : public Regressor {
 public:
  explicit Knn(KnnConfig cfg = {});

  void fit(const Matrix& X, std::span<const double> y,
           std::span<const double> w = {}) override;
  double predict_one(std::span<const double> x) const override;
  std::unique_ptr<Regressor> clone_untrained() const override;
  std::string name() const override { return "KNeighbors"; }
  bool trained() const override { return trained_; }

  std::string serial_key() const override { return "knn"; }
  void save(io::Serializer& out) const override;
  static std::unique_ptr<Knn> load(io::Deserializer& in);

 private:
  KnnConfig cfg_;
  bool trained_ = false;
  data::Standardizer scaler_;
  Matrix train_;  // standardized
  std::vector<double> y_;
  std::vector<double> w_;
};

}  // namespace leaf::models
