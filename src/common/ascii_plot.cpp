#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace leaf::plot {

namespace {

constexpr const char* kGlyphs = "*+ox^#%&";

std::string format_tick(double v) {
  char buf[32];
  if (std::abs(v) >= 1000.0 || (std::abs(v) < 0.01 && v != 0.0)) {
    std::snprintf(buf, sizeof buf, "%9.2e", v);
  } else {
    std::snprintf(buf, sizeof buf, "%9.3f", v);
  }
  return buf;
}

}  // namespace

std::string line_chart(
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    const LineChartOptions& opts) {
  std::ostringstream out;
  if (series.empty()) return "(empty chart)\n";

  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  std::size_t n = 0;
  for (const auto& [name, ys] : series) {
    n = std::max(n, ys.size());
    for (double y : ys) {
      if (!std::isfinite(y)) continue;
      lo = std::min(lo, y);
      hi = std::max(hi, y);
    }
  }
  if (!std::isfinite(lo) || n == 0) return "(no finite data)\n";
  if (hi <= lo) hi = lo + 1.0;

  const int W = std::max(10, opts.width);
  const int H = std::max(4, opts.height);
  std::vector<std::string> grid(static_cast<std::size_t>(H),
                                std::string(static_cast<std::size_t>(W), ' '));

  for (std::size_t s = 0; s < series.size(); ++s) {
    const auto& ys = series[s].second;
    const char glyph = kGlyphs[s % 8];
    for (int x = 0; x < W; ++x) {
      // Average the samples mapping onto this column.
      const std::size_t i0 =
          static_cast<std::size_t>(static_cast<double>(x) * static_cast<double>(ys.size()) / W);
      const std::size_t i1 = std::max<std::size_t>(
          i0 + 1, static_cast<std::size_t>(static_cast<double>(x + 1) *
                                           static_cast<double>(ys.size()) / W));
      double acc = 0.0;
      int cnt = 0;
      for (std::size_t i = i0; i < std::min(i1, ys.size()); ++i) {
        if (std::isfinite(ys[i])) {
          acc += ys[i];
          ++cnt;
        }
      }
      if (cnt == 0) continue;
      const double v = acc / cnt;
      int row = static_cast<int>(std::lround((hi - v) / (hi - lo) * (H - 1)));
      row = std::clamp(row, 0, H - 1);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(x)] = glyph;
    }
  }

  if (!opts.title.empty()) out << opts.title << '\n';
  for (int r = 0; r < H; ++r) {
    const double v = hi - (hi - lo) * static_cast<double>(r) / (H - 1);
    const bool label_row = (r == 0 || r == H - 1 || r == H / 2);
    out << (label_row ? format_tick(v) : std::string(9, ' ')) << " |"
        << grid[static_cast<std::size_t>(r)] << '\n';
  }
  out << std::string(10, ' ') << '+' << std::string(static_cast<std::size_t>(W), '-') << '\n';
  if (!opts.x_ticks.empty()) {
    std::string axis(static_cast<std::size_t>(W) + 11, ' ');
    for (std::size_t t = 0; t < opts.x_ticks.size(); ++t) {
      const std::size_t pos =
          11 + static_cast<std::size_t>(static_cast<double>(t) * (W - 1) /
                                        std::max<std::size_t>(1, opts.x_ticks.size() - 1));
      const std::string& tick = opts.x_ticks[t];
      for (std::size_t c = 0; c < tick.size() && pos + c < axis.size(); ++c)
        axis[pos + c] = tick[c];
    }
    out << axis << '\n';
  }
  if (!opts.x_label.empty()) out << "  x: " << opts.x_label << '\n';
  if (!opts.y_label.empty()) out << "  y: " << opts.y_label << '\n';
  out << "  legend:";
  for (std::size_t s = 0; s < series.size(); ++s)
    out << "  [" << kGlyphs[s % 8] << "] " << series[s].first;
  out << '\n';
  return out.str();
}

std::string heat_map(const Matrix& values, const HeatMapOptions& opts) {
  std::ostringstream out;
  if (values.empty()) return "(empty heat map)\n";

  const std::size_t R = values.rows();
  const std::size_t C = values.cols();
  const std::size_t H = std::min<std::size_t>(R, static_cast<std::size_t>(opts.max_height));
  const std::size_t W = std::min<std::size_t>(C, static_cast<std::size_t>(opts.max_width));

  // Downsample by block averaging.
  Matrix cells(H, W, std::numeric_limits<double>::quiet_NaN());
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < H; ++r) {
    const std::size_t r0 = r * R / H, r1 = std::max(r0 + 1, (r + 1) * R / H);
    for (std::size_t c = 0; c < W; ++c) {
      const std::size_t c0 = c * C / W, c1 = std::max(c0 + 1, (c + 1) * C / W);
      double acc = 0.0;
      int cnt = 0;
      for (std::size_t i = r0; i < r1; ++i)
        for (std::size_t j = c0; j < c1; ++j)
          if (std::isfinite(values(i, j))) {
            acc += values(i, j);
            ++cnt;
          }
      if (cnt > 0) {
        const double v = acc / cnt;
        cells(r, c) = v;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  }
  if (!std::isfinite(lo)) return "(no finite data)\n";

  if (!opts.title.empty()) out << opts.title << '\n';
  if (opts.diverging) {
    const double m = std::max(std::abs(lo), std::abs(hi));
    static constexpr const char* kNeg = "#X/-";  // strong .. weak negative
    static constexpr const char* kPos = ".:o@";  // weak .. strong positive
    for (std::size_t r = 0; r < H; ++r) {
      out << '|';
      for (std::size_t c = 0; c < W; ++c) {
        const double v = cells(r, c);
        if (!std::isfinite(v)) {
          out << ' ';
          continue;
        }
        const double t = m > 0 ? v / m : 0.0;  // [-1, 1]
        if (t < -0.03) {
          const int idx = std::clamp(static_cast<int>((1.0 + t) * 4.0), 0, 3);
          out << kNeg[idx];
        } else if (t > 0.03) {
          const int idx = std::clamp(static_cast<int>(t * 4.0), 0, 3);
          out << kPos[idx];
        } else {
          out << ' ';
        }
      }
      out << "|\n";
    }
    out << "  ramp: '#'=strong under-est  ' '=0  '@'=strong over-est"
        << "  (range +-" << format_tick(m) << ")\n";
  } else {
    static constexpr const char* kRamp = " .:-=+*#%@";
    const double span = hi > lo ? hi - lo : 1.0;
    for (std::size_t r = 0; r < H; ++r) {
      out << '|';
      for (std::size_t c = 0; c < W; ++c) {
        const double v = cells(r, c);
        if (!std::isfinite(v)) {
          out << '.';
          continue;
        }
        const int idx = std::clamp(static_cast<int>((v - lo) / span * 9.0), 0, 9);
        out << kRamp[idx];
      }
      out << "|\n";
    }
    out << "  ramp: ' '=" << format_tick(lo) << "  '@'=" << format_tick(hi) << '\n';
  }
  if (!opts.x_label.empty()) out << "  x: " << opts.x_label << '\n';
  if (!opts.y_label.empty()) out << "  y: " << opts.y_label << '\n';
  return out.str();
}

std::string bar_chart(const std::vector<std::pair<std::string, double>>& bars,
                      int width, const std::string& title) {
  std::ostringstream out;
  if (!title.empty()) out << title << '\n';
  if (bars.empty()) return out.str() + "(no bars)\n";
  double hi = 0.0;
  std::size_t label_w = 0;
  for (const auto& [name, v] : bars) {
    hi = std::max(hi, std::abs(v));
    label_w = std::max(label_w, name.size());
  }
  if (hi <= 0.0) hi = 1.0;
  for (const auto& [name, v] : bars) {
    const int len = static_cast<int>(std::lround(std::abs(v) / hi * width));
    out << "  " << name << std::string(label_w - name.size(), ' ') << " |"
        << std::string(static_cast<std::size_t>(len), '=') << ' '
        << format_tick(v) << '\n';
  }
  return out.str();
}

}  // namespace leaf::plot
