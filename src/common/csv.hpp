// Tiny CSV writer used by the bench harnesses to dump the series behind
// each paper figure (LEAplot / LEAgram / NRMSE time-series) so they can be
// re-plotted externally.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace leaf {

class CsvWriter {
 public:
  /// Opens `path` for writing (truncates).  `ok()` reports failure instead
  /// of throwing so benches can degrade to stdout-only.
  explicit CsvWriter(const std::string& path);

  /// True while every write so far has succeeded (stream errors are
  /// sticky, so a full disk or vanished directory makes this false for
  /// good — silent truncated CSVs were a real failure mode).
  bool ok() const { return static_cast<bool>(out_); }
  /// The path this writer targets, for error reporting.
  const std::string& path() const { return path_; }

  /// Flushes and reports whether the whole file made it to disk.  Call at
  /// end of life; `error()` names the path on failure.
  bool finish();
  /// Empty when ok; otherwise a one-line description carrying the path.
  std::string error() const;

  /// Writes one row; fields are quoted only when they contain separators.
  void row(std::initializer_list<std::string_view> fields);
  void row(const std::vector<std::string>& fields);

  /// Convenience: header then rows of doubles with one leading label.
  void numeric_row(std::string_view label, const std::vector<double>& values);

 private:
  void write_field(std::string_view f, bool first);
  std::string path_;
  std::ofstream out_;
};

/// Formats a double compactly ("%.6g").
std::string fmt(double v);
/// Formats with fixed precision.
std::string fmt_fixed(double v, int digits);
/// Formats a percentage with two decimals, e.g. "-32.67%".
std::string fmt_pct(double fraction_times_100);

}  // namespace leaf
