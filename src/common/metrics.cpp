#include "common/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "common/stats.hpp"
#include "simd/simd.hpp"

namespace leaf::metrics {

double rmse(std::span<const double> pred, std::span<const double> truth) {
  assert(pred.size() == truth.size());
  if (pred.empty()) return 0.0;
  const double acc = simd::l2_distance2(pred, truth);
  return std::sqrt(acc / static_cast<double>(pred.size()));
}

double nrmse(std::span<const double> pred, std::span<const double> truth,
             double norm_range) {
  assert(pred.size() == truth.size());
  if (!(norm_range > 0.0) || !std::isfinite(norm_range))
    return std::numeric_limits<double>::quiet_NaN();
  if (pred.empty()) return 0.0;
  const simd::ErrorAcc acc = simd::squared_error(pred, truth);
  if (acc.finite == 0) return std::numeric_limits<double>::quiet_NaN();
  return std::sqrt(acc.sum_sq / static_cast<double>(acc.finite)) / norm_range;
}

double normalized_error(double pred, double truth, double norm_range) {
  if (!(norm_range > 0.0) || !std::isfinite(norm_range))
    return std::numeric_limits<double>::quiet_NaN();
  return (pred - truth) / norm_range;
}

double mae(std::span<const double> pred, std::span<const double> truth) {
  assert(pred.size() == truth.size());
  if (pred.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    acc += std::abs(pred[i] - truth[i]);
  return acc / static_cast<double>(pred.size());
}

double median_ae(std::span<const double> pred, std::span<const double> truth) {
  assert(pred.size() == truth.size());
  if (pred.empty()) return 0.0;
  std::vector<double> abs_err(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i)
    abs_err[i] = std::abs(pred[i] - truth[i]);
  return stats::quantile(abs_err, 0.5);
}

double mape(std::span<const double> pred, std::span<const double> truth,
            double eps) {
  assert(pred.size() == truth.size());
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (std::abs(truth[i]) < eps) continue;
    acc += std::abs((pred[i] - truth[i]) / truth[i]);
    ++n;
  }
  return n > 0 ? acc / static_cast<double>(n) * 100.0 : 0.0;
}

double r2(std::span<const double> pred, std::span<const double> truth) {
  assert(pred.size() == truth.size());
  if (truth.size() < 2) return 0.0;
  const double mean_t = stats::mean(truth);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - mean_t) * (truth[i] - mean_t);
  }
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double explained_variance(std::span<const double> pred,
                          std::span<const double> truth) {
  assert(pred.size() == truth.size());
  if (truth.size() < 2) return 0.0;
  std::vector<double> resid(truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) resid[i] = truth[i] - pred[i];
  const double var_t = stats::variance(truth);
  if (var_t <= 0.0) return 0.0;
  return 1.0 - stats::variance(resid) / var_t;
}

double delta_nrmse_pct(std::span<const double> mitigated_nrmse_series,
                       std::span<const double> static_nrmse_series) {
  const double m1 = stats::mean(mitigated_nrmse_series);
  const double m0 = stats::mean(static_nrmse_series);
  if (m0 <= 0.0) return 0.0;
  return (m1 - m0) / m0 * 100.0;
}

}  // namespace leaf::metrics
