// Deterministic pseudo-random number generation for the LEAF reproduction.
//
// Every stochastic component in this repository (the synthetic cellular
// dataset, tree subsampling, permutation importance, over-sampling, ...)
// draws from an explicitly seeded `leaf::Rng`.  No component ever touches
// global random state, so every experiment, test, and benchmark is
// bit-reproducible given its seed.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 — fast, high quality, and trivially implementable without
// external dependencies.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace leaf {

/// SplitMix64 step: used to expand a single 64-bit seed into generator
/// state and to derive independent child seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic random number generator (xoshiro256**).
///
/// Satisfies the `UniformRandomBitGenerator` concept so it can be used with
/// `std::shuffle` and the `<random>` distributions, but also offers the
/// small set of distributions this project needs directly, with stable
/// cross-platform output (libstdc++'s distribution implementations are not
/// guaranteed stable across versions; ours are).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Complete generator state (xoshiro words + the Box–Muller carry), so a
  /// generator can be checkpointed and resumed mid-stream (leaf::io).
  struct State {
    std::array<std::uint64_t, 4> words{};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };

  /// Seeds the generator; two `Rng`s built from the same seed produce
  /// identical streams.
  explicit Rng(std::uint64_t seed = 0xC0FFEE0DDBA11ULL);

  /// Captures the full state; restore() resumes the stream bit-exactly.
  State capture() const;
  void restore(const State& s);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Raw 64 uniform random bits.
  result_type operator()();

  /// Derives an independent child generator.  Children created with
  /// distinct tags have independent streams; the parent stream advances by
  /// one draw.
  Rng fork(std::uint64_t tag = 0);

  /// Counter-based sub-stream derivation for parallel work (leaf::par).
  /// Unlike fork(), the parent does NOT advance: the child is a pure
  /// function of the parent's current state and `index`, so a parallel
  /// site can hand task i the generator `substream(i)` regardless of
  /// which thread runs the task or in what order — distinct indices give
  /// independent streams and the overall output is identical at any
  /// thread count.
  Rng substream(std::uint64_t index) const;

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t integer(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller (cached second deviate).
  double normal();
  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);
  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Poisson-distributed count (Knuth for small means, normal approx for
  /// large means).  Mean must be >= 0.
  std::uint64_t poisson(double mean);
  /// Log-normal: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Student-t-ish heavy-tailed draw used for bursty KPI noise: a normal
  /// divided by sqrt of an averaged chi-square with `dof` degrees of
  /// freedom.  Small `dof` => heavy tails.
  double heavy_tail(double dof);

  /// Samples an index in [0, weights.size()) proportionally to
  /// non-negative `weights`.  All-zero weights degrade to uniform.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// k indices sampled from [0, n) with replacement, proportional to
  /// `weights` (which must have size n).  Used by the LEAF over-sampler.
  std::vector<std::size_t> weighted_sample_with_replacement(
      std::span<const double> weights, std::size_t k);

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace leaf
