// Statistics kit used across the LEAF reproduction.
//
// Everything here operates on `std::span<const double>` so call sites can
// pass vectors, matrix rows, or sub-ranges without copies.  All functions
// are pure and deterministic.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace leaf::stats {

/// Arithmetic mean; 0 for an empty range.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// Coefficient of variation Std/Mean — the paper's "dispersion" (Table 2).
/// Returns 0 when the mean is 0.
double dispersion(std::span<const double> xs);

/// Smallest / largest element.  Both require a non-empty range.
double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Linear-interpolation quantile, q in [0, 1].  Requires non-empty input.
/// Does not require sorted input (copies internally).
double quantile(std::span<const double> xs, double q);

/// Quantile over already-sorted data (no copy).
double quantile_sorted(std::span<const double> sorted, double q);

/// The q-quantile cut points dividing the data into `bins` equal-count
/// groups: returns bins-1 interior edges.  Duplicates may appear when the
/// data has ties; callers that need strictly increasing edges should
/// deduplicate.
std::vector<double> quantile_edges(std::span<const double> xs, std::size_t bins);

/// Fisher skewness (g1); 0 for n < 3 or zero variance.
double skewness(std::span<const double> xs);

/// Excess kurtosis; 0 for n < 4 or zero variance.
double kurtosis(std::span<const double> xs);

/// Pearson correlation in [-1, 1]; 0 when either side has zero variance.
/// Requires equal sizes.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (average ranks for ties).
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Autocorrelation of the series at the given lag; 0 when undefined.
double autocorrelation(std::span<const double> xs, std::size_t lag);

/// Strength of a periodic component at period `period`, estimated as the
/// normalized power of that frequency in a rectangular-window DFT (the
/// paper checks 7-day periodicity with STFT-style analysis).  Returns the
/// ratio of power at the period's frequency bin to total non-DC power,
/// in [0, 1].
double periodicity_strength(std::span<const double> xs, std::size_t period);

/// Burstiness score: fraction of points further than `k` standard
/// deviations from a centered rolling median (window `w`).  High for
/// spiky series such as CDR / GDR.
double burstiness(std::span<const double> xs, std::size_t w = 15, double k = 3.0);

/// Two-sample Kolmogorov–Smirnov statistic D = sup |F1 - F2|.
double ks_statistic(std::span<const double> a, std::span<const double> b);

/// Asymptotic p-value for the two-sample KS test (Kolmogorov distribution,
/// with the Marsaglia-style effective-n correction).
double ks_p_value(std::span<const double> a, std::span<const double> b);

/// Simple linear regression y = a + b x; returns {intercept, slope}.
/// Slope is 0 when x has zero variance.
std::pair<double, double> linear_fit(std::span<const double> xs,
                                     std::span<const double> ys);

/// Ranks with ties assigned their average rank (1-based).
std::vector<double> ranks(std::span<const double> xs);

/// Streaming mean/variance accumulator (Welford).  Used by detectors that
/// must track error statistics online without storing the stream.
class RunningStats {
 public:
  void push(double x);
  /// Removes the effect of a previously pushed value.  Only valid when the
  /// value was actually in the window (caller's responsibility).
  void pop(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace leaf::stats
