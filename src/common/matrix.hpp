// Minimal dense row-major matrix used for feature tables and the LSTM.
//
// This is intentionally a small value type, not a linear-algebra library:
// the models in `leaf::models` only need contiguous row access, transpose,
// and a few elementwise helpers.  Bounds are asserted in debug builds.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace leaf {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    mirror_valid_ = false;
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Contiguous view of one row.
  std::span<double> row(std::size_t r) {
    assert(r < rows_);
    mirror_valid_ = false;
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Copy of one column (columns are strided in the row-major storage, so
  /// no span over `data_` is possible).  Prefer col_view() in loops.
  std::vector<double> col(std::size_t c) const;

  /// Contiguous view of one column, served from a lazily built
  /// column-major mirror of the matrix.  The first call after any
  /// mutation rebuilds the mirror (O(rows*cols)); later calls are free.
  /// Handing out writable access (non-const operator(), row(), flat())
  /// invalidates the mirror even if nothing is written.
  ///
  /// NOT thread-safe while invalid: trigger the rebuild from serial code
  /// (e.g. right after fit/load) before reading col_view from leaf::par
  /// workers.  Views are invalidated by the next mutation or rebuild.
  std::span<const double> col_view(std::size_t c) const {
    assert(c < cols_);
    if (!mirror_valid_) build_mirror();
    return {mirror_.data() + c * rows_, rows_};
  }

  /// The whole column-major mirror (cols blocks of `rows` doubles) —
  /// the layout simd::l2_distances_cols consumes.  Same laziness and
  /// thread-safety caveats as col_view().
  std::span<const double> col_major() const {
    if (!mirror_valid_) build_mirror();
    return mirror_;
  }

  std::span<double> flat() {
    mirror_valid_ = false;
    return data_;
  }
  std::span<const double> flat() const { return data_; }

  /// Appends a row; the first appended row fixes the column count for an
  /// empty matrix.
  void append_row(std::span<const double> values);

  /// New matrix containing the given rows, in order.
  Matrix gather_rows(std::span<const std::size_t> indices) const;

  Matrix transposed() const;

  /// this (rows x cols) * other (cols x k) -> rows x k.
  Matrix multiply(const Matrix& other) const;

 private:
  void build_mirror() const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
  // Lazily built column-major copy of data_ (see col_view).  Mutable so
  // const readers can materialize it; the validity flag is a plain bool
  // because rebuilds must happen in serial contexts anyway.
  mutable std::vector<double> mirror_;
  mutable bool mirror_valid_ = false;
};

}  // namespace leaf
