// Minimal dense row-major matrix used for feature tables and the LSTM.
//
// This is intentionally a small value type, not a linear-algebra library:
// the models in `leaf::models` only need contiguous row access, transpose,
// and a few elementwise helpers.  Bounds are asserted in debug builds.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace leaf {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Contiguous view of one row.
  std::span<double> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Copy of one column (columns are strided, so no span is possible).
  std::vector<double> col(std::size_t c) const;

  std::span<double> flat() { return data_; }
  std::span<const double> flat() const { return data_; }

  /// Appends a row; the first appended row fixes the column count for an
  /// empty matrix.
  void append_row(std::span<const double> values);

  /// New matrix containing the given rows, in order.
  Matrix gather_rows(std::span<const std::size_t> indices) const;

  Matrix transposed() const;

  /// this (rows x cols) * other (cols x k) -> rows x k.
  Matrix multiply(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace leaf
