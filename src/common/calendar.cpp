#include "common/calendar.hpp"

#include <array>
#include <cassert>
#include <cstdio>

namespace leaf::cal {

std::int64_t days_from_civil(const Date& d) {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  const int y = d.year - (d.month <= 2 ? 1 : 0);
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(d.month + (d.month > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(d.day) - 1u;
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

Date civil_from_days(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned day = doy - (153 * mp + 2) / 5 + 1;
  const unsigned month = mp + (mp < 10 ? 3 : -9);
  return Date{static_cast<int>(y + (month <= 2 ? 1 : 0)),
              static_cast<int>(month), static_cast<int>(day)};
}

int day_index(const Date& d) {
  return static_cast<int>(days_from_civil(d) - days_from_civil(kStudyStart));
}

Date date_of(int idx) {
  return civil_from_days(days_from_civil(kStudyStart) + idx);
}

int study_length() { return day_index(kStudyEnd) + 1; }

int day_of_week(int idx) {
  // 2018-01-01 was a Monday, so the study index is already phase-aligned.
  const std::int64_t z = days_from_civil(date_of(idx));
  // days_from_civil(1970-01-01) == 0, a Thursday (weekday 3 if Monday=0).
  return static_cast<int>(((z % 7) + 7 + 3) % 7);
}

int day_of_year(int idx) {
  const Date d = date_of(idx);
  return static_cast<int>(days_from_civil(d) -
                          days_from_civil(Date{d.year, 1, 1}));
}

std::string to_string(const Date& d) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

std::string day_to_string(int idx) { return to_string(date_of(idx)); }

int anchor_2018_07_01() { return day_index(Date{2018, 7, 1}); }
int covid_start() { return day_index(Date{2020, 3, 15}); }
int covid_recovery_end() { return day_index(Date{2020, 10, 25}); }
int gradual_drift_start() { return day_index(Date{2021, 3, 1}); }
int gradual_drift_peak() { return day_index(Date{2022, 1, 15}); }
int pu_loss_start() { return day_index(Date{2019, 7, 1}); }
int pu_loss_end() { return day_index(Date{2020, 1, 15}); }
int early_2022() { return day_index(Date{2022, 1, 1}); }

}  // namespace leaf::cal
