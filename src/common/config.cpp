#include "common/config.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace leaf {

std::string Scale::name() const {
  switch (level) {
    case Level::kSmall: return "small";
    case Level::kMedium: return "medium";
    case Level::kFull: return "full";
  }
  return "?";
}

Scale Scale::for_level(Level level) {
  Scale s;
  s.level = level;
  switch (level) {
    case Level::kSmall:
      // Defaults in the struct definition.
      break;
    case Level::kMedium:
      s.fixed_enbs = 96;
      s.evolving_enbs_max = 192;
      s.num_kpis = 128;
      s.gbdt_trees = 80;
      s.forest_trees = 60;
      s.lstm_epochs = 50;
      s.lstm_hidden = 24;
      s.eval_stride_days = 1;
      break;
    case Level::kFull:
      s.fixed_enbs = 412;
      s.evolving_enbs_max = 898;
      s.num_kpis = 224;
      s.gbdt_trees = 150;
      s.forest_trees = 100;
      s.lstm_epochs = 80;
      s.lstm_hidden = 32;
      s.eval_stride_days = 1;
      break;
  }
  return s;
}

Scale Scale::from_env() {
  const char* env = std::getenv("LEAF_SCALE");
  if (env == nullptr || std::strcmp(env, "small") == 0)
    return for_level(Level::kSmall);
  if (std::strcmp(env, "medium") == 0) return for_level(Level::kMedium);
  if (std::strcmp(env, "full") == 0) return for_level(Level::kFull);
  std::fprintf(stderr,
               "[leaf] unknown LEAF_SCALE='%s' (expected small|medium|full); "
               "using small\n",
               env);
  return for_level(Level::kSmall);
}

}  // namespace leaf
