#include "common/table.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <sstream>

namespace leaf {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == '%' || c == 'e' || c == 'E' || c == '(' ||
          c == ')' || c == ' '))
      return false;
  }
  return true;
}
}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : cols_(header.size()), header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == cols_);
  rows_.push_back(std::move(cells));
}

void TextTable::add_rule() { rows_.emplace_back(); }

std::string TextTable::render() const {
  std::vector<std::size_t> width(cols_, 0);
  for (std::size_t c = 0; c < cols_; ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  std::ostringstream out;
  auto rule = [&] {
    out << '+';
    for (std::size_t c = 0; c < cols_; ++c)
      out << std::string(width[c] + 2, '-') << '+';
    out << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::string& cell = row[c];
      const std::size_t pad = width[c] - cell.size();
      if (looks_numeric(cell)) {
        out << ' ' << std::string(pad, ' ') << cell << " |";
      } else {
        out << ' ' << cell << std::string(pad, ' ') << " |";
      }
    }
    out << '\n';
  };

  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      rule();
    } else {
      emit(row);
    }
  }
  rule();
  return out.str();
}

}  // namespace leaf
