#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <numeric>

namespace leaf {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

Rng::State Rng::capture() const {
  return State{state_, cached_normal_, has_cached_normal_};
}

void Rng::restore(const State& s) {
  state_ = s.words;
  cached_normal_ = s.cached_normal;
  has_cached_normal_ = s.has_cached_normal;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t tag) {
  std::uint64_t mix = (*this)() ^ (tag * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  return Rng(mix);
}

Rng Rng::substream(std::uint64_t index) const {
  // Fold the full 256-bit state down to one word, perturb it with the
  // task counter, and run two SplitMix64 rounds for avalanche; the child
  // constructor expands the result back into xoshiro state.  Pure
  // function of (state, index): the parent stream is untouched.
  std::uint64_t chain = state_[0] ^ rotl(state_[1], 17) ^ rotl(state_[2], 31) ^
                        rotl(state_[3], 47);
  chain ^= index * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL;
  const std::uint64_t a = splitmix64(chain);
  const std::uint64_t b = splitmix64(chain);
  return Rng(a ^ rotl(b, 32));
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  // Lemire-style bounded draw with rejection to remove modulo bias.
  std::uint64_t threshold = (~static_cast<std::uint64_t>(0) - n + 1) % n;
  for (;;) {
    std::uint64_t r = (*this)();
    if (r >= threshold) return static_cast<std::size_t>(r % n);
  }
}

std::int64_t Rng::integer(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  index(static_cast<std::size_t>(hi - lo + 1)));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller with a guard against log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint64_t Rng::poisson(double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-mean);
    double prod = uniform();
    std::uint64_t n = 0;
    while (prod > limit) {
      ++n;
      prod *= uniform();
    }
    return n;
  }
  // Normal approximation, adequate for the synthetic workloads here.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(draw));
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::heavy_tail(double dof) {
  assert(dof > 0.0);
  // Student-t via normal / sqrt(chi^2_k / k), chi^2 built from normals.
  double chi2 = 0.0;
  const int k = std::max(1, static_cast<int>(dof));
  for (int i = 0; i < k; ++i) {
    const double z = normal();
    chi2 += z * z;
  }
  return normal() / std::sqrt(chi2 / static_cast<double>(k));
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) return index(weights.size());
  double target = uniform() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  // Partial Fisher–Yates: the first k slots end up holding the sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

std::vector<std::size_t> Rng::weighted_sample_with_replacement(
    std::span<const double> weights, std::size_t k) {
  // Build a cumulative distribution once, then draw k times by binary
  // search — O(n + k log n) instead of k linear scans.
  std::vector<double> cdf(weights.size());
  double total = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    total += std::max(0.0, weights[i]);
    cdf[i] = total;
  }
  std::vector<std::size_t> out;
  out.reserve(k);
  if (total <= 0.0) {
    for (std::size_t i = 0; i < k; ++i) out.push_back(index(weights.size()));
    return out;
  }
  for (std::size_t i = 0; i < k; ++i) {
    const double target = uniform() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), target);
    out.push_back(static_cast<std::size_t>(it - cdf.begin()));
  }
  return out;
}

}  // namespace leaf
