#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace leaf::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) {
    const double d = x - m;
    acc += d * d;
  }
  return acc / static_cast<double>(n - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double dispersion(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / std::abs(m);
}

double min(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double quantile_sorted(std::span<const double> sorted, double q) {
  assert(!sorted.empty());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::span<const double> xs, double q) {
  assert(!xs.empty());
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

std::vector<double> quantile_edges(std::span<const double> xs,
                                   std::size_t bins) {
  assert(bins >= 1);
  std::vector<double> edges;
  if (xs.empty() || bins == 1) return edges;
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  edges.reserve(bins - 1);
  for (std::size_t i = 1; i < bins; ++i) {
    edges.push_back(
        quantile_sorted(copy, static_cast<double>(i) / static_cast<double>(bins)));
  }
  return edges;
}

double skewness(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 3) return 0.0;
  const double m = mean(xs);
  double m2 = 0.0, m3 = 0.0;
  for (double x : xs) {
    const double d = x - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 <= 0.0) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

double kurtosis(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 4) return 0.0;
  const double m = mean(xs);
  double m2 = 0.0, m4 = 0.0;
  for (double x : xs) {
    const double d = x - m;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= static_cast<double>(n);
  m4 /= static_cast<double>(n);
  if (m2 <= 0.0) return 0.0;
  return m4 / (m2 * m2) - 3.0;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> out(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank for the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = avg;
    i = j + 1;
  }
  return out;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson(rx, ry);
}

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  const std::size_t n = xs.size();
  if (lag >= n || n < 2) return 0.0;
  const double m = mean(xs);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = xs[i] - m;
    den += d * d;
    if (i + lag < n) num += d * (xs[i + lag] - m);
  }
  if (den <= 0.0) return 0.0;
  return num / den;
}

double periodicity_strength(std::span<const double> xs, std::size_t period) {
  const std::size_t n = xs.size();
  if (period < 2 || n < 2 * period) return 0.0;
  const double m = mean(xs);
  // Goertzel-style single-bin DFT at frequency n/period (rounded), plus
  // total power for normalization.
  const double freq = static_cast<double>(n) / static_cast<double>(period);
  const std::size_t k = static_cast<std::size_t>(std::llround(freq));
  if (k == 0 || k >= n / 2) return 0.0;
  double re = 0.0, im = 0.0, total = 0.0;
  const double w = 2.0 * M_PI * static_cast<double>(k) / static_cast<double>(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double d = xs[t] - m;
    re += d * std::cos(w * static_cast<double>(t));
    im -= d * std::sin(w * static_cast<double>(t));
    total += d * d;
  }
  if (total <= 0.0) return 0.0;
  // Power at the bin, normalized so a pure sinusoid at that frequency
  // scores ~1.
  const double bin_power = 2.0 * (re * re + im * im) / static_cast<double>(n);
  return std::clamp(bin_power / total, 0.0, 1.0);
}

double burstiness(std::span<const double> xs, std::size_t w, double k) {
  const std::size_t n = xs.size();
  if (n < w || w < 3) return 0.0;
  const double sigma = stddev(xs);
  if (sigma <= 0.0) return 0.0;
  std::size_t bursts = 0;
  std::vector<double> window;
  window.reserve(w);
  const std::size_t half = w / 2;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(n, lo + w);
    window.assign(xs.begin() + static_cast<std::ptrdiff_t>(lo),
                  xs.begin() + static_cast<std::ptrdiff_t>(hi));
    std::nth_element(window.begin(), window.begin() + static_cast<std::ptrdiff_t>(window.size() / 2),
                     window.end());
    const double med = window[window.size() / 2];
    if (std::abs(xs[i] - med) > k * sigma) ++bursts;
  }
  return static_cast<double>(bursts) / static_cast<double>(n);
}

double ks_statistic(std::span<const double> a, std::span<const double> b) {
  assert(!a.empty() && !b.empty());
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::size_t ia = 0, ib = 0;
  double d = 0.0;
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    d = std::max(d, std::abs(static_cast<double>(ia) / na -
                             static_cast<double>(ib) / nb));
  }
  return d;
}

namespace {
// Kolmogorov distribution survival function Q(lambda) = 2 sum (-1)^{k-1}
// exp(-2 k^2 lambda^2).
double kolmogorov_q(double lambda) {
  if (lambda < 1e-3) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}
}  // namespace

double ks_p_value(std::span<const double> a, std::span<const double> b) {
  const double d = ks_statistic(a, b);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double ne = na * nb / (na + nb);
  const double sqrt_ne = std::sqrt(ne);
  // Stephens' small-sample correction.
  const double lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
  return kolmogorov_q(lambda);
}

std::pair<double, double> linear_fit(std::span<const double> xs,
                                     std::span<const double> ys) {
  assert(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) return {n == 1 ? ys[0] : 0.0, 0.0};
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  if (sxx <= 0.0) return {my, 0.0};
  const double slope = sxy / sxx;
  return {my - slope * mx, slope};
}

void RunningStats::push(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::pop(double x) {
  assert(n_ > 0);
  if (n_ == 1) {
    reset();
    return;
  }
  const double old_mean = (static_cast<double>(n_) * mean_ - x) /
                          static_cast<double>(n_ - 1);
  m2_ -= (x - mean_) * (x - old_mean);
  if (m2_ < 0.0) m2_ = 0.0;  // numerical floor
  mean_ = old_mean;
  --n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::reset() {
  n_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

}  // namespace leaf::stats
