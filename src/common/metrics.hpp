// Regression error metrics (§2.3).
//
// The paper's primary metric is NRMSE — RMSE normalized by the target's
// max-min range — chosen so errors are comparable across KPIs whose
// natural ranges differ by orders of magnitude ("call drop rates are
// scalars mostly less than 1, while downlink volume scalars are often
// greater than 300,000").  Footnote 1 lists the secondary metrics the
// authors cross-checked; all of them are implemented here and exercised
// by the drift-characterization tests.
#pragma once

#include <span>

namespace leaf::metrics {

/// Root mean squared error.  Returns 0 for empty input.
double rmse(std::span<const double> pred, std::span<const double> truth);

/// RMSE / norm_range (the max-min of the target over the dataset).
/// "NRMSE scores under 0.1 ... indicate that the regression model has very
/// good prediction power."
/// Robust to dirty telemetry: pairs with a non-finite value on either side
/// are excluded, so a single corrupt sample cannot poison the error
/// series.  Returns NaN when no finite pair remains or norm_range is not a
/// positive finite number (callers guard; see core::DegradedStats).
double nrmse(std::span<const double> pred, std::span<const double> truth,
             double norm_range);

/// Signed per-sample Normalized Error (pred - truth) / norm_range: the
/// LEAgram metric, where positive = overestimation (unnecessary
/// infrastructure spend) and negative = underestimation (user
/// dissatisfaction).  NaN when the inputs or norm_range are unusable.
double normalized_error(double pred, double truth, double norm_range);

/// Mean absolute error.
double mae(std::span<const double> pred, std::span<const double> truth);

/// Median absolute error.
double median_ae(std::span<const double> pred, std::span<const double> truth);

/// Mean absolute percentage error (samples with |truth| < eps skipped).
double mape(std::span<const double> pred, std::span<const double> truth,
            double eps = 1e-9);

/// Coefficient of determination; 1 is perfect, 0 matches predicting the
/// mean, negative is worse than the mean.
double r2(std::span<const double> pred, std::span<const double> truth);

/// Explained variance score: 1 - Var(truth - pred) / Var(truth).
double explained_variance(std::span<const double> pred,
                          std::span<const double> truth);

/// Percentage distance of a mitigated model's average NRMSE from the
/// static model's (Eq. 1):
///   (mean(mitigated) - mean(static)) / mean(static) * 100.
/// The paper's headline comparison number; lower (more negative) is
/// better.
double delta_nrmse_pct(std::span<const double> mitigated_nrmse_series,
                       std::span<const double> static_nrmse_series);

}  // namespace leaf::metrics
