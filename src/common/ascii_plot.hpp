// ASCII renderers for the paper's figures.
//
// The benches print each figure's underlying data as CSV *and* as a quick
// terminal rendering so the shape (COVID spike, gradual 2021 drift,
// LEAgram over/under-estimation bands) is visible without a plotting
// stack.  Line charts use a fixed character grid; heat maps (LEAgram) use
// a signed shade ramp.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/matrix.hpp"

namespace leaf::plot {

struct LineChartOptions {
  int width = 100;       ///< plot columns (excluding axis labels)
  int height = 16;       ///< plot rows
  std::string title;
  std::string x_label;
  std::string y_label;
  /// Optional labels placed under the x axis at proportional positions.
  std::vector<std::string> x_ticks;
};

/// Renders one or more series on a shared y axis.  Series are drawn with
/// distinct glyphs ('*', '+', 'o', 'x', ...) and a legend line mapping
/// glyph -> name.  NaN values leave gaps (used for data-loss windows).
std::string line_chart(const std::vector<std::pair<std::string, std::vector<double>>>& series,
                       const LineChartOptions& opts = {});

struct HeatMapOptions {
  std::string title;
  std::string x_label;
  std::string y_label;
  /// When true values are signed and rendered on a diverging ramp
  /// ('#' strong negative .. ' ' zero .. '@' strong positive); otherwise a
  /// sequential ramp is used.
  bool diverging = false;
  int max_width = 120;
  int max_height = 40;
};

/// Renders a matrix as an ASCII heat map, downsampling by averaging when
/// the matrix exceeds the character budget.  NaN cells render as '.'.
std::string heat_map(const Matrix& values, const HeatMapOptions& opts = {});

/// Renders a horizontal bar chart (used for feature-importance rankings).
std::string bar_chart(const std::vector<std::pair<std::string, double>>& bars,
                      int width = 60, const std::string& title = {});

}  // namespace leaf::plot
