#include "common/csv.hpp"

#include <cstdio>

namespace leaf {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {}

bool CsvWriter::finish() {
  if (out_.is_open()) out_.flush();
  return ok();
}

std::string CsvWriter::error() const {
  if (ok()) return {};
  return "csv write failed: " + path_ +
         " (disk full, unwritable directory, or closed stream)";
}

void CsvWriter::write_field(std::string_view f, bool first) {
  if (!first) out_ << ',';
  const bool needs_quote =
      f.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quote) {
    out_ << f;
    return;
  }
  out_ << '"';
  for (char c : f) {
    if (c == '"') out_ << '"';
    out_ << c;
  }
  out_ << '"';
}

void CsvWriter::row(std::initializer_list<std::string_view> fields) {
  bool first = true;
  for (auto f : fields) {
    write_field(f, first);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    write_field(f, first);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::numeric_row(std::string_view label,
                            const std::vector<double>& values) {
  write_field(label, true);
  for (double v : values) {
    out_ << ',' << fmt(v);
  }
  out_ << '\n';
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string fmt_fixed(double v, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_pct(double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2f%%", value);
  return buf;
}

}  // namespace leaf
