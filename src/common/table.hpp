// Aligned plain-text table printer for bench output.
//
// Every bench binary reproduces one of the paper's tables; this helper
// renders rows with the same column structure the paper uses so output can
// be compared side by side with the publication.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace leaf {

class TextTable {
 public:
  /// Sets the header row (also fixes the column count).
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  /// Renders with column alignment; numeric-looking cells right-align.
  std::string render() const;

 private:
  std::size_t cols_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == rule
};

}  // namespace leaf
