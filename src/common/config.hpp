// Experiment scale configuration.
//
// The paper's experiments run on 412–898 eNodeBs x 1548 days x 224 KPIs
// with dozens of model retrains per mitigation scheme.  Reproducing that
// takes hours on a laptop-class single core, so every bench honours the
// LEAF_SCALE environment variable:
//
//   LEAF_SCALE=small   (default) — shrunk eNodeB / KPI / tree counts that
//                      preserve every qualitative mechanism (drift shapes,
//                      scheme ordering) while finishing in seconds.
//   LEAF_SCALE=medium  — intermediate sizes for closer quantitative match.
//   LEAF_SCALE=full    — paper-scale parameters (412/898 eNBs, 224 KPIs).
//
// All counts that differ between scales live here so individual benches
// contain no magic numbers.
#pragma once

#include <string>

namespace leaf {

struct Scale {
  enum class Level { kSmall, kMedium, kFull };

  Level level = Level::kSmall;

  // --- dataset ------------------------------------------------------------
  int fixed_enbs = 24;         ///< paper: 412 common eNodeBs
  int evolving_enbs_max = 48;  ///< paper: 898 eNodeBs at the end of study
  int num_kpis = 64;           ///< paper: 224 KPIs per log

  // --- models ---------------------------------------------------------
  int gbdt_trees = 40;        ///< boosting rounds for the CatBoost stand-in
  int forest_trees = 30;      ///< trees for RandomForest / ExtraTrees
  int lstm_epochs = 30;       ///< LSTM training epochs
  int lstm_hidden = 16;       ///< LSTM hidden units

  // --- evaluation -----------------------------------------------------
  int eval_stride_days = 2;   ///< evaluate the error series every k days

  /// Human-readable name ("small" / "medium" / "full").
  std::string name() const;

  /// Scale for a named level.
  static Scale for_level(Level level);

  /// Reads LEAF_SCALE from the environment (default small).  Unknown
  /// values fall back to small with a warning on stderr.
  static Scale from_env();
};

}  // namespace leaf
