#include "common/matrix.hpp"

#include <algorithm>

namespace leaf {

std::vector<double> Matrix::col(std::size_t c) const {
  assert(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Matrix::append_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) cols_ = values.size();
  assert(values.size() == cols_);
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
  mirror_valid_ = false;
}

void Matrix::build_mirror() const {
  mirror_.resize(rows_ * cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* src = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) mirror_[c * rows_ + r] = src[c];
  }
  mirror_valid_ = true;
}

Matrix Matrix::gather_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    assert(indices[i] < rows_);
    const auto src = row(indices[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix Matrix::multiply(const Matrix& other) const {
  assert(cols_ == other.rows());
  Matrix out(rows_, other.cols(), 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      const auto brow = other.row(k);
      auto orow = out.row(r);
      for (std::size_t c = 0; c < other.cols(); ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

}  // namespace leaf
