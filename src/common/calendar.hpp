// Calendar arithmetic for the study period.
//
// The paper's datasets span January 1, 2018 (day index 0) through
// March 28, 2022 (day index 1547) — 1548 daily observations.  All of the
// temporal machinery in this repository (weekly periodicity, the COVID-19
// shock window, the PU data-loss window, train/test anchors) is expressed
// in these day indices; this header provides the conversions and the named
// epochs so magic numbers never leak into experiment code.
#pragma once

#include <cstdint>
#include <string>

namespace leaf::cal {

/// A civil (proleptic Gregorian) calendar date.
struct Date {
  int year = 2018;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  friend bool operator==(const Date&, const Date&) = default;
};

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
std::int64_t days_from_civil(const Date& d);

/// Civil date for days since 1970-01-01.
Date civil_from_days(std::int64_t z);

/// First day of the datasets: 2018-01-01 (a Monday).
inline constexpr Date kStudyStart{2018, 1, 1};
/// Last day of the datasets: 2022-03-28.
inline constexpr Date kStudyEnd{2022, 3, 28};

/// Day index within the study (0 = 2018-01-01).
int day_index(const Date& d);

/// Inverse of day_index.
Date date_of(int day_index);

/// Total number of daily observations in the study period (1548).
int study_length();

/// Day of week, 0 = Monday ... 6 = Sunday.
int day_of_week(int day_index);

/// Day of year in [0, 364] (365 on leap-year Dec 31); used by the
/// seasonal component of the KPI generator.
int day_of_year(int day_index);

/// "YYYY-MM-DD" rendering.
std::string to_string(const Date& d);
/// Rendering straight from a day index.
std::string day_to_string(int day_index);

// --- Named epochs used throughout the paper's narrative -------------------

/// Anchor for the static models: training windows end July 1, 2018.
int anchor_2018_07_01();
/// COVID-19 lockdown onset (the paper dates the sudden DVol drift to
/// mid-March / April 2020; we place the mobility shock at 2020-03-15).
int covid_start();
/// Approximate end of the acute lockdown demand shift (late October 2020).
int covid_recovery_end();
/// Start of the gradual demand drift the paper sees from March 2021,
/// peaking around January 2022.
int gradual_drift_start();
int gradual_drift_peak();
/// Peak-active-UE data-loss window: July 2019 .. January 2020.
int pu_loss_start();
int pu_loss_end();
/// Winter break before the "early 2022" drift instance in the case study.
int early_2022();

}  // namespace leaf::cal
