#include "data/features.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/calendar.hpp"

namespace leaf::data {

void SupervisedSet::append(const SupervisedSet& other) {
  assert(X.cols() == 0 || other.X.cols() == 0 || X.cols() == other.X.cols());
  for (std::size_t r = 0; r < other.size(); ++r) X.append_row(other.X.row(r));
  y.insert(y.end(), other.y.begin(), other.y.end());
  feature_day.insert(feature_day.end(), other.feature_day.begin(),
                     other.feature_day.end());
  target_day.insert(target_day.end(), other.target_day.begin(),
                    other.target_day.end());
  enb.insert(enb.end(), other.enb.begin(), other.enb.end());
}

SupervisedSet SupervisedSet::subset(std::span<const std::size_t> rows) const {
  SupervisedSet out;
  out.X = X.gather_rows(rows);
  out.y.reserve(rows.size());
  out.feature_day.reserve(rows.size());
  out.target_day.reserve(rows.size());
  out.enb.reserve(rows.size());
  for (std::size_t r : rows) {
    out.y.push_back(y[r]);
    out.feature_day.push_back(feature_day[r]);
    out.target_day.push_back(target_day[r]);
    out.enb.push_back(enb[r]);
  }
  return out;
}

namespace {

/// Index of `enb` in the (ascending) per-day eNodeB list, or -1.
int find_enb_row(std::span<const int> enbs, int enb) {
  const auto it = std::lower_bound(enbs.begin(), enbs.end(), enb);
  if (it == enbs.end() || *it != enb) return -1;
  return static_cast<int>(it - enbs.begin());
}

constexpr int kTemporalFeatures = 5;  // dow sin/cos, doy sin/cos, years
constexpr int kAreaFeatures = 3;      // one-hot urban/suburban/rural

}  // namespace

Featurizer::Featurizer(const CellularDataset& ds, TargetKpi target,
                       int horizon)
    : ds_(&ds),
      target_(target),
      target_col_(ds.schema().target_column(target)),
      horizon_(horizon) {
  assert(horizon_ > 0);
  const auto [lo, hi] = ds.value_range(target_col_);
  norm_range_ = hi > lo ? hi - lo : 1.0;

  names_.reserve(static_cast<std::size_t>(num_features()));
  for (int c = 0; c < ds.schema().size(); ++c)
    names_.push_back(ds.schema().spec(c).name);
  names_.emplace_back("t_dow_sin");
  names_.emplace_back("t_dow_cos");
  names_.emplace_back("t_doy_sin");
  names_.emplace_back("t_doy_cos");
  names_.emplace_back("t_years");
  names_.emplace_back("area_urban");
  names_.emplace_back("area_suburban");
  names_.emplace_back("area_rural");
}

int Featurizer::num_features() const {
  return ds_->schema().size() + kTemporalFeatures + kAreaFeatures;
}

int Featurizer::num_kpi_features() const { return ds_->schema().size(); }

void Featurizer::fill_row(int day, int day_row, int enb_profile_idx,
                          std::span<double> out) const {
  const auto kpis = ds_->log_on_day(day, day_row);
  const int nk = ds_->schema().size();
  for (int c = 0; c < nk; ++c)
    out[static_cast<std::size_t>(c)] = static_cast<double>(kpis[static_cast<std::size_t>(c)]);

  const double dow = static_cast<double>(cal::day_of_week(day));
  const double doy = static_cast<double>(cal::day_of_year(day));
  std::size_t i = static_cast<std::size_t>(nk);
  out[i++] = std::sin(2.0 * M_PI * dow / 7.0);
  out[i++] = std::cos(2.0 * M_PI * dow / 7.0);
  out[i++] = std::sin(2.0 * M_PI * doy / 365.25);
  out[i++] = std::cos(2.0 * M_PI * doy / 365.25);
  out[i++] = static_cast<double>(day) / 365.25;

  const AreaType area =
      ds_->profiles()[static_cast<std::size_t>(enb_profile_idx)].area;
  out[i++] = area == AreaType::kUrban ? 1.0 : 0.0;
  out[i++] = area == AreaType::kSuburban ? 1.0 : 0.0;
  out[i++] = area == AreaType::kRural ? 1.0 : 0.0;
  assert(i == static_cast<std::size_t>(num_features()));
}

SupervisedSet Featurizer::window(int first_feature_day,
                                 int last_feature_day) const {
  SupervisedSet out;
  out.X = Matrix(0, static_cast<std::size_t>(num_features()));
  const int last = std::min(last_feature_day, ds_->num_days() - 1 - horizon_);
  std::vector<double> row(static_cast<std::size_t>(num_features()));
  for (int d = std::max(0, first_feature_day); d <= last; ++d) {
    const int td = d + horizon_;
    const auto feature_enbs = ds_->enb_indices_on_day(d);
    const auto target_enbs = ds_->enb_indices_on_day(td);
    for (std::size_t i = 0; i < feature_enbs.size(); ++i) {
      const int e = feature_enbs[i];
      const int trow = find_enb_row(target_enbs, e);
      if (trow < 0) continue;
      fill_row(d, static_cast<int>(i), e, row);
      out.X.append_row(row);
      out.y.push_back(static_cast<double>(
          ds_->log_on_day(td, trow)[static_cast<std::size_t>(target_col_)]));
      out.feature_day.push_back(d);
      out.target_day.push_back(td);
      out.enb.push_back(e);
    }
  }
  return out;
}

SupervisedSet Featurizer::at_target_day(int day) const {
  SupervisedSet out;
  out.X = Matrix(0, static_cast<std::size_t>(num_features()));
  const int d = day - horizon_;
  if (d < 0 || day >= ds_->num_days()) return out;
  std::vector<double> row(static_cast<std::size_t>(num_features()));
  const auto feature_enbs = ds_->enb_indices_on_day(d);
  const auto target_enbs = ds_->enb_indices_on_day(day);
  for (std::size_t i = 0; i < feature_enbs.size(); ++i) {
    const int e = feature_enbs[i];
    const int trow = find_enb_row(target_enbs, e);
    if (trow < 0) continue;
    fill_row(d, static_cast<int>(i), e, row);
    out.X.append_row(row);
    out.y.push_back(static_cast<double>(
        ds_->log_on_day(day, trow)[static_cast<std::size_t>(target_col_)]));
    out.feature_day.push_back(d);
    out.target_day.push_back(day);
    out.enb.push_back(e);
  }
  return out;
}

void Standardizer::fit(const Matrix& X) {
  const std::size_t n = X.rows(), k = X.cols();
  mean_.assign(k, 0.0);
  std_.assign(k, 0.0);
  if (n == 0) return;
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = X.row(r);
    for (std::size_t c = 0; c < k; ++c) mean_[c] += row[c];
  }
  for (std::size_t c = 0; c < k; ++c) mean_[c] /= static_cast<double>(n);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = X.row(r);
    for (std::size_t c = 0; c < k; ++c) {
      const double d = row[c] - mean_[c];
      std_[c] += d * d;
    }
  }
  for (std::size_t c = 0; c < k; ++c) {
    std_[c] = std::sqrt(std_[c] / static_cast<double>(n));
    if (std_[c] < 1e-12) std_[c] = 0.0;  // constant column -> maps to 0
  }
}

void Standardizer::restore(std::vector<double> mean,
                           std::vector<double> stddev) {
  assert(mean.size() == stddev.size());
  mean_ = std::move(mean);
  std_ = std::move(stddev);
}

Matrix Standardizer::transform(const Matrix& X) const {
  assert(fitted() && X.cols() == mean_.size());
  Matrix out(X.rows(), X.cols());
  for (std::size_t r = 0; r < X.rows(); ++r)
    transform_row(X.row(r), out.row(r));
  return out;
}

void Standardizer::transform_row(std::span<const double> in,
                                 std::span<double> out) const {
  assert(in.size() == mean_.size() && out.size() == mean_.size());
  for (std::size_t c = 0; c < in.size(); ++c)
    out[c] = std_[c] > 0.0 ? (in[c] - mean_[c]) / std_[c] : 0.0;
}

}  // namespace leaf::data
