#include "data/temporal.hpp"

#include <algorithm>
#include <cmath>

#include "common/calendar.hpp"
#include "common/rng.hpp"

namespace leaf::data {

double smoothstep(double x, double lo, double hi) {
  if (hi <= lo) return x >= hi ? 1.0 : 0.0;
  const double t = std::clamp((x - lo) / (hi - lo), 0.0, 1.0);
  return t * t * (3.0 - 2.0 * t);
}

double weekly_factor(int day_index, double amp, int phase) {
  // Monday=0 .. Sunday=6; business-driven cellular load peaks midweek and
  // dips on weekends.  A smooth two-harmonic shape avoids an artificially
  // square profile.
  const int dow = (cal::day_of_week(day_index) + phase) % 7;
  const double x = 2.0 * M_PI * static_cast<double>(dow) / 7.0;
  const double shape = 0.8 * std::cos(x - 0.9) + 0.2 * std::cos(2.0 * x);
  return 1.0 + amp * shape;
}

double seasonal_factor(int day_index, double amp) {
  const double doy = static_cast<double>(cal::day_of_year(day_index));
  const double x = 2.0 * M_PI * doy / 365.25;
  // Peak near mid-December (holidays) with a small mid-summer bump.
  const double main = std::cos(x - 2.0 * M_PI * 350.0 / 365.25);
  const double summer = 0.35 * std::cos(2.0 * (x - 2.0 * M_PI * 200.0 / 365.25));
  return 1.0 + amp * (main + summer);
}

double growth_factor(int day_index, double rate_per_year) {
  return std::exp(rate_per_year * static_cast<double>(day_index) / 365.25);
}

double covid_factor(int day_index, double depth) {
  const int start = cal::covid_start();
  const int plateau_end = cal::day_index(cal::Date{2020, 6, 1});
  const int recovery_end = cal::covid_recovery_end();
  const double d = static_cast<double>(day_index);
  if (day_index < start) return 1.0;
  if (day_index <= plateau_end) {
    // Two-week ramp down into the lockdown plateau.
    return 1.0 - depth * smoothstep(d, start, start + 14);
  }
  if (day_index <= recovery_end) {
    const double back =
        smoothstep(d, plateau_end, recovery_end);
    return 1.0 - depth * (1.0 - back);
  }
  return 1.0;
}

double mobility_level(int day_index, double sensitivity) {
  // Mobility collapses harder than demand: scale the covid dip by 1.6 and
  // clamp into [0, 1].
  const double f = covid_factor(day_index, std::min(1.0, 1.6 * sensitivity * 0.25));
  return std::clamp(f, 0.0, 1.0);
}

double gradual_drift_factor(int day_index, double amp) {
  const int start = cal::gradual_drift_start();
  const int peak = cal::gradual_drift_peak();
  if (day_index <= start) return 1.0;
  return 1.0 + amp * smoothstep(static_cast<double>(day_index), start, peak);
}

bool in_pu_loss_window(int day_index) {
  return day_index >= cal::pu_loss_start() && day_index <= cal::pu_loss_end();
}

const std::vector<int>& software_upgrade_days() {
  static const std::vector<int> days = {
      cal::day_index(cal::Date{2019, 6, 10}),
      cal::day_index(cal::Date{2019, 12, 5}),
      cal::day_index(cal::Date{2021, 4, 20}),
      cal::day_index(cal::Date{2021, 11, 10}),
  };
  return days;
}

double episode_multiplier(std::uint64_t seed, int enb_id, int day,
                          int stream_tag, double prob, double max_mult,
                          int slot_len, int min_days, int max_days) {
  if (day < 0) return 1.0;
  // An episode may straddle a slot boundary, so check this slot and the
  // previous one.
  double mult = 1.0;
  for (int slot = day / slot_len - 1; slot <= day / slot_len; ++slot) {
    if (slot < 0) continue;
    std::uint64_t s = seed ^ 0xEB150DE5ULL;
    s ^= static_cast<std::uint64_t>(enb_id) * 0x9E3779B97F4A7C15ULL;
    s ^= static_cast<std::uint64_t>(slot) * 0xBF58476D1CE4E5B9ULL;
    s ^= static_cast<std::uint64_t>(stream_tag) * 0x94D049BB133111EBULL;
    const double u_occur =
        static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
    if (u_occur >= prob) continue;
    const double u_start =
        static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
    const double u_dur = static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
    const double u_mag = static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
    const int start = slot * slot_len +
                      static_cast<int>(u_start * static_cast<double>(slot_len));
    const int dur =
        min_days + static_cast<int>(u_dur * static_cast<double>(max_days - min_days));
    if (day >= start && day < start + dur) {
      // Magnitude skewed toward the low end (u^2) with occasional severe
      // episodes.
      mult = std::max(mult, 1.0 + (max_mult - 1.0) * u_mag * u_mag);
    }
  }
  return mult;
}

double upgrade_scale(int day_index, std::uint64_t kpi_salt) {
  double scale = 1.0;
  const auto& days = software_upgrade_days();
  for (std::size_t u = 0; u < days.size(); ++u) {
    if (day_index < days[u]) break;
    // Deterministic per-(kpi, upgrade) factor in [0.85, 1.20].
    std::uint64_t s = kpi_salt * 0x9E3779B97F4A7C15ULL + (u + 1) * 0xD1B54A32D192ED03ULL;
    const double u01 =
        static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
    scale *= 0.85 + 0.35 * u01;
  }
  return scale;
}

}  // namespace leaf::data
