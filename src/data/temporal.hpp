// Temporal processes that drive concept drift in the synthetic dataset.
//
// Section 1 of the paper enumerates the drift mechanisms this module
// reproduces: "periodicity (e.g., seven-day period of volume), gradual
// evolution (e.g., the constant addition of capacity by new equipment
// installations), and exogenous shocks (e.g., a software upgrade, or a
// sudden change in traffic patterns or demands such as the COVID-19
// pandemic)".  Each factor below is a pure function of the study day index
// (see common/calendar.hpp) returning a multiplicative modifier around 1.
#pragma once

#include <cstdint>
#include <vector>

namespace leaf::data {

/// Weekly demand shape: weekday-high / weekend-low, amplitude `amp`
/// (fraction).  `phase` rotates which day is the peak.
double weekly_factor(int day_index, double amp, int phase = 0);

/// Annual seasonality: smooth sinusoid over the day of year with amplitude
/// `amp`, peaking in early winter (holiday traffic), plus a small
/// secondary summer bump.
double seasonal_factor(int day_index, double amp);

/// Compound organic growth: exp(rate_per_year * years_since_start).
double growth_factor(int day_index, double rate_per_year);

/// COVID-19 mobility shock.  1 before the lockdown onset; ramps down to
/// (1 - depth) over two weeks; holds through spring 2020; recovers
/// linearly to 1 by `covid_recovery_end()`.  `depth` > 0 models the demand
/// *drop* the paper observes (people move to fixed broadband), which is
/// what makes pre-pandemic models overestimate during lockdown (Fig. 5a).
double covid_factor(int day_index, double depth);

/// User mobility level in [0, 1]: 1 normally, suppressed during lockdown
/// proportionally to `sensitivity`.  Used for handover-type KPIs and for
/// the traffic-mix shift (mobility_mix_sensitive KPIs).
double mobility_level(int day_index, double sensitivity);

/// Gradual post-March-2021 demand drift: 1 before the start, then a smooth
/// ramp reaching (1 + amp) at the January 2022 peak and holding after.
/// This reproduces the "NRMSE gradually increases [from March 2021] and
/// peaks around January 2022" pattern.
double gradual_drift_factor(int day_index, double amp);

/// True while the peak-active-UE collection outage is active
/// (July 2019 .. January 2020; Table 2 "Data Lost").
bool in_pu_loss_window(int day_index);

/// Fleet-wide software upgrade schedule.  Returns the dates (day indices)
/// on which a firmware/software rollout changes KPI *definitions* — the
/// endogenous drift source.  Chosen near the dates where the paper's
/// detector fires outside COVID: June 2019, December 2019, April 2021,
/// November 2021.
const std::vector<int>& software_upgrade_days();

/// Cumulative definition-scale applied to an upgrade-sensitive KPI at the
/// given day: each upgrade before `day_index` multiplies the scale by a
/// per-(kpi, upgrade) factor derived deterministically from `kpi_salt`.
double upgrade_scale(int day_index, std::uint64_t kpi_salt);

/// Smoothstep helper (0 at lo, 1 at hi, C1-continuous).
double smoothstep(double x, double lo, double hi);

/// Burst-episode multiplier for bursty KPIs (PU, CDR, GDR).
///
/// Real user-experience KPIs don't just have iid daily spikes: a faulty
/// transport link or an interference source elevates drop / gap rates for
/// *weeks* (§3.2 "short-lived, abrupt increases in error").  These
/// correlated episodes are what make a drift-triggered retrain dangerous:
/// a 14-day window sampled during an episode teaches the model a transient
/// concept (Table 4: triggered retraining raises GDR error by 44%).
///
/// The schedule is deterministic and random-access: time is divided into
/// `slot_len`-day slots; each (enb, slot, stream) draws whether an episode
/// occurs, its start, duration, and magnitude from a salted hash.  Returns
/// a multiplier >= 1 (1 outside episodes).
double episode_multiplier(std::uint64_t seed, int enb_id, int day,
                          int stream_tag, double prob, double max_mult,
                          int slot_len = 45, int min_days = 7,
                          int max_days = 35);

}  // namespace leaf::data
