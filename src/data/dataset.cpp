#include "data/dataset.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace leaf::data {

CellularDataset::CellularDataset(KpiSchema schema,
                                 std::vector<EnbProfile> fleet, int num_days,
                                 bool evolving, std::string name)
    : schema_(std::move(schema)),
      fleet_(std::move(fleet)),
      num_days_(num_days),
      evolving_(evolving),
      name_(std::move(name)) {
  day_enbs_.reserve(static_cast<std::size_t>(num_days));
  day_values_.reserve(static_cast<std::size_t>(num_days));
}

int CellularDataset::enbs_on_day(int day) const {
  assert(day >= 0 && day < static_cast<int>(day_enbs_.size()));
  return static_cast<int>(day_enbs_[static_cast<std::size_t>(day)].size());
}

std::span<const int> CellularDataset::enb_indices_on_day(int day) const {
  assert(day >= 0 && day < static_cast<int>(day_enbs_.size()));
  return day_enbs_[static_cast<std::size_t>(day)];
}

std::span<const float> CellularDataset::log_on_day(int day, int i) const {
  const auto& vals = day_values_[static_cast<std::size_t>(day)];
  const std::size_t k = static_cast<std::size_t>(schema_.size());
  assert(static_cast<std::size_t>(i + 1) * k <= vals.size());
  return {vals.data() + static_cast<std::size_t>(i) * k, k};
}

int CellularDataset::enb_on_day(int day, int i) const {
  return day_enbs_[static_cast<std::size_t>(day)][static_cast<std::size_t>(i)];
}

std::int64_t CellularDataset::total_logs() const {
  std::int64_t n = 0;
  for (const auto& d : day_enbs_) n += static_cast<std::int64_t>(d.size());
  return n;
}

void CellularDataset::append_day(std::vector<int> enb_indices,
                                 std::vector<float> values) {
  assert(values.size() ==
         enb_indices.size() * static_cast<std::size_t>(schema_.size()));
  assert(static_cast<int>(day_enbs_.size()) < num_days_);
  day_enbs_.push_back(std::move(enb_indices));
  day_values_.push_back(std::move(values));
}

std::vector<double> CellularDataset::series(int enb_index, int column) const {
  std::vector<double> out(static_cast<std::size_t>(num_days_),
                          std::numeric_limits<double>::quiet_NaN());
  for (int d = 0; d < static_cast<int>(day_enbs_.size()); ++d) {
    const auto& enbs = day_enbs_[static_cast<std::size_t>(d)];
    for (std::size_t i = 0; i < enbs.size(); ++i) {
      if (enbs[i] == enb_index) {
        out[static_cast<std::size_t>(d)] = static_cast<double>(
            log_on_day(d, static_cast<int>(i))[static_cast<std::size_t>(column)]);
        break;
      }
    }
  }
  return out;
}

std::vector<double> CellularDataset::fleet_mean_series(int column) const {
  std::vector<double> out(static_cast<std::size_t>(num_days_),
                          std::numeric_limits<double>::quiet_NaN());
  for (int d = 0; d < static_cast<int>(day_enbs_.size()); ++d) {
    const int n = enbs_on_day(d);
    if (n == 0) continue;
    double acc = 0.0;
    for (int i = 0; i < n; ++i)
      acc += static_cast<double>(log_on_day(d, i)[static_cast<std::size_t>(column)]);
    out[static_cast<std::size_t>(d)] = acc / n;
  }
  return out;
}

std::vector<double> CellularDataset::all_values(int column) const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(total_logs()));
  for (int d = 0; d < static_cast<int>(day_enbs_.size()); ++d) {
    const int n = enbs_on_day(d);
    for (int i = 0; i < n; ++i)
      out.push_back(static_cast<double>(
          log_on_day(d, i)[static_cast<std::size_t>(column)]));
  }
  return out;
}

std::pair<double, double> CellularDataset::value_range(int column) const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (int d = 0; d < static_cast<int>(day_enbs_.size()); ++d) {
    const int n = enbs_on_day(d);
    for (int i = 0; i < n; ++i) {
      const double v = static_cast<double>(
          log_on_day(d, i)[static_cast<std::size_t>(column)]);
      if (!std::isfinite(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!std::isfinite(lo)) return {0.0, 1.0};
  return {lo, hi};
}

}  // namespace leaf::data
