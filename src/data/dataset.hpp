// The daily eNodeB-level KPI log table (Table 1).
//
// One `CellularDataset` holds every log of either the Fixed or Evolving
// dataset: for each study day, the set of eNodeBs reporting that day and
// their KPI vectors.  Values are stored as float to keep the full-scale
// dataset (898 eNBs x 1548 days x 224 KPIs) within ~1.2 GB; all analysis
// code promotes to double.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/kpi.hpp"
#include "data/network.hpp"

namespace leaf::data {

/// One daily log: a single eNodeB's KPI vector on a single day.
struct LogRef {
  int day = 0;
  int enb_index = 0;  ///< index into profiles()
  std::span<const float> kpis;
};

class CellularDataset {
 public:
  CellularDataset(KpiSchema schema, std::vector<EnbProfile> fleet,
                  int num_days, bool evolving, std::string name);

  const KpiSchema& schema() const { return schema_; }
  const std::vector<EnbProfile>& profiles() const { return fleet_; }
  int num_days() const { return num_days_; }
  int num_kpis() const { return schema_.size(); }
  bool evolving() const { return evolving_; }
  const std::string& name() const { return name_; }

  /// Number of eNodeBs reporting on the given day.
  int enbs_on_day(int day) const;
  /// eNodeB (profile) indices reporting on the given day.
  std::span<const int> enb_indices_on_day(int day) const;
  /// KPI vector for the i-th reporting eNodeB of the day.
  std::span<const float> log_on_day(int day, int i) const;
  /// eNodeB profile index for the i-th reporting eNodeB of the day.
  int enb_on_day(int day, int i) const;

  /// Total number of daily logs (Table 1: 699,381 / 1,084,837 at paper
  /// scale).
  std::int64_t total_logs() const;

  /// Appends one day of logs.  `enb_indices` and `values` must be aligned;
  /// values are row-major (enb-major) with num_kpis() columns.  Days must
  /// be appended in order 0..num_days-1.
  void append_day(std::vector<int> enb_indices, std::vector<float> values);

  /// Series of one KPI for one eNodeB over all days; NaN where the eNodeB
  /// did not report.  Column is a schema column index.
  std::vector<double> series(int enb_index, int column) const;

  /// Per-day fleet mean of one KPI (NaN for days with no reporters).
  std::vector<double> fleet_mean_series(int column) const;

  /// All values of one KPI across all logs (used for dispersion and
  /// normalization ranges).
  std::vector<double> all_values(int column) const;

  /// Global [min, max] of a target KPI over the whole dataset — the
  /// max-min normalizer used to turn RMSE into NRMSE (§2.3).
  std::pair<double, double> value_range(int column) const;

 private:
  KpiSchema schema_;
  std::vector<EnbProfile> fleet_;
  int num_days_;
  bool evolving_;
  std::string name_;

  // Day-major storage.
  std::vector<std::vector<int>> day_enbs_;
  std::vector<std::vector<float>> day_values_;
};

}  // namespace leaf::data
