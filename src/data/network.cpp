#include "data/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/calendar.hpp"
#include "common/rng.hpp"

namespace leaf::data {

std::string to_string(AreaType a) {
  switch (a) {
    case AreaType::kUrban: return "urban";
    case AreaType::kSuburban: return "suburban";
    case AreaType::kRural: return "rural";
  }
  return "?";
}

namespace {

EnbProfile make_profile(int id, Rng& rng) {
  EnbProfile p;
  p.id = id;

  // Metropolitan mix: 35% urban, 45% suburban, 20% rural.
  const double u = rng.uniform();
  if (u < 0.35) {
    p.area = AreaType::kUrban;
  } else if (u < 0.80) {
    p.area = AreaType::kSuburban;
  } else {
    p.area = AreaType::kRural;
  }

  switch (p.area) {
    case AreaType::kUrban:
      p.base_volume_mb = rng.lognormal(std::log(4.5e5), 0.40);
      p.base_peak_ues = rng.lognormal(std::log(600.0), 0.40);
      p.capacity_mbps = rng.uniform(150.0, 300.0);
      p.coverage_quality = rng.uniform(0.82, 0.97);
      // Urban demand dipped, but less than commuter belts.
      p.covid_sensitivity = rng.uniform(0.8, 1.1);
      break;
    case AreaType::kSuburban:
      p.base_volume_mb = rng.lognormal(std::log(2.8e5), 0.40);
      p.base_peak_ues = rng.lognormal(std::log(350.0), 0.40);
      p.capacity_mbps = rng.uniform(100.0, 220.0);
      p.coverage_quality = rng.uniform(0.75, 0.93);
      // Commuter mobility collapsed hardest: these sites drive the tail
      // errors in the case study.
      p.covid_sensitivity = rng.uniform(1.2, 1.6);
      break;
    case AreaType::kRural:
      p.base_volume_mb = rng.lognormal(std::log(1.2e5), 0.40);
      p.base_peak_ues = rng.lognormal(std::log(140.0), 0.40);
      p.capacity_mbps = rng.uniform(60.0, 140.0);
      p.coverage_quality = rng.uniform(0.6, 0.88);
      p.covid_sensitivity = rng.uniform(0.4, 0.8);
      break;
  }

  p.weekly_amp = rng.uniform(0.12, 0.32);
  // The human week synchronizes the whole metro area: no per-site phase
  // (the paper's 3-week insets all align on Sunday).
  p.weekly_phase = 0;
  // Drift is heterogeneous across the fleet — the premise behind LEAF's
  // local-error view (§4.1: "the distribution of local errors across
  // samples ... may be uneven").  Most sites grow slowly; a quarter are
  // "hot" (dense areas getting capacity and users).  The 2021 demand ramp
  // is a site-by-site rollout that only touches ~45% of the fleet.
  // "Hot" build-out sites concentrate where subscriber growth is: the
  // commuter belt.  Urban cores are already dense and grow slowly.
  const double hot_prob = p.area == AreaType::kSuburban ? 0.35
                          : p.area == AreaType::kUrban  ? 0.10
                                                        : 0.20;
  p.growth_rate =
      rng.bernoulli(hot_prob) ? rng.uniform(0.08, 0.16) : rng.uniform(0.01, 0.05);
  // The post-2021 demand ramp concentrates in the commuter belt (the case
  // study traces the early-2022 tail errors to suburban sites whose users
  // changed mobility patterns after the winter break).
  if (p.area == AreaType::kSuburban) {
    p.drift2021_amp = rng.bernoulli(0.75) ? rng.uniform(0.5, 1.1) : 0.0;
  } else {
    p.drift2021_amp = rng.bernoulli(0.2) ? rng.uniform(0.2, 0.5) : 0.0;
  }
  p.pu_loss_affected = rng.bernoulli(0.6);
  return p;
}

}  // namespace

std::vector<EnbProfile> build_fixed_fleet(int count, std::uint64_t seed) {
  assert(count > 0);
  Rng rng(seed);
  std::vector<EnbProfile> fleet;
  fleet.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    EnbProfile p = make_profile(i, rng);
    p.install_day = 0;
    fleet.push_back(std::move(p));
  }
  return fleet;
}

std::vector<EnbProfile> build_evolving_fleet(int max_count,
                                             std::uint64_t seed) {
  assert(max_count > 0);
  Rng rng(seed);
  std::vector<EnbProfile> fleet;
  fleet.reserve(static_cast<std::size_t>(max_count));
  // The Evolving dataset grows from ~46% of its final size (412 of 898
  // sites are the Fixed common set) to max_count by the end of the study.
  const int initial = std::max(1, max_count * 46 / 100);
  const int horizon = cal::study_length();
  for (int i = 0; i < max_count; ++i) {
    EnbProfile p = make_profile(i, rng);
    if (i < initial) {
      p.install_day = 0;
    } else {
      // Installation accelerates over time (capacity build-outs): draw
      // from a distribution biased to the later study years.
      const double u = rng.uniform();
      p.install_day = static_cast<int>(std::pow(u, 0.7) *
                                       static_cast<double>(horizon - 30));
      // New sites start with modern hardware: better coverage, steeper
      // growth — extra heterogeneity, as §2.1 notes for Evolving.
      p.coverage_quality = std::min(0.98, p.coverage_quality + 0.05);
      p.growth_rate += 0.03;
      // Newly built sites span small-cell infill to high-capacity macros,
      // which is what pushes the Evolving dataset's dispersions above the
      // Fixed dataset's (Table 2 vs Table 6).
      p.base_volume_mb *= rng.uniform(0.5, 2.8);
      p.base_peak_ues *= rng.uniform(0.6, 3.2);
    }
    fleet.push_back(std::move(p));
  }
  return fleet;
}

}  // namespace leaf::data
