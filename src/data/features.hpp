// Featurization of the KPI logs into the paper's forecasting task (§2.2):
// from "all available KPIs and dates (as features) up to a given day",
// forecast a target KPI 180 days in the future, with one model serving
// every eNodeB.
//
// A supervised pair is (X at feature-day d, y at day d+H): the feature
// vector holds the eNodeB's full KPI log of day d plus encoded temporal
// features (day-of-week / day-of-year phases, elapsed years — the
// "temporal features (e.g., time stamps, day of the week, month, year)"
// of §3.1) and the site's area type.
#pragma once

#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "data/dataset.hpp"

namespace leaf::data {

/// A materialized set of supervised pairs.
struct SupervisedSet {
  Matrix X;                     ///< one row per pair
  std::vector<double> y;        ///< target KPI at day d+H
  std::vector<int> feature_day; ///< d, per row
  std::vector<int> target_day;  ///< d+H, per row
  std::vector<int> enb;         ///< eNodeB profile index, per row

  std::size_t size() const { return y.size(); }
  bool empty() const { return y.empty(); }

  /// Appends all rows of `other` (same column layout required).
  void append(const SupervisedSet& other);
  /// New set with only the given rows.
  SupervisedSet subset(std::span<const std::size_t> rows) const;
};

/// Builds supervised pairs for one (dataset, target KPI, horizon).
class Featurizer {
 public:
  /// The paper's horizon is 180 days (capacity planning lead time).
  Featurizer(const CellularDataset& ds, TargetKpi target, int horizon = 180);

  const CellularDataset& dataset() const { return *ds_; }
  TargetKpi target() const { return target_; }
  int horizon() const { return horizon_; }

  int num_features() const;
  const std::vector<std::string>& feature_names() const { return names_; }
  /// Columns [0, num_kpi_features) are raw KPI columns (schema order);
  /// the rest are temporal / area encodings.
  int num_kpi_features() const;

  /// Pairs whose *feature* day lies in [first, last] (inclusive).  Only
  /// eNodeBs reporting on both d and d+H yield pairs.
  SupervisedSet window(int first_feature_day, int last_feature_day) const;

  /// Pairs whose *target* day is exactly `day` — the per-date test sets
  /// of §3.2 ("we test these models on data subsets split by date").
  SupervisedSet at_target_day(int day) const;

  /// max - min of the target over the full dataset: the NRMSE normalizer
  /// (§2.3 "we normalize the RMSE by maxmin").
  double norm_range() const { return norm_range_; }

 private:
  void fill_row(int day, int day_row, int enb_profile_idx,
                std::span<double> out) const;

  const CellularDataset* ds_;
  TargetKpi target_;
  int target_col_;
  int horizon_;
  double norm_range_;
  std::vector<std::string> names_;
};

/// Per-column standardizer (z-score) for distance- and gradient-based
/// models (KNN, LSTM, Ridge).  Constant columns map to 0.
class Standardizer {
 public:
  void fit(const Matrix& X);
  Matrix transform(const Matrix& X) const;
  void transform_row(std::span<const double> in, std::span<double> out) const;
  /// Reinstates previously fitted moments (snapshot restore, leaf::io).
  /// The vectors must have equal length.
  void restore(std::vector<double> mean, std::vector<double> stddev);
  bool fitted() const { return !mean_.empty(); }
  std::span<const double> mean() const { return mean_; }
  std::span<const double> stddev() const { return std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace leaf::data
