// Synthetic cellular KPI dataset generator.
//
// This is the substitution for the paper's proprietary Verizon data (see
// DESIGN.md).  For every (eNodeB, day) it synthesizes a latent network
// state — demand, users, radio quality, congestion, mobility — shaped by
// the drift processes in temporal.hpp, then derives all KPI columns of
// the schema from that state.  Generation is fully deterministic in the
// seed and *random-access*: the value of (enb, day) never depends on RNG
// draws for other days, so datasets of any size can be built day-major
// without a transpose pass.
//
// Concept drift enters through three mechanisms, mirroring §1:
//   1. exogenous shocks — the COVID-19 demand/mobility collapse makes a
//      pre-2020 model overestimate during lockdown (Fig. 5a);
//   2. gradual evolution — organic growth plus the post-March-2021 demand
//      ramp peaking January 2022 (Fig. 1a);
//   3. endogenous changes — fleet software upgrades that rescale the
//      *definition* of upgrade-sensitive KPIs, and a traffic-mix shift
//      that weakens feature/target couplings while mobility is suppressed
//      (genuine P(y|X) drift, not just covariate shift).
#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "data/dataset.hpp"

namespace leaf::data {

/// Latent state of one eNodeB on one day — the quantities every KPI is a
/// view of.  Exposed for tests and for the generator's documentation
/// value; normal users only consume the finished dataset.
struct LatentState {
  double dvol_mb = 0.0;       ///< downlink volume (MB)
  double peak_ues = 0.0;      ///< peak active UEs (0 during the loss window)
  double throughput = 0.0;    ///< downlink throughput (Mbps)
  double rrc_success = 0.0;   ///< RRC establishment successes
  double call_drop = 0.0;     ///< S1-U call drop rate in [0, 1]
  double gap_ratio = 0.0;     ///< RTP gap duration ratio in [0, 1]
  double bad_coverage = 0.0;  ///< bad-coverage measurement count
  double handovers = 0.0;     ///< handover count (mobility proxy)
  double mobility = 1.0;      ///< mobility level in [0, 1]
  double congestion = 0.0;    ///< load ratio in [0, ~1.5]
};

/// Computes the latent state for (profile, day).  Deterministic in
/// (seed, profile.id, day).
LatentState latent_state(const EnbProfile& profile, int day,
                         std::uint64_t seed);

/// Derives the full KPI vector for one log from its latent state.
/// `out` must have schema.size() entries.
void synthesize_log(const KpiSchema& schema, const EnbProfile& profile,
                    int day, const LatentState& latent, std::uint64_t seed,
                    float* out);

/// Builds the Fixed dataset: scale.fixed_enbs eNodeBs present every day.
CellularDataset generate_fixed_dataset(const Scale& scale,
                                       std::uint64_t seed = 42);

/// Builds the Evolving dataset: grows from ~46% of scale.evolving_enbs_max
/// sites to the full count across the study.
CellularDataset generate_evolving_dataset(const Scale& scale,
                                          std::uint64_t seed = 42);

/// Lower-level entry point used by both of the above and by tests that
/// need custom fleets or day counts.
CellularDataset generate_dataset(KpiSchema schema,
                                 std::vector<EnbProfile> fleet, bool evolving,
                                 std::string name, int num_days,
                                 std::uint64_t seed);

}  // namespace leaf::data
