// eNodeB fleet model.
//
// The datasets cover "a large city and surrounding metropolitan area
// (rural, suburban, and urban included)" (§2.1).  Each eNodeB gets a
// static profile — area type, baseline demand/capacity, coverage quality,
// COVID sensitivity, install date — from which the generator synthesizes
// its daily KPI values.  The case study's finding that "the top 5% of
// error mostly comes from eNodeBs located at suburban areas, because users
// there change their mobility pattern" is reproduced by giving suburban
// sites the largest COVID mobility sensitivity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace leaf::data {

enum class AreaType : std::uint8_t { kUrban, kSuburban, kRural };

std::string to_string(AreaType a);

/// Static per-eNodeB profile.
struct EnbProfile {
  int id = 0;
  AreaType area = AreaType::kUrban;
  /// Median daily downlink volume in MB (log-normal across the fleet; the
  /// paper notes volumes "often greater than 300,000").
  double base_volume_mb = 3e5;
  /// Median daily peak active UEs.
  double base_peak_ues = 400.0;
  /// Cell capacity in Mbps (drives throughput and congestion).
  double capacity_mbps = 150.0;
  /// Baseline radio quality in (0, 1]; lower => more bad-coverage
  /// measurements and lower throughput.
  double coverage_quality = 0.9;
  /// Multiplier on the COVID demand/mobility dip (suburban > urban >
  /// rural).
  double covid_sensitivity = 1.0;
  /// Weekly demand amplitude (fraction).
  double weekly_amp = 0.25;
  /// Weekly phase offset in days.
  int weekly_phase = 0;
  /// Organic growth rate per year for this site.
  double growth_rate = 0.12;
  /// Amplitude of the gradual 2021 demand drift at this site.
  double drift2021_amp = 0.3;
  /// First study day with data from this site (0 for the Fixed dataset;
  /// staggered for sites added during the study in the Evolving dataset).
  int install_day = 0;
  /// Whether this site loses PU data during the outage window (Table 2:
  /// "Data Lost" affects PU between Jul 2019 and Jan 2020).
  bool pu_loss_affected = false;
};

/// Builds the Fixed-dataset fleet: `count` eNodeBs, all installed at day 0.
/// Deterministic in (count, seed).
std::vector<EnbProfile> build_fixed_fleet(int count, std::uint64_t seed);

/// Builds the Evolving-dataset fleet: starts with roughly half of
/// `max_count` sites at day 0 and staggers the remainder across the study,
/// reproducing "the operational growth of eNodeBs in this area".
std::vector<EnbProfile> build_evolving_fleet(int max_count, std::uint64_t seed);

}  // namespace leaf::data
