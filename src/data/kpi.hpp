// KPI schema for the synthetic cellular dataset.
//
// The paper's logs carry 224 Key Performance Indicators per eNodeB per
// day, falling into three groups — resource utilization, access-network
// performance, and user experience — with six of them used as forecasting
// targets (Table 2).  Real KPIs are heavily cross-correlated ("natural
// correlations of features are often part of a dataset with a large number
// of features", §4.2): the case study finds a 32-feature group correlated
// with downlink volume, a coverage group anchored on
// `badcoveragemeasurements`, and a voice group anchored on
// `rtp_gap_ratio_medium`.
//
// This header describes that structure: which KPIs exist, which latent
// quantity each one tracks, how strongly, and with what noise.  The actual
// value synthesis lives in generator.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace leaf::data {

/// The paper's three KPI categories (Table 1).
enum class KpiGroup : std::uint8_t {
  kResourceUtilization,
  kNetworkPerformance,
  kUserExperience,
};

std::string to_string(KpiGroup g);

/// The six forecasting targets (Table 2).
enum class TargetKpi : std::uint8_t {
  kDVol,  ///< downlink data volume (pdcp_dl_datavol_mb)
  kPU,    ///< peak number of active UEs
  kDTP,   ///< downlink throughput
  kREst,  ///< RRC establishment successes
  kCDR,   ///< S1-U call drop rate
  kGDR,   ///< RTP gap duration ratio
};

inline constexpr std::array<TargetKpi, 6> kAllTargets = {
    TargetKpi::kDVol, TargetKpi::kPU,  TargetKpi::kDTP,
    TargetKpi::kREst, TargetKpi::kCDR, TargetKpi::kGDR};

/// Short display name as used in the paper's tables ("DVol", "PU", ...).
std::string to_string(TargetKpi t);
/// Raw KPI (column) name, e.g. TargetKpi::kDVol -> "pdcp_dl_datavol_mb".
std::string kpi_name(TargetKpi t);
/// Parses a short name; returns false on unknown input.
bool parse_target(const std::string& short_name, TargetKpi& out);

/// The latent quantity a synthetic KPI is coupled to.  Targets map to
/// themselves; companions couple to a target or to an auxiliary latent
/// (coverage quality, mobility); kNone marks independent noise KPIs.
enum class LatentAnchor : std::uint8_t {
  kDVol, kPU, kDTP, kREst, kCDR, kGDR,
  kCoverage,  ///< bad-coverage measurements / radio quality
  kMobility,  ///< user mobility level (handover counts etc.)
  kNone,      ///< independent series
};

/// Static description of one KPI column.
struct KpiSpec {
  std::string name;
  KpiGroup group = KpiGroup::kResourceUtilization;
  LatentAnchor anchor = LatentAnchor::kNone;
  /// Power-law exponent applied to the anchor value (mix of super- and
  /// sub-linear couplings keeps companion correlations realistic).
  double exponent = 1.0;
  /// Multiplicative scale applied after the exponent.
  double scale = 1.0;
  /// Log-normal noise sigma (observation noise of this KPI).
  double noise_sigma = 0.1;
  /// True for the six forecast targets.
  bool is_target = false;
  /// Index in TargetKpi when is_target.
  TargetKpi target = TargetKpi::kDVol;
  /// KPIs whose *definition* changes when a fleet software upgrade ships
  /// (an endogenous drift source the paper names explicitly).
  bool upgrade_sensitive = false;
  /// KPIs whose coupling to their anchor weakens during the COVID mobility
  /// shock (traffic-mix shift: the feature->target relationship itself
  /// changes, i.e. genuine P(y|X) drift).
  bool mobility_mix_sensitive = false;
};

/// The full table schema: an ordered list of KPI columns.
class KpiSchema {
 public:
  /// Builds a schema with `num_kpis` columns (>= 9: the 6 targets plus the
  /// 3 named case-study anchors always come first).  At `num_kpis == 224`
  /// the group sizes match the paper's case study (a ~32-feature volume
  /// group, coverage and voice groups, plus auxiliary/noise KPIs).
  /// Deterministic in (num_kpis, seed).
  static KpiSchema build(int num_kpis, std::uint64_t seed = 17);

  int size() const { return static_cast<int>(specs_.size()); }
  const KpiSpec& spec(int i) const { return specs_[static_cast<std::size_t>(i)]; }
  const std::vector<KpiSpec>& specs() const { return specs_; }

  /// Column index of a forecast target.
  int target_column(TargetKpi t) const;
  /// Column index by KPI name; -1 when absent.
  int column_of(const std::string& name) const;

  /// All column indices anchored to the given latent (the ground-truth
  /// "feature group" — tests verify LEAF's correlation grouping recovers
  /// these).
  std::vector<int> columns_for_anchor(LatentAnchor a) const;

 private:
  std::vector<KpiSpec> specs_;
  std::array<int, 6> target_columns_{};
};

/// Dispersion (Std/Mean) the generator aims for per target, mirroring the
/// ordering in Tables 2 and 6: GDR >> CDR ~ PU > REst ~ DVol > DTP, with
/// the Evolving dataset more dispersed than Fixed.
double paper_dispersion(TargetKpi t, bool evolving);

}  // namespace leaf::data
